package mfv

// Benchmarks regenerating the paper's evaluation (one per experiment id in
// DESIGN.md) plus ablations of the design choices called out there. Run:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the experiment's headline numbers so a
// bench run doubles as a results table (virtual seconds, flows, lines).

import (
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"runtime"
	"strings"
	"testing"
	"time"

	"mfv/internal/aft"
	"mfv/internal/bgp"
	"mfv/internal/config/eos"
	"mfv/internal/kube"
	"mfv/internal/routing"
	"mfv/internal/sim"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

func mustRun(b *testing.B, snap Snapshot, opts Options) *Result {
	b.Helper()
	res, err := Run(snap, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkE1_DifferentialReachability: the exhaustive differential query
// over the Fig. 2 healthy vs buggy dataplanes. The two pipeline runs are
// untimed setup — E1's verification cost is dominated by dataplane query
// time, which is what the batch engine (memoization + worker pool)
// accelerates. BenchmarkE1_PipelineEndToEnd keeps the full-pipeline number.
func BenchmarkE1_DifferentialReachability(b *testing.B) {
	good := mustRun(b, Snapshot{Topology: Fig2()}, Options{})
	bad := mustRun(b, Snapshot{Topology: Fig2Buggy()}, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diffs := DifferentialReachability(good, bad)
		lost := 0
		for _, d := range diffs {
			if (d.Src == "r3" || d.Src == "r4") && strings.Contains(d.Before, "Delivered") &&
				!strings.Contains(d.After, "Delivered") {
				lost++
			}
		}
		if lost < 4 {
			b.Fatalf("AS3 lost flows = %d, want >= 4", lost)
		}
		b.ReportMetric(float64(len(diffs)), "changed-flows")
	}
}

// BenchmarkE1_PipelineEndToEnd: Fig. 2 healthy vs buggy snapshot, full
// pipeline both sides plus the differential query (the pre-engine E1 body).
func BenchmarkE1_PipelineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		good := mustRun(b, Snapshot{Topology: Fig2()}, Options{})
		bad := mustRun(b, Snapshot{Topology: Fig2Buggy()}, Options{})
		if len(DifferentialReachability(good, bad)) == 0 {
			b.Fatal("no differences")
		}
	}
}

// benchNet builds a deterministic pseudo-random dataplane (ring topology,
// arbitrary AFTs) big enough that the batch engine's sharding and
// memoization dominate: ~1k equivalence classes across 24 sources.
func benchNet(b *testing.B, seed int64) *verify.Network {
	b.Helper()
	const nodes, prefixes = 24, 40
	r := rand.New(rand.NewSource(seed))
	topo := topology.Ring(nodes, VendorEOS)
	afts := map[string]*aft.AFT{}
	for i := 1; i <= nodes; i++ {
		name := fmt.Sprintf("r%d", i)
		bld := aft.NewBuilder(name)
		for p := 0; p < prefixes; p++ {
			var a [4]byte
			r.Read(a[:])
			prefix := netip.PrefixFrom(netip.AddrFrom4(a), 1+r.Intn(32)).Masked()
			var idx uint64
			switch r.Intn(4) {
			case 0:
				idx = bld.AddNextHop(aft.NextHop{Receive: true})
			case 1:
				idx = bld.AddNextHop(aft.NextHop{Drop: true})
			case 2:
				idx = bld.AddNextHop(aft.NextHop{Interface: "Ethernet1", IPAddress: "10.0.0.1"})
			default:
				idx = bld.AddNextHop(aft.NextHop{Interface: "Ethernet2", IPAddress: "10.0.0.2"})
			}
			bld.AddIPv4(prefix, bld.AddGroup([]uint64{idx}), "bench", 0)
		}
		afts[name] = bld.Build()
	}
	n, err := verify.NewNetwork(topo, afts)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkBatchDifferential measures the batch engine on a synthetic
// ~24k-flow differential at several worker-pool sizes. Fresh networks every
// iteration so each measurement is a cold (unmemoized) query; outputs are
// byte-identical across the sub-benchmarks.
func BenchmarkBatchDifferential(b *testing.B) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			q := BatchQueries{Workers: workers}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				before, after := benchNet(b, 101), benchNet(b, 202)
				b.StartTimer()
				if len(q.Differential(before, after)) == 0 {
					b.Fatal("no differences on distinct random dataplanes")
				}
			}
		})
	}
}

// BenchmarkE2_ModelCoverage: partial-parser coverage over the Fig. 2
// configs (the 38-42 of 62-82 lines statistic).
func BenchmarkE2_ModelCoverage(b *testing.B) {
	topo := Fig2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mustRun(b, Snapshot{Topology: topo}, Options{Backend: BackendModel})
		totalUn := 0
		for _, n := range topo.Nodes {
			cov := res.Coverage[n.Name]
			un := cov.UnrecognizedCount()
			if un < 38 || un > 42 {
				b.Fatalf("%s unrecognized = %d, want 38-42", n.Name, un)
			}
			totalUn += un
			if t := eos.CountConfigLines(n.Config); t < 62 || t > 82 {
				b.Fatalf("%s total = %d, want 62-82", n.Name, t)
			}
		}
		b.ReportMetric(float64(totalUn)/6, "unrecognized-lines/device")
	}
}

// BenchmarkE3_ModelGap: both backends on the Fig. 3 configs plus the
// cross-backend differential.
func BenchmarkE3_ModelGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := Fig3()
		emu := mustRun(b, Snapshot{Topology: topo}, Options{})
		mdl := mustRun(b, Snapshot{Topology: topo}, Options{Backend: BackendModel})
		if mdl.Network.Reachable("r2", netip.MustParseAddr("2.2.2.1")) {
			b.Fatal("model hole absent")
		}
		if !emu.Network.Reachable("r2", netip.MustParseAddr("2.2.2.1")) {
			b.Fatal("emulation reachability absent")
		}
		diffs := DifferentialReachability(mdl, emu)
		if len(diffs) == 0 {
			b.Fatal("no cross-backend divergence")
		}
		b.ReportMetric(float64(len(diffs)), "diverging-flows")
	}
}

// BenchmarkE4_SingleNodeScale: bin-packing routers onto one e2-standard-32.
func BenchmarkE4_SingleNodeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		c := kube.NewCluster(s, kube.E2Standard32("n1"))
		placed := 0
		for {
			if _, err := c.Schedule(kube.AristaCEOSRequest(fmt.Sprintf("r%d", placed), time.Minute)); err != nil {
				break
			}
			placed++
		}
		if placed < 55 {
			b.Fatalf("placed %d routers, want ~60", placed)
		}
		b.ReportMetric(float64(placed), "routers/node")
	}
}

// BenchmarkE5_ClusterScale: 1,000 pods across a 17-node cluster, booted to
// Running on the virtual clock.
func BenchmarkE5_ClusterScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		specs := make([]kube.NodeSpec, 17)
		for j := range specs {
			specs[j] = kube.E2Standard32(fmt.Sprintf("n%d", j))
		}
		c := kube.NewCluster(s, specs...)
		for j := 0; j < 1000; j++ {
			if _, err := c.Schedule(kube.AristaCEOSRequest(fmt.Sprintf("r%d", j), 90*time.Second)); err != nil {
				b.Fatal(err)
			}
		}
		s.Run()
		if !c.AllRunning() {
			b.Fatal("pods not all Running")
		}
		b.ReportMetric(1000, "pods")
	}
}

// BenchmarkE6_Convergence: the 30-node multi-vendor WAN with an injected
// table (bench-sized at 20k prefixes; benchtab runs the full 200k). The
// reported metric is virtual convergence time after startup.
func BenchmarkE6_Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := WAN(30, true)
		feeds := NewFeedGenerator(7).FullTable(64700, 20000)
		res := mustRun(b, Snapshot{
			Topology: topo,
			Feeds: []InjectedFeed{{
				Router: topo.Nodes[0].Name, PeerAddr: netip.MustParseAddr("198.51.100.1"),
				PeerAS: 64700, Feeds: feeds,
			}},
		}, Options{})
		if res.StartupAt < 12*time.Minute || res.StartupAt > 17*time.Minute {
			b.Fatalf("startup %v outside the 12-17 min window", res.StartupAt)
		}
		b.ReportMetric((res.ConvergedAt - res.StartupAt).Seconds(), "virtual-conv-s")
		b.ReportMetric(res.StartupAt.Seconds(), "virtual-startup-s")
	}
}

// --- Ablations --------------------------------------------------------------

// BenchmarkAblation_ECvsEnumeration compares equivalence-class-based
// differential verification against naive per-address probing on the Fig. 2
// snapshot pair.
func BenchmarkAblation_ECvsEnumeration(b *testing.B) {
	good, err := Run(Snapshot{Topology: Fig2()}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	bad, err := Run(Snapshot{Topology: Fig2Buggy()}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("equivalence-classes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(DifferentialReachability(good, bad)) == 0 {
				b.Fatal("no diffs")
			}
		}
	})
	b.Run("naive-4096-probes", func(b *testing.B) {
		// Probe a fixed 4096-address sample instead of computing classes:
		// strictly more traces for strictly less coverage.
		var probes []netip.Addr
		for i := 0; i < 4096; i++ {
			probes = append(probes, netip.AddrFrom4([4]byte{byte(i >> 4), byte(i * 7), byte(i * 13), 1}))
		}
		srcs := good.Network.Devices()
		for i := 0; i < b.N; i++ {
			found := 0
			for _, src := range srcs {
				for _, p := range probes {
					if good.Network.Trace(src, p).Outcome() != bad.Network.Trace(src, p).Outcome() {
						found++
					}
				}
			}
			_ = found
		}
	})
}

// BenchmarkAblation_LPM compares the binary trie against a linear scan at
// full-table scale (10k prefixes).
func BenchmarkAblation_LPM(b *testing.B) {
	gen := NewFeedGenerator(3)
	prefixes := gen.Prefixes(10000)
	trie := routing.NewTrie[int]()
	for i, p := range prefixes {
		trie.Insert(p, i)
	}
	probes := make([]netip.Addr, 1024)
	for i := range probes {
		probes[i] = prefixes[(i*37)%len(prefixes)].Addr()
	}
	b.Run("trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trie.Lookup(probes[i%len(probes)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			addr := probes[i%len(probes)]
			best := -1
			bestLen := -1
			for j, p := range prefixes {
				if p.Contains(addr) && p.Bits() > bestLen {
					best, bestLen = j, p.Bits()
				}
			}
			_ = best
		}
	})
}

// BenchmarkAblation_ConvergenceHold sweeps the dataplane-stabilization
// window and reports the detected convergence point: too-short holds
// declare convergence early (wrong), long holds only delay detection.
func BenchmarkAblation_ConvergenceHold(b *testing.B) {
	for _, hold := range []time.Duration{5 * time.Second, 30 * time.Second, 2 * time.Minute} {
		b.Run(hold.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, Snapshot{Topology: Fig3()}, Options{ConvergenceHold: hold})
				b.ReportMetric(res.ConvergedAt.Seconds(), "virtual-converged-s")
			}
		})
	}
}

// BenchmarkAblation_TCPvsEventTransport runs the same BGP session + 500
// route transfer over the deterministic event transport and over a real
// TCP loopback connection.
func BenchmarkAblation_TCPvsEventTransport(b *testing.B) {
	routes := NewFeedGenerator(9).Prefixes(500)

	b.Run("event-transport", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sim.New(1)
			mk := func(name string, asn uint32, id string) *bgp.Speaker {
				return bgp.NewSpeaker(bgp.Config{
					Hostname: name, ASN: asn, RouterID: netip.MustParseAddr(id), Clock: s,
					Resolver: bgp.ResolverFunc(func(netip.Addr) (uint32, bool) { return 1, true }),
				})
			}
			s1 := mk("r1", 65001, "1.1.1.1")
			s2 := mk("r2", 65002, "2.2.2.2")
			a1, a2 := netip.MustParseAddr("10.0.0.0"), netip.MustParseAddr("10.0.0.1")
			p1 := s1.AddPeer(bgp.PeerConfig{Addr: a2, LocalAddr: a1, RemoteAS: 65002})
			p2 := s2.AddPeer(bgp.PeerConfig{Addr: a1, LocalAddr: a2, RemoteAS: 65001})
			p1.TransportUp(func(m []byte) {
				d := append([]byte{}, m...)
				s.After(time.Millisecond, func() { s2.HandleMessage(a1, d) })
			})
			p2.TransportUp(func(m []byte) {
				d := append([]byte{}, m...)
				s.After(time.Millisecond, func() { s1.HandleMessage(a2, d) })
			})
			for _, p := range routes {
				s1.Originate(p, bgp.PathAttrs{})
			}
			s.RunFor(time.Minute)
			if s2.LocRIBSize() != len(routes) {
				b.Fatalf("transferred %d routes", s2.LocRIBSize())
			}
		}
	})

	b.Run("tcp-transport", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sim.New(1)
			driver := bgp.NewDriver(s)
			mk := func(name string, asn uint32, id string) *bgp.Speaker {
				return bgp.NewSpeaker(bgp.Config{
					Hostname: name, ASN: asn, RouterID: netip.MustParseAddr(id), Clock: s,
					Resolver: bgp.ResolverFunc(func(netip.Addr) (uint32, bool) { return 1, true }),
				})
			}
			s1 := mk("r1", 65001, "1.1.1.1")
			s2 := mk("r2", 65002, "2.2.2.2")
			a1, a2 := netip.MustParseAddr("127.0.0.1"), netip.MustParseAddr("127.0.0.2")
			driver.Locked(func() {
				s1.AddPeer(bgp.PeerConfig{Addr: a2, LocalAddr: a1, RemoteAS: 65002})
				s2.AddPeer(bgp.PeerConfig{Addr: a1, LocalAddr: a2, RemoteAS: 65001})
				for _, p := range routes {
					s1.Originate(p, bgp.PathAttrs{})
				}
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			accepted := make(chan net.Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			dialed, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			server := <-accepted
			driver.Attach(s1, a2, dialed)
			driver.Attach(s2, a1, server)
			driver.Start(time.Millisecond)
			deadline := time.Now().Add(10 * time.Second)
			for {
				var done bool
				driver.Locked(func() { done = s2.LocRIBSize() == len(routes) })
				if done {
					break
				}
				if time.Now().After(deadline) {
					b.Fatal("TCP transfer timed out")
				}
				time.Sleep(2 * time.Millisecond)
			}
			dialed.Close()
			server.Close()
			ln.Close()
			driver.Stop()
		}
	})
}

// BenchmarkVerifyAllPairs measures the exhaustive all-pairs matrix on the
// converged Fig. 2 network.
func BenchmarkVerifyAllPairs(b *testing.B) {
	res, err := Run(Snapshot{Topology: Fig2()}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := res.Network.AllPairs()
		// Loopbacks must be fully meshed; transfer-net /31s are local to
		// their links and legitimately unreachable from remote ASes.
		for _, src := range m.Sources {
			for j := 1; j <= 6; j++ {
				lo := netip.MustParseAddr(fmt.Sprintf("2.2.2.%d", j))
				if !m.Reach[src][lo] {
					b.Fatalf("%s cannot reach %v", src, lo)
				}
			}
		}
	}
}

// BenchmarkGNMIExtraction measures pulling all AFTs over the TCP management
// service versus in-process extraction.
func BenchmarkGNMIExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mustRun(b, Snapshot{Topology: Fig3()}, Options{UseGNMI: true})
		if len(res.AFTs) != 3 {
			b.Fatal("missing AFTs")
		}
	}
}

// BenchmarkObsOverhead measures the observability layer's cost on the E1
// pipeline body: nil observer (instrumented code, sink disabled) versus a
// metrics-only sink versus full trace collection. The disabled case is the
// one that must stay within noise of the pre-instrumentation pipeline.
func BenchmarkObsOverhead(b *testing.B) {
	body := func(b *testing.B, mk func() *Observer) {
		for i := 0; i < b.N; i++ {
			var o *Observer
			if mk != nil {
				o = mk()
			}
			good := mustRun(b, Snapshot{Topology: Fig2()}, Options{Obs: o})
			bad := mustRun(b, Snapshot{Topology: Fig2Buggy()}, Options{})
			if len(DifferentialReachability(good, bad)) == 0 {
				b.Fatal("no differences")
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { body(b, nil) })
	b.Run("metrics", func(b *testing.B) { body(b, NewMetricsObserver) })
	b.Run("trace", func(b *testing.B) { body(b, NewObserver) })
	// E11: the live-telemetry case — a metrics-only sink with one attached
	// subscriber, as `mfv run -listen` configures it. Measures the event-bus
	// fan-out (wall stamping + buffered send) on top of the metrics cost.
	b.Run("live", func(b *testing.B) {
		body(b, func() *Observer {
			o := NewMetricsObserver()
			sub := o.Subscribe(256)
			go func() {
				for range sub.Events() {
				}
			}()
			b.Cleanup(sub.Close)
			return o
		})
	})
}
