package mfv

import (
	"net/netip"
	"path/filepath"
	"testing"
)

// TestPublicAPIQuickstart exercises the documented minimal flow end to end
// through the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	res, err := Run(Snapshot{Topology: Fig3()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Network.Reachable("r1", netip.MustParseAddr("2.2.2.3")) {
		t.Error("quickstart reachability failed")
	}
	tr := res.Network.Trace("r1", netip.MustParseAddr("2.2.2.3"))
	if !tr.Delivered() || tr.Paths[0].Final != "r3" {
		t.Errorf("trace = %+v", tr.Paths)
	}
}

func TestPublicAPIDifferential(t *testing.T) {
	before, err := Run(Snapshot{Topology: Fig2()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Run(Snapshot{Topology: Fig2Buggy()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diffs := DifferentialReachability(before, after)
	if len(diffs) == 0 {
		t.Error("no diffs through public API")
	}
}

func TestPublicAPIModelBackend(t *testing.T) {
	res, err := Run(Snapshot{Topology: Fig3()}, Options{Backend: BackendModel})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coverage) != 3 {
		t.Errorf("coverage entries = %d", len(res.Coverage))
	}
}

func TestPublicTopologyRoundTrip(t *testing.T) {
	topo := Fig2()
	data, err := topo.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseTopology(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != 6 {
		t.Errorf("nodes = %d", len(got.Nodes))
	}
}

func TestPublicFeedGenerator(t *testing.T) {
	feeds := NewFeedGenerator(1).FullTable(64700, 100)
	total := 0
	for _, f := range feeds {
		total += len(f.Prefixes)
	}
	if total != 100 {
		t.Errorf("total = %d", total)
	}
}

// TestPublicSnapshotRoundTrip drives the crash-safety surface through the
// public API: converge once, capture and persist the snapshot, restore it
// from disk, and check the restored network answers queries identically to
// the live one without any emulator.
func TestPublicSnapshotRoundTrip(t *testing.T) {
	topo := Fig2()
	live, err := Run(Snapshot{Topology: topo}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := CaptureSnapshot(topo, live)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig2.snap")
	if err := SaveSnapshot(snap, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DataplaneHash != DataplaneHash(live.AFTs) {
		t.Fatal("loaded snapshot's dataplane hash does not match the live AFTs")
	}
	restored, err := RunFromSnapshot(loaded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Backend.String() != "snapshot" {
		t.Errorf("restored backend = %s", restored.Backend)
	}
	if restored.Emulator != nil {
		t.Error("restored result carries an emulator")
	}
	if diffs := DifferentialReachability(live, restored); len(diffs) != 0 {
		t.Errorf("restored forwarding differs from live: %v", diffs)
	}
	if len(restored.RouteCount()) == 0 {
		t.Error("restored result has no route counts")
	}
}

func TestPublicWANAndLine(t *testing.T) {
	if topo := WAN(9, true); len(topo.Nodes) != 9 {
		t.Error("WAN wrong size")
	}
	if topo := LineTopology(4, VendorEOS); len(topo.Links) != 3 {
		t.Error("LineTopology wrong shape")
	}
}
