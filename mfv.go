// Package mfv is the public API of the model-free verification toolkit, a
// reproduction of "Towards Accessible Model-Free Verification" (HotNets
// '25). It verifies network configurations by emulating the control plane
// to convergence with real protocol engines, extracting the dataplane as
// OpenConfig-style AFTs, and running exhaustive dataplane verification
// queries — plus a deliberately partial model-based baseline for
// comparison.
//
// The minimal flow:
//
//	topo := mfv.Fig2()                           // or your own topology+configs
//	res, err := mfv.Run(mfv.Snapshot{Topology: topo}, mfv.Options{})
//	if err != nil { ... }
//	ok := res.Network.Reachable("r1", netip.MustParseAddr("2.2.2.4"))
//
// Differential reachability across two snapshots (the paper's E1):
//
//	before, _ := mfv.Run(mfv.Snapshot{Topology: mfv.Fig2()}, mfv.Options{})
//	after, _ := mfv.Run(mfv.Snapshot{Topology: mfv.Fig2Buggy()}, mfv.Options{})
//	for _, d := range mfv.DifferentialReachability(before, after) {
//	    fmt.Println(d)
//	}
package mfv

import (
	"fmt"
	"net/netip"
	"time"

	"mfv/internal/aft"
	"mfv/internal/chaos"
	"mfv/internal/core"
	"mfv/internal/diag"
	"mfv/internal/kne"
	"mfv/internal/lint"
	"mfv/internal/obs"
	"mfv/internal/obshttp"
	"mfv/internal/routegen"
	"mfv/internal/store"
	"mfv/internal/sweep"
	"mfv/internal/testnet"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// Core pipeline types.
type (
	// Snapshot is one verification input: topology with embedded vendor
	// configs, optional injected BGP feeds, and link-state context.
	Snapshot = core.Snapshot
	// Options tunes a pipeline run (backend, convergence hold, gNMI
	// extraction).
	Options = core.Options
	// Result is a completed run: AFTs, the queryable Network, and timing.
	Result = core.Result
	// Backend selects emulation (model-free) or the model baseline.
	Backend = core.Backend
	// InjectedFeed attaches an external BGP peer announcing routes.
	InjectedFeed = core.InjectedFeed
)

// Backend values.
const (
	// BackendEmulation is the model-free path (the paper's contribution).
	BackendEmulation = core.BackendEmulation
	// BackendModel is the reference-model baseline (Batfish analogue).
	BackendModel = core.BackendModel
	// BackendSnapshot restores a previously saved converged dataplane from
	// disk (RunFromSnapshot) — no emulation, no convergence wait.
	BackendSnapshot = core.BackendSnapshot
)

// Topology types, re-exported so callers can build networks without
// touching internal packages.
type (
	// Topology is the device + link input description.
	Topology = topology.Topology
	// Node is one device with its vendor dialect and configuration.
	Node = topology.Node
	// Link wires two endpoints.
	Link = topology.Link
	// Endpoint names node:interface.
	Endpoint = topology.Endpoint
)

// Vendor dialects.
const (
	// VendorEOS selects the Arista-EOS-like dialect.
	VendorEOS = topology.VendorEOS
	// VendorJunosLike selects the hierarchical Junos-like dialect.
	VendorJunosLike = topology.VendorJunosLike
)

// Verification query types.
type (
	// BatchQueries is the parallel batch-query engine: it shards
	// (source, equivalence-class) flows across a worker pool with
	// per-device memoization. The zero value uses GOMAXPROCS workers;
	// results are byte-identical at any worker count. The Network query
	// methods and DifferentialReachability use it implicitly (sized by
	// Options.Workers); construct one directly to override per query.
	BatchQueries = verify.Queries
	// Network answers dataplane queries over a set of AFTs.
	Network = verify.Network
	// Trace is a multipath forwarding walk result.
	Trace = verify.Trace
	// Path is one branch of a trace.
	Path = verify.Path
	// Diff is one differential-reachability finding.
	Diff = verify.Diff
	// Disposition classifies a packet's fate.
	Disposition = verify.Disposition
)

// Dispositions.
const (
	Delivered    = verify.Delivered
	ExitsNetwork = verify.ExitsNetwork
	Dropped      = verify.Dropped
	NoRoute      = verify.NoRoute
	Loop         = verify.Loop
)

// Run executes the verification pipeline on a snapshot: emulate (or model)
// the control plane, extract the converged dataplane, and return a
// queryable Result.
func Run(snap Snapshot, opts Options) (*Result, error) { return core.Run(snap, opts) }

// DifferentialReachability exhaustively compares forwarding outcomes for
// every packet equivalence class from every device across two completed
// runs, returning the flows whose fate changed.
func DifferentialReachability(before, after *Result) []Diff {
	return core.Differential(before, after)
}

// ParseTopology decodes a JSON topology file.
func ParseTopology(data []byte) (*Topology, error) { return topology.Parse(data) }

// Scenario constructors from the paper's evaluation.

// Fig2 returns the paper's 6-node, three-AS test network (iBGP + eBGP +
// IS-IS, production-complexity configs).
func Fig2() *Topology { return testnet.Fig2() }

// Fig2Buggy returns Fig2 with the r2–r3 eBGP session removed (E1's buggy
// variant).
func Fig2Buggy() *Topology { return testnet.Fig2Buggy() }

// Fig3 returns the 3-node line with the misordered interface configuration
// that exposes the reference-model bug (E3).
func Fig3() *Topology { return testnet.Fig3() }

// WAN returns an n-router backbone replica with an eBGP injection edge on
// its first router, used by the convergence experiment (E6).
func WAN(n int, multiVendor bool) *Topology { return testnet.WAN(n, multiVendor) }

// MultiRegionTopology returns the region-sharded scale shape: regions
// disconnected rings of per routers each, fully configured for IS-IS with
// globally unique addressing (the fixture behind `topogen -shape regions`).
// Run it with Options.ShardRegions to converge the regions in parallel.
func MultiRegionTopology(regions, per int) *Topology {
	return testnet.MultiRegionFabric(regions, per)
}

// ScaleLoopback returns the loopback address the generated IS-IS fabrics
// (MultiRegionTopology, topogen) assign to node index i (0-based).
func ScaleLoopback(i int) netip.Addr { return testnet.ScaleLoopback(i) }

// FeedGenerator builds synthetic BGP route feeds for injection.
type FeedGenerator = routegen.Generator

// NewFeedGenerator returns a deterministic feed generator.
func NewFeedGenerator(seed int64) *FeedGenerator { return routegen.New(seed) }

// LineTopology returns a bare n-node chain (configs must be filled in).
func LineTopology(n int, vendor topology.Vendor) *Topology { return topology.Line(n, vendor) }

// What-if exploration (§6 of the paper).
type (
	// FailureFinding is the differential result of one link-cut context.
	FailureFinding = core.FailureFinding
	// OrderingReport compares dataplanes across event orderings.
	OrderingReport = core.OrderingReport
	// Invariant is a named predicate over a verification network.
	Invariant = core.Invariant
)

// ExploreSingleLinkFailures emulates one context per single link cut and
// differences each against the intact baseline.
func ExploreSingleLinkFailures(snap Snapshot, opts Options) ([]FailureFinding, error) {
	return core.ExploreSingleLinkFailures(snap, opts)
}

// SurvivesAnySingleLinkCut summarizes findings into a pass/fail with the
// violating cuts.
func SurvivesAnySingleLinkCut(f []FailureFinding) (bool, []Endpoint) {
	return core.SurvivesAnySingleLinkCut(f)
}

// ExploreOrderings re-emulates a snapshot under several event orderings and
// reports whether the converged dataplanes agree (the paper's
// non-determinism check).
func ExploreOrderings(snap Snapshot, opts Options, seeds []int64) (*OrderingReport, error) {
	return core.ExploreOrderings(snap, opts, seeds)
}

// Performance checking on the produced dataplane (§6).
type (
	// Demand is one traffic intent for utilization checking.
	Demand = verify.Demand
	// UtilizationReport carries per-link loads and undelivered demands.
	UtilizationReport = verify.UtilizationReport
)

// Observability: traces, metrics, and phase timing.
type (
	// Observer collects virtual-time trace events, metrics, and phase
	// timings from a pipeline run. Attach via Options.Obs; nil disables
	// observability at near-zero cost.
	Observer = obs.Observer
	// TraceEvent is one virtual-time trace record.
	TraceEvent = obs.Event
	// PhaseRecord is one completed pipeline phase (virtual + wall timing).
	PhaseRecord = obs.PhaseRecord
	// TimelineEntry is one router's convergence state (last RIB change,
	// route count), from Result.Emulator.ConvergenceTimeline().
	TimelineEntry = kne.TimelineEntry
)

// Trace event types (TraceEvent.Type values).
const (
	EvPodReady       = obs.EvPodReady
	EvStartupDone    = obs.EvStartupDone
	EvLinkUp         = obs.EvLinkUp
	EvLinkDown       = obs.EvLinkDown
	EvBGPSession     = obs.EvBGPSession
	EvISISAdjacency  = obs.EvISISAdjacency
	EvLSPFlood       = obs.EvLSPFlood
	EvRouteChurn     = obs.EvRouteChurn
	EvCrash          = obs.EvCrash
	EvConverged      = obs.EvConverged
	EvAFTExport      = obs.EvAFTExport
	EvSpanStart      = obs.EvSpanStart
	EvSpanEnd        = obs.EvSpanEnd
	EvPodCrash       = obs.EvPodCrash
	EvNodeDown       = obs.EvNodeDown
	EvNodeUp         = obs.EvNodeUp
	EvBGPReset       = obs.EvBGPReset
	EvDegraded       = obs.EvDegraded
	EvFaultInject    = obs.EvFaultInject
	EvFaultClear     = obs.EvFaultClear
	EvChaosVerdict   = obs.EvChaosVerdict
	EvQuarantine     = obs.EvQuarantine
	EvSweepCandidate = obs.EvSweepCandidate
	EvSweepVerdict   = obs.EvSweepVerdict
)

// NewObserver returns an observer collecting the full trace, metrics, and
// phase records. Same-seed runs produce byte-identical traces.
func NewObserver() *Observer { return obs.New() }

// NewMetricsObserver returns an observer recording metrics and phases but
// discarding trace events — the right sink for large runs. Live event
// subscribers (Observer.Subscribe, the HTTP /events stream) still receive
// events: the bus delivers without retaining.
func NewMetricsObserver() *Observer { return obs.NewMetricsOnly() }

// Live telemetry: the observer's streaming/serving face.
type (
	// ObsServer serves an observer over HTTP: /metrics (Prometheus text),
	// /metrics.json, /events (SSE), /phases, /healthz, /readyz, and an
	// embedded live dashboard at /. Readiness flips automatically when the
	// run's `converged` event passes the bus.
	ObsServer = obshttp.Server
	// ObsSubscription is one live event consumer attached with
	// Observer.Subscribe: a bounded stream with slow-client drop accounting
	// (see Dropped and the obs_dropped_events_total counter).
	ObsSubscription = obs.Subscription
	// MetricSnapshot is one metric series in a registry snapshot.
	MetricSnapshot = obs.Metric
)

// NewObsServer returns an HTTP server over the observer. Call Start(addr)
// to listen (":0" picks a free port and returns the bound address) and
// Close to tear down; Handler() exposes the mux for embedding.
func NewObsServer(o *Observer) *ObsServer { return obshttp.New(o) }

// Chaos engineering: deterministic fault injection with differential
// verification after every fault (set Options.Chaos, or drive the engine
// directly against Result.Emulator).
type (
	// ChaosScenario is a named, seeded fault timeline (JSON-serializable).
	ChaosScenario = chaos.Scenario
	// ChaosFault is one timed fault: link cut/flap/degrade, pod crash,
	// kube-node failure, or BGP session reset.
	ChaosFault = chaos.Fault
	// ChaosReport is the executed timeline with per-fault verdicts.
	ChaosReport = chaos.Report
	// ChaosVerdict scores one fault: flows lost, recovered, and the
	// reconvergence time on the virtual clock.
	ChaosVerdict = chaos.Verdict
	// Convergence is the outcome of a degraded or post-fault settle wait.
	Convergence = kne.Convergence
)

// Hardening & input validation: typed diagnostics and the preflight linter
// behind `mfv lint`.
type (
	// Diagnostic is one structured finding: severity, producing subsystem,
	// device, source path, input offset, and message. It implements error.
	Diagnostic = diag.Error
	// DiagnosticList is a sorted lint report; empty means clean.
	DiagnosticList = diag.List
	// Severity classifies a diagnostic (ordered: Info < Warning < Error <
	// Fatal, so comparisons like sev >= SevError are meaningful).
	Severity = diag.Severity
	// AFT is one device's extracted forwarding table (Result.AFTs values).
	AFT = aft.AFT
)

// Severities.
const (
	SevInfo    = diag.SevInfo
	SevWarning = diag.SevWarning
	SevError   = diag.SevError
	SevFatal   = diag.SevFatal
)

// LintSnapshot validates a snapshot before the expensive emulation boots:
// topology referential integrity, per-device config parses, duplicate
// router IDs and addresses, unresolvable static next hops, and MPLS LSP
// consistency. Findings are collected per device, never aborting the walk.
func LintSnapshot(topo *Topology) DiagnosticList { return lint.ValidateSnapshot(topo) }

// LintAFTs audits extracted forwarding state: per-device AFT integrity and
// cross-device MPLS label-table consistency.
func LintAFTs(topo *Topology, afts map[string]*AFT) DiagnosticList {
	return lint.ValidateAFTs(topo, afts)
}

// LintLive cross-checks each running router's exported AFT against its RIB
// on a completed run's emulator (Result.Emulator). Quarantined routers are
// skipped: their empty table is the containment contract.
func LintLive(em *kne.Emulator) DiagnosticList { return lint.ValidateLive(em) }

// Failure sweep: exhaustive k-failure resilience exploration with pruned
// enumeration and ranked blast radii (run after a pipeline run, against
// Result.Emulator).
type (
	// SweepOptions configures a failure sweep: depth (k=1 or 2), element
	// kinds, worker pool, and the Brute switch disabling the prunes.
	SweepOptions = sweep.Options
	// SweepReport is the full sweep outcome, rows ranked worst-first.
	SweepReport = sweep.Report
	// SweepRow is one ranked blast-radius result.
	SweepRow = sweep.Row
	// SweepKind selects a failure element class.
	SweepKind = sweep.Kind
	// SweepElement is one atomic failure in a candidate.
	SweepElement = sweep.Element
)

// Sweep element kinds.
const (
	SweepLink = sweep.KindLink
	SweepNode = sweep.KindNode
	SweepBGP  = sweep.KindBGP
)

// RunSweep enumerates every k-failure combination of the given kinds on a
// completed emulation run, applies each candidate, scores its blast radius
// against the healthy baseline with the delta differential, and rolls it
// back — returning the ranked report. Requires an emulation-backend result
// (Result.Emulator non-nil). Unless the caller supplies its own
// BuildReplicas, the replica pool boots through core.BuildReplicas, which
// shares the sharded-boot worker machinery and gates every lane on state-
// fingerprint equality with the primary.
func RunSweep(res *Result, topo *Topology, opts SweepOptions) (*SweepReport, error) {
	if res.Emulator == nil {
		return nil, fmt.Errorf("mfv: RunSweep needs an emulation result (BackendEmulation)")
	}
	if opts.BuildReplicas == nil {
		em, hold, timeout := res.Emulator, opts.Hold, opts.Timeout
		if hold == 0 {
			hold = 2 * time.Minute
		}
		if timeout == 0 {
			timeout = 30 * time.Minute
		}
		// Capture the healthy baseline fingerprint now: lane supervision may
		// call this factory mid-sweep, while the primary is drifted or mid-
		// candidate, and a rebuilt lane must match the sweep's baseline, not
		// whatever the primary looks like at rebuild time.
		want := em.StateFingerprint()
		opts.BuildReplicas = func(n int) ([]*kne.Emulator, error) {
			return core.BuildReplicas(em, n, want, hold, timeout)
		}
	}
	return sweep.Run(res.Emulator, topo, opts)
}

// ParseSweepKinds parses a comma-separated kind list ("link,node,bgp").
func ParseSweepKinds(csv string) ([]SweepKind, error) { return sweep.ParseKinds(csv) }

// Crash safety: durable snapshots of converged state (internal/store).
type (
	// StoredSnapshot is the on-disk converged-state artifact: versioned,
	// CRC-checksummed, atomically written. It embeds the topology and every
	// device's AFT, so it is self-contained — restore needs no topology
	// file, and `mfv run -from-snapshot` skips convergence entirely.
	StoredSnapshot = store.Snapshot
)

// CaptureSnapshot packages a completed emulation run into a durable
// snapshot (AFTs, FIB generation stamps, topology hash, seed).
func CaptureSnapshot(topo *Topology, res *Result) (*StoredSnapshot, error) {
	return core.CaptureSnapshot(topo, res)
}

// RunFromSnapshot rebuilds a verification-ready Result from a stored
// snapshot without emulating: reachability, differential, and sweep-baseline
// use are all available; chaos and gNMI need a live emulation and are
// rejected.
func RunFromSnapshot(s *StoredSnapshot, opts Options) (*Result, error) {
	return core.RunFromSnapshot(s, opts)
}

// SaveSnapshot writes a snapshot atomically (temp + fsync + rename).
func SaveSnapshot(s *StoredSnapshot, path string) error { return s.Save(path) }

// LoadSnapshot reads and fully validates a snapshot file. Corruption,
// truncation, and version skew return Diagnostics — never a panic.
func LoadSnapshot(path string) (*StoredSnapshot, error) { return store.Load(path) }

// DataplaneHash digests a set of AFTs into the content identity stored in
// StoredSnapshot.DataplaneHash; use it to check a live run against a saved
// snapshot before trusting resumed artifacts.
func DataplaneHash(afts map[string]*AFT) string { return store.HashAFTs(afts) }

// HashBytes digests raw bytes into the hex identity used by
// StoredSnapshot.TopologyHash (compare against a re-marshaled topology to
// detect drift between a snapshot and a topology file).
func HashBytes(b []byte) string { return store.HashBytes(b) }

// ParseChaosScenario decodes and validates a scenario JSON file.
func ParseChaosScenario(data []byte) (*ChaosScenario, error) { return chaos.Parse(data) }

// ChaosBuiltin returns the named built-in scenario (a private copy).
func ChaosBuiltin(name string) (*ChaosScenario, bool) { return chaos.Builtin(name) }

// ChaosBuiltins lists the built-in scenarios, sorted by name.
func ChaosBuiltins() []*ChaosScenario { return chaos.Builtins() }
