// Model gap (the paper's experiments E2 and E3): run the SAME Fig. 3
// configurations through both backends — the model-free emulation pipeline
// and the reference-model baseline — and show (a) how many config lines the
// model fails to understand, and (b) that the two dataplanes disagree about
// reachability, with emulation matching the real router behaviour.
//
//	go run ./examples/modelgap
package main

import (
	"fmt"
	"log"
	"net/netip"

	"mfv"
)

func main() {
	topo := mfv.Fig3()

	fmt.Println("=== model-based backend (reference-model baseline) ===")
	mdl, err := mfv.Run(mfv.Snapshot{Topology: topo}, mfv.Options{Backend: mfv.BackendModel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsing coverage:")
	for _, name := range []string{"r1", "r2", "r3"} {
		cov := mdl.Coverage[name]
		fmt.Printf("  %s: %d/%d lines unrecognized, %d silently ignored\n",
			name, cov.UnrecognizedCount(), cov.TotalLines, len(cov.Ignored))
		for _, w := range cov.Ignored {
			fmt.Printf("     ignored L%d: %q (%s)\n", w.Line, w.Text, w.Why)
		}
	}

	fmt.Println("\n=== model-free backend (emulation) ===")
	emu, err := mfv.Run(mfv.Snapshot{Topology: topo}, mfv.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreachability r2 -> r1 loopback (2.2.2.1):")
	dst := netip.MustParseAddr("2.2.2.1")
	fmt.Printf("  model:     %v\n", mdl.Network.Reachable("r2", dst))
	fmt.Printf("  emulation: %v   <- matches actual router behaviour\n",
		emu.Network.Reachable("r2", dst))

	fmt.Println("\ncross-backend differential reachability (model => emulation):")
	diffs := mfv.DifferentialReachability(mdl, emu)
	for i, d := range diffs {
		fmt.Printf("  %s\n", d)
		if i == 11 {
			fmt.Printf("  … and %d more\n", len(diffs)-12)
			break
		}
	}
	fmt.Printf("\n%d flows diverge between the backends on identical configs.\n", len(diffs))
}
