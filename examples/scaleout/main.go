// Scale-out (the paper's experiments E4–E6): reproduce the emulation
// scalability arithmetic — 60 half-vCPU routers on one e2-standard-32,
// 1,000 devices on a 17-node cluster — and measure startup plus convergence
// time for a 30-node multi-vendor WAN replica with injected BGP feeds.
//
//	go run ./examples/scaleout
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"mfv"
	"mfv/internal/kube"
	"mfv/internal/sim"
)

func main() {
	singleNode()
	cluster()
	convergence()
}

// singleNode packs routers onto one e2-standard-32 until it is full.
func singleNode() {
	fmt.Println("=== E4: single e2-standard-32 node (32 vCPU / 128 GB) ===")
	s := sim.New(1)
	c := kube.NewCluster(s, kube.E2Standard32("node1"))
	placed := 0
	for i := 0; ; i++ {
		spec := kube.AristaCEOSRequest(fmt.Sprintf("r%d", i), 90*time.Second)
		if _, err := c.Schedule(spec); err != nil {
			break
		}
		placed++
	}
	util := c.Utilization()[0]
	fmt.Printf("routers placed: %d (paper: ~60 with system overhead)\n", placed)
	fmt.Printf("node utilization: %dm/%dm CPU, %d/%d MiB\n\n",
		util.CPUUsed, util.CPUTotal, util.MemUsed, util.MemTotal)
}

// cluster places 1,000 routers on a 17-node cluster.
func cluster() {
	fmt.Println("=== E5: 1,000 devices on a 17-node cluster ===")
	s := sim.New(1)
	specs := make([]kube.NodeSpec, 17)
	for i := range specs {
		specs[i] = kube.E2Standard32(fmt.Sprintf("node%d", i+1))
	}
	c := kube.NewCluster(s, specs...)
	for i := 0; i < 1000; i++ {
		if _, err := c.Schedule(kube.AristaCEOSRequest(fmt.Sprintf("r%d", i), 90*time.Second)); err != nil {
			log.Fatalf("router %d did not fit: %v", i, err)
		}
	}
	s.Run() // boot everything
	fmt.Printf("placed and booted %d pods; per-node counts:\n", len(c.Pods()))
	for _, u := range c.Utilization() {
		fmt.Printf("  %-7s %3d pods  %5dm CPU\n", u.Name, u.PodCount, u.CPUUsed)
	}
	fmt.Println()
}

// convergence brings up the 30-node multi-vendor WAN replica, injects a
// synthetic full table, and reports the paper's two headline timings.
func convergence() {
	fmt.Println("=== E6: 30-node multi-vendor WAN, injected routes ===")
	topo := mfv.WAN(30, true)
	// 200k prefixes at the profile's scaled processing rate reproduces the
	// paper's "millions of routes, ~3 minute convergence" shape (both feed
	// size and rate are scaled 10x down; see DESIGN.md).
	feeds := mfv.NewFeedGenerator(7).FullTable(64700, 200000)
	res, err := mfv.Run(mfv.Snapshot{
		Topology: topo,
		Feeds: []mfv.InjectedFeed{{
			Router:   topo.Nodes[0].Name,
			PeerAddr: netip.MustParseAddr("198.51.100.1"),
			PeerAS:   64700,
			Feeds:    feeds,
		}},
	}, mfv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-time infra startup:     %v (paper: 12–17 min)\n", res.StartupAt.Round(time.Second))
	fmt.Printf("convergence after startup:  %v (paper: ~3 min)\n",
		(res.ConvergedAt - res.StartupAt).Round(time.Second))
	fmt.Printf("routes by protocol: %v\n", res.RouteCount())
}
