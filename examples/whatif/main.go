// What-if exploration (the directions sketched in §6 of the paper):
//
//  1. single-link-cut tolerance — emulate one context per link cut and
//     check the "network keeps delivering" invariant exhaustively;
//
//  2. ordering exploration — re-run the same snapshot under several event
//     orderings and confirm the converged dataplanes agree;
//
//  3. performance checking — route a demand matrix over the produced
//     dataplane and report per-link utilization.
//
//     go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"net/netip"

	"mfv"
)

func main() {
	linkCuts()
	orderings()
	utilization()
}

func linkCuts() {
	fmt.Println("=== single-link-cut exploration (Fig. 2 network) ===")
	findings, err := mfv.ExploreSingleLinkFailures(mfv.Snapshot{Topology: mfv.Fig2()}, mfv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		verdict := "absorbed (outcomes unchanged)"
		if f.LostFlows > 0 {
			verdict = fmt.Sprintf("LOSES %d flows", f.LostFlows)
		}
		fmt.Printf("  cut %-18s -> %s\n", f.Cut, verdict)
	}
	ok, violations := mfv.SurvivesAnySingleLinkCut(findings)
	fmt.Printf("survives any single cut: %v", ok)
	if !ok {
		fmt.Printf("  (critical links: %v)", violations)
	}
	fmt.Println()
	fmt.Println()
}

func orderings() {
	fmt.Println("=== ordering exploration (non-determinism check) ===")
	rep, err := mfv.ExploreOrderings(mfv.Snapshot{Topology: mfv.Fig2()}, mfv.Options{},
		[]int64{1, 7, 42, 1234})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeds: %d, dataplanes agree: %v\n", rep.Seeds, rep.Agree)
	for i, c := range rep.ConvergedAt {
		fmt.Printf("  run %d converged at %v (virtual)\n", i+1, c.Round(1e9))
	}
	fmt.Println()
}

func utilization() {
	fmt.Println("=== link utilization for a demand matrix (Fig. 2) ===")
	res, err := mfv.Run(mfv.Snapshot{Topology: mfv.Fig2()}, mfv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Every AS1/AS3 router sends 10 units to every AS2 loopback: the
	// inter-AS links become the hot spots.
	var demands []mfv.Demand
	for _, src := range []string{"r3", "r4", "r5", "r6"} {
		for _, dst := range []string{"2.2.2.1", "2.2.2.2"} {
			demands = append(demands, mfv.Demand{
				Src: src, Dst: netip.MustParseAddr(dst), Rate: 10,
			})
		}
	}
	rep := res.Network.Utilization(demands)
	fmt.Print(rep)
	over := rep.OverCapacity(func(mfv.Endpoint) float64 { return 50 })
	fmt.Printf("links over a 50-unit capacity: %d\n", len(over))
}
