// Quickstart: run the model-free verification pipeline on the paper's
// 3-node Fig. 3 network and ask basic reachability questions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"mfv"
)

func main() {
	// The Fig. 3 network: three routers in a line running IS-IS, with the
	// interface configuration ordering that trips model-based tools.
	topo := mfv.Fig3()

	// Collect a virtual-time trace and phase timings while the pipeline
	// runs. Same-seed runs produce byte-identical traces.
	o := mfv.NewObserver()

	// Emulate the control plane until the dataplane stabilizes, then
	// extract AFTs and build the verification view.
	res, err := mfv.Run(mfv.Snapshot{Topology: topo}, mfv.Options{Obs: o})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulation startup: %v (virtual), converged at %v\n\n",
		res.StartupAt.Round(1e9), res.ConvergedAt.Round(1e9))

	// Where did the pipeline spend its time?
	fmt.Println("pipeline phases (virtual time / wall time):")
	for _, p := range o.Phases() {
		fmt.Printf("  %-10s %12v %12v\n", p.Name, p.VDur().Round(1e6), p.Wall.Round(1e4))
	}
	fmt.Printf("trace captured %d events; adjacency transitions:\n", len(o.Events()))
	for _, ev := range o.Events() {
		if ev.Type == mfv.EvISISAdjacency {
			fmt.Printf("  %12v %s %s\n", ev.At, ev.Device, ev.Detail)
		}
	}
	fmt.Println()

	// All-pairs loopback reachability.
	fmt.Println("reachability (src -> loopback):")
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			src := fmt.Sprintf("r%d", i)
			dst := netip.MustParseAddr(fmt.Sprintf("2.2.2.%d", j))
			fmt.Printf("  %s -> %v: %v\n", src, dst, res.Network.Reachable(src, dst))
		}
	}

	// An exhaustive multipath traceroute.
	fmt.Println("\ntraceroute r1 -> 2.2.2.3:")
	for _, p := range res.Network.Trace("r1", netip.MustParseAddr("2.2.2.3")).Paths {
		fmt.Printf("  %s\n", p)
	}

	// Poke at the emulated router the way an operator would (the "show ip
	// route" equivalent).
	r1, _ := res.Emulator.Router("r1")
	fmt.Println("\nr1 routing table:")
	for _, rt := range r1.RIB().Routes() {
		fmt.Printf("  %s\n", rt)
	}
}
