// Differential reachability (the paper's experiment E1): run the healthy
// Fig. 2 network and a buggy variant with the r2–r3 eBGP session removed,
// then exhaustively compare forwarding outcomes across the two snapshots.
// The query surfaces exactly the flows that broke — the loss of
// connectivity from AS65003 to AS65002.
//
//	go run ./examples/differential
package main

import (
	"fmt"
	"log"
	"strings"

	"mfv"
)

func main() {
	fmt.Println("running healthy snapshot (6 nodes, iBGP + eBGP + IS-IS)…")
	before, err := mfv.Run(mfv.Snapshot{Topology: mfv.Fig2()}, mfv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  converged at %v (virtual)\n", before.ConvergedAt.Round(1e9))

	fmt.Println("running buggy snapshot (r2–r3 eBGP session removed)…")
	after, err := mfv.Run(mfv.Snapshot{Topology: mfv.Fig2Buggy()}, mfv.Options{})
	if err != nil {
		log.Fatal(err)
	}

	diffs := mfv.DifferentialReachability(before, after)
	fmt.Printf("\ndifferential reachability: %d changed flows\n", len(diffs))

	// Summarize per source router, highlighting lost deliveries.
	lostBySrc := map[string]int{}
	for _, d := range diffs {
		if strings.Contains(d.Before, "Delivered") && !strings.Contains(d.After, "Delivered") {
			lostBySrc[d.Src]++
		}
	}
	fmt.Println("\nlost deliveries per source:")
	for i := 1; i <= 6; i++ {
		src := fmt.Sprintf("r%d", i)
		fmt.Printf("  %s (AS%d): %d destination classes lost\n", src, fig2AS(src), lostBySrc[src])
	}

	fmt.Println("\nsample findings:")
	shown := 0
	for _, d := range diffs {
		if strings.Contains(d.Before, "Delivered") && !strings.Contains(d.After, "Delivered") {
			fmt.Printf("  %s\n", d)
			shown++
			if shown == 8 {
				break
			}
		}
	}
}

func fig2AS(name string) int {
	switch name {
	case "r1", "r2":
		return 65002
	case "r3", "r4":
		return 65003
	default:
		return 65001
	}
}
