module mfv

go 1.22
