package mfv

// The scale benchmark tier: boot, converge, and verify 10k+ routers through
// the region-sharded pipeline. These run with the full suite (nightly, or
// the dedicated CI scale job with -benchtime 1x) and are skipped under
// -short so the per-PR bench job stays fast. Reported metrics are the
// headline scale numbers (routers/sec, routes/sec, bytes/router) recorded
// in EXPERIMENTS.md E13.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"mfv/internal/kube"
	"mfv/internal/sim"
)

// BenchmarkScaleBoot schedules 10,000 router pods across a 170-node cluster
// and boots them all to Running on the virtual clock — the orchestration
// layer alone, no protocol engines. Reported routers/sec is wall-clock
// scheduling + boot throughput.
func BenchmarkScaleBoot(b *testing.B) {
	if testing.Short() {
		b.Skip("scale tier: run without -short")
	}
	const pods = 10000
	for i := 0; i < b.N; i++ {
		start := time.Now()
		s := sim.New(1)
		specs := make([]kube.NodeSpec, 170)
		for j := range specs {
			specs[j] = kube.E2Standard32(fmt.Sprintf("n%d", j))
		}
		c := kube.NewCluster(s, specs...)
		for j := 0; j < pods; j++ {
			if _, err := c.Schedule(kube.AristaCEOSRequest(fmt.Sprintf("r%d", j), 90*time.Second)); err != nil {
				b.Fatal(err)
			}
		}
		s.Run()
		if !c.AllRunning() {
			b.Fatal("pods not all Running")
		}
		b.ReportMetric(float64(pods)/time.Since(start).Seconds(), "routers/sec")
	}
}

// BenchmarkScaleConverge runs the full pipeline — boot, protocol
// convergence, AFT extraction, verification indexing, and an end-to-end
// differential-style query — over region-sharded fabrics of 1k, 5k, and
// 10k routers (regions of 20). bytes/router is the live-heap cost of the
// retained Result (AFTs + verification network) after the emulators are
// released, measured across a forced GC.
func BenchmarkScaleConverge(b *testing.B) {
	for _, routers := range []int{1000, 5000, 10000} {
		b.Run(fmt.Sprintf("routers=%d", routers), func(b *testing.B) {
			if testing.Short() {
				b.Skip("scale tier: run without -short")
			}
			const per = 20
			for i := 0; i < b.N; i++ {
				runtime.GC()
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				start := time.Now()
				topo := MultiRegionTopology(routers/per, per)
				res := mustRun(b, Snapshot{Topology: topo}, Options{ShardRegions: true})
				wall := time.Since(start).Seconds()
				if len(res.AFTs) != routers {
					b.Fatalf("extracted %d AFTs, want %d", len(res.AFTs), routers)
				}
				routes := 0
				for _, a := range res.AFTs {
					routes += len(a.IPv4Entries)
				}
				// End-to-end query answerability on the merged network: the
				// last region's ring is internally meshed, and the region cut
				// is airtight.
				lastBase := routers - per // node index of the last region's first router
				srcName := fmt.Sprintf("g%dn1", routers/per)
				if !res.Network.Reachable(srcName, ScaleLoopback(lastBase+per-1)) {
					b.Fatalf("%s cannot reach its region's far loopback", srcName)
				}
				if res.Network.Reachable(srcName, ScaleLoopback(0)) {
					b.Fatalf("%s reaches a foreign region", srcName)
				}
				runtime.GC()
				runtime.ReadMemStats(&m1)
				perRouter := float64(m1.HeapAlloc-m0.HeapAlloc) / float64(routers)
				b.ReportMetric(float64(routers)/wall, "routers/sec")
				b.ReportMetric(float64(routes)/wall, "routes/sec")
				b.ReportMetric(perRouter, "bytes/router")
				scaleSink = res
			}
		})
	}
}

// BenchmarkScaleUnsharded is the comparison point for the sharded tier: the
// same 1k-router fabric through the single-emulator path, with the Result
// (which retains the whole emulated control plane) measured the same way.
// The bytes/router ratio against BenchmarkScaleConverge/routers=1000 is the
// memory-compaction headline in EXPERIMENTS.md E13.
func BenchmarkScaleUnsharded(b *testing.B) {
	if testing.Short() {
		b.Skip("scale tier: run without -short")
	}
	const routers, per = 1000, 20
	for i := 0; i < b.N; i++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		topo := MultiRegionTopology(routers/per, per)
		res := mustRun(b, Snapshot{Topology: topo}, Options{})
		wall := time.Since(start).Seconds()
		if len(res.AFTs) != routers {
			b.Fatalf("extracted %d AFTs, want %d", len(res.AFTs), routers)
		}
		runtime.GC()
		runtime.ReadMemStats(&m1)
		b.ReportMetric(float64(m1.HeapAlloc-m0.HeapAlloc)/float64(routers), "bytes/router")
		b.ReportMetric(float64(routers)/wall, "routers/sec")
		scaleSink = res
	}
}

// BenchmarkSnapshotSaveLoad measures the crash-safety store at scale: a
// converged 1k-router sharded fabric captured into the versioned,
// CRC-checksummed snapshot format, written atomically (save), decoded and
// fully validated off disk (load), and rebuilt into a queryable
// verification network with no emulation (restore). bytes is the on-disk
// artifact size. Unlike the rest of this file it runs in the per-PR bench
// job too (no -short skip): the 1k-router setup converges in under a
// second, and save/load is on the benchgate criticals list.
func BenchmarkSnapshotSaveLoad(b *testing.B) {
	const routers, per = 1000, 20
	topo := MultiRegionTopology(routers/per, per)
	res := mustRun(b, Snapshot{Topology: topo}, Options{ShardRegions: true})
	snap, err := CaptureSnapshot(topo, res)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "scale.snap")
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := SaveSnapshot(snap, path); err != nil {
				b.Fatal(err)
			}
		}
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(fi.Size()), "bytes")
	})
	if err := SaveSnapshot(snap, path); err != nil {
		b.Fatal(err)
	}
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loaded, err := LoadSnapshot(path)
			if err != nil {
				b.Fatal(err)
			}
			scaleSink = loaded
		}
	})
	b.Run("restore", func(b *testing.B) {
		loaded, err := LoadSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			restored, err := RunFromSnapshot(loaded, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if len(restored.AFTs) != routers {
				b.Fatalf("restored %d AFTs, want %d", len(restored.AFTs), routers)
			}
			scaleSink = restored
		}
	})
}

// scaleSink pins each measured Result so bytes/router reflects live retained
// state and nightly pprof heap profiles attribute it.
var scaleSink any
