// Command benchtab regenerates every quantitative result in the paper's
// evaluation (§5) plus the survey statistics (§2), printing each experiment
// as a table with the paper's reported value alongside the measured one.
//
// Usage:
//
//	benchtab            # run all experiments
//	benchtab -e e1,e3   # run selected experiments
//	benchtab -quick     # reduce E5/E6 sizes for a fast pass
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"mfv"
	"mfv/internal/config/eos"
	"mfv/internal/kube"
	"mfv/internal/sim"
	"mfv/internal/survey"
)

func main() {
	var (
		exps  = flag.String("e", "e1,e2,e3,e4,e5,e6,e7", "comma-separated experiment ids")
		quick = flag.Bool("quick", false, "smaller sizes for E5/E6")
	)
	flag.Parse()
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	runners := []struct {
		id string
		fn func(bool) error
	}{
		{"e1", e1}, {"e2", e2}, {"e3", e3}, {"e4", e4}, {"e5", e5}, {"e6", e6}, {"e7", e7},
	}
	failed := false
	for _, r := range runners {
		if !want[r.id] {
			continue
		}
		if err := r.fn(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

func header(id, title string) {
	fmt.Printf("── %s: %s %s\n", strings.ToUpper(id), title, strings.Repeat("─", 50-len(title)))
}

// phaseLine renders an observer's phase records as one compact summary line.
func phaseLine(o *mfv.Observer) string {
	var parts []string
	for _, p := range o.Phases() {
		parts = append(parts, fmt.Sprintf("%s=%v/%v", p.Name,
			p.VDur().Round(time.Second), p.Wall.Round(time.Millisecond)))
	}
	return strings.Join(parts, " ")
}

// e1: differential reachability uncovers the r2–r3 eBGP session loss.
func e1(bool) error {
	header("e1", "differential reachability (Fig. 2)")
	o := mfv.NewMetricsObserver()
	good, err := mfv.Run(mfv.Snapshot{Topology: mfv.Fig2()}, mfv.Options{Obs: o})
	if err != nil {
		return err
	}
	bad, err := mfv.Run(mfv.Snapshot{Topology: mfv.Fig2Buggy()}, mfv.Options{})
	if err != nil {
		return err
	}
	diffs := mfv.DifferentialReachability(good, bad)
	as3LostAS2 := 0
	for _, d := range diffs {
		if (d.Src == "r3" || d.Src == "r4") &&
			(d.Dst == netip.MustParseAddr("2.2.2.1") || d.Dst == netip.MustParseAddr("2.2.2.2")) &&
			strings.Contains(d.Before, "Delivered") && !strings.Contains(d.After, "Delivered") {
			as3LostAS2++
		}
	}
	fmt.Printf("changed flows total:              %d\n", len(diffs))
	fmt.Printf("AS3->AS2 loopback flows lost:     %d   (paper: query surfaces AS3->AS2 loss; expect 4)\n", as3LostAS2)
	fmt.Printf("phases (virtual/wall):            %s\n", phaseLine(o))
	fmt.Printf("effort: sim events %d, BGP updates %d, SPF runs %d, ECs %d\n",
		o.Gauge("sim_events_total").Value(), o.Counter("bgp_updates_total").Value(),
		o.Counter("spf_runs_total").Value(), o.Gauge("ec_count").Value())
	ok := "REPRODUCED"
	if as3LostAS2 != 4 {
		ok = "MISMATCH"
	}
	fmt.Println("shape:", ok)
	return nil
}

// e2: model parsing coverage on the Fig. 2 configs.
func e2(bool) error {
	header("e2", "model feature coverage (Fig. 2 configs)")
	topo := mfv.Fig2()
	res, err := mfv.Run(mfv.Snapshot{Topology: topo}, mfv.Options{Backend: mfv.BackendModel})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %14s   paper: 62-82 total, 38-42 unrecognized\n", "device", "lines", "unrecognized")
	inBand := true
	for _, n := range topo.Nodes {
		cov := res.Coverage[n.Name]
		total := eos.CountConfigLines(n.Config)
		un := cov.UnrecognizedCount()
		fmt.Printf("%-8s %8d %14d\n", n.Name, total, un)
		if total < 62 || total > 82 || un < 38 || un > 42 {
			inBand = false
		}
	}
	ok := "REPRODUCED"
	if !inBand {
		ok = "MISMATCH"
	}
	fmt.Println("shape:", ok)
	return nil
}

// e3: the Fig. 3 model-vs-emulation divergence.
func e3(bool) error {
	header("e3", "model gap on identical configs (Fig. 3)")
	topo := mfv.Fig3()
	emu, err := mfv.Run(mfv.Snapshot{Topology: topo}, mfv.Options{})
	if err != nil {
		return err
	}
	mdl, err := mfv.Run(mfv.Snapshot{Topology: topo}, mfv.Options{Backend: mfv.BackendModel})
	if err != nil {
		return err
	}
	full := true
	for i := 1; i <= 3 && full; i++ {
		for j := 1; j <= 3; j++ {
			if !emu.Network.Reachable(fmt.Sprintf("r%d", i), netip.MustParseAddr(fmt.Sprintf("2.2.2.%d", j))) {
				full = false
				break
			}
		}
	}
	modelHole := !mdl.Network.Reachable("r2", netip.MustParseAddr("2.2.2.1"))
	diffs := mfv.DifferentialReachability(mdl, emu)
	fmt.Printf("emulation full pairwise reach:    %v   (paper: true)\n", full)
	fmt.Printf("model r2->r1 reachability:        %v  (paper: false — packets dropped)\n",
		mdl.Network.Reachable("r2", netip.MustParseAddr("2.2.2.1")))
	fmt.Printf("cross-backend differing flows:    %d\n", len(diffs))
	ok := "REPRODUCED"
	if !full || !modelHole || len(diffs) == 0 {
		ok = "MISMATCH"
	}
	fmt.Println("shape:", ok)
	return nil
}

// e4: single-node packing.
func e4(bool) error {
	header("e4", "routers per e2-standard-32 node")
	s := sim.New(1)
	c := kube.NewCluster(s, kube.E2Standard32("n1"))
	placed := 0
	for {
		if _, err := c.Schedule(kube.AristaCEOSRequest(fmt.Sprintf("r%d", placed), time.Minute)); err != nil {
			break
		}
		placed++
	}
	fmt.Printf("0.5 vCPU + 1 GB per router:       %d routers   (paper: ~60, CPU-bound)\n", placed)
	ok := "REPRODUCED"
	if placed < 55 || placed > 64 {
		ok = "MISMATCH"
	}
	fmt.Println("shape:", ok)
	return nil
}

// e5: 1,000 devices on 17 nodes.
func e5(quick bool) error {
	header("e5", "cluster-scale placement and boot")
	pods, nodes := 1000, 17
	if quick {
		pods, nodes = 100, 2
	}
	s := sim.New(1)
	specs := make([]kube.NodeSpec, nodes)
	for i := range specs {
		specs[i] = kube.E2Standard32(fmt.Sprintf("n%d", i))
	}
	c := kube.NewCluster(s, specs...)
	for i := 0; i < pods; i++ {
		if _, err := c.Schedule(kube.AristaCEOSRequest(fmt.Sprintf("r%d", i), 90*time.Second)); err != nil {
			return fmt.Errorf("pod %d did not fit: %w", i, err)
		}
	}
	s.Run()
	fmt.Printf("placed %d pods on %d nodes, all Running: %v   (paper: 1,000 devices on 17 nodes)\n",
		pods, nodes, c.AllRunning())
	ok := "REPRODUCED"
	if !c.AllRunning() {
		ok = "MISMATCH"
	}
	fmt.Println("shape:", ok)
	return nil
}

// e6: 30-node WAN convergence with injected routes.
func e6(quick bool) error {
	header("e6", "30-node WAN convergence with route injection")
	nPrefixes := 200000
	if quick {
		nPrefixes = 20000
	}
	topo := mfv.WAN(30, true)
	feeds := mfv.NewFeedGenerator(7).FullTable(64700, nPrefixes)
	o := mfv.NewMetricsObserver()
	res, err := mfv.Run(mfv.Snapshot{
		Topology: topo,
		Feeds: []mfv.InjectedFeed{{
			Router: topo.Nodes[0].Name, PeerAddr: netip.MustParseAddr("198.51.100.1"),
			PeerAS: 64700, Feeds: feeds,
		}},
	}, mfv.Options{Obs: o})
	if err != nil {
		return err
	}
	conv := res.ConvergedAt - res.StartupAt
	fmt.Printf("injected prefixes:                %d   (paper: millions; scaled 10x with proc rate)\n", nPrefixes)
	fmt.Printf("one-time startup:                 %v   (paper: 12-17 min)\n", res.StartupAt.Round(time.Second))
	fmt.Printf("convergence incl. injection:      %v   (paper: ~3 min)\n", conv.Round(time.Second))
	fmt.Printf("phases (virtual/wall):            %s\n", phaseLine(o))
	fmt.Printf("effort: sim events %d (queue peak %d), BGP msgs in %d, prefixes in %d\n",
		o.Gauge("sim_events_total").Value(), o.Gauge("sim_queue_peak").Value(),
		o.Counter("bgp_msgs_in_total").Value(), o.Counter("bgp_prefixes_in_total").Value())
	ok := "REPRODUCED"
	if res.StartupAt < 12*time.Minute || res.StartupAt > 17*time.Minute {
		ok = "MISMATCH"
	}
	if !quick && (conv < 2*time.Minute || conv > 5*time.Minute) {
		ok = "MISMATCH"
	}
	fmt.Println("shape:", ok)
	return nil
}

// e7: survey statistics.
func e7(bool) error {
	header("e7", "operator survey statistics (§2)")
	stats := survey.Aggregate(survey.Dataset())
	fmt.Print(stats.Table())
	ok := "REPRODUCED"
	if stats.N != 30 || stats.AttemptedPct != 30 ||
		stats.BarrierPct[survey.BarrierFeatureCoverage] < 73 ||
		stats.BarrierPct[survey.BarrierWorkflowIntegration] != 52 {
		ok = "MISMATCH"
	}
	fmt.Println("shape:", ok)
	return nil
}
