// Command benchgate turns `go test -bench` output into a committed JSON
// baseline and gates CI on benchmark regressions against it.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchgate -emit out.json
//	benchgate -compare -baseline bench/baseline.json -current out.json
//
// Compare mode exits nonzero only on a hard failure: a benchmark whose name
// matches -critical (default "E1") regressing more than -fail (default 30%).
// Any benchmark regressing more than -warn (default 10%) is reported as a
// warning. When the baseline was recorded on a different CPU model, hard
// failures are downgraded to warnings — absolute ns/op does not transfer
// across machines, and the baseline is refreshed on the machine that gates.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one benchmark measurement.
type Result struct {
	Name string  `json:"name"` // normalized: trailing -GOMAXPROCS stripped
	NsOp float64 `json:"ns_op"`
}

// Report is the JSON artifact: environment plus sorted results.
type Report struct {
	Commit  string   `json:"commit,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches `BenchmarkName-8   	      12	  93218 ns/op	 ...`.
// The `#NN` duplicate-name counter and the `-GOMAXPROCS` suffix are both
// normalization noise: strip them so reports compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:#\d+)?(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// cpuLine matches the `cpu: ...` header go test prints.
var cpuLine = regexp.MustCompile(`^cpu:\s+(.+?)\s*$`)

func parse(r *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	seen := map[string]bool{}
	for r.Scan() {
		line := r.Text()
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			rep.CPU = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", line, err)
		}
		name := m[1]
		if seen[name] {
			// Sub-benchmark collisions after -N stripping (e.g. workers=1
			// twice when GOMAXPROCS==1): keep the first measurement.
			continue
		}
		seen[name] = true
		rep.Results = append(rep.Results, Result{Name: name, NsOp: ns})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	return rep, nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return rep, nil
}

func emit(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// compare reports warnings and hard failures of current against baseline.
// A non-nil only restricts the comparison (including the missing-benchmark
// scan) to matching names, so a CI job that runs a subset of the suite —
// the scale tier runs alone under its own timeout — doesn't drown in
// "missing from current run" noise about benchmarks it never executed.
func compare(baseline, current *Report, warnPct, failPct float64, critical, only *regexp.Regexp) (warnings, failures []string) {
	base := map[string]float64{}
	for _, r := range baseline.Results {
		base[r.Name] = r.NsOp
	}
	crossCPU := baseline.CPU != "" && current.CPU != "" && baseline.CPU != current.CPU
	for _, r := range current.Results {
		if only != nil && !only.MatchString(r.Name) {
			continue
		}
		was, ok := base[r.Name]
		if !ok || was <= 0 {
			continue
		}
		pct := (r.NsOp - was) / was * 100
		if pct <= warnPct {
			continue
		}
		msg := fmt.Sprintf("%s: %.0f -> %.0f ns/op (+%.1f%%)", r.Name, was, r.NsOp, pct)
		if pct > failPct && critical.MatchString(r.Name) && !crossCPU {
			failures = append(failures, msg)
		} else {
			warnings = append(warnings, msg)
		}
	}
	if crossCPU {
		warnings = append(warnings, fmt.Sprintf(
			"baseline CPU %q != current CPU %q: regressions downgraded to warnings; refresh the baseline",
			baseline.CPU, current.CPU))
	}
	for _, r := range baseline.Results {
		if only != nil && !only.MatchString(r.Name) {
			continue
		}
		if _, ok := indexOf(current.Results, r.Name); !ok {
			warnings = append(warnings, fmt.Sprintf("%s: present in baseline, missing from current run", r.Name))
		}
	}
	return warnings, failures
}

func indexOf(rs []Result, name string) (int, bool) {
	for i, r := range rs {
		if r.Name == name {
			return i, true
		}
	}
	return 0, false
}

func main() {
	var (
		emitPath = flag.String("emit", "", "parse `go test -bench` output from stdin and write a JSON report here ('-' for stdout)")
		doCmp    = flag.Bool("compare", false, "compare -current against -baseline")
		basePath = flag.String("baseline", "bench/baseline.json", "committed baseline report")
		curPath  = flag.String("current", "", "report for the change under test")
		commit   = flag.String("commit", "", "commit SHA to record in an emitted report")
		warnPct  = flag.Float64("warn", 10, "warn when any benchmark regresses more than this percent")
		failPct  = flag.Float64("fail", 30, "fail when a critical benchmark regresses more than this percent")
		critical = flag.String("critical", "E1", "regexp selecting benchmarks whose hard regression fails the gate")
		onlyPat  = flag.String("only", "", "regexp restricting comparison to matching benchmarks (for subset CI jobs); empty compares everything")
	)
	flag.Parse()

	switch {
	case *emitPath != "":
		rep, err := parse(bufio.NewScanner(os.Stdin))
		if err == nil && len(rep.Results) == 0 {
			err = fmt.Errorf("benchgate: no benchmark lines on stdin")
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		rep.Commit = *commit
		if err := emit(rep, *emitPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchgate: recorded %d benchmarks\n", len(rep.Results))

	case *doCmp:
		if *curPath == "" {
			fmt.Fprintln(os.Stderr, "benchgate: -compare requires -current")
			os.Exit(2)
		}
		baseline, err := load(*basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		current, err := load(*curPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		crit, err := regexp.Compile(*critical)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: bad -critical:", err)
			os.Exit(2)
		}
		var only *regexp.Regexp
		if *onlyPat != "" {
			if only, err = regexp.Compile(*onlyPat); err != nil {
				fmt.Fprintln(os.Stderr, "benchgate: bad -only:", err)
				os.Exit(2)
			}
		}
		warnings, failures := compare(baseline, current, *warnPct, *failPct, crit, only)
		for _, w := range warnings {
			fmt.Printf("WARN  %s\n", w)
		}
		for _, f := range failures {
			fmt.Printf("FAIL  %s\n", f)
		}
		if len(failures) > 0 {
			fmt.Printf("benchgate: %d hard regression(s) past %.0f%% on critical benchmarks (%s)\n",
				len(failures), *failPct, *critical)
			os.Exit(1)
		}
		fmt.Printf("benchgate: ok — %d benchmarks compared, %d warning(s)\n",
			len(current.Results), len(warnings))

	default:
		fmt.Fprintln(os.Stderr, "benchgate: need -emit or -compare (see -h)")
		os.Exit(2)
	}
}
