package main

import (
	"bufio"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mfv
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE1_DifferentialReachability 	       1	    233601 ns/op	        16.00 changed-flows
BenchmarkBatchDifferential/workers=1 	       1	 341846740 ns/op
BenchmarkBatchDifferential/workers=1#01 	       1	 323194230 ns/op
BenchmarkVerifyAllPairs-8                	       1	     56565 ns/op
PASS
ok  	mfv	0.984s
`

func mustParse(t *testing.T, in string) *Report {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParse(t *testing.T) {
	rep := mustParse(t, sample)
	if rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	want := map[string]float64{
		"BenchmarkE1_DifferentialReachability": 233601,
		"BenchmarkBatchDifferential/workers=1": 341846740, // first wins on collision
		"BenchmarkVerifyAllPairs":              56565,     // -8 suffix stripped
	}
	if len(rep.Results) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(rep.Results), len(want), rep.Results)
	}
	for _, r := range rep.Results {
		if want[r.Name] != r.NsOp {
			t.Errorf("%s = %v ns/op, want %v", r.Name, r.NsOp, want[r.Name])
		}
	}
}

func TestCompareThresholds(t *testing.T) {
	crit := regexp.MustCompile("E1")
	base := &Report{CPU: "x", Results: []Result{
		{Name: "BenchmarkE1_Differential", NsOp: 100},
		{Name: "BenchmarkOther", NsOp: 100},
	}}
	cur := func(e1, other float64) *Report {
		return &Report{CPU: "x", Results: []Result{
			{Name: "BenchmarkE1_Differential", NsOp: e1},
			{Name: "BenchmarkOther", NsOp: other},
		}}
	}

	if w, f := compare(base, cur(105, 105), 10, 30, crit, nil); len(w) != 0 || len(f) != 0 {
		t.Errorf("within noise: warnings %v failures %v", w, f)
	}
	if w, f := compare(base, cur(115, 115), 10, 30, crit, nil); len(w) != 2 || len(f) != 0 {
		t.Errorf("soft regressions: warnings %v failures %v", w, f)
	}
	// >30% on the critical benchmark fails; the same slip elsewhere warns.
	if w, f := compare(base, cur(140, 140), 10, 30, crit, nil); len(f) != 1 || len(w) != 1 {
		t.Errorf("hard regression: warnings %v failures %v", w, f)
	}
	// Cross-CPU baselines never hard-fail.
	far := &Report{CPU: "y", Results: cur(300, 300).Results}
	if _, f := compare(base, far, 10, 30, crit, nil); len(f) != 0 {
		t.Errorf("cross-cpu must not fail: %v", f)
	}
	// A benchmark that disappeared from the current run is flagged.
	missing := &Report{CPU: "x", Results: []Result{{Name: "BenchmarkOther", NsOp: 100}}}
	w, f := compare(base, missing, 10, 30, crit, nil)
	if len(f) != 0 || len(w) != 1 || !strings.Contains(w[0], "missing") {
		t.Errorf("missing benchmark: warnings %v failures %v", w, f)
	}
}

func TestCompareOnlyFilter(t *testing.T) {
	crit := regexp.MustCompile("Scale")
	base := &Report{CPU: "x", Results: []Result{
		{Name: "BenchmarkScaleBoot", NsOp: 100},
		{Name: "BenchmarkE1_Differential", NsOp: 100},
	}}
	// A scale-only CI job: E1 is absent from current and regressed would-be
	// numbers outside the filter must be invisible.
	cur := &Report{CPU: "x", Results: []Result{
		{Name: "BenchmarkScaleBoot", NsOp: 150},
	}}
	only := regexp.MustCompile("^BenchmarkScale")
	w, f := compare(base, cur, 10, 30, crit, only)
	if len(f) != 1 || !strings.Contains(f[0], "ScaleBoot") {
		t.Errorf("scale regression not failed under -only: %v", f)
	}
	for _, msg := range w {
		if strings.Contains(msg, "missing") {
			t.Errorf("filtered-out benchmark flagged as missing: %v", w)
		}
	}
	// Without the filter, the absent E1 is flagged.
	w, _ = compare(base, cur, 10, 30, crit, nil)
	found := false
	for _, msg := range w {
		found = found || strings.Contains(msg, "missing")
	}
	if !found {
		t.Errorf("unfiltered compare lost the missing-benchmark warning: %v", w)
	}
}
