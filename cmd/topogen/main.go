// Command topogen generates topology files with production-complexity
// configurations for use with the mfv CLI and the benchmark harness.
//
// Usage:
//
//	topogen -shape line -n 5 -out line5.json
//	topogen -shape wan -n 30 -multivendor -out wan30.json
//	topogen -shape clos -spines 4 -leaves 8 -out clos.json
//	topogen -shape ring -n 6 -out ring6.json
//	topogen -shape regions -regions 500 -n 20 -out regions10k.json
//	topogen -shape regions -regions 50 -n 20 -bgpmesh -out regions1k-bgp.json
//
// line/ring/clos shapes get IS-IS configurations generated for every
// router; the wan shape additionally configures an iBGP mesh and an eBGP
// injection edge (see internal/testnet). The regions shape produces -regions
// disconnected rings of -n routers each — the region boundaries the sharded
// pipeline (mfv run -shard-regions) converges in parallel. Addressing is
// derived from global node/link indices, so loopbacks and transfer networks
// stay unique across regions. -bgpmesh overlays the WAN-style iBGP mesh and
// injection edge on the first four routers of a generated fabric — on the
// regions shape the mesh stays inside the first region, which is how the
// nightly 1k-router k=2 failure sweep gets BGP candidates without a flat
// 1k link-state database.
package main

import (
	"flag"
	"fmt"
	"os"

	"mfv/internal/testnet"
	"mfv/internal/topology"
)

func main() {
	var (
		shape       = flag.String("shape", "line", "line | ring | clos | wan | regions")
		n           = flag.Int("n", 5, "router count (line/ring/wan; per-region for regions)")
		regions     = flag.Int("regions", 10, "region count (regions)")
		spines      = flag.Int("spines", 2, "spine count (clos)")
		leaves      = flag.Int("leaves", 4, "leaf count (clos)")
		multivendor = flag.Bool("multivendor", false, "mix vendor dialects (wan)")
		bgpmesh     = flag.Bool("bgpmesh", false, "overlay a WAN-style iBGP mesh + eBGP injection edge on the first 4 routers (line/ring/clos/regions)")
		mgmt        = flag.Int("mgmt", 1, "management config level 0-2")
		out         = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var topo *topology.Topology
	switch *shape {
	case "line":
		topo = topology.Line(*n, topology.VendorEOS)
		fill(topo, *mgmt, *bgpmesh)
	case "ring":
		topo = topology.Ring(*n, topology.VendorEOS)
		fill(topo, *mgmt, *bgpmesh)
	case "clos":
		topo = topology.Clos(*spines, *leaves, topology.VendorEOS)
		fill(topo, *mgmt, *bgpmesh)
	case "wan":
		topo = testnet.WAN(*n, *multivendor)
	case "regions":
		topo = topology.MultiRegion(*regions, *n, topology.VendorEOS)
		fill(topo, *mgmt, *bgpmesh)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown shape %q\n", *shape)
		os.Exit(2)
	}
	if err := topo.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	data, err := topo.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d links\n", *out, len(topo.Nodes), len(topo.Links))
}

// fill generates an IS-IS configuration for every router of a bare
// topology: loopback 1.1.<i/250>.<i%250>/32 plus per-link /31 transfer
// networks (global-index addressing; see testnet.ISISFabric). With bgpmesh,
// the first 4 routers additionally form an iBGP full mesh with an eBGP
// injection edge (testnet.BGPMeshFabric) — on the regions shape the mesh
// stays inside the first region.
func fill(topo *topology.Topology, mgmt int, bgpmesh bool) {
	if bgpmesh {
		testnet.BGPMeshFabric(topo, mgmt)
		return
	}
	testnet.ISISFabric(topo, mgmt)
}
