// Command topogen generates topology files with production-complexity
// configurations for use with the mfv CLI and the benchmark harness.
//
// Usage:
//
//	topogen -shape line -n 5 -out line5.json
//	topogen -shape wan -n 30 -multivendor -out wan30.json
//	topogen -shape clos -spines 4 -leaves 8 -out clos.json
//	topogen -shape ring -n 6 -out ring6.json
//
// line/ring/clos shapes get IS-IS configurations generated for every
// router; the wan shape additionally configures an iBGP mesh and an eBGP
// injection edge (see internal/testnet).
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"

	"mfv/internal/confgen"
	"mfv/internal/testnet"
	"mfv/internal/topology"
)

func main() {
	var (
		shape       = flag.String("shape", "line", "line | ring | clos | wan")
		n           = flag.Int("n", 5, "router count (line/ring/wan)")
		spines      = flag.Int("spines", 2, "spine count (clos)")
		leaves      = flag.Int("leaves", 4, "leaf count (clos)")
		multivendor = flag.Bool("multivendor", false, "mix vendor dialects (wan)")
		mgmt        = flag.Int("mgmt", 1, "management config level 0-2")
		out         = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var topo *topology.Topology
	switch *shape {
	case "line":
		topo = topology.Line(*n, topology.VendorEOS)
		fillISIS(topo, *mgmt)
	case "ring":
		topo = topology.Ring(*n, topology.VendorEOS)
		fillISIS(topo, *mgmt)
	case "clos":
		topo = topology.Clos(*spines, *leaves, topology.VendorEOS)
		fillISIS(topo, *mgmt)
	case "wan":
		topo = testnet.WAN(*n, *multivendor)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown shape %q\n", *shape)
		os.Exit(2)
	}
	if err := topo.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	data, err := topo.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d links\n", *out, len(topo.Nodes), len(topo.Links))
}

// fillISIS generates an IS-IS configuration for every router of a bare
// topology: loopback 1.1.<i/250>.<i%250>/32 plus per-link /31 transfer
// networks.
func fillISIS(topo *topology.Topology, mgmt int) {
	addrs := map[topology.Endpoint]netip.Prefix{}
	for idx, l := range topo.Links {
		base := netip.AddrFrom4([4]byte{10, byte(idx >> 8), byte(idx & 0xff), 0})
		addrs[l.A] = netip.PrefixFrom(base, 31)
		addrs[l.Z] = netip.PrefixFrom(base.Next(), 31)
	}
	for i := range topo.Nodes {
		node := &topo.Nodes[i]
		num := i + 1
		spec := confgen.Spec{
			Hostname:   node.Name,
			NET:        fmt.Sprintf("49.0001.0000.0000.%04d.00", num),
			Management: mgmt,
			Interfaces: []confgen.Iface{{
				Name: "Loopback0",
				Addr: netip.PrefixFrom(netip.AddrFrom4([4]byte{1, 1, byte(num / 250), byte(num % 250)}), 32),
				ISIS: true,
			}},
		}
		for _, l := range topo.NodeLinks(node.Name) {
			ep := l.A
			if ep.Node != node.Name {
				ep = l.Z
			}
			spec.Interfaces = append(spec.Interfaces, confgen.Iface{
				Name: ep.Interface, Addr: addrs[ep], ISIS: true,
			})
		}
		node.Config = confgen.EOS(spec)
	}
}
