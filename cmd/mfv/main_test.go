package main

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"mfv"
)

// writeFig2 marshals the paper's Fig2 topology into a temp file for CLI use.
func writeFig2(t *testing.T) string {
	t.Helper()
	data, err := mfv.Fig2().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig2.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// quiet redirects stdout to /dev/null around fn: the commands under test
// print full reports, which would drown the test log.
func quiet(t *testing.T, fn func() error) error {
	t.Helper()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	return fn()
}

// TestExitCodePrecedence asserts the documented exit-code ordering across
// run, chaos, and sweep: 5 (timeout/interrupt) over everything, 4
// (quarantine/degraded) over 3 (violation), 3 over 0, and usage errors
// always 2.
func TestExitCodePrecedence(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI pipelines")
	}
	topo := writeFig2(t)
	cases := []struct {
		name string
		cmd  func([]string) error
		args []string
		want int
	}{
		{"run clean", cmdRun, []string{"-topo", topo}, exitOK},
		{"sweep finds violations", cmdSweep, []string{"-topo", topo, "-k", "1"}, exitViolation},
		// corrupt-config loses r4's flows AND quarantines r4; the exit code
		// must pick the more specific diagnosis (4, not 3).
		{"quarantine outranks violation", cmdRun, []string{"-topo", topo, "-chaos", "corrupt-config"}, exitDegraded},
		// An exhausted budget outranks whatever the truncated run found.
		{"timeout outranks violation", cmdSweep, []string{"-topo", topo, "-k", "1", "-timeout", "1ns"}, exitTimeout},
		{"timeout outranks quarantine", cmdRun, []string{"-topo", topo, "-chaos", "corrupt-config", "-timeout", "1ns"}, exitTimeout},
		{"bad flag value", cmdSweep, []string{"-topo", topo, "-workers", "0"}, exitUsage},
		{"snapshot without -file", cmdSnapshot, []string{"load"}, exitUsage},
		{"missing topo", cmdRun, nil, exitError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := quiet(t, func() error { return tc.cmd(tc.args) })
			if got := exitCode(err); got != tc.want {
				t.Fatalf("exit code %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}
}

// TestInterruptMapsToExitTimeout delivers a real SIGINT while a withBudget
// body is in flight: the run context must cancel and the error must map to
// exit 5, the same class as an exhausted -timeout.
func TestInterruptMapsToExitTimeout(t *testing.T) {
	f := newFlags("test")
	err := f.withBudget(func() error {
		if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
			return err
		}
		<-f.ctx.Done()
		return f.ctx.Err()
	})
	if err == nil {
		t.Fatal("interrupted body returned nil")
	}
	if got := exitCode(err); got != exitTimeout {
		t.Fatalf("exit code %d, want %d (err: %v)", got, exitTimeout, err)
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("error %q does not say it was interrupted", err)
	}
}

// TestSnapshotCLIRoundTrip drives the crash-safety surface end to end:
// snapshot save, validated load, run -from-snapshot, a live-vs-restored
// diff that agrees nothing changed, and a corrupted file that is refused.
func TestSnapshotCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI pipelines")
	}
	topo := writeFig2(t)
	file := filepath.Join(t.TempDir(), "fig2.snap")
	if err := quiet(t, func() error { return cmdSnapshot([]string{"save", "-topo", topo, "-file", file}) }); err != nil {
		t.Fatalf("snapshot save: %v", err)
	}
	if err := quiet(t, func() error { return cmdSnapshot([]string{"load", "-file", file, "-topo", topo}) }); err != nil {
		t.Fatalf("snapshot load with matching -topo: %v", err)
	}
	if err := quiet(t, func() error { return cmdRun([]string{"-from-snapshot", file}) }); err != nil {
		t.Fatalf("run -from-snapshot: %v", err)
	}
	// A live boot diffed against the restored snapshot must agree the
	// forwarding state is identical (exit 0, no changed flows).
	if err := quiet(t, func() error { return cmdDiff([]string{"-topo", topo, "-from-snapshot2", file}) }); err != nil {
		t.Fatalf("diff live vs restored: %v", err)
	}
	// Corruption is an operational error (exit 1), never a panic.
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := quiet(t, func() error { return cmdSnapshot([]string{"load", "-file", bad}) }); err == nil || exitCode(err) != exitError {
		t.Fatalf("truncated snapshot load: err=%v code=%d, want operational error", err, exitCode(err))
	}
	// A snapshot checked against a different topology is a usage error.
	wan := filepath.Join(t.TempDir(), "wan.json")
	wdata, err := mfv.WAN(9, true).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wan, wdata, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := quiet(t, func() error { return cmdSnapshot([]string{"load", "-file", file, "-topo", wan}) }); err == nil || exitCode(err) != exitUsage {
		t.Fatalf("mismatched -topo cross-check: err=%v code=%d, want usage error", err, exitCode(err))
	}
}
