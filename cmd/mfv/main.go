// Command mfv is the model-free verification CLI: it runs the pipeline on a
// topology file (JSON, configs embedded) and answers verification queries.
//
// Usage:
//
//	mfv run       -topo net.json [-backend emulation|model] [-gnmi]
//	              [-trace out.jsonl] [-metrics] [-timeline]
//	mfv lint      -topo net.json [-live]
//	mfv reach     -topo net.json -src r1 -dst 2.2.2.4
//	mfv trace     -topo net.json -src r1 -dst 2.2.2.4
//	mfv diff      -topo before.json -topo2 after.json
//	mfv coverage  -topo net.json
//	mfv loops     -topo net.json
//	mfv scenarios -out DIR        (write the paper's Fig2/Fig3 topologies)
//	mfv chaos     [-write DIR]    (list built-in fault scenarios)
//	mfv chaos     -topo net.json [-scenario NAME|FILE] [-listen ADDR]
//	              (execute a fault scenario, optionally watched live)
//	mfv snapshot  save -topo net.json -file snap.mfv  (converge once, persist)
//	mfv snapshot  load -file snap.mfv                 (validate + summarize)
//
// Crash safety: run and diff take -from-snapshot FILE (and diff
// -from-snapshot2) to restore converged state from a durable snapshot
// instead of booting the emulation; sweep -from-snapshot gates its baseline
// on the snapshot's dataplane hash. sweep -journal DIR appends each verdict
// to a write-ahead journal and sweep -resume DIR restores completed
// candidates after a crash, SIGINT, or -timeout expiry — the resumed report
// is byte-identical to an uninterrupted run. SIGINT/SIGTERM cancel the run
// context: the partial report is emitted and the exit code is 5.
//
// The run command also takes -chaos NAME|FILE to inject a deterministic
// fault scenario after convergence and -degraded to accept partial
// convergence on timeout. Every command takes -workers N to size the
// verification worker pool (default NumCPU; results are byte-identical at
// any worker count).
//
// run, diff, and chaos take -listen ADDR to serve live telemetry over HTTP
// while the run is in flight: /metrics (Prometheus text), /metrics.json,
// /events (SSE trace stream), /phases, /healthz, /readyz (ready once
// converged), and an embedded dashboard at /. -hold-open DUR keeps the
// endpoint up after the run completes; -json emits the -metrics/-timeline
// report as one JSON document.
//
// Exit codes: 0 success, 1 operational error, 2 usage error, 3 verification
// violation (unreachable flows, differential changes, loops, critical links),
// 4 degraded run (quarantined or never-settled routers taint the result),
// 5 wall-clock budget exhausted (-timeout expired; partial report emitted).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"
	"time"

	"mfv"
)

// Exit codes.
const (
	exitOK        = 0
	exitError     = 1 // operational failure (bad input, emulation error, I/O)
	exitUsage     = 2
	exitViolation = 3 // the network is broken, not the tool
	exitDegraded  = 4 // the run completed, but quarantined/unsettled routers taint the result
	exitTimeout   = 5 // the -timeout wall-clock budget expired mid-run
)

// violationError marks a verification violation — the pipeline worked and
// found the network broken — so scripts can distinguish it (exit 3) from
// operational failures (exit 1).
type violationError struct{ msg string }

func (e violationError) Error() string { return e.msg }

func violationf(format string, args ...any) error {
	return violationError{msg: fmt.Sprintf(format, args...)}
}

// degradedError marks a run that completed with contained damage: routers
// quarantined after hostile input, or stragglers that never settled under
// -degraded. The verdict is trustworthy for the healthy routers but exit 4
// tells scripts the result is partial.
type degradedError struct{ msg string }

func (e degradedError) Error() string { return e.msg }

func degradedf(format string, args ...any) error {
	return degradedError{msg: fmt.Sprintf(format, args...)}
}

// timeoutError marks a run cut short by the -timeout wall-clock budget. It
// outranks the other error classes in main's exit-code mapping: a violation
// found in a partial sweep is still reported, but the exit code must say
// "incomplete" so scripts don't trust a truncated verdict.
type timeoutError struct{ msg string }

func (e timeoutError) Error() string { return e.msg }

func timeoutf(format string, args ...any) error {
	return timeoutError{msg: fmt.Sprintf(format, args...)}
}

// usageError marks an invalid flag value caught after parsing (exit 2, like
// flag-package parse failures).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = cmdRun(args)
	case "lint":
		err = cmdLint(args)
	case "reach":
		err = cmdReach(args)
	case "trace":
		err = cmdTrace(args)
	case "diff":
		err = cmdDiff(args)
	case "coverage":
		err = cmdCoverage(args)
	case "loops":
		err = cmdLoops(args)
	case "show":
		err = cmdShow(args)
	case "whatif":
		err = cmdWhatIf(args)
	case "scenarios":
		err = cmdScenarios(args)
	case "chaos":
		err = cmdChaos(args)
	case "sweep":
		err = cmdSweep(args)
	case "snapshot":
		err = cmdSnapshot(args)
	default:
		usage()
		os.Exit(exitUsage)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfv:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps a command error to the documented exit code. The 5 > 4 > 3
// precedence is enforced where the errors are made: withBudget wraps any
// body error once the clock or a signal fires (a truncated run must never
// masquerade as a trustworthy verdict), and command bodies diagnose
// quarantine before they report mere flow violations.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	var u usageError
	if errors.As(err, &u) {
		return exitUsage
	}
	var t timeoutError
	if errors.As(err, &t) {
		return exitTimeout
	}
	var v violationError
	if errors.As(err, &v) {
		return exitViolation
	}
	var d degradedError
	if errors.As(err, &d) {
		return exitDegraded
	}
	return exitError
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mfv <run|lint|reach|trace|diff|coverage|loops|scenarios|chaos|sweep|snapshot> [flags]
  run       run the pipeline, print route summary and convergence timing
  lint      preflight snapshot validation without booting the emulation
            (-live additionally runs the pipeline and audits AFTs vs RIBs)
  reach     answer one reachability question
  trace     exhaustive multipath traceroute
  diff      differential reachability between two topology files
  coverage  model-based parsing coverage report (experiment E2 style)
  loops     detect forwarding loops across all packet classes
  show      operator-style router inspection (route|isis|bgp|mpls|interfaces)
  whatif    single-link-cut exploration with per-cut differentials
  scenarios write the paper's evaluation topologies to a directory
  chaos     list built-in fault scenarios (-write DIR emits them as JSON);
            with -topo, execute -scenario NAME|FILE against the topology
  sweep     exhaustive k-failure resilience sweep: enumerate every single
            (-k 1) or pair (-k 2) failure of links, nodes, and BGP services,
            verify each against the healthy baseline, and rank blast radii
            worst-first (-kinds link,node,bgp restricts elements, -brute
            disables the prunes, -top N truncates the table)
  snapshot  save: converge once and persist the result as a durable,
            CRC-checksummed snapshot file; load: validate and summarize one

robustness flags (run): -chaos NAME|FILE (inject a fault scenario after
  convergence and verify across it), -degraded (accept partial convergence
  on timeout; stragglers are reported, not fatal)
crash-safety flags: -from-snapshot FILE on run/diff/sweep (restore converged
  state instead of booting; diff also takes -from-snapshot2; sweep gates its
  baseline on the snapshot's dataplane hash); sweep -journal DIR (write-ahead
  journal of per-candidate verdicts), sweep -resume DIR (skip journaled
  candidates after a crash; the resumed report is byte-identical to an
  uninterrupted run), sweep -retry-budget N (attempts before a panicking
  candidate is poisoned in the report, default 3)
budget flags (run/diff/chaos/sweep): -timeout DUR (wall-clock budget; an
  expired budget stops the run between steps, emits the partial report, and
  exits 5); SIGINT/SIGTERM cancel the same context — partial report, exit 5
observability flags (run/diff/chaos): -trace FILE (JSONL event trace,
  virtual time), -metrics (phase timings + metrics registry), -timeline
  (per-router convergence report), -json (machine-readable report instead
  of tables), -listen ADDR (live HTTP telemetry: /metrics Prometheus text,
  /metrics.json, /events SSE stream, /phases, /healthz, /readyz, dashboard
  at /), -hold-open DUR (keep -listen serving after the run completes)
performance flags: -workers N (worker-pool size for verification and the
  sweep's replica lanes, default GOMAXPROCS; results are byte-identical at
  any worker count — sweep additionally takes -replicas N and -mem-budget B
  to size the emulation replica pool);
  -shard-regions (converge disconnected topology regions in parallel
  emulators and stream their tables into one verification snapshot — the
  10k-router scale path; incompatible with -chaos and -gnmi);
  run and diff also take -cpuprofile FILE / -memprofile FILE (pprof)
exit codes: 0 ok, 1 operational error, 2 usage, 3 verification violation,
  4 degraded run (quarantined or never-settled routers), 5 wall-clock
  budget exhausted (-timeout)`)
}

// common flags

type runFlags struct {
	fs        *flag.FlagSet
	topo      string
	topo2     string
	backend   string
	gnmi      bool
	src       string
	dst       string
	out       string
	node      string
	cmd       string
	trace     string
	metrics   bool
	timeline  bool
	jsonOut   bool
	listen    string
	holdOpen  time.Duration
	chaos     string
	degraded  bool
	sharded   bool
	workers   int
	budget    time.Duration
	cpuprof   string
	memprof   string
	fromSnap  string
	fromSnap2 string

	obs    *mfv.Observer
	server *mfv.ObsServer
	ctx    context.Context
}

func newFlags(name string) *runFlags {
	f := &runFlags{fs: flag.NewFlagSet(name, flag.ExitOnError)}
	f.fs.StringVar(&f.topo, "topo", "", "topology JSON file")
	f.fs.StringVar(&f.topo2, "topo2", "", "second topology JSON file (diff)")
	f.fs.StringVar(&f.backend, "backend", "emulation", "emulation | model")
	f.fs.BoolVar(&f.gnmi, "gnmi", false, "extract AFTs over the gNMI TCP service")
	f.fs.StringVar(&f.src, "src", "", "source device")
	f.fs.StringVar(&f.dst, "dst", "", "destination IPv4 address")
	f.fs.StringVar(&f.out, "out", ".", "output directory")
	f.fs.StringVar(&f.node, "node", "", "router name (show)")
	f.fs.StringVar(&f.cmd, "cmd", "route", "show command: route|isis|isis-nbr|bgp|mpls|interfaces")
	f.fs.StringVar(&f.trace, "trace", "", "write the virtual-time trace as JSONL to this file")
	f.fs.BoolVar(&f.metrics, "metrics", false, "print phase timings and the metrics registry")
	f.fs.BoolVar(&f.timeline, "timeline", false, "print the per-router convergence timeline")
	f.fs.BoolVar(&f.jsonOut, "json", false, "emit the -metrics/-timeline report as one JSON document instead of tables")
	f.fs.StringVar(&f.listen, "listen", "", "serve live telemetry over HTTP on this address (/metrics, /events, /healthz, dashboard at /)")
	f.fs.DurationVar(&f.holdOpen, "hold-open", 0, "keep the -listen endpoint serving this long after the run completes")
	f.fs.StringVar(&f.chaos, "chaos", "", "fault scenario: builtin name or JSON file (run)")
	f.fs.BoolVar(&f.degraded, "degraded", false, "accept partial convergence on timeout, report stragglers")
	f.fs.BoolVar(&f.sharded, "shard-regions", false, "converge disconnected topology regions in parallel emulators (10k-router scale; incompatible with -chaos and -gnmi)")
	f.fs.IntVar(&f.workers, "workers", runtime.GOMAXPROCS(0), "worker-pool size for verification and the sweep replica lanes (results identical at any setting)")
	f.fs.DurationVar(&f.budget, "timeout", 0, "wall-clock budget; when it expires the run stops between steps, emits its partial report, and exits 5")
	f.fs.StringVar(&f.cpuprof, "cpuprofile", "", "write a CPU profile to this file (go tool pprof format)")
	f.fs.StringVar(&f.memprof, "memprofile", "", "write a heap profile to this file on exit")
	f.fs.StringVar(&f.fromSnap, "from-snapshot", "", "restore converged state from this snapshot file (run/diff skip the emulation boot; sweep cross-checks its baseline against the snapshot)")
	f.fs.StringVar(&f.fromSnap2, "from-snapshot2", "", "snapshot file for the second side of diff")
	return f
}

// profile starts CPU profiling if requested and returns a stop function
// that finishes the CPU profile and writes the heap profile. Call it after
// flag parsing and defer the stop.
func (f *runFlags) profile() (func() error, error) {
	var cpuFile *os.File
	if f.cpuprof != "" {
		var err error
		cpuFile, err = os.Create(f.cpuprof)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if f.memprof != "" {
			w, err := os.Create(f.memprof)
			if err != nil {
				return err
			}
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(w); err != nil {
				w.Close()
				return err
			}
			return w.Close()
		}
		return nil
	}, nil
}

// loadChaos resolves the -chaos flag: a builtin scenario name first, else a
// JSON scenario file.
func (f *runFlags) loadChaos() (*mfv.ChaosScenario, error) {
	if f.chaos == "" {
		return nil, nil
	}
	if sc, ok := mfv.ChaosBuiltin(f.chaos); ok {
		return sc, nil
	}
	data, err := os.ReadFile(f.chaos)
	if err != nil {
		return nil, fmt.Errorf("-chaos %q is neither a builtin scenario nor a readable file: %w", f.chaos, err)
	}
	return mfv.ParseChaosScenario(data)
}

// observer lazily builds the observer implied by the observability flags
// (nil when none are set). Trace collection is enabled only when a trace
// file is requested; -metrics/-timeline/-json/-listen use the cheaper
// metrics-only sink — the live event bus streams to HTTP subscribers even
// without trace retention.
func (f *runFlags) observer() *mfv.Observer {
	if f.obs == nil {
		switch {
		case f.trace != "":
			f.obs = mfv.NewObserver()
		case f.metrics || f.timeline || f.jsonOut || f.listen != "":
			f.obs = mfv.NewMetricsObserver()
		}
	}
	return f.obs
}

// withServe brackets a command body with the -listen observability
// endpoint: start before the run so in-flight progress is visible, keep
// serving -hold-open afterwards (scrape windows, post-mortem browsing),
// and tear down on exit. The body's error survives, so violation and
// degraded exit codes are unaffected.
func (f *runFlags) withServe(body func() error) error {
	if f.listen == "" {
		return body()
	}
	f.server = mfv.NewObsServer(f.observer())
	addr, err := f.server.Start(f.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mfv: live telemetry on http://%s/\n", addr)
	bodyErr := body()
	f.server.SetReady(true) // the run is over; nothing left to converge
	if f.holdOpen > 0 {
		fmt.Fprintf(os.Stderr, "mfv: holding telemetry endpoint open for %v\n", f.holdOpen)
		time.Sleep(f.holdOpen)
	}
	if cerr := f.server.Close(); cerr != nil && bodyErr == nil {
		return cerr
	}
	return bodyErr
}

// timelineRow is the JSON form of one convergence-timeline entry.
type timelineRow struct {
	Router       string `json:"router"`
	LastChangeNS int64  `json:"last_change_ns"`
	Routes       int    `json:"routes"`
}

// reportJSON writes the -json machine-readable report: the shared snapshot
// codec (metrics + phases) plus the convergence timeline when requested.
func (f *runFlags) reportJSON(res *mfv.Result) error {
	snap := f.obs.SnapshotJSON()
	doc := struct {
		Backend  string        `json:"backend"`
		Metrics  any           `json:"metrics"`
		Phases   any           `json:"phases,omitempty"`
		Timeline []timelineRow `json:"timeline,omitempty"`
		Chaos    any           `json:"chaos,omitempty"`
	}{Backend: res.Backend.String(), Metrics: snap.Metrics, Phases: snap.Phases}
	if res.Chaos != nil {
		doc.Chaos = res.Chaos
	}
	if f.timeline {
		if res.Emulator == nil {
			return fmt.Errorf("-timeline requires the emulation backend")
		}
		for _, t := range res.Emulator.ConvergenceTimeline() {
			doc.Timeline = append(doc.Timeline, timelineRow{
				Router: t.Router, LastChangeNS: int64(t.LastChange), Routes: t.Routes,
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// report writes the requested observability outputs for a completed run.
func (f *runFlags) report(res *mfv.Result) error {
	if f.jsonOut {
		if err := f.reportJSON(res); err != nil {
			return err
		}
	}
	if f.timeline && !f.jsonOut {
		if res.Emulator == nil {
			return fmt.Errorf("-timeline requires the emulation backend")
		}
		fmt.Printf("%-12s %16s %10s\n", "router", "last-change", "routes")
		for _, t := range res.Emulator.ConvergenceTimeline() {
			fmt.Printf("%-12s %16v %10d\n", t.Router, t.LastChange.Round(1e6), t.Routes)
		}
	}
	if f.metrics && !f.jsonOut {
		if pt := f.obs.PhaseTable(); pt != "" {
			fmt.Print(pt)
		}
		if mt := f.obs.MetricsTable(); mt != "" {
			fmt.Print(mt)
		}
	}
	if f.trace != "" {
		w, err := os.Create(f.trace)
		if err != nil {
			return err
		}
		if err := f.obs.WriteJSONL(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", len(f.obs.Events()), f.trace)
	}
	return nil
}

func (f *runFlags) loadTopo(path string) (*mfv.Topology, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -topo")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return mfv.ParseTopology(data)
}

func (f *runFlags) options() (mfv.Options, error) {
	opts := mfv.Options{UseGNMI: f.gnmi, Obs: f.observer(), Degraded: f.degraded, ShardRegions: f.sharded, Workers: f.workers, Ctx: f.ctx}
	if f.backend == "model" {
		opts.Backend = mfv.BackendModel
	}
	sc, err := f.loadChaos()
	if err != nil {
		return opts, err
	}
	opts.Chaos = sc
	return opts, nil
}

func (f *runFlags) run(path string) (*mfv.Result, error) {
	topo, err := f.loadTopo(path)
	if err != nil {
		return nil, err
	}
	opts, err := f.options()
	if err != nil {
		return nil, err
	}
	return mfv.Run(mfv.Snapshot{Topology: topo}, opts)
}

// loadSnapshot reads and validates a snapshot file. When a -topo file is
// also on the command line the two are cross-checked by topology hash: a
// snapshot silently restored against the wrong topology would verify a
// network nobody is running.
func (f *runFlags) loadSnapshot(path, topoPath string) (*mfv.StoredSnapshot, error) {
	snap, err := mfv.LoadSnapshot(path)
	if err != nil {
		return nil, err
	}
	if topoPath != "" {
		topo, err := f.loadTopo(topoPath)
		if err != nil {
			return nil, err
		}
		data, err := topo.Marshal()
		if err != nil {
			return nil, err
		}
		if got := mfv.HashBytes(data); got != snap.TopologyHash {
			return nil, usagef("snapshot %s captures topology %.12s…, but %s hashes to %.12s…", path, snap.TopologyHash, topoPath, got)
		}
	}
	return snap, nil
}

// runFrom produces a Result from either a topology file (full pipeline) or
// a -from-snapshot file (validated restore, no emulation boot).
func (f *runFlags) runFrom(topoPath, snapPath string) (*mfv.Result, error) {
	if snapPath == "" {
		return f.run(topoPath)
	}
	snap, err := f.loadSnapshot(snapPath, topoPath)
	if err != nil {
		return nil, err
	}
	opts, err := f.options()
	if err != nil {
		return nil, err
	}
	return mfv.RunFromSnapshot(snap, opts)
}

// withBudget brackets a command body with the -timeout wall-clock budget
// and SIGINT/SIGTERM handling: the context lands in f.ctx (plumbed into
// convergence waits, the chaos engine, and the sweep loop), and an expired
// budget or a delivered signal converts the body's outcome into exit code 5
// — after the body has emitted whatever partial report it salvaged. A
// second signal falls through to the runtime's default handler and kills
// the process, so a wedged run can still be interrupted.
func (f *runFlags) withBudget(body func() error) error {
	base, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := base, context.CancelFunc(func() {})
	if f.budget > 0 {
		ctx, cancel = context.WithTimeout(base, f.budget)
	}
	defer cancel()
	f.ctx = ctx
	bodyErr := body()
	if ctx.Err() != nil {
		if base.Err() != nil {
			if bodyErr != nil {
				return timeoutf("interrupted: %v", bodyErr)
			}
			return timeoutf("interrupted; report is partial")
		}
		if bodyErr != nil {
			return timeoutf("wall-clock budget %v exhausted: %v", f.budget, bodyErr)
		}
		return timeoutf("wall-clock budget %v exhausted; report is partial", f.budget)
	}
	return bodyErr
}

// withProfiles brackets a command body with the -cpuprofile/-memprofile
// hooks, keeping the body's error (a violation exit code must survive
// profile teardown).
func (f *runFlags) withProfiles(body func() error) error {
	stop, err := f.profile()
	if err != nil {
		return err
	}
	bodyErr := body()
	if perr := stop(); perr != nil && bodyErr == nil {
		return perr
	}
	return bodyErr
}

func cmdRun(args []string) error {
	f := newFlags("run")
	f.fs.Parse(args)
	return f.withBudget(func() error {
		return f.withProfiles(func() error {
			return f.withServe(func() error { return runBody(f) })
		})
	})
}

func runBody(f *runFlags) error {
	res, err := f.runFrom(f.topo, f.fromSnap)
	if err != nil {
		return err
	}
	// With -json, stdout is reserved for the JSON document — the human
	// summary moves to stderr so the output stays pipeable.
	out := os.Stdout
	if f.jsonOut {
		out = os.Stderr
	}
	fmt.Fprintf(out, "backend: %s\n", res.Backend)
	if res.Backend == mfv.BackendEmulation {
		fmt.Fprintf(out, "startup: %v (virtual)\nconverged at: %v (virtual)\n",
			res.StartupAt.Round(1e9), res.ConvergedAt.Round(1e9))
	}
	if len(res.DegradedRouters) > 0 {
		fmt.Fprintf(out, "DEGRADED: %d routers never settled: %v\n", len(res.DegradedRouters), res.DegradedRouters)
	}
	if len(res.QuarantinedRouters) > 0 {
		fmt.Fprintf(out, "QUARANTINED: %d routers contained after hostile input: %v\n",
			len(res.QuarantinedRouters), res.QuarantinedRouters)
		for _, name := range res.QuarantinedRouters {
			if reason, ok := res.Emulator.QuarantineReason(name); ok {
				fmt.Fprintf(out, "  %s: %s\n", name, reason)
			}
		}
	}
	counts := res.RouteCount()
	protos := make([]string, 0, len(counts))
	for p := range counts {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	fmt.Fprintln(out, "routes by protocol:")
	for _, p := range protos {
		fmt.Fprintf(out, "  %-10s %d\n", p, counts[p])
	}
	fmt.Fprintf(out, "devices with forwarding state: %d\n", len(res.Network.Devices()))
	if res.Chaos != nil {
		fmt.Fprint(out, res.Chaos)
	}
	if err := f.report(res); err != nil {
		return err
	}
	// Quarantine is the more specific diagnosis: the flow loss is the
	// contained router's expected blast radius, not an unexplained break.
	if len(res.QuarantinedRouters) > 0 {
		return degradedf("%d routers quarantined: %v", len(res.QuarantinedRouters), res.QuarantinedRouters)
	}
	if res.Chaos != nil && res.Chaos.PermanentFlowsLost > 0 {
		return violationf("%d flows permanently lost under chaos", res.Chaos.PermanentFlowsLost)
	}
	if len(res.DegradedRouters) > 0 {
		return degradedf("%d routers never settled: %v", len(res.DegradedRouters), res.DegradedRouters)
	}
	return nil
}

// cmdLint runs the preflight snapshot validator: parse every device config
// and cross-check the snapshot before anything expensive boots. With -live
// (and a snapshot clean enough to boot) it also runs the pipeline and audits
// the extracted AFTs against the topology and the routers' RIBs.
func cmdLint(args []string) error {
	f := newFlags("lint")
	live := f.fs.Bool("live", false, "also run the pipeline and cross-check extracted AFTs against RIBs")
	f.fs.Parse(args)
	topo, err := f.loadTopo(f.topo)
	if err != nil {
		return err
	}
	findings := mfv.LintSnapshot(topo)
	if *live && findings.Max() < mfv.SevFatal {
		opts, err := f.options()
		if err != nil {
			return err
		}
		res, err := mfv.Run(mfv.Snapshot{Topology: topo}, opts)
		if err != nil {
			return err
		}
		findings = append(findings, mfv.LintAFTs(topo, res.AFTs)...)
		if res.Emulator != nil {
			findings = append(findings, mfv.LintLive(res.Emulator)...)
		}
		findings.Sort()
	}
	if len(findings) == 0 {
		fmt.Println("lint: clean")
		return nil
	}
	errs := 0
	for _, d := range findings {
		fmt.Println(d)
		if d.Sev >= mfv.SevError {
			errs++
		}
	}
	if errs > 0 {
		return violationf("lint: %d findings at error or above (%d total)", errs, len(findings))
	}
	fmt.Printf("lint: %d warnings\n", len(findings))
	return nil
}

func cmdReach(args []string) error {
	f := newFlags("reach")
	f.fs.Parse(args)
	res, err := f.run(f.topo)
	if err != nil {
		return err
	}
	dst, err := netip.ParseAddr(f.dst)
	if err != nil {
		return fmt.Errorf("bad -dst: %w", err)
	}
	if f.src == "" {
		// All sources.
		unreachable := 0
		for _, src := range res.Network.Devices() {
			ok := res.Network.Reachable(src, dst)
			if !ok {
				unreachable++
			}
			fmt.Printf("%s -> %v: %v\n", src, dst, ok)
		}
		if unreachable > 0 {
			return violationf("%d sources cannot reach %v", unreachable, dst)
		}
		return nil
	}
	ok := res.Network.Reachable(f.src, dst)
	fmt.Printf("%s -> %v: %v\n", f.src, dst, ok)
	if !ok {
		return violationf("%s cannot reach %v", f.src, dst)
	}
	return nil
}

func cmdTrace(args []string) error {
	f := newFlags("trace")
	f.fs.Parse(args)
	res, err := f.run(f.topo)
	if err != nil {
		return err
	}
	dst, err := netip.ParseAddr(f.dst)
	if err != nil {
		return fmt.Errorf("bad -dst: %w", err)
	}
	if f.src == "" {
		return fmt.Errorf("missing -src")
	}
	for _, p := range res.Network.Trace(f.src, dst).Paths {
		fmt.Println(p)
	}
	return nil
}

func cmdDiff(args []string) error {
	f := newFlags("diff")
	f.fs.Parse(args)
	return f.withBudget(func() error {
		return f.withProfiles(func() error {
			return f.withServe(func() error { return diffBody(f) })
		})
	})
}

func diffBody(f *runFlags) error {
	before, err := f.runFrom(f.topo, f.fromSnap)
	if err != nil {
		return err
	}
	after, err := f.runFrom(f.topo2, f.fromSnap2)
	if err != nil {
		return err
	}
	diffs := mfv.DifferentialReachability(before, after)
	// Both runs share one observer, so the report covers the pipelines and
	// the differential query (including the batch engine's memo counters).
	if err := f.report(after); err != nil {
		return err
	}
	if len(diffs) == 0 {
		fmt.Println("no forwarding differences")
		return nil
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	fmt.Printf("%d changed flows\n", len(diffs))
	return violationf("%d changed flows", len(diffs))
}

func cmdCoverage(args []string) error {
	f := newFlags("coverage")
	f.fs.Parse(args)
	topo, err := f.loadTopo(f.topo)
	if err != nil {
		return err
	}
	res, err := mfv.Run(mfv.Snapshot{Topology: topo}, mfv.Options{Backend: mfv.BackendModel})
	if err != nil {
		return err
	}
	names := make([]string, 0, len(res.Coverage))
	for n := range res.Coverage {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-12s %8s %14s %10s\n", "device", "lines", "unrecognized", "ignored")
	for _, n := range names {
		cov := res.Coverage[n]
		fmt.Printf("%-12s %8d %14d %10d\n", n, cov.TotalLines, cov.UnrecognizedCount(), len(cov.Ignored))
	}
	return nil
}

func cmdLoops(args []string) error {
	f := newFlags("loops")
	f.fs.Parse(args)
	res, err := f.run(f.topo)
	if err != nil {
		return err
	}
	loops := res.Network.DetectLoops()
	if len(loops) == 0 {
		fmt.Println("no forwarding loops")
		return nil
	}
	for _, l := range loops {
		fmt.Printf("loop: dst class %v from %s: %s\n", l.Dst, l.Src, l.Path)
	}
	return violationf("%d loops found", len(loops))
}

func cmdShow(args []string) error {
	f := newFlags("show")
	f.fs.Parse(args)
	res, err := f.run(f.topo)
	if err != nil {
		return err
	}
	if res.Emulator == nil {
		return fmt.Errorf("show requires the emulation backend")
	}
	if f.node == "" {
		return fmt.Errorf("missing -node")
	}
	r, ok := res.Emulator.Router(f.node)
	if !ok {
		return fmt.Errorf("no router %q", f.node)
	}
	switch f.cmd {
	case "route":
		fmt.Print(r.ShowIPRoute())
	case "isis":
		fmt.Print(r.ShowISISDatabase())
	case "isis-nbr":
		fmt.Print(r.ShowISISNeighbors())
	case "bgp":
		fmt.Print(r.ShowBGPSummary())
	case "mpls":
		fmt.Print(r.ShowMPLSTunnels())
	case "interfaces":
		fmt.Print(r.ShowInterfaces())
	default:
		return fmt.Errorf("unknown show command %q", f.cmd)
	}
	return nil
}

func cmdWhatIf(args []string) error {
	f := newFlags("whatif")
	f.fs.Parse(args)
	topo, err := f.loadTopo(f.topo)
	if err != nil {
		return err
	}
	opts, err := f.options()
	if err != nil {
		return err
	}
	findings, err := mfv.ExploreSingleLinkFailures(mfv.Snapshot{Topology: topo}, opts)
	if err != nil {
		return err
	}
	for _, fd := range findings {
		verdict := "absorbed"
		if fd.LostFlows > 0 {
			verdict = fmt.Sprintf("loses %d flows", fd.LostFlows)
		}
		fmt.Printf("cut %-22s %s\n", fd.Cut, verdict)
	}
	ok, violations := mfv.SurvivesAnySingleLinkCut(findings)
	fmt.Printf("survives any single link cut: %v\n", ok)
	if !ok {
		fmt.Printf("critical links: %v\n", violations)
		return violationf("%d critical links", len(violations))
	}
	return nil
}

func cmdScenarios(args []string) error {
	f := newFlags("scenarios")
	f.fs.Parse(args)
	write := func(name string, topo *mfv.Topology) error {
		data, err := topo.Marshal()
		if err != nil {
			return err
		}
		path := filepath.Join(f.out, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	if err := write("fig2.json", mfv.Fig2()); err != nil {
		return err
	}
	if err := write("fig2-buggy.json", mfv.Fig2Buggy()); err != nil {
		return err
	}
	if err := write("fig3.json", mfv.Fig3()); err != nil {
		return err
	}
	return write("wan30.json", mfv.WAN(30, true))
}

// cmdSweep runs the exhaustive k-failure resilience sweep: converge the
// topology, enumerate every k-combination of link cuts, node failures, and
// BGP holds, verify each candidate's blast radius against the healthy
// baseline, and print the ranked table worst-first.
func cmdSweep(args []string) error {
	f := newFlags("sweep")
	k := f.fs.Int("k", 1, "failure depth: 1 (all singles) or 2 (singles + pairs)")
	kinds := f.fs.String("kinds", "link,node,bgp", "comma-separated failure element kinds")
	brute := f.fs.Bool("brute", false, "disable the fingerprint and independence prunes (every candidate applied and verified)")
	top := f.fs.Int("top", 0, "print only the worst N rows (0 = all)")
	replicas := f.fs.Int("replicas", 0, "emulation replica lanes for the apply/settle/rollback chains (0 = derive from -workers; capped by the memory budget)")
	memBudget := f.fs.Int64("mem-budget", 0, "replica-pool memory budget in bytes (0 = 8 GiB; pool capped at budget / (routers × 256 KiB))")
	journal := f.fs.String("journal", "", "append each candidate verdict to a write-ahead journal in this directory (crash insurance; pair with -resume)")
	resume := f.fs.String("resume", "", "resume from the journal in this directory: already-completed candidates are restored, not re-verified (implies -journal DIR)")
	retry := f.fs.Int("retry-budget", 0, "evaluation attempts per candidate before a repeatedly panicking lane poisons it in the report (0 = default 3)")
	f.fs.Parse(args)
	if f.workers <= 0 {
		return usagef("sweep: -workers must be positive (got %d)", f.workers)
	}
	if *replicas < 0 {
		return usagef("sweep: -replicas must be non-negative (got %d)", *replicas)
	}
	if *retry < 0 {
		return usagef("sweep: -retry-budget must be non-negative (got %d)", *retry)
	}
	journalDir, resuming := *journal, false
	if *resume != "" {
		if journalDir != "" && journalDir != *resume {
			return usagef("sweep: -journal %q and -resume %q name different directories", journalDir, *resume)
		}
		journalDir, resuming = *resume, true
	}
	return f.withBudget(func() error {
		return f.withProfiles(func() error {
			return f.withServe(func() error {
				return sweepBody(f, *k, *kinds, *brute, *top, *replicas, *memBudget, journalDir, resuming, *retry)
			})
		})
	})
}

func sweepBody(f *runFlags, k int, kindCSV string, brute bool, top, replicas int, memBudget int64, journalDir string, resume bool, retryBudget int) error {
	kinds, err := mfv.ParseSweepKinds(kindCSV)
	if err != nil {
		return err
	}
	// -from-snapshot supplies the topology (the snapshot embeds it) and,
	// after the baseline converges, gates the sweep on dataplane-hash
	// equality: journaled verdicts are only comparable when the healthy
	// baseline is the one the snapshot captured.
	var topo *mfv.Topology
	var snap *mfv.StoredSnapshot
	if f.fromSnap != "" {
		if snap, err = f.loadSnapshot(f.fromSnap, f.topo); err != nil {
			return err
		}
		if topo, err = snap.Topology(); err != nil {
			return err
		}
	} else if topo, err = f.loadTopo(f.topo); err != nil {
		return err
	}
	opts, err := f.options()
	if err != nil {
		return err
	}
	res, err := mfv.Run(mfv.Snapshot{Topology: topo}, opts)
	if err != nil {
		return err
	}
	if snap != nil {
		if got := mfv.DataplaneHash(res.AFTs); got != snap.DataplaneHash {
			return fmt.Errorf("converged dataplane %.12s… does not match snapshot %.12s… — state drifted since capture, refusing to sweep against it", got, snap.DataplaneHash)
		}
	}
	rep, err := mfv.RunSweep(res, topo, mfv.SweepOptions{
		K: k, Kinds: kinds, Workers: f.workers, Brute: brute,
		Replicas: replicas, MemoryBudget: memBudget,
		JournalDir: journalDir, Resume: resume, RetryBudget: retryBudget,
		Ctx: f.ctx, Obs: f.observer(),
	})
	if err != nil {
		return err
	}
	if f.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Print(rep.Render(top))
	}
	if rep.Violations > 0 {
		return violationf("%d of %d failure candidates lose flows", rep.Violations, rep.Candidates)
	}
	degraded := 0
	for _, row := range rep.Rows {
		if len(row.Stragglers) > 0 || len(row.Quarantined) > 0 || row.Residue > 0 || row.Poisoned != "" {
			degraded++
		}
	}
	if degraded > 0 {
		return degradedf("%d candidates left stragglers, quarantined routers, restore residue, or were poisoned", degraded)
	}
	return nil
}

// cmdSnapshot persists and inspects converged-state artifacts. `save` runs
// the full pipeline and writes the durable snapshot; `load` validates a
// file (magic, version, CRC, embedded hashes) and prints its summary
// without booting anything.
func cmdSnapshot(args []string) error {
	if len(args) == 0 {
		return usagef("snapshot: missing subcommand (save|load)")
	}
	sub, rest := args[0], args[1:]
	f := newFlags("snapshot " + sub)
	file := f.fs.String("file", "", "snapshot file path")
	f.fs.Parse(rest)
	if *file == "" {
		return usagef("snapshot %s: missing -file", sub)
	}
	switch sub {
	case "save":
		topo, err := f.loadTopo(f.topo)
		if err != nil {
			return err
		}
		opts, err := f.options()
		if err != nil {
			return err
		}
		res, err := mfv.Run(mfv.Snapshot{Topology: topo}, opts)
		if err != nil {
			return err
		}
		snap, err := mfv.CaptureSnapshot(topo, res)
		if err != nil {
			return err
		}
		if err := mfv.SaveSnapshot(snap, *file); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *file)
		fmt.Println(snap.Summary())
		return nil
	case "load":
		snap, err := f.loadSnapshot(*file, f.topo)
		if err != nil {
			return err
		}
		fmt.Println(snap.Summary())
		return nil
	default:
		return usagef("snapshot: unknown subcommand %q (want save|load)", sub)
	}
}

// cmdChaos has two modes. Without -topo it lists (and optionally writes)
// the built-in scenarios. With -topo it *runs* the scenario named by
// -scenario against the topology — `mfv run -chaos` with chaos-first
// ergonomics, and the natural host for -listen: a long fault timeline is
// exactly the run an operator wants to watch live.
func cmdChaos(args []string) error {
	f := newFlags("chaos")
	write := f.fs.String("write", "", "also write each scenario as <name>.json into this directory (list mode)")
	scenario := f.fs.String("scenario", "crash-reboot", "builtin scenario name or JSON file to execute (with -topo)")
	f.fs.Parse(args)
	if f.topo != "" {
		f.chaos = *scenario
		return f.withBudget(func() error {
			return f.withProfiles(func() error {
				return f.withServe(func() error { return runBody(f) })
			})
		})
	}
	for _, sc := range mfv.ChaosBuiltins() {
		fmt.Printf("%-14s seed=%-4d faults=%d  %s\n", sc.Name, sc.Seed, len(sc.Faults), sc.Description)
		for _, f := range sc.Faults {
			fmt.Printf("    t+%-8v %s\n", f.After, f.Describe())
		}
		if *write != "" {
			data, err := sc.Marshal()
			if err != nil {
				return err
			}
			path := filepath.Join(*write, sc.Name+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Println("    wrote", path)
		}
	}
	return nil
}
