package mfv

// End-to-end observability contracts on the public API: trace determinism
// across same-seed runs, and the presence of every event family the paper's
// debugging workflow leans on.

import (
	"bytes"
	"testing"
)

func traceRun(t *testing.T, topo *Topology) (*Observer, []byte) {
	t.Helper()
	o := NewObserver()
	if _, err := Run(Snapshot{Topology: topo}, Options{Obs: o}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return o, buf.Bytes()
}

// TestTraceDeterminism: two same-seed Fig. 2 pipeline runs must serialize
// byte-identical traces — virtual-time stamping means the trace is evidence,
// not a log.
func TestTraceDeterminism(t *testing.T) {
	_, a := traceRun(t, Fig2())
	_, b := traceRun(t, Fig2())
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed traces differ:\nlen(a)=%d len(b)=%d", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}

// TestTraceEventFamilies: the Fig. 2 trace must cover pod lifecycle, BGP
// sessions, IS-IS adjacencies, route churn, phase spans, and convergence.
func TestTraceEventFamilies(t *testing.T) {
	o, _ := traceRun(t, Fig2())
	counts := map[string]int{}
	var spans []string
	for _, ev := range o.Events() {
		counts[ev.Type]++
		if ev.Type == EvSpanStart {
			spans = append(spans, ev.Detail)
		}
	}
	for _, want := range []string{
		EvPodReady, EvStartupDone, EvLinkUp, EvBGPSession,
		EvISISAdjacency, EvRouteChurn, EvConverged, EvAFTExport,
		EvSpanStart, EvSpanEnd,
	} {
		if counts[want] == 0 {
			t.Errorf("no %s events in trace; have %v", want, counts)
		}
	}
	// All six pipeline phases appear as spans.
	want := map[string]bool{"parse": true, "schedule": true, "boot": true,
		"converge": true, "extract": true, "verify": true}
	for _, s := range spans {
		delete(want, s)
	}
	if len(want) != 0 {
		t.Errorf("missing phase spans: %v (have %v)", want, spans)
	}
}

// TestMetricsPopulated: a full run must register the headline metrics with
// plausible values.
func TestMetricsPopulated(t *testing.T) {
	o, _ := traceRun(t, Fig2())
	names := map[string]bool{}
	for _, n := range o.Metrics().Names() {
		names[n] = true
	}
	for _, want := range []string{
		"bgp_updates_total", "bgp_sessions_established_total", "spf_runs_total",
		"spf_ns", "lsps_flooded_total", "fib_recompute_ns", "ec_count",
		"sim_events_total", "sim_queue_peak", "pods_running", "rib_routes",
	} {
		if !names[want] {
			t.Errorf("metric %s not registered; have %v", want, o.Metrics().Names())
		}
	}
	if v := o.Counter("bgp_sessions_established_total").Value(); v == 0 {
		t.Error("no BGP sessions established")
	}
	if v := o.Gauge("ec_count").Value(); v <= 0 {
		t.Errorf("ec_count = %d", v)
	}
}

// TestChaosTraceDeterminism extends the trace-determinism contract to fault
// injection: two same-seed runs of the same chaos scenario must serialize
// byte-identical traces, and the trace must carry the fault-lifecycle event
// families.
func TestChaosTraceDeterminism(t *testing.T) {
	chaosRun := func() (*Observer, []byte) {
		t.Helper()
		sc, ok := ChaosBuiltin("crash-reboot")
		if !ok {
			t.Fatal("no crash-reboot builtin")
		}
		o := NewObserver()
		res, err := Run(Snapshot{Topology: Fig2()}, Options{Obs: o, Chaos: sc})
		if err != nil {
			t.Fatal(err)
		}
		if res.Chaos == nil || !res.Chaos.Recovered {
			t.Fatalf("chaos run did not recover: %v", res.Chaos)
		}
		var buf bytes.Buffer
		if err := o.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return o, buf.Bytes()
	}
	oa, a := chaosRun()
	_, b := chaosRun()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed chaos traces differ:\nlen(a)=%d len(b)=%d", len(a), len(b))
	}
	counts := map[string]int{}
	for _, ev := range oa.Events() {
		counts[ev.Type]++
	}
	for _, want := range []string{EvFaultInject, EvFaultClear, EvPodCrash, EvChaosVerdict} {
		if counts[want] == 0 {
			t.Errorf("no %s events in chaos trace", want)
		}
	}
}

// TestModelBackendPhases: the model baseline records parse and verify phases
// with zero virtual time (no simulation clock).
func TestModelBackendPhases(t *testing.T) {
	o := NewMetricsObserver()
	if _, err := Run(Snapshot{Topology: Fig3()}, Options{Backend: BackendModel, Obs: o}); err != nil {
		t.Fatal(err)
	}
	ph := o.Phases()
	if len(ph) != 2 || ph[0].Name != "parse" || ph[1].Name != "verify" {
		t.Fatalf("model phases = %+v", ph)
	}
	for _, p := range ph {
		if p.VDur() != 0 {
			t.Errorf("model phase %s has virtual duration %v", p.Name, p.VDur())
		}
	}
}
