package sweep

import (
	"fmt"
	"testing"
	"time"

	"mfv/internal/kne"
	"mfv/internal/sim"
	"mfv/internal/testnet"
)

func benchBoot(b *testing.B, n int) *kne.Emulator {
	b.Helper()
	topo := testnet.WAN(n, true)
	em, err := kne.New(kne.Config{Topology: topo, Sim: sim.New(42)})
	if err != nil {
		b.Fatal(err)
	}
	if err := em.Start(); err != nil {
		b.Fatal(err)
	}
	if _, err := em.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		b.Fatal(err)
	}
	return em
}

// BenchmarkSweepSingleFailure measures the k=1 failure sweep of the 30-node
// multi-vendor WAN across the prune and replica-pool axes: candidates per
// second pruned versus brute force, sequential (workers=1) versus the
// 8-lane replica pool. Every arm must produce a byte-identical ranked table
// — the benchmark doubles as the pruning and replica-equivalence acceptance
// check at benchmark scale. Wall-clock scaling between the workers arms is
// reported, not asserted: the speedup is ≈min(lanes, cores)× and so depends
// on the host. See README "Sweep performance" for the measured numbers.
func BenchmarkSweepSingleFailure(b *testing.B) {
	reports := map[string]*Report{}
	for _, arm := range []struct {
		name    string
		brute   bool
		workers int
	}{
		{"pruned/workers=1", false, 1},
		{"pruned/workers=8", false, 8},
		{"brute/workers=1", true, 1},
		{"brute/workers=8", true, 8},
	} {
		b.Run(arm.name, func(b *testing.B) {
			em := benchBoot(b, 30)
			b.ResetTimer()
			var candidates int
			for i := 0; i < b.N; i++ {
				rep, err := Run(em, testnet.WAN(30, true), Options{K: 1, Brute: arm.brute, Workers: arm.workers})
				if err != nil {
					b.Fatal(err)
				}
				candidates += rep.Candidates
				if reports[arm.name] == nil {
					reports[arm.name] = rep
				}
			}
			b.StopTimer()
			rep := reports[arm.name]
			b.ReportMetric(float64(candidates)/b.Elapsed().Seconds(), "failures/s")
			b.ReportMetric(float64(rep.Verified), "verified")
			b.ReportMetric(float64(rep.Replicas), "replicas")
		})
	}
	ref := reports["pruned/workers=1"]
	if ref == nil {
		return
	}
	for name, rep := range reports {
		if rep.Table(0) != ref.Table(0) {
			b.Errorf("%s ranked table differs from pruned/workers=1", name)
		}
	}
	if brute := reports["brute/workers=1"]; brute != nil && ref.Verified >= brute.Verified {
		b.Errorf("pruning verified %d candidates, brute %d — want strictly fewer", ref.Verified, brute.Verified)
	}
}

// BenchmarkSweepDoubleFailure measures the k=2 pair sweep of the 30-node
// WAN's BGP services (30 singles + 435 pairs), pruned versus brute. The
// pruned arm exercises the phase barrier and the independence prune — on a
// healthy WAN most BGP pairs are independently harmless, so the gap between
// the arms is the prune's value; the byte-identity check between them is the
// k=2 soundness bar at benchmark scale.
func BenchmarkSweepDoubleFailure(b *testing.B) {
	reports := map[string]*Report{}
	for _, arm := range []struct {
		name  string
		brute bool
	}{{"pruned", false}, {"brute", true}} {
		b.Run(arm.name, func(b *testing.B) {
			em := benchBoot(b, 30)
			b.ResetTimer()
			var candidates int
			for i := 0; i < b.N; i++ {
				rep, err := Run(em, testnet.WAN(30, true), Options{
					K: 2, Kinds: []Kind{KindBGP}, Brute: arm.brute, Workers: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				candidates += rep.Candidates
				if reports[arm.name] == nil {
					reports[arm.name] = rep
				}
			}
			b.StopTimer()
			rep := reports[arm.name]
			b.ReportMetric(float64(candidates)/b.Elapsed().Seconds(), "failures/s")
			b.ReportMetric(float64(rep.Verified), "verified")
			b.ReportMetric(float64(rep.Applied), "applied")
		})
	}
	pruned, brute := reports["pruned"], reports["brute"]
	if pruned == nil || brute == nil {
		return
	}
	if pruned.Applied >= brute.Applied {
		b.Errorf("independence prune applied %d candidates, brute %d — want strictly fewer", pruned.Applied, brute.Applied)
	}
	// An independent-pruned pair reports predicted zeros with "-" timing, so
	// the k=2 tables legitimately differ per row; the verdicts must not.
	for i := range pruned.Rows {
		p, q := pruned.Rows[i], brute.Rows[i]
		if p.FlowsLost != q.FlowsLost || p.Failure == "" || q.Failure == "" {
			b.Errorf("row %d verdict mismatch: pruned %q lost %d, brute %q lost %d",
				i, p.Failure, p.FlowsLost, q.Failure, q.FlowsLost)
			break
		}
	}
	if fmt.Sprint(pruned.Violations) != fmt.Sprint(brute.Violations) {
		b.Errorf("violation counts differ: pruned %d, brute %d", pruned.Violations, brute.Violations)
	}
}

// BenchmarkSweepResume measures what the write-ahead journal buys after a
// crash: the cold arm runs the WAN30 BGP single-failure sweep journaling
// every verdict; the resumed arm re-runs over the completed journal,
// restoring every candidate instead of re-applying and re-verifying it.
// The reports must be byte-identical — the gap between the arms is the
// crash-recovery win recorded in EXPERIMENTS.md E15.
func BenchmarkSweepResume(b *testing.B) {
	reports := map[string]*Report{}
	opts := func(dir string, resume bool) Options {
		return Options{K: 1, Kinds: []Kind{KindBGP}, Workers: 1, JournalDir: dir, Resume: resume}
	}
	b.Run("cold", func(b *testing.B) {
		em := benchBoot(b, 30)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := Run(em, testnet.WAN(30, true), opts(b.TempDir(), false))
			if err != nil {
				b.Fatal(err)
			}
			if reports["cold"] == nil {
				reports["cold"] = rep
			}
		}
	})
	b.Run("resumed", func(b *testing.B) {
		em := benchBoot(b, 30)
		dir := b.TempDir()
		if _, err := Run(em, testnet.WAN(30, true), opts(dir, false)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := Run(em, testnet.WAN(30, true), opts(dir, true))
			if err != nil {
				b.Fatal(err)
			}
			if reports["resumed"] == nil {
				reports["resumed"] = rep
			}
		}
	})
	cold, resumed := reports["cold"], reports["resumed"]
	if cold == nil || resumed == nil {
		return
	}
	if cold.Table(0) != resumed.Table(0) {
		b.Error("resumed ranked table differs from the cold run")
	}
}
