package sweep

import (
	"testing"
	"time"

	"mfv/internal/kne"
	"mfv/internal/sim"
	"mfv/internal/testnet"
)

// BenchmarkSweepSingleFailure measures the k=1 failure sweep of the 30-node
// multi-vendor WAN: candidates verified per second, pruned versus brute
// force. The arms must produce byte-identical ranked tables while the pruned
// arm verifies strictly fewer candidates — the benchmark doubles as the
// pruning acceptance check at benchmark scale.
func BenchmarkSweepSingleFailure(b *testing.B) {
	reports := map[string]*Report{}
	for _, arm := range []struct {
		name  string
		brute bool
	}{{"pruned", false}, {"brute", true}} {
		b.Run(arm.name, func(b *testing.B) {
			topo := testnet.WAN(30, true)
			em, err := kne.New(kne.Config{Topology: topo, Sim: sim.New(42)})
			if err != nil {
				b.Fatal(err)
			}
			if err := em.Start(); err != nil {
				b.Fatal(err)
			}
			if _, err := em.RunUntilConverged(30*time.Second, time.Hour); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var candidates int
			for i := 0; i < b.N; i++ {
				rep, err := Run(em, topo, Options{K: 1, Brute: arm.brute})
				if err != nil {
					b.Fatal(err)
				}
				candidates += rep.Candidates
				if reports[arm.name] == nil {
					reports[arm.name] = rep
				}
			}
			b.StopTimer()
			rep := reports[arm.name]
			b.ReportMetric(float64(candidates)/b.Elapsed().Seconds(), "failures/s")
			b.ReportMetric(float64(rep.Verified), "verified")
		})
	}
	pruned, brute := reports["pruned"], reports["brute"]
	if pruned == nil || brute == nil {
		return
	}
	if pruned.Verified >= brute.Verified {
		b.Errorf("pruning verified %d candidates, brute %d — want strictly fewer", pruned.Verified, brute.Verified)
	}
	if pruned.Table(0) != brute.Table(0) {
		b.Error("pruned ranked table differs from brute force")
	}
}
