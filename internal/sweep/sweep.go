// Package sweep answers the exhaustive resilience question the chaos engine
// cannot: does ANY single (k=1) or double (k=2) failure of a link, a router,
// or a router's BGP service break reachability? It enumerates every
// k-failure combination, applies each candidate to the live emulation via
// the kne fault hooks, re-settles on the virtual clock, scores the blast
// radius with the delta differential against the healthy baseline, and rolls
// the candidate back so the next one chains off a restored snapshot.
//
// The combinatorial space stays tractable through two prunes, Plankton-style
// (PAPERS.md): candidates whose dirty-set fingerprints match an already
// verified candidate share its verdict (symmetric failures verify once), and
// k=2 pairs whose members were independently harmless with disjoint dirty
// sets are skipped without being applied. Verification of the surviving
// representatives is sharded across a worker pool with a deterministic
// merge, so the ranked table is byte-identical at any worker count — and,
// for k=1, byte-identical with pruning disabled.
//
// The apply→settle→rollback chain itself is also parallel: the engine forks
// the converged emulation into a pool of deterministic replicas
// (kne.Emulator.Replica) and partitions the candidate list across the lanes,
// merging outcomes back into canonical candidate slots. Because every
// periodic protocol timer ticks on a globally aligned grid and each
// candidate's injection is clock-aligned and RNG-reseeded from its identity,
// a candidate's measured timeline is a pure function of (baseline,
// candidate) — so the partition is invisible and the ranked table stays
// byte-identical at any replica count. The k=1 verification barrier sits
// between the phases: all k=1 verdicts merge before k=2 pairs are
// enumerated, because the independence prune consumes them.
package sweep

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mfv/internal/kne"
	"mfv/internal/obs"
)

// Kind selects a failure element class.
type Kind string

const (
	// KindLink cuts one link (both endpoints detached).
	KindLink Kind = "link"
	// KindNode fails one router's pod with no replacement until rollback.
	KindNode Kind = "node"
	// KindBGP holds down every BGP session on one router.
	KindBGP Kind = "bgp"
)

// AllKinds is the default element-class set, in canonical order.
func AllKinds() []Kind { return []Kind{KindLink, KindNode, KindBGP} }

// ParseKinds parses a comma-separated kind list ("link,bgp").
func ParseKinds(csv string) ([]Kind, error) {
	var out []Kind
	seen := map[Kind]bool{}
	for _, f := range strings.Split(csv, ",") {
		k := Kind(strings.TrimSpace(f))
		switch k {
		case KindLink, KindNode, KindBGP:
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		case "":
		default:
			return nil, fmt.Errorf("sweep: unknown failure kind %q (want link, node, bgp)", k)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: no failure kinds selected")
	}
	return out, nil
}

// Element is one atomic failure: a link cut, a node failure, or a BGP hold.
type Element struct {
	Kind Kind   `json:"kind"`
	Link string `json:"link,omitempty"` // "node:interface", for KindLink
	Node string `json:"node,omitempty"` // router name, for KindNode / KindBGP
}

// Describe renders the element ("link r2:Ethernet2", "node r5", "bgp r2").
func (el Element) Describe() string {
	if el.Kind == KindLink {
		return "link " + el.Link
	}
	return string(el.Kind) + " " + el.Node
}

// Candidate is one k-failure combination, elements in canonical order.
type Candidate struct {
	Elements []Element `json:"elements"`
}

// Describe renders the candidate ("link r2:Ethernet2 + node r5").
func (c Candidate) Describe() string {
	parts := make([]string, len(c.Elements))
	for i, el := range c.Elements {
		parts[i] = el.Describe()
	}
	return strings.Join(parts, " + ")
}

// Options configures a sweep.
type Options struct {
	// K is the failure depth: 1 (all singles) or 2 (singles + pairs).
	K int
	// Kinds restricts the element classes; nil means all three.
	Kinds []Kind
	// Workers sizes the verification worker pool (0 = GOMAXPROCS). The
	// ranked table is byte-identical at any value.
	Workers int
	// Brute disables both prunes: every candidate is applied and verified.
	// The k=1 ranked table must be byte-identical to the pruned run's.
	Brute bool
	// Hold is the quiet window that counts as settled (default 2m — must
	// exceed the BGP HoldTime so silent cuts reach withdrawal).
	Hold time.Duration
	// Timeout bounds each candidate's settle wait (default 30m virtual).
	Timeout time.Duration
	// Ctx, when non-nil, interrupts the sweep between candidates: the
	// report comes back partial with Interrupted set.
	Ctx context.Context
	// Obs receives progress events and metrics. Nil disables.
	Obs *obs.Observer
	// Replicas sizes the emulation replica pool: the apply→settle→rollback
	// chains run concurrently, one lane per replica. 0 derives the pool
	// from Workers; 1 forces the single-emulator sequential path. The pool
	// is additionally capped by the candidate count and by MemoryBudget.
	// The ranked table is byte-identical at any replica count.
	Replicas int
	// MemoryBudget bounds the replica pool's estimated footprint in bytes
	// (default 8 GiB): at most MemoryBudget / (routers × 256 KiB) lanes.
	MemoryBudget int64
	// BuildReplicas, when non-nil, boots n started-and-converged
	// deterministic replicas of the primary emulator (the CLI wires
	// core.BuildReplicas here to reuse the sharded-boot pool). Nil uses the
	// generic kne replay. Build failure is non-fatal: the sweep degrades to
	// the sequential path and counts sweep_replica_fallback_total. Lane
	// supervision also calls this factory to rebuild a panicked or drifted
	// lane mid-sweep, so the factory must gate rebuilt lanes on the healthy
	// baseline fingerprint, not the primary's current state.
	BuildReplicas func(n int) ([]*kne.Emulator, error)
	// JournalDir, when non-empty, write-ahead-journals every candidate
	// verdict into <dir>/sweep.wal at chunk granularity (fsynced), so an
	// interrupted sweep can be resumed. The journal is keyed by an input
	// hash (topology, seed, k, kinds, budgets, canonical element list) and
	// the baseline dataplane hash.
	JournalDir string
	// Resume replays the journal in JournalDir before evaluating: candidates
	// with journaled verdicts are restored without touching the emulation,
	// and the final report is byte-identical to an uninterrupted run. A
	// missing journal file degrades to a fresh journaled run; a journal
	// recorded under a different input or baseline is an error.
	Resume bool
	// RetryBudget caps how many times a candidate whose evaluation panicked
	// is re-attempted on a rebuilt lane before being poisoned (quarantined
	// in the report with an empty verdict). 0 means the default of 3.
	RetryBudget int
}

// Row is one ranked sweep result.
type Row struct {
	Rank    int    `json:"rank"`
	Failure string `json:"failure"`
	K       int    `json:"k"`
	// FlowsLost counts (source, equivalence-class) flows delivered in the
	// healthy baseline but not under the failure — the violation signal.
	FlowsLost int `json:"flows_lost"`
	// FlowsChanged counts all flows whose outcome changed (rerouted
	// deliveries included).
	FlowsChanged int `json:"flows_changed"`
	// DirtyRouters is the blast radius in FIB terms: routers whose
	// forwarding state the failure touched.
	DirtyRouters int `json:"dirty_routers"`
	// ReconvergedIn is the virtual time from injection to quiescence.
	ReconvergedIn time.Duration `json:"reconverged_in_ns"`
	Stragglers    []string      `json:"stragglers,omitempty"`
	Quarantined   []string      `json:"quarantined,omitempty"`
	// Residue counts flows still diverging from the baseline after
	// rollback — nonzero means the candidate did not fully heal.
	Residue int `json:"restore_residue,omitempty"`
	// Pruned records how the verdict was obtained without a dedicated
	// verification: "fingerprint" (shares an equivalent candidate's
	// verdict) or "independent" (k=2 pair skipped; both members were
	// independently harmless with disjoint dirty sets). Empty for
	// directly verified candidates.
	Pruned string `json:"pruned,omitempty"`
	// Poisoned, when non-empty, records why this candidate has no verdict:
	// its evaluation panicked more times than the retry budget allows, so it
	// was quarantined (the sweep's analogue of PR 5's per-router
	// quarantine) instead of killing the sweep. The message is the last
	// panic value.
	Poisoned string `json:"poisoned,omitempty"`
	// Diffs samples the per-flow outcome changes (capped).
	Diffs []string `json:"diffs,omitempty"`
}

// maxRowDiffs caps the per-row diff sample so k=2 JSON reports stay bounded.
const maxRowDiffs = 12

// Report is the full sweep outcome, rows ranked worst-first.
type Report struct {
	K          int    `json:"k"`
	Kinds      []Kind `json:"kinds"`
	Routers    int    `json:"routers"`
	Candidates int    `json:"candidates"`
	// Applied counts candidates actually injected (independent-pruned
	// pairs are skipped without touching the network).
	Applied int `json:"applied"`
	// Verified counts differential verifications run; fingerprint-pruned
	// candidates share a representative's and add nothing here.
	Verified          int `json:"verified"`
	PrunedFingerprint int `json:"pruned_fingerprint"`
	PrunedIndependent int `json:"pruned_independent"`
	// Violations counts candidates that lost at least one flow.
	Violations int `json:"violations"`
	// Poisoned counts candidates quarantined after exhausting the panic
	// retry budget; their rows carry no verdict.
	Poisoned int `json:"poisoned,omitempty"`
	// Residue counts candidates that did not fully heal on rollback.
	Residue int `json:"restore_residue,omitempty"`
	// Replicas is the emulation-lane count the sweep actually ran with
	// (after candidate-count and memory-budget caps, and after any
	// replica-build fallback). Run-local, like Wall: two runs of the same
	// space may differ here while their Rows are byte-identical.
	Replicas    int           `json:"replicas"`
	StartedAt   time.Duration `json:"started_at_ns"`
	FinishedAt  time.Duration `json:"finished_at_ns"`
	Wall        time.Duration `json:"wall_ns"`
	Interrupted bool          `json:"interrupted,omitempty"`
	Rows        []Row         `json:"rows"`
}

// Table renders the ranked blast-radius table (top rows only when top > 0).
// It contains results exclusively — no prune bookkeeping, no wall times — so
// a pruned sweep and a brute-force sweep of the same k=1 space render
// byte-identical tables, at any worker count. (At k=2 an independent-pruned
// pair shows predicted zeros with "-" timing, since it was never applied.)
func (r *Report) Table(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s  %-40s %2s %6s %8s %6s %12s  %s\n",
		"RANK", "FAILURE", "K", "LOST", "CHANGED", "DIRTY", "RECONVERGED", "STATUS")
	for _, row := range r.Rows {
		if top > 0 && row.Rank > top {
			fmt.Fprintf(&b, "… %d more row(s)\n", len(r.Rows)-top)
			break
		}
		status := "ok"
		switch {
		case row.Poisoned != "":
			status = "POISONED (" + row.Poisoned + ")"
		case row.FlowsLost > 0:
			status = "VIOLATION"
		case row.FlowsChanged > 0:
			status = "rerouted"
		}
		if len(row.Stragglers) > 0 {
			status += " (stragglers: " + strings.Join(row.Stragglers, ",") + ")"
		}
		if len(row.Quarantined) > 0 {
			status += " (quarantined: " + strings.Join(row.Quarantined, ",") + ")"
		}
		if row.Residue > 0 {
			status += fmt.Sprintf(" (restore residue: %d)", row.Residue)
		}
		reconv := "-"
		if row.Pruned != "independent" {
			reconv = row.ReconvergedIn.String()
		}
		fmt.Fprintf(&b, "%4d  %-40s %2d %6d %8d %6d %12s  %s\n",
			row.Rank, row.Failure, row.K, row.FlowsLost, row.FlowsChanged,
			row.DirtyRouters, reconv, status)
	}
	return b.String()
}

// String renders the summary header plus the full table.
func (r *Report) String() string { return r.Render(0) }

// Render is String with the table truncated to the worst top rows (0 = all).
func (r *Report) Render(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "failure sweep k=%d over %d router(s): %d candidate(s), %d applied, %d verified",
		r.K, r.Routers, r.Candidates, r.Applied, r.Verified)
	if r.PrunedFingerprint > 0 || r.PrunedIndependent > 0 {
		fmt.Fprintf(&b, " (pruned: %d fingerprint, %d independent)",
			r.PrunedFingerprint, r.PrunedIndependent)
	}
	if r.Poisoned > 0 {
		fmt.Fprintf(&b, " (%d poisoned)", r.Poisoned)
	}
	fmt.Fprintf(&b, ", %d violation(s), %d replica lane(s), %v virtual, %v wall\n",
		r.Violations, r.Replicas, r.FinishedAt-r.StartedAt, r.Wall.Round(time.Millisecond))
	if r.Interrupted {
		fmt.Fprintf(&b, "sweep interrupted by wall-clock budget; %d candidate(s) ranked\n", len(r.Rows))
	}
	b.WriteString(r.Table(top))
	return b.String()
}
