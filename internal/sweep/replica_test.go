package sweep

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"mfv/internal/kne"
	"mfv/internal/obs"
	"mfv/internal/sim"
	"mfv/internal/testnet"
	"mfv/internal/topology"
)

// normalize clears the run-local fields (wall clock, virtual start/finish,
// lane count) that legitimately differ between runs of the same sweep space;
// everything else — every row, every counter — must be byte-identical.
func normalize(r *Report) *Report {
	cp := *r
	cp.Wall = 0
	cp.StartedAt = 0
	cp.FinishedAt = 0
	cp.Replicas = 0
	return &cp
}

func reportJSON(t *testing.T, r *Report) string {
	t.Helper()
	b, err := json.Marshal(normalize(r))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSweepReplicaEquivalence is the tentpole's correctness quickcheck: the
// replica-parallel sweep must produce a ranked Report and Table byte-identical
// to the sequential engine's, at every lane count, pruned and brute, k=1 and
// k=2. Each configuration boots a fresh same-seed emulation, so the reference
// (workers=1, replicas=1) and the parallel runs measure the same network.
func TestSweepReplicaEquivalence(t *testing.T) {
	topos := []struct {
		name string
		mk   func() *topology.Topology
	}{
		{"fig2", testnet.Fig2},
		{"wan9", func() *topology.Topology { return testnet.WAN(9, false) }},
	}
	for _, tc := range topos {
		for _, k := range []int{1, 2} {
			for _, brute := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/k%d/brute=%v", tc.name, k, brute), func(t *testing.T) {
					if testing.Short() && (k == 2 || tc.name == "wan9") {
						t.Skip("multi-candidate settle sweep")
					}
					run := func(workers int) *Report {
						em := boot(t, tc.mk(), 42)
						rep, err := Run(em, tc.mk(), Options{K: k, Brute: brute, Workers: workers})
						if err != nil {
							t.Fatal(err)
						}
						return rep
					}
					ref := run(1)
					if ref.Replicas != 1 {
						t.Fatalf("workers=1 ran %d lanes, want 1", ref.Replicas)
					}
					refJSON, refTable := reportJSON(t, ref), ref.Table(0)
					for _, workers := range []int{2, 8} {
						got := run(workers)
						if got.Replicas < 2 {
							t.Errorf("workers=%d ran %d lanes, want ≥2", workers, got.Replicas)
						}
						if gt := got.Table(0); gt != refTable {
							t.Errorf("workers=%d table differs from sequential:\n--- want\n%s--- got\n%s", workers, refTable, gt)
						}
						if gj := reportJSON(t, got); gj != refJSON {
							t.Errorf("workers=%d report differs from sequential:\nwant %s\ngot  %s", workers, refJSON, gj)
						}
					}
				})
			}
		}
	}
}

// TestSweepReplicasOption pins the pool-sizing contract: Replicas overrides
// Workers, the pool never exceeds the candidate count, and the memory budget
// caps it at MemoryBudget / (routers × 256 KiB) lanes.
func TestSweepReplicasOption(t *testing.T) {
	em := boot(t, testnet.Fig2(), 42)
	// One lane models routers × 256 KiB; a budget of exactly three lanes'
	// worth must cap an 8-lane request at 3.
	budget := 3 * int64(len(em.Routers())) * int64(replicaBytesPerRouter)
	rep, err := Run(em, testnet.Fig2(), Options{
		K: 1, Kinds: []Kind{KindBGP}, Replicas: 8, MemoryBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicas != 3 {
		t.Errorf("budget-capped pool ran %d lanes, want 3", rep.Replicas)
	}

	em2 := boot(t, testnet.Fig2(), 42)
	rep2, err := Run(em2, testnet.Fig2(), Options{K: 1, Kinds: []Kind{KindBGP}, Workers: 8, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Replicas != 1 {
		t.Errorf("Replicas=1 ran %d lanes, want the sequential path", rep2.Replicas)
	}
}

// TestSweepReplicaBuildFallback: a replica factory that fails must degrade
// the sweep to the sequential path — same report, fallback counted — never
// fail it.
func TestSweepReplicaBuildFallback(t *testing.T) {
	o := obs.NewMetricsOnly()
	topo := testnet.Fig2()
	em, err := kne.New(kne.Config{Topology: topo, Sim: sim.New(42), Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if err := em.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(em, topo, Options{
		K: 1, Kinds: []Kind{KindBGP}, Workers: 4, Obs: o,
		BuildReplicas: func(n int) ([]*kne.Emulator, error) {
			return nil, fmt.Errorf("no replicas today")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicas != 1 {
		t.Errorf("failed build ran %d lanes, want sequential fallback", rep.Replicas)
	}
	if got := o.Counter("sweep_replica_fallback_total").Value(); got != 1 {
		t.Errorf("sweep_replica_fallback_total = %d, want 1", got)
	}
	want := sweepFig2(t, Options{K: 1, Kinds: []Kind{KindBGP}})
	if rep.Table(0) != want.Table(0) {
		t.Errorf("fallback table differs from sequential:\n%s\n%s", want.Table(0), rep.Table(0))
	}
}

// TestKneReplicaFingerprint pins the replay-identity gate end to end: a
// replica of a converged emulation reproduces its state fingerprint, and a
// faulted emulation refuses to replicate.
func TestKneReplicaFingerprint(t *testing.T) {
	em := boot(t, testnet.WAN(9, false), 7)
	repl, err := em.Replica(30*time.Second, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Stop()
	if got, want := repl.StateFingerprint(), em.StateFingerprint(); got != want {
		t.Errorf("replica fingerprint %s != primary %s", got, want)
	}
	if err := em.HoldBGP(em.Routers()[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, err := em.Replica(30*time.Second, time.Hour); err == nil {
		t.Error("faulted emulation replicated; want refusal")
	}
}
