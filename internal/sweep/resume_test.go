package sweep

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"mfv/internal/obs"
	"mfv/internal/store"
	"mfv/internal/testnet"
)

// truncateJournal rewrites the journal to its header plus the first keep
// entries — simulating a crash that made exactly that prefix durable.
func truncateJournal(t *testing.T, dir string, keep int) {
	t.Helper()
	path := store.SweepJournalPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < keep+1 {
		t.Fatalf("journal has %d lines, cannot keep header+%d", len(lines), keep)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines[:keep+1], "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

func journalLines(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(store.SweepJournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

// TestSweepResumeByteIdentical is the tentpole acceptance check: a journaled
// sweep truncated mid-flight (the crash) and resumed must skip every
// journaled candidate and produce a Report (JSON) and Table byte-identical
// to the uninterrupted run, at workers/replicas 1, 2, and 8.
func TestSweepResumeByteIdentical(t *testing.T) {
	for _, k := range []int{1, 2} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			if testing.Short() && k == 2 {
				t.Skip("multi-candidate settle sweep")
			}
			kinds := []Kind{KindBGP}
			coldDir := t.TempDir()
			em := boot(t, testnet.Fig2(), 42)
			cold, err := Run(em, testnet.Fig2(), Options{K: k, Kinds: kinds, Workers: 1, JournalDir: coldDir})
			if err != nil {
				t.Fatal(err)
			}
			refJSON, refTable := reportJSON(t, cold), cold.Table(0)
			total := journalLines(t, coldDir) - 1 // entries, minus the header
			if total != cold.Candidates {
				t.Fatalf("journal has %d entries, want one per candidate (%d)", total, cold.Candidates)
			}
			keep := total / 2
			if keep == 0 {
				t.Fatalf("sweep too small to truncate (%d entries)", total)
			}
			for _, workers := range []int{1, 2, 8} {
				dir := t.TempDir()
				src, err := os.ReadFile(store.SweepJournalPath(coldDir))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(store.SweepJournalPath(dir), src, 0o644); err != nil {
					t.Fatal(err)
				}
				truncateJournal(t, dir, keep)
				o := obs.NewMetricsOnly()
				em := boot(t, testnet.Fig2(), 42)
				got, err := Run(em, testnet.Fig2(), Options{
					K: k, Kinds: kinds, Workers: workers, Replicas: workers,
					JournalDir: dir, Resume: true, Obs: o,
				})
				if err != nil {
					t.Fatalf("workers=%d resume: %v", workers, err)
				}
				if gotJSON := reportJSON(t, got); gotJSON != refJSON {
					t.Errorf("workers=%d resumed JSON differs from cold run:\n%s\n%s", workers, refJSON, gotJSON)
				}
				if gotTable := got.Table(0); gotTable != refTable {
					t.Errorf("workers=%d resumed Table differs:\n%s\n%s", workers, refTable, gotTable)
				}
				if restored := o.Metrics().Counter("sweep_candidates_restored_total").Value(); restored != uint64(keep) {
					t.Errorf("workers=%d restored %d candidates, want %d", workers, restored, keep)
				}
				// The resumed journal must converge to the complete log.
				if n := journalLines(t, dir) - 1; n != total {
					t.Errorf("workers=%d resumed journal has %d entries, want %d", workers, n, total)
				}
			}
		})
	}
}

// TestSweepResumeCompletedJournal: resuming a finished journal evaluates
// nothing and reproduces the report wholesale from the log.
func TestSweepResumeCompletedJournal(t *testing.T) {
	dir := t.TempDir()
	em := boot(t, testnet.Fig2(), 42)
	cold, err := Run(em, testnet.Fig2(), Options{K: 1, Kinds: []Kind{KindBGP}, Workers: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewMetricsOnly()
	em2 := boot(t, testnet.Fig2(), 42)
	got, err := Run(em2, testnet.Fig2(), Options{K: 1, Kinds: []Kind{KindBGP}, Workers: 1, JournalDir: dir, Resume: true, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, got) != reportJSON(t, cold) {
		t.Errorf("fully restored report differs from cold run")
	}
	if evals := o.Metrics().Counter("sweep_replica_candidates_total", "replica", "0").Value(); evals != 0 {
		t.Errorf("fully journaled resume still evaluated %d candidates", evals)
	}
	if restored := o.Metrics().Counter("sweep_candidates_restored_total").Value(); restored != uint64(cold.Candidates) {
		t.Errorf("restored %d, want all %d", restored, cold.Candidates)
	}
}

// TestSweepResumeInputMismatch: a journal recorded under different sweep
// inputs must be refused, not silently mixed in.
func TestSweepResumeInputMismatch(t *testing.T) {
	dir := t.TempDir()
	em := boot(t, testnet.Fig2(), 42)
	if _, err := Run(em, testnet.Fig2(), Options{K: 1, Kinds: []Kind{KindBGP}, Workers: 1, JournalDir: dir}); err != nil {
		t.Fatal(err)
	}
	em2 := boot(t, testnet.Fig2(), 42)
	_, err := Run(em2, testnet.Fig2(), Options{K: 1, Kinds: []Kind{KindLink}, Workers: 1, JournalDir: dir, Resume: true})
	if err == nil {
		t.Fatal("resume accepted a journal from a different kinds set")
	}
	if !strings.Contains(err.Error(), "different sweep input") {
		t.Fatalf("error %q does not name the input mismatch", err)
	}
	// Resume without a journal directory is a usage error.
	em3 := boot(t, testnet.Fig2(), 42)
	if _, err := Run(em3, testnet.Fig2(), Options{K: 1, Workers: 1, Resume: true}); err == nil {
		t.Fatal("Resume without JournalDir accepted")
	}
}

// panicOnce arms testHookEvaluate to panic the first n attempts of one
// candidate description, counting attempts under a lock (lanes race here).
func panicOnce(target string, times int) (hook func(int, Candidate), attempts *int) {
	var mu sync.Mutex
	count := 0
	attempts = &count
	hook = func(lane int, c Candidate) {
		if c.Describe() != target {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		count++
		if count <= times {
			panic(fmt.Sprintf("injected fault #%d", count))
		}
	}
	return hook, attempts
}

// TestSweepLanePanicRecovery: an injected lane panic must be healed by lane
// rebuild + candidate requeue, losing and duplicating nothing — the report
// stays byte-identical to an uninjected run.
func TestSweepLanePanicRecovery(t *testing.T) {
	kinds := []Kind{KindBGP}
	em := boot(t, testnet.Fig2(), 42)
	ref, err := Run(em, testnet.Fig2(), Options{K: 1, Kinds: kinds, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		hook, attempts := panicOnce("bgp r2", 1)
		testHookEvaluate = hook
		o := obs.NewMetricsOnly()
		em := boot(t, testnet.Fig2(), 42)
		got, err := Run(em, testnet.Fig2(), Options{K: 1, Kinds: kinds, Workers: workers, Replicas: workers, Obs: o})
		testHookEvaluate = nil
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if *attempts < 2 {
			t.Fatalf("workers=%d: candidate attempted %d times, want the panic plus a retry", workers, *attempts)
		}
		if reportJSON(t, got) != reportJSON(t, ref) {
			t.Errorf("workers=%d report after panic recovery differs:\n%s\n%s", workers, reportJSON(t, ref), reportJSON(t, got))
		}
		if got.Poisoned != 0 {
			t.Errorf("workers=%d poisoned %d candidates on a recoverable panic", workers, got.Poisoned)
		}
		if retried := o.Metrics().Counter("sweep_candidates_retried_total").Value(); retried != 1 {
			t.Errorf("workers=%d sweep_candidates_retried_total = %d, want 1", workers, retried)
		}
		restarts := int64(0)
		for _, m := range o.Metrics().Snapshot() {
			if m.Name == "sweep_lane_restarts_total" {
				restarts += m.Value
			}
		}
		if restarts == 0 {
			t.Errorf("workers=%d no lane restart recorded", workers)
		}
	}
}

// TestSweepPoisonedCandidate: a candidate that panics past the retry budget
// is quarantined in the report (empty verdict, POISONED status) while every
// other candidate keeps its normal verdict.
func TestSweepPoisonedCandidate(t *testing.T) {
	hook, _ := panicOnce("bgp r2", 1<<30)
	testHookEvaluate = hook
	defer func() { testHookEvaluate = nil }()
	o := obs.NewMetricsOnly()
	dir := t.TempDir()
	em := boot(t, testnet.Fig2(), 42)
	got, err := Run(em, testnet.Fig2(), Options{K: 1, Kinds: []Kind{KindBGP}, Workers: 1, RetryBudget: 2, Obs: o, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got.Poisoned != 1 {
		t.Fatalf("Poisoned = %d, want 1", got.Poisoned)
	}
	var row *Row
	for i := range got.Rows {
		if got.Rows[i].Failure == "bgp r2" {
			row = &got.Rows[i]
		}
	}
	if row == nil || row.Poisoned == "" {
		t.Fatalf("bgp r2 row not poisoned: %+v", row)
	}
	if row.FlowsLost != 0 || row.FlowsChanged != 0 || len(row.Diffs) != 0 {
		t.Errorf("poisoned row carries a verdict: %+v", row)
	}
	if !strings.Contains(got.Table(0), "POISONED") {
		t.Errorf("table does not flag the poisoned candidate:\n%s", got.Table(0))
	}
	if poisoned := o.Metrics().Counter("sweep_candidates_poisoned_total").Value(); poisoned != 1 {
		t.Errorf("sweep_candidates_poisoned_total = %d, want 1", poisoned)
	}
	if len(got.Rows) != got.Candidates {
		t.Errorf("rows %d != candidates %d: poisoning lost rows", len(got.Rows), got.Candidates)
	}

	// The poison verdict is durable: a resume restores it without
	// re-attempting the candidate.
	testHookEvaluate = nil
	em2 := boot(t, testnet.Fig2(), 42)
	resumed, err := Run(em2, testnet.Fig2(), Options{K: 1, Kinds: []Kind{KindBGP}, Workers: 1, RetryBudget: 2, JournalDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, resumed) != reportJSON(t, got) {
		t.Errorf("resumed poisoned report differs from original")
	}
}
