package sweep

import (
	"context"
	"strings"
	"testing"
	"time"

	"mfv/internal/kne"
	"mfv/internal/sim"
	"mfv/internal/snapchain"
	"mfv/internal/testnet"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

func boot(t *testing.T, topo *topology.Topology, seed int64) *kne.Emulator {
	t.Helper()
	em, err := kne.New(kne.Config{Topology: topo, Sim: sim.New(seed)})
	if err != nil {
		t.Fatal(err)
	}
	if err := em.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	return em
}

// sweepFig2 boots a fresh Fig. 2 emulation and sweeps it. Fresh emulators per
// run keep the virtual timelines identical, so any table divergence is the
// sweep engine's fault.
func sweepFig2(t *testing.T, opts Options) *Report {
	t.Helper()
	em := boot(t, testnet.Fig2(), 42)
	rep, err := Run(em, testnet.Fig2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseKinds(t *testing.T) {
	got, err := ParseKinds("bgp, link,bgp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != KindBGP || got[1] != KindLink {
		t.Errorf("ParseKinds = %v, want [bgp link]", got)
	}
	if _, err := ParseKinds("link,pod"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseKinds(","); err == nil {
		t.Error("empty kind list accepted")
	}
}

// TestEnumerate: canonical order (links, nodes, bgp; each sorted), no
// duplicates, and already-failed elements excluded — a downed link is not a
// candidate, nor is a failed router or any element of it.
func TestEnumerate(t *testing.T) {
	topo := testnet.Fig2()
	em := boot(t, topo, 1)
	all := Enumerate(em, topo, nil)
	if len(all) == 0 {
		t.Fatal("empty enumeration on healthy Fig. 2")
	}
	again := Enumerate(em, topo, nil)
	if len(again) != len(all) {
		t.Fatalf("enumeration not deterministic: %d vs %d", len(all), len(again))
	}
	for i := range all {
		if all[i] != again[i] {
			t.Fatalf("enumeration not deterministic at %d: %v vs %v", i, all[i], again[i])
		}
	}
	rank := map[Kind]int{KindLink: 0, KindNode: 1, KindBGP: 2}
	seen := map[string]bool{}
	for i, el := range all {
		if seen[el.Describe()] {
			t.Errorf("duplicate element %s", el.Describe())
		}
		seen[el.Describe()] = true
		if i > 0 {
			prev := all[i-1]
			if rank[prev.Kind] > rank[el.Kind] ||
				(prev.Kind == el.Kind && prev.Describe() >= el.Describe()) {
				t.Errorf("out of order: %s before %s", prev.Describe(), el.Describe())
			}
		}
	}
	// Fig. 2's P routers run IS-IS only; they must not appear as BGP elements.
	for _, el := range all {
		if el.Kind == KindBGP {
			r, _ := em.Router(el.Node)
			if r.BGP == nil {
				t.Errorf("BGP element for BGP-less router %s", el.Node)
			}
		}
	}

	if err := em.SetLinkDown(topology.Endpoint{Node: "r2", Interface: "Ethernet2"}); err != nil {
		t.Fatal(err)
	}
	if err := em.FailRouter("r5"); err != nil {
		t.Fatal(err)
	}
	filtered := Enumerate(em, topo, nil)
	for _, el := range filtered {
		if el.Kind == KindLink && el.Link == "r2:Ethernet2" {
			t.Error("downed link still enumerated")
		}
		if el.Node == "r5" {
			t.Errorf("failed router still enumerated as %s", el.Describe())
		}
	}
	if len(filtered) >= len(all) {
		t.Errorf("enumeration did not shrink after failures: %d -> %d", len(all), len(filtered))
	}
}

// TestSweepPrunedMatchesBruteK1 is the core determinism acceptance check at
// Fig. 2 scale: the pruned sweep's ranked table is byte-identical to the
// brute-force sweep's, at any worker count.
func TestSweepPrunedMatchesBruteK1(t *testing.T) {
	ref := sweepFig2(t, Options{K: 1, Brute: true, Workers: 1})
	refTable := ref.Table(0)
	if ref.Verified != ref.Candidates {
		t.Errorf("brute verified %d of %d candidates", ref.Verified, ref.Candidates)
	}
	if ref.PrunedFingerprint != 0 || ref.PrunedIndependent != 0 {
		t.Errorf("brute run pruned: %+v", ref)
	}
	for _, w := range []int{1, 2, 8} {
		rep := sweepFig2(t, Options{K: 1, Workers: w})
		if got := rep.Table(0); got != refTable {
			t.Errorf("workers=%d: pruned table differs from brute:\n%s\n%s", w, refTable, got)
		}
		if rep.Candidates != ref.Candidates {
			t.Errorf("workers=%d: %d candidates, brute saw %d", w, rep.Candidates, ref.Candidates)
		}
		if rep.Verified > ref.Verified {
			t.Errorf("workers=%d: pruned verified %d > brute %d", w, rep.Verified, ref.Verified)
		}
	}
}

// TestSweepK2PruneSound: at k=2 the independence prune predicts verdicts for
// skipped pairs; every per-failure (lost, changed) verdict must match what
// the brute-force sweep measures by actually applying the pair. Fig. 2 is too
// small to have harmless singles (every element is a violation), so this runs
// on the redundant 3x3 WAN grid, where most link cuts reroute nothing.
func TestSweepK2PruneSound(t *testing.T) {
	if testing.Short() {
		t.Skip("full k=2 brute sweep")
	}
	kinds := []Kind{KindLink, KindBGP}
	run := func(brute bool) *Report {
		topo := testnet.WAN(9, false)
		em, err := kne.New(kne.Config{Topology: topo, Sim: sim.New(42)})
		if err != nil {
			t.Fatal(err)
		}
		if err := em.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := em.RunUntilConverged(30*time.Second, time.Hour); err != nil {
			t.Fatal(err)
		}
		rep, err := Run(em, topo, Options{K: 2, Kinds: kinds, Brute: brute})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	brute := run(true)
	pruned := run(false)
	if pruned.Candidates != brute.Candidates {
		t.Fatalf("candidate spaces differ: %d vs %d", pruned.Candidates, brute.Candidates)
	}
	if pruned.PrunedIndependent == 0 {
		t.Error("no pairs independent-pruned on the redundant grid")
	}
	if pruned.Applied >= brute.Applied {
		t.Errorf("prunes applied %d candidates, brute %d — nothing skipped", pruned.Applied, brute.Applied)
	}
	want := map[string][2]int{}
	for _, row := range brute.Rows {
		want[row.Failure] = [2]int{row.FlowsLost, row.FlowsChanged}
	}
	for _, row := range pruned.Rows {
		w, ok := want[row.Failure]
		if !ok {
			t.Errorf("pruned-only candidate %q", row.Failure)
			continue
		}
		if row.FlowsLost != w[0] || row.FlowsChanged != w[1] {
			t.Errorf("%s: pruned verdict (%d lost, %d changed) != brute (%d, %d) [pruned=%q]",
				row.Failure, row.FlowsLost, row.FlowsChanged, w[0], w[1], row.Pruned)
		}
	}
}

// TestSweepRestores: after a full sweep (which failed and rebuilt every
// router), the network must deliver every flow exactly as before the sweep,
// and no candidate may report restore residue.
func TestSweepRestores(t *testing.T) {
	topo := testnet.Fig2()
	em := boot(t, topo, 42)
	baseNet, err := verify.NewNetwork(topo, em.AFTs())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(em, topo, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Residue != 0 {
		t.Errorf("%d candidate(s) left restore residue", rep.Residue)
	}
	afterNet, err := verify.NewNetwork(topo, em.AFTs())
	if err != nil {
		t.Fatal(err)
	}
	if diffs := verify.Differential(baseNet, afterNet); len(diffs) != 0 {
		t.Errorf("post-sweep reachability differs from baseline: %v", diffs)
	}
	// Fig. 2 has failures that lose flows (single-homed AS partitions), so
	// the sweep must rank at least one violation first.
	if rep.Violations == 0 {
		t.Error("Fig. 2 k=1 sweep found no violations")
	}
	if len(rep.Rows) > 0 && rep.Rows[0].FlowsLost == 0 {
		t.Error("worst row ranked first has no lost flows despite violations")
	}
	for i, row := range rep.Rows {
		if row.Rank != i+1 {
			t.Errorf("row %d has rank %d", i, row.Rank)
		}
	}
}

// TestSweepInterrupted: an expired context stops the sweep between
// candidates with a partial, Interrupted report.
func TestSweepInterrupted(t *testing.T) {
	em := boot(t, testnet.Fig2(), 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(em, testnet.Fig2(), Options{K: 1, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Error("canceled context did not mark the report interrupted")
	}
	if rep.Applied != 0 {
		t.Errorf("canceled context still applied %d candidates", rep.Applied)
	}
	if !strings.Contains(rep.String(), "interrupted") {
		t.Error("report text does not mention the interruption")
	}
}

func TestSweepRejectsBadK(t *testing.T) {
	em := boot(t, testnet.Fig2(), 1)
	for _, k := range []int{0, 3, -1} {
		if _, err := Run(em, testnet.Fig2(), Options{K: k}); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

func TestIndependentlyHarmless(t *testing.T) {
	harmless := func(dirty ...string) *outcome { return &outcome{dirty: dirty, verdict: &verdict{}} }
	cases := []struct {
		name string
		a, b *outcome
		want bool
	}{
		{"disjoint-harmless", harmless("r1"), harmless("r2"), true},
		{"empty-dirty", harmless(), harmless(), true},
		{"overlapping", harmless("r1", "r2"), harmless("r2"), false},
		{"lossy-member", &outcome{verdict: &verdict{Changed: 1}}, harmless("r2"), false},
		{"unverified-member", &outcome{}, harmless("r2"), false},
		{"residue-member", &outcome{residue: 1, verdict: &verdict{}}, harmless("r2"), false},
		{"straggler-member", &outcome{stragglers: []string{"r9"}, verdict: &verdict{}}, harmless("r2"), false},
		{"quarantined-member", &outcome{quarantined: []string{"r9"}, verdict: &verdict{}}, harmless("r2"), false},
		{"missing-member", nil, harmless("r2"), false},
		{"pruned-member", &outcome{pruned: "independent", verdict: &verdict{}}, harmless("r2"), false},
		{"poisoned-member", &outcome{poisoned: "panic: x", verdict: &verdict{}}, harmless("r2"), false},
	}
	for _, c := range cases {
		if got := independentlyHarmless(c.a, c.b); got != c.want {
			t.Errorf("%s: independentlyHarmless = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSweepWANPruningInvariance is the acceptance check at WAN scale: on the
// 30-node multi-vendor WAN the pruned k=1 sweep must produce a byte-identical
// ranked table to brute force — while verifying strictly fewer candidates.
func TestSweepWANPruningInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN-scale double sweep")
	}
	run := func(brute bool, workers int) *Report {
		topo := testnet.WAN(30, true)
		em, err := kne.New(kne.Config{Topology: topo, Sim: sim.New(42)})
		if err != nil {
			t.Fatal(err)
		}
		if err := em.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := em.RunUntilConverged(30*time.Second, time.Hour); err != nil {
			t.Fatal(err)
		}
		rep, err := Run(em, topo, Options{K: 1, Brute: brute, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	brute := run(true, 1)
	pruned := run(false, 4)
	if got, want := pruned.Table(0), brute.Table(0); got != want {
		t.Errorf("pruned WAN table differs from brute:\n%s\n%s", want, got)
	}
	if pruned.Verified >= brute.Verified {
		t.Errorf("pruning verified %d candidates, brute %d — want strictly fewer", pruned.Verified, brute.Verified)
	}
	t.Logf("WAN30 k=1: %d candidates, brute verified %d, pruned verified %d (%.0f%% saved)",
		brute.Candidates, brute.Verified, pruned.Verified,
		100*float64(brute.Verified-pruned.Verified)/float64(brute.Verified))
}

// TestSnapchainShared: the sweep engine and the chaos engine must agree on
// the baseline they chain from — a snapchain snapshot taken before the sweep
// equals one taken after it (the sweep healed), stamps included except where
// rebuilt routers legitimately bumped their epochs.
func TestSnapchainShared(t *testing.T) {
	topo := testnet.Fig2()
	em := boot(t, topo, 7)
	chain := snapchain.New(em, topo, nil)
	before, err := chain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(em, topo, Options{K: 1, Kinds: []Kind{KindBGP}}); err != nil {
		t.Fatal(err)
	}
	after, err := chain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := chain.Differential(before, after); len(diffs) != 0 {
		t.Errorf("BGP-only sweep left %d outcome diffs: %v", len(diffs), diffs)
	}
}
