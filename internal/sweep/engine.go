package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mfv/internal/kne"
	"mfv/internal/obs"
	"mfv/internal/snapchain"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// Enumerate lists the failure elements of the requested kinds present in the
// healthy emulation, in canonical order (links, then nodes, then BGP; each
// group sorted by description). Elements that are already failed — downed
// links, down or quarantined routers — are excluded: the sweep explores
// failures of the healthy baseline, and "failing" them again would roll back
// into a state the baseline never had.
func Enumerate(em *kne.Emulator, topo *topology.Topology, kinds []Kind) []Element {
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	unusable := func(name string) bool {
		if em.RouterDown(name) {
			return true
		}
		_, q := em.QuarantineReason(name)
		return q
	}
	var out []Element
	appendSorted := func(group []Element) {
		sort.Slice(group, func(i, j int) bool { return group[i].Describe() < group[j].Describe() })
		out = append(out, group...)
	}
	if want[KindLink] {
		var group []Element
		for _, l := range topo.Links {
			if em.IsLinkDown(l.A) {
				continue
			}
			group = append(group, Element{Kind: KindLink, Link: l.A.String()})
		}
		appendSorted(group)
	}
	if want[KindNode] {
		var group []Element
		for _, r := range em.Routers() {
			if unusable(r.Name) {
				continue
			}
			group = append(group, Element{Kind: KindNode, Node: r.Name})
		}
		appendSorted(group)
	}
	if want[KindBGP] {
		var group []Element
		for _, r := range em.Routers() {
			if r.BGP == nil || unusable(r.Name) {
				continue
			}
			group = append(group, Element{Kind: KindBGP, Node: r.Name})
		}
		appendSorted(group)
	}
	return out
}

// outcome carries one candidate's measurements through the two phases:
// the sequential apply/settle/rollback loop fills everything except diffs,
// which the parallel verification phase computes (or copies from the
// fingerprint representative).
type outcome struct {
	cand        Candidate
	base        snapchain.Snap // healthy baseline this candidate was measured against
	impact      snapchain.Snap // settled degraded state
	dirty       []string       // routers whose FIB the failure touched
	fp          string         // equivalence-group fingerprint
	reconv      time.Duration
	stragglers  []string
	quarantined []string
	residue     int      // flows still diverging after rollback
	pruned      string   // "", "fingerprint", "independent"
	dupOf       *outcome // representative whose diffs this candidate shares
	diffs       []verify.Diff
}

type engine struct {
	em      *kne.Emulator
	topo    *topology.Topology
	obs     *obs.Observer
	chain   *snapchain.Chain
	opts    Options
	hold    time.Duration
	timeout time.Duration

	// baseEpoch tags fingerprint equivalence groups with the identity of
	// the baseline they were measured against. Rollback normally restores
	// the exact pre-candidate forwarding state, but a rebuilt router may
	// legitimately drift in content (a re-signaled TE LSP draws a fresh
	// label) even when every flow outcome is intact. Any content drift
	// bumps the epoch, so candidates measured against different baseline
	// content can never share a verdict — that keeps fingerprint sharing
	// sound without forbidding drift.
	baseEpoch int
	// repByFP maps fingerprint -> the verified representative outcome.
	repByFP map[string]*outcome

	verified int
}

// Run sweeps the emulation. The emulator must be started and converged; the
// sweep advances virtual time itself and leaves the network restored (any
// candidate that failed to heal is reported via Residue).
func Run(em *kne.Emulator, topo *topology.Topology, opts Options) (*Report, error) {
	if opts.K < 1 || opts.K > 2 {
		return nil, fmt.Errorf("sweep: k=%d unsupported (want 1 or 2)", opts.K)
	}
	if len(opts.Kinds) == 0 {
		opts.Kinds = AllKinds()
	}
	e := &engine{
		em:      em,
		topo:    topo,
		obs:     opts.Obs,
		chain:   snapchain.New(em, topo, opts.Obs),
		opts:    opts,
		hold:    opts.Hold,
		timeout: opts.Timeout,
		repByFP: map[string]*outcome{},
	}
	if e.hold == 0 {
		// Same floor as the chaos engine: the quiet window must outlast
		// the BGP HoldTime (90s) or silent link cuts settle "harmlessly"
		// before their withdrawals begin.
		e.hold = 2 * time.Minute
	}
	if e.timeout == 0 {
		e.timeout = 30 * time.Minute
	}
	e.chain.SetWorkers(opts.Workers)

	wallStart := time.Now()
	span := e.obs.StartPhase("sweep")
	defer span.End()

	if _, err := e.chain.Snapshot(); err != nil {
		return nil, err
	}
	elems := Enumerate(em, topo, opts.Kinds)
	rep := &Report{
		K:         opts.K,
		Kinds:     opts.Kinds,
		Routers:   len(em.Routers()),
		StartedAt: em.Sim().Now(),
	}

	// Phase 1a: apply every k=1 candidate sequentially on the shared
	// virtual clock, chaining rollbacks.
	var all []*outcome
	for _, el := range elems {
		if e.interrupted() {
			rep.Interrupted = true
			break
		}
		o, err := e.evaluate(Candidate{Elements: []Element{el}})
		if err != nil {
			return nil, err
		}
		all = append(all, o)
	}
	// Phase 2a: verify the k=1 representatives in parallel. This must
	// precede pair enumeration — the independence prune needs to know
	// which singles were harmless.
	e.verifyAll(all)

	if opts.K >= 2 && !rep.Interrupted {
		single := map[string]*outcome{}
		for _, o := range all {
			single[o.cand.Elements[0].Describe()] = o
		}
		var pairs []*outcome
		for i := 0; i < len(elems); i++ {
			for j := i + 1; j < len(elems); j++ {
				if sameTarget(elems[i], elems[j]) {
					continue
				}
				if e.interrupted() {
					rep.Interrupted = true
					break
				}
				cand := Candidate{Elements: []Element{elems[i], elems[j]}}
				a, b := single[elems[i].Describe()], single[elems[j].Describe()]
				if !opts.Brute && independentlyHarmless(a, b) {
					pairs = append(pairs, &outcome{cand: cand, pruned: "independent"})
					continue
				}
				o, err := e.evaluate(cand)
				if err != nil {
					return nil, err
				}
				pairs = append(pairs, o)
			}
			if rep.Interrupted {
				break
			}
		}
		e.verifyAll(pairs)
		all = append(all, pairs...)
	}

	rep.FinishedAt = em.Sim().Now()
	rep.Wall = time.Since(wallStart)
	e.assemble(rep, all)
	return rep, nil
}

// sameTarget excludes degenerate pairs: failing a node and holding the same
// node's BGP is just the node failure.
func sameTarget(a, b Element) bool {
	return a.Node != "" && a.Node == b.Node
}

// independentlyHarmless is the k=2 independence prune: when both members
// were individually harmless in every respect (no outcome changes, clean
// rollback, no stragglers or quarantine) and their blast radii are disjoint,
// the pair is predicted harmless without being applied. This is a
// partial-order-reduction heuristic, not a proof — -brute re-verifies it.
func independentlyHarmless(a, b *outcome) bool {
	harmless := func(o *outcome) bool {
		return o != nil && o.pruned != "independent" &&
			len(o.diffs) == 0 && o.residue == 0 &&
			len(o.stragglers) == 0 && len(o.quarantined) == 0
	}
	if !harmless(a) || !harmless(b) {
		return false
	}
	seen := map[string]bool{}
	for _, d := range a.dirty {
		seen[d] = true
	}
	for _, d := range b.dirty {
		if seen[d] {
			return false
		}
	}
	return true
}

func (e *engine) interrupted() bool {
	return e.opts.Ctx != nil && e.opts.Ctx.Err() != nil
}

// evaluate applies one candidate, settles, snapshots the degraded state,
// rolls the failure back, and verifies the rollback healed. The verification
// of the impact itself is deferred to the parallel phase.
func (e *engine) evaluate(c Candidate) (*outcome, error) {
	clk := e.em.Sim()
	o := &outcome{cand: c, base: *e.chain.Last()}
	injected := clk.Now()
	applied := 0
	var err error
	for _, el := range c.Elements {
		if err = e.apply(el); err != nil {
			break
		}
		applied++
	}
	if err != nil {
		for i := applied - 1; i >= 0; i-- {
			if rbErr := e.rollback(c.Elements[i]); rbErr != nil {
				return nil, fmt.Errorf("sweep: %s failed (%v); rollback also failed: %w", c.Describe(), err, rbErr)
			}
		}
		return nil, fmt.Errorf("sweep: applying %s: %w", c.Describe(), err)
	}

	conv := e.em.Settle(e.hold, e.timeout)
	if o.impact, err = e.chain.Snapshot(); err != nil {
		return nil, err
	}
	o.dirty = snapchain.DiffStamps(o.base.Stamps, o.impact.Stamps)
	o.reconv = conv.ConvergedAt - injected
	if o.reconv < 0 {
		o.reconv = 0
	}
	o.stragglers = conv.Stragglers
	o.quarantined = conv.Quarantined
	o.fp = e.fingerprint(o)
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvSweepCandidate, Detail: c.Describe(), Value: int64(len(o.dirty))})
	}

	// Roll back in reverse order and verify the heal: the next candidate's
	// baseline is whatever state the rollback actually reached.
	for i := len(c.Elements) - 1; i >= 0; i-- {
		if err := e.rollback(c.Elements[i]); err != nil {
			return nil, fmt.Errorf("sweep: rolling back %s: %w", c.Describe(), err)
		}
	}
	e.em.Settle(e.hold, e.timeout)
	restored, err := e.chain.Snapshot()
	if err != nil {
		return nil, err
	}
	// Content check: any router whose restored AFT is not byte-identical
	// to its baseline content invalidates fingerprint sharing across this
	// boundary (see baseEpoch). Outcome check: flows still diverging are
	// real residue, reported per row.
	drifted := false
	for _, name := range snapchain.DiffStamps(o.base.Stamps, restored.Stamps) {
		ba, ra := o.base.AFTs[name], restored.AFTs[name]
		if ba == nil || ra == nil || ba.Fingerprint() != ra.Fingerprint() {
			drifted = true
			break
		}
	}
	if drifted {
		e.baseEpoch++
		o.residue = len(e.chain.Differential(o.base, restored))
	}
	return o, nil
}

func (e *engine) apply(el Element) error {
	switch el.Kind {
	case KindLink:
		ep, err := topology.ParseEndpoint(el.Link)
		if err != nil {
			return err
		}
		return e.em.SetLinkDown(ep)
	case KindNode:
		return e.em.FailRouter(el.Node)
	case KindBGP:
		return e.em.HoldBGP(el.Node)
	}
	return fmt.Errorf("sweep: unknown element kind %q", el.Kind)
}

func (e *engine) rollback(el Element) error {
	switch el.Kind {
	case KindLink:
		ep, err := topology.ParseEndpoint(el.Link)
		if err != nil {
			return err
		}
		return e.em.SetLinkUp(ep)
	case KindNode:
		if err := e.em.RestoreRouter(el.Node); err != nil {
			return err
		}
		return e.em.AwaitRunning(el.Node, e.timeout)
	case KindBGP:
		return e.em.ReleaseBGP(el.Node)
	}
	return fmt.Errorf("sweep: unknown element kind %q", el.Kind)
}

// fingerprint keys the candidate's equivalence group: the baseline epoch
// plus, for every dirty router, its baseline and impact forwarding
// fingerprints. Two candidates with equal fingerprints perturb identical
// forwarding state identically against identical baselines, so their
// differentials are equal and one verification serves both.
func (e *engine) fingerprint(o *outcome) string {
	h := sha256.New()
	fmt.Fprintf(h, "epoch=%d;", e.baseEpoch)
	for _, name := range o.dirty {
		var bf, impf string
		if a := o.base.AFTs[name]; a != nil {
			bf = a.Fingerprint()
		}
		if a := o.impact.AFTs[name]; a != nil {
			impf = a.Fingerprint()
		}
		fmt.Fprintf(h, "%s:%s>%s;", name, bf, impf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// verifyAll runs the deferred differentials: fingerprint-duplicate
// candidates adopt their representative's verdict, the representatives shard
// across the worker pool. Each result lands in its candidate's own slot, so
// worker count and scheduling order never affect output.
func (e *engine) verifyAll(pend []*outcome) {
	var reps []*outcome
	for _, o := range pend {
		if o.pruned == "independent" {
			continue
		}
		if !e.opts.Brute {
			if r, ok := e.repByFP[o.fp]; ok {
				o.pruned = "fingerprint"
				o.dupOf = r
				continue
			}
			e.repByFP[o.fp] = o
		}
		reps = append(reps, o)
	}
	g := e.obs.Metrics().Gauge("sweep_inflight")
	runParallel(len(reps), e.opts.Workers, func(i int) {
		g.Add(1)
		defer g.Add(-1)
		o := reps[i]
		// One worker per candidate; the per-query pool stays at 1 so the
		// sharding happens across candidates, not within them.
		o.diffs = verify.Queries{Workers: 1}.DeltaDifferential(o.base.Net, o.impact.Net, o.dirty)
	})
	for _, o := range pend {
		if o.dupOf != nil {
			o.diffs = o.dupOf.diffs
		}
	}
	e.verified += len(reps)
}

// runParallel evaluates fn(i) for i in [0, n) across a bounded pool. Indexed
// slots keep results deterministic.
func runParallel(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// assemble ranks the outcomes worst-first into the report and emits the
// final metrics and verdict events in rank order.
func (e *engine) assemble(rep *Report, all []*outcome) {
	m := e.obs.Metrics()
	rep.Candidates = len(all)
	rep.Verified = e.verified
	for _, o := range all {
		label := "none"
		switch o.pruned {
		case "fingerprint":
			label = "fingerprint"
			rep.PrunedFingerprint++
			rep.Applied++
		case "independent":
			label = "independent"
			rep.PrunedIndependent++
		default:
			rep.Applied++
		}
		m.Counter("sweep_candidates_total", "pruned", label).Inc()
		if o.pruned != "independent" {
			m.Histogram("sweep_reconverge_ns", "k", fmt.Sprint(len(o.cand.Elements))).Observe(int64(o.reconv))
		}
		row := Row{
			Failure:       o.cand.Describe(),
			K:             len(o.cand.Elements),
			FlowsLost:     len(snapchain.LostFlows(o.diffs)),
			FlowsChanged:  len(o.diffs),
			DirtyRouters:  len(o.dirty),
			ReconvergedIn: o.reconv,
			Stragglers:    o.stragglers,
			Quarantined:   o.quarantined,
			Residue:       o.residue,
			Pruned:        o.pruned,
		}
		for i, d := range o.diffs {
			if i == maxRowDiffs {
				row.Diffs = append(row.Diffs, fmt.Sprintf("… (+%d more)", len(o.diffs)-maxRowDiffs))
				break
			}
			row.Diffs = append(row.Diffs, d.String())
		}
		if row.FlowsLost > 0 {
			rep.Violations++
			m.Counter("sweep_violations_total").Inc()
		}
		if row.Residue > 0 {
			rep.Residue++
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.FlowsLost != b.FlowsLost {
			return a.FlowsLost > b.FlowsLost
		}
		if a.FlowsChanged != b.FlowsChanged {
			return a.FlowsChanged > b.FlowsChanged
		}
		if a.DirtyRouters != b.DirtyRouters {
			return a.DirtyRouters > b.DirtyRouters
		}
		if a.ReconvergedIn != b.ReconvergedIn {
			return a.ReconvergedIn > b.ReconvergedIn
		}
		return a.Failure < b.Failure
	})
	for i := range rep.Rows {
		rep.Rows[i].Rank = i + 1
		if e.obs.Enabled() {
			e.obs.Emit(obs.Event{Type: obs.EvSweepVerdict, Detail: rep.Rows[i].Failure, Value: int64(rep.Rows[i].FlowsLost)})
		}
	}
}
