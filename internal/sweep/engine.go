package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mfv/internal/kne"
	"mfv/internal/obs"
	"mfv/internal/snapchain"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// alignQuantum is the candidate-start alignment grid: the least common
// multiple of every aligned periodic timer in the stack (session probe 5s,
// ISIS hello 10s, BGP keepalive 30s, RSVP refresh 30s and 3m). Each candidate
// is injected at a multiple of this quantum, so the phase of every periodic
// timer relative to the injection instant is a constant — together with the
// per-candidate RNG reseed, a candidate's settle timeline becomes a pure
// function of (baseline content, candidate), independent of which emulator
// lane evaluates it or what was evaluated before it. That is what makes the
// replica-partitioned sweep byte-identical to the sequential one.
const alignQuantum = 3 * time.Minute

// replicaBytesPerRouter is the memory-budget model for one replica lane:
// a full emulation (control-plane state, RIBs, rendered AFTs, pod bookkeeping)
// retains roughly a quarter megabyte per router at WAN scale. The pool is
// capped at MemoryBudget / (routers × replicaBytesPerRouter) lanes.
const replicaBytesPerRouter = 256 << 10

// defaultMemoryBudget bounds the replica pool at 8 GiB unless overridden.
const defaultMemoryBudget int64 = 8 << 30

// Enumerate lists the failure elements of the requested kinds present in the
// healthy emulation, in canonical order (links, then nodes, then BGP; each
// group sorted by description). Elements that are already failed — downed
// links, down or quarantined routers — are excluded: the sweep explores
// failures of the healthy baseline, and "failing" them again would roll back
// into a state the baseline never had.
func Enumerate(em *kne.Emulator, topo *topology.Topology, kinds []Kind) []Element {
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	unusable := func(name string) bool {
		if em.RouterDown(name) {
			return true
		}
		_, q := em.QuarantineReason(name)
		return q
	}
	var out []Element
	appendSorted := func(group []Element) {
		sort.Slice(group, func(i, j int) bool { return group[i].Describe() < group[j].Describe() })
		out = append(out, group...)
	}
	if want[KindLink] {
		var group []Element
		for _, l := range topo.Links {
			if em.IsLinkDown(l.A) {
				continue
			}
			group = append(group, Element{Kind: KindLink, Link: l.A.String()})
		}
		appendSorted(group)
	}
	if want[KindNode] {
		var group []Element
		for _, r := range em.Routers() {
			if unusable(r.Name) {
				continue
			}
			group = append(group, Element{Kind: KindNode, Node: r.Name})
		}
		appendSorted(group)
	}
	if want[KindBGP] {
		var group []Element
		for _, r := range em.Routers() {
			if r.BGP == nil || unusable(r.Name) {
				continue
			}
			group = append(group, Element{Kind: KindBGP, Node: r.Name})
		}
		appendSorted(group)
	}
	return out
}

// outcome carries one candidate's measurements through the two phases:
// the apply/settle/rollback lanes fill everything except diffs, which the
// parallel verification phase computes (or copies from the fingerprint
// representative).
type outcome struct {
	cand        Candidate
	base        snapchain.Snap // healthy baseline this candidate was measured against
	impact      snapchain.Snap // settled degraded state
	dirty       []string       // routers whose FIB the failure touched
	fp          string         // equivalence-group fingerprint
	reconv      time.Duration
	stragglers  []string
	quarantined []string
	residue     int      // flows still diverging after rollback
	pruned      string   // "", "fingerprint", "independent"
	dupOf       *outcome // representative whose diffs this candidate shares
	diffs       []verify.Diff
}

// replica is one lane of the emulation pool: an emulator (the primary, or a
// deterministic replay of it), its own snapshot chain, and its own
// baseline-epoch counter. Lanes never share mutable state; candidates are
// partitioned across lanes by canonical index and merged back by slot.
type replica struct {
	id    int
	em    *kne.Emulator
	chain *snapchain.Chain
	// epoch counts baseline content drifts observed on THIS lane. While it
	// is zero the lane's baseline is the canonical converged state shared by
	// every lane, so fingerprint verdicts may be shared across lanes; once a
	// lane drifts, its fingerprints are tagged with the lane identity and
	// never shared across lanes (see engine.fingerprint).
	epoch int
	// label is the precomputed metric label for this lane.
	label string
	// candidates counts evaluations on this lane (reported via the
	// sweep_replica_candidates_total{replica=} counter).
	candidates atomic.Int64
}

type engine struct {
	em      *kne.Emulator
	topo    *topology.Topology
	obs     *obs.Observer
	chain   *snapchain.Chain
	opts    Options
	hold    time.Duration
	timeout time.Duration

	// pool holds the emulation lanes; pool[0] is always the primary.
	pool []*replica
	// failed flags a lane error so other lanes stop picking up new work.
	failed atomic.Bool

	// repByFP maps fingerprint -> the verified representative outcome.
	repByFP map[string]*outcome

	verified int
}

// Run sweeps the emulation. The emulator must be started and converged; the
// sweep advances virtual time itself and leaves the network restored (any
// candidate that failed to heal is reported via Residue).
func Run(em *kne.Emulator, topo *topology.Topology, opts Options) (*Report, error) {
	if opts.K < 1 || opts.K > 2 {
		return nil, fmt.Errorf("sweep: k=%d unsupported (want 1 or 2)", opts.K)
	}
	if len(opts.Kinds) == 0 {
		opts.Kinds = AllKinds()
	}
	e := &engine{
		em:      em,
		topo:    topo,
		obs:     opts.Obs,
		chain:   snapchain.New(em, topo, opts.Obs),
		opts:    opts,
		hold:    opts.Hold,
		timeout: opts.Timeout,
		repByFP: map[string]*outcome{},
	}
	if e.hold == 0 {
		// Same floor as the chaos engine: the quiet window must outlast
		// the BGP HoldTime (90s) or silent link cuts settle "harmlessly"
		// before their withdrawals begin.
		e.hold = 2 * time.Minute
	}
	if e.timeout == 0 {
		e.timeout = 30 * time.Minute
	}
	e.chain.SetWorkers(opts.Workers)

	wallStart := time.Now()
	span := e.obs.StartPhase("sweep")
	defer span.End()

	if _, err := e.chain.Snapshot(); err != nil {
		return nil, err
	}
	elems := Enumerate(em, topo, opts.Kinds)
	rep := &Report{
		K:         opts.K,
		Kinds:     opts.Kinds,
		Routers:   len(em.Routers()),
		StartedAt: em.Sim().Now(),
	}

	e.buildPool(len(elems))
	defer e.stopPool()
	rep.Replicas = len(e.pool)
	e.obs.Metrics().Gauge("sweep_replicas").Set(int64(len(e.pool)))

	// Phase 1a: apply every k=1 candidate across the replica pool, each lane
	// chaining rollbacks on its own emulator.
	cands := make([]Candidate, len(elems))
	for i, el := range elems {
		cands[i] = Candidate{Elements: []Element{el}}
	}
	k1 := make([]*outcome, len(cands))
	interrupted, err := e.runPhase(cands, k1)
	if err != nil {
		return nil, err
	}
	rep.Interrupted = interrupted
	all := e.merge(k1)

	// Phase 2a (barrier): verify the k=1 representatives in parallel. This
	// must complete before pair enumeration — the independence prune needs
	// to know which singles were harmless.
	e.verifyAll(all)

	if opts.K >= 2 && !rep.Interrupted {
		single := map[string]*outcome{}
		for _, o := range all {
			single[o.cand.Elements[0].Describe()] = o
		}
		// Enumerate pairs in canonical order, deciding prunes up front from
		// the merged k=1 verdicts; surviving pairs partition across lanes.
		var pairCands []Candidate
		var pairOut []*outcome
		for i := 0; i < len(elems); i++ {
			for j := i + 1; j < len(elems); j++ {
				if sameTarget(elems[i], elems[j]) {
					continue
				}
				cand := Candidate{Elements: []Element{elems[i], elems[j]}}
				a, b := single[elems[i].Describe()], single[elems[j].Describe()]
				if !opts.Brute && independentlyHarmless(a, b) {
					pairCands = append(pairCands, cand)
					pairOut = append(pairOut, &outcome{cand: cand, pruned: "independent"})
					continue
				}
				pairCands = append(pairCands, cand)
				pairOut = append(pairOut, nil)
			}
		}
		interrupted, err := e.runPhase(pairCands, pairOut)
		if err != nil {
			return nil, err
		}
		rep.Interrupted = rep.Interrupted || interrupted
		pairs := e.merge(pairOut)
		e.verifyAll(pairs)
		all = append(all, pairs...)
	}

	rep.FinishedAt = em.Sim().Now()
	rep.Wall = time.Since(wallStart)
	e.assemble(rep, all)
	return rep, nil
}

// buildPool sizes and constructs the emulation lanes. The desired size is
// Replicas (or Workers when unset), capped by the candidate count and the
// memory budget. Replica construction failure is never fatal: the sweep
// degrades to the single-lane sequential path, which is always correct.
func (e *engine) buildPool(nCands int) {
	want := e.opts.Replicas
	if want == 0 {
		want = e.opts.Workers
	}
	if want <= 0 {
		want = runtime.GOMAXPROCS(0)
	}
	if want > nCands {
		want = nCands
	}
	budget := e.opts.MemoryBudget
	if budget <= 0 {
		budget = defaultMemoryBudget
	}
	if per := int64(len(e.em.Routers())) * replicaBytesPerRouter; per > 0 {
		if max := int(budget / per); want > max {
			want = max
		}
	}
	if want < 1 {
		want = 1
	}
	e.pool = []*replica{{id: 0, em: e.em, chain: e.chain, label: "0"}}
	if want == 1 {
		return
	}
	build := e.opts.BuildReplicas
	if build == nil {
		build = e.defaultBuildReplicas
	}
	ems, err := build(want - 1)
	if err != nil || len(ems) == 0 {
		e.obs.Metrics().Counter("sweep_replica_fallback_total").Inc()
		return
	}
	for _, rem := range ems {
		chain := e.chain.Fork(rem)
		if _, err := chain.Snapshot(); err != nil {
			e.obs.Metrics().Counter("sweep_replica_fallback_total").Inc()
			for _, x := range ems {
				x.Stop()
			}
			e.pool = e.pool[:1]
			return
		}
		id := len(e.pool)
		e.pool = append(e.pool, &replica{id: id, em: rem, chain: chain, label: fmt.Sprint(id)})
	}
}

// defaultBuildReplicas is the generic pool factory: deterministic replay via
// kne.Emulator.Replica on a local worker pool, each replica gated on
// StateFingerprint equality with the primary. core.BuildReplicas replaces it
// on the CLI path, where it shares the sharded-boot machinery.
func (e *engine) defaultBuildReplicas(n int) ([]*kne.Emulator, error) {
	want := e.em.StateFingerprint()
	reps := make([]*kne.Emulator, n)
	errs := make([]error, n)
	runParallel(n, e.opts.Workers, func(i int) {
		rep, err := e.em.Replica(e.hold, e.timeout)
		if err != nil {
			errs[i] = err
			return
		}
		if got := rep.StateFingerprint(); got != want {
			rep.Stop()
			errs[i] = fmt.Errorf("sweep: replica %d replay diverged from the primary", i)
			return
		}
		reps[i] = rep
	})
	for _, err := range errs {
		if err != nil {
			for _, r := range reps {
				if r != nil {
					r.Stop()
				}
			}
			return nil, err
		}
	}
	return reps, nil
}

// stopPool releases the replay lanes (the primary is caller-owned).
func (e *engine) stopPool() {
	for _, r := range e.pool[1:] {
		r.em.Stop()
	}
}

// runPhase evaluates the candidates whose slot in out is still nil, across
// the replica pool: lane r owns every pending index i with i ≡ r (mod lanes),
// evaluates its indices in increasing order chained on its own emulator, and
// writes each outcome into the candidate's canonical slot. The slot merge
// makes scheduling invisible: results are positionally identical to the
// sequential engine's. Interruption (Ctx) stops every lane at its next
// candidate boundary and leaves the remaining slots nil.
func (e *engine) runPhase(cands []Candidate, out []*outcome) (bool, error) {
	var todo []int
	for i := range cands {
		if out[i] == nil {
			todo = append(todo, i)
		}
	}
	if len(e.pool) == 1 {
		for _, i := range todo {
			if e.interrupted() {
				return true, nil
			}
			o, err := e.evaluate(e.pool[0], cands[i])
			if err != nil {
				return false, err
			}
			out[i] = o
		}
		// Emit in canonical order (matching the merged slots), not apply order.
		e.emitCandidates(out, todo)
		return false, nil
	}
	lanes := len(e.pool)
	errs := make([]error, lanes)
	ints := make([]bool, lanes)
	var wg sync.WaitGroup
	for r := 0; r < lanes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lane := e.pool[r]
			for j := r; j < len(todo); j += lanes {
				if e.interrupted() {
					ints[r] = true
					return
				}
				if e.failed.Load() {
					return
				}
				o, err := e.evaluate(lane, cands[todo[j]])
				if err != nil {
					errs[r] = err
					e.failed.Store(true)
					return
				}
				out[todo[j]] = o
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	e.emitCandidates(out, todo)
	for _, b := range ints {
		if b {
			return true, nil
		}
	}
	return false, nil
}

// emitCandidates publishes the per-candidate progress events for the just-
// evaluated slots in canonical candidate order. Emission is deferred to the
// phase barrier so the trace stays deterministic at any lane count.
func (e *engine) emitCandidates(out []*outcome, todo []int) {
	if !e.obs.Enabled() {
		return
	}
	for _, i := range todo {
		if o := out[i]; o != nil {
			e.obs.Emit(obs.Event{Type: obs.EvSweepCandidate, Detail: o.cand.Describe(), Value: int64(len(o.dirty))})
		}
	}
}

// merge compacts a phase's outcome slots into the canonical-order outcome
// list, dropping the slots an interruption left unevaluated.
func (e *engine) merge(out []*outcome) []*outcome {
	merged := make([]*outcome, 0, len(out))
	for _, o := range out {
		if o != nil {
			merged = append(merged, o)
		}
	}
	return merged
}

// sameTarget excludes degenerate pairs: failing a node and holding the same
// node's BGP is just the node failure.
func sameTarget(a, b Element) bool {
	return a.Node != "" && a.Node == b.Node
}

// independentlyHarmless is the k=2 independence prune: when both members
// were individually harmless in every respect (no outcome changes, clean
// rollback, no stragglers or quarantine) and their blast radii are disjoint,
// the pair is predicted harmless without being applied. This is a
// partial-order-reduction heuristic, not a proof — -brute re-verifies it.
func independentlyHarmless(a, b *outcome) bool {
	harmless := func(o *outcome) bool {
		return o != nil && o.pruned != "independent" &&
			len(o.diffs) == 0 && o.residue == 0 &&
			len(o.stragglers) == 0 && len(o.quarantined) == 0
	}
	if !harmless(a) || !harmless(b) {
		return false
	}
	seen := map[string]bool{}
	for _, d := range a.dirty {
		seen[d] = true
	}
	for _, d := range b.dirty {
		if seen[d] {
			return false
		}
	}
	return true
}

func (e *engine) interrupted() bool {
	return e.opts.Ctx != nil && e.opts.Ctx.Err() != nil
}

// candSeed derives the per-candidate RNG seed: a pure function of the
// candidate identity, so every lane (and the sequential engine) draws the
// same jitter stream while evaluating it.
func candSeed(c Candidate) int64 {
	h := fnv.New64a()
	for _, el := range c.Elements {
		io.WriteString(h, el.Describe())
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}

// evaluate applies one candidate on the given lane, settles, snapshots the
// degraded state, rolls the failure back, and verifies the rollback healed.
// The verification of the impact itself is deferred to the parallel phase.
//
// Before injection the lane's clock is advanced to the alignment grid and
// its RNG reseeded from the candidate identity, which (together with the
// globally aligned protocol timers) makes everything measured here a pure
// function of (baseline, candidate) — independent of lane and history.
func (e *engine) evaluate(r *replica, c Candidate) (*outcome, error) {
	r.em.AlignClock(alignQuantum)
	clk := r.em.Sim()
	clk.Reseed(candSeed(c))
	r.candidates.Add(1)
	e.obs.Metrics().Counter("sweep_replica_candidates_total", "replica", r.label).Inc()

	o := &outcome{cand: c, base: *r.chain.Last()}
	injected := clk.Now()
	applied := 0
	var err error
	for _, el := range c.Elements {
		if err = e.apply(r, el); err != nil {
			break
		}
		applied++
	}
	if err != nil {
		for i := applied - 1; i >= 0; i-- {
			if rbErr := e.rollback(r, c.Elements[i]); rbErr != nil {
				return nil, fmt.Errorf("sweep: %s failed (%v); rollback also failed: %w", c.Describe(), err, rbErr)
			}
		}
		return nil, fmt.Errorf("sweep: applying %s: %w", c.Describe(), err)
	}

	conv := r.em.Settle(e.hold, e.timeout)
	if o.impact, err = r.chain.Snapshot(); err != nil {
		return nil, err
	}
	o.dirty = snapchain.DiffStamps(o.base.Stamps, o.impact.Stamps)
	o.reconv = conv.ConvergedAt - injected
	if o.reconv < 0 {
		o.reconv = 0
	}
	o.stragglers = conv.Stragglers
	o.quarantined = conv.Quarantined
	o.fp = e.fingerprint(r, o)

	// Roll back in reverse order and verify the heal: the lane's next
	// candidate baseline is whatever state the rollback actually reached.
	for i := len(c.Elements) - 1; i >= 0; i-- {
		if err := e.rollback(r, c.Elements[i]); err != nil {
			return nil, fmt.Errorf("sweep: rolling back %s: %w", c.Describe(), err)
		}
	}
	r.em.Settle(e.hold, e.timeout)
	restored, err := r.chain.Snapshot()
	if err != nil {
		return nil, err
	}
	// Content check: any router whose restored AFT is not byte-identical
	// to its baseline content invalidates fingerprint sharing across this
	// boundary (see replica.epoch). Outcome check: flows still diverging are
	// real residue, reported per row.
	drifted := false
	for _, name := range snapchain.DiffStamps(o.base.Stamps, restored.Stamps) {
		ba, ra := o.base.AFTs[name], restored.AFTs[name]
		if ba == nil || ra == nil || ba.Fingerprint() != ra.Fingerprint() {
			drifted = true
			break
		}
	}
	if drifted {
		r.epoch++
		o.residue = len(r.chain.Differential(o.base, restored))
	}
	return o, nil
}

func (e *engine) apply(r *replica, el Element) error {
	switch el.Kind {
	case KindLink:
		ep, err := topology.ParseEndpoint(el.Link)
		if err != nil {
			return err
		}
		return r.em.SetLinkDown(ep)
	case KindNode:
		return r.em.FailRouter(el.Node)
	case KindBGP:
		return r.em.HoldBGP(el.Node)
	}
	return fmt.Errorf("sweep: unknown element kind %q", el.Kind)
}

func (e *engine) rollback(r *replica, el Element) error {
	switch el.Kind {
	case KindLink:
		ep, err := topology.ParseEndpoint(el.Link)
		if err != nil {
			return err
		}
		return r.em.SetLinkUp(ep)
	case KindNode:
		if err := r.em.RestoreRouter(el.Node); err != nil {
			return err
		}
		return r.em.AwaitRunning(el.Node, e.timeout)
	case KindBGP:
		return r.em.ReleaseBGP(el.Node)
	}
	return fmt.Errorf("sweep: unknown element kind %q", el.Kind)
}

// fingerprint keys the candidate's equivalence group: the baseline identity
// plus, for every dirty router, its baseline and impact forwarding
// fingerprints. Two candidates with equal fingerprints perturb identical
// forwarding state identically against identical baselines, so their
// differentials are equal and one verification serves both. While a lane's
// epoch is zero its baseline is the canonical converged content every lane
// shares ("epoch=0"); after a drift the group key is tagged with the lane
// identity, so candidates measured against drifted baselines never share
// verdicts across lanes.
func (e *engine) fingerprint(r *replica, o *outcome) string {
	h := sha256.New()
	if r.epoch == 0 {
		fmt.Fprintf(h, "epoch=0;")
	} else {
		fmt.Fprintf(h, "epoch=r%d.%d;", r.id, r.epoch)
	}
	for _, name := range o.dirty {
		var bf, impf string
		if a := o.base.AFTs[name]; a != nil {
			bf = a.Fingerprint()
		}
		if a := o.impact.AFTs[name]; a != nil {
			impf = a.Fingerprint()
		}
		fmt.Fprintf(h, "%s:%s>%s;", name, bf, impf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// verifyAll runs the deferred differentials: fingerprint-duplicate
// candidates adopt their representative's verdict, the representatives shard
// across the worker pool. Each result lands in its candidate's own slot, so
// worker count and scheduling order never affect output.
func (e *engine) verifyAll(pend []*outcome) {
	var reps []*outcome
	for _, o := range pend {
		if o.pruned == "independent" {
			continue
		}
		if !e.opts.Brute {
			if r, ok := e.repByFP[o.fp]; ok {
				o.pruned = "fingerprint"
				o.dupOf = r
				continue
			}
			e.repByFP[o.fp] = o
		}
		reps = append(reps, o)
	}
	g := e.obs.Metrics().Gauge("sweep_inflight")
	runParallel(len(reps), e.opts.Workers, func(i int) {
		g.Add(1)
		defer g.Add(-1)
		o := reps[i]
		// One worker per candidate; the per-query pool stays at 1 so the
		// sharding happens across candidates, not within them.
		o.diffs = verify.Queries{Workers: 1}.DeltaDifferential(o.base.Net, o.impact.Net, o.dirty)
	})
	for _, o := range pend {
		if o.dupOf != nil {
			o.diffs = o.dupOf.diffs
		}
	}
	e.verified += len(reps)
}

// runParallel evaluates fn(i) for i in [0, n) across a bounded pool. Indexed
// slots keep results deterministic.
func runParallel(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// assemble ranks the outcomes worst-first into the report and emits the
// final metrics and verdict events in rank order.
func (e *engine) assemble(rep *Report, all []*outcome) {
	m := e.obs.Metrics()
	rep.Candidates = len(all)
	rep.Verified = e.verified
	for _, o := range all {
		label := "none"
		switch o.pruned {
		case "fingerprint":
			label = "fingerprint"
			rep.PrunedFingerprint++
			rep.Applied++
		case "independent":
			label = "independent"
			rep.PrunedIndependent++
		default:
			rep.Applied++
		}
		m.Counter("sweep_candidates_total", "pruned", label).Inc()
		if o.pruned != "independent" {
			m.Histogram("sweep_reconverge_ns", "k", fmt.Sprint(len(o.cand.Elements))).Observe(int64(o.reconv))
		}
		row := Row{
			Failure:       o.cand.Describe(),
			K:             len(o.cand.Elements),
			FlowsLost:     len(snapchain.LostFlows(o.diffs)),
			FlowsChanged:  len(o.diffs),
			DirtyRouters:  len(o.dirty),
			ReconvergedIn: o.reconv,
			Stragglers:    o.stragglers,
			Quarantined:   o.quarantined,
			Residue:       o.residue,
			Pruned:        o.pruned,
		}
		for i, d := range o.diffs {
			if i == maxRowDiffs {
				row.Diffs = append(row.Diffs, fmt.Sprintf("… (+%d more)", len(o.diffs)-maxRowDiffs))
				break
			}
			row.Diffs = append(row.Diffs, d.String())
		}
		if row.FlowsLost > 0 {
			rep.Violations++
			m.Counter("sweep_violations_total").Inc()
		}
		if row.Residue > 0 {
			rep.Residue++
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.FlowsLost != b.FlowsLost {
			return a.FlowsLost > b.FlowsLost
		}
		if a.FlowsChanged != b.FlowsChanged {
			return a.FlowsChanged > b.FlowsChanged
		}
		if a.DirtyRouters != b.DirtyRouters {
			return a.DirtyRouters > b.DirtyRouters
		}
		if a.ReconvergedIn != b.ReconvergedIn {
			return a.ReconvergedIn > b.ReconvergedIn
		}
		return a.Failure < b.Failure
	})
	for i := range rep.Rows {
		rep.Rows[i].Rank = i + 1
		if e.obs.Enabled() {
			e.obs.Emit(obs.Event{Type: obs.EvSweepVerdict, Detail: rep.Rows[i].Failure, Value: int64(rep.Rows[i].FlowsLost)})
		}
	}
}
