package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mfv/internal/kne"
	"mfv/internal/obs"
	"mfv/internal/snapchain"
	"mfv/internal/store"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// alignQuantum is the candidate-start alignment grid: the least common
// multiple of every aligned periodic timer in the stack (session probe 5s,
// ISIS hello 10s, BGP keepalive 30s, RSVP refresh 30s and 3m). Each candidate
// is injected at a multiple of this quantum, so the phase of every periodic
// timer relative to the injection instant is a constant — together with the
// per-candidate RNG reseed, a candidate's settle timeline becomes a pure
// function of (baseline content, candidate), independent of which emulator
// lane evaluates it or what was evaluated before it. That is what makes the
// replica-partitioned sweep byte-identical to the sequential one.
const alignQuantum = 3 * time.Minute

// replicaBytesPerRouter is the memory-budget model for one replica lane:
// a full emulation (control-plane state, RIBs, rendered AFTs, pod bookkeeping)
// retains roughly a quarter megabyte per router at WAN scale. The pool is
// capped at MemoryBudget / (routers × replicaBytesPerRouter) lanes.
const replicaBytesPerRouter = 256 << 10

// defaultMemoryBudget bounds the replica pool at 8 GiB unless overridden.
const defaultMemoryBudget int64 = 8 << 30

// journalChunkSize is the durability granularity of a journaled sweep: each
// phase is processed in contiguous canonical-order chunks of this many
// candidates, with verification and an fsynced journal flush at each chunk
// barrier. A crash loses at most one in-flight chunk. Chunks are canonical
// prefixes, so the fingerprint-dedup walk (representative assignment) is
// provably identical to the unjournaled single-barrier walk.
const journalChunkSize = 32

// defaultRetryBudget caps re-attempts of a candidate whose evaluation
// panicked before the candidate is poisoned.
const defaultRetryBudget = 3

// Enumerate lists the failure elements of the requested kinds present in the
// healthy emulation, in canonical order (links, then nodes, then BGP; each
// group sorted by description). Elements that are already failed — downed
// links, down or quarantined routers — are excluded: the sweep explores
// failures of the healthy baseline, and "failing" them again would roll back
// into a state the baseline never had.
func Enumerate(em *kne.Emulator, topo *topology.Topology, kinds []Kind) []Element {
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	unusable := func(name string) bool {
		if em.RouterDown(name) {
			return true
		}
		_, q := em.QuarantineReason(name)
		return q
	}
	var out []Element
	appendSorted := func(group []Element) {
		sort.Slice(group, func(i, j int) bool { return group[i].Describe() < group[j].Describe() })
		out = append(out, group...)
	}
	if want[KindLink] {
		var group []Element
		for _, l := range topo.Links {
			if em.IsLinkDown(l.A) {
				continue
			}
			group = append(group, Element{Kind: KindLink, Link: l.A.String()})
		}
		appendSorted(group)
	}
	if want[KindNode] {
		var group []Element
		for _, r := range em.Routers() {
			if unusable(r.Name) {
				continue
			}
			group = append(group, Element{Kind: KindNode, Node: r.Name})
		}
		appendSorted(group)
	}
	if want[KindBGP] {
		var group []Element
		for _, r := range em.Routers() {
			if r.BGP == nil || unusable(r.Name) {
				continue
			}
			group = append(group, Element{Kind: KindBGP, Node: r.Name})
		}
		appendSorted(group)
	}
	return out
}

// verdict is a candidate's verification result in self-contained, journalable
// form: the counts the report ranks on plus the rendered (capped) diff
// sample. Live verify.Diff values need the in-memory baseline and impact
// networks; a verdict does not, which is what lets a resumed sweep restore
// rows without re-running emulation or verification.
type verdict struct {
	Lost    int
	Changed int
	Diffs   []string
}

// outcome carries one candidate's measurements through the two phases:
// the apply/settle/rollback lanes fill everything except verdict, which the
// parallel verification phase computes (or copies from the fingerprint
// representative), or journal restore supplies whole.
type outcome struct {
	cand        Candidate
	base        snapchain.Snap // healthy baseline this candidate was measured against
	impact      snapchain.Snap // settled degraded state
	dirty       []string       // routers whose FIB the failure touched
	fp          string         // equivalence-group fingerprint
	reconv      time.Duration
	stragglers  []string
	quarantined []string
	residue     int      // flows still diverging after rollback
	pruned      string   // "", "fingerprint", "independent"
	dupOf       *outcome // representative whose verdict this candidate shares
	verdict     *verdict
	// restored marks an outcome rebuilt from a journal entry (not evaluated
	// or verified in this process).
	restored bool
	// wasRep marks an outcome that ran (or, restored, had run) its own
	// verification; restored reps count toward Report.Verified.
	wasRep bool
	// poisoned, when non-empty, records the final panic message of a
	// candidate that exhausted the retry budget.
	poisoned string
}

// replica is one lane of the emulation pool: an emulator (the primary, or a
// deterministic replay of it), its own snapshot chain, and its own
// baseline-epoch counter. Lanes never share mutable state; candidates are
// partitioned across lanes by canonical index and merged back by slot.
type replica struct {
	id    int
	em    *kne.Emulator
	chain *snapchain.Chain
	// epoch counts baseline content drifts observed on THIS lane. While it
	// is zero the lane's baseline is the canonical converged state shared by
	// every lane, so fingerprint verdicts may be shared across lanes; once a
	// lane drifts, its fingerprints are tagged with the lane identity and
	// never shared across lanes (see engine.fingerprint).
	epoch int
	// label is the precomputed metric label for this lane.
	label string
	// candidates counts evaluations on this lane (reported via the
	// sweep_replica_candidates_total{replica=} counter).
	candidates atomic.Int64
	// owned marks emulators the engine booted (replicas, rebuilt lanes):
	// the engine stops them on teardown. The caller-owned primary is never
	// stopped.
	owned bool
	// broken condemns the lane for the rest of the current round ("panic" or
	// "drift"); healPool rebuilds or retires condemned lanes between rounds.
	// Written only by the lane's own goroutine during a round and by
	// healPool between rounds.
	broken string
	// dead removes the lane from service permanently (a panicked lane whose
	// rebuild failed — its emulator may hold half-applied faults).
	dead bool
}

type engine struct {
	em      *kne.Emulator
	topo    *topology.Topology
	obs     *obs.Observer
	chain   *snapchain.Chain
	opts    Options
	hold    time.Duration
	timeout time.Duration

	// pool holds the emulation lanes; pool[0] starts as the primary (it may
	// be replaced by an owned rebuild if the primary lane fails mid-sweep).
	pool []*replica
	// failed flags a fatal lane error so other lanes stop picking up work.
	failed atomic.Bool
	// baseFP is the primary's state fingerprint at the canonical converged
	// baseline, captured before any candidate runs: the gate every rebuilt
	// lane must match.
	baseFP string
	// mu guards the retry/poison bookkeeping lanes touch concurrently.
	mu sync.Mutex

	// repByFP maps fingerprint -> the verified representative outcome.
	repByFP map[string]*outcome

	verified int

	// journal, when non-nil, receives every verdict at chunk barriers;
	// resumed holds the journal entries of a resumed run, keyed by canonical
	// candidate description.
	journal *store.Journal
	resumed map[string]store.JournalEntry
}

// Run sweeps the emulation. The emulator must be started and converged; the
// sweep advances virtual time itself and leaves the network restored (any
// candidate that failed to heal is reported via Residue).
func Run(em *kne.Emulator, topo *topology.Topology, opts Options) (*Report, error) {
	if opts.K < 1 || opts.K > 2 {
		return nil, fmt.Errorf("sweep: k=%d unsupported (want 1 or 2)", opts.K)
	}
	if len(opts.Kinds) == 0 {
		opts.Kinds = AllKinds()
	}
	e := &engine{
		em:      em,
		topo:    topo,
		obs:     opts.Obs,
		chain:   snapchain.New(em, topo, opts.Obs),
		opts:    opts,
		hold:    opts.Hold,
		timeout: opts.Timeout,
		repByFP: map[string]*outcome{},
	}
	if e.hold == 0 {
		// Same floor as the chaos engine: the quiet window must outlast
		// the BGP HoldTime (90s) or silent link cuts settle "harmlessly"
		// before their withdrawals begin.
		e.hold = 2 * time.Minute
	}
	if e.timeout == 0 {
		e.timeout = 30 * time.Minute
	}
	e.chain.SetWorkers(opts.Workers)

	wallStart := time.Now()
	span := e.obs.StartPhase("sweep")
	defer span.End()

	if _, err := e.chain.Snapshot(); err != nil {
		return nil, err
	}
	e.baseFP = em.StateFingerprint()
	elems := Enumerate(em, topo, opts.Kinds)
	rep := &Report{
		K:         opts.K,
		Kinds:     opts.Kinds,
		Routers:   len(em.Routers()),
		StartedAt: em.Sim().Now(),
	}

	if err := e.openJournal(elems); err != nil {
		return nil, err
	}
	if e.journal != nil {
		defer e.journal.Close()
	}

	e.buildPool(len(elems))
	defer e.stopPool()
	rep.Replicas = len(e.pool)
	e.obs.Metrics().Gauge("sweep_replicas").Set(int64(len(e.pool)))

	// Phase 1: apply every k=1 candidate across the replica pool, each lane
	// chaining rollbacks on its own emulator. Verification (and journaling)
	// happens inside the phase at chunk barriers; by the time the phase
	// returns, every evaluated k=1 candidate carries its verdict — which the
	// pair-enumeration independence prune consumes.
	cands := make([]Candidate, len(elems))
	for i, el := range elems {
		cands[i] = Candidate{Elements: []Element{el}}
	}
	k1 := make([]*outcome, len(cands))
	e.restoreSlots(cands, k1)
	interrupted, err := e.runPhase(cands, k1, 0)
	if err != nil {
		return nil, err
	}
	rep.Interrupted = interrupted
	all := e.merge(k1)

	if opts.K >= 2 && !rep.Interrupted {
		single := map[string]*outcome{}
		for _, o := range all {
			single[o.cand.Elements[0].Describe()] = o
		}
		// Enumerate pairs in canonical order, deciding prunes up front from
		// the merged k=1 verdicts; surviving pairs partition across lanes.
		var pairCands []Candidate
		var pairOut []*outcome
		for i := 0; i < len(elems); i++ {
			for j := i + 1; j < len(elems); j++ {
				if sameTarget(elems[i], elems[j]) {
					continue
				}
				cand := Candidate{Elements: []Element{elems[i], elems[j]}}
				a, b := single[elems[i].Describe()], single[elems[j].Describe()]
				if !opts.Brute && independentlyHarmless(a, b) {
					pairCands = append(pairCands, cand)
					pairOut = append(pairOut, &outcome{cand: cand, pruned: "independent"})
					continue
				}
				pairCands = append(pairCands, cand)
				pairOut = append(pairOut, nil)
			}
		}
		e.restoreSlots(pairCands, pairOut)
		interrupted, err := e.runPhase(pairCands, pairOut, len(cands))
		if err != nil {
			return nil, err
		}
		rep.Interrupted = rep.Interrupted || interrupted
		all = append(all, e.merge(pairOut)...)
	}

	rep.FinishedAt = em.Sim().Now()
	rep.Wall = time.Since(wallStart)
	e.assemble(rep, all)
	return rep, nil
}

// buildPool sizes and constructs the emulation lanes. The desired size is
// Replicas (or Workers when unset), capped by the candidate count and the
// memory budget. Replica construction failure is never fatal: the sweep
// degrades to the single-lane sequential path, which is always correct.
func (e *engine) buildPool(nCands int) {
	want := e.opts.Replicas
	if want == 0 {
		want = e.opts.Workers
	}
	if want <= 0 {
		want = runtime.GOMAXPROCS(0)
	}
	if want > nCands {
		want = nCands
	}
	budget := e.opts.MemoryBudget
	if budget <= 0 {
		budget = defaultMemoryBudget
	}
	if per := int64(len(e.em.Routers())) * replicaBytesPerRouter; per > 0 {
		if max := int(budget / per); want > max {
			want = max
		}
	}
	if want < 1 {
		want = 1
	}
	e.pool = []*replica{{id: 0, em: e.em, chain: e.chain, label: "0"}}
	if want == 1 {
		return
	}
	build := e.opts.BuildReplicas
	if build == nil {
		build = e.defaultBuildReplicas
	}
	ems, err := build(want - 1)
	if err != nil || len(ems) == 0 {
		e.obs.Metrics().Counter("sweep_replica_fallback_total").Inc()
		return
	}
	for _, rem := range ems {
		chain := e.chain.Fork(rem)
		if _, err := chain.Snapshot(); err != nil {
			e.obs.Metrics().Counter("sweep_replica_fallback_total").Inc()
			for _, x := range ems {
				x.Stop()
			}
			e.pool = e.pool[:1]
			return
		}
		id := len(e.pool)
		e.pool = append(e.pool, &replica{id: id, em: rem, chain: chain, label: fmt.Sprint(id), owned: true})
	}
}

// defaultBuildReplicas is the generic pool factory: deterministic replay via
// kne.Emulator.Replica on a local worker pool, each replica gated on the
// canonical converged baseline fingerprint (captured before any candidate
// ran, so mid-sweep rebuilds cannot inherit primary drift).
// core.BuildReplicas replaces it on the CLI path, where it shares the
// sharded-boot machinery.
func (e *engine) defaultBuildReplicas(n int) ([]*kne.Emulator, error) {
	want := e.baseFP
	if want == "" {
		want = e.em.StateFingerprint()
	}
	reps := make([]*kne.Emulator, n)
	errs := make([]error, n)
	runParallel(n, e.opts.Workers, func(i int) {
		rep, err := e.em.Replica(e.hold, e.timeout)
		if err != nil {
			errs[i] = err
			return
		}
		if got := rep.StateFingerprint(); got != want {
			rep.Stop()
			errs[i] = fmt.Errorf("sweep: replica %d replay diverged from the primary", i)
			return
		}
		reps[i] = rep
	})
	for _, err := range errs {
		if err != nil {
			for _, r := range reps {
				if r != nil {
					r.Stop()
				}
			}
			return nil, err
		}
	}
	return reps, nil
}

// stopPool releases every engine-owned lane emulator: the original replay
// lanes plus any rebuilt replacements (including a rebuilt primary lane).
// The caller-owned primary and already-retired dead lanes are left alone.
func (e *engine) stopPool() {
	for _, r := range e.pool {
		if r.owned && !r.dead {
			r.em.Stop()
		}
	}
}

// runPhase drives one phase (the k=1 singles or the k=2 pairs) through
// evaluation, verification, and journaling. Unjournaled sweeps process the
// whole phase as one chunk (the original single-barrier walk); journaled
// sweeps chunk it so verdicts become durable incrementally. idxBase is the
// phase's offset into the global canonical candidate index, recorded in
// journal entries. Chunks are contiguous canonical-order slices processed in
// order, so the fingerprint-dedup walk across chunk boundaries is identical
// to the single-barrier walk.
func (e *engine) runPhase(cands []Candidate, out []*outcome, idxBase int) (bool, error) {
	if len(cands) == 0 {
		return false, nil
	}
	chunk := len(cands)
	if e.journal != nil && journalChunkSize < chunk {
		chunk = journalChunkSize
	}
	interrupted := false
	for lo := 0; lo < len(cands) && !interrupted; lo += chunk {
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		var err error
		interrupted, err = e.runChunk(cands[lo:hi], out[lo:hi])
		if err != nil {
			return false, err
		}
		// Verify and journal whatever the chunk produced — on interruption
		// that is a partial chunk, and journaling it means the resumed run
		// starts exactly where this one stopped.
		e.verifyChunk(out[lo:hi])
		if err := e.journalChunk(idxBase+lo, out[lo:hi]); err != nil {
			return false, err
		}
	}
	return interrupted, nil
}

// runChunk evaluates the candidates whose slot in out is still nil, across
// the live replica lanes: lane r owns every pending index i with i ≡ r (mod
// lanes), evaluates its indices in increasing order chained on its own
// emulator, and writes each outcome into the candidate's canonical slot. The
// slot merge makes scheduling invisible: results are positionally identical
// to the sequential engine's. Interruption (Ctx) stops every lane at its next
// candidate boundary and leaves the remaining slots nil.
//
// Each round runs under lane supervision: a panic inside evaluation condemns
// the lane (recover boundary in evaluateGuarded), a baseline drift condemns
// it after its outcome is recorded, and healPool rebuilds condemned lanes
// from the converged baseline between rounds. Candidates a panicked lane left
// unfilled are requeued onto the healed pool under a per-candidate retry
// budget; a candidate that keeps panicking is poisoned — quarantined in the
// report with an empty verdict — instead of killing the sweep.
func (e *engine) runChunk(cands []Candidate, out []*outcome) (bool, error) {
	var todo []int
	for i := range cands {
		if out[i] == nil {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return false, nil
	}
	budget := e.opts.RetryBudget
	if budget <= 0 {
		budget = defaultRetryBudget
	}
	attempts := make(map[int]int)
	// Emit in canonical order (matching the merged slots), not apply order,
	// whether the chunk completes or is interrupted mid-round.
	defer e.emitCandidates(out, todo)
	for {
		var pending []int
		for _, i := range todo {
			if out[i] == nil {
				pending = append(pending, i)
			}
		}
		if len(pending) == 0 {
			return false, nil
		}
		if e.interrupted() {
			return true, nil
		}
		lanes := e.liveLanes()
		if len(lanes) == 0 {
			return false, fmt.Errorf("sweep: no usable emulation lanes remain (every lane failed and none could be rebuilt)")
		}
		interrupted, err := e.round(cands, out, pending, lanes, attempts, budget)
		if err != nil {
			return false, err
		}
		e.healPool()
		if interrupted {
			return true, nil
		}
	}
}

// round makes one supervised pass: the pending chunk indices stride across
// the given lanes. A lane stops early when condemned (panic or drift); its
// remaining indices stay nil and the next round requeues them.
func (e *engine) round(cands []Candidate, out []*outcome, pending []int, lanes []*replica, attempts map[int]int, budget int) (bool, error) {
	n := len(lanes)
	errs := make([]error, n)
	ints := make([]bool, n)
	var wg sync.WaitGroup
	for li := 0; li < n; li++ {
		wg.Add(1)
		go func(li int) {
			defer wg.Done()
			lane := lanes[li]
			for j := li; j < len(pending); j += n {
				if e.interrupted() {
					ints[li] = true
					return
				}
				if e.failed.Load() {
					return
				}
				idx := pending[j]
				epochBefore := lane.epoch
				o, err := e.evaluateGuarded(lane, cands[idx])
				if err != nil {
					if pe, ok := err.(panicError); ok {
						lane.broken = "panic"
						e.recordPanic(cands[idx], idx, out, attempts, budget, pe)
						return
					}
					if e.interrupted() {
						// Cancellation surfaced mid-candidate as an evaluation
						// error. The candidate's slot stays nil (it was never
						// verified), which is exactly the interrupted-report
						// contract: journal what finished, flag the rest.
						ints[li] = true
						return
					}
					errs[li] = err
					e.failed.Store(true)
					return
				}
				out[idx] = o
				if lane.epoch > epochBefore {
					// The rollback left drifted content. The outcome stands —
					// it was measured against the pre-drift baseline — but
					// the lane needs a rebuild before taking more work.
					lane.broken = "drift"
					return
				}
			}
		}(li)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	for _, b := range ints {
		if b {
			return true, nil
		}
	}
	return false, nil
}

// recordPanic charges one panic against a candidate's retry budget; an
// exhausted budget poisons the candidate (an empty-verdict quarantined row)
// so the sweep completes without it.
func (e *engine) recordPanic(c Candidate, idx int, out []*outcome, attempts map[int]int, budget int, pe panicError) {
	e.mu.Lock()
	defer e.mu.Unlock()
	attempts[idx]++
	m := e.obs.Metrics()
	if attempts[idx] >= budget {
		out[idx] = &outcome{cand: c, poisoned: pe.Error(), verdict: &verdict{}}
		m.Counter("sweep_candidates_poisoned_total").Inc()
		return
	}
	m.Counter("sweep_candidates_retried_total").Inc()
}

// panicError wraps a recovered panic value from a lane's evaluation.
type panicError struct{ val any }

func (p panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// testHookEvaluate, when set (tests only), runs at the top of every guarded
// evaluation — inside the recover boundary — so tests can inject
// deterministic lane panics.
var testHookEvaluate func(lane int, c Candidate)

// evaluateGuarded is evaluate behind the per-lane recover boundary: a panic
// anywhere in apply/settle/snapshot/rollback surfaces as a panicError instead
// of killing the process, mirroring PR 5's per-router recover.
func (e *engine) evaluateGuarded(r *replica, c Candidate) (o *outcome, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			o, err = nil, panicError{rec}
		}
	}()
	if testHookEvaluate != nil {
		testHookEvaluate(r.id, c)
	}
	return e.evaluate(r, c)
}

// liveLanes returns the lanes still in service.
func (e *engine) liveLanes() []*replica {
	var out []*replica
	for _, r := range e.pool {
		if !r.dead {
			out = append(out, r)
		}
	}
	return out
}

// healPool processes lanes condemned during the last round. Every condemned
// lane gets a rebuild attempt from the converged baseline (counted in
// sweep_lane_restarts_total). When the rebuild fails, the outcome depends on
// why the lane was condemned: a drifted lane is still internally consistent —
// it keeps serving with epoch-tagged fingerprints, exactly the pre-
// supervision behavior — but a panicked lane may hold half-applied faults
// and is retired from service.
func (e *engine) healPool() {
	for _, lane := range e.pool {
		if lane.broken == "" || lane.dead {
			lane.broken = ""
			continue
		}
		cause := lane.broken
		lane.broken = ""
		e.obs.Metrics().Counter("sweep_lane_restarts_total", "replica", lane.label, "cause", cause).Inc()
		if e.rebuildLane(lane) {
			continue
		}
		if cause == "drift" {
			continue
		}
		if lane.owned {
			lane.em.Stop()
		}
		lane.dead = true
	}
}

// rebuildLane boots a replacement emulator for the lane via the replica
// factory, gates it on the canonical baseline fingerprint, forks it a fresh
// snapshot chain, and swaps it in (stopping the old emulator when the engine
// owned it). The lane's epoch resets to zero: its baseline is canonical
// again, so its fingerprints may be shared across lanes.
func (e *engine) rebuildLane(lane *replica) bool {
	build := e.opts.BuildReplicas
	if build == nil {
		build = e.defaultBuildReplicas
	}
	ems, err := build(1)
	if err != nil || len(ems) != 1 || ems[0] == nil {
		return false
	}
	rem := ems[0]
	if rem.StateFingerprint() != e.baseFP {
		rem.Stop()
		return false
	}
	chain := e.chain.Fork(rem)
	if _, err := chain.Snapshot(); err != nil {
		rem.Stop()
		return false
	}
	if lane.owned {
		lane.em.Stop()
	}
	lane.em, lane.chain, lane.epoch, lane.owned = rem, chain, 0, true
	return true
}

// emitCandidates publishes the per-candidate progress events for the just-
// evaluated slots in canonical candidate order. Emission is deferred to the
// phase barrier so the trace stays deterministic at any lane count.
func (e *engine) emitCandidates(out []*outcome, todo []int) {
	if !e.obs.Enabled() {
		return
	}
	for _, i := range todo {
		if o := out[i]; o != nil {
			e.obs.Emit(obs.Event{Type: obs.EvSweepCandidate, Detail: o.cand.Describe(), Value: int64(len(o.dirty))})
		}
	}
}

// merge compacts a phase's outcome slots into the canonical-order outcome
// list, dropping the slots an interruption left unevaluated.
func (e *engine) merge(out []*outcome) []*outcome {
	merged := make([]*outcome, 0, len(out))
	for _, o := range out {
		if o != nil {
			merged = append(merged, o)
		}
	}
	return merged
}

// sameTarget excludes degenerate pairs: failing a node and holding the same
// node's BGP is just the node failure.
func sameTarget(a, b Element) bool {
	return a.Node != "" && a.Node == b.Node
}

// independentlyHarmless is the k=2 independence prune: when both members
// were individually harmless in every respect (no outcome changes, clean
// rollback, no stragglers or quarantine) and their blast radii are disjoint,
// the pair is predicted harmless without being applied. This is a
// partial-order-reduction heuristic, not a proof — -brute re-verifies it.
func independentlyHarmless(a, b *outcome) bool {
	harmless := func(o *outcome) bool {
		return o != nil && o.pruned != "independent" && o.poisoned == "" &&
			o.verdict != nil && o.verdict.Changed == 0 && o.residue == 0 &&
			len(o.stragglers) == 0 && len(o.quarantined) == 0
	}
	if !harmless(a) || !harmless(b) {
		return false
	}
	seen := map[string]bool{}
	for _, d := range a.dirty {
		seen[d] = true
	}
	for _, d := range b.dirty {
		if seen[d] {
			return false
		}
	}
	return true
}

func (e *engine) interrupted() bool {
	return e.opts.Ctx != nil && e.opts.Ctx.Err() != nil
}

// candSeed derives the per-candidate RNG seed: a pure function of the
// candidate identity, so every lane (and the sequential engine) draws the
// same jitter stream while evaluating it.
func candSeed(c Candidate) int64 {
	h := fnv.New64a()
	for _, el := range c.Elements {
		io.WriteString(h, el.Describe())
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}

// evaluate applies one candidate on the given lane, settles, snapshots the
// degraded state, rolls the failure back, and verifies the rollback healed.
// The verification of the impact itself is deferred to the parallel phase.
//
// Before injection the lane's clock is advanced to the alignment grid and
// its RNG reseeded from the candidate identity, which (together with the
// globally aligned protocol timers) makes everything measured here a pure
// function of (baseline, candidate) — independent of lane and history.
func (e *engine) evaluate(r *replica, c Candidate) (*outcome, error) {
	r.em.AlignClock(alignQuantum)
	clk := r.em.Sim()
	clk.Reseed(candSeed(c))
	r.candidates.Add(1)
	e.obs.Metrics().Counter("sweep_replica_candidates_total", "replica", r.label).Inc()

	o := &outcome{cand: c, base: *r.chain.Last()}
	injected := clk.Now()
	applied := 0
	var err error
	for _, el := range c.Elements {
		if err = e.apply(r, el); err != nil {
			break
		}
		applied++
	}
	if err != nil {
		for i := applied - 1; i >= 0; i-- {
			if rbErr := e.rollback(r, c.Elements[i]); rbErr != nil {
				return nil, fmt.Errorf("sweep: %s failed (%v); rollback also failed: %w", c.Describe(), err, rbErr)
			}
		}
		return nil, fmt.Errorf("sweep: applying %s: %w", c.Describe(), err)
	}

	conv := r.em.Settle(e.hold, e.timeout)
	if o.impact, err = r.chain.Snapshot(); err != nil {
		return nil, err
	}
	o.dirty = snapchain.DiffStamps(o.base.Stamps, o.impact.Stamps)
	o.reconv = conv.ConvergedAt - injected
	if o.reconv < 0 {
		o.reconv = 0
	}
	o.stragglers = conv.Stragglers
	o.quarantined = conv.Quarantined
	o.fp = e.fingerprint(r, o)

	// Roll back in reverse order and verify the heal: the lane's next
	// candidate baseline is whatever state the rollback actually reached.
	for i := len(c.Elements) - 1; i >= 0; i-- {
		if err := e.rollback(r, c.Elements[i]); err != nil {
			return nil, fmt.Errorf("sweep: rolling back %s: %w", c.Describe(), err)
		}
	}
	r.em.Settle(e.hold, e.timeout)
	restored, err := r.chain.Snapshot()
	if err != nil {
		return nil, err
	}
	// Content check: any router whose restored AFT is not byte-identical
	// to its baseline content invalidates fingerprint sharing across this
	// boundary (see replica.epoch). Outcome check: flows still diverging are
	// real residue, reported per row.
	drifted := false
	for _, name := range snapchain.DiffStamps(o.base.Stamps, restored.Stamps) {
		ba, ra := o.base.AFTs[name], restored.AFTs[name]
		if ba == nil || ra == nil || ba.Fingerprint() != ra.Fingerprint() {
			drifted = true
			break
		}
	}
	if drifted {
		r.epoch++
		o.residue = len(r.chain.Differential(o.base, restored))
	}
	return o, nil
}

func (e *engine) apply(r *replica, el Element) error {
	switch el.Kind {
	case KindLink:
		ep, err := topology.ParseEndpoint(el.Link)
		if err != nil {
			return err
		}
		return r.em.SetLinkDown(ep)
	case KindNode:
		return r.em.FailRouter(el.Node)
	case KindBGP:
		return r.em.HoldBGP(el.Node)
	}
	return fmt.Errorf("sweep: unknown element kind %q", el.Kind)
}

func (e *engine) rollback(r *replica, el Element) error {
	switch el.Kind {
	case KindLink:
		ep, err := topology.ParseEndpoint(el.Link)
		if err != nil {
			return err
		}
		return r.em.SetLinkUp(ep)
	case KindNode:
		if err := r.em.RestoreRouter(el.Node); err != nil {
			return err
		}
		return r.em.AwaitRunning(el.Node, e.timeout)
	case KindBGP:
		return r.em.ReleaseBGP(el.Node)
	}
	return fmt.Errorf("sweep: unknown element kind %q", el.Kind)
}

// fingerprint keys the candidate's equivalence group: the baseline identity
// plus, for every dirty router, its baseline and impact forwarding
// fingerprints. Two candidates with equal fingerprints perturb identical
// forwarding state identically against identical baselines, so their
// differentials are equal and one verification serves both. While a lane's
// epoch is zero its baseline is the canonical converged content every lane
// shares ("epoch=0"); after a drift the group key is tagged with the lane
// identity, so candidates measured against drifted baselines never share
// verdicts across lanes.
func (e *engine) fingerprint(r *replica, o *outcome) string {
	h := sha256.New()
	if r.epoch == 0 {
		fmt.Fprintf(h, "epoch=0;")
	} else {
		fmt.Fprintf(h, "epoch=r%d.%d;", r.id, r.epoch)
	}
	for _, name := range o.dirty {
		var bf, impf string
		if a := o.base.AFTs[name]; a != nil {
			bf = a.Fingerprint()
		}
		if a := o.impact.AFTs[name]; a != nil {
			impf = a.Fingerprint()
		}
		fmt.Fprintf(h, "%s:%s>%s;", name, bf, impf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// verifyChunk runs the deferred differentials for one canonical-order chunk:
// fingerprint-duplicate candidates adopt their representative's verdict, the
// representatives shard across the worker pool. Each result lands in its
// candidate's own slot, so worker count and scheduling order never affect
// output. Restored outcomes carry their journaled verdicts already; they only
// re-register their representative role (so later candidates dedup against
// them exactly as they did in the interrupted run) and re-count toward
// Verified. Because chunks are canonical prefixes processed in order, the
// repByFP state at every decision point is identical to the unjournaled
// single-barrier walk's.
func (e *engine) verifyChunk(pend []*outcome) {
	var reps []*outcome
	for _, o := range pend {
		if o == nil || o.pruned == "independent" || o.poisoned != "" {
			continue
		}
		if o.restored {
			if o.wasRep {
				e.verified++
			}
			if !e.opts.Brute && o.pruned == "" && o.fp != "" {
				if _, ok := e.repByFP[o.fp]; !ok {
					e.repByFP[o.fp] = o
				}
			}
			continue
		}
		if !e.opts.Brute {
			if r, ok := e.repByFP[o.fp]; ok {
				o.pruned = "fingerprint"
				o.dupOf = r
				continue
			}
			e.repByFP[o.fp] = o
		}
		o.wasRep = true
		reps = append(reps, o)
	}
	g := e.obs.Metrics().Gauge("sweep_inflight")
	runParallel(len(reps), e.opts.Workers, func(i int) {
		g.Add(1)
		defer g.Add(-1)
		o := reps[i]
		// One worker per candidate; the per-query pool stays at 1 so the
		// sharding happens across candidates, not within them.
		o.verdict = verdictFromDiffs(verify.Queries{Workers: 1}.DeltaDifferential(o.base.Net, o.impact.Net, o.dirty))
	})
	for _, o := range pend {
		if o != nil && o.dupOf != nil {
			o.verdict = o.dupOf.verdict
		}
	}
	e.verified += len(reps)
}

// verdictFromDiffs renders live diffs into the journalable verdict form (the
// per-row diff sample capped at maxRowDiffs, as the report displays it).
func verdictFromDiffs(diffs []verify.Diff) *verdict {
	v := &verdict{Lost: len(snapchain.LostFlows(diffs)), Changed: len(diffs)}
	for i, d := range diffs {
		if i == maxRowDiffs {
			v.Diffs = append(v.Diffs, fmt.Sprintf("… (+%d more)", len(diffs)-maxRowDiffs))
			break
		}
		v.Diffs = append(v.Diffs, d.String())
	}
	return v
}

// openJournal wires the write-ahead journal per Options: create fresh for
// JournalDir, replay-and-continue for Resume. The header pins the journal to
// this exact sweep input and baseline.
func (e *engine) openJournal(elems []Element) error {
	if e.opts.JournalDir == "" {
		if e.opts.Resume {
			return fmt.Errorf("sweep: Resume requires JournalDir")
		}
		return nil
	}
	hdr := store.JournalHeader{
		Version:  store.JournalVersion,
		Input:    e.inputHash(elems),
		Baseline: store.HashAFTs(e.chain.Last().AFTs),
	}
	path := store.SweepJournalPath(e.opts.JournalDir)
	if !e.opts.Resume {
		j, err := store.CreateJournal(path, hdr)
		if err != nil {
			return err
		}
		e.journal = j
		return nil
	}
	j, entries, err := store.ResumeJournal(path, hdr)
	if err != nil {
		return err
	}
	e.journal = j
	e.resumed = make(map[string]store.JournalEntry, len(entries))
	for _, ent := range entries {
		e.resumed[ent.Cand] = ent
	}
	return nil
}

// inputHash digests everything that determines the candidate set and each
// candidate's verdict: topology, emulation seed, sweep shape, budgets, and
// the canonical element list. Journals are only resumable under an equal
// hash.
func (e *engine) inputHash(elems []Element) string {
	h := sha256.New()
	if b, err := e.topo.Marshal(); err == nil {
		h.Write(b)
	}
	fmt.Fprintf(h, ";seed=%d;k=%d;kinds=%v;brute=%v;hold=%v;timeout=%v;",
		e.em.Sim().Seed(), e.opts.K, e.opts.Kinds, e.opts.Brute, e.hold, e.timeout)
	for _, el := range elems {
		fmt.Fprintf(h, "%s;", el.Describe())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// restoreSlots pre-fills candidate slots from the resumed journal. Slots the
// pair enumeration already decided (independent prunes) are marked restored
// when journaled, so they are not re-journaled. Because the journal is a
// canonical prefix, the restored set is exactly "everything the interrupted
// run completed".
func (e *engine) restoreSlots(cands []Candidate, out []*outcome) {
	if len(e.resumed) == 0 {
		return
	}
	m := e.obs.Metrics()
	for i := range cands {
		ent, ok := e.resumed[cands[i].Describe()]
		if !ok {
			continue
		}
		if out[i] != nil {
			out[i].restored = true
			continue
		}
		out[i] = &outcome{
			cand:        cands[i],
			fp:          ent.FP,
			dirty:       ent.Dirty,
			reconv:      time.Duration(ent.ReconvNS),
			stragglers:  ent.Stragglers,
			quarantined: ent.Quarantined,
			residue:     ent.Residue,
			pruned:      ent.Pruned,
			poisoned:    ent.Poisoned,
			restored:    true,
			wasRep:      ent.Rep,
			verdict:     &verdict{Lost: ent.Lost, Changed: ent.Changed, Diffs: ent.Diffs},
		}
		m.Counter("sweep_candidates_restored_total").Inc()
	}
}

// journalChunk appends the chunk's newly produced verdicts (canonical order,
// restored entries excluded) and fsyncs — the chunk's durability barrier.
func (e *engine) journalChunk(idxBase int, pend []*outcome) error {
	if e.journal == nil {
		return nil
	}
	wrote := false
	for i, o := range pend {
		if o == nil || o.restored {
			continue
		}
		v := o.verdict
		if v == nil {
			v = &verdict{}
		}
		ent := store.JournalEntry{
			Index:       idxBase + i,
			Cand:        o.cand.Describe(),
			FP:          o.fp,
			Rep:         o.wasRep,
			Dirty:       o.dirty,
			ReconvNS:    int64(o.reconv),
			Stragglers:  o.stragglers,
			Quarantined: o.quarantined,
			Residue:     o.residue,
			Pruned:      o.pruned,
			Poisoned:    o.poisoned,
			Lost:        v.Lost,
			Changed:     v.Changed,
			Diffs:       v.Diffs,
		}
		if err := e.journal.Append(ent); err != nil {
			return err
		}
		wrote = true
	}
	if !wrote {
		return nil
	}
	return e.journal.Sync()
}

// runParallel evaluates fn(i) for i in [0, n) across a bounded pool. Indexed
// slots keep results deterministic.
func runParallel(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// assemble ranks the outcomes worst-first into the report and emits the
// final metrics and verdict events in rank order.
func (e *engine) assemble(rep *Report, all []*outcome) {
	m := e.obs.Metrics()
	rep.Candidates = len(all)
	rep.Verified = e.verified
	for _, o := range all {
		label := "none"
		switch o.pruned {
		case "fingerprint":
			label = "fingerprint"
			rep.PrunedFingerprint++
			rep.Applied++
		case "independent":
			label = "independent"
			rep.PrunedIndependent++
		default:
			rep.Applied++
		}
		m.Counter("sweep_candidates_total", "pruned", label).Inc()
		if o.pruned != "independent" && o.poisoned == "" {
			m.Histogram("sweep_reconverge_ns", "k", fmt.Sprint(len(o.cand.Elements))).Observe(int64(o.reconv))
		}
		v := o.verdict
		if v == nil {
			v = &verdict{}
		}
		row := Row{
			Failure:       o.cand.Describe(),
			K:             len(o.cand.Elements),
			FlowsLost:     v.Lost,
			FlowsChanged:  v.Changed,
			DirtyRouters:  len(o.dirty),
			ReconvergedIn: o.reconv,
			Stragglers:    o.stragglers,
			Quarantined:   o.quarantined,
			Residue:       o.residue,
			Pruned:        o.pruned,
			Poisoned:      o.poisoned,
			Diffs:         v.Diffs,
		}
		if row.Poisoned != "" {
			rep.Poisoned++
		}
		if row.FlowsLost > 0 {
			rep.Violations++
			m.Counter("sweep_violations_total").Inc()
		}
		if row.Residue > 0 {
			rep.Residue++
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.FlowsLost != b.FlowsLost {
			return a.FlowsLost > b.FlowsLost
		}
		if a.FlowsChanged != b.FlowsChanged {
			return a.FlowsChanged > b.FlowsChanged
		}
		if a.DirtyRouters != b.DirtyRouters {
			return a.DirtyRouters > b.DirtyRouters
		}
		if a.ReconvergedIn != b.ReconvergedIn {
			return a.ReconvergedIn > b.ReconvergedIn
		}
		return a.Failure < b.Failure
	})
	for i := range rep.Rows {
		rep.Rows[i].Rank = i + 1
		if e.obs.Enabled() {
			e.obs.Emit(obs.Event{Type: obs.EvSweepVerdict, Detail: rep.Rows[i].Failure, Value: int64(rep.Rows[i].FlowsLost)})
		}
	}
}
