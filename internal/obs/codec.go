// JSON snapshot codec — the one serialization of the registry + phase state
// shared by the CLI's -json mode and the HTTP endpoint's /metrics.json and
// /phases, so scripts parse a single stable schema instead of ASCII tables.
package obs

import (
	"encoding/json"
	"io"
)

// BucketJSON is one cumulative histogram bucket: the count of observations
// ≤ LE (matching Prometheus le semantics).
type BucketJSON struct {
	LE    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// MetricJSON is one metric series in the JSON snapshot.
type MetricJSON struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value; for histograms it is the
	// observation count (duplicated in Count for clarity).
	Value   int64        `json:"value"`
	Count   uint64       `json:"count,omitempty"`
	Sum     uint64       `json:"sum,omitempty"`
	P50     int64        `json:"p50,omitempty"`
	P99     int64        `json:"p99,omitempty"`
	Buckets []BucketJSON `json:"buckets,omitempty"`
}

// PhaseJSON is one completed pipeline phase.
type PhaseJSON struct {
	Name     string `json:"name"`
	VStartNS int64  `json:"vstart_ns"`
	VEndNS   int64  `json:"vend_ns"`
	VDurNS   int64  `json:"vdur_ns"`
	WallNS   int64  `json:"wall_ns"`
}

// SnapshotJSON is a point-in-time view of the observer: every metric series
// plus the completed phases.
type SnapshotJSON struct {
	Metrics []MetricJSON `json:"metrics"`
	Phases  []PhaseJSON  `json:"phases,omitempty"`
}

// metricJSON converts one snapshot entry.
func metricJSON(m Metric) MetricJSON {
	out := MetricJSON{
		Name:   m.Name,
		Kind:   m.Kind.String(),
		Labels: m.Labels.Map(),
		Value:  m.Value,
	}
	if m.Kind == KindHistogram {
		out.Count = uint64(m.Value)
		out.Sum = m.Sum
		out.P50 = m.P50
		out.P99 = m.P99
		var cum uint64
		for i, upper := range m.BucketUppers {
			cum += m.BucketCounts[i]
			out.Buckets = append(out.Buckets, BucketJSON{LE: upper, Count: cum})
		}
	}
	return out
}

// MetricsJSON converts the registry snapshot into its JSON form.
func (r *Registry) MetricsJSON() []MetricJSON {
	snap := r.Snapshot()
	out := make([]MetricJSON, 0, len(snap))
	for _, m := range snap {
		out = append(out, metricJSON(m))
	}
	return out
}

// PhasesJSON converts the completed phase records into their JSON form.
func (o *Observer) PhasesJSON() []PhaseJSON {
	phases := o.Phases()
	out := make([]PhaseJSON, 0, len(phases))
	for _, p := range phases {
		out = append(out, PhaseJSON{
			Name:     p.Name,
			VStartNS: int64(p.VStart),
			VEndNS:   int64(p.VEnd),
			VDurNS:   int64(p.VDur()),
			WallNS:   int64(p.Wall),
		})
	}
	return out
}

// SnapshotJSON captures the observer's metrics and phases. Nil-safe: a nil
// observer yields an empty (but valid) snapshot.
func (o *Observer) SnapshotJSON() *SnapshotJSON {
	s := &SnapshotJSON{}
	if o == nil {
		s.Metrics = []MetricJSON{}
		return s
	}
	s.Metrics = o.Metrics().MetricsJSON()
	s.Phases = o.PhasesJSON()
	return s
}

// WriteJSON serializes the snapshot to w (indented, trailing newline).
func (o *Observer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o.SnapshotJSON())
}
