// Prometheus text exposition (version 0.0.4). The format is plain text, so
// the writer stays stdlib-only: one # TYPE line per family, one sample line
// per series, histograms expanded into cumulative le-labeled buckets.
package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type HTTP servers should send with
// WritePrometheus output.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a metric family name into the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* — dots and any other foreign byte become '_'.
func promName(name string) string {
	ok := func(i int, c byte) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i := 0; i < len(name); i++ {
		if !ok(i, name[i]) {
			clean = false
			break
		}
	}
	if clean && name != "" {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		if ok(i, name[i]) {
			b.WriteByte(name[i])
		} else if i == 0 && name[i] >= '0' && name[i] <= '9' {
			b.WriteByte('_')
			b.WriteByte(name[i])
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabelName sanitizes a label name ([a-zA-Z_][a-zA-Z0-9_]*).
func promLabelName(name string) string {
	s := promName(name)
	return strings.ReplaceAll(s, ":", "_")
}

// promEscape escapes a label value for the exposition format: backslash,
// double quote, and newline.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promLabels renders a label set (plus optional extra pairs appended in
// order) as the {k="v",...} sample suffix; empty sets render empty.
func promLabels(ls Labels, extra ...LabelPair) string {
	if len(ls)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	write := func(p LabelPair) {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelName(p.Key))
		b.WriteString(`="`)
		b.WriteString(promEscape(p.Value))
		b.WriteByte('"')
		n++
	}
	for _, p := range ls {
		write(p)
	}
	for _, p := range extra {
		write(p)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every metric in the registry in the Prometheus
// text exposition format. Counters render as counters, gauges as gauges,
// and histograms as cumulative le-bucketed histogram families with _sum and
// _count samples. Output order is deterministic: families sorted by name,
// series by canonical labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, m := range snap {
		name := promName(m.Name)
		if name != lastFamily {
			bw.WriteString("# TYPE ")
			bw.WriteString(name)
			switch m.Kind {
			case KindCounter:
				bw.WriteString(" counter\n")
			case KindGauge:
				bw.WriteString(" gauge\n")
			case KindHistogram:
				bw.WriteString(" histogram\n")
			}
			lastFamily = name
		}
		switch m.Kind {
		case KindCounter, KindGauge:
			bw.WriteString(name)
			bw.WriteString(promLabels(m.Labels))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.Value, 10))
			bw.WriteByte('\n')
		case KindHistogram:
			var cum uint64
			for i, upper := range m.BucketUppers {
				cum += m.BucketCounts[i]
				bw.WriteString(name)
				bw.WriteString("_bucket")
				bw.WriteString(promLabels(m.Labels, LabelPair{Key: "le", Value: strconv.FormatInt(upper, 10)}))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(cum, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(name)
			bw.WriteString("_bucket")
			bw.WriteString(promLabels(m.Labels, LabelPair{Key: "le", Value: "+Inf"}))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.Value, 10))
			bw.WriteByte('\n')
			bw.WriteString(name)
			bw.WriteString("_sum")
			bw.WriteString(promLabels(m.Labels))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(m.Sum, 10))
			bw.WriteByte('\n')
			bw.WriteString(name)
			bw.WriteString("_count")
			bw.WriteString(promLabels(m.Labels))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.Value, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
