// Package obs is the observability layer for the model-free verification
// pipeline: a structured trace-event stream, a metrics registry, and
// span-style phase timing.
//
// Trace events are stamped with the simulation's virtual clock, never the
// wall clock, so two runs with the same seed produce byte-identical traces —
// traces are replayable evidence, not logs. Wall-clock durations appear only
// in phase records and histograms (the metrics side), which are reporting
// aids and deliberately excluded from the deterministic trace.
//
// The package is stdlib-only and nil-safe end to end: a nil *Observer (and
// the nil *Counter/*Gauge/*Histogram handles it hands out) is a valid no-op
// sink, so uninstrumented runs pay one nil check per call site and zero
// allocations. Hot paths that would build strings for an event should guard
// with Enabled():
//
//	if o.Enabled() {
//	    o.Emit(obs.Event{Type: obs.EvBGPSession, Device: name, ...})
//	}
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock exposes virtual time; satisfied by *sim.Simulator. A nil clock
// stamps events at zero (model backend, pre-simulation phases).
type Clock interface {
	Now() time.Duration
}

// Event types emitted by the instrumented pipeline.
const (
	// EvPodReady: a router pod reached Running (Device=router, Detail=node).
	EvPodReady = "pod_ready"
	// EvStartupDone: every pod is Running; infra startup is complete.
	EvStartupDone = "startup_done"
	// EvLinkUp / EvLinkDown: a virtual link changed admin/wiring state
	// (Detail=canonical link key).
	EvLinkUp   = "link_up"
	EvLinkDown = "link_down"
	// EvBGPSession: a BGP FSM transition (Device, Peer, Detail="old>new").
	EvBGPSession = "bgp_session"
	// EvISISAdjacency: an IS-IS adjacency transition (Device,
	// Detail="intf:state").
	EvISISAdjacency = "isis_adjacency"
	// EvLSPFlood: an LSP was flooded (Device, Value=circuits reached).
	EvLSPFlood = "lsp_flood"
	// EvRouteChurn: a router's dataplane-relevant state settled after a
	// change (Device, Value=RIB version).
	EvRouteChurn = "route_churn"
	// EvCrash: a routing process crashed (Device).
	EvCrash = "bgp_crash"
	// EvConverged: convergence detection declared the dataplane stable
	// (Value=convergence point in ns of virtual time).
	EvConverged = "converged"
	// EvAFTExport: one device's AFT was extracted (Device, Value=entries).
	EvAFTExport = "aft_export"
	// EvSpanStart / EvSpanEnd: a pipeline phase boundary (Detail=phase;
	// EvSpanEnd carries Value=virtual duration in ns).
	EvSpanStart = "span_start"
	EvSpanEnd   = "span_end"
	// EvPodCrash: a router pod died and is being rescheduled (Device=router,
	// Detail=kube node when the crash came from a node failure).
	EvPodCrash = "pod_crash"
	// EvNodeDown / EvNodeUp: a kube worker node failed (Value=evicted pods)
	// or recovered (Device=node).
	EvNodeDown = "node_down"
	EvNodeUp   = "node_up"
	// EvBGPReset: an operator-initiated session reset on a router (Device).
	EvBGPReset = "bgp_reset"
	// EvDegraded: convergence timed out in degraded mode and partial results
	// were accepted (Detail=comma-joined stragglers, Value=count).
	EvDegraded = "converge_degraded"
	// EvFaultInject / EvFaultClear: the chaos engine injected or cleared a
	// fault (Detail=fault description).
	EvFaultInject = "fault_inject"
	EvFaultClear  = "fault_clear"
	// EvChaosVerdict: per-fault differential verification verdict
	// (Detail=fault, Value=permanently lost flows).
	EvChaosVerdict = "chaos_verdict"
	// EvQuarantine: a router's control plane was quarantined after hostile
	// input or an escaped handler panic (Device=router, Detail=reason).
	EvQuarantine = "router_quarantine"
	// EvSweepCandidate: the sweep engine applied one failure candidate
	// (Detail=failure description, Value=dirty-router count).
	EvSweepCandidate = "sweep_candidate"
	// EvSweepVerdict: one ranked sweep result (Detail=failure description,
	// Value=flows lost). Emitted in rank order after the merge.
	EvSweepVerdict = "sweep_verdict"
)

// Event is one trace record. At is virtual time; the remaining fields are a
// fixed, flat schema so events serialize deterministically and call sites
// never allocate a field map.
//
// Wall is the real time the event was published to live subscribers. It is
// excluded from JSON so the retained trace stays byte-identical across
// same-seed runs, and it is stamped only when at least one subscriber is
// attached — the deterministic-trace path never reads the wall clock.
type Event struct {
	At     time.Duration `json:"at_ns"`
	Type   string        `json:"type"`
	Device string        `json:"device,omitempty"`
	Peer   string        `json:"peer,omitempty"`
	Detail string        `json:"detail,omitempty"`
	Value  int64         `json:"value,omitempty"`
	Wall   time.Time     `json:"-"`
}

// PhaseRecord is one completed pipeline phase with virtual and wall timing.
type PhaseRecord struct {
	Name string
	// VStart/VEnd bound the phase in virtual time.
	VStart, VEnd time.Duration
	// Wall is the real time the phase took (reporting only; never traced).
	Wall time.Duration
}

// VDur returns the phase's virtual duration.
func (p PhaseRecord) VDur() time.Duration { return p.VEnd - p.VStart }

// Observer bundles the trace buffer, metrics registry, phase records, and
// the live event bus for one pipeline run. A nil *Observer is a valid no-op
// sink.
type Observer struct {
	mu      sync.Mutex
	clock   Clock
	events  []Event
	phases  []PhaseRecord
	reg     Registry
	noTrace bool

	// Live event bus (see bus.go). nSubs mirrors len(subs) so Emit can
	// skip the fan-out path with one atomic load.
	subMu    sync.Mutex
	subs     map[int]*Subscription
	nextSub  int
	nSubs    atomic.Int32
	cDropped *Counter
}

// New returns an observer collecting trace events, metrics, and phases. Bind
// the virtual clock with SetClock once the simulator exists.
func New() *Observer { return &Observer{} }

// NewMetricsOnly returns an observer that records metrics and phases but
// discards trace events — the right sink for large runs where the event
// stream would dominate memory.
func NewMetricsOnly() *Observer { return &Observer{noTrace: true} }

// SetClock binds the virtual clock used to stamp events. Events emitted
// before the clock is bound are stamped at zero.
func (o *Observer) SetClock(c Clock) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.clock = c
	o.mu.Unlock()
}

// Enabled reports whether anyone consumes trace events — the retained
// trace buffer or at least one live subscriber. Call sites use it to skip
// building event strings on the disabled path, so a metrics-only observer
// starts producing events the moment a subscriber attaches.
func (o *Observer) Enabled() bool {
	return o != nil && (!o.noTrace || o.nSubs.Load() > 0)
}

// Emit appends a trace event and fans it out to live subscribers. When e.At
// is zero it is stamped from the bound clock; a nonzero At is kept verbatim
// (for events describing a moment other than "now", e.g. synthesized span
// boundaries).
func (o *Observer) Emit(e Event) {
	if o == nil {
		return
	}
	live := o.nSubs.Load() > 0
	if o.noTrace && !live {
		return
	}
	o.mu.Lock()
	if e.At == 0 && o.clock != nil {
		e.At = o.clock.Now()
	}
	if !o.noTrace {
		o.events = append(o.events, e)
	}
	o.mu.Unlock()
	if live {
		e.Wall = time.Now()
		o.publish(e)
	}
}

// Events returns a copy of the collected trace.
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Event(nil), o.events...)
}

// WriteJSONL serializes the trace as one JSON object per line, in emission
// order. The output is byte-identical across same-seed runs.
func (o *Observer) WriteJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	events := append([]Event(nil), o.events...)
	o.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Metrics exposes the observer's registry. Returns nil on a nil observer,
// and every registry method on a nil registry is itself a no-op.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return &o.reg
}

// Counter returns the named counter handle (nil, a no-op, on a nil
// observer). Optional labels are alternating key/value pairs. Hot paths
// should resolve handles once and keep them.
func (o *Observer) Counter(name string, labels ...string) *Counter {
	return o.Metrics().Counter(name, labels...)
}

// Gauge returns the named gauge handle.
func (o *Observer) Gauge(name string, labels ...string) *Gauge {
	return o.Metrics().Gauge(name, labels...)
}

// Histogram returns the named histogram handle.
func (o *Observer) Histogram(name string, labels ...string) *Histogram {
	return o.Metrics().Histogram(name, labels...)
}

// PhaseSpan is an in-flight pipeline phase opened by StartPhase.
type PhaseSpan struct {
	o      *Observer
	name   string
	vstart time.Duration
	wall   time.Time
}

// StartPhase opens a phase at the current virtual and wall time and emits
// its span_start event. End completes it.
func (o *Observer) StartPhase(name string) *PhaseSpan {
	if o == nil {
		return nil
	}
	s := &PhaseSpan{o: o, name: name, wall: time.Now()}
	o.mu.Lock()
	if o.clock != nil {
		s.vstart = o.clock.Now()
	}
	o.mu.Unlock()
	o.Emit(Event{At: s.vstart, Type: EvSpanStart, Detail: name})
	return s
}

// End closes the phase, records it, and emits its span_end event.
func (s *PhaseSpan) End() {
	if s == nil {
		return
	}
	o := s.o
	o.mu.Lock()
	vend := s.vstart
	if o.clock != nil {
		vend = o.clock.Now()
	}
	o.phases = append(o.phases, PhaseRecord{
		Name: s.name, VStart: s.vstart, VEnd: vend, Wall: time.Since(s.wall),
	})
	o.mu.Unlock()
	o.Emit(Event{At: vend, Type: EvSpanEnd, Detail: s.name, Value: int64(vend - s.vstart)})
}

// RecordPhase records a phase whose boundaries were observed externally
// (e.g. boot/converge, which share one simulation run) and emits its span
// events at the correct virtual instants.
func (o *Observer) RecordPhase(name string, vstart, vend, wall time.Duration) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.phases = append(o.phases, PhaseRecord{Name: name, VStart: vstart, VEnd: vend, Wall: wall})
	o.mu.Unlock()
	o.Emit(Event{At: vstart, Type: EvSpanStart, Detail: name})
	o.Emit(Event{At: vend, Type: EvSpanEnd, Detail: name, Value: int64(vend - vstart)})
}

// Phases returns the completed phase records in completion order.
func (o *Observer) Phases() []PhaseRecord {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]PhaseRecord(nil), o.phases...)
}

// PhaseTable renders the phase records as an aligned text table.
func (o *Observer) PhaseTable() string {
	phases := o.Phases()
	if len(phases) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %12s\n", "phase", "virtual-start", "virtual-end", "virtual-dur", "wall")
	for _, p := range phases {
		fmt.Fprintf(&b, "%-10s %14v %14v %14v %12v\n",
			p.Name, p.VStart.Round(time.Millisecond), p.VEnd.Round(time.Millisecond),
			p.VDur().Round(time.Millisecond), p.Wall.Round(10*time.Microsecond))
	}
	return b.String()
}

// MetricsTable renders every metric as an aligned, name-sorted text table:
// counters and gauges one per line, histograms with count/p50/p99/max.
func (o *Observer) MetricsTable() string {
	if o == nil {
		return ""
	}
	snap := o.Metrics().Snapshot()
	if len(snap) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %s\n", "metric", "value")
	for _, m := range snap {
		fmt.Fprintf(&b, "%-36s %s\n", m.FullName(), m.Render())
	}
	return b.String()
}
