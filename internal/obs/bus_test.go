package obs

// Event-bus contracts: live delivery, slow-subscriber drop accounting,
// filtered subscriptions, and safety of Emit/Subscribe/Close interleavings
// under the race detector.

import (
	"sync"
	"testing"
	"time"
)

func TestSubscribeReceivesLiveEvents(t *testing.T) {
	o := New()
	sub := o.Subscribe(8)
	defer sub.Close()
	o.Emit(Event{Type: EvPodReady, Device: "r1"})
	select {
	case e := <-sub.Events():
		if e.Type != EvPodReady || e.Device != "r1" {
			t.Fatalf("got %+v", e)
		}
		if e.Wall.IsZero() {
			t.Error("live event missing wall timestamp")
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
	// The retained trace is unaffected — and carries no wall stamp.
	evs := o.Events()
	if len(evs) != 1 {
		t.Fatalf("retained trace = %+v", evs)
	}
}

func TestMetricsOnlyObserverStreamsWhileSubscribed(t *testing.T) {
	o := NewMetricsOnly()
	if o.Enabled() {
		t.Fatal("metrics-only observer enabled with no subscribers")
	}
	sub := o.Subscribe(4)
	if !o.Enabled() {
		t.Fatal("observer not enabled with a live subscriber")
	}
	o.Emit(Event{Type: EvConverged})
	select {
	case e := <-sub.Events():
		if e.Type != EvConverged {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("no live delivery on metrics-only observer")
	}
	if len(o.Events()) != 0 {
		t.Error("metrics-only observer retained trace events")
	}
	sub.Close()
	if o.Enabled() {
		t.Error("observer still enabled after last unsubscribe")
	}
	// Emit after close must not panic or deliver.
	o.Emit(Event{Type: EvPodReady})
	if _, open := <-sub.Events(); open {
		t.Error("closed subscription channel still open")
	}
}

func TestSlowSubscriberDropAccounting(t *testing.T) {
	o := NewMetricsOnly()
	sub := o.Subscribe(1) // room for exactly one undelivered event
	defer sub.Close()
	const emitted = 10
	for i := 0; i < emitted; i++ {
		o.Emit(Event{Type: EvRouteChurn, Value: int64(i)})
	}
	wantDropped := uint64(emitted - 1)
	if got := sub.Dropped(); got != wantDropped {
		t.Errorf("sub.Dropped() = %d, want %d", got, wantDropped)
	}
	if got := o.Counter("obs_dropped_events_total").Value(); got != wantDropped {
		t.Errorf("obs_dropped_events_total = %d, want %d", got, wantDropped)
	}
	// The one buffered event is the first emitted (drops discard newest).
	e := <-sub.Events()
	if e.Value != 0 {
		t.Errorf("buffered event = %+v, want the first emitted", e)
	}
}

func TestSubscribeFiltered(t *testing.T) {
	o := New()
	sub := o.SubscribeFiltered(1, func(e Event) bool { return e.Type == EvConverged })
	defer sub.Close()
	// Filtered-out traffic neither fills the buffer nor counts as dropped.
	for i := 0; i < 50; i++ {
		o.Emit(Event{Type: EvRouteChurn})
	}
	o.Emit(Event{Type: EvConverged, Value: 42})
	select {
	case e := <-sub.Events():
		if e.Type != EvConverged || e.Value != 42 {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("filtered event not delivered")
	}
	if sub.Dropped() != 0 || o.Counter("obs_dropped_events_total").Value() != 0 {
		t.Errorf("filtered-out events counted as drops: sub=%d total=%d",
			sub.Dropped(), o.Counter("obs_dropped_events_total").Value())
	}
}

func TestSubscriptionCloseIdempotent(t *testing.T) {
	o := New()
	sub := o.Subscribe(1)
	sub.Close()
	sub.Close() // second close must not panic
	var nilSub *Subscription
	nilSub.Close()
	if nilSub.Events() != nil || nilSub.Dropped() != 0 {
		t.Error("nil subscription leaked state")
	}
	if o.Subscribe(0) == nil {
		t.Error("Subscribe(0) should select the default buffer, not fail")
	}
	var nilObs *Observer
	if nilObs.Subscribe(4) != nil {
		t.Error("nil observer handed out a subscription")
	}
}

// TestBusConcurrency exercises Emit, Subscribe, receive, and Close from many
// goroutines at once; run under -race this is the bus's memory-safety proof.
func TestBusConcurrency(t *testing.T) {
	o := NewMetricsOnly()
	const (
		emitters    = 4
		subscribers = 8
		perEmitter  = 500
	)
	var emitWG, subWG sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < emitters; i++ {
		emitWG.Add(1)
		go func(id int) {
			defer emitWG.Done()
			for n := 0; n < perEmitter; n++ {
				o.Emit(Event{Type: EvRouteChurn, Value: int64(id*perEmitter + n)})
			}
		}(i)
	}
	for i := 0; i < subscribers; i++ {
		subWG.Add(1)
		go func(id int) {
			defer subWG.Done()
			sub := o.Subscribe(16)
			defer sub.Close()
			received := 0
			for {
				select {
				case _, open := <-sub.Events():
					if !open {
						return
					}
					received++
					// Churn the subscription set mid-stream.
					if id%2 == 0 && received == 5 {
						return
					}
				case <-stop:
					return
				}
			}
		}(i)
	}
	emitWG.Wait()
	close(stop)
	subWG.Wait()
	// All emitted events were either delivered or counted as drops; nothing
	// vanished silently and nothing deadlocked to get here.
}
