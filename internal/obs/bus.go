// The live event bus: subscriptions turn the snapshot-only Events() model
// into a stream that can be consumed while a run is in flight (the SSE
// endpoint, live dashboards, tail -f style tools).
//
// Delivery contract: each subscriber owns a bounded buffer. Emit never
// blocks — a full buffer drops the event for that subscriber only, counts
// it on the subscription, and increments the shared
// obs_dropped_events_total counter. A slow dashboard can therefore lose
// events (it is a tail, not the trace); the retained trace buffer and the
// determinism contract are unaffected.
package obs

import "sync/atomic"

// DefaultSubscriptionBuffer is the per-subscriber ring size used when
// Subscribe is called with a non-positive buffer.
const DefaultSubscriptionBuffer = 256

// Subscription is one live event consumer. Receive from Events(); call
// Close when done (Close is idempotent and safe concurrently with Emit).
type Subscription struct {
	o       *Observer
	id      int
	ch      chan Event
	keep    func(Event) bool // nil = keep everything; immutable after Subscribe
	dropped atomic.Uint64
	closed  bool // guarded by o.subMu
}

// Subscribe attaches a live event consumer with the given buffer size
// (non-positive selects DefaultSubscriptionBuffer). Events emitted from now
// on are delivered in emission order; events that arrive while the buffer
// is full are dropped and counted. Returns nil on a nil observer.
func (o *Observer) Subscribe(buf int) *Subscription {
	return o.SubscribeFiltered(buf, nil)
}

// SubscribeFiltered is Subscribe with a server-side filter: only events for
// which keep returns true are delivered (or counted as drops). The right
// tool for watchers that care about one event type — a filtered subscriber
// never backs up on traffic it would discard anyway. keep runs on the
// emitting goroutine under the bus lock, so it must be fast and pure.
func (o *Observer) SubscribeFiltered(buf int, keep func(Event) bool) *Subscription {
	if o == nil {
		return nil
	}
	if buf <= 0 {
		buf = DefaultSubscriptionBuffer
	}
	s := &Subscription{o: o, ch: make(chan Event, buf), keep: keep}
	o.subMu.Lock()
	if o.subs == nil {
		o.subs = map[int]*Subscription{}
		o.cDropped = o.reg.Counter("obs_dropped_events_total")
	}
	s.id = o.nextSub
	o.nextSub++
	o.subs[s.id] = s
	o.nSubs.Store(int32(len(o.subs)))
	o.subMu.Unlock()
	return s
}

// publish fans one event out to every subscriber, dropping per-subscriber
// on full buffers. Called by Emit off the o.mu critical section.
func (o *Observer) publish(e Event) {
	o.subMu.Lock()
	for _, s := range o.subs {
		if s.keep != nil && !s.keep(e) {
			continue
		}
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			o.cDropped.Inc()
		}
	}
	o.subMu.Unlock()
}

// Events returns the subscription's receive channel. The channel is closed
// by Close. Nil-safe (returns a nil channel that blocks forever — pair it
// with a context/done select).
func (s *Subscription) Events() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped returns how many events this subscriber missed to back-pressure.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close detaches the subscription and closes its channel. Idempotent; safe
// to call while the observer is emitting.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	o := s.o
	o.subMu.Lock()
	if s.closed {
		o.subMu.Unlock()
		return
	}
	s.closed = true
	delete(o.subs, s.id)
	o.nSubs.Store(int32(len(o.subs)))
	// Closing under subMu is what makes Emit safe: publish sends only
	// while holding the same lock, so no send can race the close.
	close(s.ch)
	o.subMu.Unlock()
}
