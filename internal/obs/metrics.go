package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter is a no-op, so disabled runs pay one nil check.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-latest metric. A nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds values v with bits.Len64(v) == i, i.e. 0, 1, 2–3, 4–7, ... so the
// highest bucket absorbs everything ≥ 2^62.
const histBuckets = 64

// Histogram accumulates int64 observations (typically nanoseconds or sizes)
// in power-of-two buckets with lock-free recording. A nil *Histogram is a
// no-op.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// bucketIndex maps a value to its bucket: the bit length of v, so bucket i
// spans [2^(i-1), 2^i). Negative values clamp to bucket 0.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
}

// Count returns the number of observations (zero on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all positive observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper bound for the q-th quantile (0 < q ≤ 1): the
// exclusive upper edge of the bucket containing that rank. Zero when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return 1<<i - 1
		}
	}
	return 1<<63 - 1
}

// Buckets returns the non-empty buckets as (low-bound, count) pairs in
// ascending order.
func (h *Histogram) Buckets() (lows []int64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			lows = append(lows, BucketLow(i))
			counts = append(counts, c)
		}
	}
	return lows, counts
}

// Registry holds named metrics. The zero value is ready to use; a nil
// *Registry hands out nil (no-op) handles, so a disabled observer costs
// nothing down the whole chain.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = map[string]*Histogram{}
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// MetricKind distinguishes snapshot entries.
type MetricKind uint8

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// Metric is one snapshot entry.
type Metric struct {
	Name  string
	Kind  MetricKind
	Value int64 // counter/gauge value; histogram count
	// P50/P99/Sum are histogram-only.
	P50, P99 int64
	Sum      uint64
}

// Render formats the metric's value column.
func (m Metric) Render() string {
	if m.Kind == KindHistogram {
		return fmt.Sprintf("count=%d p50<=%d p99<=%d sum=%d", m.Value, m.P50, m.P99, m.Sum)
	}
	return fmt.Sprintf("%d", m.Value)
}

// Snapshot returns every metric sorted by name.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(counters)+len(gauges)+len(hists))
	for _, name := range sortedNames(counters) {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: int64(counters[name].Value())})
	}
	for _, name := range sortedNames(gauges) {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: gauges[name].Value()})
	}
	for _, name := range sortedNames(hists) {
		h := hists[name]
		out = append(out, Metric{
			Name: name, Kind: KindHistogram,
			Value: int64(h.Count()), P50: h.Quantile(0.50), P99: h.Quantile(0.99), Sum: h.Sum(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns every registered metric name, sorted and de-duplicated.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	out := make([]string, 0, len(snap))
	var last string
	for _, m := range snap {
		if m.Name != last {
			out = append(out, m.Name)
			last = m.Name
		}
	}
	return out
}
