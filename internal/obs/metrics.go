package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter is a no-op, so disabled runs pay one nil check.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-latest metric. A nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds values v with bits.Len64(v) == i, i.e. 0, 1, 2–3, 4–7, ... so the
// highest bucket absorbs everything ≥ 2^62.
const histBuckets = 64

// Histogram accumulates int64 observations (typically nanoseconds or sizes)
// in power-of-two buckets with lock-free recording. A nil *Histogram is a
// no-op.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// bucketIndex maps a value to its bucket: the bit length of v, so bucket i
// spans [2^(i-1), 2^i). Negative values clamp to bucket 0.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the inclusive upper bound of bucket i — the `le` edge
// the Prometheus exposition uses. Integer observations make the exclusive
// 2^i edge and the inclusive 2^i-1 edge equivalent.
func BucketHigh(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
}

// Count returns the number of observations (zero on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all positive observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper bound for the q-th quantile (0 < q ≤ 1): the
// exclusive upper edge of the bucket containing that rank. Zero when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return 1<<i - 1
		}
	}
	return 1<<63 - 1
}

// Buckets returns the non-empty buckets as (low-bound, count) pairs in
// ascending order.
func (h *Histogram) Buckets() (lows []int64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			lows = append(lows, BucketLow(i))
			counts = append(counts, c)
		}
	}
	return lows, counts
}

// bucketEdges returns the non-empty buckets as (inclusive upper `le` edge,
// per-bucket count) pairs in ascending order — the exposition-facing view.
func (h *Histogram) bucketEdges() (uppers []int64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			uppers = append(uppers, BucketHigh(i))
			counts = append(counts, c)
		}
	}
	return uppers, counts
}

// LabelPair is one metric dimension.
type LabelPair struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Labels is a sorted, deduplicated label set. Build one with the registry's
// variadic accessors (key/value string pairs); series identity is the
// canonical rendering, so label order at the call site never matters.
type Labels []LabelPair

// makeLabels pairs up a variadic key/value list and sorts it by key. An odd
// trailing key is paired with the empty value rather than dropped, so a
// miscounted call site still produces a visible (if odd) series instead of
// silently aliasing the unlabeled one.
func makeLabels(kv []string) Labels {
	if len(kv) == 0 {
		return nil
	}
	ls := make(Labels, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		p := LabelPair{Key: kv[i]}
		if i+1 < len(kv) {
			p.Value = kv[i+1]
		}
		ls = append(ls, p)
	}
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// canon renders the label set in its canonical `{k1="v1",k2="v2"}` form —
// the series identity and the display suffix. Empty label sets render empty.
func (ls Labels) canon() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(p.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// Map returns the labels as a plain map (nil when empty), for JSON codecs.
func (ls Labels) Map() map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, p := range ls {
		m[p.Key] = p.Value
	}
	return m
}

// seriesKey identifies one metric series: family name + canonical labels.
type seriesKey struct {
	name   string
	labels string
}

// Registry holds named metrics, each optionally split into labeled series.
// The zero value is ready to use; a nil *Registry hands out nil (no-op)
// handles, so a disabled observer costs nothing down the whole chain.
type Registry struct {
	mu         sync.Mutex
	counters   map[seriesKey]*Counter
	gauges     map[seriesKey]*Gauge
	histograms map[seriesKey]*Histogram
	// labelSets maps a canonical label string back to its parsed form, so
	// snapshots never re-parse and identical sets share one slice.
	labelSets map[string]Labels
}

// key interns the label set and returns the series key for name.
func (r *Registry) key(name string, kv []string) seriesKey {
	if len(kv) == 0 {
		return seriesKey{name: name}
	}
	ls := makeLabels(kv)
	c := ls.canon()
	if r.labelSets == nil {
		r.labelSets = map[string]Labels{}
	}
	if _, ok := r.labelSets[c]; !ok {
		r.labelSets[c] = ls
	}
	return seriesKey{name: name, labels: c}
}

// Counter returns (creating if needed) the named counter. Optional labels
// are alternating key/value pairs: Counter("chaos_faults_total", "kind",
// "link-cut") and any permutation of the same pairs address one series.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[seriesKey]*Counter{}
	}
	k := r.key(name, labels)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; optional labels as in
// Counter.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[seriesKey]*Gauge{}
	}
	k := r.key(name, labels)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; optional
// labels as in Counter.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = map[seriesKey]*Histogram{}
	}
	k := r.key(name, labels)
	h, ok := r.histograms[k]
	if !ok {
		h = &Histogram{}
		r.histograms[k] = h
	}
	return h
}

// MetricKind distinguishes snapshot entries.
type MetricKind uint8

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String names the kind for codecs.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Metric is one snapshot entry: a single series of a metric family.
type Metric struct {
	Name   string
	Labels Labels
	Kind   MetricKind
	Value  int64 // counter/gauge value; histogram count
	// P50/P99/Sum are histogram-only.
	P50, P99 int64
	Sum      uint64
	// BucketUppers/BucketCounts are the histogram's non-empty buckets as
	// (inclusive `le` edge, per-bucket count) pairs, ascending. Exposition
	// writers accumulate them into cumulative Prometheus buckets.
	BucketUppers []int64
	BucketCounts []uint64
}

// FullName renders the series name with its canonical label suffix.
func (m Metric) FullName() string { return m.Name + m.Labels.canon() }

// Render formats the metric's value column.
func (m Metric) Render() string {
	if m.Kind == KindHistogram {
		return fmt.Sprintf("count=%d p50<=%d p99<=%d sum=%d", m.Value, m.P50, m.P99, m.Sum)
	}
	return fmt.Sprintf("%d", m.Value)
}

// Snapshot returns every metric series sorted by (name, labels) — a
// deterministic order regardless of registration order.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[seriesKey]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[seriesKey]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[seriesKey]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	labelSets := make(map[string]Labels, len(r.labelSets))
	for k, v := range r.labelSets {
		labelSets[k] = v
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(counters)+len(gauges)+len(hists))
	for _, k := range sortedKeys(counters) {
		out = append(out, Metric{
			Name: k.name, Labels: labelSets[k.labels],
			Kind: KindCounter, Value: int64(counters[k].Value()),
		})
	}
	for _, k := range sortedKeys(gauges) {
		out = append(out, Metric{
			Name: k.name, Labels: labelSets[k.labels],
			Kind: KindGauge, Value: gauges[k].Value(),
		})
	}
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		uppers, counts := h.bucketEdges()
		out = append(out, Metric{
			Name: k.name, Labels: labelSets[k.labels], Kind: KindHistogram,
			Value: int64(h.Count()), P50: h.Quantile(0.50), P99: h.Quantile(0.99), Sum: h.Sum(),
			BucketUppers: uppers, BucketCounts: counts,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels.canon() < out[j].Labels.canon()
	})
	return out
}

// Names returns every registered metric family name, sorted and
// de-duplicated (a labeled family appears once however many series it has).
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	out := make([]string, 0, len(snap))
	var last string
	for _, m := range snap {
		if m.Name != last {
			out = append(out, m.Name)
			last = m.Name
		}
	}
	return out
}

// sortedKeys returns series keys sorted by (name, labels).
func sortedKeys[T any](m map[seriesKey]T) []seriesKey {
	out := make([]seriesKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
