// Runtime health sampling for long-running runs: heap, goroutines, and GC
// pauses feed the registry on a wall-clock ticker. These are operational
// metrics (how is the process doing), not trace data — they never touch the
// deterministic event stream.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// DefaultSampleInterval is the runtime sampler's default period.
const DefaultSampleInterval = time.Second

// StartRuntimeSampler begins sampling Go runtime statistics into the
// observer's registry every interval (non-positive selects
// DefaultSampleInterval) and returns a stop function (idempotent). Gauges:
// runtime_heap_alloc_bytes, runtime_heap_sys_bytes, runtime_goroutines,
// runtime_gc_runs_total, runtime_next_gc_bytes. Histogram:
// runtime_gc_pause_ns (one observation per completed GC cycle). Nil-safe:
// a nil observer returns a no-op stop.
func (o *Observer) StartRuntimeSampler(interval time.Duration) (stop func()) {
	if o == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	var (
		heapAlloc  = o.Gauge("runtime_heap_alloc_bytes")
		heapSys    = o.Gauge("runtime_heap_sys_bytes")
		goroutines = o.Gauge("runtime_goroutines")
		gcRuns     = o.Gauge("runtime_gc_runs_total")
		nextGC     = o.Gauge("runtime_next_gc_bytes")
		gcPause    = o.Histogram("runtime_gc_pause_ns")
	)
	var lastGC uint32
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		goroutines.Set(int64(runtime.NumGoroutine()))
		gcRuns.Set(int64(ms.NumGC))
		nextGC.Set(int64(ms.NextGC))
		// Observe each GC pause exactly once: PauseNs is a circular buffer
		// indexed by cycle number, so replay the cycles since last sample.
		if n := ms.NumGC - lastGC; n > 0 {
			if n > uint32(len(ms.PauseNs)) {
				n = uint32(len(ms.PauseNs)) // buffer wrapped; older pauses are gone
			}
			for i := ms.NumGC - n; i < ms.NumGC; i++ {
				gcPause.Observe(int64(ms.PauseNs[i%uint32(len(ms.PauseNs))]))
			}
			lastGC = ms.NumGC
		}
	}
	sample()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
