package obs

// Exposition contracts: labeled series identity, Prometheus text golden
// output (including cumulative le-bucket semantics), and the shared JSON
// snapshot codec.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestLabeledSeriesIdentity(t *testing.T) {
	var r Registry
	// Label order at the call site never matters.
	a := r.Counter("chaos_faults_total", "kind", "link-cut", "zone", "a")
	b := r.Counter("chaos_faults_total", "zone", "a", "kind", "link-cut")
	if a != b {
		t.Error("same label set in different order produced different series")
	}
	// A different value is a different series; so is the unlabeled family.
	if a == r.Counter("chaos_faults_total", "kind", "pod-crash", "zone", "a") {
		t.Error("different label values aliased")
	}
	if a == r.Counter("chaos_faults_total") {
		t.Error("labeled series aliased the unlabeled one")
	}
	// An odd trailing key still yields a distinct, visible series.
	odd := r.Counter("chaos_faults_total", "kind")
	if odd == r.Counter("chaos_faults_total") {
		t.Error("odd trailing key aliased the unlabeled series")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	var r Registry
	// Register out of order; snapshot must sort by (name, labels).
	r.Counter("z_total").Inc()
	r.Counter("a_total", "k", "2").Inc()
	r.Counter("a_total", "k", "1").Inc()
	r.Gauge("m_gauge").Set(3)
	snap := r.Snapshot()
	var got []string
	for _, m := range snap {
		got = append(got, m.FullName())
	}
	want := []string{`a_total{k="1"}`, `a_total{k="2"}`, `m_gauge`, `z_total`}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("snapshot order = %v, want %v", got, want)
	}
	// Names() reports each family once.
	names := r.Names()
	if strings.Join(names, "|") != "a_total|m_gauge|z_total" {
		t.Errorf("Names() = %v", names)
	}
}

// TestWritePrometheusGolden pins the full exposition output for a registry
// exercising every kind, labels, and the cumulative le-bucket expansion.
func TestWritePrometheusGolden(t *testing.T) {
	var r Registry
	r.Counter("faults_total", "kind", "link-cut").Add(3)
	r.Counter("faults_total", "kind", "pod-crash").Add(1)
	r.Gauge("inflight").Set(2)
	h := r.Histogram("reconverge_ns", "kind", "link-cut")
	// Observations 1, 2, 3 land in buckets le=1 (count 1) and le=3 (count 2):
	// cumulative 1, 3.
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE faults_total counter`,
		`faults_total{kind="link-cut"} 3`,
		`faults_total{kind="pod-crash"} 1`,
		`# TYPE inflight gauge`,
		`inflight 2`,
		`# TYPE reconverge_ns histogram`,
		`reconverge_ns_bucket{kind="link-cut",le="1"} 1`,
		`reconverge_ns_bucket{kind="link-cut",le="3"} 3`,
		`reconverge_ns_bucket{kind="link-cut",le="+Inf"} 3`,
		`reconverge_ns_sum{kind="link-cut"} 6`,
		`reconverge_ns_count{kind="link-cut"} 3`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusBucketsCumulative checks the le invariants on a wider value
// spread: bucket counts never decrease, and the +Inf bucket equals _count.
func TestPrometheusBucketsCumulative(t *testing.T) {
	var r Registry
	h := r.Histogram("wide_ns")
	for _, v := range []int64{0, 1, 5, 5, 130, 4096, 1 << 40} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	var lastCum, infCum, count int64
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "wide_ns_bucket{le=\"+Inf\"}"):
			if _, err := parseSample(line, &infCum); err != nil {
				t.Fatal(err)
			}
		case strings.HasPrefix(line, "wide_ns_bucket{"):
			var cum int64
			if _, err := parseSample(line, &cum); err != nil {
				t.Fatal(err)
			}
			if cum < lastCum {
				t.Errorf("bucket counts not cumulative: %d after %d (%s)", cum, lastCum, line)
			}
			lastCum = cum
			le := line[strings.Index(line, `le="`)+4 : strings.LastIndex(line, `"`)]
			var edge int64
			if _, err := parseSample("x "+le, &edge); err != nil {
				t.Fatalf("bad le %q: %v", le, err)
			}
			if edge <= prev {
				t.Errorf("le edges not ascending: %d after %d", edge, prev)
			}
			prev = edge
		case strings.HasPrefix(line, "wide_ns_count"):
			if _, err := parseSample(line, &count); err != nil {
				t.Fatal(err)
			}
		}
	}
	if count != 7 || infCum != count || lastCum > infCum {
		t.Errorf("count=%d +Inf=%d lastFinite=%d", count, infCum, lastCum)
	}
}

// parseSample reads the trailing integer of a "name value" sample line.
func parseSample(line string, out *int64) (string, error) {
	i := strings.LastIndexByte(line, ' ')
	name := line[:i]
	v, err := json.Number(line[i+1:]).Int64()
	*out = v
	return name, err
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"spf_ns":       "spf_ns",
		"rib.routes":   "rib_routes",
		"9lives":       "_9lives",
		"weird métric": "weird_m__tric",
		"":             "_",
		"a:b":          "a:b",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promLabelName("a:b"); got != "a_b" {
		t.Errorf("promLabelName(a:b) = %q (colons are metric-only)", got)
	}
	if got := promEscape("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("promEscape = %q", got)
	}
}

func TestMetricsJSONCodec(t *testing.T) {
	o := New()
	o.SetClock(&fakeClock{now: time.Second})
	o.Counter("c_total", "kind", "x").Add(2)
	o.Gauge("g").Set(-4)
	h := o.Histogram("h_ns")
	h.Observe(1)
	h.Observe(3)
	o.RecordPhase("verify", time.Second, 3*time.Second, 5*time.Millisecond)

	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap SnapshotJSON
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid snapshot JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]MetricJSON{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	c := byName["c_total"]
	if c.Kind != "counter" || c.Value != 2 || c.Labels["kind"] != "x" {
		t.Errorf("counter = %+v", c)
	}
	if g := byName["g"]; g.Kind != "gauge" || g.Value != -4 {
		t.Errorf("gauge = %+v", g)
	}
	hj := byName["h_ns"]
	if hj.Kind != "histogram" || hj.Count != 2 || hj.Sum != 4 {
		t.Errorf("histogram = %+v", hj)
	}
	// Buckets are cumulative: le=1 count 1, le=3 count 2.
	if len(hj.Buckets) != 2 || hj.Buckets[0] != (BucketJSON{LE: 1, Count: 1}) ||
		hj.Buckets[1] != (BucketJSON{LE: 3, Count: 2}) {
		t.Errorf("buckets = %+v", hj.Buckets)
	}
	if len(snap.Phases) != 1 || snap.Phases[0] != (PhaseJSON{
		Name: "verify", VStartNS: 1e9, VEndNS: 3e9, VDurNS: 2e9, WallNS: 5e6,
	}) {
		t.Errorf("phases = %+v", snap.Phases)
	}

	// Nil observer still yields a valid, empty snapshot.
	var nilObs *Observer
	var nb bytes.Buffer
	if err := nilObs.WriteJSON(&nb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(nb.Bytes(), &snap); err != nil {
		t.Errorf("nil-observer snapshot invalid: %v", err)
	}
}
