package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter not zero")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge not zero")
	}
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram not zero")
	}
	var o *Observer
	o.Emit(Event{Type: EvConverged})
	o.SetClock(nil)
	o.RecordPhase("x", 0, 0, 0)
	o.StartPhase("y").End()
	if o.Enabled() || o.Events() != nil || o.Phases() != nil || o.Metrics() != nil {
		t.Error("nil observer leaked state")
	}
	if err := o.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	var r *Registry
	if r.Counter("a") != nil || r.Gauge("b") != nil || r.Histogram("c") != nil {
		t.Error("nil registry handed out non-nil handles")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
}

func TestHistogramBucketMath(t *testing.T) {
	cases := []struct {
		v    int64
		want int // bucket index
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3},
		{8, 4}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Each bucket's lower bound round-trips: a value at BucketLow(i) lands
	// in bucket i, and BucketLow(i+1)-1 still lands in bucket i.
	for i := 1; i < 20; i++ {
		low := BucketLow(i)
		if got := bucketIndex(low); got != i {
			t.Errorf("bucketIndex(BucketLow(%d)=%d) = %d", i, low, got)
		}
		if got := bucketIndex(2*low - 1); got != i {
			t.Errorf("bucketIndex(%d) = %d, want %d", 2*low-1, got, i)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %d", h.Sum())
	}
	// Power-of-two buckets: rank 50 falls in bucket [32,64), whose
	// exclusive upper bound is 63; rank 99/100 in [64,128) -> 127.
	if got := h.Quantile(0.5); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	if got := h.Quantile(0.99); got != 127 {
		t.Errorf("p99 = %d, want 127", got)
	}
	lows, counts := h.Buckets()
	if len(lows) != len(counts) || len(lows) == 0 {
		t.Fatalf("buckets: %v %v", lows, counts)
	}
	var total uint64
	for i, c := range counts {
		total += c
		if i > 0 && lows[i] <= lows[i-1] {
			t.Error("bucket lows not ascending")
		}
	}
	if total != 100 {
		t.Errorf("bucket counts sum to %d", total)
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	var h Histogram
	h.Observe(-3)
	h.Observe(0)
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 0 {
		t.Errorf("sum = %d, want 0 (non-positive values excluded)", h.Sum())
	}
	if h.Quantile(1.0) != 0 {
		t.Errorf("q1.0 = %d, want 0", h.Quantile(1.0))
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	var r Registry
	if r.Counter("x") != r.Counter("x") {
		t.Error("same-name counters differ")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Error("same-name gauges differ")
	}
	if r.Histogram("z") != r.Histogram("z") {
		t.Error("same-name histograms differ")
	}
	r.Counter("x").Add(2)
	r.Gauge("y").Set(-1)
	r.Histogram("z").Observe(9)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot: %+v", snap)
	}
	names := r.Names()
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Error("names not sorted")
		}
	}
}

type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func TestEmitStampsVirtualTime(t *testing.T) {
	o := New()
	clk := &fakeClock{}
	o.SetClock(clk)
	clk.now = 5 * time.Second
	o.Emit(Event{Type: EvPodReady, Device: "r1"})
	// A nonzero At is kept verbatim.
	o.Emit(Event{At: time.Second, Type: EvConverged})
	evs := o.Events()
	if len(evs) != 2 || evs[0].At != 5*time.Second || evs[1].At != time.Second {
		t.Fatalf("events = %+v", evs)
	}
}

func TestWriteJSONLFormat(t *testing.T) {
	o := New()
	o.SetClock(&fakeClock{now: 3 * time.Millisecond})
	o.Emit(Event{Type: EvBGPSession, Device: "r1", Peer: "10.0.0.1", Detail: "OpenConfirm>Established"})
	o.Emit(Event{Type: EvLSPFlood, Device: "r2", Value: 3})
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e != (Event{At: 3 * time.Millisecond, Type: EvBGPSession, Device: "r1", Peer: "10.0.0.1", Detail: "OpenConfirm>Established"}) {
		t.Errorf("round-trip = %+v", e)
	}
	if !strings.Contains(lines[0], `"at_ns":3000000`) {
		t.Errorf("virtual-time field missing: %s", lines[0])
	}

	// Identical emissions serialize byte-identically.
	o2 := New()
	o2.SetClock(&fakeClock{now: 3 * time.Millisecond})
	o2.Emit(Event{Type: EvBGPSession, Device: "r1", Peer: "10.0.0.1", Detail: "OpenConfirm>Established"})
	o2.Emit(Event{Type: EvLSPFlood, Device: "r2", Value: 3})
	var buf2 bytes.Buffer
	if err := o2.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("same emissions produced different bytes")
	}
}

func TestMetricsOnlyDiscardsTrace(t *testing.T) {
	o := NewMetricsOnly()
	if o.Enabled() {
		t.Error("metrics-only observer reports Enabled")
	}
	o.Emit(Event{Type: EvPodReady})
	if len(o.Events()) != 0 {
		t.Error("metrics-only observer kept events")
	}
	o.Counter("c").Inc()
	if o.Counter("c").Value() != 1 {
		t.Error("metrics-only observer dropped metrics")
	}
}

func TestPhases(t *testing.T) {
	o := New()
	clk := &fakeClock{}
	o.SetClock(clk)
	s := o.StartPhase("parse")
	clk.now = 2 * time.Second
	s.End()
	o.RecordPhase("boot", 2*time.Second, 10*time.Second, 123*time.Microsecond)
	ph := o.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %+v", ph)
	}
	if ph[0].Name != "parse" || ph[0].VDur() != 2*time.Second {
		t.Errorf("parse phase = %+v", ph[0])
	}
	if ph[1].VStart != 2*time.Second || ph[1].VEnd != 10*time.Second || ph[1].Wall != 123*time.Microsecond {
		t.Errorf("boot phase = %+v", ph[1])
	}
	// Span events bracket each phase at the correct virtual instants.
	evs := o.Events()
	if len(evs) != 4 || evs[0].Type != EvSpanStart || evs[1].Type != EvSpanEnd ||
		evs[1].Value != int64(2*time.Second) || evs[3].At != 10*time.Second {
		t.Errorf("span events = %+v", evs)
	}
	if !strings.Contains(o.PhaseTable(), "parse") {
		t.Error("PhaseTable missing phase")
	}
}

func TestTables(t *testing.T) {
	o := New()
	o.Counter("bgp_updates_total").Add(3)
	o.Histogram("spf_ns").Observe(100)
	tbl := o.MetricsTable()
	if !strings.Contains(tbl, "bgp_updates_total") || !strings.Contains(tbl, "count=1") {
		t.Errorf("MetricsTable:\n%s", tbl)
	}
}

// TestNoOpZeroAllocs pins the disabled-path contract: a nil observer and nil
// metric handles must not allocate, so uninstrumented runs pay only nil
// checks.
func TestNoOpZeroAllocs(t *testing.T) {
	var o *Observer
	var c *Counter
	var g *Gauge
	var h *Histogram
	ev := Event{Type: EvBGPSession, Device: "r1", Detail: "Idle>OpenSent"}
	if n := testing.AllocsPerRun(100, func() {
		if o.Enabled() {
			o.Emit(ev)
		}
		c.Inc()
		c.Add(2)
		g.Set(1)
		h.Observe(42)
	}); n != 0 {
		t.Errorf("no-op path allocates %v per op", n)
	}
}

// TestHotPathZeroAllocs pins the enabled metrics hot path: pre-resolved
// handles record atomically without allocating.
func TestHotPathZeroAllocs(t *testing.T) {
	o := NewMetricsOnly()
	c := o.Counter("c")
	h := o.Histogram("h")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(17)
	}); n != 0 {
		t.Errorf("metrics hot path allocates %v per op", n)
	}
}
