// Package chaos is a deterministic, virtual-time fault-injection engine:
// it schedules faults — link flaps, router pod crashes, kube node failures,
// BGP session resets, probabilistic loss/delay — against a running
// emulation and verifies invariants across the churn. After each fault
// settles, it snapshots every router's AFT and runs differential
// reachability against the pre-fault baseline, producing a per-fault
// verdict timeline: flows lost, flows recovered, reconvergence time on the
// virtual clock. Because every source of randomness is the emulation's
// seeded RNG, a scenario replays bit-identically: same seed + same scenario
// ⇒ same fault timeline, same traces.
package chaos

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind names a fault type.
type Kind string

// Fault kinds.
const (
	// KindLinkCut administratively fails a link and never restores it —
	// the partition question.
	KindLinkCut Kind = "link-cut"
	// KindLinkFlap bounces a link down/up Flaps times with per-flap
	// jittered dwell, ending up.
	KindLinkFlap Kind = "link-flap"
	// KindPodCrash kills a router pod; kube reschedules it and the router
	// reboots from its config.
	KindPodCrash Kind = "pod-crash"
	// KindNodeFail fails a kube worker for Duration, evicting and
	// rescheduling every resident pod, then recovers the node.
	KindNodeFail Kind = "node-fail"
	// KindBGPReset drops every BGP session on a router ("clear ip bgp *").
	KindBGPReset Kind = "bgp-reset"
	// KindLinkDegrade imposes probabilistic loss and extra delay on a link
	// for Duration, then clears it.
	KindLinkDegrade Kind = "link-degrade"
	// KindCorruptConfig pushes a corrupted configuration onto a router past
	// the parse-first fail-safe; an unparseable config quarantines the
	// router permanently (shut down, never rescheduled).
	KindCorruptConfig Kind = "corrupt-config"
)

// Fault is one timed fault specification. After is the virtual delay from
// the previous fault's settled point (or from scenario start for the first
// fault). Link targets use "node:interface" endpoint syntax; either end of
// the link works.
type Fault struct {
	Kind  Kind          `json:"kind"`
	After time.Duration `json:"after_ns,omitempty"`
	// Node targets a router (pod-crash, bgp-reset) or a kube worker
	// (node-fail).
	Node string `json:"node,omitempty"`
	// Link targets a link by endpoint, e.g. "r2:Ethernet2".
	Link string `json:"link,omitempty"`
	// Duration is the dwell per flap half-cycle (link-flap), the outage
	// length (node-fail), or the impairment window (link-degrade).
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Flaps is the number of down/up cycles for link-flap (default 1).
	Flaps int `json:"flaps,omitempty"`
	// LossPct and ExtraDelay parameterize link-degrade.
	LossPct    int           `json:"loss_pct,omitempty"`
	ExtraDelay time.Duration `json:"extra_delay_ns,omitempty"`
	// Config is the corrupted configuration text for corrupt-config; empty
	// selects a deterministic built-in garbage payload.
	Config string `json:"config,omitempty"`
}

// Describe renders the fault for traces and reports: "pod-crash r3",
// "link-degrade r1:Ethernet1 30% +10ms".
func (f Fault) Describe() string {
	target := f.Node
	if f.Link != "" {
		target = f.Link
	}
	s := fmt.Sprintf("%s %s", f.Kind, target)
	switch f.Kind {
	case KindLinkFlap:
		if f.Flaps > 1 {
			s += fmt.Sprintf(" x%d", f.Flaps)
		}
	case KindLinkDegrade:
		s += fmt.Sprintf(" %d%% +%v", f.LossPct, f.ExtraDelay)
	}
	return s
}

// validate checks the fault references the right target field.
func (f Fault) validate() error {
	switch f.Kind {
	case KindLinkCut, KindLinkFlap, KindLinkDegrade:
		if f.Link == "" {
			return fmt.Errorf("chaos: %s fault needs a link target", f.Kind)
		}
	case KindPodCrash, KindNodeFail, KindBGPReset, KindCorruptConfig:
		if f.Node == "" {
			return fmt.Errorf("chaos: %s fault needs a node target", f.Kind)
		}
	default:
		return fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
	}
	if f.Kind == KindLinkDegrade && (f.LossPct < 0 || f.LossPct > 100) {
		return fmt.Errorf("chaos: loss_pct %d out of range", f.LossPct)
	}
	return nil
}

// Scenario is a named, seeded sequence of timed faults.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed overrides the run's simulation seed when non-zero, making the
	// scenario self-contained and replayable.
	Seed int64 `json:"seed,omitempty"`
	// SpareNodes asks the emulator for extra empty kube workers, so
	// node-fail faults have somewhere to reschedule evicted pods.
	SpareNodes int `json:"spare_nodes,omitempty"`
	// SettleHold and SettleTimeout tune post-fault quiescence detection
	// (defaults: 2m hold — longer than the BGP HoldTime, so silent link
	// cuts are observed through their hold-timer expiry — and 30m timeout,
	// both in virtual time).
	SettleHold    time.Duration `json:"settle_hold_ns,omitempty"`
	SettleTimeout time.Duration `json:"settle_timeout_ns,omitempty"`
	Faults        []Fault       `json:"faults"`
}

// Validate checks every fault specification.
func (s *Scenario) Validate() error {
	if len(s.Faults) == 0 {
		return fmt.Errorf("chaos: scenario %q has no faults", s.Name)
	}
	for i, f := range s.Faults {
		if err := f.validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// Parse decodes a scenario from JSON and validates it.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Marshal encodes the scenario as indented JSON.
func (s *Scenario) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Verdict is the per-fault outcome of differential verification.
type Verdict struct {
	Fault Fault `json:"fault"`
	// InjectedAt/ClearedAt/SettledAt are virtual timestamps; ClearedAt is
	// zero for permanent faults (link-cut).
	InjectedAt time.Duration `json:"injected_at_ns"`
	ClearedAt  time.Duration `json:"cleared_at_ns,omitempty"`
	SettledAt  time.Duration `json:"settled_at_ns"`
	// ReconvergedIn is SettledAt-InjectedAt: how long the network took to
	// reach its final stable state after injection, on the virtual clock.
	ReconvergedIn time.Duration `json:"reconverged_in_ns"`
	// FlowsLostTransient counts (source, class) flows delivered in the
	// pre-fault baseline but lost at fault impact; FlowsLost counts those
	// still lost after the fault cleared and the network settled;
	// FlowsRecovered is the difference.
	FlowsLostTransient int `json:"flows_lost_transient"`
	FlowsLost          int `json:"flows_lost"`
	FlowsRecovered     int `json:"flows_recovered"`
	// RoutesLost/RoutesRecovered count forwarding entries (summed over all
	// routers) missing at impact and restored by the final settle.
	RoutesLost      int `json:"routes_lost"`
	RoutesRecovered int `json:"routes_recovered"`
	// Recovered is true when no flow loss survived the fault.
	Recovered bool `json:"recovered"`
	// Degraded lists routers that had not settled when the post-fault wait
	// timed out.
	Degraded []string `json:"degraded,omitempty"`
	// Quarantined lists routers contained after hostile input (corrupted
	// config, escaped handler panic) as of this fault's settle point. A
	// quarantined router is permanently down, so its flow loss is expected
	// and the verdict still reports NOT RECOVERED.
	Quarantined []string `json:"quarantined,omitempty"`
	// Diffs are the surviving per-flow outcome changes vs the pre-fault
	// baseline ("r5 -> 2.2.2.1: Delivered@r2 => NoRoute@r5").
	Diffs []string `json:"diffs,omitempty"`
}

// Report is the full scenario outcome.
type Report struct {
	Scenario   string        `json:"scenario"`
	Seed       int64         `json:"seed,omitempty"`
	StartedAt  time.Duration `json:"started_at_ns"`
	FinishedAt time.Duration `json:"finished_at_ns"`
	Verdicts   []Verdict     `json:"verdicts"`
	// PermanentFlowsLost compares the final network against the pre-chaos
	// baseline: flows that never came back.
	PermanentFlowsLost int `json:"permanent_flows_lost"`
	// Recovered is true when the network ended where it started.
	Recovered bool `json:"recovered"`
	// Interrupted is true when a wall-clock budget canceled the scenario
	// before every fault ran; Verdicts then covers only the completed ones.
	Interrupted bool `json:"interrupted,omitempty"`
}

// String renders the verdict timeline as a fixed-width table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos scenario %q: %d fault(s), %v virtual time\n",
		r.Scenario, len(r.Verdicts), r.FinishedAt-r.StartedAt)
	fmt.Fprintf(&b, "%-32s %12s %12s %10s %8s %8s  %s\n",
		"FAULT", "INJECTED", "RECONVERGED", "LOST", "RECOV", "PERM", "STATUS")
	for _, v := range r.Verdicts {
		status := "recovered"
		if !v.Recovered {
			status = "NOT RECOVERED"
		}
		if len(v.Degraded) > 0 {
			status += " (degraded: " + strings.Join(v.Degraded, ",") + ")"
		}
		if len(v.Quarantined) > 0 {
			status += " (quarantined: " + strings.Join(v.Quarantined, ",") + ")"
		}
		fmt.Fprintf(&b, "%-32s %12v %12v %10d %8d %8d  %s\n",
			v.Fault.Describe(), v.InjectedAt, v.ReconvergedIn,
			v.FlowsLostTransient, v.FlowsRecovered, v.FlowsLost, status)
	}
	if r.Interrupted {
		fmt.Fprintf(&b, "scenario interrupted by wall-clock budget; %d fault(s) scored\n", len(r.Verdicts))
	}
	if r.PermanentFlowsLost > 0 {
		fmt.Fprintf(&b, "permanent flow loss vs pre-chaos baseline: %d\n", r.PermanentFlowsLost)
	} else if !r.Interrupted {
		fmt.Fprintf(&b, "network fully recovered to pre-chaos reachability\n")
	}
	return b.String()
}

// Builtin returns a named built-in scenario (a deep copy, safe to mutate).
func Builtin(name string) (*Scenario, bool) {
	for _, s := range builtins {
		if s.Name == name {
			cp := *s
			cp.Faults = append([]Fault(nil), s.Faults...)
			return &cp, true
		}
	}
	return nil, false
}

// Builtins returns the built-in scenarios sorted by name.
func Builtins() []*Scenario {
	out := make([]*Scenario, 0, len(builtins))
	for _, s := range builtins {
		cp, _ := Builtin(s.Name)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// The built-in scenarios target the paper's Fig. 2 testnet (6 routers,
// 3 ASes) but run on any topology with matching node/link names.
var builtins = []*Scenario{
	{
		Name:        "crash-reboot",
		Description: "crash r3's pod mid-run; kube reschedules it, the router reboots and sessions re-establish with zero permanent loss",
		Seed:        42,
		Faults:      []Fault{{Kind: KindPodCrash, Node: "r3", After: 10 * time.Second}},
	},
	{
		Name:        "partition",
		Description: "cut the r2-r3 bridge link, permanently partitioning AS65003; the loss is reported as not recovered",
		Seed:        42,
		Faults:      []Fault{{Kind: KindLinkCut, Link: "r2:Ethernet2", After: 10 * time.Second}},
	},
	{
		Name:        "flap",
		Description: "flap the r6-r1 inter-AS link twice with jittered dwell; routes converge back after the final up",
		Seed:        42,
		Faults:      []Fault{{Kind: KindLinkFlap, Link: "r6:Ethernet2", After: 10 * time.Second, Flaps: 2, Duration: 5 * time.Second}},
	},
	{
		Name:        "session-reset",
		Description: "hard-reset every BGP session on r2; the prober re-establishes them",
		Seed:        42,
		Faults:      []Fault{{Kind: KindBGPReset, Node: "r2", After: 10 * time.Second}},
	},
	{
		Name:        "lossy-core",
		Description: "30% loss and +10ms on the r1-r2 core link for a minute, then clear",
		Seed:        42,
		Faults: []Fault{{
			Kind: KindLinkDegrade, Link: "r1:Ethernet1", After: 10 * time.Second,
			Duration: time.Minute, LossPct: 30, ExtraDelay: 10 * time.Millisecond,
		}},
	},
	{
		Name:        "corrupt-config",
		Description: "push a corrupted config to r4; the parser rejects it, the router is quarantined (shut down, never rescheduled), and the run completes with a degraded verdict",
		Seed:        42,
		Faults:      []Fault{{Kind: KindCorruptConfig, Node: "r4", After: 10 * time.Second}},
	},
	{
		Name:        "node-outage",
		Description: "fail kube worker node1 for two minutes; resident pods evict, reschedule, and reboot elsewhere",
		Seed:        42,
		SpareNodes:  1,
		Faults:      []Fault{{Kind: KindNodeFail, Node: "node1", After: 10 * time.Second, Duration: 2 * time.Minute}},
	},
}
