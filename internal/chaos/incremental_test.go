package chaos

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"mfv/internal/kne"
	"mfv/internal/testnet"
)

// reportJSON boots a fresh Fig. 2 emulation from seed, executes sc with the
// given engine configuration, and returns the marshaled report. Fresh
// emulators per run keep the virtual timelines identical, so any report
// divergence is the verification path's fault.
func reportJSON(t *testing.T, seed int64, spare int, sc *Scenario, incremental bool, workers int) string {
	t.Helper()
	em := startFig2(t, seed, spare)
	en := NewEngine(em, testnet.Fig2(), nil).WithIncremental(incremental).WithWorkers(workers)
	rep, err := en.Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestIncrementalMatchesFullBuiltins: the incremental snapshot + delta
// differential path must produce byte-identical reports to the full-rebuild
// path on the builtin scenarios, including the pod-crash one that exercises
// the router-incarnation (epoch) handling and the permanent partition.
func TestIncrementalMatchesFullBuiltins(t *testing.T) {
	for _, name := range []string{"crash-reboot", "partition", "session-reset"} {
		sc, ok := Builtin(name)
		if !ok {
			t.Fatalf("no builtin %q", name)
		}
		full := reportJSON(t, 42, 0, sc, false, 1)
		incr := reportJSON(t, 42, 0, sc, true, 1)
		if full != incr {
			t.Errorf("%s: incremental report differs from full:\n%s\n%s", name, full, incr)
		}
	}
}

// TestIncrementalDeterministicAcrossWorkers: the delta path's report is
// byte-identical for workers 1, 2, and 8, and matches the full recompute.
func TestIncrementalDeterministicAcrossWorkers(t *testing.T) {
	sc, _ := Builtin("flap")
	ref := reportJSON(t, 7, 0, sc, false, 1)
	for _, w := range []int{1, 2, 8} {
		if got := reportJSON(t, 7, 0, sc, true, w); got != ref {
			t.Errorf("workers=%d: incremental report differs from full:\n%s\n%s", w, ref, got)
		}
	}
}

// TestQuickIncrementalMatchesFullRandomFaults: seeded random fault
// sequences drawn from a pool of valid Fig. 2 faults must score identically
// under full and incremental verification. This is the fault-sequence half
// of the delta-equivalence acceptance check (the random-network half lives
// in internal/verify).
func TestQuickIncrementalMatchesFullRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-boot equivalence sweep")
	}
	pool := []Fault{
		{Kind: KindLinkFlap, Link: "r6:Ethernet2", Flaps: 2, Duration: 5 * time.Second},
		{Kind: KindBGPReset, Node: "r2"},
		{Kind: KindLinkCut, Link: "r2:Ethernet2"},
		{Kind: KindPodCrash, Node: "r3"},
		{Kind: KindLinkDegrade, Link: "r1:Ethernet1", LossPct: 30, ExtraDelay: 10 * time.Millisecond, Duration: time.Minute},
	}
	for _, seed := range []int64{3, 11} {
		r := rand.New(rand.NewSource(seed))
		sc := &Scenario{Name: "random", Seed: seed}
		for i := 0; i < 2; i++ {
			f := pool[r.Intn(len(pool))]
			f.After = time.Duration(1+r.Intn(20)) * time.Second
			sc.Faults = append(sc.Faults, f)
		}
		full := reportJSON(t, seed, 0, sc, false, 1)
		incr := reportJSON(t, seed, 0, sc, true, 2)
		if full != incr {
			t.Errorf("seed %d (%v): incremental report differs from full:\n%s\n%s",
				seed, sc.Faults, full, incr)
		}
	}
}

// TestStampDiff covers the dirty-set derivation directly: changed
// generations, changed epochs (rebuilt router), and one-sided devices all
// count as dirty; identical stamps do not.
func TestStampDiff(t *testing.T) {
	a := map[string]kne.GenStamp{
		"r1": {Epoch: 0, Gen: 5},
		"r2": {Epoch: 0, Gen: 7},
		"r3": {Epoch: 1, Gen: 2},
		"r5": {Epoch: 0, Gen: 1},
	}
	b := map[string]kne.GenStamp{
		"r1": {Epoch: 0, Gen: 5}, // clean
		"r2": {Epoch: 0, Gen: 8}, // generation moved
		"r3": {Epoch: 2, Gen: 2}, // rebuilt: epoch moved, gen reset
		"r4": {Epoch: 0, Gen: 1}, // new
	}
	got := stampDiff(a, b)
	want := []string{"r2", "r3", "r4", "r5"}
	if len(got) != len(want) {
		t.Fatalf("stampDiff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stampDiff = %v, want %v", got, want)
		}
	}
	if d := stampDiff(a, a); len(d) != 0 {
		t.Errorf("stampDiff(x, x) = %v", d)
	}
}
