package chaos

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"mfv/internal/kne"
	"mfv/internal/snapchain"
	"mfv/internal/testnet"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// reportJSON boots a fresh Fig. 2 emulation from seed, executes sc with the
// given engine configuration, and returns the marshaled report. Fresh
// emulators per run keep the virtual timelines identical, so any report
// divergence is the verification path's fault.
func reportJSON(t *testing.T, seed int64, spare int, sc *Scenario, incremental bool, workers int) string {
	t.Helper()
	em := startFig2(t, seed, spare)
	en := NewEngine(em, testnet.Fig2(), nil).WithIncremental(incremental).WithWorkers(workers)
	rep, err := en.Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestIncrementalMatchesFullBuiltins: the incremental snapshot + delta
// differential path must produce byte-identical reports to the full-rebuild
// path on the builtin scenarios, including the pod-crash one that exercises
// the router-incarnation (epoch) handling and the permanent partition.
func TestIncrementalMatchesFullBuiltins(t *testing.T) {
	for _, name := range []string{"crash-reboot", "partition", "session-reset"} {
		sc, ok := Builtin(name)
		if !ok {
			t.Fatalf("no builtin %q", name)
		}
		full := reportJSON(t, 42, 0, sc, false, 1)
		incr := reportJSON(t, 42, 0, sc, true, 1)
		if full != incr {
			t.Errorf("%s: incremental report differs from full:\n%s\n%s", name, full, incr)
		}
	}
}

// TestIncrementalDeterministicAcrossWorkers: the delta path's report is
// byte-identical for workers 1, 2, and 8, and matches the full recompute.
func TestIncrementalDeterministicAcrossWorkers(t *testing.T) {
	sc, _ := Builtin("flap")
	ref := reportJSON(t, 7, 0, sc, false, 1)
	for _, w := range []int{1, 2, 8} {
		if got := reportJSON(t, 7, 0, sc, true, w); got != ref {
			t.Errorf("workers=%d: incremental report differs from full:\n%s\n%s", w, ref, got)
		}
	}
}

// TestQuickIncrementalMatchesFullRandomFaults: seeded random fault
// sequences drawn from a pool of valid Fig. 2 faults must score identically
// under full and incremental verification. This is the fault-sequence half
// of the delta-equivalence acceptance check (the random-network half lives
// in internal/verify).
func TestQuickIncrementalMatchesFullRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-boot equivalence sweep")
	}
	pool := []Fault{
		{Kind: KindLinkFlap, Link: "r6:Ethernet2", Flaps: 2, Duration: 5 * time.Second},
		{Kind: KindBGPReset, Node: "r2"},
		{Kind: KindLinkCut, Link: "r2:Ethernet2"},
		{Kind: KindPodCrash, Node: "r3"},
		{Kind: KindLinkDegrade, Link: "r1:Ethernet1", LossPct: 30, ExtraDelay: 10 * time.Millisecond, Duration: time.Minute},
	}
	for _, seed := range []int64{3, 11} {
		r := rand.New(rand.NewSource(seed))
		sc := &Scenario{Name: "random", Seed: seed}
		for i := 0; i < 2; i++ {
			f := pool[r.Intn(len(pool))]
			f.After = time.Duration(1+r.Intn(20)) * time.Second
			sc.Faults = append(sc.Faults, f)
		}
		full := reportJSON(t, seed, 0, sc, false, 1)
		incr := reportJSON(t, seed, 0, sc, true, 2)
		if full != incr {
			t.Errorf("seed %d (%v): incremental report differs from full:\n%s\n%s",
				seed, sc.Faults, full, incr)
		}
	}
}

// TestIncrementalSimultaneousMultiFault: the sweep engine applies a k=2
// candidate's faults back-to-back with no settle in between, so the delta
// path must stay byte-identical to the full recompute when two faults land
// simultaneously and their dirty sets overlap (the case the per-fault
// equivalence tests above never produce). Each case boots a fresh Fig. 2,
// injects both faults on the unsettled network, settles once, and compares
// DeltaDifferential over the combined dirty set against a full rebuild +
// full differential, across worker counts.
func TestIncrementalSimultaneousMultiFault(t *testing.T) {
	cut := func(link string) func(t *testing.T, em *kne.Emulator) {
		return func(t *testing.T, em *kne.Emulator) {
			ep, err := topology.ParseEndpoint(link)
			if err != nil {
				t.Fatal(err)
			}
			if err := em.SetLinkDown(ep); err != nil {
				t.Fatal(err)
			}
		}
	}
	cases := []struct {
		name   string
		faults []func(t *testing.T, em *kne.Emulator)
	}{
		// Both cuts force SPF recomputation across the shared core: the
		// dirty sets intersect on every transit router.
		{"two-link-cuts", []func(t *testing.T, em *kne.Emulator){
			cut("r2:Ethernet2"), cut("r6:Ethernet2"),
		}},
		// The cut and the session teardown both dirty r2 and its peers.
		{"link-cut-plus-bgp-reset", []func(t *testing.T, em *kne.Emulator){
			cut("r2:Ethernet2"),
			func(t *testing.T, em *kne.Emulator) {
				if err := em.ResetBGP("r2"); err != nil {
					t.Fatal(err)
				}
			},
		}},
		// The crash's withdrawal wave and the cut's reroute overlap; the
		// reboot also exercises the epoch-bump path mid-candidate.
		{"pod-crash-plus-link-cut", []func(t *testing.T, em *kne.Emulator){
			func(t *testing.T, em *kne.Emulator) {
				if err := em.CrashRouter("r3"); err != nil {
					t.Fatal(err)
				}
			},
			cut("r1:Ethernet1"),
		}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2} {
			em := startFig2(t, 42, 0)
			topo := testnet.Fig2()
			baseNet, err := verify.NewNetwork(topo, em.AFTs())
			if err != nil {
				t.Fatal(err)
			}
			baseNet.SetWorkers(workers)
			baseStamps := em.FIBGenerations()
			for _, inject := range tc.faults {
				inject(t, em)
			}
			em.Settle(2*time.Minute, 30*time.Minute)
			afts := em.AFTs()
			dirty := snapchain.DiffStamps(baseStamps, em.FIBGenerations())
			if len(dirty) < 2 {
				t.Fatalf("%s: want overlapping multi-router dirty set, got %v", tc.name, dirty)
			}
			incrNet, err := baseNet.UpdateFrom(afts, dirty)
			if err != nil {
				t.Fatal(err)
			}
			incrNet.SetWorkers(workers)
			fullNet, err := verify.NewNetwork(topo, afts)
			if err != nil {
				t.Fatal(err)
			}
			fullNet.SetWorkers(workers)
			render := func(diffs []verify.Diff) string {
				var b []byte
				for _, d := range diffs {
					b = append(b, d.String()...)
					b = append(b, '\n')
				}
				return string(b)
			}
			delta := render(verify.DeltaDifferential(baseNet, incrNet, dirty))
			full := render(verify.Differential(baseNet, fullNet))
			if delta != full {
				t.Errorf("%s workers=%d: delta differential diverges from full\ndirty=%v\ndelta:\n%s\nfull:\n%s",
					tc.name, workers, dirty, delta, full)
			}
		}
	}
}
