package chaos

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"
	"time"

	"mfv/internal/kne"
	"mfv/internal/testnet"
)

// aftSnapshot renders every router's forwarding-table fingerprint as one
// deterministic string — the byte-identity witness for equivalence checks.
func aftSnapshot(em *kne.Emulator) string {
	var lines []string
	for _, r := range em.Routers() {
		lines = append(lines, r.Name+" "+r.ExportAFT().Fingerprint())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestQuarantineEquivalentToShutdown is the quickcheck for the containment
// contract: a quarantined router must be protocol-indistinguishable from one
// whose control plane simply shut down — neighbors converge to byte-identical
// forwarding state — and the chaos engine must produce byte-identical
// snapshots and verdicts at any worker count, with incremental verification
// on or off.
func TestQuarantineEquivalentToShutdown(t *testing.T) {
	// Reference: same network, same seed, r4's control plane shut down
	// directly (the state a dead pod leaves behind), no engine involved.
	ref := startFig2(t, 42, 0)
	r4, ok := ref.Router("r4")
	if !ok {
		t.Fatal("r4 missing")
	}
	r4.Shutdown()
	ref.Settle(2*time.Minute, 30*time.Minute)
	want := aftSnapshot(ref)
	if !strings.Contains(want, "r4") {
		t.Fatalf("reference snapshot misses r4:\n%s", want)
	}

	sc, ok := Builtin("corrupt-config")
	if !ok {
		t.Fatal("corrupt-config builtin missing")
	}
	var verdicts []string
	for _, workers := range []int{1, 2, 8} {
		for _, incremental := range []bool{true, false} {
			em := startFig2(t, 42, 0)
			en := NewEngine(em, testnet.Fig2(), nil).WithWorkers(workers).WithIncremental(incremental)
			rep, err := en.Execute(sc)
			if err != nil {
				t.Fatalf("workers=%d incremental=%v: %v", workers, incremental, err)
			}
			if got := em.QuarantinedRouters(); len(got) != 1 || got[0] != "r4" {
				t.Fatalf("workers=%d incremental=%v: quarantined = %v, want [r4]", workers, incremental, got)
			}
			if got := aftSnapshot(em); got != want {
				t.Errorf("workers=%d incremental=%v: quarantined snapshot differs from the shutdown reference\n got:\n%s\nwant:\n%s",
					workers, incremental, got, want)
			}
			v, err := json.Marshal(rep.Verdicts)
			if err != nil {
				t.Fatal(err)
			}
			verdicts = append(verdicts, string(v))
		}
	}
	for i := 1; i < len(verdicts); i++ {
		if verdicts[i] != verdicts[0] {
			t.Errorf("verdict %d differs across the workers x incremental matrix:\n%s\nvs\n%s",
				i, verdicts[i], verdicts[0])
		}
	}
}
