package chaos

import (
	"context"
	"fmt"
	"time"

	"mfv/internal/kne"
	"mfv/internal/obs"
	"mfv/internal/snapchain"
	"mfv/internal/topology"
)

// defaultCorruptConfig is the deterministic garbage payload corrupt-config
// faults push when the scenario supplies no Config of its own: no vendor
// parser accepts it, so the target router is always quarantined.
const defaultCorruptConfig = "!! flash corruption artifact\n" +
	"interface Ethernet999\n" +
	"   ip address 999.999.999.999/99\n" +
	"florble gork\n" +
	"\x00\x01\x7f garbled trailer\n"

// Engine executes scenarios against a running emulation. The emulator must
// already be started and converged; Execute advances virtual time itself.
// Snapshotting and differential scoring run on a snapchain.Chain, the same
// substrate the sweep engine chains candidates on.
type Engine struct {
	em    *kne.Emulator
	topo  *topology.Topology
	obs   *obs.Observer
	chain *snapchain.Chain
	ctx   context.Context

	hold, timeout time.Duration
}

// NewEngine builds an engine over an emulator. The observer may be nil.
func NewEngine(em *kne.Emulator, topo *topology.Topology, o *obs.Observer) *Engine {
	return &Engine{em: em, topo: topo, obs: o, chain: snapchain.New(em, topo, o)}
}

// WithWorkers sizes the worker pool the per-fault differential queries run
// on (0 = GOMAXPROCS) and returns the engine for chaining.
func (en *Engine) WithWorkers(w int) *Engine {
	en.chain.SetWorkers(w)
	return en
}

// WithIncremental toggles the incremental snapshot + delta-differential
// path (on by default). Disabling forces a full network rebuild and a full
// differential per fault — the reference the equivalence tests and the
// BenchmarkChaosFaultLoop comparison run against.
func (en *Engine) WithIncremental(on bool) *Engine {
	en.chain.SetIncremental(on)
	return en
}

// WithContext bounds the scenario by a cancelable context: when it expires
// the engine stops injecting further faults and Execute returns the partial
// report with Interrupted set. A nil context means no bound.
func (en *Engine) WithContext(ctx context.Context) *Engine {
	en.ctx = ctx
	return en
}

func (en *Engine) interrupted() bool {
	return en.ctx != nil && en.ctx.Err() != nil
}

// Execute runs the scenario: for each fault, advance virtual time by its
// After offset, inject it, let the network settle, snapshot AFTs, and run
// differential reachability against the pre-fault baseline. Faults execute
// in listed order; each fault's baseline is the settled state the previous
// fault left behind, while the report's permanent-loss figure compares the
// final state against the pre-chaos network.
func (en *Engine) Execute(sc *Scenario) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	en.hold = sc.SettleHold
	if en.hold == 0 {
		// The default hold must exceed the BGP HoldTime (90s): a silently
		// cut link tears sessions down only when the hold timer expires,
		// and a shorter quiet window would snapshot "impact" before the
		// withdrawals even begin.
		en.hold = 2 * time.Minute
	}
	en.timeout = sc.SettleTimeout
	if en.timeout == 0 {
		en.timeout = 30 * time.Minute
	}
	rep := &Report{Scenario: sc.Name, Seed: sc.Seed, StartedAt: en.em.Sim().Now()}
	initial, err := en.chain.Snapshot()
	if err != nil {
		return nil, err
	}
	baseline := initial
	for _, f := range sc.Faults {
		if en.interrupted() {
			rep.Interrupted = true
			break
		}
		if f.After > 0 {
			en.em.Sim().RunFor(f.After)
		}
		v, after, err := en.runFault(f, baseline)
		if err != nil {
			if en.interrupted() {
				// The budget expired mid-fault (typically inside a settle
				// or pod wait): salvage the verdicts already scored rather
				// than discard the run.
				rep.Interrupted = true
				break
			}
			return nil, err
		}
		rep.Verdicts = append(rep.Verdicts, *v)
		baseline = after
	}
	rep.FinishedAt = en.em.Sim().Now()
	rep.PermanentFlowsLost = len(snapchain.LostFlows(en.chain.Differential(initial, baseline)))
	rep.Recovered = rep.PermanentFlowsLost == 0 && !rep.Interrupted
	return rep, nil
}

// runFault injects one fault, waits out its lifecycle, and scores the
// outcome against baseline. It returns the verdict and the settled
// post-fault snapshot, which becomes the next fault's baseline.
func (en *Engine) runFault(f Fault, baseline snapchain.Snap) (*Verdict, snapchain.Snap, error) {
	em, clk := en.em, en.em.Sim()
	v := &Verdict{Fault: f, InjectedAt: clk.Now()}
	en.emit(obs.EvFaultInject, f)
	m := en.obs.Metrics()
	m.Gauge("chaos_faults_inflight").Add(1)
	defer m.Gauge("chaos_faults_inflight").Add(-1)

	fail := func(e error) (*Verdict, snapchain.Snap, error) { return nil, snapchain.Snap{}, e }
	clear := func() {
		v.ClearedAt = clk.Now()
		en.emit(obs.EvFaultClear, f)
	}
	var impact snapchain.Snap
	var conv kne.Convergence
	var err error

	switch f.Kind {
	case KindLinkCut:
		ep, perr := topology.ParseEndpoint(f.Link)
		if perr != nil {
			return fail(perr)
		}
		if err = em.SetLinkDown(ep); err != nil {
			return fail(err)
		}
		conv = em.Settle(en.hold, en.timeout)
		if impact, err = en.chain.Snapshot(); err != nil {
			return fail(err)
		}
		// Permanent fault: the impact state is the final state.

	case KindLinkFlap:
		ep, perr := topology.ParseEndpoint(f.Link)
		if perr != nil {
			return fail(perr)
		}
		flaps := f.Flaps
		if flaps < 1 {
			flaps = 1
		}
		dwell := f.Duration
		if dwell == 0 {
			dwell = 5 * time.Second
		}
		if err = em.SetLinkDown(ep); err != nil {
			return fail(err)
		}
		em.Settle(en.hold, en.timeout)
		if impact, err = en.chain.Snapshot(); err != nil {
			return fail(err)
		}
		for i := 1; i < flaps; i++ {
			if err = em.SetLinkUp(ep); err != nil {
				return fail(err)
			}
			clk.RunFor(en.jitter(dwell))
			if err = em.SetLinkDown(ep); err != nil {
				return fail(err)
			}
			clk.RunFor(en.jitter(dwell))
		}
		if err = em.SetLinkUp(ep); err != nil {
			return fail(err)
		}
		clear()
		conv = em.Settle(en.hold, en.timeout)

	case KindPodCrash:
		if err = em.CrashRouter(f.Node); err != nil {
			return fail(err)
		}
		// Impact settles while the replacement pod is still booting: the
		// neighbors' withdrawals are the fault's blast radius. A short
		// hold is essential — withdrawal churn (prober teardown, IS-IS
		// holding expiry) ends well before the ~90s reboot, and waiting
		// the full hold would snapshot the already-recovered network.
		em.Settle(en.impactHold(), en.timeout)
		if impact, err = en.chain.Snapshot(); err != nil {
			return fail(err)
		}
		if err = em.AwaitRunning(f.Node, en.timeout); err != nil {
			return fail(err)
		}
		clear()
		conv = em.Settle(en.hold, en.timeout)

	case KindNodeFail:
		evicted, ferr := em.FailKubeNode(f.Node)
		if ferr != nil {
			return fail(ferr)
		}
		// Same short-hold reasoning as pod-crash: measure the outage
		// before the evicted pods finish rebooting elsewhere.
		em.Settle(en.impactHold(), en.timeout)
		if impact, err = en.chain.Snapshot(); err != nil {
			return fail(err)
		}
		outage := f.Duration
		if outage == 0 {
			outage = time.Minute
		}
		if down := clk.Now() - v.InjectedAt; down < outage {
			clk.RunFor(outage - down)
		}
		if err = em.RecoverKubeNode(f.Node); err != nil {
			return fail(err)
		}
		for _, name := range evicted {
			if err = em.AwaitRunning(name, en.timeout); err != nil {
				return fail(err)
			}
		}
		clear()
		conv = em.Settle(en.hold, en.timeout)

	case KindBGPReset:
		if err = em.ResetBGP(f.Node); err != nil {
			return fail(err)
		}
		// Session teardown withdraws routes synchronously; snapshot the
		// transient hole before the prober restores the sessions.
		if impact, err = en.chain.Snapshot(); err != nil {
			return fail(err)
		}
		clear()
		conv = em.Settle(en.hold, en.timeout)

	case KindLinkDegrade:
		ep, perr := topology.ParseEndpoint(f.Link)
		if perr != nil {
			return fail(perr)
		}
		imp := kne.Impairment{LossPct: f.LossPct, ExtraDelay: f.ExtraDelay}
		if err = em.SetLinkImpairment(ep, imp); err != nil {
			return fail(err)
		}
		window := f.Duration
		if window == 0 {
			window = time.Minute
		}
		clk.RunFor(window)
		// Snapshot mid-impairment: a lossy link may never settle, so the
		// impact view is time-bounded rather than quiescence-bounded.
		if impact, err = en.chain.Snapshot(); err != nil {
			return fail(err)
		}
		if err = em.ClearLinkImpairment(ep); err != nil {
			return fail(err)
		}
		clear()
		conv = em.Settle(en.hold, en.timeout)

	case KindCorruptConfig:
		cfg := f.Config
		if cfg == "" {
			cfg = defaultCorruptConfig
		}
		if err = em.CorruptConfig(f.Node, cfg); err != nil {
			return fail(err)
		}
		// Quarantine is permanent — the router never reboots, so like
		// link-cut the settled impact state is the final state. The hold
		// window lets neighbors withdraw through hold-timer expiry.
		conv = em.Settle(en.hold, en.timeout)
		if impact, err = en.chain.Snapshot(); err != nil {
			return fail(err)
		}

	default:
		return fail(fmt.Errorf("chaos: unknown fault kind %q", f.Kind))
	}

	final, err := en.chain.Snapshot()
	if err != nil {
		return fail(err)
	}
	v.SettledAt = conv.ConvergedAt
	if v.SettledAt < v.InjectedAt {
		v.SettledAt = v.InjectedAt
	}
	v.ReconvergedIn = v.SettledAt - v.InjectedAt
	v.Degraded = conv.Stragglers
	v.Quarantined = conv.Quarantined

	impactLost := snapchain.LostFlows(en.chain.Differential(baseline, impact))
	finalDiffs := en.chain.Differential(baseline, final)
	finalLost := snapchain.LostFlows(finalDiffs)
	v.FlowsLostTransient = len(impactLost)
	v.FlowsLost = len(finalLost)
	for k := range impactLost {
		if !finalLost[k] {
			v.FlowsRecovered++
		}
	}
	if lost := baseline.Routes - impact.Routes; lost > 0 {
		v.RoutesLost = lost
		perm := baseline.Routes - final.Routes
		if perm < 0 {
			perm = 0
		}
		if rec := lost - perm; rec > 0 {
			v.RoutesRecovered = rec
		}
	}
	v.Recovered = v.FlowsLost == 0
	for _, d := range finalDiffs {
		v.Diffs = append(v.Diffs, d.String())
	}
	// Per-verdict metrics, labeled by fault kind so a mixed scenario's
	// verdicts stay separable on the live endpoint (PR 2 left this gap).
	m.Counter("chaos_faults_total", "kind", string(f.Kind)).Inc()
	m.Counter("chaos_faults_completed_total").Inc()
	m.Counter("chaos_flows_lost_total").Add(uint64(v.FlowsLost))
	m.Counter("chaos_flows_transient_total").Add(uint64(v.FlowsLostTransient))
	m.Counter("chaos_flows_recovered_total").Add(uint64(v.FlowsRecovered))
	m.Histogram("chaos_reconverge_ns", "kind", string(f.Kind)).Observe(int64(v.ReconvergedIn))
	if en.obs.Enabled() {
		en.obs.Emit(obs.Event{Type: obs.EvChaosVerdict, Detail: f.Describe(), Value: int64(v.FlowsLost)})
	}
	return v, final, nil
}

// impactHold bounds the quiet window for mid-fault impact snapshots: long
// enough to ride out withdrawal churn, short enough to finish before a
// rebooting pod (90s+) comes back and erases the evidence.
func (en *Engine) impactHold() time.Duration {
	const h = 30 * time.Second
	if en.hold < h {
		return en.hold
	}
	return h
}

// jitter perturbs a dwell by up to 25% drawn from the sim RNG: flap phasing
// varies across seeds while any single seed replays identically.
func (en *Engine) jitter(d time.Duration) time.Duration {
	return d + time.Duration(en.em.Sim().Rand().Int63n(int64(d)/4+1))
}

func (en *Engine) emit(typ string, f Fault) {
	if en.obs.Enabled() {
		en.obs.Emit(obs.Event{Type: typ, Device: f.Node, Detail: f.Describe()})
	}
}
