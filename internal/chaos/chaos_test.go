package chaos

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mfv/internal/bgp"
	"mfv/internal/kne"
	"mfv/internal/kube"
	"mfv/internal/sim"
	"mfv/internal/testnet"
	"mfv/internal/topology"
)

// startFig2 boots the paper's Fig. 2 testnet to initial convergence.
func startFig2(t *testing.T, seed int64, spare int) *kne.Emulator {
	t.Helper()
	em, err := kne.New(kne.Config{
		Topology:   testnet.Fig2(),
		Sim:        sim.New(seed),
		SpareNodes: spare,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := em.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	return em
}

func run(t *testing.T, em *kne.Emulator, sc *Scenario) *Report {
	t.Helper()
	rep, err := NewEngine(em, testnet.Fig2(), nil).Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, sc := range Builtins() {
		data, err := sc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		a, _ := json.Marshal(sc)
		b, _ := json.Marshal(back)
		if string(a) != string(b) {
			t.Errorf("%s: round trip changed scenario:\n%s\n%s", sc.Name, a, b)
		}
	}
	if _, err := Parse([]byte(`{"name":"x","faults":[]}`)); err == nil {
		t.Error("empty fault list accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","faults":[{"kind":"pod-crash"}]}`)); err == nil {
		t.Error("pod-crash without node accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","faults":[{"kind":"link-cut"}]}`)); err == nil {
		t.Error("link-cut without link accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","faults":[{"kind":"meteor","node":"r1"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","faults":[{"kind":"link-degrade","link":"a:b","loss_pct":400}]}`)); err == nil {
		t.Error("out-of-range loss accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBuiltins(t *testing.T) {
	all := Builtins()
	if len(all) < 5 {
		t.Fatalf("only %d builtins", len(all))
	}
	for _, sc := range all {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
	}
	cp, ok := Builtin("partition")
	if !ok {
		t.Fatal("no partition builtin")
	}
	cp.Faults[0].Link = "mutated"
	again, _ := Builtin("partition")
	if again.Faults[0].Link == "mutated" {
		t.Error("Builtin returned a shared slice")
	}
	if _, ok := Builtin("no-such"); ok {
		t.Error("unknown builtin found")
	}
}

// TestCrashRebootRecovers is the tentpole acceptance scenario: crash a
// router mid-run; the pod reschedules, the router reboots from config,
// sessions re-establish, and differential reachability vs. the pre-fault
// baseline reports zero permanent flow loss.
func TestCrashRebootRecovers(t *testing.T) {
	em := startFig2(t, 42, 0)
	sc, _ := Builtin("crash-reboot")
	rep := run(t, em, sc)

	if len(rep.Verdicts) != 1 {
		t.Fatalf("verdicts = %d", len(rep.Verdicts))
	}
	v := rep.Verdicts[0]
	if v.FlowsLostTransient == 0 {
		t.Error("crash caused no transient flow loss — neighbors never withdrew")
	}
	if v.FlowsLost != 0 || !v.Recovered {
		t.Errorf("permanent loss after reboot: FlowsLost=%d, diffs=%v", v.FlowsLost, v.Diffs)
	}
	if v.FlowsRecovered != v.FlowsLostTransient {
		t.Errorf("recovered %d of %d lost flows", v.FlowsRecovered, v.FlowsLostTransient)
	}
	if v.ReconvergedIn <= 0 {
		t.Error("no reconvergence time measured")
	}
	if !rep.Recovered || rep.PermanentFlowsLost != 0 {
		t.Errorf("report: recovered=%v permanent=%d", rep.Recovered, rep.PermanentFlowsLost)
	}

	// The router really rebooted: fresh object, pod Running, sessions up.
	r3, ok := em.Router("r3")
	if !ok || r3.Crashed() {
		t.Fatal("r3 not rebuilt after crash")
	}
	if em.RouterDown("r3") {
		t.Error("r3 still marked down")
	}
	pod, ok := em.Cluster().Pod("r3")
	if !ok || pod.Phase != kube.PodRunning {
		t.Fatalf("r3 pod = %+v", pod)
	}
	established := 0
	for _, p := range r3.BGP.Peers() {
		if p.State() == bgp.StateEstablished {
			established++
		}
	}
	if established == 0 {
		t.Error("no BGP session re-established on rebooted r3")
	}
}

// TestPartitionReportedLost cuts the r2-r3 bridge link: AS65003 partitions
// and the engine must report the loss as not recovered — without hanging
// or erroring.
func TestPartitionReportedLost(t *testing.T) {
	em := startFig2(t, 42, 0)
	sc, _ := Builtin("partition")
	rep := run(t, em, sc)

	v := rep.Verdicts[0]
	if v.FlowsLost == 0 {
		t.Fatal("partition reported no lost flows")
	}
	if v.Recovered || rep.Recovered {
		t.Error("partition reported as recovered")
	}
	if v.FlowsLost != v.FlowsLostTransient || v.FlowsRecovered != 0 {
		t.Errorf("permanent cut shows recovery: %+v", v)
	}
	if rep.PermanentFlowsLost != v.FlowsLost {
		t.Errorf("report permanent=%d, verdict=%d", rep.PermanentFlowsLost, v.FlowsLost)
	}
	if len(v.Diffs) == 0 || !strings.Contains(strings.Join(v.Diffs, "\n"), "Delivered") {
		t.Errorf("diffs = %v", v.Diffs)
	}
	if !strings.Contains(rep.String(), "NOT RECOVERED") {
		t.Errorf("report rendering:\n%s", rep.String())
	}
}

// TestSessionResetTransient resets r2's BGP sessions: routes vanish
// transiently and return once the prober re-establishes the sessions.
func TestSessionResetTransient(t *testing.T) {
	em := startFig2(t, 42, 0)
	sc, _ := Builtin("session-reset")
	rep := run(t, em, sc)

	v := rep.Verdicts[0]
	if v.FlowsLostTransient == 0 {
		t.Error("session reset caused no transient loss")
	}
	if v.FlowsLost != 0 || !v.Recovered {
		t.Errorf("session reset not recovered: %+v", v)
	}
}

// TestFlapRecovers bounces an inter-AS link and expects full recovery
// after the final up.
func TestFlapRecovers(t *testing.T) {
	em := startFig2(t, 42, 0)
	sc, _ := Builtin("flap")
	rep := run(t, em, sc)
	v := rep.Verdicts[0]
	if v.FlowsLostTransient == 0 {
		t.Error("flap caused no transient loss")
	}
	if v.FlowsLost != 0 {
		t.Errorf("flap left permanent loss: %v", v.Diffs)
	}
	if v.ClearedAt <= v.InjectedAt {
		t.Error("flap never cleared")
	}
}

// TestNodeOutageRecovers fails the kube worker hosting all of Fig2's pods;
// everything evicts, queues, reschedules onto the spare, and recovers.
func TestNodeOutageRecovers(t *testing.T) {
	em := startFig2(t, 42, 1)
	sc, _ := Builtin("node-outage")
	rep := run(t, em, sc)
	v := rep.Verdicts[0]
	if v.FlowsLostTransient == 0 {
		t.Error("node failure caused no transient loss")
	}
	if v.FlowsLost != 0 || !rep.Recovered {
		t.Errorf("node outage not recovered: FlowsLost=%d diffs=%v", v.FlowsLost, v.Diffs)
	}
}

// TestCorruptConfigQuarantines pushes garbage configuration at r4: the
// vendor parser rejects it, the router is quarantined (shut down, pod NOT
// rescheduled), neighbors withdraw its routes, and the run completes with
// a degraded verdict naming the quarantined router.
func TestCorruptConfigQuarantines(t *testing.T) {
	em := startFig2(t, 42, 0)
	sc, _ := Builtin("corrupt-config")
	rep := run(t, em, sc)

	v := rep.Verdicts[0]
	if v.FlowsLost == 0 || v.Recovered {
		t.Errorf("quarantine lost no flows: %+v", v)
	}
	if len(v.Quarantined) != 1 || v.Quarantined[0] != "r4" {
		t.Errorf("verdict quarantined = %v, want [r4]", v.Quarantined)
	}
	if got := em.QuarantinedRouters(); len(got) != 1 || got[0] != "r4" {
		t.Fatalf("QuarantinedRouters = %v", got)
	}
	reason, ok := em.QuarantineReason("r4")
	if !ok || reason == "" {
		t.Errorf("no quarantine reason recorded: %q %v", reason, ok)
	}
	r4, ok := em.Router("r4")
	if !ok {
		t.Fatal("r4 gone")
	}
	if !r4.Quarantined() || !r4.Crashed() {
		t.Error("r4 not quarantined/shut down")
	}
	// Unlike pod-crash, quarantine must not reschedule: the pod object is
	// left in place and the router is never rebuilt.
	if em.RouterDown("r4") {
		t.Error("quarantined router marked as crash-rebooting")
	}
	if !strings.Contains(rep.String(), "quarantined: r4") {
		t.Errorf("report rendering misses quarantine:\n%s", rep.String())
	}
}

// TestDeterministicTimeline runs an identical scenario twice from the same
// seed and requires byte-identical reports — fault timeline, flow counts,
// reconvergence times.
func TestDeterministicTimeline(t *testing.T) {
	sc, _ := Builtin("flap")
	reports := make([]string, 2)
	for i := range reports {
		em := startFig2(t, 7, 0)
		rep := run(t, em, sc)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = string(data)
	}
	if reports[0] != reports[1] {
		t.Errorf("same seed, different timelines:\n%s\n%s", reports[0], reports[1])
	}
}

func TestExecuteValidates(t *testing.T) {
	em := startFig2(t, 42, 0)
	en := NewEngine(em, testnet.Fig2(), nil)
	if _, err := en.Execute(&Scenario{Name: "empty"}); err == nil {
		t.Error("empty scenario executed")
	}
	bad := &Scenario{Name: "bad", Faults: []Fault{{Kind: KindPodCrash, Node: "ghost"}}}
	if _, err := en.Execute(bad); err == nil {
		t.Error("crash of unknown router succeeded")
	}
	badLink := &Scenario{Name: "bad", Faults: []Fault{{Kind: KindLinkCut, Link: "r1:NoSuchIntf"}}}
	if _, err := en.Execute(badLink); err == nil {
		t.Error("cut of unknown link succeeded")
	}
}

func TestFaultDescribe(t *testing.T) {
	f := Fault{Kind: KindLinkDegrade, Link: "r1:Ethernet1", LossPct: 30, ExtraDelay: 10 * time.Millisecond}
	if got := f.Describe(); got != "link-degrade r1:Ethernet1 30% +10ms" {
		t.Errorf("Describe = %q", got)
	}
	f2 := Fault{Kind: KindLinkFlap, Link: "a:b", Flaps: 3}
	if got := f2.Describe(); got != "link-flap a:b x3" {
		t.Errorf("Describe = %q", got)
	}
}

// Exercise endpoint parsing errors through the topology package the engine
// uses, so scenario files with malformed links fail loudly.
func TestMalformedLinkEndpoint(t *testing.T) {
	if _, err := topology.ParseEndpoint("no-colon"); err == nil {
		t.Error("malformed endpoint parsed")
	}
}
