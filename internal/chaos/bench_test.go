package chaos

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"mfv/internal/aft"
	"mfv/internal/bgp"
	"mfv/internal/kne"
	"mfv/internal/sim"
	"mfv/internal/snapchain"
	"mfv/internal/testnet"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// bootWAN boots the 30-node multi-vendor WAN (the E6 testnet) to initial
// convergence — the fixture the fault-loop benchmarks measure against.
func bootWAN(b *testing.B) (*kne.Emulator, *topology.Topology) {
	b.Helper()
	topo := testnet.WAN(30, true)
	em, err := kne.New(kne.Config{Topology: topo, Sim: sim.New(42)})
	if err != nil {
		b.Fatal(err)
	}
	if err := em.Start(); err != nil {
		b.Fatal(err)
	}
	if _, err := em.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		b.Fatal(err)
	}
	return em, topo
}

// renderAll is the pre-incremental extraction path: every router re-renders
// its AFT from the RIB, serially, bypassing the generation cache.
func renderAll(em *kne.Emulator) map[string]*aft.AFT {
	out := map[string]*aft.AFT{}
	for _, r := range em.Routers() {
		out[r.Name] = r.RenderAFT()
	}
	return out
}

// BenchmarkChaosFaultLoop measures one iteration of the fault loop's
// verification work — snapshot extraction, network construction, and the
// differential against the pre-fault baseline — on the 30-node WAN under a
// route-feed fault: the external peer on the injection edge withdraws part
// of its table, perturbing only the 4-router iBGP mesh while the 26 IGP
// transits stay byte-identical. That small blast radius is exactly the case
// the incremental pipeline optimizes (a network-wide IGP event falls back
// to the full path via the engine's dirtiness threshold instead). The
// "full" arm is the pre-incremental pipeline (serial re-render of every
// router, scratch NewNetwork, full Differential); the "incremental" arm is
// the cached extraction + UpdateFrom + DeltaDifferential path the engine
// runs by default. Both arms must produce identical diffs.
func BenchmarkChaosFaultLoop(b *testing.B) {
	em, topo := bootWAN(b)
	inj, err := em.AddInjector(topo.Nodes[0].Name, netip.MustParseAddr("198.51.100.1"), 64700)
	if err != nil {
		b.Fatal(err)
	}
	var feed []netip.Prefix
	for i := 0; i < 500; i++ {
		feed = append(feed, netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 0}), 24))
	}
	inj.Announce(feed, bgp.PathAttrs{Origin: bgp.OriginIGP})
	em.Settle(30*time.Second, time.Hour)
	// Warm the per-router AFT caches, as the engine's pre-fault baseline
	// snapshot would have: the timed incremental iterations then re-render
	// only the routers the fault dirtied.
	em.AFTs()

	preAFTs := renderAll(em)
	preStamps := em.FIBGenerations()
	baseFull, err := verify.NewNetwork(topo, preAFTs)
	if err != nil {
		b.Fatal(err)
	}
	baseIncr, err := verify.NewNetwork(topo, preAFTs)
	if err != nil {
		b.Fatal(err)
	}
	inj.Withdraw(feed[:50])
	em.Settle(30*time.Second, time.Hour)

	var fullOut, incrOut string
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			afts := renderAll(em)
			net, err := verify.NewNetwork(topo, afts)
			if err != nil {
				b.Fatal(err)
			}
			fullOut = fmt.Sprintf("%+v", verify.Differential(baseFull, net))
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			afts := em.AFTs()
			dirty := snapchain.DiffStamps(preStamps, em.FIBGenerations())
			net, err := baseIncr.UpdateFrom(afts, dirty)
			if err != nil {
				b.Fatal(err)
			}
			incrOut = fmt.Sprintf("%+v", verify.DeltaDifferential(baseIncr, net, dirty))
		}
	})
	if fullOut != incrOut {
		b.Fatalf("incremental diffs differ from full:\n%s\n%s", fullOut, incrOut)
	}
}

// BenchmarkIncrementalSnapshot isolates snapshot construction on the
// quiescent WAN: a from-scratch render + NewNetwork versus the cached
// extraction + UpdateFrom (the steady-state cost between faults, when
// nothing is dirty).
func BenchmarkIncrementalSnapshot(b *testing.B) {
	em, topo := bootWAN(b)
	em.AFTs() // warm the per-router caches; steady state is what's measured
	preAFTs := renderAll(em)
	base, err := verify.NewNetwork(topo, preAFTs)
	if err != nil {
		b.Fatal(err)
	}
	stamps := em.FIBGenerations()

	b.Run("full-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := verify.NewNetwork(topo, renderAll(em)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			afts := em.AFTs()
			dirty := snapchain.DiffStamps(stamps, em.FIBGenerations())
			if _, err := base.UpdateFrom(afts, dirty); err != nil {
				b.Fatal(err)
			}
		}
	})
}
