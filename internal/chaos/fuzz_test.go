package chaos

import (
	"bytes"
	"testing"
)

// FuzzParse throws arbitrary bytes at the scenario JSON ingestion path — the
// payload `mfv run -chaos FILE` and `mfv chaos -scenario FILE` hand to an
// operator-supplied file. Properties: parsing never panics, and an accepted
// scenario reaches a Marshal/Parse fixed point (the canonical encoding
// re-parses to itself byte-for-byte, so persisted scenarios are stable).
func FuzzParse(f *testing.F) {
	for _, sc := range Builtins() {
		data, err := sc.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","faults":[{"kind":"link-cut","link":"r1:Ethernet1"}]}`))
	f.Add([]byte(`{"name":"x","faults":[{"kind":"pod-crash"}]}`))
	f.Add([]byte(`{"name":"x","faults":[{"kind":"link-flap","link":"r1:Ethernet1","flaps":-1}]}`))
	f.Add([]byte(`{"name":"x","faults":[]}`))
	f.Add([]byte(`{"faults":[{"kind":"no-such-fault"}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return
		}
		enc, err := sc.Marshal()
		if err != nil {
			t.Fatalf("re-marshaling accepted scenario: %v", err)
		}
		sc2, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parsing canonical encoding: %v", err)
		}
		enc2, err := sc2.Marshal()
		if err != nil {
			t.Fatalf("re-marshaling round-tripped scenario: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("scenario encoding is not a fixed point:\n%s\n%s", enc, enc2)
		}
	})
}
