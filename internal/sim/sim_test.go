package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of insertion order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(time.Second, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Double-cancel is a no-op.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelDuringRun(t *testing.T) {
	s := New(1)
	var e2 *Event
	fired := false
	s.After(time.Millisecond, func() { s.Cancel(e2) })
	e2 = s.After(2*time.Millisecond, func() { fired = true })
	s.Run()
	if fired {
		t.Error("event canceled by an earlier event still fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			s.After(time.Millisecond, recur)
		}
	}
	s.After(0, recur)
	n := s.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if n != 100 {
		t.Errorf("executed = %d, want 100", n)
	}
	if s.Now() != 99*time.Millisecond {
		t.Errorf("Now() = %v, want 99ms", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d * time.Millisecond
		s.After(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(25 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 25*time.Millisecond {
		t.Errorf("Now() = %v, want 25ms (clock advances to deadline)", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.RunFor(15 * time.Millisecond) // to 40ms
	if len(fired) != 4 {
		t.Errorf("fired %d events after RunFor, want 4", len(fired))
	}
}

func TestNextAt(t *testing.T) {
	s := New(1)
	if _, ok := s.NextAt(); ok {
		t.Error("NextAt on empty queue reported an event")
	}
	e := s.After(7*time.Millisecond, func() {})
	if at, ok := s.NextAt(); !ok || at != 7*time.Millisecond {
		t.Errorf("NextAt = %v,%v; want 7ms,true", at, ok)
	}
	s.Cancel(e)
	if _, ok := s.NextAt(); ok {
		t.Error("NextAt reported a canceled event")
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	count := 0
	tk := s.NewTicker(10*time.Millisecond, func() { count++ })
	s.RunUntil(55 * time.Millisecond)
	if count != 5 {
		t.Errorf("ticks = %d, want 5", count)
	}
	tk.Stop()
	s.RunUntil(200 * time.Millisecond)
	if count != 5 {
		t.Errorf("ticks after Stop = %d, want 5", count)
	}
}

func TestTickerStopFromTick(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = s.NewTicker(time.Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 3 {
		t.Errorf("ticks = %d, want 3", count)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	s.RunFor(time.Second)
	fired := false
	s.After(-time.Hour, func() { fired = true })
	s.Step()
	if !fired {
		t.Error("negative-delay event did not fire immediately")
	}
	if s.Now() != time.Second {
		t.Errorf("Now() = %v, want 1s (clock must not go backwards)", s.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		s := New(seed)
		var got []int
		for i := 0; i < 200; i++ {
			i := i
			d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
			s.After(d, func() { got = append(got, i) })
		}
		s.Run()
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different orderings at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: events always fire in nondecreasing virtual-time order, whatever
// the insertion order of delays.
func TestQuickMonotoneFiring(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		s := New(7)
		var fired []time.Duration
		for _, d := range delaysMS {
			d := time.Duration(d) * time.Millisecond
			s.After(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: Run executes exactly as many events as were scheduled and not
// canceled.
func TestQuickExecutedCount(t *testing.T) {
	f := func(delaysMS []uint16, cancelMask []bool) bool {
		s := New(3)
		events := make([]*Event, len(delaysMS))
		for i, d := range delaysMS {
			events[i] = s.After(time.Duration(d)*time.Millisecond, func() {})
		}
		canceled := 0
		for i, e := range events {
			if i < len(cancelMask) && cancelMask[i] {
				s.Cancel(e)
				canceled++
			}
		}
		return s.Run() == uint64(len(delaysMS)-canceled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	ch := make(chan struct{})
	c.After(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("RealClock.After never fired")
	}
	if c.Now() <= 0 {
		t.Error("RealClock.Now() not advancing")
	}
}

func TestPanicOnNilFn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("After(nil) did not panic")
		}
	}()
	New(1).After(0, nil)
}

func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if s.Pending() > 10000 {
			s.Run()
		}
	}
	s.Run()
}
