// Package sim provides a deterministic discrete-event simulator used as the
// timing substrate for control-plane emulation.
//
// The emulator in internal/kne runs hundreds to thousands of virtual routers.
// Running them against the wall clock would make convergence experiments slow
// and non-reproducible, so protocol engines are written against sim.Clock and
// scheduled on a single event queue with a virtual clock. Events at the same
// virtual instant are ordered by insertion sequence, which makes every run
// with the same seed bit-for-bit repeatable.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	at     time.Duration // virtual time
	seq    uint64        // tie-break for same-instant events
	fn     func()
	index  int // heap index; -1 when popped or canceled
	cancel bool
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.cancel }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock exposes virtual time to protocol engines. It is satisfied by
// *Simulator; engines never read the wall clock directly so they behave
// identically under emulation and unit test.
type Clock interface {
	// Now returns the current virtual time since simulation start.
	Now() time.Duration
	// After schedules fn to run d after the current virtual time and
	// returns a handle that can cancel it.
	After(d time.Duration, fn func()) *Event
}

// Simulator owns the virtual clock and event queue.
type Simulator struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	rng   *rand.Rand
	seed  int64

	// Executed counts events that have fired; useful for loop detection in
	// tests and for reporting simulation effort.
	executed uint64
	// maxPending is the queue-depth high-water mark, and canceled the number
	// of events canceled before firing — the observability layer reports
	// both as simulation-effort metrics.
	maxPending int
	canceled   uint64
}

// New returns a simulator with the virtual clock at zero. The seed fixes all
// randomness drawn through Rand, making runs reproducible.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's seeded random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Seed returns the seed the simulator was created with, so a deterministic
// replay (e.g. a sweep replica) can be built from the same randomness.
func (s *Simulator) Seed() int64 { return s.seed }

// Reseed replaces the random source with a fresh one derived from seed. The
// sweep engine reseeds before every candidate so the jitter stream consumed
// while evaluating a candidate is a pure function of the candidate, not of
// how many candidates some other run evaluated first.
func (s *Simulator) Reseed(seed int64) {
	s.rng = rand.New(rand.NewSource(seed))
}

// Executed returns the number of events that have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events waiting in the queue.
func (s *Simulator) Pending() int { return len(s.queue) }

// MaxPending returns the highest queue depth observed so far.
func (s *Simulator) MaxPending() int { return s.maxPending }

// CanceledCount returns the number of events canceled before firing.
func (s *Simulator) CanceledCount() uint64 { return s.canceled }

// After schedules fn at now+d. Negative d is treated as zero. The returned
// event can be canceled with Cancel.
func (s *Simulator) After(d time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: After called with nil fn")
	}
	if d < 0 {
		d = 0
	}
	e := &Event{at: s.now + d, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	if len(s.queue) > s.maxPending {
		s.maxPending = len(s.queue)
	}
	return e
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	s.canceled++
	heap.Remove(&s.queue, e.index)
}

// Step fires the earliest pending event. It returns false when the queue is
// empty.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		if e.at < s.now {
			panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", e.at, s.now))
		}
		s.now = e.at
		s.executed++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains. It returns the number of events
// executed during this call.
func (s *Simulator) Run() uint64 {
	start := s.executed
	for s.Step() {
	}
	return s.executed - start
}

// RunUntil fires events with virtual time ≤ deadline. Events scheduled for
// later remain queued; the clock is advanced to deadline if the queue drains
// or only later events remain. It returns the number of events executed.
func (s *Simulator) RunUntil(deadline time.Duration) uint64 {
	start := s.executed
	for len(s.queue) > 0 {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.executed - start
}

// RunFor advances the clock by d, firing everything due in the window.
func (s *Simulator) RunFor(d time.Duration) uint64 {
	return s.RunUntil(s.now + d)
}

// peek returns the earliest non-canceled event without firing it.
func (s *Simulator) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// NextAt returns the virtual time of the next pending event and true, or
// zero and false when the queue is empty.
func (s *Simulator) NextAt() (time.Duration, bool) {
	e := s.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// Ticker repeatedly invokes fn every period until stopped. It is the virtual
// analogue of time.Ticker for protocol keepalive and refresh timers.
type Ticker struct {
	s       *Simulator
	period  time.Duration
	fn      func()
	ev      *Event
	stopped bool
	aligned bool
}

// NewTicker schedules fn every period, first firing one period from now.
func (s *Simulator) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker requires a positive period")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

// NewAlignedTicker schedules fn at every multiple of period on the global
// virtual clock, starting with the first multiple strictly after now. Unlike
// NewTicker, whose phase is the creation instant, an aligned ticker's phase
// is a pure function of the period — two tickers with the same period always
// fire in lockstep no matter when each was created. Protocol keepalive,
// hello, refresh, and probe timers use this so that a timer restarted by a
// fault rollback lands back on the same schedule it had before the fault,
// which is what makes replayed failure evaluations history-independent.
func (s *Simulator) NewAlignedTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewAlignedTicker requires a positive period")
	}
	t := &Ticker{s: s, period: period, fn: fn, aligned: true}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	d := t.period
	if t.aligned {
		// Next strictly-greater multiple of the period on the global clock.
		d = t.period - t.s.now%t.period
	}
	t.ev = t.s.After(d, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.s.Cancel(t.ev)
}

// RealClock adapts the wall clock to the Clock interface, so protocol engines
// can also run in real time (e.g. the TCP BGP speaker in internal/bgp).
type RealClock struct{ start time.Time }

// NewRealClock returns a Clock backed by the wall clock.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now returns wall time elapsed since the clock was created.
func (c *RealClock) Now() time.Duration { return time.Since(c.start) }

// After schedules fn on a new goroutine after d of wall time. The returned
// event's cancellation is best-effort: fn may still run if the timer has
// already fired.
func (c *RealClock) After(d time.Duration, fn func()) *Event {
	e := &Event{at: c.Now() + d}
	timer := time.AfterFunc(d, func() {
		if !e.cancel {
			fn()
		}
	})
	// Wrap cancellation through the timer.
	e.fn = func() { timer.Stop() }
	return e
}
