// Package survey encodes the operator study from §2 of the paper as a
// synthetic respondent-level dataset calibrated to reproduce every reported
// aggregate: n=30 survey respondents across sectors and network sizes, the
// awareness/attempt adoption funnel, and the barrier statistics (74%
// feature coverage, 52% workflow integration). The paper reports only
// aggregates; individual rows here are synthesized to match them exactly,
// which the tests verify.
package survey

import (
	"fmt"
	"sort"
	"strings"
)

// Sector classifies a respondent's organization.
type Sector string

// Sectors reported in the paper.
const (
	SectorEnterprise Sector = "enterprise"
	SectorISP        Sector = "isp"
	SectorCSP        Sector = "csp"
	SectorGovernment Sector = "government"
	SectorOther      Sector = "other"
)

// SizeBand is the network device-count band.
type SizeBand string

// Size bands from the paper (approximately evenly represented).
const (
	SizeSmall     SizeBand = "1-50"
	SizeMedium    SizeBand = "51-500"
	SizeLarge     SizeBand = "501-5000"
	SizeVeryLarge SizeBand = "5000+"
)

// Barrier is one barrier-to-adoption option.
type Barrier string

// Barriers referenced in the paper's findings.
const (
	BarrierFeatureCoverage     Barrier = "tools do not support our protocols/features"
	BarrierWorkflowIntegration Barrier = "lack of integration with existing workflows and tools"
	BarrierComplexity          Barrier = "too complex to set up and maintain"
	BarrierTrust               Barrier = "hard to trust results"
)

// Respondent is one survey row.
type Respondent struct {
	ID          int
	Sector      Sector
	Size        SizeBand
	MultiVendor bool
	// HeardOfVerification / AttemptedVerification form the adoption funnel.
	HeardOfVerification   bool
	AttemptedVerification bool
	// FamiliarWithTooling gates the barrier question (only respondents
	// familiar with verification tooling answered it).
	FamiliarWithTooling bool
	Barriers            []Barrier
	// ToolFamiliarityImportance is the 1–5 rating of "verification tools
	// should let me use familiar operator tools".
	ToolFamiliarityImportance int
}

// Dataset returns the n=30 synthetic respondent set. The sector counts
// follow the paper (enterprise 8, ISP 7, CSP 4, government 3, other 8);
// size bands are evenly split (7/8/7/8 ≈ even); 93% manage multi-vendor
// networks (28/30); two thirds (20) heard of verification, 30% (9)
// attempted it; of the 23 familiar with tooling, 17 (74%) cite feature
// coverage and 12 (52%) cite workflow integration.
func Dataset() []Respondent {
	sectors := make([]Sector, 0, 30)
	add := func(s Sector, n int) {
		for i := 0; i < n; i++ {
			sectors = append(sectors, s)
		}
	}
	add(SectorEnterprise, 8)
	add(SectorISP, 7)
	add(SectorCSP, 4)
	add(SectorGovernment, 3)
	add(SectorOther, 8)

	sizes := []SizeBand{SizeSmall, SizeMedium, SizeLarge, SizeVeryLarge}

	out := make([]Respondent, 30)
	for i := range out {
		out[i] = Respondent{
			ID:          i + 1,
			Sector:      sectors[i],
			Size:        sizes[i%4],
			MultiVendor: i != 7 && i != 19, // 28/30 = 93%
			// First 20 heard of verification (2/3).
			HeardOfVerification: i < 20,
			// First 9 attempted (30%).
			AttemptedVerification: i < 9,
			// 23 familiar with tooling: all who heard plus three who
			// encountered tooling without the "verification" framing.
			FamiliarWithTooling: i < 23,
			// Alternate high ratings so ~half rate 4–5.
			ToolFamiliarityImportance: 2 + (i % 4), // 2,3,4,5 repeating
		}
	}
	// Barriers among the 23 familiar respondents: 17 cite feature coverage
	// (74%), 12 cite workflow integration (52%); complexity and trust fill
	// in as secondary mentions.
	for i := 0; i < 23; i++ {
		r := &out[i]
		if i < 17 {
			r.Barriers = append(r.Barriers, BarrierFeatureCoverage)
		}
		if i >= 5 && i < 17 {
			r.Barriers = append(r.Barriers, BarrierWorkflowIntegration)
		}
		if i >= 17 {
			r.Barriers = append(r.Barriers, BarrierComplexity)
		}
		if i%3 == 0 {
			r.Barriers = append(r.Barriers, BarrierTrust)
		}
	}
	return out
}

// Stats aggregates the dataset.
type Stats struct {
	N                 int
	BySector          map[Sector]int
	BySize            map[SizeBand]int
	MultiVendorPct    int
	HeardPct          int
	AttemptedPct      int
	FamiliarCount     int
	BarrierPct        map[Barrier]int // percent of familiar respondents
	HighImportance    int             // respondents rating familiarity 4–5
	HighImportancePct int
}

// Aggregate computes the paper's reported statistics from the rows.
func Aggregate(rows []Respondent) Stats {
	s := Stats{
		N:          len(rows),
		BySector:   map[Sector]int{},
		BySize:     map[SizeBand]int{},
		BarrierPct: map[Barrier]int{},
	}
	heard, attempted, multi := 0, 0, 0
	barrierCounts := map[Barrier]int{}
	for _, r := range rows {
		s.BySector[r.Sector]++
		s.BySize[r.Size]++
		if r.MultiVendor {
			multi++
		}
		if r.HeardOfVerification {
			heard++
		}
		if r.AttemptedVerification {
			attempted++
		}
		if r.FamiliarWithTooling {
			s.FamiliarCount++
			for _, b := range r.Barriers {
				barrierCounts[b]++
			}
		}
		if r.ToolFamiliarityImportance >= 4 {
			s.HighImportance++
		}
	}
	if s.N > 0 {
		s.MultiVendorPct = 100 * multi / s.N
		s.HeardPct = 100 * heard / s.N
		s.AttemptedPct = 100 * attempted / s.N
		s.HighImportancePct = 100 * s.HighImportance / s.N
	}
	if s.FamiliarCount > 0 {
		for b, c := range barrierCounts {
			s.BarrierPct[b] = 100 * c / s.FamiliarCount
		}
	}
	return s
}

// Table renders the aggregate like the paper's prose reports it.
func (s Stats) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "respondents                       n=%d\n", s.N)
	sectors := make([]string, 0, len(s.BySector))
	for sec := range s.BySector {
		sectors = append(sectors, string(sec))
	}
	sort.Strings(sectors)
	for _, sec := range sectors {
		fmt.Fprintf(&b, "  sector %-24s %d\n", sec, s.BySector[Sector(sec)])
	}
	fmt.Fprintf(&b, "multi-vendor networks             %d%%\n", s.MultiVendorPct)
	fmt.Fprintf(&b, "heard of verification             %d%%\n", s.HeardPct)
	fmt.Fprintf(&b, "attempted verification            %d%%\n", s.AttemptedPct)
	fmt.Fprintf(&b, "barrier: feature coverage         %d%% of familiar\n", s.BarrierPct[BarrierFeatureCoverage])
	fmt.Fprintf(&b, "barrier: workflow integration     %d%% of familiar\n", s.BarrierPct[BarrierWorkflowIntegration])
	fmt.Fprintf(&b, "familiar-tools importance 4-5/5   %d%%\n", s.HighImportancePct)
	return b.String()
}
