package survey

import (
	"strings"
	"testing"
)

func TestDatasetMatchesPaperAggregates(t *testing.T) {
	s := Aggregate(Dataset())
	if s.N != 30 {
		t.Fatalf("n = %d, want 30", s.N)
	}
	// Sector counts from §2.
	want := map[Sector]int{
		SectorEnterprise: 8, SectorISP: 7, SectorCSP: 4, SectorGovernment: 3, SectorOther: 8,
	}
	for sec, n := range want {
		if s.BySector[sec] != n {
			t.Errorf("sector %s = %d, want %d", sec, s.BySector[sec], n)
		}
	}
	// Size bands approximately even (7 or 8 each).
	for band, n := range s.BySize {
		if n < 7 || n > 8 {
			t.Errorf("size band %s = %d, want 7–8", band, n)
		}
	}
	if s.MultiVendorPct != 93 {
		t.Errorf("multi-vendor = %d%%, want 93%%", s.MultiVendorPct)
	}
	// "two thirds of respondents had heard of network verification".
	if s.HeardPct < 65 || s.HeardPct > 68 {
		t.Errorf("heard = %d%%, want ~66%%", s.HeardPct)
	}
	// "only 30% had attempted to use it".
	if s.AttemptedPct != 30 {
		t.Errorf("attempted = %d%%, want 30%%", s.AttemptedPct)
	}
	// "the most frequent (74%) of biggest barriers ... do not support the
	// specific features or protocols".
	if s.BarrierPct[BarrierFeatureCoverage] != 73 && s.BarrierPct[BarrierFeatureCoverage] != 74 {
		t.Errorf("feature barrier = %d%%, want 74%% (±1 rounding)", s.BarrierPct[BarrierFeatureCoverage])
	}
	// "52% selected lack of integration with existing workflows".
	if s.BarrierPct[BarrierWorkflowIntegration] != 52 {
		t.Errorf("workflow barrier = %d%%, want 52%%", s.BarrierPct[BarrierWorkflowIntegration])
	}
	// "nearly half rating ... 4 or 5 out of 5".
	if s.HighImportancePct < 45 || s.HighImportancePct > 55 {
		t.Errorf("high importance = %d%%, want ~50%%", s.HighImportancePct)
	}
	// The feature barrier must be the most frequent.
	for b, pct := range s.BarrierPct {
		if b != BarrierFeatureCoverage && pct >= s.BarrierPct[BarrierFeatureCoverage] {
			t.Errorf("barrier %q (%d%%) outranks feature coverage", b, pct)
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	s := Aggregate(nil)
	if s.N != 0 || s.HeardPct != 0 {
		t.Errorf("empty aggregate = %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	out := Aggregate(Dataset()).Table()
	for _, want := range []string{"n=30", "93%", "30%", "feature coverage", "workflow integration"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFunnelConsistency(t *testing.T) {
	for _, r := range Dataset() {
		if r.AttemptedVerification && !r.HeardOfVerification {
			t.Errorf("respondent %d attempted without having heard", r.ID)
		}
		if len(r.Barriers) > 0 && !r.FamiliarWithTooling {
			t.Errorf("respondent %d answered barriers without familiarity", r.ID)
		}
	}
}
