// Package confgen generates production-complexity router configurations in
// the EOS-like dialect. The generated configs deliberately include the
// statement families the paper found in its production snippets: management
// daemons (PowerManager, LedPolicy, Thermostat), gRPC/gNMI and TLS
// profiles, NTP/logging/SNMP, MPLS and MPLS-TE — i.e. the lines a reference
// verification model does not understand. The vendor front end
// (internal/config/eos) accepts all of them; the model baseline
// (internal/model) fails 38–42 of the 62–82 lines, regenerating the paper's
// coverage statistics (experiment E2).
package confgen

import (
	"fmt"
	"net/netip"
	"strings"
)

// Iface describes one L3 interface to emit.
type Iface struct {
	Name string
	Addr netip.Prefix
	// ISIS enables the interface in the IS-IS instance.
	ISIS bool
	// Passive marks it passive (loopbacks are passive automatically).
	Passive bool
	Metric  uint32
	// MPLS enables "mpls ip" on the port.
	MPLS bool
	// MisorderSwitchport emits "ip address" BEFORE "no switchport" — the
	// (perfectly valid on the vendor) ordering from the paper's Fig. 3 that
	// trips the reference model.
	MisorderSwitchport bool
}

// Neighbor describes one BGP peer statement set.
type Neighbor struct {
	Addr          netip.Addr
	RemoteAS      uint32
	Description   string
	UpdateSource  string
	NextHopSelf   bool
	SendCommunity bool
}

// BGP describes the BGP process to emit.
type BGP struct {
	ASN       uint32
	RouterID  netip.Addr
	Neighbors []Neighbor
	Networks  []netip.Prefix
	// RedistributeConnected adds "redistribute connected".
	RedistributeConnected bool
}

// Spec describes one device.
type Spec struct {
	Hostname string
	// NET is the IS-IS network entity title; empty disables IS-IS.
	NET        string
	Interfaces []Iface
	BGP        *BGP
	// Management selects how much non-dataplane configuration to emit:
	// 0 none, 1 basic services, 2 full production set (daemons, TLS,
	// telemetry, MPLS-TE plumbing).
	Management int
	// PolicyPadding emits that many prefix-list entries plus a small
	// route map, mirroring the policy plumbing production configs carry.
	PolicyPadding int
	// MPLSTE adds global MPLS and a traffic-engineering tunnel stanza.
	MPLSTE bool
	// TETunnelTo, when valid and MPLSTE is set, is the tunnel destination.
	TETunnelTo netip.Addr
}

// EOS renders the spec in the EOS-like dialect.
func EOS(s Spec) string {
	var b strings.Builder
	line := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	line("hostname %s", s.Hostname)
	line("ip routing")
	if s.Management >= 1 {
		line("service routing protocols model multi-agent")
		line("spanning-tree mode mstp")
		line("ntp server 192.0.2.123")
		line("logging host 192.0.2.50")
	}
	if s.Management >= 2 {
		line("daemon PowerManager")
		line("   exec /usr/bin/PowerManager")
		line("   no shutdown")
		line("daemon LedPolicy")
		line("   exec /usr/bin/LedPolicy")
		line("   no shutdown")
		line("daemon Thermostat")
		line("   exec /usr/bin/Thermostat")
		line("   no shutdown")
		line("management api gnmi")
		line("   transport grpc default")
		line("   ssl profile SECURE")
		line("management api http-commands")
		line("   no shutdown")
		line("management ssh")
		line("   idle-timeout 60")
		line("management security")
		line("   ssl profile SECURE")
		line("   certificate device.crt key device.key")
		line("snmp-server community ops ro")
		line("ntp server 192.0.2.124")
		line("aaa authorization exec default local")
		line("username admin privilege 15 secret 0 admin")
		line("clock timezone UTC")
		line("transceiver qsfp default-mode 4x10G")
		line("queue-monitor length")
	}
	if s.PolicyPadding > 0 {
		for i := 0; i < s.PolicyPadding; i++ {
			line("ip prefix-list PL-INFRA seq %d permit 10.%d.0.0/16 le 24", (i+1)*10, i)
		}
		line("route-map RM-INFRA permit 10")
		line("   match ip address prefix-list PL-INFRA")
	}
	if s.MPLSTE {
		line("mpls ip")
	}
	if s.NET != "" {
		line("router isis default")
		line("   net %s", s.NET)
		line("   address-family ipv4 unicast")
		line("   log-adjacency-changes")
	}
	for _, intf := range s.Interfaces {
		line("interface %s", intf.Name)
		loopback := strings.HasPrefix(intf.Name, "Loopback")
		switch {
		case loopback:
			line("   ip address %s", intf.Addr)
		case intf.MisorderSwitchport:
			line("   ip address %s", intf.Addr)
			line("   no switchport")
		default:
			line("   no switchport")
			line("   ip address %s", intf.Addr)
		}
		if intf.ISIS {
			line("   isis enable default")
			if intf.Passive || loopback {
				line("   isis passive-interface default")
			}
			if intf.Metric != 0 {
				line("   isis metric %d", intf.Metric)
			}
		}
		if intf.MPLS {
			line("   mpls ip")
		}
	}
	if s.BGP != nil {
		line("router bgp %d", s.BGP.ASN)
		if s.BGP.RouterID.IsValid() {
			line("   router-id %s", s.BGP.RouterID)
		}
		for _, n := range s.BGP.Neighbors {
			line("   neighbor %s remote-as %d", n.Addr, n.RemoteAS)
			if n.Description != "" {
				line("   neighbor %s description %s", n.Addr, n.Description)
			}
			if n.UpdateSource != "" {
				line("   neighbor %s update-source %s", n.Addr, n.UpdateSource)
			}
			if n.NextHopSelf {
				line("   neighbor %s next-hop-self", n.Addr)
			}
			if n.SendCommunity {
				line("   neighbor %s send-community", n.Addr)
			}
		}
		for _, p := range s.BGP.Networks {
			line("   network %s", p)
		}
		if s.BGP.RedistributeConnected {
			line("   redistribute connected")
		}
	}
	if s.MPLSTE && s.TETunnelTo.IsValid() {
		line("router traffic-engineering")
		line("   tunnel TE-%s", s.Hostname)
		line("      destination %s", s.TETunnelTo)
		line("      priority 7 7")
	}
	line("end")
	return b.String()
}
