package confgen

import (
	"net/netip"
	"strings"
	"testing"

	"mfv/internal/config/eos"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func fullSpec() Spec {
	return Spec{
		Hostname:      "edge1",
		NET:           "49.0001.0000.0000.0001.00",
		Management:    2,
		PolicyPadding: 4,
		MPLSTE:        true,
		TETunnelTo:    addr("2.2.2.2"),
		Interfaces: []Iface{
			{Name: "Loopback0", Addr: pfx("2.2.2.1/32"), ISIS: true},
			{Name: "Ethernet1", Addr: pfx("100.64.0.0/31"), ISIS: true, MPLS: true, Metric: 25},
			{Name: "Ethernet2", Addr: pfx("100.64.1.0/31")},
		},
		BGP: &BGP{
			ASN:      65001,
			RouterID: addr("2.2.2.1"),
			Networks: []netip.Prefix{pfx("2.2.2.1/32")},
			Neighbors: []Neighbor{
				{Addr: addr("2.2.2.2"), RemoteAS: 65001, UpdateSource: "Loopback0",
					NextHopSelf: true, Description: "core peer"},
				{Addr: addr("100.64.1.1"), RemoteAS: 65002, SendCommunity: true},
			},
			RedistributeConnected: true,
		},
	}
}

func TestGeneratedConfigParsesInVendorDialect(t *testing.T) {
	cfg := EOS(fullSpec())
	dev, diags, err := eos.Parse(cfg)
	if err != nil {
		t.Fatalf("vendor parser rejected generated config: %v\n%s", err, cfg)
	}
	if len(diags.Unknown) != 0 {
		t.Errorf("unknown lines in generated config: %v", diags.Unknown)
	}
	if dev.Hostname != "edge1" {
		t.Errorf("hostname = %q", dev.Hostname)
	}
	if dev.ISIS == nil || dev.BGP == nil || dev.MPLS == nil {
		t.Fatalf("missing protocol intent: isis=%v bgp=%v mpls=%v", dev.ISIS, dev.BGP, dev.MPLS)
	}
	if !dev.MPLS.TE || len(dev.MPLS.LSPs) != 1 || dev.MPLS.LSPs[0].To != addr("2.2.2.2") {
		t.Errorf("TE tunnel = %+v", dev.MPLS)
	}
	e1 := dev.Interface("Ethernet1")
	if !e1.ISISEnabled || e1.ISISMetric != 25 || !e1.MPLSEnabled || !e1.Routed {
		t.Errorf("Ethernet1 = %+v", e1)
	}
	if len(dev.BGP.Neighbors) != 2 || len(dev.BGP.Networks) != 1 || len(dev.BGP.Redistribute) != 1 {
		t.Errorf("BGP = %+v", dev.BGP)
	}
	if len(dev.Management.Daemons) != 3 {
		t.Errorf("Daemons = %v", dev.Management.Daemons)
	}
	if dev.PrefixLists["PL-INFRA"] == nil || len(dev.PrefixLists["PL-INFRA"].Entries) != 4 {
		t.Errorf("policy padding missing: %+v", dev.PrefixLists)
	}
}

func TestManagementLevels(t *testing.T) {
	base := Spec{Hostname: "r1", Interfaces: []Iface{{Name: "Loopback0", Addr: pfx("1.1.1.1/32")}}}
	l0 := eos.CountConfigLines(EOS(base))
	base.Management = 1
	l1 := eos.CountConfigLines(EOS(base))
	base.Management = 2
	l2 := eos.CountConfigLines(EOS(base))
	if !(l0 < l1 && l1 < l2) {
		t.Errorf("management levels not monotone: %d %d %d", l0, l1, l2)
	}
	if l2-l1 < 20 {
		t.Errorf("full production set adds only %d lines", l2-l1)
	}
}

func TestMisorderedSwitchport(t *testing.T) {
	spec := Spec{
		Hostname: "r1",
		Interfaces: []Iface{
			{Name: "Ethernet1", Addr: pfx("10.0.0.0/31"), MisorderSwitchport: true},
		},
	}
	cfg := EOS(spec)
	ipIdx := strings.Index(cfg, "ip address 10.0.0.0/31")
	swIdx := strings.Index(cfg, "no switchport")
	if ipIdx < 0 || swIdx < 0 || ipIdx > swIdx {
		t.Errorf("misordering not emitted:\n%s", cfg)
	}
	// The vendor parser must still accept it with the address intact.
	dev, _, err := eos.Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dev.Interface("Ethernet1").Addresses) != 1 {
		t.Error("vendor parser dropped the address")
	}
}

func TestNoBGPNoISIS(t *testing.T) {
	cfg := EOS(Spec{Hostname: "r1", Interfaces: []Iface{{Name: "Ethernet1", Addr: pfx("10.0.0.0/31")}}})
	if strings.Contains(cfg, "router bgp") || strings.Contains(cfg, "router isis") {
		t.Errorf("unexpected protocol blocks:\n%s", cfg)
	}
	if _, _, err := eos.Parse(cfg); err != nil {
		t.Fatal(err)
	}
}
