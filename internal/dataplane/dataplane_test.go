package dataplane

import (
	"net/netip"
	"strings"
	"testing"

	"mfv/internal/mpls"
	"mfv/internal/routing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

// baseRIB builds a RIB with connected 10.0.0.0/31 on Ethernet1 and local
// loopback 1.1.1.1/32.
func baseRIB() *routing.RIB {
	rib := routing.NewRIB()
	rib.Install(routing.Route{
		Prefix: pfx("10.0.0.0/31"), Protocol: routing.ProtoConnected,
		NextHops: []routing.NextHop{{Interface: "Ethernet1"}},
	})
	rib.Install(routing.Route{
		Prefix: pfx("1.1.1.1/32"), Protocol: routing.ProtoLocal,
		NextHops: []routing.NextHop{{Interface: "Loopback0"}},
	})
	return rib
}

func TestResolveDirect(t *testing.T) {
	rib := baseRIB()
	f := New(rib, []netip.Addr{addr("10.0.0.0"), addr("1.1.1.1")})
	r := routing.Route{
		Prefix: pfx("192.0.2.0/24"), Protocol: routing.ProtoISIS,
		NextHops: []routing.NextHop{{IP: addr("10.0.0.1"), Interface: "Ethernet1"}},
	}
	hops, err := f.Resolve(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].Interface != "Ethernet1" || hops[0].IP != addr("10.0.0.1") {
		t.Errorf("hops = %+v", hops)
	}
}

func TestResolveRecursiveBGP(t *testing.T) {
	rib := baseRIB()
	// IS-IS provides the route to the BGP next hop 2.2.2.2.
	rib.Install(routing.Route{
		Prefix: pfx("2.2.2.2/32"), Protocol: routing.ProtoISIS, Distance: 115, Metric: 20,
		NextHops: []routing.NextHop{{IP: addr("10.0.0.1"), Interface: "Ethernet1"}},
	})
	rib.Install(routing.Route{
		Prefix: pfx("203.0.113.0/24"), Protocol: routing.ProtoIBGP, Distance: 200,
		NextHops: []routing.NextHop{{IP: addr("2.2.2.2")}},
	})
	f := New(rib, []netip.Addr{addr("10.0.0.0"), addr("1.1.1.1")})
	r, _ := rib.Get(pfx("203.0.113.0/24"))
	hops, err := f.Resolve(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].Interface != "Ethernet1" || hops[0].IP != addr("10.0.0.1") {
		t.Errorf("recursive resolution = %+v, want via Ethernet1/10.0.0.1", hops)
	}
}

func TestResolveRecursiveToConnectedSubnet(t *testing.T) {
	// BGP next hop is directly on the connected subnet: resolution should
	// keep the original next-hop IP.
	rib := baseRIB()
	rib.Install(routing.Route{
		Prefix: pfx("203.0.113.0/24"), Protocol: routing.ProtoEBGP, Distance: 20,
		NextHops: []routing.NextHop{{IP: addr("10.0.0.1")}},
	})
	f := New(rib, []netip.Addr{addr("10.0.0.0")})
	r, _ := rib.Get(pfx("203.0.113.0/24"))
	hops, err := f.Resolve(r)
	if err != nil {
		t.Fatal(err)
	}
	if hops[0].IP != addr("10.0.0.1") || hops[0].Interface != "Ethernet1" {
		t.Errorf("hops = %+v", hops)
	}
}

func TestResolveDropRoute(t *testing.T) {
	rib := baseRIB()
	f := New(rib, nil)
	hops, err := f.Resolve(routing.Route{Prefix: pfx("10.0.0.0/8"), Drop: true})
	if err != nil || len(hops) != 1 || !hops[0].Drop {
		t.Errorf("drop resolution = %+v, %v", hops, err)
	}
}

func TestResolveUnreachableNextHop(t *testing.T) {
	rib := baseRIB()
	f := New(rib, nil)
	_, err := f.Resolve(routing.Route{
		Prefix:   pfx("203.0.113.0/24"),
		NextHops: []routing.NextHop{{IP: addr("99.99.99.99")}},
	})
	if err == nil || !strings.Contains(err.Error(), "no route to next hop") {
		t.Errorf("err = %v", err)
	}
}

func TestResolveSelfNextHopIsReceive(t *testing.T) {
	rib := baseRIB()
	f := New(rib, []netip.Addr{addr("1.1.1.1")})
	hops, err := f.Resolve(routing.Route{
		Prefix:   pfx("203.0.113.0/24"),
		NextHops: []routing.NextHop{{IP: addr("1.1.1.1")}},
	})
	if err != nil || len(hops) != 1 || !hops[0].Receive {
		t.Errorf("self next hop = %+v, %v", hops, err)
	}
}

func TestResolveRecursionLimit(t *testing.T) {
	rib := routing.NewRIB()
	// 10.0.0.0/8 -> 11.0.0.1; 11.0.0.0/8 -> 10.0.0.1 (mutual recursion).
	rib.Install(routing.Route{Prefix: pfx("10.0.0.0/8"), Protocol: routing.ProtoStatic,
		NextHops: []routing.NextHop{{IP: addr("11.0.0.1")}}})
	rib.Install(routing.Route{Prefix: pfx("11.0.0.0/8"), Protocol: routing.ProtoStatic,
		NextHops: []routing.NextHop{{IP: addr("10.0.0.1")}}})
	f := New(rib, nil)
	r, _ := rib.Get(pfx("10.0.0.0/8"))
	if _, err := f.Resolve(r); err == nil || !strings.Contains(err.Error(), "recursion limit") {
		t.Errorf("err = %v, want recursion limit", err)
	}
}

func TestResolveECMP(t *testing.T) {
	rib := baseRIB()
	rib.Install(routing.Route{
		Prefix: pfx("10.0.1.0/31"), Protocol: routing.ProtoConnected,
		NextHops: []routing.NextHop{{Interface: "Ethernet2"}},
	})
	rib.Install(routing.Route{
		Prefix: pfx("203.0.113.0/24"), Protocol: routing.ProtoISIS, Distance: 115,
		NextHops: []routing.NextHop{
			{IP: addr("10.0.0.1"), Interface: "Ethernet1"},
			{IP: addr("10.0.1.1"), Interface: "Ethernet2"},
		},
	})
	f := New(rib, nil)
	r, _ := rib.Get(pfx("203.0.113.0/24"))
	hops, err := f.Resolve(r)
	if err != nil || len(hops) != 2 {
		t.Errorf("ECMP = %+v, %v", hops, err)
	}
}

func TestExportAFT(t *testing.T) {
	rib := baseRIB()
	rib.Install(routing.Route{
		Prefix: pfx("192.0.2.0/24"), Protocol: routing.ProtoISIS, Distance: 115, Metric: 20,
		NextHops: []routing.NextHop{{IP: addr("10.0.0.1"), Interface: "Ethernet1"}},
	})
	rib.Install(routing.Route{
		Prefix: pfx("99.0.0.0/8"), Protocol: routing.ProtoEBGP, Distance: 20,
		NextHops: []routing.NextHop{{IP: addr("42.42.42.42")}}, // unresolvable
	})
	f := New(rib, []netip.Addr{addr("10.0.0.0"), addr("1.1.1.1")})
	a := f.ExportAFT("r1", []mpls.CrossConnect{
		{InLabel: 100, OutLabel: 200, NextHop: addr("10.0.0.1"), LSPName: "T1"},
		{InLabel: 101, OutLabel: 0, NextHop: addr("10.0.0.1"), LSPName: "T2"},
	})
	if err := a.Validate(); err != nil {
		t.Fatalf("exported AFT invalid: %v", err)
	}
	// 3 resolvable IPv4 routes (connected, local, isis); the unresolvable
	// eBGP route is skipped.
	if len(a.IPv4Entries) != 3 {
		t.Errorf("IPv4 entries = %+v, want 3", a.IPv4Entries)
	}
	for _, e := range a.IPv4Entries {
		if e.Prefix == "99.0.0.0/8" {
			t.Error("unresolvable route exported")
		}
	}
	if len(a.LabelEntries) != 2 {
		t.Fatalf("label entries = %+v", a.LabelEntries)
	}
	if !a.LabelEntries[1].Pop {
		t.Error("tail cross-connect not marked pop")
	}
	hops := a.GroupHops(a.LabelEntries[0].NextHopGroup)
	if len(hops) != 1 || len(hops[0].PushedLabels) != 1 || hops[0].PushedLabels[0] != 200 {
		t.Errorf("swap entry hops = %+v", hops)
	}
}

func TestExportAFTDeterministic(t *testing.T) {
	build := func() string {
		rib := baseRIB()
		for i := 0; i < 50; i++ {
			rib.Install(routing.Route{
				Prefix:   netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i), 0, 0}), 16),
				Protocol: routing.ProtoISIS, Distance: 115,
				NextHops: []routing.NextHop{{IP: addr("10.0.0.1"), Interface: "Ethernet1"}},
			})
		}
		f := New(rib, nil)
		return f.ExportAFT("r1", nil).Fingerprint()
	}
	if build() != build() {
		t.Error("AFT export not deterministic")
	}
}
