// Package dataplane builds a device's forwarding state from its RIB: it
// performs recursive next-hop resolution (a BGP next hop several IGP hops
// away resolves to a connected adjacency), constructs the FIB, and exports
// the result in the OpenConfig-shaped AFT model.
package dataplane

import (
	"fmt"
	"net/netip"

	"mfv/internal/aft"
	"mfv/internal/mpls"
	"mfv/internal/routing"
)

// maxRecursion bounds next-hop resolution depth; deeper chains indicate a
// routing loop in recursive resolution.
const maxRecursion = 8

// ResolvedHop is a fully resolved forwarding action.
type ResolvedHop struct {
	// IP is the immediate adjacent address (on a connected subnet).
	IP netip.Addr
	// Interface is the egress port.
	Interface string
	// Labels is the MPLS stack pushed on egress.
	Labels []uint32
	// Drop marks a discard action.
	Drop bool
	// Receive marks local delivery.
	Receive bool
}

// FIB is the resolved forwarding table.
type FIB struct {
	rib *routing.RIB
	// localAddrs are this device's own interface addresses (local
	// delivery).
	localAddrs map[netip.Addr]bool
}

// New builds a FIB view over a RIB. localAddrs are the device's own
// addresses.
func New(rib *routing.RIB, localAddrs []netip.Addr) *FIB {
	m := make(map[netip.Addr]bool, len(localAddrs))
	for _, a := range localAddrs {
		m[a] = true
	}
	return &FIB{rib: rib, localAddrs: m}
}

// Resolve fully resolves the forwarding action(s) for a route.
func (f *FIB) Resolve(r routing.Route) ([]ResolvedHop, error) {
	if r.Drop {
		return []ResolvedHop{{Drop: true}}, nil
	}
	if r.Protocol == routing.ProtoLocal {
		// The device's own address: local delivery, not forwarding.
		return []ResolvedHop{{Receive: true}}, nil
	}
	var out []ResolvedHop
	for _, nh := range r.NextHops {
		hops, err := f.resolveHop(nh, 0)
		if err != nil {
			return nil, fmt.Errorf("dataplane: resolving %v: %w", r.Prefix, err)
		}
		out = append(out, hops...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataplane: route %v resolved to nothing", r.Prefix)
	}
	return dedupHops(out), nil
}

func (f *FIB) resolveHop(nh routing.NextHop, depth int) ([]ResolvedHop, error) {
	if depth > maxRecursion {
		return nil, fmt.Errorf("recursion limit hit at %v", nh.IP)
	}
	// Direct (connected) hop: interface known, or no IP at all.
	if nh.Interface != "" {
		return []ResolvedHop{{IP: nh.IP, Interface: nh.Interface, Labels: nh.LabelStack}}, nil
	}
	if !nh.IP.IsValid() {
		return nil, fmt.Errorf("next hop with neither interface nor address")
	}
	if f.localAddrs[nh.IP] {
		return []ResolvedHop{{Receive: true}}, nil
	}
	via, ok := f.rib.Lookup(nh.IP)
	if !ok {
		return nil, fmt.Errorf("no route to next hop %v", nh.IP)
	}
	if via.Drop {
		return []ResolvedHop{{Drop: true}}, nil
	}
	var out []ResolvedHop
	for _, inner := range via.NextHops {
		if via.Protocol == routing.ProtoConnected || via.Protocol == routing.ProtoLocal {
			// Terminal: the original next hop is on a connected subnet.
			intf := inner.Interface
			hop := ResolvedHop{IP: nh.IP, Interface: intf, Labels: nh.LabelStack}
			if via.Protocol == routing.ProtoLocal {
				hop = ResolvedHop{Receive: true}
			}
			out = append(out, hop)
			continue
		}
		resolved, err := f.resolveHop(inner, depth+1)
		if err != nil {
			return nil, err
		}
		// The recursive route's labels stack under the original's.
		for i := range resolved {
			if len(nh.LabelStack) > 0 {
				resolved[i].Labels = append(append([]uint32{}, nh.LabelStack...), resolved[i].Labels...)
			}
		}
		out = append(out, resolved...)
	}
	return out, nil
}

func dedupHops(in []ResolvedHop) []ResolvedHop {
	var out []ResolvedHop
	seen := map[string]bool{}
	for _, h := range in {
		key := fmt.Sprintf("%v|%s|%v|%v|%v", h.IP, h.Interface, h.Labels, h.Drop, h.Receive)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, h)
	}
	return out
}

// ExportAFT renders the full RIB as an AFT, resolving every elected route.
// Unresolvable routes are skipped (they are not programmed into hardware on
// real devices either). crossConnects adds MPLS ILM entries.
func (f *FIB) ExportAFT(device string, crossConnects []mpls.CrossConnect) *aft.AFT {
	b := aft.NewBuilder(device)
	for _, r := range f.rib.Routes() {
		hops, err := f.Resolve(r)
		if err != nil {
			continue
		}
		var idx []uint64
		for _, h := range hops {
			idx = append(idx, b.AddNextHop(aftHop(h)))
		}
		b.AddIPv4(r.Prefix, b.AddGroup(idx), r.Protocol.String(), r.Metric)
	}
	for _, xc := range crossConnects {
		var hop ResolvedHop
		if xc.NextHop.IsValid() {
			hop = ResolvedHop{IP: xc.NextHop}
			if via, ok := f.rib.Lookup(xc.NextHop); ok && len(via.NextHops) > 0 {
				hop.Interface = via.NextHops[0].Interface
			}
			if xc.OutLabel != 0 {
				hop.Labels = []uint32{xc.OutLabel}
			}
		} else {
			// Tail-end pop with no downstream hop: the inner packet is
			// delivered to the local IP stack.
			hop = ResolvedHop{Receive: true}
		}
		idx := b.AddNextHop(aftHop(hop))
		b.AddLabel(xc.InLabel, b.AddGroup([]uint64{idx}), xc.OutLabel == 0)
	}
	return b.Build()
}

func aftHop(h ResolvedHop) aft.NextHop {
	nh := aft.NextHop{
		Interface:    h.Interface,
		PushedLabels: h.Labels,
		Drop:         h.Drop,
		Receive:      h.Receive,
	}
	if h.IP.IsValid() {
		nh.IPAddress = h.IP.String()
	}
	return nh
}
