// Package gnmi implements the management-plane extraction interface of the
// pipeline: a gNMI-like Get/Subscribe RPC service carrying OpenConfig-shaped
// AFT payloads as JSON over TCP. The verification stage pulls converged
// forwarding state exclusively through this boundary when configured to,
// mirroring the paper's vendor-agnostic "dump AFTs via gNMI" step.
//
// The wire protocol is newline-delimited JSON frames; one request per line,
// one response per line (Subscribe streams multiple response lines ending
// with a final frame marked Done).
package gnmi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"mfv/internal/aft"
	"mfv/internal/diag"
	"mfv/internal/obs"
)

// Paths understood by the server.
const (
	PathAFT      = "/network-instances/network-instance/afts"
	PathHostname = "/system/state/hostname"
	PathRoutes   = "/network-instances/network-instance/protocols" // route table summary
)

// Request is one RPC frame.
type Request struct {
	ID     uint64 `json:"id"`
	Method string `json:"method"` // "Capabilities" | "Get" | "Subscribe"
	Target string `json:"target,omitempty"`
	Path   string `json:"path,omitempty"`
}

// Response is one reply frame.
type Response struct {
	ID      uint64          `json:"id"`
	Error   string          `json:"error,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Done closes a Subscribe stream (and accompanies every Get reply).
	Done bool `json:"done"`
}

// Target is a device the server can answer for.
type Target interface {
	// Hostname returns the device name.
	Hostname() string
	// AFT returns the current abstract forwarding table.
	AFT() *aft.AFT
	// RouteSummary returns protocol -> route count.
	RouteSummary() map[string]int
}

// Server serves the management RPCs for a set of targets.
type Server struct {
	mu      sync.RWMutex
	targets map[string]Target
	ln      net.Listener
	wg      sync.WaitGroup
	closed  bool

	// Per-RPC metrics. RPC handlers run on per-connection goroutines, so
	// the server records metrics only (atomic) and emits no trace events —
	// trace ordering would not be deterministic here.
	cRPCs  *obs.Counter
	cBytes *obs.Counter
	hRPCNs *obs.Histogram
}

// SetObserver enables per-RPC metrics: gnmi_rpcs_total, gnmi_bytes_total
// (response payload bytes), and the gnmi_rpc_ns wall-latency histogram.
func (s *Server) SetObserver(o *obs.Observer) {
	s.cRPCs = o.Counter("gnmi_rpcs_total")
	s.cBytes = o.Counter("gnmi_bytes_total")
	s.hRPCNs = o.Histogram("gnmi_rpc_ns")
}

// NewServer builds an empty server; register targets with AddTarget.
func NewServer() *Server {
	return &Server{targets: map[string]Target{}}
}

// AddTarget registers a device.
func (s *Server) AddTarget(t Target) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.targets[t.Hostname()] = t
}

// Serve starts accepting connections on ln; it returns immediately.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			enc.Encode(Response{Error: "malformed request", Done: true})
			w.Flush()
			return
		}
		resp := s.dispatch(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	if s.cRPCs != nil {
		start := time.Now()
		defer func() { s.hRPCNs.Observe(time.Since(start).Nanoseconds()) }()
		s.cRPCs.Inc()
	}
	switch req.Method {
	case "Capabilities":
		payload, _ := json.Marshal(map[string]any{
			"supported-models": []string{"openconfig-aft", "openconfig-system"},
			"encodings":        []string{"JSON"},
		})
		return Response{ID: req.ID, Payload: payload, Done: true}
	case "Get", "Subscribe":
		// Subscribe is served in ONCE mode: snapshot then Done, which is
		// exactly what the extraction step needs post-convergence.
		return s.get(req)
	default:
		return Response{ID: req.ID, Error: fmt.Sprintf("unknown method %q", req.Method), Done: true}
	}
}

func (s *Server) get(req Request) Response {
	s.mu.RLock()
	t, ok := s.targets[req.Target]
	s.mu.RUnlock()
	if !ok {
		return Response{ID: req.ID, Error: fmt.Sprintf("unknown target %q", req.Target), Done: true}
	}
	var (
		payload []byte
		err     error
	)
	switch req.Path {
	case PathAFT:
		payload, err = t.AFT().Marshal()
	case PathHostname:
		payload, err = json.Marshal(t.Hostname())
	case PathRoutes:
		payload, err = json.Marshal(t.RouteSummary())
	default:
		return Response{ID: req.ID, Error: fmt.Sprintf("unsupported path %q", req.Path), Done: true}
	}
	if err != nil {
		return Response{ID: req.ID, Error: err.Error(), Done: true}
	}
	s.cBytes.Add(uint64(len(payload)))
	return Response{ID: req.ID, Payload: payload, Done: true}
}

// DefaultTimeout bounds each RPC exchange. A wedged server (accepted the
// connection, never answers) otherwise hangs extraction forever; the paper's
// pipeline treats a device that stops answering as a failed pull, not a
// stalled run.
const DefaultTimeout = 10 * time.Second

// Client is a management-plane client.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	enc     *json.Encoder
	w       *bufio.Writer
	next    uint64
	timeout time.Duration
}

// Dial connects to a server using DefaultTimeout for both the connection
// attempt and subsequent RPCs.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultTimeout)
}

// DialTimeout connects with an explicit per-RPC (and dial) deadline;
// timeout <= 0 disables deadlines entirely.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	d := net.Dialer{Timeout: timeout}
	if timeout <= 0 {
		d.Timeout = 0
	}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gnmi: %w", err)
	}
	c := NewClient(conn)
	c.SetTimeout(timeout)
	return c, nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	w := bufio.NewWriter(conn)
	return &Client{conn: conn, r: bufio.NewReader(conn), w: w, enc: json.NewEncoder(w), timeout: DefaultTimeout}
}

// SetTimeout changes the per-RPC deadline; <= 0 disables it.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one request/response exchange.
func (c *Client) call(method, target, path string) (json.RawMessage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	c.next++
	req := Request{ID: c.next, Method: method, Target: target, Path: path}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("gnmi: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("gnmi: flush: %w", err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("gnmi: recv: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("gnmi: decode: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("gnmi: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("gnmi: remote: %s", resp.Error)
	}
	return resp.Payload, nil
}

// Capabilities returns the server's model list.
func (c *Client) Capabilities() (map[string]any, error) {
	payload, err := c.call("Capabilities", "", "")
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("gnmi: %w", err)
	}
	return out, nil
}

// GetAFT pulls the target's abstract forwarding table. Transport failures
// come back as plain errors; a payload that arrives intact but fails to
// decode or validate is a *diag.Error attributed to the target — the caller
// can distinguish "extraction broke" from "this device produced hostile
// data" and contain the latter per device.
func (c *Client) GetAFT(target string) (*aft.AFT, error) {
	payload, err := c.call("Get", target, PathAFT)
	if err != nil {
		return nil, err
	}
	a, err := aft.Unmarshal(payload)
	if err != nil {
		return nil, diag.Wrap(err, diag.SevFatal, "gnmi", target).WithPath(PathAFT)
	}
	return a, nil
}

// GetHostname fetches the device hostname.
func (c *Client) GetHostname(target string) (string, error) {
	payload, err := c.call("Get", target, PathHostname)
	if err != nil {
		return "", err
	}
	var name string
	if err := json.Unmarshal(payload, &name); err != nil {
		return "", fmt.Errorf("gnmi: %w", err)
	}
	return name, nil
}

// GetRouteSummary fetches protocol -> route count.
func (c *Client) GetRouteSummary(target string) (map[string]int, error) {
	payload, err := c.call("Get", target, PathRoutes)
	if err != nil {
		return nil, err
	}
	var out map[string]int
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("gnmi: %w", err)
	}
	return out, nil
}
