package gnmi

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// TestHungServerTimesOut points the client at a listener that accepts the
// connection and then never responds. Without a deadline the RPC would block
// forever; with one it returns a timeout error promptly.
func TestHungServerTimesOut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Hold the connection open, read nothing, answer nothing.
		defer conn.Close()
		time.Sleep(5 * time.Second)
	}()

	c, err := DialTimeout(ln.Addr().String(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.GetAFT("r1")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("hung server produced no error")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Errorf("want timeout error, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RPC still blocked after 2s — deadline not applied")
	}
}

// TestTimeoutDisabled verifies SetTimeout(0) removes deadlines: a slow (but
// not dead) server inside the old 50ms window still gets its answer through.
func TestTimeoutDisabled(t *testing.T) {
	_, addr := startServer(t, newFake("r1"))
	c, err := DialTimeout(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(0)
	if _, err := c.GetAFT("r1"); err != nil {
		t.Errorf("deadline-free call failed: %v", err)
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		Attempts: 5,
		Base:     100 * time.Millisecond,
		Max:      250 * time.Millisecond,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := p.Do(func() error {
		if calls++; calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 4 {
		t.Errorf("calls = %d", calls)
	}
	// Exponential and capped: 100ms, 200ms, then clamped at 250ms.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept = %v", slept)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep[%d] = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestRetryExhausted(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do(func() error { calls++; return errors.New("down") })
	if calls != 3 {
		t.Errorf("calls = %d", calls)
	}
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "down") {
		t.Errorf("underlying error lost: %v", err)
	}
}

func TestRetryJitterDeterministicWithSeam(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		Attempts: 3,
		Base:     100 * time.Millisecond,
		Jitter:   true,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
		Rand:     func(n int64) int64 { return n / 2 },
	}
	p.Do(func() error { return errors.New("x") })
	// Full jitter draws from [0, delay]; the seam returns delay/2.
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep[%d] = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestRetryZeroValuePolicy(t *testing.T) {
	calls := 0
	if err := (RetryPolicy{}).Do(func() error { calls++; return errors.New("x") }); err == nil {
		t.Error("zero-value policy swallowed the error")
	} else if strings.Contains(err.Error(), "attempts") {
		t.Errorf("single attempt should not be annotated: %v", err)
	}
	if calls != 1 {
		t.Errorf("zero-value policy made %d calls", calls)
	}
}

// TestRetryGetAFT retries through a real server: the first attempts hit an
// unknown target, then the target is registered and the pull succeeds.
func TestRetryGetAFT(t *testing.T) {
	s, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	attempt := 0
	p := RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {
		if attempt++; attempt == 1 {
			s.AddTarget(newFake("r1"))
		}
	}}
	a, err := p.GetAFT(c, "r1")
	if err != nil {
		t.Fatalf("GetAFT = %v", err)
	}
	if a.Device != "r1" {
		t.Errorf("device = %q", a.Device)
	}
}
