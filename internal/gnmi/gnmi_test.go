package gnmi

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"

	"mfv/internal/aft"
)

type fakeTarget struct {
	name string
	a    *aft.AFT
}

func (f *fakeTarget) Hostname() string { return f.name }
func (f *fakeTarget) AFT() *aft.AFT    { return f.a }
func (f *fakeTarget) RouteSummary() map[string]int {
	return map[string]int{"isis": 3, "connected": 2}
}

func newFake(name string) *fakeTarget {
	b := aft.NewBuilder(name)
	nh := b.AddNextHop(aft.NextHop{IPAddress: "10.0.0.1", Interface: "Ethernet1"})
	g := b.AddGroup([]uint64{nh})
	b.AddIPv4(netip.MustParsePrefix("192.0.2.0/24"), g, "isis", 20)
	return &fakeTarget{name: name, a: b.Build()}
}

func startServer(t *testing.T, targets ...Target) (*Server, string) {
	t.Helper()
	s := NewServer()
	for _, tg := range targets {
		s.AddTarget(tg)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Serve(ln)
	t.Cleanup(s.Close)
	return s, ln.Addr().String()
}

func TestGetAFTOverTCP(t *testing.T) {
	_, addr := startServer(t, newFake("r1"))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, err := c.GetAFT("r1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Device != "r1" || len(a.IPv4Entries) != 1 || a.IPv4Entries[0].Prefix != "192.0.2.0/24" {
		t.Errorf("AFT = %+v", a)
	}
}

func TestGetHostnameAndRoutes(t *testing.T) {
	_, addr := startServer(t, newFake("r1"))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	name, err := c.GetHostname("r1")
	if err != nil || name != "r1" {
		t.Errorf("hostname = %q, %v", name, err)
	}
	rs, err := c.GetRouteSummary("r1")
	if err != nil || rs["isis"] != 3 {
		t.Errorf("routes = %v, %v", rs, err)
	}
}

func TestCapabilities(t *testing.T) {
	_, addr := startServer(t, newFake("r1"))
	c, _ := Dial(addr)
	defer c.Close()
	caps, err := c.Capabilities()
	if err != nil {
		t.Fatal(err)
	}
	models, ok := caps["supported-models"].([]any)
	if !ok || len(models) == 0 || models[0] != "openconfig-aft" {
		t.Errorf("capabilities = %v", caps)
	}
}

func TestErrors(t *testing.T) {
	_, addr := startServer(t, newFake("r1"))
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.GetAFT("ghost"); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := c.call("Get", "r1", "/nope"); err == nil {
		t.Error("unsupported path accepted")
	}
	if _, err := c.call("Frobnicate", "", ""); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestSubscribeOnceMode(t *testing.T) {
	_, addr := startServer(t, newFake("r1"))
	c, _ := Dial(addr)
	defer c.Close()
	payload, err := c.call("Subscribe", "r1", PathAFT)
	if err != nil {
		t.Fatal(err)
	}
	a, err := aft.Unmarshal(payload)
	if err != nil || a.Device != "r1" {
		t.Errorf("subscribe snapshot = %+v, %v", a, err)
	}
}

func TestMultipleTargetsAndSequentialCalls(t *testing.T) {
	_, addr := startServer(t, newFake("r1"), newFake("r2"), newFake("r3"))
	c, _ := Dial(addr)
	defer c.Close()
	for _, name := range []string{"r1", "r2", "r3", "r1"} {
		a, err := c.GetAFT(name)
		if err != nil || a.Device != name {
			t.Errorf("GetAFT(%s) = %v, %v", name, a, err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	var targets []Target
	for i := 0; i < 10; i++ {
		targets = append(targets, newFake(fmt.Sprintf("r%d", i)))
	}
	_, addr := startServer(t, targets...)
	var wg sync.WaitGroup
	errs := make(chan error, 10)
	for i := 0; i < 10; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				name := fmt.Sprintf("r%d", (i+j)%10)
				a, err := c.GetAFT(name)
				if err != nil {
					errs <- err
					return
				}
				if a.Device != name {
					errs <- fmt.Errorf("got %s want %s", a.Device, name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMalformedRequestClosesConnection(t *testing.T) {
	_, addr := startServer(t, newFake("r1"))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("this is not json\n"))
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if n == 0 {
		t.Fatal("no error response")
	}
	// Connection should be closed after the error frame.
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection stayed open after malformed request")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, _ := startServer(t, newFake("r1"))
	s.Close()
	s.Close()
}
