package gnmi

import (
	"fmt"
	"math/rand"
	"time"

	"mfv/internal/aft"
)

// RetryPolicy retries transient management-plane failures with capped
// exponential backoff and full jitter. Extraction runs against emulated
// devices that may be mid-reboot when polled; a bounded retry turns those
// windows into short delays instead of failed runs, while the cap keeps a
// genuinely dead target from stalling the pipeline.
type RetryPolicy struct {
	// Attempts is the total number of tries (not retries); <= 0 means 1.
	Attempts int
	// Base is the first backoff delay; doubled each attempt. Zero means
	// 100ms.
	Base time.Duration
	// Max caps the backoff growth. Zero means 5s.
	Max time.Duration
	// Jitter, when true, replaces each delay with a uniform draw from
	// [0, delay] ("full jitter") so synchronized clients fan out.
	Jitter bool

	// Sleep and Rand are test seams; nil means time.Sleep and the global
	// math/rand source.
	Sleep func(time.Duration)
	Rand  func(int64) int64
}

// DefaultRetry is the policy the extraction pipeline uses: 4 tries over
// roughly 100ms + 200ms + 400ms of backoff before giving up.
var DefaultRetry = RetryPolicy{Attempts: 4, Base: 100 * time.Millisecond, Max: 5 * time.Second, Jitter: true}

// Do runs fn until it succeeds or attempts are exhausted, sleeping the
// backoff schedule between tries. The last error is returned, annotated
// with the attempt count when more than one was made.
func (p RetryPolicy) Do(fn func() error) error {
	attempts := p.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	base := p.Base
	if base == 0 {
		base = 100 * time.Millisecond
	}
	max := p.Max
	if max == 0 {
		max = 5 * time.Second
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	rnd := p.Rand
	if rnd == nil {
		rnd = rand.Int63n
	}

	var err error
	delay := base
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		d := delay
		if p.Jitter {
			d = time.Duration(rnd(int64(d) + 1))
		}
		sleep(d)
		if delay *= 2; delay > max {
			delay = max
		}
	}
	if attempts > 1 {
		return fmt.Errorf("gnmi: after %d attempts: %w", attempts, err)
	}
	return err
}

// GetAFT is Client.GetAFT under this retry policy. Reconnecting is the
// caller's concern: the same client is reused across attempts.
func (p RetryPolicy) GetAFT(c *Client, target string) (*aft.AFT, error) {
	var a *aft.AFT
	err := p.Do(func() error {
		var e error
		a, e = c.GetAFT(target)
		return e
	})
	return a, err
}
