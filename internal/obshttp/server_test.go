package obshttp

// HTTP-face contracts: probe semantics, Prometheus and JSON exposition over
// HTTP, SSE live streaming and replay, and managed Start/Close lifecycle.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mfv/internal/obs"
)

func newTestServer(t *testing.T, o *obs.Observer) (*Server, *httptest.Server) {
	t.Helper()
	s := New(o)
	s.Heartbeat = 50 * time.Millisecond // keep SSE tests snappy
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHealthzAndIndex(t *testing.T) {
	_, ts := newTestServer(t, obs.New())
	code, body, _ := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body, hdr := get(t, ts.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "<html") {
		t.Errorf("/ = %d (len %d)", code, len(body))
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("index Content-Type = %q", ct)
	}
	if code, _, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", code)
	}
}

func TestReadyzFlipsOnSetReady(t *testing.T) {
	s, ts := newTestServer(t, obs.New())
	if code, body, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "not ready") {
		t.Errorf("/readyz before ready = %d %q", code, body)
	}
	s.SetReady(true)
	if code, body, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("/readyz after ready = %d %q", code, body)
	}
}

func TestReadyzAutoFlipsOnConverged(t *testing.T) {
	o := obs.NewMetricsOnly()
	s, ts := newTestServer(t, o)
	o.Emit(obs.Event{Type: obs.EvRouteChurn}) // unrelated traffic is ignored
	if s.Ready() {
		t.Fatal("ready before convergence")
	}
	o.Emit(obs.Event{Type: obs.EvConverged, Value: 1})
	deadline := time.Now().Add(2 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("readiness watcher never saw the converged event")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d after converged", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	o := obs.NewMetricsOnly()
	_, ts := newTestServer(t, o)
	o.Counter("chaos_faults_total", "kind", "link-cut").Add(2)
	h := o.Histogram("chaos_reconverge_ns", "kind", "link-cut")
	h.Observe(1)
	h.Observe(3)
	code, body, hdr := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE chaos_faults_total counter",
		`chaos_faults_total{kind="link-cut"} 2`,
		`chaos_reconverge_ns_bucket{kind="link-cut",le="1"} 1`,
		`chaos_reconverge_ns_bucket{kind="link-cut",le="3"} 2`,
		`chaos_reconverge_ns_bucket{kind="link-cut",le="+Inf"} 2`,
		`chaos_reconverge_ns_count{kind="link-cut"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsJSONAndPhases(t *testing.T) {
	o := obs.New()
	_, ts := newTestServer(t, o)
	o.Counter("c_total").Inc()
	o.RecordPhase("verify", 0, 2e9, 1e6)
	code, body, hdr := get(t, ts.URL+"/metrics.json")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/metrics.json = %d %q", code, hdr.Get("Content-Type"))
	}
	var snap obs.SnapshotJSON
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "c_total" && m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("c_total missing from %s", body)
	}
	code, body, _ = get(t, ts.URL+"/phases")
	var phases []obs.PhaseJSON
	if code != http.StatusOK {
		t.Fatalf("/phases = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &phases); err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 || phases[0].Name != "verify" || phases[0].VDurNS != 2e9 {
		t.Errorf("phases = %+v", phases)
	}
}

// sseOpen issues a GET against /events and reads until the stream-open
// comment, proving the handler has subscribed to the bus.
func sseOpen(t *testing.T, url string) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("/events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": stream open") {
		resp.Body.Close()
		t.Fatalf("no stream-open preamble: %q %v", line, err)
	}
	return br, func() { resp.Body.Close() }
}

// readDataLine scans the stream until the next `data:` line (skipping
// heartbeats and blanks) and decodes its JSON payload.
func readDataLine(t *testing.T, br *bufio.Reader) eventJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e eventJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &e); err != nil {
			t.Fatalf("bad data line %q: %v", line, err)
		}
		return e
	}
	t.Fatal("no data line before deadline")
	return eventJSON{}
}

// TestEventsStreamLive is the acceptance check for "events stream while the
// run is in flight": a metrics-only observer (the -listen default) delivers
// events emitted after the client connected.
func TestEventsStreamLive(t *testing.T) {
	o := obs.NewMetricsOnly()
	_, ts := newTestServer(t, o)
	br, closeBody := sseOpen(t, ts.URL+"/events")
	defer closeBody()
	o.Emit(obs.Event{At: 7 * time.Second, Type: obs.EvFaultInject, Device: "r3", Detail: "pod-crash r3"})
	e := readDataLine(t, br)
	if e.Type != obs.EvFaultInject || e.Device != "r3" || e.AtNS != int64(7*time.Second) {
		t.Errorf("streamed event = %+v", e)
	}
	if e.WallNS == 0 {
		t.Error("live event missing wall timestamp")
	}
}

// TestEventsReplay: a trace-collecting observer replays its retained tail to
// late subscribers before streaming new events.
func TestEventsReplay(t *testing.T) {
	o := obs.New()
	_, ts := newTestServer(t, o)
	for i := 0; i < 5; i++ {
		o.Emit(obs.Event{At: time.Duration(i+1) * time.Millisecond, Type: obs.EvRouteChurn, Value: int64(i)})
	}
	br, closeBody := sseOpen(t, ts.URL+"/events?replay=2")
	defer closeBody()
	// The replayed tail is the last two retained events, in order.
	if e := readDataLine(t, br); e.Value != 3 || e.WallNS != 0 {
		t.Errorf("first replayed = %+v (replay must be the retained trace, unstamped)", e)
	}
	if e := readDataLine(t, br); e.Value != 4 {
		t.Errorf("second replayed = %+v", e)
	}
	// Live events follow the replay on the same stream.
	o.Emit(obs.Event{At: time.Second, Type: obs.EvConverged, Value: 99})
	if e := readDataLine(t, br); e.Type != obs.EvConverged || e.Value != 99 {
		t.Errorf("live-after-replay = %+v", e)
	}
}

func TestReplayCountParsing(t *testing.T) {
	for q, want := range map[string]int{
		"": 0, "replay=10": 10, "replay=-3": 0, "replay=garbage": 0,
	} {
		r := httptest.NewRequest(http.MethodGet, "/events?"+q, nil)
		if got := replayCount(r); got != want {
			t.Errorf("replayCount(%q) = %d, want %d", q, got, want)
		}
	}
}

// TestStartClose exercises the managed listener lifecycle end to end.
func TestStartClose(t *testing.T) {
	o := obs.NewMetricsOnly()
	s := New(o)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/healthz", addr)
	code, body, _ := get(t, url)
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz over managed listener = %d %q", code, body)
	}
	// The runtime sampler is live: goroutine count lands in the registry.
	deadline := time.Now().Add(2 * time.Second)
	for o.Gauge("runtime_goroutines").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if o.Gauge("runtime_goroutines").Value() == 0 {
		t.Error("runtime sampler recorded nothing")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := http.Get(url); err == nil {
		t.Error("listener still serving after Close")
	}
}

// TestSweepReplicaMetricsExposed pins the replica-pool observability
// contract: the sweep_replicas gauge, the per-lane
// sweep_replica_candidates_total counters, and the lane supervision
// counters (restarts, retries, poisonings, journal restores) flow through
// both expositions, and the embedded dashboard carries the replica-lane
// section that renders them.
func TestSweepReplicaMetricsExposed(t *testing.T) {
	o := obs.NewMetricsOnly()
	_, ts := newTestServer(t, o)
	o.Gauge("sweep_replicas").Set(4)
	for lane, n := range map[string]int{"0": 21, "1": 21, "2": 21, "3": 20} {
		o.Counter("sweep_replica_candidates_total", "replica", lane).Add(uint64(n))
	}
	o.Counter("sweep_lane_restarts_total", "replica", "1", "cause", "panic").Inc()
	o.Counter("sweep_lane_restarts_total", "replica", "1", "cause", "drift").Inc()
	o.Counter("sweep_candidates_retried_total").Add(2)
	o.Counter("sweep_candidates_poisoned_total").Inc()
	o.Counter("sweep_candidates_restored_total").Add(40)

	code, body, _ := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE sweep_replicas gauge",
		"sweep_replicas 4",
		`sweep_replica_candidates_total{replica="0"} 21`,
		`sweep_replica_candidates_total{replica="3"} 20`,
		`sweep_lane_restarts_total{cause="panic",replica="1"} 1`,
		`sweep_lane_restarts_total{cause="drift",replica="1"} 1`,
		"sweep_candidates_retried_total 2",
		"sweep_candidates_poisoned_total 1",
		"sweep_candidates_restored_total 40",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body, _ = get(t, ts.URL+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap obs.SnapshotJSON
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	lanes := 0
	for _, m := range snap.Metrics {
		if m.Name == "sweep_replica_candidates_total" && m.Labels["replica"] != "" {
			lanes++
		}
	}
	if lanes != 4 {
		t.Errorf("metrics.json exposes %d replica lanes, want 4", lanes)
	}

	_, page, _ := get(t, ts.URL+"/")
	for _, want := range []string{
		`id="replicas-section"`, `id="replicas"`, `id="lane-health"`,
		"sweep_replica_candidates_total", "sweep_lane_restarts_total",
		"sweep_candidates_retried_total", "sweep_candidates_poisoned_total",
		"sweep_candidates_restored_total", "<th>restarts</th>",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
