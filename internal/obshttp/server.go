// Package obshttp gives the observability layer an HTTP face for
// long-running runs: Prometheus and JSON metric exposition, an SSE stream
// of live trace events, phase timings, health/readiness probes, and a
// single-file embedded dashboard — stdlib only, no build step.
//
// Endpoints:
//
//	/            embedded live dashboard (metrics table, phases, event tail)
//	/metrics     Prometheus text exposition (cumulative le histograms)
//	/metrics.json JSON snapshot (shared codec with `mfv ... -json`)
//	/events      Server-Sent Events stream of live trace events
//	/phases      completed pipeline phases as JSON
//	/healthz     200 once serving
//	/readyz      200 once the run converged (503 while booting/converging)
//
// Readiness flips automatically when a `converged` trace event passes the
// bus, or explicitly via SetReady.
package obshttp

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mfv/internal/obs"
)

//go:embed page.html
var pageHTML []byte

// eventJSON is the wire form of one live event: the deterministic trace
// fields plus the wall timestamp stamped at publication.
type eventJSON struct {
	AtNS   int64  `json:"at_ns"`
	WallNS int64  `json:"wall_ns,omitempty"`
	Type   string `json:"type"`
	Device string `json:"device,omitempty"`
	Peer   string `json:"peer,omitempty"`
	Detail string `json:"detail,omitempty"`
	Value  int64  `json:"value,omitempty"`
}

func toEventJSON(e obs.Event) eventJSON {
	out := eventJSON{
		AtNS: int64(e.At), Type: e.Type,
		Device: e.Device, Peer: e.Peer, Detail: e.Detail, Value: e.Value,
	}
	if !e.Wall.IsZero() {
		out.WallNS = e.Wall.UnixNano()
	}
	return out
}

// Server serves one observer over HTTP. Construct with New, then either
// mount Handler() yourself or call Start for a managed listener.
type Server struct {
	obs   *obs.Observer
	ready atomic.Bool

	// EventBuffer sizes each SSE client's buffer (0 = bus default).
	EventBuffer int
	// Heartbeat is the SSE keep-alive comment period (0 = 15s).
	Heartbeat time.Duration

	mu          sync.Mutex
	ln          net.Listener
	httpSrv     *http.Server
	stopSampler func()
	readySub    *obs.Subscription
}

// New returns a server over the observer. The observer may be metrics-only:
// the event bus delivers live events regardless of trace retention.
func New(o *obs.Observer) *Server {
	s := &Server{obs: o}
	// Watch the bus for the convergence milestone so /readyz flips without
	// the pipeline knowing the server exists. The filter keeps this
	// internal subscriber from ever backing up (or counting drops) on the
	// event firehose it doesn't care about.
	if sub := o.SubscribeFiltered(4, func(e obs.Event) bool { return e.Type == obs.EvConverged }); sub != nil {
		s.readySub = sub
		go func() {
			for range sub.Events() {
				s.ready.Store(true)
			}
		}()
	}
	return s
}

// SetReady flips the /readyz probe (true once the run converged).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the probe state.
func (s *Server) Ready() bool { return s.ready.Load() }

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/phases", s.handlePhases)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// Start listens on addr (host:port; an empty port picks a free one), starts
// the runtime sampler, and serves in the background. The returned address
// is the bound one — useful with ":0".
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.ln = ln
	s.httpSrv = srv
	s.stopSampler = s.obs.StartRuntimeSampler(0)
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr(), nil
}

// Close stops the listener, the sampler, and the readiness watcher. Safe to
// call without Start (closes only what exists) and more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	srv, stop, sub := s.httpSrv, s.stopSampler, s.readySub
	s.httpSrv, s.stopSampler, s.readySub = nil, nil, nil
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
	if sub != nil {
		sub.Close()
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		// Shutdown waits for idle; SSE clients never go idle, so force-close
		// after the grace period.
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
	}
	return nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(pageHTML)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	s.obs.Metrics().WritePrometheus(w) //nolint:errcheck // client gone
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.obs.WriteJSON(w) //nolint:errcheck // client gone
}

func (s *Server) handlePhases(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.obs.PhasesJSON()) //nolint:errcheck // client gone
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready: converging")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleEvents streams live trace events as Server-Sent Events. `?replay=N`
// first replays up to N most recent retained trace events (trace-collecting
// observers only; a metrics-only observer has nothing to replay).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// Subscribe before replaying so no event falls between the two.
	sub := s.obs.Subscribe(s.EventBuffer)
	if sub == nil {
		http.Error(w, "no observer", http.StatusServiceUnavailable)
		return
	}
	defer sub.Close()

	write := func(e obs.Event) bool {
		data, err := json.Marshal(toEventJSON(e))
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		return true
	}

	// Open the stream visibly before the first event so clients (and load
	// balancers) see bytes immediately instead of a silent connection.
	if _, err := fmt.Fprint(w, ": stream open\n\n"); err != nil {
		return
	}

	if n := replayCount(r); n > 0 {
		events := s.obs.Events()
		if len(events) > n {
			events = events[len(events)-n:]
		}
		for _, e := range events {
			if !write(e) {
				return
			}
		}
	}
	flusher.Flush()

	hb := s.Heartbeat
	if hb <= 0 {
		hb = 15 * time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case e, open := <-sub.Events():
			if !open {
				return
			}
			if !write(e) {
				return
			}
			// Drain whatever else is buffered before flushing once — a
			// burst of events costs one syscall, not one per event.
			for drained := false; !drained; {
				select {
				case e, open := <-sub.Events():
					if !open {
						flusher.Flush()
						return
					}
					if !write(e) {
						return
					}
				default:
					drained = true
				}
			}
			flusher.Flush()
		}
	}
}

// replayCount parses ?replay=N (0 on absence or garbage).
func replayCount(r *http.Request) int {
	v := r.URL.Query().Get("replay")
	if v == "" {
		return 0
	}
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n < 0 {
		return 0
	}
	return n
}
