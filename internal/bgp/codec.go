// Package bgp implements a BGP-4 speaker: the RFC 4271 wire codec, the
// session state machine, the decision process with the full tie-break
// ladder, and policy application. The same engine runs two ways:
//
//   - event-driven inside the emulator (internal/kne) against a sim.Clock,
//     exchanging encoded messages over emulated links, and
//   - in real time over TCP via Conn (conn.go), which is used by the
//     transport ablation bench and demonstrates interoperability of the
//     codec over a real network stack.
//
// Messages always travel encoded: even in-memory neighbors marshal and
// unmarshal every UPDATE, so the codec is exercised by every experiment.
package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"mfv/internal/diag"
	"mfv/internal/policy"
)

// Message types per RFC 4271 §4.1.
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Path attribute type codes.
const (
	attrOrigin      = 1
	attrASPath      = 2
	attrNextHop     = 3
	attrMED         = 4
	attrLocalPref   = 5
	attrCommunities = 8
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// Origin values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// Header sizes.
const (
	headerLen = 19
	markerLen = 16
	// MaxMessageLen is the largest message the codec will emit or accept.
	MaxMessageLen = 4096
)

// Notification error codes (subset).
const (
	NotifMessageHeaderError = 1
	NotifOpenMessageError   = 2
	NotifUpdateMessageError = 3
	NotifHoldTimerExpired   = 4
	NotifFSMError           = 5
	NotifCease              = 6
)

// Open is a decoded OPEN message. The codec always offers the 4-octet-AS
// capability (RFC 6793) and encodes AS_TRANS in the fixed header field when
// the ASN does not fit 16 bits.
type Open struct {
	Version  uint8
	ASN      uint32
	HoldTime uint16 // seconds
	RouterID netip.Addr
}

// asTrans is the reserved 16-bit ASN placeholder from RFC 6793.
const asTrans = 23456

// Update is a decoded UPDATE message.
type Update struct {
	Withdrawn []netip.Prefix
	// Attrs apply to all NLRI in this message. Nil when the update only
	// withdraws.
	Attrs *PathAttrs
	NLRI  []netip.Prefix
}

// PathAttrs is the attribute bundle carried by an UPDATE.
type PathAttrs struct {
	Origin      uint8
	ASPath      []uint32
	NextHop     netip.Addr
	MED         uint32
	HasMED      bool
	LocalPref   uint32
	HasLocal    bool
	Communities []policy.Community
}

// Notification is a decoded NOTIFICATION message.
type Notification struct {
	Code, Subcode uint8
	Data          []byte
}

// Error makes Notification usable as an error.
func (n Notification) Error() string {
	return fmt.Sprintf("bgp notification: code %d subcode %d", n.Code, n.Subcode)
}

func putHeader(buf []byte, msgType uint8) {
	for i := 0; i < markerLen; i++ {
		buf[i] = 0xff
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	buf[18] = msgType
}

// EncodeOpen marshals an OPEN with the 4-octet-AS capability.
func EncodeOpen(o Open) []byte {
	// Capability: code 65 (4-octet AS), length 4.
	capability := make([]byte, 6)
	capability[0] = 65
	capability[1] = 4
	binary.BigEndian.PutUint32(capability[2:], o.ASN)
	// Optional parameter: type 2 (capabilities).
	optParam := append([]byte{2, byte(len(capability))}, capability...)

	msg := make([]byte, headerLen+10+len(optParam))
	body := msg[headerLen:]
	body[0] = o.Version
	as16 := o.ASN
	if as16 > 0xffff {
		as16 = asTrans
	}
	binary.BigEndian.PutUint16(body[1:3], uint16(as16))
	binary.BigEndian.PutUint16(body[3:5], o.HoldTime)
	copy(body[5:9], addr4(o.RouterID))
	body[9] = byte(len(optParam))
	copy(body[10:], optParam)
	putHeader(msg, MsgOpen)
	return msg
}

// EncodeKeepalive marshals a KEEPALIVE.
func EncodeKeepalive() []byte {
	msg := make([]byte, headerLen)
	putHeader(msg, MsgKeepalive)
	return msg
}

// EncodeNotification marshals a NOTIFICATION.
func EncodeNotification(n Notification) []byte {
	msg := make([]byte, headerLen+2+len(n.Data))
	msg[headerLen] = n.Code
	msg[headerLen+1] = n.Subcode
	copy(msg[headerLen+2:], n.Data)
	putHeader(msg, MsgNotification)
	return msg
}

// EncodeUpdate marshals an UPDATE known to fit one message. Oversized
// updates no longer panic: they are auto-chunked (see EncodeUpdates) and the
// first chunk is returned, so hostile or miscalculated input degrades to a
// partial announcement instead of killing the process. Callers that may
// exceed MaxMessageLen must use EncodeUpdates.
func EncodeUpdate(u Update) []byte {
	msgs, err := EncodeUpdates(u)
	if err != nil || len(msgs) == 0 {
		// Unencodable attrs: emit an empty UPDATE rather than crash. The
		// engine-side callers check EncodeUpdates' error themselves.
		return assembleUpdate(nil, nil, nil)
	}
	return msgs[0]
}

// EncodeUpdates marshals an UPDATE as one or more wire messages, each within
// MaxMessageLen. Withdrawn routes and NLRI are auto-chunked: withdrawals are
// packed first (attribute-less messages), then the path attributes are
// repeated in front of each NLRI chunk, per RFC 4271 semantics. The only
// error case is an attribute bundle so large that no NLRI fits beside it —
// input-driven (e.g. an absurd AS path), so it is reported, not panicked.
func EncodeUpdates(u Update) ([][]byte, error) {
	var attrs []byte
	if u.Attrs != nil {
		attrs = encodeAttrs(u.Attrs)
	}
	// 2-byte withdrawn length + 2-byte attribute length after the header.
	const fixed = headerLen + 4

	// The common case — everything fits in one message — keeps withdrawals,
	// attributes, and NLRI together exactly as a non-chunking encoder would.
	wd, nl := encodeNLRI(u.Withdrawn), encodeNLRI(u.NLRI)
	if fixed+len(wd)+len(attrs)+len(nl) <= MaxMessageLen {
		return [][]byte{assembleUpdate(wd, attrs, nl)}, nil
	}

	var msgs [][]byte
	// Withdrawn-only messages first.
	withdrawn := u.Withdrawn
	for len(withdrawn) > 0 {
		chunk, used := takePrefixes(withdrawn, MaxMessageLen-fixed)
		msgs = append(msgs, assembleUpdate(encodeNLRI(chunk), nil, nil))
		withdrawn = withdrawn[used:]
	}

	nlri := u.NLRI
	if len(nlri) == 0 {
		if len(attrs) > 0 || len(msgs) == 0 {
			// Attribute-only update (or a fully empty one: End-of-RIB).
			if fixed+len(attrs) > MaxMessageLen {
				return nil, fmt.Errorf("bgp: path attributes (%d bytes) exceed max message size", len(attrs))
			}
			msgs = append(msgs, assembleUpdate(nil, attrs, nil))
		}
		return msgs, nil
	}
	avail := MaxMessageLen - fixed - len(attrs)
	for len(nlri) > 0 {
		chunk, used := takePrefixes(nlri, avail)
		if used == 0 {
			return nil, fmt.Errorf("bgp: path attributes (%d bytes) leave no room for NLRI", len(attrs))
		}
		msgs = append(msgs, assembleUpdate(nil, attrs, encodeNLRI(chunk)))
		nlri = nlri[used:]
	}
	return msgs, nil
}

// takePrefixes returns the longest leading run of ps whose encoded NLRI form
// fits in budget bytes, and how many prefixes it consumed.
func takePrefixes(ps []netip.Prefix, budget int) ([]netip.Prefix, int) {
	used, size := 0, 0
	for _, p := range ps {
		n := 1 + (p.Bits()+7)/8
		if size+n > budget {
			break
		}
		size += n
		used++
	}
	return ps[:used], used
}

// assembleUpdate lays out one UPDATE from already-encoded sections.
func assembleUpdate(withdrawn, attrs, nlri []byte) []byte {
	msg := make([]byte, headerLen+4+len(withdrawn)+len(attrs)+len(nlri))
	p := msg[headerLen:]
	binary.BigEndian.PutUint16(p[0:2], uint16(len(withdrawn)))
	copy(p[2:], withdrawn)
	p = p[2+len(withdrawn):]
	binary.BigEndian.PutUint16(p[0:2], uint16(len(attrs)))
	copy(p[2:], attrs)
	copy(p[2+len(attrs):], nlri)
	putHeader(msg, MsgUpdate)
	return msg
}

// MaxNLRIPerUpdate is a conservative per-message NLRI cap that keeps any
// update with full attributes under MaxMessageLen (5 bytes per /32 worst
// case, ~700 bytes of headroom for attributes).
const MaxNLRIPerUpdate = 600

// ChunkPrefixes splits prefixes into slices of at most MaxNLRIPerUpdate.
func ChunkPrefixes(ps []netip.Prefix) [][]netip.Prefix {
	if len(ps) == 0 {
		return nil
	}
	var out [][]netip.Prefix
	for len(ps) > MaxNLRIPerUpdate {
		out = append(out, ps[:MaxNLRIPerUpdate])
		ps = ps[MaxNLRIPerUpdate:]
	}
	return append(out, ps)
}

// addr4 renders an address as 4 wire bytes. Non-IPv4 (invalid or v6)
// addresses — hostile or unset input — encode as 0.0.0.0 instead of
// panicking in As4.
func addr4(a netip.Addr) []byte {
	if !a.Is4() && !a.Is4In6() {
		return make([]byte, 4)
	}
	b := a.As4()
	return b[:]
}

func encodeNLRI(ps []netip.Prefix) []byte {
	var out []byte
	for _, p := range ps {
		// Unencodable prefixes (non-IPv4, invalid) are dropped: BGP-4 NLRI
		// carries only IPv4, and panicking on a hostile prefix would kill
		// the whole process for one bad route.
		a := p.Addr()
		bits := p.Bits()
		if (!a.Is4() && !a.Is4In6()) || bits < 0 || bits > 32 {
			continue
		}
		nbytes := (bits + 7) / 8
		out = append(out, byte(bits))
		a4 := a.As4()
		out = append(out, a4[:nbytes]...)
	}
	return out
}

func decodeNLRI(b []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, fmt.Errorf("bgp: NLRI prefix length %d > 32", bits)
		}
		nbytes := (bits + 7) / 8
		if len(b) < 1+nbytes {
			return nil, fmt.Errorf("bgp: truncated NLRI")
		}
		var a [4]byte
		copy(a[:], b[1:1+nbytes])
		out = append(out, netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked())
		b = b[1+nbytes:]
	}
	return out, nil
}

func encodeAttrs(a *PathAttrs) []byte {
	var out []byte
	put := func(flags, typ uint8, val []byte) {
		if len(val) > 255 {
			flags |= flagExtLen
			hdr := []byte{flags, typ, 0, 0}
			binary.BigEndian.PutUint16(hdr[2:], uint16(len(val)))
			out = append(out, hdr...)
		} else {
			out = append(out, flags, typ, byte(len(val)))
		}
		out = append(out, val...)
	}
	put(flagTransitive, attrOrigin, []byte{a.Origin})
	// AS_PATH: AS_SEQUENCE segments with 4-byte ASNs (4-octet capability is
	// always negotiated by this codec). The segment count is one byte, so a
	// path longer than 255 hops is split across segments — the decoder
	// concatenates them back — instead of silently wrapping the count.
	if len(a.ASPath) > 0 {
		var seg []byte
		for rest := a.ASPath; len(rest) > 0; {
			n := len(rest)
			if n > 255 {
				n = 255
			}
			s := make([]byte, 2+4*n)
			s[0] = 2 // AS_SEQUENCE
			s[1] = byte(n)
			for i, as := range rest[:n] {
				binary.BigEndian.PutUint32(s[2+4*i:], as)
			}
			seg = append(seg, s...)
			rest = rest[n:]
		}
		put(flagTransitive, attrASPath, seg)
	} else {
		put(flagTransitive, attrASPath, nil)
	}
	put(flagTransitive, attrNextHop, addr4(a.NextHop))
	if a.HasMED {
		v := make([]byte, 4)
		binary.BigEndian.PutUint32(v, a.MED)
		put(flagOptional, attrMED, v)
	}
	if a.HasLocal {
		v := make([]byte, 4)
		binary.BigEndian.PutUint32(v, a.LocalPref)
		put(flagTransitive, attrLocalPref, v)
	}
	if len(a.Communities) > 0 {
		v := make([]byte, 4*len(a.Communities))
		for i, c := range a.Communities {
			binary.BigEndian.PutUint32(v[4*i:], uint32(c))
		}
		put(flagOptional|flagTransitive, attrCommunities, v)
	}
	return out
}

func decodeAttrs(b []byte) (*PathAttrs, error) {
	a := &PathAttrs{}
	seenNextHop := false
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, fmt.Errorf("bgp: truncated attribute header")
		}
		flags, typ := b[0], b[1]
		var alen int
		var val []byte
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return nil, fmt.Errorf("bgp: truncated extended attribute")
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			b = b[4:]
		} else {
			alen = int(b[2])
			b = b[3:]
		}
		if len(b) < alen {
			return nil, fmt.Errorf("bgp: attribute %d overruns message", typ)
		}
		val, b = b[:alen], b[alen:]
		switch typ {
		case attrOrigin:
			if len(val) != 1 || val[0] > 2 {
				return nil, fmt.Errorf("bgp: bad ORIGIN")
			}
			a.Origin = val[0]
		case attrASPath:
			path, err := decodeASPath(val)
			if err != nil {
				return nil, err
			}
			a.ASPath = path
		case attrNextHop:
			if len(val) != 4 {
				return nil, fmt.Errorf("bgp: bad NEXT_HOP length %d", len(val))
			}
			var v4 [4]byte
			copy(v4[:], val)
			a.NextHop = netip.AddrFrom4(v4)
			seenNextHop = true
		case attrMED:
			if len(val) != 4 {
				return nil, fmt.Errorf("bgp: bad MED")
			}
			a.MED = binary.BigEndian.Uint32(val)
			a.HasMED = true
		case attrLocalPref:
			if len(val) != 4 {
				return nil, fmt.Errorf("bgp: bad LOCAL_PREF")
			}
			a.LocalPref = binary.BigEndian.Uint32(val)
			a.HasLocal = true
		case attrCommunities:
			if len(val)%4 != 0 {
				return nil, fmt.Errorf("bgp: bad COMMUNITIES length %d", len(val))
			}
			for i := 0; i < len(val); i += 4 {
				a.Communities = append(a.Communities, policy.Community(binary.BigEndian.Uint32(val[i:])))
			}
		default:
			// Unknown optional attributes are tolerated (transitive pass-
			// through is a simplification documented in DESIGN.md); unknown
			// well-known attributes are an error.
			if flags&flagOptional == 0 {
				return nil, fmt.Errorf("bgp: unknown well-known attribute %d", typ)
			}
		}
	}
	if !seenNextHop {
		return nil, fmt.Errorf("bgp: UPDATE with NLRI missing NEXT_HOP")
	}
	return a, nil
}

func decodeASPath(b []byte) ([]uint32, error) {
	var path []uint32
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("bgp: truncated AS_PATH segment")
		}
		segType, count := b[0], int(b[1])
		if segType != 1 && segType != 2 {
			return nil, fmt.Errorf("bgp: bad AS_PATH segment type %d", segType)
		}
		if len(b) < 2+4*count {
			return nil, fmt.Errorf("bgp: truncated AS_PATH")
		}
		for i := 0; i < count; i++ {
			path = append(path, binary.BigEndian.Uint32(b[2+4*i:]))
		}
		b = b[2+4*count:]
	}
	return path, nil
}

// DecodeHeader validates a message header and returns (type, bodyLen).
func DecodeHeader(h []byte) (uint8, int, error) {
	if len(h) < headerLen {
		return 0, 0, fmt.Errorf("bgp: short header")
	}
	for i := 0; i < markerLen; i++ {
		if h[i] != 0xff {
			return 0, 0, Notification{Code: NotifMessageHeaderError, Subcode: 1}
		}
	}
	total := int(binary.BigEndian.Uint16(h[16:18]))
	if total < headerLen || total > MaxMessageLen {
		return 0, 0, Notification{Code: NotifMessageHeaderError, Subcode: 2}
	}
	typ := h[18]
	if typ < MsgOpen || typ > MsgKeepalive {
		return 0, 0, Notification{Code: NotifMessageHeaderError, Subcode: 3}
	}
	return typ, total - headerLen, nil
}

// Decode parses one complete message (header + body). Errors are *diag.Error
// (source "bgp"); a wire-protocol Notification cause stays reachable through
// errors.As so the session layer can echo it to the peer.
func Decode(msg []byte) (any, error) {
	v, err := decode(msg)
	if err != nil {
		return nil, diag.Wrap(err, diag.SevError, "bgp", "")
	}
	return v, nil
}

func decode(msg []byte) (any, error) {
	typ, blen, err := DecodeHeader(msg)
	if err != nil {
		return nil, err
	}
	if len(msg) != headerLen+blen {
		return nil, fmt.Errorf("bgp: length mismatch: header says %d, have %d", headerLen+blen, len(msg))
	}
	body := msg[headerLen:]
	switch typ {
	case MsgOpen:
		return decodeOpen(body)
	case MsgUpdate:
		return decodeUpdate(body)
	case MsgKeepalive:
		if blen != 0 {
			return nil, Notification{Code: NotifMessageHeaderError, Subcode: 2}
		}
		return struct{}{}, nil
	case MsgNotification:
		if blen < 2 {
			return nil, fmt.Errorf("bgp: short NOTIFICATION")
		}
		return Notification{Code: body[0], Subcode: body[1], Data: append([]byte{}, body[2:]...)}, nil
	}
	return nil, fmt.Errorf("bgp: unreachable message type %d", typ)
}

func decodeOpen(b []byte) (Open, error) {
	if len(b) < 10 {
		return Open{}, Notification{Code: NotifOpenMessageError, Subcode: 0}
	}
	o := Open{
		Version:  b[0],
		ASN:      uint32(binary.BigEndian.Uint16(b[1:3])),
		HoldTime: binary.BigEndian.Uint16(b[3:5]),
	}
	var v4 [4]byte
	copy(v4[:], b[5:9])
	o.RouterID = netip.AddrFrom4(v4)
	if o.Version != 4 {
		return Open{}, Notification{Code: NotifOpenMessageError, Subcode: 1}
	}
	optLen := int(b[9])
	opts := b[10:]
	if len(opts) != optLen {
		return Open{}, Notification{Code: NotifOpenMessageError, Subcode: 0}
	}
	// Scan capabilities for 4-octet AS.
	for len(opts) >= 2 {
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return Open{}, Notification{Code: NotifOpenMessageError, Subcode: 0}
		}
		if ptype == 2 { // capabilities
			caps := opts[2 : 2+plen]
			for len(caps) >= 2 {
				code, clen := caps[0], int(caps[1])
				if len(caps) < 2+clen {
					break
				}
				if code == 65 && clen == 4 {
					o.ASN = binary.BigEndian.Uint32(caps[2:6])
				}
				caps = caps[2+clen:]
			}
		}
		opts = opts[2+plen:]
	}
	return o, nil
}

func decodeUpdate(b []byte) (Update, error) {
	var u Update
	if len(b) < 2 {
		return u, Notification{Code: NotifUpdateMessageError, Subcode: 1}
	}
	wlen := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+wlen+2 {
		return u, Notification{Code: NotifUpdateMessageError, Subcode: 1}
	}
	withdrawn, err := decodeNLRI(b[2 : 2+wlen])
	if err != nil {
		return u, err
	}
	u.Withdrawn = withdrawn
	b = b[2+wlen:]
	alen := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+alen {
		return u, Notification{Code: NotifUpdateMessageError, Subcode: 1}
	}
	nlri, err := decodeNLRI(b[2+alen:])
	if err != nil {
		return u, err
	}
	u.NLRI = nlri
	if alen > 0 {
		attrs, err := decodeAttrs(b[2 : 2+alen])
		if err != nil {
			return u, err
		}
		u.Attrs = attrs
	} else if len(nlri) > 0 {
		return u, Notification{Code: NotifUpdateMessageError, Subcode: 3}
	}
	return u, nil
}
