package bgp

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"

	"mfv/internal/diag"
	"mfv/internal/policy"
)

// FuzzDecode throws arbitrary bytes at the BGP message decoder. Properties:
// decoding never panics, every rejection is a typed *diag.Error, and any
// message the decoder accepts re-encodes canonically — once through the
// encoder, decode∘encode is a byte-identical fixed point.
func FuzzDecode(f *testing.F) {
	f.Add(EncodeKeepalive())
	f.Add(EncodeOpen(Open{Version: 4, ASN: 4200000001, HoldTime: 90,
		RouterID: netip.MustParseAddr("2.2.2.1")}))
	f.Add(EncodeNotification(Notification{Code: NotifCease, Subcode: 2, Data: []byte("bye")}))
	u := Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.9.0.0/16")},
		Attrs: &PathAttrs{
			Origin:      OriginIGP,
			ASPath:      []uint32{65001, 4200000001},
			NextHop:     netip.MustParseAddr("10.0.0.1"),
			MED:         50,
			HasMED:      true,
			LocalPref:   200,
			HasLocal:    true,
			Communities: []policy.Community{0x0001000a},
		},
		NLRI: []netip.Prefix{
			netip.MustParsePrefix("192.0.2.0/24"),
			netip.MustParsePrefix("2.2.2.4/32"),
			netip.MustParsePrefix("0.0.0.0/0"),
		},
	}
	msgs, err := EncodeUpdates(u)
	if err != nil {
		f.Fatal(err)
	}
	for _, m := range msgs {
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			var de *diag.Error
			if !errors.As(err, &de) {
				t.Fatalf("decode error is not a *diag.Error: %v", err)
			}
			return
		}
		switch m := v.(type) {
		case Open:
			enc := EncodeOpen(m)
			v2, err := Decode(enc)
			if err != nil {
				t.Fatalf("re-decoding encoded OPEN: %v", err)
			}
			if v2.(Open) != m {
				t.Fatalf("OPEN round trip: %+v != %+v", v2, m)
			}
		case Update:
			// An accepted update may carry an attribute bundle too large to
			// re-emit (EncodeUpdates reports it); that is not a round-trip
			// failure.
			msgs, err := EncodeUpdates(m)
			if err != nil {
				return
			}
			for _, enc := range msgs {
				v2, err := Decode(enc)
				if err != nil {
					t.Fatalf("re-decoding encoded UPDATE: %v", err)
				}
				msgs2, err := EncodeUpdates(v2.(Update))
				if err != nil || len(msgs2) != 1 || !bytes.Equal(msgs2[0], enc) {
					t.Fatalf("canonical UPDATE encoding is not a fixed point (err=%v)", err)
				}
			}
		case Notification:
			v2, err := Decode(EncodeNotification(m))
			if err != nil {
				t.Fatalf("re-decoding encoded NOTIFICATION: %v", err)
			}
			n2 := v2.(Notification)
			if n2.Code != m.Code || n2.Subcode != m.Subcode || !bytes.Equal(n2.Data, m.Data) {
				t.Fatalf("NOTIFICATION round trip: %+v != %+v", n2, m)
			}
		}
	})
}
