package bgp

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"mfv/internal/policy"
)

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func pfxs(ss ...string) []netip.Prefix {
	out := make([]netip.Prefix, len(ss))
	for i, s := range ss {
		out[i] = pfx(s)
	}
	return out
}

func TestOpenRoundTrip(t *testing.T) {
	in := Open{Version: 4, ASN: 65001, HoldTime: 90, RouterID: addr("10.0.0.1")}
	msg := EncodeOpen(in)
	got, err := Decode(msg)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip = %+v, want %+v", got, in)
	}
}

func TestOpenFourOctetAS(t *testing.T) {
	in := Open{Version: 4, ASN: 4200000001, HoldTime: 180, RouterID: addr("1.2.3.4")}
	msg := EncodeOpen(in)
	// The fixed 16-bit field must carry AS_TRANS.
	if got := int(msg[headerLen+1])<<8 | int(msg[headerLen+2]); got != asTrans {
		t.Errorf("fixed AS field = %d, want %d", got, asTrans)
	}
	got, err := Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.(Open).ASN != 4200000001 {
		t.Errorf("decoded ASN = %d (capability not honoured)", got.(Open).ASN)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	msg := EncodeKeepalive()
	if len(msg) != headerLen {
		t.Errorf("keepalive length = %d, want %d", len(msg), headerLen)
	}
	if _, err := Decode(msg); err != nil {
		t.Fatalf("Decode: %v", err)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	in := Notification{Code: NotifCease, Subcode: 2, Data: []byte("bye")}
	got, err := Decode(EncodeNotification(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip = %+v, want %+v", got, in)
	}
	if in.Error() == "" {
		t.Error("Notification.Error empty")
	}
}

func fullUpdate() Update {
	return Update{
		Withdrawn: pfxs("10.9.0.0/16", "192.0.2.128/25"),
		Attrs: &PathAttrs{
			Origin:      OriginIGP,
			ASPath:      []uint32{65001, 4200000001, 65003},
			NextHop:     addr("100.64.0.1"),
			MED:         50,
			HasMED:      true,
			LocalPref:   200,
			HasLocal:    true,
			Communities: []policy.Community{policy.Community(65000<<16 | 1), policy.Community(65000<<16 | 2)},
		},
		NLRI: pfxs("10.0.0.0/8", "172.16.0.0/12", "0.0.0.0/0", "203.0.113.7/32"),
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := fullUpdate()
	got, err := Decode(EncodeUpdate(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	in := Update{Withdrawn: pfxs("10.0.0.0/8")}
	got, err := Decode(EncodeUpdate(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	u := got.(Update)
	if u.Attrs != nil || len(u.NLRI) != 0 || len(u.Withdrawn) != 1 {
		t.Errorf("withdraw-only round trip = %+v", u)
	}
}

func TestUpdateEmptyASPath(t *testing.T) {
	in := Update{
		Attrs: &PathAttrs{Origin: OriginIGP, NextHop: addr("10.0.0.1")},
		NLRI:  pfxs("192.0.2.0/24"),
	}
	got, err := Decode(EncodeUpdate(in))
	if err != nil {
		t.Fatal(err)
	}
	u := got.(Update)
	if len(u.Attrs.ASPath) != 0 {
		t.Errorf("AS path = %v, want empty (locally originated)", u.Attrs.ASPath)
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	good := EncodeKeepalive()

	bad := append([]byte{}, good...)
	bad[3] = 0 // corrupt marker
	if _, _, err := DecodeHeader(bad); err == nil {
		t.Error("corrupt marker accepted")
	}

	short := good[:10]
	if _, _, err := DecodeHeader(short); err == nil {
		t.Error("short header accepted")
	}

	badType := append([]byte{}, good...)
	badType[18] = 9
	if _, _, err := DecodeHeader(badType); err == nil {
		t.Error("bad type accepted")
	}

	badLen := append([]byte{}, good...)
	badLen[16], badLen[17] = 0, 5 // < headerLen
	if _, _, err := DecodeHeader(badLen); err == nil {
		t.Error("undersized length accepted")
	}
}

func TestDecodeLengthMismatch(t *testing.T) {
	msg := EncodeKeepalive()
	if _, err := Decode(append(msg, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDecodeBadUpdate(t *testing.T) {
	// NLRI present but no attributes: missing mandatory attrs.
	msg := make([]byte, headerLen+2+2+2)
	body := msg[headerLen:]
	// withdrawn len 0, attrs len 0, NLRI "0.0.0.0/8" (len byte 8 + 1 byte)
	body[4] = 8
	body[5] = 10
	putHeader(msg, MsgUpdate)
	if _, err := Decode(msg); err == nil {
		t.Error("attribute-less UPDATE with NLRI accepted")
	}
}

func TestDecodeBadNLRIPrefixLen(t *testing.T) {
	u := EncodeUpdate(Update{Withdrawn: pfxs("10.0.0.0/8")})
	// Corrupt the withdrawn prefix length to 40.
	u[headerLen+2] = 40
	if _, err := Decode(u); err == nil {
		t.Error("prefix length 40 accepted")
	}
}

func TestChunkPrefixes(t *testing.T) {
	if ChunkPrefixes(nil) != nil {
		t.Error("ChunkPrefixes(nil) != nil")
	}
	var many []netip.Prefix
	for i := 0; i < MaxNLRIPerUpdate*2+5; i++ {
		many = append(many, netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24))
	}
	chunks := ChunkPrefixes(many)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		if len(c) > MaxNLRIPerUpdate {
			t.Errorf("chunk size %d exceeds max", len(c))
		}
		total += len(c)
	}
	if total != len(many) {
		t.Errorf("chunks lost prefixes: %d != %d", total, len(many))
	}
}

func mustDecodeUpdate(t *testing.T, m []byte) Update {
	t.Helper()
	if len(m) > MaxMessageLen {
		t.Fatalf("message is %d bytes, exceeds max %d", len(m), MaxMessageLen)
	}
	v, err := Decode(m)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	u, ok := v.(Update)
	if !ok {
		t.Fatalf("Decode returned %T, want Update", v)
	}
	return u
}

func TestEncodeUpdatesAutoChunk(t *testing.T) {
	var many []netip.Prefix
	for i := 0; i < 2000; i++ {
		many = append(many, netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}), 32))
	}
	attrs := &PathAttrs{NextHop: addr("1.1.1.1"), ASPath: []uint32{65001}}
	msgs, err := EncodeUpdates(Update{NLRI: many, Attrs: attrs})
	if err != nil {
		t.Fatalf("EncodeUpdates: %v", err)
	}
	if len(msgs) < 2 {
		t.Fatalf("oversized update produced %d messages, want auto-chunking", len(msgs))
	}
	var got []netip.Prefix
	for i, m := range msgs {
		u := mustDecodeUpdate(t, m)
		if u.Attrs == nil || u.Attrs.NextHop != addr("1.1.1.1") {
			t.Fatalf("message %d lost path attributes", i)
		}
		got = append(got, u.NLRI...)
	}
	if len(got) != len(many) {
		t.Fatalf("chunking lost prefixes: %d != %d", len(got), len(many))
	}
	for i := range got {
		if got[i] != many[i] {
			t.Fatalf("prefix %d = %v, want %v", i, got[i], many[i])
		}
	}
}

// TestEncodeUpdatesBoundary pins the exact 4096-byte boundary: an update that
// fills the maximum message exactly stays one message, and one more prefix
// spills into a second.
func TestEncodeUpdatesBoundary(t *testing.T) {
	attrs := &PathAttrs{NextHop: addr("1.1.1.1"), ASPath: []uint32{65001, 65002}}
	attrLen := len(encodeAttrs(attrs))
	avail := MaxMessageLen - headerLen - 4 - attrLen

	var ps []netip.Prefix
	if rem := avail % 5; rem > 0 {
		// A prefix of (rem-1)*8 bits occupies exactly rem wire bytes, making
		// the /32 fill below land exactly on the boundary.
		ps = append(ps, netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 168, 0, 0}), (rem-1)*8).Masked())
		avail -= rem
	}
	for i := 0; i < avail/5; i++ {
		ps = append(ps, netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}), 32))
	}

	msgs, err := EncodeUpdates(Update{NLRI: ps, Attrs: attrs})
	if err != nil {
		t.Fatalf("EncodeUpdates: %v", err)
	}
	if len(msgs) != 1 {
		t.Fatalf("exact-fit update produced %d messages, want 1", len(msgs))
	}
	if len(msgs[0]) != MaxMessageLen {
		t.Fatalf("exact-fit message is %d bytes, want %d", len(msgs[0]), MaxMessageLen)
	}

	over := append(append([]netip.Prefix{}, ps...),
		netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, 0, 1}), 32))
	msgs, err = EncodeUpdates(Update{NLRI: over, Attrs: attrs})
	if err != nil {
		t.Fatalf("EncodeUpdates over boundary: %v", err)
	}
	if len(msgs) != 2 {
		t.Fatalf("one-over update produced %d messages, want 2", len(msgs))
	}
	total := 0
	for _, m := range msgs {
		total += len(mustDecodeUpdate(t, m).NLRI)
	}
	if total != len(over) {
		t.Fatalf("boundary split lost prefixes: %d != %d", total, len(over))
	}
}

func TestEncodeUpdatesWithdrawnChunking(t *testing.T) {
	var many []netip.Prefix
	for i := 0; i < 2000; i++ {
		many = append(many, netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}), 32))
	}
	msgs, err := EncodeUpdates(Update{Withdrawn: many})
	if err != nil {
		t.Fatalf("EncodeUpdates: %v", err)
	}
	if len(msgs) < 2 {
		t.Fatalf("oversized withdraw produced %d messages, want chunking", len(msgs))
	}
	total := 0
	for _, m := range msgs {
		total += len(mustDecodeUpdate(t, m).Withdrawn)
	}
	if total != len(many) {
		t.Fatalf("withdraw chunking lost prefixes: %d != %d", total, len(many))
	}
}

func TestEncodeUpdatesAttrsTooLarge(t *testing.T) {
	attrs := &PathAttrs{NextHop: addr("1.1.1.1")}
	for i := 0; i < 2000; i++ {
		attrs.ASPath = append(attrs.ASPath, uint32(i+1))
	}
	if _, err := EncodeUpdates(Update{Attrs: attrs, NLRI: []netip.Prefix{pfx("10.0.0.0/8")}}); err == nil {
		t.Error("oversized attributes with NLRI: want error, got nil")
	}
	if _, err := EncodeUpdates(Update{Attrs: attrs}); err == nil {
		t.Error("oversized attributes without NLRI: want error, got nil")
	}
}

// A path longer than one AS_SEQUENCE segment's 255-ASN capacity must split
// across segments and round-trip intact.
func TestLongASPathRoundTrip(t *testing.T) {
	attrs := &PathAttrs{NextHop: addr("1.1.1.1")}
	for i := 0; i < 300; i++ {
		attrs.ASPath = append(attrs.ASPath, uint32(64512+i))
	}
	msg := EncodeUpdate(Update{Attrs: attrs, NLRI: []netip.Prefix{pfx("10.0.0.0/8")}})
	u := mustDecodeUpdate(t, msg)
	if u.Attrs == nil || len(u.Attrs.ASPath) != 300 {
		t.Fatalf("AS path length after round-trip = %d, want 300", len(u.Attrs.ASPath))
	}
	for i, as := range u.Attrs.ASPath {
		if as != uint32(64512+i) {
			t.Fatalf("ASPath[%d] = %d, want %d", i, as, 64512+i)
		}
	}
}

// Hostile inputs that used to panic the encoder now degrade gracefully.
func TestEncodeHostileInputsNoPanic(t *testing.T) {
	v6 := netip.MustParsePrefix("2001:db8::/32")
	msgs, err := EncodeUpdates(Update{
		NLRI:  []netip.Prefix{v6, pfx("10.0.0.0/8")},
		Attrs: &PathAttrs{NextHop: netip.MustParseAddr("2001:db8::1")},
	})
	if err != nil {
		t.Fatalf("EncodeUpdates with hostile prefixes: %v", err)
	}
	total := 0
	for _, m := range msgs {
		total += len(mustDecodeUpdate(t, m).NLRI)
	}
	if total != 1 {
		t.Fatalf("NLRI after dropping unencodable prefixes = %d, want 1", total)
	}
	// Invalid (zero) addresses encode as 0.0.0.0 rather than panicking.
	EncodeOpen(Open{ASN: 65001, HoldTime: 90})
}

// Property: any syntactically valid Update round-trips exactly.
func TestQuickUpdateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	gen := func() Update {
		var u Update
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			var a [4]byte
			r.Read(a[:])
			u.NLRI = append(u.NLRI, netip.PrefixFrom(netip.AddrFrom4(a), r.Intn(33)).Masked())
		}
		w := r.Intn(10)
		for i := 0; i < w; i++ {
			var a [4]byte
			r.Read(a[:])
			u.Withdrawn = append(u.Withdrawn, netip.PrefixFrom(netip.AddrFrom4(a), r.Intn(33)).Masked())
		}
		if n > 0 || r.Intn(2) == 0 {
			var nh [4]byte
			r.Read(nh[:])
			attrs := &PathAttrs{
				Origin:  uint8(r.Intn(3)),
				NextHop: netip.AddrFrom4(nh),
			}
			for i := 0; i < r.Intn(6); i++ {
				attrs.ASPath = append(attrs.ASPath, r.Uint32())
			}
			if r.Intn(2) == 0 {
				attrs.MED, attrs.HasMED = r.Uint32(), true
			}
			if r.Intn(2) == 0 {
				attrs.LocalPref, attrs.HasLocal = r.Uint32(), true
			}
			for i := 0; i < r.Intn(4); i++ {
				attrs.Communities = append(attrs.Communities, policy.Community(r.Uint32()))
			}
			u.Attrs = attrs
		}
		return u
	}
	f := func(seed int64) bool {
		u := gen()
		got, err := Decode(EncodeUpdate(u))
		if err != nil {
			t.Logf("decode error: %v for %+v", err, u)
			return false
		}
		return reflect.DeepEqual(got, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeUpdate(b *testing.B) {
	u := fullUpdate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeUpdate(u)
	}
}

func BenchmarkDecodeUpdate(b *testing.B) {
	msg := EncodeUpdate(fullUpdate())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(msg); err != nil {
			b.Fatal(err)
		}
	}
}
