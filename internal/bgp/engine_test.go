package bgp

import (
	"net/netip"
	"testing"
	"time"

	"mfv/internal/policy"
	"mfv/internal/sim"
)

// harness wires speakers together over simulated links with a fixed delay.
type harness struct {
	s     *sim.Simulator
	delay time.Duration
}

func newHarness() *harness {
	return &harness{s: sim.New(1), delay: time.Millisecond}
}

func (h *harness) speaker(name string, asn uint32, id string) *Speaker {
	return NewSpeaker(Config{
		Hostname: name,
		ASN:      asn,
		RouterID: netip.MustParseAddr(id),
		Clock:    h.s,
		Resolver: ResolverFunc(func(nh netip.Addr) (uint32, bool) { return 10, true }),
	})
}

// connect creates a bidirectional transport between two configured peers and
// brings both sessions up.
func (h *harness) connect(a *Speaker, pa *Peer, b *Speaker, pb *Peer) {
	pa.TransportUp(func(msg []byte) {
		data := append([]byte{}, msg...)
		h.s.After(h.delay, func() { b.HandleMessage(pa.cfg.LocalAddr, data) })
	})
	pb.TransportUp(func(msg []byte) {
		data := append([]byte{}, msg...)
		h.s.After(h.delay, func() { a.HandleMessage(pb.cfg.LocalAddr, data) })
	})
}

// pairEBGP builds two speakers with an eBGP session on 100.64.0.0/31.
func pairEBGP(t *testing.T) (*harness, *Speaker, *Speaker) {
	t.Helper()
	h := newHarness()
	s1 := h.speaker("r1", 65001, "1.1.1.1")
	s2 := h.speaker("r2", 65002, "2.2.2.2")
	p1 := s1.AddPeer(PeerConfig{
		Addr: netip.MustParseAddr("100.64.0.1"), LocalAddr: netip.MustParseAddr("100.64.0.0"),
		RemoteAS: 65002,
	})
	p2 := s2.AddPeer(PeerConfig{
		Addr: netip.MustParseAddr("100.64.0.0"), LocalAddr: netip.MustParseAddr("100.64.0.1"),
		RemoteAS: 65001,
	})
	h.connect(s1, p1, s2, p2)
	return h, s1, s2
}

func settle(h *harness) { h.s.RunFor(5 * time.Second) }

func TestSessionEstablishment(t *testing.T) {
	h, s1, s2 := pairEBGP(t)
	settle(h)
	p1, _ := s1.Peer(netip.MustParseAddr("100.64.0.1"))
	p2, _ := s2.Peer(netip.MustParseAddr("100.64.0.0"))
	if p1.State() != StateEstablished || p2.State() != StateEstablished {
		t.Fatalf("states = %v / %v, want Established", p1.State(), p2.State())
	}
	if p1.routerID != netip.MustParseAddr("2.2.2.2") {
		t.Errorf("peer router ID = %v", p1.routerID)
	}
}

func TestEBGPPropagation(t *testing.T) {
	h, s1, s2 := pairEBGP(t)
	s1.Originate(pfx("10.1.0.0/16"), PathAttrs{Origin: OriginIGP})
	settle(h)
	best, ok := s2.Best(pfx("10.1.0.0/16"))
	if !ok {
		t.Fatal("r2 did not learn 10.1.0.0/16")
	}
	if len(best.Attrs.ASPath) != 1 || best.Attrs.ASPath[0] != 65001 {
		t.Errorf("AS path = %v, want [65001]", best.Attrs.ASPath)
	}
	if best.Attrs.NextHop != netip.MustParseAddr("100.64.0.0") {
		t.Errorf("next hop = %v, want eBGP self", best.Attrs.NextHop)
	}
	if best.Attrs.HasLocal {
		t.Error("LocalPref leaked across eBGP")
	}
}

func TestWithdrawalPropagation(t *testing.T) {
	h, s1, s2 := pairEBGP(t)
	s1.Originate(pfx("10.1.0.0/16"), PathAttrs{Origin: OriginIGP})
	settle(h)
	if _, ok := s2.Best(pfx("10.1.0.0/16")); !ok {
		t.Fatal("route not learned")
	}
	s1.WithdrawLocal(pfx("10.1.0.0/16"))
	settle(h)
	if _, ok := s2.Best(pfx("10.1.0.0/16")); ok {
		t.Error("withdrawn route still present on r2")
	}
}

func TestOriginateBeforeEstablish(t *testing.T) {
	h := newHarness()
	s1 := h.speaker("r1", 65001, "1.1.1.1")
	s2 := h.speaker("r2", 65002, "2.2.2.2")
	s1.Originate(pfx("10.0.0.0/8"), PathAttrs{})
	p1 := s1.AddPeer(PeerConfig{Addr: addr("100.64.0.1"), LocalAddr: addr("100.64.0.0"), RemoteAS: 65002})
	p2 := s2.AddPeer(PeerConfig{Addr: addr("100.64.0.0"), LocalAddr: addr("100.64.0.1"), RemoteAS: 65001})
	h.connect(s1, p1, s2, p2)
	settle(h)
	if _, ok := s2.Best(pfx("10.0.0.0/8")); !ok {
		t.Error("pre-established origination not advertised after establish")
	}
}

func TestASPathLoopRejected(t *testing.T) {
	h, s1, s2 := pairEBGP(t)
	settle(h)
	// r1 originates a path that already contains 65002: r2 must reject.
	s1.Originate(pfx("10.66.0.0/16"), PathAttrs{ASPath: []uint32{65002}})
	settle(h)
	if _, ok := s2.Best(pfx("10.66.0.0/16")); ok {
		t.Error("looped path accepted by r2")
	}
}

func TestTransportDownWithdrawsRoutes(t *testing.T) {
	h, s1, s2 := pairEBGP(t)
	s1.Originate(pfx("10.1.0.0/16"), PathAttrs{})
	settle(h)
	p2, _ := s2.Peer(netip.MustParseAddr("100.64.0.0"))
	p2.TransportDown()
	settle(h)
	if _, ok := s2.Best(pfx("10.1.0.0/16")); ok {
		t.Error("routes survive transport down")
	}
	if p2.State() != StateIdle {
		t.Errorf("state = %v, want Idle", p2.State())
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	h := newHarness()
	s1 := h.speaker("r1", 65001, "1.1.1.1")
	s2 := h.speaker("r2", 65002, "2.2.2.2")
	p1 := s1.AddPeer(PeerConfig{Addr: addr("100.64.0.1"), LocalAddr: addr("100.64.0.0"), RemoteAS: 65002, HoldTime: 9 * time.Second})
	p2 := s2.AddPeer(PeerConfig{Addr: addr("100.64.0.0"), LocalAddr: addr("100.64.0.1"), RemoteAS: 65001, HoldTime: 9 * time.Second})
	h.connect(s1, p1, s2, p2)
	settle(h)
	if p1.State() != StateEstablished {
		t.Fatal("session did not establish")
	}
	// Silence r2: its keepalives no longer reach r1.
	p2.keepalive.Stop()
	h.s.RunFor(20 * time.Second)
	if p1.State() != StateIdle {
		t.Errorf("r1 state after silence = %v, want Idle (hold timer)", p1.State())
	}
}

func TestKeepaliveKeepsSessionAlive(t *testing.T) {
	h, s1, _ := pairEBGP(t)
	h.s.RunFor(10 * time.Minute)
	p1, _ := s1.Peer(netip.MustParseAddr("100.64.0.1"))
	if p1.State() != StateEstablished {
		t.Errorf("session fell over despite keepalives: %v", p1.State())
	}
}

func TestBadPeerASRefused(t *testing.T) {
	h := newHarness()
	s1 := h.speaker("r1", 65001, "1.1.1.1")
	s2 := h.speaker("r2", 65002, "2.2.2.2")
	// r1 expects AS 65003 but the real peer is 65002.
	p1 := s1.AddPeer(PeerConfig{Addr: addr("100.64.0.1"), LocalAddr: addr("100.64.0.0"), RemoteAS: 65003})
	p2 := s2.AddPeer(PeerConfig{Addr: addr("100.64.0.0"), LocalAddr: addr("100.64.0.1"), RemoteAS: 65001})
	h.connect(s1, p1, s2, p2)
	settle(h)
	if p1.State() == StateEstablished {
		t.Error("session established despite AS mismatch")
	}
}

// triangle builds three speakers in AS 65100 fully meshed over iBGP, with
// rrOnR1 controlling whether r1 treats the others as RR clients.
func triangleIBGP(t *testing.T, rrOnR1 bool) (*harness, [3]*Speaker) {
	t.Helper()
	h := newHarness()
	var spk [3]*Speaker
	ids := []string{"1.1.1.1", "2.2.2.2", "3.3.3.3"}
	for i := range spk {
		spk[i] = h.speaker(ids[i], 65100, ids[i])
	}
	connectPair := func(i, j int, client bool) {
		ai, aj := netip.MustParseAddr(ids[i]), netip.MustParseAddr(ids[j])
		pi := spk[i].AddPeer(PeerConfig{Addr: aj, LocalAddr: ai, RemoteAS: 65100, RRClient: client && i == 0})
		pj := spk[j].AddPeer(PeerConfig{Addr: ai, LocalAddr: aj, RemoteAS: 65100})
		h.connect(spk[i], pi, spk[j], pj)
	}
	if rrOnR1 {
		// Hub-and-spoke: r1 is the RR; r2 and r3 peer only with r1.
		connectPair(0, 1, true)
		connectPair(0, 2, true)
	} else {
		connectPair(0, 1, false)
		connectPair(0, 2, false)
		connectPair(1, 2, false)
	}
	return h, spk
}

func TestIBGPSplitHorizon(t *testing.T) {
	// Without route reflection and with r2,r3 peering only via r1, a route
	// from r2 must NOT reach r3 (r1 refuses to re-advertise iBGP routes).
	h := newHarness()
	ids := []string{"1.1.1.1", "2.2.2.2", "3.3.3.3"}
	var spk [3]*Speaker
	for i := range spk {
		spk[i] = h.speaker(ids[i], 65100, ids[i])
	}
	for _, j := range []int{1, 2} {
		ai, aj := netip.MustParseAddr(ids[0]), netip.MustParseAddr(ids[j])
		pi := spk[0].AddPeer(PeerConfig{Addr: aj, LocalAddr: ai, RemoteAS: 65100})
		pj := spk[j].AddPeer(PeerConfig{Addr: ai, LocalAddr: aj, RemoteAS: 65100})
		h.connect(spk[0], pi, spk[j], pj)
	}
	spk[1].Originate(pfx("10.2.0.0/16"), PathAttrs{})
	settle(h)
	if _, ok := spk[0].Best(pfx("10.2.0.0/16")); !ok {
		t.Fatal("r1 did not learn the route")
	}
	if _, ok := spk[2].Best(pfx("10.2.0.0/16")); ok {
		t.Error("split horizon violated: r3 learned an iBGP route via r1")
	}
}

func TestRouteReflection(t *testing.T) {
	h, spk := triangleIBGP(t, true)
	spk[1].Originate(pfx("10.2.0.0/16"), PathAttrs{})
	settle(h)
	if _, ok := spk[2].Best(pfx("10.2.0.0/16")); !ok {
		t.Error("route reflector did not reflect client route to other client")
	}
}

func TestFullMeshIBGP(t *testing.T) {
	h, spk := triangleIBGP(t, false)
	spk[1].Originate(pfx("10.2.0.0/16"), PathAttrs{})
	settle(h)
	for i := 0; i < 3; i++ {
		if i == 1 {
			continue
		}
		if _, ok := spk[i].Best(pfx("10.2.0.0/16")); !ok {
			t.Errorf("r%d missing route in full mesh", i+1)
		}
	}
	// iBGP preserves the original next hop (no next-hop-self configured).
	best, _ := spk[0].Best(pfx("10.2.0.0/16"))
	if best.Attrs.NextHop != netip.MustParseAddr("2.2.2.2") {
		t.Errorf("next hop = %v, want 2.2.2.2 (iBGP preserves)", best.Attrs.NextHop)
	}
}

func TestImportPolicyDeny(t *testing.T) {
	h := newHarness()
	s1 := h.speaker("r1", 65001, "1.1.1.1")
	s2 := h.speaker("r2", 65002, "2.2.2.2")
	deny := &policy.RouteMap{Name: "DENY-TEN"}
	env := policy.MapEnv{"TEN": {Name: "TEN", Entries: []policy.PrefixListEntry{
		{Seq: 10, Action: policy.Permit, Prefix: pfx("10.0.0.0/8"), Le: 32},
	}}}
	deny.Add(policy.MapClause{Seq: 10, Action: policy.Deny, MatchPrefixList: "TEN"})
	deny.Add(policy.MapClause{Seq: 20, Action: policy.Permit})
	p1 := s1.AddPeer(PeerConfig{Addr: addr("100.64.0.1"), LocalAddr: addr("100.64.0.0"), RemoteAS: 65002})
	p2 := s2.AddPeer(PeerConfig{
		Addr: addr("100.64.0.0"), LocalAddr: addr("100.64.0.1"), RemoteAS: 65001,
		ImportPolicy: deny, Env: env,
	})
	h.connect(s1, p1, s2, p2)
	s1.Originate(pfx("10.5.0.0/16"), PathAttrs{})
	s1.Originate(pfx("192.168.0.0/16"), PathAttrs{})
	settle(h)
	if _, ok := s2.Best(pfx("10.5.0.0/16")); ok {
		t.Error("import policy failed to deny 10/8 subnet")
	}
	if _, ok := s2.Best(pfx("192.168.0.0/16")); !ok {
		t.Error("import policy wrongly denied unmatched prefix")
	}
}

func TestExportPolicySetsLocalPrefOnIBGP(t *testing.T) {
	h := newHarness()
	s1 := h.speaker("r1", 65100, "1.1.1.1")
	s2 := h.speaker("r2", 65100, "2.2.2.2")
	setLP := &policy.RouteMap{Name: "SETLP"}
	setLP.Add(policy.MapClause{Seq: 10, Action: policy.Permit, SetLocalPref: 250})
	p1 := s1.AddPeer(PeerConfig{
		Addr: addr("2.2.2.2"), LocalAddr: addr("1.1.1.1"), RemoteAS: 65100, ExportPolicy: setLP,
	})
	p2 := s2.AddPeer(PeerConfig{Addr: addr("1.1.1.1"), LocalAddr: addr("2.2.2.2"), RemoteAS: 65100})
	h.connect(s1, p1, s2, p2)
	s1.Originate(pfx("10.0.0.0/8"), PathAttrs{})
	settle(h)
	best, ok := s2.Best(pfx("10.0.0.0/8"))
	if !ok {
		t.Fatal("route not learned")
	}
	if best.EffectiveLocalPref() != 250 {
		t.Errorf("LocalPref = %d, want 250", best.EffectiveLocalPref())
	}
}

func TestCommunityStrippedWithoutSendCommunity(t *testing.T) {
	h, s1, s2 := pairEBGP(t)
	c, _ := policy.ParseCommunity("65001:77")
	s1.Originate(pfx("10.0.0.0/8"), PathAttrs{Communities: []policy.Community{c}})
	settle(h)
	best, ok := s2.Best(pfx("10.0.0.0/8"))
	if !ok {
		t.Fatal("route not learned")
	}
	if len(best.Attrs.Communities) != 0 {
		t.Errorf("communities = %v, want stripped", best.Attrs.Communities)
	}
}

func TestSendCommunityPropagates(t *testing.T) {
	h := newHarness()
	s1 := h.speaker("r1", 65001, "1.1.1.1")
	s2 := h.speaker("r2", 65002, "2.2.2.2")
	p1 := s1.AddPeer(PeerConfig{Addr: addr("100.64.0.1"), LocalAddr: addr("100.64.0.0"), RemoteAS: 65002, SendCommunity: true})
	p2 := s2.AddPeer(PeerConfig{Addr: addr("100.64.0.0"), LocalAddr: addr("100.64.0.1"), RemoteAS: 65001})
	h.connect(s1, p1, s2, p2)
	c, _ := policy.ParseCommunity("65001:77")
	s1.Originate(pfx("10.0.0.0/8"), PathAttrs{Communities: []policy.Community{c}})
	settle(h)
	best, _ := s2.Best(pfx("10.0.0.0/8"))
	if best == nil || len(best.Attrs.Communities) != 1 || best.Attrs.Communities[0] != c {
		t.Errorf("communities not propagated: %+v", best)
	}
}

func TestDecisionLadder(t *testing.T) {
	h := newHarness()
	s := h.speaker("r1", 65100, "1.1.1.1")
	base := func() *Path {
		return &Path{
			Prefix: pfx("10.0.0.0/8"),
			Attrs: PathAttrs{
				ASPath:  []uint32{65001, 65002},
				NextHop: addr("192.0.2.1"),
			},
			PeerRouterID: addr("9.9.9.9"),
			PeerAddr:     addr("10.0.0.9"),
		}
	}
	tests := []struct {
		name    string
		a, b    func() *Path
		aBetter bool
	}{
		{"local wins", func() *Path { p := base(); p.Local = true; return p }, base, true},
		{"higher localpref", func() *Path {
			p := base()
			p.Attrs.HasLocal, p.Attrs.LocalPref = true, 200
			return p
		}, base, true},
		{"shorter aspath", func() *Path { p := base(); p.Attrs.ASPath = []uint32{65001}; return p }, base, true},
		{"lower origin", base, func() *Path { p := base(); p.Attrs.Origin = OriginIncomplete; return p }, true},
		{"lower med same as", base, func() *Path { p := base(); p.Attrs.MED = 10; p.Attrs.HasMED = true; return p }, true},
		{"ebgp over ibgp", base, func() *Path { p := base(); p.FromIBGP = true; return p }, true},
		{"lower router id", func() *Path { p := base(); p.PeerRouterID = addr("1.1.1.2"); return p }, base, true},
		{"lower peer addr", func() *Path { p := base(); p.PeerAddr = addr("10.0.0.1"); return p }, base, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.better(tc.a(), tc.b()); got != tc.aBetter {
				t.Errorf("better = %v, want %v", got, tc.aBetter)
			}
			if s.better(tc.b(), tc.a()) {
				t.Error("better is not antisymmetric for this pair")
			}
		})
	}
}

func TestMEDOnlyComparedSameNeighborAS(t *testing.T) {
	h := newHarness()
	s := h.speaker("r1", 65100, "1.1.1.1")
	a := &Path{Attrs: PathAttrs{ASPath: []uint32{65001}, MED: 100, HasMED: true, NextHop: addr("1.0.0.1")},
		PeerRouterID: addr("5.5.5.5"), PeerAddr: addr("10.0.0.5")}
	b := &Path{Attrs: PathAttrs{ASPath: []uint32{65002}, MED: 10, HasMED: true, NextHop: addr("1.0.0.2")},
		PeerRouterID: addr("6.6.6.6"), PeerAddr: addr("10.0.0.6")}
	// Different first AS: MED ignored; falls to router ID (5.5.5.5 < 6.6.6.6).
	if !s.better(a, b) {
		t.Error("MED compared across different neighbor ASes")
	}
}

func TestIGPMetricTieBreak(t *testing.T) {
	h := newHarness()
	metrics := map[netip.Addr]uint32{
		addr("1.0.0.1"): 5,
		addr("1.0.0.2"): 50,
	}
	s := NewSpeaker(Config{
		Hostname: "r1", ASN: 65100, RouterID: addr("1.1.1.1"), Clock: h.s,
		Resolver: ResolverFunc(func(nh netip.Addr) (uint32, bool) {
			m, ok := metrics[nh]
			return m, ok
		}),
	})
	a := &Path{Attrs: PathAttrs{ASPath: []uint32{65001}, NextHop: addr("1.0.0.1")},
		PeerRouterID: addr("9.9.9.9"), PeerAddr: addr("10.0.0.9")}
	b := &Path{Attrs: PathAttrs{ASPath: []uint32{65001}, NextHop: addr("1.0.0.2")},
		PeerRouterID: addr("2.2.2.2"), PeerAddr: addr("10.0.0.2")}
	// IGP metric (5 < 50) outranks router ID.
	if !s.better(a, b) {
		t.Error("IGP metric tie-break not applied")
	}
}

func TestUnresolvableNextHopExcluded(t *testing.T) {
	h := newHarness()
	reachable := true
	s1 := NewSpeaker(Config{
		Hostname: "r1", ASN: 65002, RouterID: addr("2.2.2.2"), Clock: h.s,
		Resolver: ResolverFunc(func(nh netip.Addr) (uint32, bool) { return 10, reachable }),
	})
	s0 := h.speaker("r0", 65001, "1.1.1.1")
	p0 := s0.AddPeer(PeerConfig{Addr: addr("100.64.0.1"), LocalAddr: addr("100.64.0.0"), RemoteAS: 65002})
	p1 := s1.AddPeer(PeerConfig{Addr: addr("100.64.0.0"), LocalAddr: addr("100.64.0.1"), RemoteAS: 65001})
	h.connect(s0, p0, s1, p1)
	s0.Originate(pfx("10.0.0.0/8"), PathAttrs{})
	settle(h)
	if _, ok := s1.Best(pfx("10.0.0.0/8")); !ok {
		t.Fatal("route not learned while next hop reachable")
	}
	reachable = false
	s1.ReevaluateNextHops()
	if _, ok := s1.Best(pfx("10.0.0.0/8")); ok {
		t.Error("route with unresolvable next hop kept as best")
	}
	reachable = true
	s1.ReevaluateNextHops()
	if _, ok := s1.Best(pfx("10.0.0.0/8")); !ok {
		t.Error("route not restored after next hop recovered")
	}
}

func TestBestPathSwitchesOnWithdraw(t *testing.T) {
	// r3 learns the same prefix from two eBGP peers and switches when the
	// better one withdraws.
	h := newHarness()
	s1 := h.speaker("r1", 65001, "1.1.1.1")
	s2 := h.speaker("r2", 65002, "2.2.2.2")
	s3 := h.speaker("r3", 65003, "3.3.3.3")
	pair := func(a *Speaker, b *Speaker, aAddr, bAddr string) {
		pa := a.AddPeer(PeerConfig{Addr: addr(bAddr), LocalAddr: addr(aAddr), RemoteAS: b.ASN()})
		pb := b.AddPeer(PeerConfig{Addr: addr(aAddr), LocalAddr: addr(bAddr), RemoteAS: a.ASN()})
		h.connect(a, pa, b, pb)
	}
	pair(s1, s3, "100.64.1.0", "100.64.1.1")
	pair(s2, s3, "100.64.2.0", "100.64.2.1")
	p := pfx("203.0.113.0/24")
	s1.Originate(p, PathAttrs{})
	s2.Originate(p, PathAttrs{ASPath: []uint32{64999}}) // longer path via r2
	settle(h)
	best, ok := s3.Best(p)
	if !ok || best.Attrs.ASPath[0] != 65001 {
		t.Fatalf("best = %+v, want via AS 65001", best)
	}
	s1.WithdrawLocal(p)
	settle(h)
	best, ok = s3.Best(p)
	if !ok || best.Attrs.ASPath[0] != 65002 {
		t.Errorf("after withdraw best = %+v, want via AS 65002", best)
	}
}

func TestOnBestChangeCallback(t *testing.T) {
	h := newHarness()
	events := 0
	s := NewSpeaker(Config{
		Hostname: "r1", ASN: 65001, RouterID: addr("1.1.1.1"), Clock: h.s,
		OnBestChange: func(prefix netip.Prefix, p *Path) { events++ },
	})
	s.Originate(pfx("10.0.0.0/8"), PathAttrs{})
	s.WithdrawLocal(pfx("10.0.0.0/8"))
	if events != 2 {
		t.Errorf("events = %d, want 2", events)
	}
}

func TestBulkRoutes(t *testing.T) {
	h, s1, s2 := pairEBGP(t)
	const n = 2000
	for i := 0; i < n; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
		s1.Originate(p, PathAttrs{})
	}
	settle(h)
	if got := s2.LocRIBSize(); got != n {
		t.Errorf("r2 LocRIB = %d, want %d", got, n)
	}
	p2, _ := s2.Peer(netip.MustParseAddr("100.64.0.0"))
	if p2.PrefixesReceived != n {
		t.Errorf("PrefixesReceived = %d, want %d", p2.PrefixesReceived, n)
	}
	// Chunking must have produced multiple updates but far fewer than n.
	if p2.UpdatesIn < 2 || p2.UpdatesIn > 50 {
		t.Errorf("UpdatesIn = %d, want a handful of chunked updates", p2.UpdatesIn)
	}
}
