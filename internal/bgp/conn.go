package bgp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"mfv/internal/sim"
)

// This file bridges the event-driven Speaker onto real TCP connections. The
// emulator never uses it — emulated sessions ride the deterministic event
// queue — but it demonstrates that the codec and FSM interoperate over an
// actual network stack, and it backs the TCP-vs-event transport ablation.

// ReadMessage reads one complete BGP message (header + body) from r.
func ReadMessage(r io.Reader) ([]byte, error) {
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, err
	}
	_, bodyLen, err := DecodeHeader(header)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, headerLen+bodyLen)
	copy(msg, header)
	if _, err := io.ReadFull(r, msg[headerLen:]); err != nil {
		return nil, fmt.Errorf("bgp: truncated message body: %w", err)
	}
	return msg, nil
}

// WriteMessage writes one encoded message to w.
func WriteMessage(w io.Writer, msg []byte) error {
	_, err := w.Write(msg)
	return err
}

// Driver serializes access to one or more Speakers that share a simulator,
// and advances the simulator's virtual clock in lockstep with the wall
// clock so protocol timers (keepalive, hold) fire in real time.
type Driver struct {
	mu   sync.Mutex
	sim  *sim.Simulator
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewDriver wraps a simulator for real-time use.
func NewDriver(s *sim.Simulator) *Driver {
	return &Driver{sim: s, stop: make(chan struct{})}
}

// Start begins advancing the virtual clock every tick of wall time.
func (d *Driver) Start(tick time.Duration) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				d.mu.Lock()
				d.sim.RunFor(tick)
				d.mu.Unlock()
			}
		}
	}()
}

// Stop halts the clock pump and waits for attached readers to exit. Callers
// must close attached connections first so readers unblock.
func (d *Driver) Stop() {
	close(d.stop)
	d.wg.Wait()
}

// Locked runs fn with exclusive access to the speakers under this driver.
func (d *Driver) Locked(fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn()
}

// Attach binds a TCP connection to one of spk's configured peers: outbound
// messages are written to the conn, inbound messages are dispatched as
// coming from peerAddr. It brings the session up and spawns the reader.
func (d *Driver) Attach(spk *Speaker, peerAddr netip.Addr, conn net.Conn) error {
	peer, ok := spk.Peer(peerAddr)
	if !ok {
		return fmt.Errorf("bgp: no configured peer %v", peerAddr)
	}
	w := bufio.NewWriter(conn)
	var wmu sync.Mutex
	send := func(msg []byte) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := WriteMessage(w, msg); err == nil {
			w.Flush()
		}
	}
	d.mu.Lock()
	peer.TransportUp(send)
	d.mu.Unlock()

	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		r := bufio.NewReader(conn)
		for {
			msg, err := ReadMessage(r)
			if err != nil {
				d.mu.Lock()
				peer.TransportDown()
				d.mu.Unlock()
				return
			}
			d.mu.Lock()
			spk.HandleMessage(peerAddr, msg)
			d.mu.Unlock()
		}
	}()
	return nil
}
