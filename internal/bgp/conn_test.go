package bgp

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"mfv/internal/sim"
)

// TestSessionOverRealTCP establishes a BGP session between two speakers over
// a real TCP connection on loopback and checks route propagation end to end.
func TestSessionOverRealTCP(t *testing.T) {
	s := sim.New(1)
	driver := NewDriver(s)

	mk := func(name string, asn uint32, id string) *Speaker {
		return NewSpeaker(Config{
			Hostname: name, ASN: asn, RouterID: netip.MustParseAddr(id), Clock: s,
			Resolver: ResolverFunc(func(nh netip.Addr) (uint32, bool) { return 1, true }),
		})
	}
	s1 := mk("r1", 65001, "1.1.1.1")
	s2 := mk("r2", 65002, "2.2.2.2")
	a1, a2 := netip.MustParseAddr("127.0.0.1"), netip.MustParseAddr("127.0.0.2")
	driver.Locked(func() {
		s1.AddPeer(PeerConfig{Addr: a2, LocalAddr: a1, RemoteAS: 65002})
		s2.AddPeer(PeerConfig{Addr: a1, LocalAddr: a2, RemoteAS: 65001})
		s1.Originate(pfx("10.0.0.0/8"), PathAttrs{})
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	serverConn := <-accepted

	if err := driver.Attach(s1, a2, dialed); err != nil {
		t.Fatal(err)
	}
	if err := driver.Attach(s2, a1, serverConn); err != nil {
		t.Fatal(err)
	}
	driver.Start(5 * time.Millisecond)

	deadline := time.After(5 * time.Second)
	for {
		var established bool
		var learned bool
		driver.Locked(func() {
			p1, _ := s1.Peer(a2)
			p2, _ := s2.Peer(a1)
			established = p1.State() == StateEstablished && p2.State() == StateEstablished
			_, learned = s2.Best(pfx("10.0.0.0/8"))
		})
		if established && learned {
			break
		}
		select {
		case <-deadline:
			t.Fatal("session or route did not come up over TCP within 5s")
		case <-time.After(10 * time.Millisecond):
		}
	}

	// Tear down: closing the sockets must drive both sessions to Idle and
	// withdraw learned routes.
	dialed.Close()
	serverConn.Close()
	deadline = time.After(5 * time.Second)
	for {
		var idle, gone bool
		driver.Locked(func() {
			p2, _ := s2.Peer(a1)
			idle = p2.State() == StateIdle
			_, ok := s2.Best(pfx("10.0.0.0/8"))
			gone = !ok
		})
		if idle && gone {
			break
		}
		select {
		case <-deadline:
			t.Fatal("teardown did not propagate within 5s")
		case <-time.After(10 * time.Millisecond):
		}
	}
	driver.Stop()
}

func TestReadMessageErrors(t *testing.T) {
	// Short read.
	c1, c2 := net.Pipe()
	go func() {
		c1.Write([]byte{0xff, 0xff})
		c1.Close()
	}()
	if _, err := ReadMessage(c2); err == nil {
		t.Error("short header accepted")
	}
	c2.Close()

	// Corrupt marker.
	c3, c4 := net.Pipe()
	go func() {
		bad := EncodeKeepalive()
		bad[0] = 0
		c3.Write(bad)
		c3.Close()
	}()
	if _, err := ReadMessage(c4); err == nil {
		t.Error("corrupt marker accepted")
	}
	c4.Close()
}

func TestReadWriteMessageRoundTrip(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	msg := EncodeUpdate(fullUpdate())
	go func() { WriteMessage(c1, msg) }()
	got, err := ReadMessage(c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msg) {
		t.Errorf("read %d bytes, want %d", len(got), len(msg))
	}
	if _, err := Decode(got); err != nil {
		t.Errorf("Decode after transport: %v", err)
	}
}
