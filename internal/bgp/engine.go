package bgp

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"mfv/internal/obs"
	"mfv/internal/policy"
	"mfv/internal/sim"
)

// State is the session FSM state (RFC 4271 §8, with the TCP-level Connect/
// Active states collapsed into Idle: the emulation substrate signals
// transport availability explicitly).
type State uint8

// FSM states.
const (
	StateIdle State = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Path is one candidate route in the speaker's Adj-RIB-In or local table.
type Path struct {
	Prefix netip.Prefix
	Attrs  PathAttrs
	// Local marks a locally originated path (network statement or
	// redistribution); local paths win the decision process outright,
	// mirroring the EOS weight-32768 convention.
	Local bool
	// FromIBGP records the session type the path was learned over.
	FromIBGP bool
	// FromRRClient records that the advertising iBGP peer is configured as
	// a route-reflector client, which widens re-advertisement rules.
	FromRRClient bool
	// PeerAddr / PeerRouterID identify the advertising peer for the final
	// tie-breaks.
	PeerAddr     netip.Addr
	PeerRouterID netip.Addr
}

// EffectiveLocalPref returns LocalPref with the 100 default applied.
func (p *Path) EffectiveLocalPref() uint32 {
	if p.Attrs.HasLocal {
		return p.Attrs.LocalPref
	}
	return 100
}

// NextHopResolver reports whether (and at what IGP cost) a BGP next hop is
// reachable. The virtual router backs this with its RIB.
type NextHopResolver interface {
	ResolveNextHop(nh netip.Addr) (metric uint32, ok bool)
}

// ResolverFunc adapts a function to NextHopResolver.
type ResolverFunc func(nh netip.Addr) (uint32, bool)

// ResolveNextHop implements NextHopResolver.
func (f ResolverFunc) ResolveNextHop(nh netip.Addr) (uint32, bool) { return f(nh) }

// PeerConfig configures one neighbor session.
type PeerConfig struct {
	Addr      netip.Addr
	LocalAddr netip.Addr
	RemoteAS  uint32
	// HoldTime defaults to 90 s; keepalives go out every HoldTime/3.
	HoldTime time.Duration
	// NextHopSelf rewrites the next hop to LocalAddr on iBGP export (eBGP
	// always sets self).
	NextHopSelf bool
	// RRClient marks the peer as a route-reflector client of this speaker.
	RRClient bool
	// ImportPolicy/ExportPolicy are optional route maps; Env resolves
	// prefix-list references inside them.
	ImportPolicy, ExportPolicy *policy.RouteMap
	Env                        policy.Env
	// SendCommunity propagates communities to this peer (EOS requires it
	// explicitly; without it communities are stripped on export).
	SendCommunity bool
}

// Peer is the per-neighbor session state.
type Peer struct {
	cfg   PeerConfig
	spk   *Speaker
	state State
	// routerID is the neighbor's router ID, learned from its OPEN.
	routerID netip.Addr
	// send transmits an encoded message to the neighbor; nil while the
	// transport is down.
	send func([]byte)

	holdTimer *sim.Event
	keepalive *sim.Ticker

	// adjOut tracks the attributes last advertised per prefix, so
	// withdrawals are sent only for previously advertised prefixes and
	// duplicate announcements are suppressed.
	adjOut map[netip.Prefix]string

	// dirty accumulates prefixes whose advertisement state must be
	// recomputed at the next flush.
	dirty map[netip.Prefix]bool
	flush *sim.Event

	// Statistics.
	MsgsIn, MsgsOut  uint64
	UpdatesIn        uint64
	PrefixesReceived uint64
	LastNotification *Notification
	establishedAt    time.Duration
	everEstablished  bool
}

// State returns the current FSM state.
func (p *Peer) State() State { return p.state }

// Config returns the peer configuration.
func (p *Peer) Config() PeerConfig { return p.cfg }

// IBGP reports whether this session is internal.
func (p *Peer) IBGP() bool { return p.cfg.RemoteAS == p.spk.asn }

// Speaker is one router's BGP process.
type Speaker struct {
	hostname string
	asn      uint32
	routerID netip.Addr
	clock    *sim.Simulator
	resolver NextHopResolver

	peers map[netip.Addr]*Peer
	// peerList mirrors peers sorted by address, for deterministic fan-out.
	peerList []*Peer
	// adjIn holds received paths per peer per prefix (post-import-policy).
	adjIn map[netip.Addr]map[netip.Prefix]*Path
	// nhRefs counts Adj-RIB-In paths per distinct next hop, so next-hop
	// revalidation after IGP changes is O(distinct next hops), not
	// O(prefixes).
	nhRefs map[netip.Addr]int
	// local holds locally originated paths.
	local map[netip.Prefix]*Path
	// best is the Loc-RIB: the decision-process winner per prefix.
	best map[netip.Prefix]*Path

	// onBest is invoked when the Loc-RIB changes; nil path = withdrawn.
	onBest func(prefix netip.Prefix, p *Path)

	// advDelay batches advertisement flushes (a coarse MRAI analogue).
	advDelay time.Duration

	// obs and the pre-resolved metric handles below are nil (no-op) unless
	// SetObserver wires the speaker into an observability sink.
	obs          *obs.Observer
	cMsgsIn      *obs.Counter
	cMsgsOut     *obs.Counter
	cUpdatesIn   *obs.Counter
	cPrefixesIn  *obs.Counter
	cEstablished *obs.Counter
}

// Config bundles Speaker construction parameters.
type Config struct {
	Hostname string
	ASN      uint32
	RouterID netip.Addr
	Clock    *sim.Simulator
	Resolver NextHopResolver
	// OnBestChange receives Loc-RIB transitions.
	OnBestChange func(prefix netip.Prefix, p *Path)
	// AdvertisementDelay batches outbound updates; defaults to 50 ms.
	AdvertisementDelay time.Duration
}

// NewSpeaker builds a BGP process.
func NewSpeaker(cfg Config) *Speaker {
	if cfg.ASN == 0 {
		panic("bgp: speaker needs an ASN")
	}
	if cfg.Clock == nil {
		panic("bgp: speaker needs a clock")
	}
	delay := cfg.AdvertisementDelay
	if delay == 0 {
		delay = 50 * time.Millisecond
	}
	return &Speaker{
		hostname: cfg.Hostname,
		asn:      cfg.ASN,
		routerID: cfg.RouterID,
		clock:    cfg.Clock,
		resolver: cfg.Resolver,
		peers:    map[netip.Addr]*Peer{},
		adjIn:    map[netip.Addr]map[netip.Prefix]*Path{},
		nhRefs:   map[netip.Addr]int{},
		local:    map[netip.Prefix]*Path{},
		best:     map[netip.Prefix]*Path{},
		onBest:   cfg.OnBestChange,
		advDelay: delay,
	}
}

// SetObserver wires the speaker into the observability layer: session FSM
// transitions become trace events and message/update volumes become
// counters. Metric handles are resolved once here so the hot paths stay
// allocation-free. A nil observer (the default) disables everything.
func (s *Speaker) SetObserver(o *obs.Observer) {
	s.obs = o
	s.cMsgsIn = o.Counter("bgp_msgs_in_total")
	s.cMsgsOut = o.Counter("bgp_msgs_out_total")
	s.cUpdatesIn = o.Counter("bgp_updates_total")
	s.cPrefixesIn = o.Counter("bgp_prefixes_in_total")
	s.cEstablished = o.Counter("bgp_sessions_established_total")
}

// setState performs an FSM transition, counting establishments and emitting
// the session-transition trace event.
func (p *Peer) setState(st State) {
	if st == p.state {
		return
	}
	old := p.state
	p.state = st
	if st == StateEstablished {
		p.spk.cEstablished.Inc()
	}
	if p.spk.obs.Enabled() {
		p.spk.obs.Emit(obs.Event{
			Type:   obs.EvBGPSession,
			Device: p.spk.hostname,
			Peer:   p.cfg.Addr.String(),
			Detail: old.String() + ">" + st.String(),
		})
	}
}

// ASN returns the local AS number.
func (s *Speaker) ASN() uint32 { return s.asn }

// RouterID returns the local router ID.
func (s *Speaker) RouterID() netip.Addr { return s.routerID }

// AddPeer registers a neighbor. The session stays Idle until TransportUp.
func (s *Speaker) AddPeer(cfg PeerConfig) *Peer {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 90 * time.Second
	}
	p := &Peer{
		cfg:    cfg,
		spk:    s,
		adjOut: map[netip.Prefix]string{},
		dirty:  map[netip.Prefix]bool{},
	}
	s.peers[cfg.Addr] = p
	// peerList keeps a sorted view for iteration: advertisement fan-out must
	// visit peers in a deterministic order or same-seed runs diverge in
	// message (and therefore trace) ordering.
	s.peerList = append(s.peerList, p)
	sort.Slice(s.peerList, func(i, j int) bool {
		return s.peerList[i].cfg.Addr.Less(s.peerList[j].cfg.Addr)
	})
	s.adjIn[cfg.Addr] = map[netip.Prefix]*Path{}
	return p
}

// Peer returns the session for the given neighbor address.
func (s *Speaker) Peer(a netip.Addr) (*Peer, bool) {
	p, ok := s.peers[a]
	return p, ok
}

// Peers returns all sessions sorted by neighbor address.
func (s *Speaker) Peers() []*Peer {
	out := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].cfg.Addr.Less(out[j].cfg.Addr) })
	return out
}

// Best returns the Loc-RIB winner for prefix.
func (s *Speaker) Best(prefix netip.Prefix) (*Path, bool) {
	p, ok := s.best[prefix.Masked()]
	return p, ok
}

// BestRoutes returns the Loc-RIB as a sorted snapshot.
func (s *Speaker) BestRoutes() []*Path {
	out := make([]*Path, 0, len(s.best))
	for _, p := range s.best {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return prefixLess(out[i].Prefix, out[j].Prefix) })
	return out
}

// LocRIBSize returns the number of prefixes with a best path.
func (s *Speaker) LocRIBSize() int { return len(s.best) }

func prefixLess(a, b netip.Prefix) bool {
	if a.Addr() != b.Addr() {
		return a.Addr().Less(b.Addr())
	}
	return a.Bits() < b.Bits()
}

// Originate installs (or replaces) a locally originated path and triggers
// the decision process. The next hop in attrs may be left invalid; export
// rewrites it per session.
func (s *Speaker) Originate(prefix netip.Prefix, attrs PathAttrs) {
	prefix = prefix.Masked()
	s.local[prefix] = &Path{Prefix: prefix, Attrs: attrs, Local: true}
	s.decide(prefix)
}

// WithdrawLocal removes a locally originated path.
func (s *Speaker) WithdrawLocal(prefix netip.Prefix) {
	prefix = prefix.Masked()
	if _, ok := s.local[prefix]; !ok {
		return
	}
	delete(s.local, prefix)
	s.decide(prefix)
}

// TransportUp signals that the substrate can carry this session (the
// analogue of the TCP connection succeeding) and provides the transmit
// function. The session proceeds to OpenSent.
func (p *Peer) TransportUp(send func([]byte)) {
	if p.state != StateIdle {
		return
	}
	p.send = send
	p.setState(StateOpenSent)
	p.transmit(EncodeOpen(Open{
		Version:  4,
		ASN:      p.spk.asn,
		HoldTime: uint16(p.cfg.HoldTime / time.Second),
		RouterID: p.spk.routerID,
	}))
}

// TransportDown signals loss of the underlying connectivity. All routes
// learned from the peer are withdrawn immediately (TCP reset semantics).
func (p *Peer) TransportDown() {
	p.teardown()
}

func (p *Peer) teardown() {
	if p.holdTimer != nil {
		p.spk.clock.Cancel(p.holdTimer)
		p.holdTimer = nil
	}
	if p.keepalive != nil {
		p.keepalive.Stop()
		p.keepalive = nil
	}
	if p.flush != nil {
		p.spk.clock.Cancel(p.flush)
		p.flush = nil
	}
	p.send = nil
	p.setState(StateIdle)
	p.adjOut = map[netip.Prefix]string{}
	p.dirty = map[netip.Prefix]bool{}
	// Flush Adj-RIB-In and rerun decision for the affected prefixes.
	in := p.spk.adjIn[p.cfg.Addr]
	p.spk.adjIn[p.cfg.Addr] = map[netip.Prefix]*Path{}
	for prefix, path := range in {
		p.spk.releaseNH(path.Attrs.NextHop)
		p.spk.decide(prefix)
	}
}

func (s *Speaker) holdNH(nh netip.Addr) { s.nhRefs[nh]++ }
func (s *Speaker) releaseNH(nh netip.Addr) {
	if s.nhRefs[nh]--; s.nhRefs[nh] <= 0 {
		delete(s.nhRefs, nh)
	}
}

// DistinctNextHops returns the set of next hops referenced by Adj-RIB-In
// paths, sorted. Its size is bounded by the number of peers times their
// attribute diversity, not by table size.
func (s *Speaker) DistinctNextHops() []netip.Addr {
	out := make([]netip.Addr, 0, len(s.nhRefs))
	for nh := range s.nhRefs {
		out = append(out, nh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (p *Peer) transmit(msg []byte) {
	if p.send != nil {
		p.MsgsOut++
		p.spk.cMsgsOut.Inc()
		p.send(msg)
	}
}

func (p *Peer) resetHoldTimer() {
	if p.holdTimer != nil {
		p.spk.clock.Cancel(p.holdTimer)
	}
	p.holdTimer = p.spk.clock.After(p.cfg.HoldTime, func() {
		p.transmit(EncodeNotification(Notification{Code: NotifHoldTimerExpired}))
		p.teardown()
	})
}

// HandleMessage processes one encoded message from the neighbor. Malformed
// messages elicit a NOTIFICATION and tear the session down, per RFC 4271.
func (s *Speaker) HandleMessage(from netip.Addr, data []byte) {
	p, ok := s.peers[from]
	if !ok {
		return // message from an unconfigured neighbor: ignore
	}
	p.MsgsIn++
	s.cMsgsIn.Inc()
	decoded, err := Decode(data)
	if err != nil {
		var n Notification
		if errors.As(err, &n) {
			p.transmit(EncodeNotification(n))
		} else {
			p.transmit(EncodeNotification(Notification{Code: NotifUpdateMessageError}))
		}
		p.teardown()
		return
	}
	switch m := decoded.(type) {
	case Open:
		p.handleOpen(m)
	case Update:
		p.handleUpdate(m)
	case Notification:
		n := m
		p.LastNotification = &n
		p.teardown()
	case struct{}: // keepalive
		p.handleKeepalive()
	}
}

func (p *Peer) fsmError() {
	p.transmit(EncodeNotification(Notification{Code: NotifFSMError}))
	p.teardown()
}

func (p *Peer) handleOpen(o Open) {
	if p.state != StateOpenSent {
		p.fsmError()
		return
	}
	if o.ASN != p.cfg.RemoteAS {
		p.transmit(EncodeNotification(Notification{Code: NotifOpenMessageError, Subcode: 2})) // bad peer AS
		p.teardown()
		return
	}
	// Negotiate hold time: the smaller of ours and theirs.
	if theirs := time.Duration(o.HoldTime) * time.Second; theirs > 0 && theirs < p.cfg.HoldTime {
		p.cfg.HoldTime = theirs
	}
	p.peerRouterIDSet(o.RouterID)
	p.setState(StateOpenConfirm)
	p.transmit(EncodeKeepalive())
	p.resetHoldTimer()
}

// peerRouterIDSet records the neighbor's router ID from its OPEN.
func (p *Peer) peerRouterIDSet(id netip.Addr) { p.routerID = id }

func (p *Peer) handleKeepalive() {
	switch p.state {
	case StateOpenConfirm:
		p.establish()
	case StateEstablished:
		p.resetHoldTimer()
	case StateOpenSent:
		p.fsmError()
	}
}

func (p *Peer) establish() {
	p.setState(StateEstablished)
	p.everEstablished = true
	p.establishedAt = p.spk.clock.Now()
	p.resetHoldTimer()
	interval := p.cfg.HoldTime / 3
	if interval <= 0 {
		interval = 30 * time.Second
	}
	// Keepalives tick on the global interval grid (aligned), not relative to
	// the establishment instant: a session torn down and re-established keeps
	// the same keepalive schedule, so hold-timer-expiry detection times stay
	// independent of the session's establishment history.
	p.keepalive = p.spk.clock.NewAlignedTicker(interval, func() {
		p.transmit(EncodeKeepalive())
	})
	// Initial full-table advertisement.
	for prefix := range p.spk.best {
		p.markDirty(prefix)
	}
	p.scheduleFlush()
}

func (p *Peer) handleUpdate(u Update) {
	if p.state != StateEstablished {
		if p.state == StateOpenConfirm {
			// Tolerate update-before-keepalive from fast peers: implicit
			// establishment, as several real stacks do.
			p.establish()
		} else {
			p.fsmError()
			return
		}
	}
	p.UpdatesIn++
	p.spk.cUpdatesIn.Inc()
	p.spk.cPrefixesIn.Add(uint64(len(u.NLRI) + len(u.Withdrawn)))
	p.resetHoldTimer()
	in := p.spk.adjIn[p.cfg.Addr]
	changed := map[netip.Prefix]bool{}
	for _, w := range u.Withdrawn {
		if old, ok := in[w]; ok {
			p.spk.releaseNH(old.Attrs.NextHop)
			delete(in, w)
			changed[w] = true
		}
	}
	if u.Attrs != nil {
		for _, prefix := range u.NLRI {
			p.PrefixesReceived++
			path := p.acceptPath(prefix, *u.Attrs)
			if path == nil {
				// Rejected by loop check or import policy: remove any
				// previous acceptance.
				if old, ok := in[prefix]; ok {
					p.spk.releaseNH(old.Attrs.NextHop)
					delete(in, prefix)
					changed[prefix] = true
				}
				continue
			}
			if old, ok := in[prefix]; ok {
				p.spk.releaseNH(old.Attrs.NextHop)
			}
			p.spk.holdNH(path.Attrs.NextHop)
			in[prefix] = path
			changed[prefix] = true
		}
	}
	for prefix := range changed {
		p.spk.decide(prefix)
	}
}

// acceptPath runs loop detection and import policy; nil means rejected.
func (p *Peer) acceptPath(prefix netip.Prefix, attrs PathAttrs) *Path {
	ibgp := p.IBGP()
	if !ibgp {
		// eBGP loop check: our ASN in the received path means a loop.
		for _, as := range attrs.ASPath {
			if as == p.spk.asn {
				return nil
			}
		}
	}
	path := &Path{
		Prefix:       prefix,
		Attrs:        attrs,
		FromIBGP:     ibgp,
		FromRRClient: p.cfg.RRClient,
		PeerAddr:     p.cfg.Addr,
		PeerRouterID: p.routerID,
	}
	// Communities are copied to avoid aliasing the decode buffer across
	// policy mutation.
	path.Attrs.Communities = append([]policy.Community{}, attrs.Communities...)
	path.Attrs.ASPath = append([]uint32{}, attrs.ASPath...)

	if p.cfg.ImportPolicy != nil {
		subj := pathToSubject(path)
		if p.cfg.ImportPolicy.Apply(&subj, p.cfg.Env) == policy.Deny {
			return nil
		}
		subjectToPath(subj, path)
	}
	return path
}

func pathToSubject(p *Path) policy.Subject {
	return policy.Subject{
		Prefix:      p.Prefix,
		NextHop:     p.Attrs.NextHop,
		LocalPref:   p.EffectiveLocalPref(),
		MED:         p.Attrs.MED,
		Communities: append([]policy.Community{}, p.Attrs.Communities...),
		ASPath:      append([]uint32{}, p.Attrs.ASPath...),
	}
}

func subjectToPath(s policy.Subject, p *Path) {
	p.Attrs.NextHop = s.NextHop
	p.Attrs.LocalPref = s.LocalPref
	p.Attrs.HasLocal = true
	p.Attrs.MED = s.MED
	p.Attrs.Communities = s.Communities
	p.Attrs.ASPath = s.ASPath
}

// decide recomputes the best path for prefix and propagates changes.
func (s *Speaker) decide(prefix netip.Prefix) {
	var candidates []*Path
	if lp, ok := s.local[prefix]; ok {
		candidates = append(candidates, lp)
	}
	// Deterministic peer iteration order.
	addrs := make([]netip.Addr, 0, len(s.adjIn))
	for a := range s.adjIn {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	for _, a := range addrs {
		if path, ok := s.adjIn[a][prefix]; ok {
			// Next-hop viability gate.
			if !path.Local && s.resolver != nil {
				if _, ok := s.resolver.ResolveNextHop(path.Attrs.NextHop); !ok {
					continue
				}
			}
			candidates = append(candidates, path)
		}
	}
	var winner *Path
	for _, c := range candidates {
		if winner == nil || s.better(c, winner) {
			winner = c
		}
	}
	old := s.best[prefix]
	if pathsEqual(old, winner) {
		return
	}
	if winner == nil {
		delete(s.best, prefix)
	} else {
		s.best[prefix] = winner
	}
	if s.onBest != nil {
		s.onBest(prefix, winner)
	}
	for _, peer := range s.peerList {
		if peer.state == StateEstablished {
			peer.markDirty(prefix)
			peer.scheduleFlush()
		}
	}
}

func pathsEqual(a, b *Path) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Local != b.Local || a.FromIBGP != b.FromIBGP || a.PeerAddr != b.PeerAddr {
		return false
	}
	return attrsEqual(&a.Attrs, &b.Attrs)
}

func attrsEqual(a, b *PathAttrs) bool {
	if a.Origin != b.Origin || a.NextHop != b.NextHop ||
		a.HasMED != b.HasMED || a.MED != b.MED ||
		a.HasLocal != b.HasLocal || a.LocalPref != b.LocalPref ||
		len(a.ASPath) != len(b.ASPath) || len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

// better implements the decision-process ladder: returns true when a is
// preferred over b.
func (s *Speaker) better(a, b *Path) bool {
	// 0. Locally originated wins (weight analogue).
	if a.Local != b.Local {
		return a.Local
	}
	// 1. Higher local preference.
	if la, lb := a.EffectiveLocalPref(), b.EffectiveLocalPref(); la != lb {
		return la > lb
	}
	// 2. Shorter AS path.
	if la, lb := len(a.Attrs.ASPath), len(b.Attrs.ASPath); la != lb {
		return la < lb
	}
	// 3. Lower origin.
	if a.Attrs.Origin != b.Attrs.Origin {
		return a.Attrs.Origin < b.Attrs.Origin
	}
	// 4. Lower MED when both paths enter from the same neighbor AS.
	if asA, asB := firstAS(a), firstAS(b); asA == asB {
		if ma, mb := a.Attrs.MED, b.Attrs.MED; ma != mb {
			return ma < mb
		}
	}
	// 5. Prefer eBGP over iBGP.
	if a.FromIBGP != b.FromIBGP {
		return !a.FromIBGP
	}
	// 6. Lower IGP metric to the next hop.
	if s.resolver != nil {
		ma, okA := s.resolver.ResolveNextHop(a.Attrs.NextHop)
		mb, okB := s.resolver.ResolveNextHop(b.Attrs.NextHop)
		if okA && okB && ma != mb {
			return ma < mb
		}
	}
	// 7. Lower peer router ID.
	if a.PeerRouterID != b.PeerRouterID {
		return a.PeerRouterID.Less(b.PeerRouterID)
	}
	// 8. Lower peer address.
	return a.PeerAddr.Less(b.PeerAddr)
}

func firstAS(p *Path) uint32 {
	if len(p.Attrs.ASPath) == 0 {
		return 0
	}
	return p.Attrs.ASPath[0]
}

func (p *Peer) markDirty(prefix netip.Prefix) { p.dirty[prefix] = true }

func (p *Peer) scheduleFlush() {
	if p.flush != nil || len(p.dirty) == 0 {
		return
	}
	p.flush = p.spk.clock.After(p.spk.advDelay, func() {
		p.flush = nil
		p.flushNow()
	})
}

// flushNow computes and transmits the pending advertisement state.
func (p *Peer) flushNow() {
	if p.state != StateEstablished {
		p.dirty = map[netip.Prefix]bool{}
		return
	}
	var withdraw []netip.Prefix
	groups := map[string]*advGroup{}
	// Deterministic ordering of dirty prefixes.
	prefixes := make([]netip.Prefix, 0, len(p.dirty))
	for prefix := range p.dirty {
		prefixes = append(prefixes, prefix)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixLess(prefixes[i], prefixes[j]) })
	p.dirty = map[netip.Prefix]bool{}

	for _, prefix := range prefixes {
		attrs, announce := p.exportDecision(prefix)
		key := ""
		if announce {
			key = attrsKey(attrs)
		}
		prev, had := p.adjOut[prefix]
		switch {
		case announce && (!had || prev != key):
			g, ok := groups[key]
			if !ok {
				g = &advGroup{attrs: attrs}
				groups[key] = g
			}
			g.prefixes = append(g.prefixes, prefix)
			p.adjOut[prefix] = key
		case !announce && had:
			withdraw = append(withdraw, prefix)
			delete(p.adjOut, prefix)
		}
	}

	if msgs, err := EncodeUpdates(Update{Withdrawn: withdraw}); err == nil {
		for _, m := range msgs {
			p.transmit(m)
		}
	}
	// Deterministic group order.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		attrs := g.attrs
		// An attribute set too large to leave room for NLRI is dropped rather
		// than advertised truncated; the codec reports it as an error.
		msgs, err := EncodeUpdates(Update{Attrs: &attrs, NLRI: g.prefixes})
		if err != nil {
			continue
		}
		for _, m := range msgs {
			p.transmit(m)
		}
	}
}

type advGroup struct {
	attrs    PathAttrs
	prefixes []netip.Prefix
}

func attrsKey(a PathAttrs) string {
	return string(encodeAttrs(&a))
}

// exportDecision decides whether (and with what attributes) the current best
// path for prefix is advertised to this peer.
func (p *Peer) exportDecision(prefix netip.Prefix) (PathAttrs, bool) {
	best, ok := p.spk.best[prefix]
	if !ok {
		return PathAttrs{}, false
	}
	// Never reflect a route back to the peer it was learned from.
	if !best.Local && best.PeerAddr == p.cfg.Addr {
		return PathAttrs{}, false
	}
	ibgpPeer := p.IBGP()
	if best.FromIBGP && ibgpPeer {
		// iBGP split horizon, relaxed by route reflection: reflect routes
		// from clients to everyone, and routes from non-clients to clients.
		if !best.FromRRClient && !p.cfg.RRClient {
			return PathAttrs{}, false
		}
	}
	attrs := best.Attrs
	attrs.ASPath = append([]uint32{}, best.Attrs.ASPath...)
	attrs.Communities = append([]policy.Community{}, best.Attrs.Communities...)

	if ibgpPeer {
		if !attrs.HasLocal {
			attrs.LocalPref, attrs.HasLocal = 100, true
		}
		if best.Local || p.cfg.NextHopSelf || !attrs.NextHop.IsValid() {
			attrs.NextHop = p.cfg.LocalAddr
		}
	} else {
		attrs.ASPath = append([]uint32{p.spk.asn}, attrs.ASPath...)
		attrs.HasLocal = false
		attrs.LocalPref = 0
		attrs.NextHop = p.cfg.LocalAddr
		// eBGP loop suppression on export: do not announce to a peer whose
		// AS is already in the path.
		for _, as := range attrs.ASPath[1:] {
			if as == p.cfg.RemoteAS {
				return PathAttrs{}, false
			}
		}
	}
	if !p.cfg.SendCommunity {
		attrs.Communities = nil
	}
	if p.cfg.ExportPolicy != nil {
		subj := policy.Subject{
			Prefix:      prefix,
			NextHop:     attrs.NextHop,
			LocalPref:   attrs.LocalPref,
			MED:         attrs.MED,
			Communities: attrs.Communities,
			ASPath:      attrs.ASPath,
		}
		if p.cfg.ExportPolicy.Apply(&subj, p.cfg.Env) == policy.Deny {
			return PathAttrs{}, false
		}
		attrs.NextHop = subj.NextHop
		if ibgpPeer {
			attrs.LocalPref, attrs.HasLocal = subj.LocalPref, true
		}
		attrs.MED = subj.MED
		attrs.Communities = subj.Communities
		attrs.ASPath = subj.ASPath
	}
	return attrs, true
}

// ReevaluateNextHops reruns the decision process for every known prefix,
// typically after the IGP changed next-hop reachability.
func (s *Speaker) ReevaluateNextHops() {
	seen := map[netip.Prefix]bool{}
	for _, in := range s.adjIn {
		for prefix := range in {
			seen[prefix] = true
		}
	}
	for prefix := range s.local {
		seen[prefix] = true
	}
	prefixes := make([]netip.Prefix, 0, len(seen))
	for prefix := range seen {
		prefixes = append(prefixes, prefix)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixLess(prefixes[i], prefixes[j]) })
	for _, prefix := range prefixes {
		s.decide(prefix)
	}
}

// FlushPending forces all peers' pending advertisements out immediately;
// used by tests and by convergence detection at quiescence boundaries.
func (s *Speaker) FlushPending() {
	for _, p := range s.peerList {
		if p.flush != nil {
			s.clock.Cancel(p.flush)
			p.flush = nil
		}
		p.flushNow()
	}
}
