package store_test

import (
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mfv/internal/aft"
	"mfv/internal/diag"
	"mfv/internal/store"
	"mfv/internal/testnet"
)

// buildSnapshot assembles a small but fully valid snapshot (Fig. 2 topology,
// two hand-built AFTs) without booting an emulation.
func buildSnapshot(t testing.TB) *store.Snapshot {
	t.Helper()
	topoJSON, err := testnet.Fig2().Marshal()
	if err != nil {
		t.Fatalf("marshal topology: %v", err)
	}
	afts := map[string]*aft.AFT{
		"r1": buildAFT(t, "r1", "10.0.0.0/24"),
		"r2": buildAFT(t, "r2", "10.0.1.0/24"),
	}
	stamps := map[string]store.Stamp{
		"r1": {Epoch: 1, Gen: 7},
		"r2": {Epoch: 1, Gen: 9},
	}
	s, err := store.New(topoJSON, afts, stamps, 42, 3*time.Second, 40*time.Second)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	return s
}

func buildAFT(t testing.TB, device, prefix string) *aft.AFT {
	t.Helper()
	b := aft.NewBuilder(device)
	nh := b.AddNextHop(aft.NextHop{IPAddress: "192.0.2.1", Interface: "Ethernet1"})
	g := b.AddGroup([]uint64{nh})
	b.AddIPv4(netip.MustParsePrefix(prefix), g, "BGP", 100)
	return b.Build()
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := buildSnapshot(t)
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := store.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Seed != 42 || got.ConvergedAt != 40*time.Second || got.StartupAt != 3*time.Second {
		t.Fatalf("scalars did not round-trip: %+v", got)
	}
	if got.TopologyHash != s.TopologyHash || got.DataplaneHash != s.DataplaneHash {
		t.Fatalf("hashes did not round-trip")
	}
	if got.Stamps["r2"] != (store.Stamp{Epoch: 1, Gen: 9}) {
		t.Fatalf("stamps did not round-trip: %+v", got.Stamps)
	}
	topo, err := got.Topology()
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	if len(topo.Nodes) == 0 {
		t.Fatalf("restored topology has no nodes")
	}
	afts, err := got.AFTs()
	if err != nil {
		t.Fatalf("afts: %v", err)
	}
	want, _ := s.AFTs()
	for name, a := range want {
		if afts[name] == nil || afts[name].Fingerprint() != a.Fingerprint() {
			t.Fatalf("AFT for %s did not round-trip", name)
		}
	}
	if store.HashAFTs(afts) != s.DataplaneHash {
		t.Fatalf("restored dataplane hash mismatch")
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	s := buildSnapshot(t)
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"short header", func(b []byte) []byte { return b[:10] }, "truncated"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"version skew", func(b []byte) []byte { b[8] = 99; return b }, "version"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, "truncated"},
		{"flipped payload byte", func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b }, "checksum"},
		{"flipped crc byte", func(b []byte) []byte { b[20] ^= 0x01; return b }, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := append([]byte(nil), data...)
			_, err := store.Decode(tc.mutate(buf))
			if err == nil {
				t.Fatalf("decode accepted %s input", tc.name)
			}
			var de *diag.Error
			if !errors.As(err, &de) {
				t.Fatalf("error is not a diagnostic: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSnapshotSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.mfvsnap")
	s := buildSnapshot(t)
	if err := s.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Saving over an existing snapshot must succeed (rename semantics).
	if err := s.Save(path); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	got, err := store.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.DataplaneHash != s.DataplaneHash {
		t.Fatalf("loaded snapshot differs")
	}
	// No temp files may survive a successful save.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "net.mfvsnap" {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("directory not clean after save: %v", names)
	}
	// A corrupted file on disk must fail with a diagnostic naming the path.
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = store.Load(path)
	if err == nil {
		t.Fatalf("load accepted corrupt file")
	}
	if !strings.Contains(err.Error(), "net.mfvsnap") {
		t.Fatalf("load error does not name the file: %v", err)
	}
}
