package store_test

import (
	"testing"

	"mfv/internal/store"
)

// FuzzSnapshotDecode hammers the snapshot decoder with hostile bytes:
// truncations, flipped CRC and payload bytes, version skew, and raw garbage.
// The decoder must return a diagnostic or a fully valid snapshot — never
// panic (PR 5 hardening contract).
func FuzzSnapshotDecode(f *testing.F) {
	valid, err := buildSnapshot(f).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	crcFlipped := append([]byte(nil), valid...)
	crcFlipped[20] ^= 0x01
	f.Add(crcFlipped)
	skewed := append([]byte(nil), valid...)
	skewed[8] = 0x7F
	f.Add(skewed)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := store.Decode(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must survive the full accessor
		// surface and re-encode cleanly.
		if _, err := s.Topology(); err != nil {
			t.Fatalf("accepted snapshot with bad topology: %v", err)
		}
		if _, err := s.AFTs(); err != nil {
			t.Fatalf("accepted snapshot with bad AFTs: %v", err)
		}
		if _, err := s.Encode(); err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
	})
}
