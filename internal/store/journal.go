package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"mfv/internal/diag"
)

// JournalVersion is the current sweep write-ahead-log line format version.
const JournalVersion = 1

// SweepJournalName is the journal file a sweep keeps inside its journal
// directory.
const SweepJournalName = "sweep.wal"

// SweepJournalPath returns the journal file path for a sweep journal
// directory.
func SweepJournalPath(dir string) string {
	return filepath.Join(dir, SweepJournalName)
}

// JournalHeader is the first record of every journal: it pins the log to one
// exact sweep input. Resume refuses a journal whose header does not match the
// current invocation — silently mixing verdicts from different topologies,
// seeds, or candidate sets would corrupt the report.
type JournalHeader struct {
	Version int `json:"version"`
	// Input digests everything that determines the candidate set and each
	// candidate's verdict: topology, seed, k, kinds, brute, hold, timeout,
	// and the canonical element list.
	Input string `json:"input"`
	// Baseline is the converged dataplane hash the verdicts were measured
	// against (HashAFTs). A drifted baseline invalidates every journaled
	// verdict.
	Baseline string `json:"baseline"`
}

// JournalEntry is one durable per-candidate verdict. Entries are
// self-contained — resume rebuilds report rows from them without re-running
// emulation or verification.
type JournalEntry struct {
	// Index is the candidate's canonical enumeration index (k=1 candidates
	// first, then pairs), informational for humans reading the log.
	Index int `json:"i"`
	// Cand keys the entry: the candidate's canonical Describe() string.
	Cand string `json:"cand"`
	// FP is the impact fingerprint (dedup identity) of the candidate.
	FP string `json:"fp,omitempty"`
	// Rep marks entries that ran their own verification (fingerprint-dedup
	// representatives); restored Rep entries count toward Report.Verified.
	Rep bool `json:"rep,omitempty"`

	Dirty       []string `json:"dirty,omitempty"`
	ReconvNS    int64    `json:"reconv_ns,omitempty"`
	Stragglers  []string `json:"stragglers,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
	Residue     int      `json:"residue,omitempty"`
	Pruned      string   `json:"pruned,omitempty"`
	Poisoned    string   `json:"poisoned,omitempty"`

	// Lost / Changed / Diffs are the verification verdict (rendered diff
	// lines, already capped for the report).
	Lost    int      `json:"lost,omitempty"`
	Changed int      `json:"changed,omitempty"`
	Diffs   []string `json:"diffs,omitempty"`
}

// Journal is an append-only CRC-per-line verdict log. Appends buffer in
// memory; Sync flushes and fsyncs — the sweep calls it at chunk barriers so
// a crash loses at most the in-flight chunk, never a torn line that poisons
// the resume parse (the parser drops a corrupt tail).
type Journal struct {
	f    *os.File
	w    *bufio.Writer
	path string
}

// CreateJournal starts a fresh journal at path (truncating any previous one)
// and durably writes the header.
func CreateJournal(path string, hdr JournalHeader) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating journal: %w", err)
	}
	j := &Journal{f: f, w: bufio.NewWriter(f), path: path}
	if err := j.appendJSON(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := j.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// ResumeJournal reopens an existing journal for appending and returns its
// valid entries. The header must match hdr exactly — a mismatch is a
// diagnostic, not a silent restart. A corrupt or torn tail (the crash case)
// is truncated away so appends continue from the last good line. If the file
// does not exist yet, ResumeJournal degrades to CreateJournal.
func ResumeJournal(path string, hdr JournalHeader) (*Journal, []JournalEntry, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		j, err := CreateJournal(path, hdr)
		return j, nil, err
	}
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading journal: %w", err)
	}
	got, entries, validLen, err := parseJournal(data)
	if err != nil {
		var de *diag.Error
		if asDiag(err, &de) && de.Path == "" {
			return nil, nil, de.WithPath(path)
		}
		return nil, nil, err
	}
	if got.Version != hdr.Version {
		return nil, nil, diag.Newf(diag.SevError, "store", "", "journal version %d unsupported (this build writes version %d)", got.Version, hdr.Version).WithPath(path)
	}
	if got.Input != hdr.Input {
		return nil, nil, diag.Newf(diag.SevError, "store", "", "journal records a different sweep input (journal %.12s, current %.12s): topology, seed, k, kinds, or budgets changed since the interrupted run", got.Input, hdr.Input).WithPath(path)
	}
	if got.Baseline != hdr.Baseline {
		return nil, nil, diag.Newf(diag.SevError, "store", "", "journal baseline drifted (journal %.12s, current %.12s): the converged dataplane no longer matches the interrupted run", got.Baseline, hdr.Baseline).WithPath(path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: reopening journal: %w", err)
	}
	if err := f.Truncate(int64(validLen)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncating journal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seeking journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, entries, nil
}

// Append buffers one verdict line. Call Sync to make a batch durable.
func (j *Journal) Append(e JournalEntry) error {
	return j.appendJSON(e)
}

// Sync flushes buffered lines and fsyncs the file.
func (j *Journal) Sync() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal: %w", err)
	}
	return nil
}

// Close flushes, fsyncs, and closes the journal.
func (j *Journal) Close() error {
	if err := j.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

func (j *Journal) appendJSON(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encoding journal line: %w", err)
	}
	if _, err := fmt.Fprintf(j.w, "%08x %s\n", crc32.Checksum(payload, crcTable), payload); err != nil {
		return fmt.Errorf("store: appending journal line: %w", err)
	}
	return nil
}

// parseJournal walks the log line by line. The first line must be a valid
// header (a corrupt header is fatal — nothing in the log can be trusted).
// After that, the first malformed, CRC-failing, or torn line ends the valid
// prefix: everything before it is returned, everything from it on is the
// crash tail the caller truncates.
func parseJournal(data []byte) (JournalHeader, []JournalEntry, int, error) {
	var hdr JournalHeader
	var entries []JournalEntry
	offset := 0
	first := true
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			break // torn final line: no newline made it to disk
		}
		line := data[offset : offset+nl]
		payload, ok := checkLine(line)
		if !ok {
			if first {
				return hdr, nil, 0, diag.Decodef("store", offset, "journal header is corrupt: cannot resume from this journal")
			}
			break
		}
		if first {
			if err := json.Unmarshal(payload, &hdr); err != nil {
				return hdr, nil, 0, diag.Decodef("store", offset, "journal header does not decode: %v", err)
			}
			first = false
		} else {
			var e JournalEntry
			if err := json.Unmarshal(payload, &e); err != nil {
				break // CRC passed but shape is wrong: treat as tail corruption
			}
			entries = append(entries, e)
		}
		offset += nl + 1
	}
	if first {
		return hdr, nil, 0, diag.Decodef("store", 0, "journal has no header: cannot resume from this journal")
	}
	return hdr, entries, offset, nil
}

// checkLine validates "crc8hex payload" framing and returns the payload.
func checkLine(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, false
	}
	return payload, true
}

// asDiag is errors.As specialized for *diag.Error (kept as a helper so the
// snapshot and journal paths attach file paths uniformly).
func asDiag(err error, target **diag.Error) bool {
	return errors.As(err, target)
}
