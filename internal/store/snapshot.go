// Package store implements the durable artifacts of the verification
// pipeline: a versioned, checksummed, atomically-written on-disk snapshot of
// a converged dataplane, and an append-only write-ahead journal of sweep
// verdicts. Together they make verification state survive process lifetimes —
// `mfv run -from-snapshot` answers queries without re-converging, and
// `mfv sweep -resume` continues a crashed or interrupted sweep without
// repeating completed candidates.
//
// Both formats are hostile-input hardened in the PR-5 style: decode never
// panics, and corruption, truncation, and version skew come back as
// internal/diag diagnostics that name what failed.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mfv/internal/aft"
	"mfv/internal/diag"
	"mfv/internal/topology"
)

// FormatVersion is the current snapshot format version. Decoding a file
// written by a different version fails with a version-mismatch diagnostic,
// never a misparse.
const FormatVersion = 1

// snapMagic brands a snapshot file. The trailing NUL keeps the magic a full
// 8 bytes so the fixed header stays word-aligned.
var snapMagic = [8]byte{'M', 'F', 'V', 'S', 'N', 'A', 'P', 0}

// headerLen is magic(8) + version(4) + payload length(8) + crc(4).
const headerLen = 8 + 4 + 8 + 4

// crcTable is the Castagnoli polynomial, the same CRC used by modern storage
// formats; it has hardware support on every platform Go targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Stamp is the serialized form of one router's FIB generation stamp
// (kne.GenStamp): Epoch counts incarnations, Gen the incarnation's FIB
// generation. Stored so a future consumer can diff a restored snapshot
// against a live emulation without re-exporting clean routers.
type Stamp struct {
	Epoch uint64 `json:"epoch"`
	Gen   uint64 `json:"gen"`
}

// Snapshot is the durable converged-state artifact: everything needed to
// rebuild the verification network (topology with embedded configs plus every
// device's AFT) and to detect drift against a live emulation (content hashes,
// generation stamps, the emulation seed).
type Snapshot struct {
	// CreatedUnix is the wall-clock capture time. Informational only — it is
	// excluded from every identity check so re-captures of identical state
	// still hash-compare equal on content.
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// Seed is the emulation seed the state converged under (0 when the
	// producing run had no single emulator, e.g. region-sharded captures).
	Seed int64 `json:"seed,omitempty"`
	// TopologyJSON is the marshaled topology, configs embedded, so a
	// snapshot is self-contained: restoring needs no separate -topo file.
	TopologyJSON []byte `json:"topology"`
	// TopologyHash is the SHA-256 of TopologyJSON, for cheap input-identity
	// checks against a caller-supplied topology file.
	TopologyHash string `json:"topology_hash"`
	// DataplaneHash digests every device's AFT fingerprint in name order —
	// the content identity of the converged forwarding state. The sweep uses
	// it as its baseline-drift gate.
	DataplaneHash string `json:"dataplane_hash"`
	// StartupAt / ConvergedAt preserve the producing run's virtual timings.
	StartupAt   time.Duration `json:"startup_at_ns"`
	ConvergedAt time.Duration `json:"converged_at_ns"`
	// Stamps are the per-router FIB generation stamps at capture.
	Stamps map[string]Stamp `json:"stamps,omitempty"`
	// AFTJSON holds each device's marshaled forwarding table.
	AFTJSON map[string]json.RawMessage `json:"afts"`

	topo *topology.Topology
	afts map[string]*aft.AFT
}

// HashBytes returns the hex SHA-256 of b.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// HashAFTs digests a dataplane: every device's AFT fingerprint, in device
// name order. Two AFT sets hash equal exactly when verification would see
// identical forwarding state.
func HashAFTs(afts map[string]*aft.AFT) string {
	names := make([]string, 0, len(afts))
	for name := range afts {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		fmt.Fprintf(h, "%s=%s;", name, afts[name].Fingerprint())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// New builds a snapshot from live state, marshaling each AFT and computing
// the identity hashes. The topology JSON must be the canonical
// topology.Marshal output (it is re-parsed on decode).
func New(topoJSON []byte, afts map[string]*aft.AFT, stamps map[string]Stamp, seed int64, startupAt, convergedAt time.Duration) (*Snapshot, error) {
	if _, err := topology.Parse(topoJSON); err != nil {
		return nil, fmt.Errorf("store: snapshot topology does not parse: %w", err)
	}
	s := &Snapshot{
		CreatedUnix:   time.Now().Unix(),
		Seed:          seed,
		TopologyJSON:  topoJSON,
		TopologyHash:  HashBytes(topoJSON),
		DataplaneHash: HashAFTs(afts),
		StartupAt:     startupAt,
		ConvergedAt:   convergedAt,
		Stamps:        stamps,
		AFTJSON:       make(map[string]json.RawMessage, len(afts)),
	}
	for name, a := range afts {
		data, err := a.Marshal()
		if err != nil {
			return nil, fmt.Errorf("store: marshaling AFT for %s: %w", name, err)
		}
		s.AFTJSON[name] = data
	}
	return s, nil
}

// Topology returns the embedded topology (parsed once, cached).
func (s *Snapshot) Topology() (*topology.Topology, error) {
	if s.topo != nil {
		return s.topo, nil
	}
	topo, err := topology.Parse(s.TopologyJSON)
	if err != nil {
		return nil, diag.Newf(diag.SevError, "store", "", "snapshot topology does not parse: %v", err)
	}
	s.topo = topo
	return topo, nil
}

// AFTs returns the embedded forwarding tables (decoded once, cached).
func (s *Snapshot) AFTs() (map[string]*aft.AFT, error) {
	if s.afts != nil {
		return s.afts, nil
	}
	out := make(map[string]*aft.AFT, len(s.AFTJSON))
	for name, raw := range s.AFTJSON {
		a, err := aft.Unmarshal(raw)
		if err != nil {
			return nil, diag.Newf(diag.SevError, "store", name, "snapshot AFT for %s does not decode: %v", name, err)
		}
		if a.Device != name {
			return nil, diag.Newf(diag.SevError, "store", name, "snapshot AFT keyed %q names device %q", name, a.Device)
		}
		out[name] = a
	}
	s.afts = out
	return out, nil
}

// Validate re-derives the identity hashes from the embedded content; a
// mismatch means the payload was assembled inconsistently (or tampered with
// in a way CRC32 happened to miss).
func (s *Snapshot) Validate() error {
	if got := HashBytes(s.TopologyJSON); got != s.TopologyHash {
		return diag.Newf(diag.SevError, "store", "", "snapshot topology hash mismatch: stored %.12s, content %.12s", s.TopologyHash, got)
	}
	if _, err := s.Topology(); err != nil {
		return err
	}
	afts, err := s.AFTs()
	if err != nil {
		return err
	}
	if got := HashAFTs(afts); got != s.DataplaneHash {
		return diag.Newf(diag.SevError, "store", "", "snapshot dataplane hash mismatch: stored %.12s, content %.12s", s.DataplaneHash, got)
	}
	return nil
}

// Encode serializes the snapshot: fixed header (magic, format version,
// payload length, CRC-32C) followed by the JSON payload.
func (s *Snapshot) Encode() ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("store: encoding snapshot payload: %w", err)
	}
	out := make([]byte, headerLen, headerLen+len(payload))
	copy(out[0:8], snapMagic[:])
	binary.LittleEndian.PutUint32(out[8:12], FormatVersion)
	binary.LittleEndian.PutUint64(out[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[20:24], crc32.Checksum(payload, crcTable))
	return append(out, payload...), nil
}

// Decode parses and fully validates an encoded snapshot. Hostile input —
// truncation, bit flips, version skew, garbage — returns an *diag.Error
// describing the failure; it never panics.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerLen {
		return nil, diag.Decodef("store", len(data), "snapshot truncated: %d bytes, need at least the %d-byte header", len(data), headerLen)
	}
	if !bytes.Equal(data[0:8], snapMagic[:]) {
		return nil, diag.Decodef("store", 0, "not a snapshot file (bad magic %q)", data[0:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatVersion {
		return nil, diag.Decodef("store", 8, "snapshot format version %d unsupported (this build reads version %d)", v, FormatVersion)
	}
	payload := data[headerLen:]
	if n := binary.LittleEndian.Uint64(data[12:20]); n != uint64(len(payload)) {
		return nil, diag.Decodef("store", 12, "snapshot truncated: header promises %d payload bytes, file has %d", n, len(payload))
	}
	want := binary.LittleEndian.Uint32(data[20:24])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, diag.Decodef("store", 20, "snapshot checksum mismatch (stored %08x, content %08x): file is corrupt", want, got)
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, diag.Decodef("store", headerLen, "snapshot payload does not decode: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Save writes the snapshot atomically: encode into a temp file in the target
// directory, fsync it, rename over the destination, and fsync the directory.
// A crash at any point leaves either the old file or the new one, never a
// torn write.
func (s *Snapshot) Save(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return atomicWrite(path, data)
}

// Load reads and decodes a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		var de *diag.Error
		if ok := asDiag(err, &de); ok && de.Path == "" {
			return nil, de.WithPath(path)
		}
		return nil, err
	}
	return s, nil
}

// Summary renders a one-glance description for `mfv snapshot load`.
func (s *Snapshot) Summary() string {
	created := ""
	if s.CreatedUnix != 0 {
		created = fmt.Sprintf(", captured %s", time.Unix(s.CreatedUnix, 0).UTC().Format(time.RFC3339))
	}
	return fmt.Sprintf("snapshot: %d device(s), seed %d, converged at %v (virtual)%s\n  topology  %.16s…\n  dataplane %.16s…",
		len(s.AFTJSON), s.Seed, s.ConvergedAt.Round(time.Second), created, s.TopologyHash, s.DataplaneHash)
}

// atomicWrite is the temp + fsync + rename + dir-fsync sequence shared by the
// snapshot and journal writers.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss. Best-effort:
// some filesystems reject directory fsync, and the rename itself is already
// atomic on every platform we run on.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
