package store_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mfv/internal/store"
)

func testHeader() store.JournalHeader {
	return store.JournalHeader{Version: store.JournalVersion, Input: "input-abc", Baseline: "base-def"}
}

func testEntries() []store.JournalEntry {
	return []store.JournalEntry{
		{Index: 0, Cand: "bgp r1", FP: "fp1", Rep: true, Dirty: []string{"r1", "r2"}, ReconvNS: 1500, Lost: 2, Changed: 3, Diffs: []string{"flow a", "flow b"}},
		{Index: 1, Cand: "bgp r2", FP: "fp1", Pruned: "fingerprint", Lost: 2, Changed: 3, Diffs: []string{"flow a", "flow b"}},
		{Index: 2, Cand: "link r1:Ethernet1 + bgp r2", Pruned: "independent"},
		{Index: 3, Cand: "node r3", Poisoned: "panic: boom"},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := store.SweepJournalPath(t.TempDir())
	j, err := store.CreateJournal(path, testHeader())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	want := testEntries()
	for _, e := range want[:2] {
		if err := j.Append(e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	for _, e := range want[2:] {
		if err := j.Append(e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, got, err := store.ResumeJournal(path, testHeader())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("resumed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Cand != want[i].Cand || got[i].Lost != want[i].Lost ||
			got[i].Pruned != want[i].Pruned || got[i].Poisoned != want[i].Poisoned ||
			len(got[i].Diffs) != len(want[i].Diffs) || len(got[i].Dirty) != len(want[i].Dirty) ||
			got[i].Rep != want[i].Rep {
			t.Fatalf("entry %d did not round-trip:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	// Appends after resume land after the existing entries.
	if err := j2.Append(store.JournalEntry{Index: 4, Cand: "node r4"}); err != nil {
		t.Fatalf("append after resume: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, got, err = store.ResumeJournal(path, testHeader())
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if len(got) != len(want)+1 || got[len(got)-1].Cand != "node r4" {
		t.Fatalf("post-resume append lost: %d entries", len(got))
	}
}

func TestJournalResumeMissingFileCreates(t *testing.T) {
	path := store.SweepJournalPath(t.TempDir())
	j, entries, err := store.ResumeJournal(path, testHeader())
	if err != nil {
		t.Fatalf("resume on missing file: %v", err)
	}
	defer j.Close()
	if len(entries) != 0 {
		t.Fatalf("fresh journal returned %d entries", len(entries))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("resume did not create the journal: %v", err)
	}
}

func TestJournalTruncatesCorruptTail(t *testing.T) {
	path := store.SweepJournalPath(t.TempDir())
	j, err := store.CreateJournal(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range testEntries()[:2] {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	tails := map[string][]byte{
		"torn line (no newline)": []byte(`00000000 {"i":9,"cand":"node`),
		"garbage line":           []byte("not a journal line at all\n"),
		"bad crc":                []byte(`deadbeef {"i":9,"cand":"node r9"}` + "\n"),
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte(nil), clean...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			j, entries, err := store.ResumeJournal(path, testHeader())
			if err != nil {
				t.Fatalf("resume with corrupt tail: %v", err)
			}
			if len(entries) != 2 {
				t.Fatalf("got %d entries, want the 2 before the corrupt tail", len(entries))
			}
			// The tail must be truncated so new appends produce a clean log.
			if err := j.Append(store.JournalEntry{Index: 2, Cand: "node r3"}); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			_, entries, err = store.ResumeJournal(path, testHeader())
			if err != nil {
				t.Fatalf("resume after repair: %v", err)
			}
			if len(entries) != 3 || entries[2].Cand != "node r3" {
				t.Fatalf("repaired journal has %d entries", len(entries))
			}
		})
	}
}

func TestJournalHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	path := store.SweepJournalPath(dir)
	j, err := store.CreateJournal(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	cases := []struct {
		name string
		hdr  store.JournalHeader
		want string
	}{
		{"input changed", store.JournalHeader{Version: store.JournalVersion, Input: "other", Baseline: "base-def"}, "different sweep input"},
		{"baseline drifted", store.JournalHeader{Version: store.JournalVersion, Input: "input-abc", Baseline: "other"}, "baseline drifted"},
		{"version skew", store.JournalHeader{Version: 99, Input: "input-abc", Baseline: "base-def"}, "version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := store.ResumeJournal(path, tc.hdr)
			if err == nil {
				t.Fatalf("resume accepted mismatched header")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// A corrupt header is fatal: nothing in the log can be trusted.
	if err := os.WriteFile(filepath.Join(dir, store.SweepJournalName), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.ResumeJournal(path, testHeader()); err == nil {
		t.Fatalf("resume accepted corrupt header")
	}
}
