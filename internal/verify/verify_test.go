package verify

import (
	"net/netip"
	"testing"

	"mfv/internal/aft"
	"mfv/internal/topology"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

// aftSpec is a compact way to build a device AFT for tests.
type aftSpec struct {
	device string
	// routes: prefix -> one of "recv", "drop", "ifname" or "ifname|ifname2"
	// for ECMP.
	routes map[string]string
}

func buildAFT(s aftSpec) *aft.AFT {
	b := aft.NewBuilder(s.device)
	for p, action := range s.routes {
		var idx []uint64
		switch action {
		case "recv":
			idx = append(idx, b.AddNextHop(aft.NextHop{Receive: true}))
		case "drop":
			idx = append(idx, b.AddNextHop(aft.NextHop{Drop: true}))
		default:
			for _, intf := range splitPipe(action) {
				idx = append(idx, b.AddNextHop(aft.NextHop{Interface: intf, IPAddress: "10.0.0.1"}))
			}
		}
		b.AddIPv4(pfx(p), b.AddGroup(idx), "test", 0)
	}
	return b.Build()
}

func splitPipe(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == '|' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(c)
	}
	return append(out, cur)
}

// lineNet builds r1 -- r2 -- r3 with r3 owning 9.9.9.9/32 and everyone
// routing 9.0.0.0/8 toward r3.
func lineNet() (*topology.Topology, map[string]*aft.AFT) {
	topo := topology.Line(3, topology.VendorEOS)
	afts := map[string]*aft.AFT{
		"r1": buildAFT(aftSpec{device: "r1", routes: map[string]string{
			"9.0.0.0/8":  "Ethernet1",
			"1.1.1.1/32": "recv",
		}}),
		"r2": buildAFT(aftSpec{device: "r2", routes: map[string]string{
			"9.0.0.0/8":  "Ethernet2",
			"1.1.1.2/32": "recv",
		}}),
		"r3": buildAFT(aftSpec{device: "r3", routes: map[string]string{
			"9.9.9.9/32": "recv",
			"9.0.0.0/8":  "drop", // more-specific recv wins for 9.9.9.9
			"1.1.1.3/32": "recv",
		}}),
	}
	return topo, afts
}

func mustNet(t *testing.T, topo *topology.Topology, afts map[string]*aft.AFT) *Network {
	t.Helper()
	n, err := NewNetwork(topo, afts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTraceDelivered(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	tr := n.Trace("r1", addr("9.9.9.9"))
	if !tr.Delivered() {
		t.Fatalf("trace = %+v", tr)
	}
	if len(tr.Paths) != 1 {
		t.Fatalf("paths = %d", len(tr.Paths))
	}
	p := tr.Paths[0]
	if p.Final != "r3" || len(p.Hops) != 3 {
		t.Errorf("path = %v", p)
	}
	if p.Hops[0].Device != "r1" || p.Hops[0].Egress != "Ethernet1" {
		t.Errorf("hop0 = %+v", p.Hops[0])
	}
	if p.Hops[2].Matched != "9.9.9.9/32" {
		t.Errorf("final match = %+v", p.Hops[2])
	}
	if p.String() == "" {
		t.Error("Path.String empty")
	}
}

func TestTraceDropAndNoRoute(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	// 9.5.0.0 hits r3's drop entry.
	tr := n.Trace("r1", addr("9.5.0.1"))
	if tr.Delivered() || tr.Paths[0].Disposition != Dropped || tr.Paths[0].Final != "r3" {
		t.Errorf("trace = %+v", tr.Paths)
	}
	// 8.0.0.1 matches nothing at r1.
	tr = n.Trace("r1", addr("8.0.0.1"))
	if tr.Paths[0].Disposition != NoRoute || tr.Paths[0].Final != "r1" {
		t.Errorf("trace = %+v", tr.Paths)
	}
	// Unknown source device.
	tr = n.Trace("ghost", addr("9.9.9.9"))
	if tr.Paths[0].Disposition != NoRoute {
		t.Errorf("ghost trace = %+v", tr.Paths)
	}
}

func TestTraceExitsNetwork(t *testing.T) {
	topo := topology.Line(2, topology.VendorEOS)
	afts := map[string]*aft.AFT{
		"r1": buildAFT(aftSpec{device: "r1", routes: map[string]string{
			"0.0.0.0/0": "Ethernet9", // unwired interface: external peer
		}}),
		"r2": buildAFT(aftSpec{device: "r2", routes: map[string]string{}}),
	}
	n := mustNet(t, topo, afts)
	tr := n.Trace("r1", addr("203.0.113.1"))
	if tr.Paths[0].Disposition != ExitsNetwork {
		t.Errorf("trace = %+v", tr.Paths)
	}
}

func TestTraceECMPBranches(t *testing.T) {
	// Diamond: r1 ECMPs to r2 (Ethernet1) and r3 (Ethernet2); both deliver
	// to r4... simplified: both own the address? Build: r1 splits, r2
	// delivers, r3 drops — trace must show both branches.
	topo := &topology.Topology{
		Name: "ecmp",
		Nodes: []topology.Node{
			{Name: "r1", Vendor: topology.VendorEOS},
			{Name: "r2", Vendor: topology.VendorEOS},
			{Name: "r3", Vendor: topology.VendorEOS},
		},
		Links: []topology.Link{
			{A: topology.Endpoint{Node: "r1", Interface: "Ethernet1"}, Z: topology.Endpoint{Node: "r2", Interface: "Ethernet1"}},
			{A: topology.Endpoint{Node: "r1", Interface: "Ethernet2"}, Z: topology.Endpoint{Node: "r3", Interface: "Ethernet1"}},
		},
	}
	afts := map[string]*aft.AFT{
		"r1": buildAFT(aftSpec{device: "r1", routes: map[string]string{"9.0.0.0/8": "Ethernet1|Ethernet2"}}),
		"r2": buildAFT(aftSpec{device: "r2", routes: map[string]string{"9.0.0.0/8": "recv"}}),
		"r3": buildAFT(aftSpec{device: "r3", routes: map[string]string{"9.0.0.0/8": "drop"}}),
	}
	n := mustNet(t, topo, afts)
	tr := n.Trace("r1", addr("9.1.2.3"))
	if len(tr.Paths) != 2 {
		t.Fatalf("paths = %+v", tr.Paths)
	}
	if !tr.Delivered() {
		t.Error("ECMP delivery branch missed")
	}
	outcome := tr.Outcome()
	if outcome != "Delivered@r2,Dropped@r3" {
		t.Errorf("Outcome = %q", outcome)
	}
}

func TestLoopDetection(t *testing.T) {
	topo := topology.Line(2, topology.VendorEOS)
	afts := map[string]*aft.AFT{
		"r1": buildAFT(aftSpec{device: "r1", routes: map[string]string{"9.0.0.0/8": "Ethernet1"}}),
		"r2": buildAFT(aftSpec{device: "r2", routes: map[string]string{"9.0.0.0/8": "Ethernet1"}}),
	}
	n := mustNet(t, topo, afts)
	tr := n.Trace("r1", addr("9.1.1.1"))
	if tr.Paths[0].Disposition != Loop {
		t.Fatalf("trace = %+v", tr.Paths)
	}
	loops := n.DetectLoops()
	if len(loops) == 0 {
		t.Error("DetectLoops found nothing")
	}
	found := false
	for _, l := range loops {
		if l.Src == "r1" && pfx("9.0.0.0/8").Contains(l.Dst) {
			found = true
		}
	}
	if !found {
		t.Errorf("loops = %+v", loops)
	}
}

func TestDetectBlackHoles(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	holes := n.DetectBlackHoles()
	// 9.0.0.0/8 minus 9.9.9.9 is dropped at r3; plus plenty of NoRoute
	// classes (unrouted space).
	foundDrop := false
	for _, h := range holes {
		if h.Disposition == Dropped && pfx("9.0.0.0/8").Contains(h.Dst) {
			foundDrop = true
		}
	}
	if !foundDrop {
		t.Errorf("holes = %+v", holes)
	}
}

func TestEquivalenceClassesPartition(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	classes := n.EquivalenceClasses()
	if len(classes) == 0 {
		t.Fatal("no classes")
	}
	// Class representatives must be sorted and unique and include 0.0.0.0.
	if classes[0] != addr("0.0.0.0") {
		t.Errorf("first class = %v", classes[0])
	}
	for i := 1; i < len(classes); i++ {
		if !classes[i-1].Less(classes[i]) {
			t.Fatalf("classes not sorted/unique at %d: %v %v", i, classes[i-1], classes[i])
		}
	}
	// Every FIB prefix boundary must start a class: 9.9.9.9 and 9.9.9.10
	// (the /32's successor) must both be representatives.
	want := map[netip.Addr]bool{
		addr("9.0.0.0"): false, addr("9.9.9.9"): false, addr("9.9.9.10"): false,
		addr("10.0.0.0"): false, // successor of 9.0.0.0/8
	}
	for _, c := range classes {
		if _, ok := want[c]; ok {
			want[c] = true
		}
	}
	for a, seen := range want {
		if !seen {
			t.Errorf("boundary %v not a class representative", a)
		}
	}
}

// Property: all addresses within one equivalence class get the same outcome
// from every source (sampled at class start, middle-ish, and end-1).
func TestClassMembersForwardIdentically(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	classes := n.EquivalenceClasses()
	for i, rep := range classes {
		var end uint32 = 0xffffffff
		if i+1 < len(classes) {
			end = addrU32(classes[i+1]) - 1
		}
		start := addrU32(rep)
		mid := start + (end-start)/2
		for _, src := range n.Devices() {
			want := n.Trace(src, rep).Outcome()
			for _, probe := range []uint32{mid, end} {
				got := n.Trace(src, u32Addr(probe)).Outcome()
				if got != want {
					t.Fatalf("class [%v..%v] not uniform from %s: %v -> %q, rep %q",
						rep, u32Addr(end), src, u32Addr(probe), got, want)
				}
			}
		}
	}
}

func TestAllPairs(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	m := n.AllPairs()
	if len(m.Dsts) != 4 { // 1.1.1.1-3 + 9.9.9.9
		t.Fatalf("owned addrs = %v", m.Dsts)
	}
	// r1 reaches 9.9.9.9 but nobody reaches 1.1.1.1 except r1 itself (no
	// return routes configured in this synthetic net).
	if !m.Reach["r1"][addr("9.9.9.9")] {
		t.Error("r1 cannot reach 9.9.9.9")
	}
	if m.Reach["r2"][addr("1.1.1.1")] {
		t.Error("r2 unexpectedly reaches 1.1.1.1")
	}
	if m.FullMesh() {
		t.Error("FullMesh true on partial net")
	}
	if o, ok := n.Owner(addr("9.9.9.9")); !ok || o != "r3" {
		t.Errorf("Owner = %v, %v", o, ok)
	}
}

func TestDifferentialDetectsChange(t *testing.T) {
	topo, aftsA := lineNet()
	// Snapshot B: r2 loses its route toward r3.
	_, aftsB := lineNet()
	aftsB["r2"] = buildAFT(aftSpec{device: "r2", routes: map[string]string{
		"1.1.1.2/32": "recv",
	}})
	a := mustNet(t, topo, aftsA)
	b := mustNet(t, topo, aftsB)
	diffs := Differential(a, b)
	if len(diffs) == 0 {
		t.Fatal("no differences found")
	}
	found := false
	for _, d := range diffs {
		if d.Src == "r1" && pfx("9.0.0.0/8").Contains(d.Dst) {
			if d.Before == "" || d.After == "" || d.Before == d.After {
				t.Errorf("diff = %+v", d)
			}
			found = true
		}
		if d.String() == "" {
			t.Error("empty diff string")
		}
	}
	if !found {
		t.Errorf("diffs = %+v", diffs)
	}
}

func TestDifferentialIdenticalSnapshotsEmpty(t *testing.T) {
	topo, afts := lineNet()
	a := mustNet(t, topo, afts)
	b := mustNet(t, topo, afts)
	if diffs := Differential(a, b); len(diffs) != 0 {
		t.Errorf("identical snapshots differ: %+v", diffs)
	}
}

func TestNewNetworkRejectsUnknownDevice(t *testing.T) {
	topo := topology.Line(2, topology.VendorEOS)
	afts := map[string]*aft.AFT{
		"zz": buildAFT(aftSpec{device: "zz", routes: map[string]string{}}),
	}
	if _, err := NewNetwork(topo, afts); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestDispositionStrings(t *testing.T) {
	for d, want := range map[Disposition]string{
		Delivered: "Delivered", ExitsNetwork: "ExitsNetwork", Dropped: "Dropped",
		NoRoute: "NoRoute", Loop: "Loop", Disposition(9): "Disposition(9)",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
}
