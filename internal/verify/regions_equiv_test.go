package verify

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"mfv/internal/aft"
	"mfv/internal/topology"
)

// buildRandomRegions mirrors buildRandom over a disconnected multi-region
// topology, forcing the batch engine down the component-sharded path
// (outcomesByComponent). Random receive/drop/forward entries produce loops,
// black holes, partial coverage, and exits — the full disposition alphabet.
func buildRandomRegions(r *rand.Rand, regions, per, prefixes int) (*Network, error) {
	topo := topology.MultiRegion(regions, per, topology.VendorEOS)
	afts := map[string]*aft.AFT{}
	for _, node := range topo.Nodes {
		b := aft.NewBuilder(node.Name)
		for p := 0; p < prefixes; p++ {
			var a [4]byte
			r.Read(a[:])
			// Cluster network bytes so prefixes collide across regions and
			// destination classes are covered by some components but not
			// others (the covers() skip path).
			a[0] = byte(r.Intn(4) * 64)
			prefix := netip.PrefixFrom(netip.AddrFrom4(a), 1+r.Intn(32)).Masked()
			var idx uint64
			switch r.Intn(4) {
			case 0:
				idx = b.AddNextHop(aft.NextHop{Receive: true})
			case 1:
				idx = b.AddNextHop(aft.NextHop{Drop: true})
			case 2:
				idx = b.AddNextHop(aft.NextHop{Interface: "Ethernet1", IPAddress: "10.0.0.1"})
			default:
				idx = b.AddNextHop(aft.NextHop{Interface: "Ethernet2", IPAddress: "10.0.0.2"})
			}
			b.AddIPv4(prefix, b.AddGroup([]uint64{idx}), "test", 0)
		}
		afts[node.Name] = b.Build()
	}
	return NewNetwork(topo, afts)
}

func TestRegionComponentsDetected(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n, err := buildRandomRegions(r, 4, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	comps := n.components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	for _, c := range comps {
		if len(c.names) != 3 {
			t.Errorf("component %v has %d members, want 3", c.names, len(c.names))
		}
	}
}

// TestQuickRegionOutcomesMatchTrace: on multi-region networks the
// component-sharded solver (including the coverage skip and its NoRoute
// fallback) must agree with the sequential Trace walk on every (source,
// class) flow.
func TestQuickRegionOutcomesMatchTrace(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n, err := buildRandomRegions(r, 3, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.components()) < 2 {
			t.Fatalf("seed %d: sharded path not in play", seed)
		}
		for _, rep := range n.EquivalenceClasses() {
			oc := n.outcomesFor(rep)
			for _, src := range n.Devices() {
				if got, want := oc.outcome(src), n.Trace(src, rep).Outcome(); got != want {
					t.Fatalf("seed %d: outcome(%s, %v) = %q, trace says %q", seed, src, rep, got, want)
				}
			}
		}
	}
}

// TestQuickRegionDifferentialMatchesSequential: the batch differential over
// two multi-region snapshots must reproduce the sequential source-major,
// class-minor trace evaluation byte for byte.
func TestQuickRegionDifferentialMatchesSequential(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		r := rand.New(rand.NewSource(seed))
		before, err := buildRandomRegions(r, 3, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		after, err := buildRandomRegions(r, 3, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		var want []Diff
		for _, src := range unionStrings(before.Devices(), after.Devices()) {
			for _, rep := range unionAddrs(before.EquivalenceClasses(), after.EquivalenceClasses()) {
				a := before.Trace(src, rep).Outcome()
				b := after.Trace(src, rep).Outcome()
				if a != b {
					want = append(want, Diff{Src: src, Dst: rep, Before: a, After: b})
				}
			}
		}
		got := Queries{Workers: 4}.Differential(before, after)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: sharded differential diverges:\ngot  %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestQuickRegionBlackHolesMatchSequential: skipped components must still
// surface their NoRoute flows, with the same reports the sequential
// per-flow walk produces.
func TestQuickRegionBlackHolesMatchSequential(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		r := rand.New(rand.NewSource(seed))
		n, err := buildRandomRegions(r, 3, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		var want []BlackHole
		for _, rep := range n.EquivalenceClasses() {
			for _, src := range n.Devices() {
				tr := n.Trace(src, rep)
				for _, p := range tr.Paths {
					if p.Disposition == Dropped || p.Disposition == NoRoute {
						want = append(want, BlackHole{Dst: rep, Src: src, Disposition: p.Disposition})
						break
					}
				}
			}
		}
		got := Queries{Workers: 4}.DetectBlackHoles(n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: sharded black holes diverge:\ngot  %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestQuickRegionLoopsMatchSequential: loop detection across components.
func TestQuickRegionLoopsMatchSequential(t *testing.T) {
	for seed := int64(300); seed < 310; seed++ {
		r := rand.New(rand.NewSource(seed))
		n, err := buildRandomRegions(r, 3, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		var want []LoopReport
		for _, rep := range n.EquivalenceClasses() {
			for _, src := range n.Devices() {
				tr := n.Trace(src, rep)
				for _, p := range tr.Paths {
					if p.Disposition == Loop {
						want = append(want, LoopReport{Dst: rep, Src: src, Path: p})
						break
					}
				}
			}
		}
		got := Queries{Workers: 4}.DetectLoops(n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: sharded loops diverge:\ngot  %d reports\nwant %d reports", seed, len(got), len(want))
		}
	}
}
