package verify

import (
	"net/netip"
	"sort"
	"strings"
	"time"

	"mfv/internal/topology"
)

// This file is the delta-driven differential: the fault-loop optimization
// that makes per-fault verification cost proportional to blast radius. The
// caller names the dirty devices — those whose forwarding state may differ
// between the two snapshots (the chaos engine derives the set from the
// emulator's FIB-generation stamps) — and the query then prunes work in two
// sound steps:
//
//  1. Class prune: for each equivalence class, look the representative up
//     in every dirty device's before/after tries. If every dirty device
//     forwards the class identically in both snapshots, then — since every
//     clean device is byte-identical by definition — the two forwarding
//     graphs for that class are equal and the class can contribute no diff.
//     This costs O(|dirty|) lookups per class instead of a full evaluation.
//
//  2. Source taint: for a class that did change, only sources whose
//     forwarding walk can reach a changed device can change outcome. The
//     tainted set is a reverse BFS from the changed devices over the union
//     of both snapshots' one-step forwarding edges; untainted sources walk
//     an identical subgraph in both snapshots and are skipped.
//
// The surviving (tainted source, changed class) flows are evaluated with
// the same memoized solver semantics as the full query and merged in the
// same (source, class) order, so the result is byte-identical to
// Queries.Differential whenever dirty covers every changed device.

// DeltaDifferential is the package-level convenience wrapper, sizing the
// worker pool like Differential does.
func DeltaDifferential(before, after *Network, dirty []string) []Diff {
	w := before.workers
	if w == 0 {
		w = after.workers
	}
	return Queries{Workers: w}.DeltaDifferential(before, after, dirty)
}

// DeltaDifferential runs the differential-reachability query restricted to
// flows that can be affected by the dirty devices. dirty must include every
// device whose forwarding state differs between the snapshots (supersets
// are fine); under that precondition the output is byte-identical to
// Differential(before, after).
func (q Queries) DeltaDifferential(before, after *Network, dirty []string) []Diff {
	// The clean-subtree solver and the exact trace walk agree only below the
	// depth cap; Differential handles the deep case with per-device traces,
	// so defer to it rather than replicating that fallback here.
	if len(before.devices) >= maxPathHops || len(after.devices) >= maxPathHops {
		return q.Differential(before, after)
	}
	defer before.observeWall("differential", time.Now())
	before.cQueries.Inc()
	classes := unionAddrs(before.EquivalenceClasses(), after.EquivalenceClasses())
	sources := unionStrings(before.Devices(), after.Devices())
	dirtySorted := append([]string{}, dirty...)
	sort.Strings(dirtySorted)

	results := make([][]Diff, len(classes))
	q.run(len(classes), func(i int) {
		results[i] = deltaClass(before, after, classes[i], dirtySorted, sources)
	})

	var out []Diff
	for _, ds := range results {
		out = append(out, ds...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst.Less(out[j].Dst)
	})
	return out
}

// deltaClass evaluates one destination class: prune, taint, then compare
// only tainted sources.
func deltaClass(before, after *Network, rep netip.Addr, dirty, sources []string) []Diff {
	var changed []string
	for _, name := range dirty {
		if !classEntryEqual(before.devices[name], after.devices[name], rep) {
			changed = append(changed, name)
		}
	}
	if len(changed) == 0 {
		return nil
	}
	tainted := taintedSources(before, after, rep, changed)
	before.cFlows.Add(uint64(len(tainted)))
	before.gInflight.Add(int64(len(tainted)))
	defer before.gInflight.Add(-int64(len(tainted)))

	ob := before.partialOutcomes(rep, tainted)
	oa := after.partialOutcomes(rep, tainted)
	var ds []Diff
	for _, src := range sources {
		if !tainted[src] {
			continue
		}
		b, a := ob[src], oa[src]
		if b != a {
			ds = append(ds, Diff{Src: src, Dst: rep, Before: b, After: a})
		}
	}
	return ds
}

// classEntryEqual reports whether a device forwards the class identically
// in both snapshots. Only behavior-relevant hop fields are compared — the
// fields the walk and the solver consume — so a cosmetic difference (e.g.
// metric) cannot force a recompute, while any behavioral difference marks
// the device changed.
func classEntryEqual(b, a *device, rep netip.Addr) bool {
	if b == nil || a == nil {
		return b == a
	}
	_, be, bok := b.fib.Lookup(rep)
	_, ae, aok := a.fib.Lookup(rep)
	if bok != aok {
		return false
	}
	if !bok {
		return true
	}
	if len(be.hops) != len(ae.hops) {
		return false
	}
	for i := range be.hops {
		x, y := be.hops[i], ae.hops[i]
		if x.Receive != y.Receive || x.Drop != y.Drop || x.Interface != y.Interface {
			return false
		}
	}
	return true
}

// taintedSources runs a reverse BFS from the changed devices over the union
// of both snapshots' one-step forwarding edges for this class. A source
// outside the result walks an identical, unchanged subgraph in both
// snapshots, so its outcome provably cannot differ.
func taintedSources(before, after *Network, rep netip.Addr, changed []string) map[string]bool {
	rev := map[string][]string{}
	for _, n := range []*Network{before, after} {
		for name, d := range n.devices {
			_, entry, ok := d.fib.Lookup(rep)
			if !ok {
				continue
			}
			for _, h := range entry.hops {
				if h.Receive || h.Drop {
					continue
				}
				peer, wired := n.peerOf[topology.Endpoint{Node: name, Interface: h.Interface}]
				if !wired {
					continue
				}
				if _, ok := n.devices[peer.Node]; !ok {
					continue
				}
				rev[peer.Node] = append(rev[peer.Node], name)
			}
		}
	}
	tainted := make(map[string]bool, len(changed))
	queue := append([]string{}, changed...)
	for _, name := range changed {
		tainted[name] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, up := range rev[cur] {
			if !tainted[up] {
				tainted[up] = true
				queue = append(queue, up)
			}
		}
	}
	return tainted
}

// partialOutcomes computes canonical outcomes for just the given sources,
// sharing clean-subtree fragments within the call exactly like
// solveOutcomes. Results deliberately stay out of the network's per-class
// memo: they cover a subset of devices, and a later full query must not
// mistake them for complete class outcomes.
func (n *Network) partialOutcomes(dst netip.Addr, srcs map[string]bool) map[string]string {
	s := &solver{n: n, dst: dst, frag: map[string][]string{}, stack: map[string]bool{}}
	out := make(map[string]string, len(srcs))
	for name := range srcs {
		d, ok := n.devices[name]
		if !ok {
			out[name] = NoRoute.String() + "@" + name
			continue
		}
		f, _ := s.visit(d)
		canon := strings.Join(f, ",")
		if canon == "" {
			// Match dstOutcomes.outcome's fallback for empty outcome sets.
			canon = NoRoute.String() + "@" + name
		}
		out[name] = canon
	}
	n.cMemoHits.Add(s.hits)
	n.cMemoMisses.Add(s.misses)
	return out
}
