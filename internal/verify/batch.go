package verify

import (
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mfv/internal/topology"
)

// This file is the parallel batch-query engine. The exhaustive queries
// (AllPairs, Differential, DetectLoops, DetectBlackHoles) all reduce to the
// same shape — evaluate every (source, equivalence-class) flow over an
// immutable Network — so they share one worker pool that shards flows by
// destination class and one per-device memoization layer that computes
// shared path suffixes once instead of once per source.
//
// Determinism contract: results are merged by stable flow key, so output is
// byte-identical regardless of worker count. Outcome fragments are exact
// (the solver never truncates), whereas path enumeration via Trace caps at
// maxBranches and flags Trace.Truncated; the two agree whenever no trace is
// truncated, which the memoization quickcheck asserts on random networks.

// Queries configures the batch engine. The zero value runs with
// runtime.GOMAXPROCS(0) workers.
type Queries struct {
	// Workers is the worker-pool size; values <= 0 select GOMAXPROCS.
	Workers int
}

func (q Queries) workers() int {
	if q.Workers > 0 {
		return q.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// run evaluates fn(i) for i in [0, n) across the pool. Each index owns its
// result slot, so scheduling order never affects output.
func (q Queries) run(n int, fn func(int)) {
	w := q.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// outcomeSet is the canonical forwarding outcome of one (device, class)
// flow: the sorted set of "Disposition@final" fragments, matching
// Trace.Outcome exactly.
type outcomeSet struct {
	canon string
	frags []string
}

// has reports whether any fragment carries the given disposition prefix
// (e.g. "Loop@", "Delivered@").
func (o outcomeSet) has(prefix string) bool {
	for _, f := range o.frags {
		if strings.HasPrefix(f, prefix) {
			return true
		}
	}
	return false
}

// dstOutcomes maps every device to its outcome for one destination class.
type dstOutcomes map[string]outcomeSet

// outcome returns the canonical outcome for src, falling back to the
// NoRoute self-outcome Trace produces for devices without forwarding state.
func (m dstOutcomes) outcome(src string) string {
	if o, ok := m[src]; ok && o.canon != "" {
		return o.canon
	}
	return NoRoute.String() + "@" + src
}

// outcomesFor returns (computing and memoizing on first use) the per-device
// outcomes for one destination class. The cache lives on the Network, so
// repeated queries against the same immutable snapshot — the chaos engine's
// per-fault differentials, a Differential after a DetectLoops — pay once.
func (n *Network) outcomesFor(dst netip.Addr) dstOutcomes {
	n.memoMu.Lock()
	if m, ok := n.memo[dst]; ok {
		n.memoMu.Unlock()
		n.cMemoHits.Inc()
		return m
	}
	n.memoMu.Unlock()

	var m dstOutcomes
	if comps := n.components(); len(comps) > 1 {
		// Region-sharded topologies: solve component-by-component. Walks
		// cannot cross components, so this is exact, and the maxPathHops
		// solver cutoff applies to each piece instead of the whole network.
		m = n.outcomesByComponent(dst, comps)
	} else if len(n.devices) >= maxPathHops {
		// Simple paths can reach the walk's depth cap: defer to the exact
		// legacy enumeration per device so depth truncation semantics match.
		m = n.outcomesByTrace(dst)
	} else {
		m = n.solveOutcomes(dst)
	}

	n.memoMu.Lock()
	if prior, ok := n.memo[dst]; ok {
		m = prior // a concurrent query computed it first; keep one copy
	} else {
		if n.memo == nil {
			n.memo = map[netip.Addr]dstOutcomes{}
		}
		n.memo[dst] = m
	}
	n.memoMu.Unlock()
	return m
}

// traceOutcome computes one device's canonical outcome via the exact path
// walk (no suffix sharing).
func (n *Network) traceOutcome(name string, dst netip.Addr) outcomeSet {
	t := n.Trace(name, dst)
	set := map[string]bool{}
	for _, p := range t.Paths {
		set[p.Disposition.String()+"@"+p.Final] = true
	}
	frags := make([]string, 0, len(set))
	for f := range set {
		frags = append(frags, f)
	}
	sort.Strings(frags)
	return outcomeSet{canon: strings.Join(frags, ","), frags: frags}
}

// outcomesByTrace is the fallback for very deep networks: one full
// enumeration per device, no suffix sharing.
func (n *Network) outcomesByTrace(dst netip.Addr) dstOutcomes {
	out := make(dstOutcomes, len(n.devices))
	for name := range n.devices {
		out[name] = n.traceOutcome(name, dst)
		n.cMemoMisses.Inc()
	}
	return out
}

// outcomesByComponent solves each connected component independently,
// skipping components whose FIBs cannot match dst at all — their members'
// outcomes are exactly the NoRoute self-fallback dstOutcomes.outcome
// supplies, so leaving them out of the map keeps per-class memory
// proportional to the relevant region, not the network.
func (n *Network) outcomesByComponent(dst netip.Addr, comps []*component) dstOutcomes {
	out := dstOutcomes{}
	a := addrU32(dst)
	for _, c := range comps {
		if !c.covers(a) {
			continue
		}
		if len(c.names) >= maxPathHops {
			for _, name := range c.names {
				out[name] = n.traceOutcome(name, dst)
				n.cMemoMisses.Inc()
			}
			continue
		}
		s := &solver{n: n, dst: dst, frag: map[string][]string{}, stack: map[string]bool{}}
		for _, name := range c.names {
			f, _ := s.visit(n.devices[name])
			out[name] = outcomeSet{canon: strings.Join(f, ","), frags: f}
		}
		n.cMemoHits.Add(s.hits)
		n.cMemoMisses.Add(s.misses)
	}
	return out
}

// solver computes outcome fragments for every device toward one destination
// with per-device memoization. A device's fragment set is cached only when
// its exploration saw no back edge ("clean"): such a set is the closure of
// an acyclic region, so no future entry path can intersect it and the set
// is context-free. Loop fragments are labeled with the first revisited
// device, which depends on the entry point, so loopy regions are recomputed
// per source — exactly matching the sequential walk's semantics.
type solver struct {
	n            *Network
	dst          netip.Addr
	frag         map[string][]string // device -> cached clean fragments
	stack        map[string]bool     // devices on the current DFS path
	hits, misses uint64
}

// visit returns the fragment set reachable from d and whether the
// exploration was clean (saw no back edge anywhere in the subtree).
func (s *solver) visit(d *device) ([]string, bool) {
	if f, ok := s.frag[d.name]; ok {
		s.hits++
		return f, true
	}
	if s.stack[d.name] {
		return []string{Loop.String() + "@" + d.name}, false
	}
	s.misses++
	_, entry, ok := d.fib.Lookup(s.dst)
	if !ok {
		f := []string{NoRoute.String() + "@" + d.name}
		s.frag[d.name] = f
		return f, true
	}
	s.stack[d.name] = true
	clean := true
	var acc []string
	for _, h := range entry.hops {
		switch {
		case h.Receive:
			acc = append(acc, Delivered.String()+"@"+d.name)
		case h.Drop:
			acc = append(acc, Dropped.String()+"@"+d.name)
		default:
			peer, wired := s.n.peerOf[topology.Endpoint{Node: d.name, Interface: h.Interface}]
			if !wired {
				acc = append(acc, ExitsNetwork.String()+"@"+d.name)
				continue
			}
			next, ok := s.n.devices[peer.Node]
			if !ok {
				acc = append(acc, ExitsNetwork.String()+"@"+d.name)
				continue
			}
			sub, subClean := s.visit(next)
			acc = append(acc, sub...)
			clean = clean && subClean
		}
	}
	delete(s.stack, d.name)
	acc = sortDedupe(acc)
	if clean {
		s.frag[d.name] = acc
	}
	return acc, clean
}

// solveOutcomes runs the memoized solver from every device toward dst.
func (n *Network) solveOutcomes(dst netip.Addr) dstOutcomes {
	s := &solver{n: n, dst: dst, frag: map[string][]string{}, stack: map[string]bool{}}
	roots := make(map[string][]string, len(n.devices))
	for name, d := range n.devices {
		f, _ := s.visit(d)
		roots[name] = f
	}
	out := make(dstOutcomes, len(roots))
	for name, frags := range roots {
		out[name] = outcomeSet{canon: strings.Join(frags, ","), frags: frags}
	}
	n.cMemoHits.Add(s.hits)
	n.cMemoMisses.Add(s.misses)
	return out
}

func sortDedupe(in []string) []string {
	if len(in) < 2 {
		return in
	}
	sort.Strings(in)
	out := in[:1]
	for _, v := range in[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// unionAddrs merges sorted address slices into one sorted, deduplicated
// slice.
func unionAddrs(a, b []netip.Addr) []netip.Addr {
	out := make([]netip.Addr, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

func unionStrings(a, b []string) []string {
	out := append(append([]string{}, a...), b...)
	return sortDedupe(out)
}

// Differential runs the differential-reachability query over the pool:
// flows are sharded by destination class, each class evaluates every source
// against both snapshots' memoized outcomes, and the merged result is
// sorted by (source, class) — the exact order the sequential implementation
// produced.
func (q Queries) Differential(before, after *Network) []Diff {
	defer before.observeWall("differential", time.Now())
	before.cQueries.Inc()
	classes := unionAddrs(before.EquivalenceClasses(), after.EquivalenceClasses())
	sources := unionStrings(before.Devices(), after.Devices())

	results := make([][]Diff, len(classes))
	q.run(len(classes), func(i int) {
		rep := classes[i]
		before.gInflight.Add(int64(len(sources)))
		defer before.gInflight.Add(-int64(len(sources)))
		ob := before.outcomesFor(rep)
		oa := after.outcomesFor(rep)
		// Sources absent from both outcome maps share the NoRoute
		// self-fallback on both sides and can never differ, so the scan
		// covers only the solved devices — at 10k region-sharded routers
		// that is the relevant region, not the whole fleet. The final sort
		// below restores the sequential (source, class) output order.
		var ds []Diff
		for src, o := range ob {
			if b := oa.outcome(src); o.canon != b {
				ds = append(ds, Diff{Src: src, Dst: rep, Before: o.canon, After: b})
			}
		}
		for src, o := range oa {
			if _, ok := ob[src]; ok {
				continue
			}
			if a := ob.outcome(src); a != o.canon {
				ds = append(ds, Diff{Src: src, Dst: rep, Before: a, After: o.canon})
			}
		}
		before.cFlows.Add(uint64(len(sources)))
		results[i] = ds
	})

	var out []Diff
	for _, ds := range results {
		out = append(out, ds...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst.Less(out[j].Dst)
	})
	return out
}

// AllPairs computes the reachability matrix over the pool, sharded by
// destination address.
func (q Queries) AllPairs(n *Network) ReachMatrix {
	defer n.observeWall("allpairs", time.Now())
	n.cQueries.Inc()
	m := ReachMatrix{
		Sources: n.Devices(),
		Dsts:    n.OwnedAddrs(),
		Reach:   map[string]map[netip.Addr]bool{},
	}
	cols := make([][]bool, len(m.Dsts))
	q.run(len(m.Dsts), func(i int) {
		n.gInflight.Add(int64(len(m.Sources)))
		defer n.gInflight.Add(-int64(len(m.Sources)))
		oc := n.outcomesFor(m.Dsts[i])
		col := make([]bool, len(m.Sources))
		for j, src := range m.Sources {
			if o, ok := oc[src]; ok {
				col[j] = o.has("Delivered@")
			}
		}
		cols[i] = col
		n.cFlows.Add(uint64(len(m.Sources)))
	})
	for j, src := range m.Sources {
		row := make(map[netip.Addr]bool, len(m.Dsts))
		for i, dst := range m.Dsts {
			row[dst] = cols[i][j]
		}
		m.Reach[src] = row
	}
	return m
}

// DetectLoops checks every (source, class) flow over the pool. Classes whose
// memoized outcome carries a Loop fragment are re-traced with the exact
// path walk, so the reported paths (and truncation behavior) match the
// sequential implementation branch for branch.
func (q Queries) DetectLoops(n *Network) []LoopReport {
	defer n.observeWall("loops", time.Now())
	n.cQueries.Inc()
	classes := n.EquivalenceClasses()
	sources := n.Devices()
	results := make([][]LoopReport, len(classes))
	q.run(len(classes), func(i int) {
		rep := classes[i]
		n.gInflight.Add(int64(len(sources)))
		defer n.gInflight.Add(-int64(len(sources)))
		oc := n.outcomesFor(rep)
		n.cFlows.Add(uint64(len(sources)))
		var reports []LoopReport
		for _, src := range sources {
			if o, ok := oc[src]; !ok || !o.has("Loop@") {
				continue
			}
			t := n.Trace(src, rep)
			for _, p := range t.Paths {
				if p.Disposition == Loop {
					reports = append(reports, LoopReport{Dst: rep, Src: src, Path: p})
					break
				}
			}
		}
		results[i] = reports
	})
	var out []LoopReport
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// DetectBlackHoles checks every (source, class) flow over the pool,
// re-tracing flagged flows so the reported disposition is the first one the
// sequential walk would have encountered.
func (q Queries) DetectBlackHoles(n *Network) []BlackHole {
	defer n.observeWall("blackholes", time.Now())
	n.cQueries.Inc()
	classes := n.EquivalenceClasses()
	sources := n.Devices()
	results := make([][]BlackHole, len(classes))
	q.run(len(classes), func(i int) {
		rep := classes[i]
		n.gInflight.Add(int64(len(sources)))
		defer n.gInflight.Add(-int64(len(sources)))
		oc := n.outcomesFor(rep)
		n.cFlows.Add(uint64(len(sources)))
		var holes []BlackHole
		for _, src := range sources {
			o, ok := oc[src]
			if !ok {
				// src's component has no FIB coverage for this class: the
				// sequential walk yields NoRoute@src without tracing.
				holes = append(holes, BlackHole{Dst: rep, Src: src, Disposition: NoRoute})
				continue
			}
			if !o.has("Dropped@") && !o.has("NoRoute@") {
				continue
			}
			t := n.Trace(src, rep)
			for _, p := range t.Paths {
				if p.Disposition == Dropped || p.Disposition == NoRoute {
					holes = append(holes, BlackHole{Dst: rep, Src: src, Disposition: p.Disposition})
					break
				}
			}
		}
		results[i] = holes
	})
	var out []BlackHole
	for _, h := range results {
		out = append(out, h...)
	}
	return out
}
