package verify

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"mfv/internal/aft"
	"mfv/internal/topology"
)

// buildRandom builds a random ring topology with random (possibly
// nonsensical) AFTs — routes may point anywhere, including into loops and
// unwired ports. The verifier must stay total and consistent over all of
// them.
func buildRandom(r *rand.Rand, nodes, prefixes int) (*topology.Topology, *Network, error) {
	topo := topology.Ring(nodes, topology.VendorEOS)
	afts := map[string]*aft.AFT{}
	for i := 1; i <= nodes; i++ {
		name := fmt.Sprintf("r%d", i)
		b := aft.NewBuilder(name)
		for p := 0; p < prefixes; p++ {
			var a [4]byte
			r.Read(a[:])
			prefix := netip.PrefixFrom(netip.AddrFrom4(a), 1+r.Intn(32)).Masked()
			var idx uint64
			switch r.Intn(4) {
			case 0:
				idx = b.AddNextHop(aft.NextHop{Receive: true})
			case 1:
				idx = b.AddNextHop(aft.NextHop{Drop: true})
			case 2:
				idx = b.AddNextHop(aft.NextHop{Interface: "Ethernet1", IPAddress: "10.0.0.1"})
			default:
				idx = b.AddNextHop(aft.NextHop{Interface: "Ethernet2", IPAddress: "10.0.0.2"})
			}
			b.AddIPv4(prefix, b.AddGroup([]uint64{idx}), "test", 0)
		}
		afts[name] = b.Build()
	}
	net, err := NewNetwork(topo, afts)
	return topo, net, err
}

// Property: every trace from every device terminates with a disposition,
// whatever the (random, possibly looping) forwarding state.
func TestQuickTracesAlwaysTerminate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, net, err := buildRandom(r, 3+r.Intn(4), 1+r.Intn(20))
		if err != nil {
			return false
		}
		for _, src := range net.Devices() {
			for i := 0; i < 20; i++ {
				var a [4]byte
				r.Read(a[:])
				tr := net.Trace(src, netip.AddrFrom4(a))
				if len(tr.Paths) == 0 {
					return false
				}
				for _, p := range tr.Paths {
					if len(p.Hops) > maxPathHops+1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(71))}); err != nil {
		t.Error(err)
	}
}

// Property: equivalence classes are uniform — every member of a class gets
// the same outcome as its representative, from every device, on random
// networks.
func TestQuickECUniformityRandomNetworks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, net, err := buildRandom(r, 3, 1+r.Intn(12))
		if err != nil {
			return false
		}
		classes := net.EquivalenceClasses()
		for i, rep := range classes {
			var end uint32 = 0xffffffff
			if i+1 < len(classes) {
				end = addrU32(classes[i+1]) - 1
			}
			start := addrU32(rep)
			// Probe two random members of the class.
			for k := 0; k < 2; k++ {
				member := start
				if end > start {
					member = start + uint32(r.Int63n(int64(end-start)+1))
				}
				for _, src := range net.Devices() {
					if net.Trace(src, rep).Outcome() != net.Trace(src, u32Addr(member)).Outcome() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

// Property: Differential(x, x) is always empty.
func TestQuickDifferentialReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, net, err := buildRandom(r, 3+r.Intn(3), 1+r.Intn(15))
		if err != nil {
			return false
		}
		return len(Differential(net, net)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Error(err)
	}
}

// Property: Differential output is byte-identical for workers = 1, 2, 8 on
// random networks — parallelism must never change what a query returns.
func TestQuickDifferentialDeterministicAcrossWorkers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, before, err := buildRandom(r, 3+r.Intn(4), 1+r.Intn(15))
		if err != nil {
			return false
		}
		_, after, err := buildRandom(r, 3+r.Intn(4), 1+r.Intn(15))
		if err != nil {
			return false
		}
		ref := fmt.Sprintf("%+v", Queries{Workers: 1}.Differential(before, after))
		for _, w := range []int{2, 8} {
			if fmt.Sprintf("%+v", Queries{Workers: w}.Differential(before, after)) != ref {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Error(err)
	}
}

// Property: the memoized per-device solver agrees with the unmemoized Trace
// walk for every (source, class-representative) flow on random networks.
func TestQuickMemoizationMatchesTrace(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, net, err := buildRandom(r, 3+r.Intn(4), 1+r.Intn(15))
		if err != nil {
			return false
		}
		for _, rep := range net.EquivalenceClasses() {
			oc := net.outcomesFor(rep)
			for _, src := range net.Devices() {
				if oc.outcome(src) != net.Trace(src, rep).Outcome() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(53))}); err != nil {
		t.Error(err)
	}
}

// Property: utilization conservation — for a single demand, load on any
// link never exceeds the offered rate, and delivered + lost == 1.
func TestQuickUtilizationConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, net, err := buildRandom(r, 4, 1+r.Intn(10))
		if err != nil {
			return false
		}
		var a [4]byte
		r.Read(a[:])
		rep := net.Utilization([]Demand{{Src: "r1", Dst: netip.AddrFrom4(a), Rate: 100}})
		for _, l := range rep.Links {
			if l.Load > 100+1e-6 {
				return false
			}
		}
		for _, u := range rep.Undeliverable {
			if u.LostFraction < -1e-9 || u.LostFraction > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Error(err)
	}
}
