package verify

import (
	"math"
	"testing"

	"mfv/internal/aft"
	"mfv/internal/topology"
)

func TestUtilizationSinglePath(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	rep := n.Utilization([]Demand{{Src: "r1", Dst: addr("9.9.9.9"), Rate: 10}})
	if len(rep.Undeliverable) != 0 {
		t.Fatalf("undeliverable = %+v", rep.Undeliverable)
	}
	// Both hops of the r1->r2->r3 path must carry 10 units.
	if len(rep.Links) != 2 {
		t.Fatalf("links = %+v", rep.Links)
	}
	for _, l := range rep.Links {
		if l.Load != 10 {
			t.Errorf("load = %v, want 10", l.Load)
		}
	}
	if rep.MaxLoad() != 10 {
		t.Errorf("MaxLoad = %v", rep.MaxLoad())
	}
}

func TestUtilizationECMPSplit(t *testing.T) {
	topo := &topology.Topology{
		Name: "ecmp",
		Nodes: []topology.Node{
			{Name: "r1", Vendor: topology.VendorEOS},
			{Name: "r2", Vendor: topology.VendorEOS},
			{Name: "r3", Vendor: topology.VendorEOS},
		},
		Links: []topology.Link{
			{A: topology.Endpoint{Node: "r1", Interface: "Ethernet1"}, Z: topology.Endpoint{Node: "r2", Interface: "Ethernet1"}},
			{A: topology.Endpoint{Node: "r1", Interface: "Ethernet2"}, Z: topology.Endpoint{Node: "r3", Interface: "Ethernet1"}},
		},
	}
	afts := map[string]*aft.AFT{
		"r1": buildAFT(aftSpec{device: "r1", routes: map[string]string{"9.0.0.0/8": "Ethernet1|Ethernet2"}}),
		"r2": buildAFT(aftSpec{device: "r2", routes: map[string]string{"9.0.0.0/8": "recv"}}),
		"r3": buildAFT(aftSpec{device: "r3", routes: map[string]string{"9.0.0.0/8": "recv"}}),
	}
	n := mustNet(t, topo, afts)
	rep := n.Utilization([]Demand{{Src: "r1", Dst: addr("9.1.1.1"), Rate: 8}})
	if len(rep.Links) != 2 {
		t.Fatalf("links = %+v", rep.Links)
	}
	for _, l := range rep.Links {
		if math.Abs(l.Load-4) > 1e-9 {
			t.Errorf("ECMP split load = %v, want 4", l.Load)
		}
	}
}

func TestUtilizationDropAndNoRoute(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	rep := n.Utilization([]Demand{
		{Src: "r1", Dst: addr("9.5.0.1"), Rate: 5}, // dropped at r3
		{Src: "r1", Dst: addr("8.0.0.1"), Rate: 3}, // no route at r1
	})
	if len(rep.Undeliverable) != 2 {
		t.Fatalf("undeliverable = %+v", rep.Undeliverable)
	}
	for _, u := range rep.Undeliverable {
		if math.Abs(u.LostFraction-1) > 1e-9 {
			t.Errorf("lost fraction = %v, want 1", u.LostFraction)
		}
	}
	// The dropped demand still loaded the links on its way to r3.
	if rep.MaxLoad() != 5 {
		t.Errorf("MaxLoad = %v, want 5 (traffic burns links before the drop)", rep.MaxLoad())
	}
}

func TestUtilizationLoopCountsAsLost(t *testing.T) {
	topo := topology.Line(2, topology.VendorEOS)
	afts := map[string]*aft.AFT{
		"r1": buildAFT(aftSpec{device: "r1", routes: map[string]string{"9.0.0.0/8": "Ethernet1"}}),
		"r2": buildAFT(aftSpec{device: "r2", routes: map[string]string{"9.0.0.0/8": "Ethernet1"}}),
	}
	n := mustNet(t, topo, afts)
	rep := n.Utilization([]Demand{{Src: "r1", Dst: addr("9.0.0.1"), Rate: 7}})
	if len(rep.Undeliverable) != 1 || rep.Undeliverable[0].LostFraction < 0.99 {
		t.Errorf("loop not reported lost: %+v", rep.Undeliverable)
	}
}

func TestUtilizationAggregatesAcrossDemands(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	rep := n.Utilization([]Demand{
		{Src: "r1", Dst: addr("9.9.9.9"), Rate: 10},
		{Src: "r2", Dst: addr("9.9.9.9"), Rate: 5},
	})
	// r2->r3 carries both demands (15); r1->r2 only the first (10).
	var r2r3, r1r2 float64
	for _, l := range rep.Links {
		switch l.From.Node {
		case "r2":
			r2r3 = l.Load
		case "r1":
			r1r2 = l.Load
		}
	}
	if r2r3 != 15 || r1r2 != 10 {
		t.Errorf("loads r1->r2=%v r2->r3=%v, want 10/15", r1r2, r2r3)
	}
	over := rep.OverCapacity(func(topology.Endpoint) float64 { return 12 })
	if len(over) != 1 || over[0].From.Node != "r2" {
		t.Errorf("OverCapacity = %+v", over)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestUtilizationExitsNetworkDelivers(t *testing.T) {
	topo := topology.Line(2, topology.VendorEOS)
	afts := map[string]*aft.AFT{
		"r1": buildAFT(aftSpec{device: "r1", routes: map[string]string{"0.0.0.0/0": "Ethernet9"}}),
		"r2": buildAFT(aftSpec{device: "r2", routes: map[string]string{}}),
	}
	n := mustNet(t, topo, afts)
	rep := n.Utilization([]Demand{{Src: "r1", Dst: addr("203.0.113.9"), Rate: 4}})
	if len(rep.Undeliverable) != 0 {
		t.Errorf("edge exit counted as loss: %+v", rep.Undeliverable)
	}
}
