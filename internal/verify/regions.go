package verify

import (
	"sort"
)

// This file gives the batch engine its region awareness. A topology built
// from independent regions (cmd/topogen -shape regions) has a device graph
// that splits into connected components, and a forwarding walk can never
// cross a component boundary — packets only move over links. Solving
// per-destination outcomes component-by-component therefore changes nothing
// about the answers, but it changes everything about the cost model: the
// maxPathHops solver cutoff applies per component instead of to the whole
// network, and a destination class touches only the components whose FIBs
// cover it. Devices in skipped components fall back to the exact NoRoute
// self-outcome the sequential walk would have produced (no FIB coverage
// means no matching entry).

// component is one connected piece of the device graph.
type component struct {
	// names are the member devices, sorted.
	names []string
	// covStart/covEnd are the merged [start, end) u64 address intervals
	// (end may be 1<<32) covered by any member FIB prefix, sorted by start.
	covStart []uint64
	covEnd   []uint64
}

// covers reports whether addr (as u32) falls inside any member FIB prefix.
func (c *component) covers(addr uint32) bool {
	a := uint64(addr)
	// First interval starting after a; the candidate is its predecessor.
	i := sort.Search(len(c.covStart), func(i int) bool { return c.covStart[i] > a })
	return i > 0 && a < c.covEnd[i-1]
}

// components returns the cached connected components of the device graph,
// in deterministic (smallest member name) order.
func (n *Network) components() []*component {
	n.compOnce.Do(func() { n.comps = n.computeComponents() })
	return n.comps
}

func (n *Network) computeComponents() []*component {
	// Union-find over the devices with forwarding state, joined by topology
	// links whose endpoints both carry state.
	parent := make(map[string]string, len(n.devices))
	for name := range n.devices {
		parent[name] = name
	}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, l := range n.topo.Links {
		if _, ok := n.devices[l.A.Node]; !ok {
			continue
		}
		if _, ok := n.devices[l.Z.Node]; !ok {
			continue
		}
		union(l.A.Node, l.Z.Node)
	}
	groups := map[string][]string{}
	for name := range n.devices {
		r := find(name)
		groups[r] = append(groups[r], name)
	}
	comps := make([]*component, 0, len(groups))
	for _, names := range groups {
		sort.Strings(names)
		comps = append(comps, &component{names: names})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].names[0] < comps[j].names[0] })
	for _, c := range comps {
		c.buildCoverage(n)
	}
	return comps
}

// buildCoverage merges every member prefix's [start, end) interval.
func (c *component) buildCoverage(n *Network) {
	type iv struct{ start, end uint64 }
	var ivs []iv
	for _, name := range c.names {
		d := n.devices[name]
		for _, p := range d.fib.Prefixes() {
			start := uint64(addrU32(p.Addr()))
			ivs = append(ivs, iv{start, start + 1<<(32-p.Bits())})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	for _, v := range ivs {
		if k := len(c.covEnd); k > 0 && v.start <= c.covEnd[k-1] {
			if v.end > c.covEnd[k-1] {
				c.covEnd[k-1] = v.end
			}
			continue
		}
		c.covStart = append(c.covStart, v.start)
		c.covEnd = append(c.covEnd, v.end)
	}
}
