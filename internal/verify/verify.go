// Package verify is the dataplane verification engine — the component that
// plays Batfish's verification role in the pipeline. It consumes only the
// extracted AFTs plus the physical topology (to map egress interfaces to
// neighbors), partitions the IPv4 destination space into packet equivalence
// classes, and answers exhaustive queries: traceroute, reachability,
// all-pairs matrices, loop/black-hole detection, and the differential
// reachability query the paper's experiments are built on.
package verify

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"mfv/internal/aft"
	"mfv/internal/intern"
	"mfv/internal/obs"
	"mfv/internal/routing"
	"mfv/internal/topology"
)

// Disposition classifies the fate of a packet.
type Disposition uint8

// Dispositions.
const (
	// Delivered: a device owned the destination and received it.
	Delivered Disposition = iota
	// ExitsNetwork: forwarded out an interface with no emulated neighbor
	// (toward an external peer).
	ExitsNetwork
	// Dropped: matched an explicit discard route.
	Dropped
	// NoRoute: no matching FIB entry (implicit drop).
	NoRoute
	// Loop: the packet revisited a device.
	Loop
)

// String renders the disposition.
func (d Disposition) String() string {
	switch d {
	case Delivered:
		return "Delivered"
	case ExitsNetwork:
		return "ExitsNetwork"
	case Dropped:
		return "Dropped"
	case NoRoute:
		return "NoRoute"
	case Loop:
		return "Loop"
	default:
		return fmt.Sprintf("Disposition(%d)", uint8(d))
	}
}

// Hop is one step of a forwarding path.
type Hop struct {
	Device string
	// Matched is the FIB prefix that matched (empty at a NoRoute hop).
	Matched string
	// Egress is the interface the packet left on (empty on terminal hops).
	Egress string
}

// Path is one branch of a (possibly ECMP-split) trace.
type Path struct {
	Hops        []Hop
	Disposition Disposition
	// Final is the device where the path ended.
	Final string
}

// String renders "r1[10.0.0.0/8→Ethernet1] r2[…] : Delivered@r2".
func (p Path) String() string {
	var b strings.Builder
	for i, h := range p.Hops {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s[%s→%s]", h.Device, h.Matched, h.Egress)
	}
	fmt.Fprintf(&b, " : %s@%s", p.Disposition, p.Final)
	return b.String()
}

// Trace is the full result for one (source, destination) query.
type Trace struct {
	Src   string
	Dst   netip.Addr
	Paths []Path
	// Truncated reports that the ECMP branch enumeration hit maxBranches
	// and further paths were discarded: the Paths list (and any Outcome
	// derived from it) may be incomplete. Capped explosions also count into
	// the verify_trace_truncated_total metric.
	Truncated bool
}

// Delivered reports whether any branch delivers.
func (t Trace) Delivered() bool {
	for _, p := range t.Paths {
		if p.Disposition == Delivered {
			return true
		}
	}
	return false
}

// Outcome canonicalizes a trace for differential comparison: the sorted set
// of (disposition, final device) pairs across branches.
func (t Trace) Outcome() string {
	set := map[string]bool{}
	for _, p := range t.Paths {
		set[p.Disposition.String()+"@"+p.Final] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// OutcomeDelivered reports whether a canonical outcome string — the format
// produced by Trace.Outcome and carried in Diff.Before/Diff.After — contains
// a Delivered fragment. Fragments are "Disposition@device" joined by commas;
// the disposition segment is matched exactly, so a device name (or a future
// disposition label) containing "Delivered" as a substring cannot
// misclassify the flow.
func OutcomeDelivered(outcome string) bool {
	for len(outcome) > 0 {
		frag := outcome
		if i := strings.IndexByte(outcome, ','); i >= 0 {
			frag, outcome = outcome[:i], outcome[i+1:]
		} else {
			outcome = ""
		}
		if disp, _, ok := strings.Cut(frag, "@"); ok && disp == Delivered.String() {
			return true
		}
	}
	return false
}

// maxPathHops bounds forwarding walks (TTL analogue).
const maxPathHops = 64

// maxBranches bounds ECMP path explosion per trace.
const maxBranches = 64

// device is the verification view of one router. Devices are immutable
// once built, so an incremental snapshot (UpdateFrom) can share them with
// its predecessor.
type device struct {
	name string
	fib  *routing.Trie[*fibEntry]
	// bounds are the equivalence-class interval cuts this device's prefixes
	// contribute (each prefix's start and end-successor as u32), cached at
	// build time so computeClasses only re-derives intervals for rebuilt
	// devices.
	bounds []uint32
	// owned are this device's locally delivered /32 addresses, cached for
	// the same reason.
	owned []netip.Addr
}

type fibEntry struct {
	prefix string
	hops   []aft.NextHop
}

// Network is an immutable verification snapshot: topology + AFTs indexed
// for fast longest-prefix matching.
type Network struct {
	topo    *topology.Topology
	devices map[string]*device
	// peerOf maps endpoint -> endpoint for egress resolution.
	peerOf map[topology.Endpoint]topology.Endpoint
	// owners maps every Receive-delivering /32 prefix address to its device
	// (used for all-pairs matrices).
	owners map[netip.Addr]string
	// known is the topology's node-name set; topology.Topology.Node is a
	// linear scan, which turns per-AFT validation quadratic at 10k devices.
	known map[string]bool

	// workers is the default batch-query pool size (0 = GOMAXPROCS); the
	// convenience query methods wrap it in a Queries value.
	workers int

	// Equivalence classes are a pure function of the immutable FIBs, so
	// they are computed once per snapshot and cached.
	ecOnce sync.Once
	ecs    []netip.Addr

	// Connected components of the device graph, cached like the classes.
	// Per-destination outcome solving runs component-by-component (see
	// batch.go): forwarding walks can never cross a component boundary, so
	// a region-sharded 10k-router network solves 500 20-device pieces
	// instead of tripping the global outcomesByTrace fallback.
	compOnce sync.Once
	comps    []*component

	// memo caches per-class outcome maps (see batch.go).
	memoMu sync.Mutex
	memo   map[netip.Addr]dstOutcomes

	// Observability handles (nil = no-op).
	cTraces     *obs.Counter
	cQueries    *obs.Counter
	cFlows      *obs.Counter
	cMemoHits   *obs.Counter
	cMemoMisses *obs.Counter
	cTruncated  *obs.Counter
	gECs        *obs.Gauge
	gInflight   *obs.Gauge
	wallHist    map[string]*obs.Histogram
}

// SetObserver enables verification metrics: verify_traces_total counts
// forwarding walks, ec_count records the equivalence-class population,
// verify_queries_total / verify_flows_total count batch queries and the
// (source, class) flows they evaluate, verify_inflight_flows gauges the
// flows currently being evaluated by the worker pool (live progress),
// verify_memo_{hits,misses}_total expose the memoization hit rate,
// verify_trace_truncated_total counts capped ECMP enumerations, and
// verify_wall_ns{query=...} histograms record per-query wall time.
func (n *Network) SetObserver(o *obs.Observer) {
	n.cTraces = o.Counter("verify_traces_total")
	n.cQueries = o.Counter("verify_queries_total")
	n.cFlows = o.Counter("verify_flows_total")
	n.cMemoHits = o.Counter("verify_memo_hits_total")
	n.cMemoMisses = o.Counter("verify_memo_misses_total")
	n.cTruncated = o.Counter("verify_trace_truncated_total")
	n.gECs = o.Gauge("ec_count")
	n.gInflight = o.Gauge("verify_inflight_flows")
	if o != nil {
		n.wallHist = map[string]*obs.Histogram{
			"differential": o.Histogram("verify_wall_ns", "query", "differential"),
			"allpairs":     o.Histogram("verify_wall_ns", "query", "allpairs"),
			"loops":        o.Histogram("verify_wall_ns", "query", "loops"),
			"blackholes":   o.Histogram("verify_wall_ns", "query", "blackholes"),
		}
	}
}

// SetWorkers fixes the worker-pool size used by this network's batch
// queries (AllPairs, DetectLoops, DetectBlackHoles, and Differential runs
// it participates in). Zero or negative selects GOMAXPROCS.
func (n *Network) SetWorkers(w int) {
	if w < 0 {
		w = 0
	}
	n.workers = w
}

// observeWall records one batch query's wall time (no-op when unobserved).
func (n *Network) observeWall(kind string, start time.Time) {
	if h := n.wallHist[kind]; h != nil {
		h.Observe(time.Since(start).Nanoseconds())
	}
}

// NewNetwork indexes AFTs for verification. Unknown devices in afts (not in
// the topology) are rejected.
func NewNetwork(topo *topology.Topology, afts map[string]*aft.AFT) (*Network, error) {
	n := &Network{
		topo:    topo,
		devices: map[string]*device{},
		peerOf:  map[topology.Endpoint]topology.Endpoint{},
		owners:  map[netip.Addr]string{},
	}
	for _, l := range topo.Links {
		n.peerOf[l.A] = l.Z
		n.peerOf[l.Z] = l.A
	}
	n.known = make(map[string]bool, len(topo.Nodes))
	for _, node := range topo.Nodes {
		n.known[node.Name] = true
	}
	for name, a := range afts {
		if !n.known[name] {
			return nil, fmt.Errorf("verify: AFT for unknown device %q", name)
		}
		d, err := buildDevice(name, a)
		if err != nil {
			return nil, err
		}
		n.devices[name] = d
	}
	n.rebuildOwners()
	return n, nil
}

// hopGroups interns resolved next-hop slices: across 10k devices the same
// ECMP group contents (same neighbor address, same egress interface shape)
// recur constantly, and fibEntry.hops is the verification engine's largest
// per-device allocation. The forwarding walks only read IPAddress, Interface,
// PushedLabels, Drop, and Receive, so the canonical slice's Index fields are
// irrelevant and groups are keyed on the semantic fields alone.
var hopGroups struct {
	sync.Mutex
	m map[string][]aft.NextHop
}

func internHops(hops []aft.NextHop) []aft.NextHop {
	if len(hops) == 0 {
		return nil
	}
	var b strings.Builder
	for _, h := range hops {
		b.WriteString(h.IPAddress)
		b.WriteByte('|')
		b.WriteString(h.Interface)
		for _, l := range h.PushedLabels {
			fmt.Fprintf(&b, "|%d", l)
		}
		if h.Drop {
			b.WriteString("|D")
		}
		if h.Receive {
			b.WriteString("|R")
		}
		b.WriteByte('\n')
	}
	key := b.String()
	hopGroups.Lock()
	defer hopGroups.Unlock()
	if c, ok := hopGroups.m[key]; ok {
		return c
	}
	if hopGroups.m == nil {
		hopGroups.m = map[string][]aft.NextHop{}
	}
	c := append([]aft.NextHop(nil), hops...)
	hopGroups.m[key] = c
	return c
}

// buildDevice validates and indexes one AFT, caching the device's
// equivalence-class interval cuts and owned addresses alongside the trie.
func buildDevice(name string, a *aft.AFT) (*device, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	d := &device{name: name, fib: routing.NewTrie[*fibEntry]()}
	// Bulk-allocate the entries: one backing array instead of a heap object
	// per route keeps the retained per-router footprint flat at 10k devices.
	entries := make([]fibEntry, 0, len(a.IPv4Entries))
	d.bounds = make([]uint32, 0, 2*len(a.IPv4Entries))
	for _, e := range a.IPv4Entries {
		// Validate above guarantees well-formed IPv4 prefixes; parse
		// defensively anyway so a hostile AFT can never panic the verifier.
		p, err := netip.ParsePrefix(e.Prefix)
		if err != nil {
			return nil, fmt.Errorf("verify: device %s: bad prefix %q", name, e.Prefix)
		}
		hops := internHops(a.GroupHops(e.NextHopGroup))
		entries = append(entries, fibEntry{prefix: intern.String(e.Prefix), hops: hops})
		d.fib.Insert(p, &entries[len(entries)-1])
		start := addrU32(p.Addr())
		d.bounds = append(d.bounds, start)
		size := uint64(1) << (32 - p.Bits())
		if end := uint64(start) + size; end <= 1<<32-1 {
			d.bounds = append(d.bounds, uint32(end))
		}
		if p.Bits() == 32 {
			for _, h := range hops {
				if h.Receive {
					d.owned = append(d.owned, p.Addr())
					break
				}
			}
		}
	}
	return d, nil
}

// rebuildOwners re-derives the owners map from the per-device caches, in
// sorted device order so ownership conflicts resolve deterministically.
func (n *Network) rebuildOwners() {
	names := make([]string, 0, len(n.devices))
	for name := range n.devices {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, a := range n.devices[name].owned {
			n.owners[a] = name
		}
	}
}

// UpdateFrom builds the verification snapshot that follows n after only the
// dirty devices changed. Clean devices — present in both snapshots and not
// named in dirty — reuse n's indexed tries and cached equivalence-class
// interval contributions, so the rebuild cost is proportional to the blast
// radius rather than the network size. afts is the device set of the new
// snapshot — normally the complete AFT set, but a growing partial set is
// also legal (the region-sharded pipeline streams each finished region's
// AFTs into the accumulating network; devices absent from afts simply have
// no forwarding state yet). dirty must name every device whose AFT differs
// from n's (a superset is fine; the chaos engine derives it from the
// emulator's FIB-generation stamps). Worker-pool size and observability
// handles carry over; the memoized per-class outcomes do not, since path
// outcomes are a global property.
func (n *Network) UpdateFrom(afts map[string]*aft.AFT, dirty []string) (*Network, error) {
	out := &Network{
		topo:    n.topo,
		devices: make(map[string]*device, len(afts)),
		peerOf:  n.peerOf,
		owners:  map[netip.Addr]string{},
		known:   n.known,
		workers: n.workers,

		cTraces:     n.cTraces,
		cQueries:    n.cQueries,
		cFlows:      n.cFlows,
		cMemoHits:   n.cMemoHits,
		cMemoMisses: n.cMemoMisses,
		cTruncated:  n.cTruncated,
		gECs:        n.gECs,
		gInflight:   n.gInflight,
		wallHist:    n.wallHist,
	}
	dirtySet := make(map[string]bool, len(dirty))
	for _, name := range dirty {
		dirtySet[name] = true
	}
	for name, a := range afts {
		if d, ok := n.devices[name]; ok && !dirtySet[name] {
			out.devices[name] = d
			continue
		}
		if !n.known[name] {
			return nil, fmt.Errorf("verify: AFT for unknown device %q", name)
		}
		d, err := buildDevice(name, a)
		if err != nil {
			return nil, err
		}
		out.devices[name] = d
	}
	out.rebuildOwners()
	return out, nil
}

// Devices returns the devices with forwarding state, sorted.
func (n *Network) Devices() []string {
	out := make([]string, 0, len(n.devices))
	for name := range n.devices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Owner returns the device owning addr (delivering it locally).
func (n *Network) Owner(addr netip.Addr) (string, bool) {
	d, ok := n.owners[addr]
	return d, ok
}

// OwnedAddrs returns every locally delivered address, sorted.
func (n *Network) OwnedAddrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(n.owners))
	for a := range n.owners {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Trace performs an exhaustive multipath forwarding walk from src toward
// dst.
func (n *Network) Trace(src string, dst netip.Addr) Trace {
	n.cTraces.Inc()
	t := Trace{Src: src, Dst: dst}
	d, ok := n.devices[src]
	if !ok {
		t.Paths = []Path{{Disposition: NoRoute, Final: src}}
		return t
	}
	visited := map[string]bool{}
	n.walk(d, dst, nil, visited, &t)
	if len(t.Paths) == 0 {
		t.Paths = []Path{{Disposition: NoRoute, Final: src}}
	}
	if t.Truncated {
		n.cTruncated.Inc()
	}
	return t
}

func (n *Network) walk(d *device, dst netip.Addr, hops []Hop, visited map[string]bool, t *Trace) {
	if len(t.Paths) >= maxBranches {
		t.Truncated = true
		return
	}
	if visited[d.name] || len(hops) >= maxPathHops {
		t.Paths = append(t.Paths, Path{Hops: hops, Disposition: Loop, Final: d.name})
		return
	}
	visited[d.name] = true
	defer delete(visited, d.name) // backtrack for sibling ECMP branches

	_, entry, ok := d.fib.Lookup(dst)
	if !ok {
		t.Paths = append(t.Paths, Path{Hops: hops, Disposition: NoRoute, Final: d.name})
		return
	}
	for _, h := range entry.hops {
		if len(t.Paths) >= maxBranches {
			t.Truncated = true
			return
		}
		step := Hop{Device: d.name, Matched: entry.prefix, Egress: h.Interface}
		branch := append(append([]Hop{}, hops...), step)
		switch {
		case h.Receive:
			step.Egress = ""
			branch[len(branch)-1] = step
			t.Paths = append(t.Paths, Path{Hops: branch, Disposition: Delivered, Final: d.name})
		case h.Drop:
			step.Egress = ""
			branch[len(branch)-1] = step
			t.Paths = append(t.Paths, Path{Hops: branch, Disposition: Dropped, Final: d.name})
		default:
			ep := topology.Endpoint{Node: d.name, Interface: h.Interface}
			peer, wired := n.peerOf[ep]
			if !wired {
				t.Paths = append(t.Paths, Path{Hops: branch, Disposition: ExitsNetwork, Final: d.name})
				continue
			}
			next, ok := n.devices[peer.Node]
			if !ok {
				t.Paths = append(t.Paths, Path{Hops: branch, Disposition: ExitsNetwork, Final: d.name})
				continue
			}
			n.walk(next, dst, branch, visited, t)
		}
	}
}

// Reachable reports whether any forwarding branch delivers dst from src.
func (n *Network) Reachable(src string, dst netip.Addr) bool {
	return n.Trace(src, dst).Delivered()
}

// EquivalenceClasses computes the atomic destination ranges induced by
// every FIB prefix in the network and returns one representative address
// per class. Two addresses in the same class are forwarded identically by
// every device, so checking representatives is exhaustive over the whole
// IPv4 space.
//
// The classes are a pure function of the immutable snapshot, so they are
// computed once — by merging the sorted prefix interval boundaries, not by
// rebuilding a boundary map — and cached on the Network. Callers must not
// mutate the returned slice.
func (n *Network) EquivalenceClasses() []netip.Addr {
	n.ecOnce.Do(func() { n.ecs = n.computeClasses() })
	n.gECs.Set(int64(len(n.ecs)))
	return n.ecs
}

// computeClasses merges every FIB prefix's [start, end) interval boundary
// into one sorted, deduplicated cut list: each prefix contributes its start
// and its end's successor, and every cut starts one equivalence class. The
// per-device boundary lists are cached at build time (see buildDevice), so
// an incremental snapshot pays only the merge here, not the trie walks.
func (n *Network) computeClasses() []netip.Addr {
	total := 1
	for _, d := range n.devices {
		total += len(d.bounds)
	}
	bounds := make([]uint32, 0, total)
	bounds = append(bounds, 0)
	for _, d := range n.devices {
		bounds = append(bounds, d.bounds...)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	out := make([]netip.Addr, 0, len(bounds))
	var last uint32
	for i, b := range bounds {
		if i > 0 && b == last {
			continue
		}
		out = append(out, u32Addr(b))
		last = b
	}
	return out
}

func addrU32(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

func u32Addr(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

// LoopReport is one detected forwarding loop.
type LoopReport struct {
	Dst  netip.Addr
	Src  string
	Path Path
}

// DetectLoops exhaustively checks every equivalence class from every device
// for forwarding loops, in parallel over the network's worker pool.
func (n *Network) DetectLoops() []LoopReport {
	return Queries{Workers: n.workers}.DetectLoops(n)
}

// BlackHole is a destination class dropped (explicitly or by missing route)
// at some device.
type BlackHole struct {
	Dst         netip.Addr
	Src         string
	Disposition Disposition
}

// DetectBlackHoles reports classes that neither deliver nor exit from some
// source, in parallel over the network's worker pool.
func (n *Network) DetectBlackHoles() []BlackHole {
	return Queries{Workers: n.workers}.DetectBlackHoles(n)
}

// ReachMatrix is the all-pairs reachability over owned (loopback and
// interface) addresses: Matrix[src][dstAddr] = delivered.
type ReachMatrix struct {
	Sources []string
	Dsts    []netip.Addr
	Reach   map[string]map[netip.Addr]bool
}

// AllPairs computes the full reachability matrix over owned addresses, in
// parallel over the network's worker pool.
func (n *Network) AllPairs() ReachMatrix {
	return Queries{Workers: n.workers}.AllPairs(n)
}

// FullMesh reports whether every device reaches every owned address.
func (m ReachMatrix) FullMesh() bool {
	for _, row := range m.Reach {
		for _, ok := range row {
			if !ok {
				return false
			}
		}
	}
	return true
}

// Diff is one differential-reachability finding: a (source, destination
// class) flow whose outcome differs between two snapshots.
type Diff struct {
	Src string
	// Dst is the representative address of the affected class.
	Dst netip.Addr
	// Before/After are canonicalized outcomes (Trace.Outcome).
	Before, After string
}

// String renders "r5 -> 2.2.2.1: Delivered@r2 => NoRoute@r5".
func (d Diff) String() string {
	return fmt.Sprintf("%s -> %v: %s => %s", d.Src, d.Dst, d.Before, d.After)
}

// Differential runs the differential reachability question between two
// snapshots: it evaluates every equivalence class of either network from
// every device and reports flows whose outcome changed. This is the query
// the paper uses to validate the pipeline (experiment E1) and to compare
// model-based against model-free dataplanes (experiment E3). It runs on the
// batch engine: flows are sharded across a worker pool (sized by whichever
// snapshot has SetWorkers configured) and per-device outcomes are memoized
// on each network, while the merged output stays byte-identical to the
// sequential evaluation order regardless of worker count.
func Differential(before, after *Network) []Diff {
	w := before.workers
	if w == 0 {
		w = after.workers
	}
	return Queries{Workers: w}.Differential(before, after)
}
