package verify

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"testing"
	"testing/quick"

	"mfv/internal/aft"
	"mfv/internal/topology"
)

// randomAFT builds one device's random AFT with the same distribution as
// buildRandom, so delta tests can regenerate individual devices.
func randomAFT(r *rand.Rand, name string, prefixes int) *aft.AFT {
	b := aft.NewBuilder(name)
	for p := 0; p < prefixes; p++ {
		var a [4]byte
		r.Read(a[:])
		prefix := netip.PrefixFrom(netip.AddrFrom4(a), 1+r.Intn(32)).Masked()
		var idx uint64
		switch r.Intn(4) {
		case 0:
			idx = b.AddNextHop(aft.NextHop{Receive: true})
		case 1:
			idx = b.AddNextHop(aft.NextHop{Drop: true})
		case 2:
			idx = b.AddNextHop(aft.NextHop{Interface: "Ethernet1", IPAddress: "10.0.0.1"})
		default:
			idx = b.AddNextHop(aft.NextHop{Interface: "Ethernet2", IPAddress: "10.0.0.2"})
		}
		b.AddIPv4(prefix, b.AddGroup([]uint64{idx}), "test", 0)
	}
	return b.Build()
}

// randomSnapshotPair builds a random before snapshot, then a mutated after
// snapshot in which a random non-empty subset of devices got fresh AFTs and
// every other device shares the before AFT pointer — the same sharing shape
// the incremental pipeline produces. Returns both AFT maps and the sorted
// dirty-device names.
func randomSnapshotPair(r *rand.Rand, nodes, prefixes int) (*topology.Topology, map[string]*aft.AFT, map[string]*aft.AFT, []string) {
	topo := topology.Ring(nodes, topology.VendorEOS)
	before := map[string]*aft.AFT{}
	for i := 1; i <= nodes; i++ {
		name := fmt.Sprintf("r%d", i)
		before[name] = randomAFT(r, name, prefixes)
	}
	after := map[string]*aft.AFT{}
	for name, a := range before {
		after[name] = a
	}
	var dirty []string
	for i := 1; i <= nodes; i++ {
		name := fmt.Sprintf("r%d", i)
		if r.Intn(3) == 0 {
			after[name] = randomAFT(r, name, 1+r.Intn(prefixes+1))
			dirty = append(dirty, name)
		}
	}
	if len(dirty) == 0 { // force at least one changed device
		name := fmt.Sprintf("r%d", 1+r.Intn(nodes))
		after[name] = randomAFT(r, name, 1+r.Intn(prefixes+1))
		dirty = append(dirty, name)
	}
	sort.Strings(dirty)
	return topo, before, after, dirty
}

// Property: DeltaDifferential is byte-identical to the full Differential on
// random snapshot pairs, for workers 1, 2, and 8, whether the after network
// is built from scratch or incrementally via UpdateFrom, and whether dirty
// is exact or a superset (all devices).
func TestQuickDeltaMatchesFullDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topo, beforeAFTs, afterAFTs, dirty := randomSnapshotPair(r, 3+r.Intn(4), 1+r.Intn(12))
		before, err := NewNetwork(topo, beforeAFTs)
		if err != nil {
			return false
		}
		afterFresh, err := NewNetwork(topo, afterAFTs)
		if err != nil {
			return false
		}
		afterIncr, err := before.UpdateFrom(afterAFTs, dirty)
		if err != nil {
			return false
		}
		ref := fmt.Sprintf("%+v", Queries{Workers: 1}.Differential(before, afterFresh))
		superset := before.Devices()
		for _, w := range []int{1, 2, 8} {
			q := Queries{Workers: w}
			for _, after := range []*Network{afterFresh, afterIncr} {
				if fmt.Sprintf("%+v", q.DeltaDifferential(before, after, dirty)) != ref {
					return false
				}
				if fmt.Sprintf("%+v", q.DeltaDifferential(before, after, superset)) != ref {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(83))}); err != nil {
		t.Error(err)
	}
}

// Property: a network rebuilt incrementally with UpdateFrom is
// indistinguishable from one built from scratch — same devices, same
// equivalence classes, same owners, and an empty differential between them.
func TestQuickUpdateFromEquivalentToRebuild(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topo, beforeAFTs, afterAFTs, dirty := randomSnapshotPair(r, 3+r.Intn(4), 1+r.Intn(12))
		before, err := NewNetwork(topo, beforeAFTs)
		if err != nil {
			return false
		}
		fresh, err := NewNetwork(topo, afterAFTs)
		if err != nil {
			return false
		}
		incr, err := before.UpdateFrom(afterAFTs, dirty)
		if err != nil {
			return false
		}
		if fmt.Sprintf("%v", incr.Devices()) != fmt.Sprintf("%v", fresh.Devices()) {
			return false
		}
		if fmt.Sprintf("%v", incr.EquivalenceClasses()) != fmt.Sprintf("%v", fresh.EquivalenceClasses()) {
			return false
		}
		if fmt.Sprintf("%v", incr.OwnedAddrs()) != fmt.Sprintf("%v", fresh.OwnedAddrs()) {
			return false
		}
		return len(Differential(fresh, incr)) == 0 && len(Differential(incr, fresh)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(89))}); err != nil {
		t.Error(err)
	}
}

// Property: DeltaDifferential(x, x, any dirty set) is always empty — dirty
// devices that did not actually change forward nothing to the diff.
func TestQuickDeltaReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, net, err := buildRandom(r, 3+r.Intn(3), 1+r.Intn(12))
		if err != nil {
			return false
		}
		return len(DeltaDifferential(net, net, net.Devices())) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(97))}); err != nil {
		t.Error(err)
	}
}

func TestUpdateFromRejectsUnknownDevice(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	topo, afts, _, _ := randomSnapshotPair(r, 3, 4)
	n, err := NewNetwork(topo, afts)
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string]*aft.AFT{}
	for name, a := range afts {
		bad[name] = a
	}
	bad["ghost"] = randomAFT(r, "ghost", 2)
	if _, err := n.UpdateFrom(bad, []string{"ghost"}); err == nil {
		t.Error("UpdateFrom accepted an AFT for a device outside the topology")
	}
}

// UpdateFrom must handle devices leaving (crashed, empty snapshot) and
// rejoining the snapshot, not only in-place changes.
func TestUpdateFromDeviceRemovalAndReturn(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	topo, afts, _, _ := randomSnapshotPair(r, 4, 5)
	n, err := NewNetwork(topo, afts)
	if err != nil {
		t.Fatal(err)
	}
	without := map[string]*aft.AFT{}
	for name, a := range afts {
		if name != "r2" {
			without[name] = a
		}
	}
	gone, err := n.UpdateFrom(without, []string{"r2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(gone.Devices()) != 3 {
		t.Fatalf("devices after removal = %v", gone.Devices())
	}
	back, err := gone.UpdateFrom(afts, []string{"r2"})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewNetwork(topo, afts)
	if err != nil {
		t.Fatal(err)
	}
	if len(Differential(fresh, back)) != 0 {
		t.Error("returning device differs from a scratch rebuild")
	}
}

func TestOutcomeDelivered(t *testing.T) {
	tests := []struct {
		outcome string
		want    bool
	}{
		{"Delivered@r1", true},
		{"Dropped@r2", false},
		{"NoRoute@r1", false},
		{"Dropped@r2,Delivered@r3", true},
		{"Delivered@r1,Dropped@r2", true},
		{"Loop@r1,NoRoute@r2", false},
		{"", false},
		{"Delivered", false},          // missing device part
		{"Undelivered@r1", false},     // disposition containing the word
		{"NoRoute@rDelivered", false}, // device name containing the word
		{"ExitsNetwork@Delivered", false},
	}
	for _, tc := range tests {
		if got := OutcomeDelivered(tc.outcome); got != tc.want {
			t.Errorf("OutcomeDelivered(%q) = %v, want %v", tc.outcome, got, tc.want)
		}
	}
}
