package verify

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"mfv/internal/aft"
	"mfv/internal/obs"
	"mfv/internal/topology"
)

// ecmpChain builds a chain of n routers where every consecutive pair is
// wired twice and every router ECMPs 9.0.0.0/8 across both parallel links;
// the last router delivers. Branch count doubles per hop: 2^(n-1) paths.
func ecmpChain(n int) (*topology.Topology, map[string]*aft.AFT) {
	topo := &topology.Topology{Name: "ecmp-chain"}
	for i := 1; i <= n; i++ {
		topo.Nodes = append(topo.Nodes, topology.Node{Name: fmt.Sprintf("r%d", i), Vendor: topology.VendorEOS})
	}
	for i := 1; i < n; i++ {
		a, z := fmt.Sprintf("r%d", i), fmt.Sprintf("r%d", i+1)
		topo.Links = append(topo.Links,
			topology.Link{A: topology.Endpoint{Node: a, Interface: "Ethernet1"}, Z: topology.Endpoint{Node: z, Interface: "Ethernet3"}},
			topology.Link{A: topology.Endpoint{Node: a, Interface: "Ethernet2"}, Z: topology.Endpoint{Node: z, Interface: "Ethernet4"}},
		)
	}
	afts := map[string]*aft.AFT{}
	for i := 1; i < n; i++ {
		name := fmt.Sprintf("r%d", i)
		afts[name] = buildAFT(aftSpec{device: name, routes: map[string]string{"9.0.0.0/8": "Ethernet1|Ethernet2"}})
	}
	last := fmt.Sprintf("r%d", n)
	afts[last] = buildAFT(aftSpec{device: last, routes: map[string]string{"9.0.0.0/8": "recv"}})
	return topo, afts
}

// TestTraceTruncatedSurfaced: a capped ECMP explosion must flag the trace
// and bump the truncation counter instead of silently dropping branches.
func TestTraceTruncatedSurfaced(t *testing.T) {
	topo, afts := ecmpChain(8) // 2^7 = 128 branches > maxBranches
	n := mustNet(t, topo, afts)
	o := obs.New()
	n.SetObserver(o)
	tr := n.Trace("r1", addr("9.1.1.1"))
	if !tr.Truncated {
		t.Fatalf("trace with %d paths not flagged truncated", len(tr.Paths))
	}
	if len(tr.Paths) != maxBranches {
		t.Errorf("paths = %d, want capped at %d", len(tr.Paths), maxBranches)
	}
	if v := o.Counter("verify_trace_truncated_total").Value(); v != 1 {
		t.Errorf("verify_trace_truncated_total = %d, want 1", v)
	}
	// A small trace stays unflagged.
	small := n.Trace("r7", addr("9.1.1.1"))
	if small.Truncated {
		t.Errorf("2-branch trace flagged truncated: %+v", small)
	}
	if v := o.Counter("verify_trace_truncated_total").Value(); v != 1 {
		t.Errorf("counter moved on untruncated trace: %d", v)
	}
}

// TestBatchDeterministicAcrossWorkers: every batch query must produce
// byte-identical output for workers = 1, 2, 8 on seeded random networks.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		_, before, err := buildRandom(r, 3+r.Intn(4), 1+r.Intn(16))
		if err != nil {
			t.Fatal(err)
		}
		_, after, err := buildRandom(r, 3+r.Intn(4), 1+r.Intn(16))
		if err != nil {
			t.Fatal(err)
		}
		type result struct {
			diffs  string
			loops  string
			holes  string
			matrix string
		}
		var want result
		for i, workers := range []int{1, 2, 8} {
			q := Queries{Workers: workers}
			got := result{
				diffs:  fmt.Sprintf("%+v", q.Differential(before, after)),
				loops:  fmt.Sprintf("%+v", q.DetectLoops(before)),
				holes:  fmt.Sprintf("%+v", q.DetectBlackHoles(before)),
				matrix: fmt.Sprintf("%+v", renderMatrix(q.AllPairs(before))),
			}
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d: workers=%d output differs from workers=1", seed, workers)
			}
		}
	}
}

// renderMatrix flattens a ReachMatrix into a deterministic string (map
// iteration order would otherwise leak into the comparison).
func renderMatrix(m ReachMatrix) string {
	s := ""
	for _, src := range m.Sources {
		for _, dst := range m.Dsts {
			s += fmt.Sprintf("%s>%v=%v;", src, dst, m.Reach[src][dst])
		}
	}
	return s
}

// TestBatchDifferentialMatchesSequentialOrder: the parallel merge must
// reproduce the sequential (source-major, class-minor) evaluation order.
func TestBatchDifferentialMatchesSequentialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	_, before, err := buildRandom(r, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	_, after, err := buildRandom(r, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference: the pre-engine implementation.
	var want []Diff
	for _, src := range unionStrings(before.Devices(), after.Devices()) {
		for _, rep := range unionAddrs(before.EquivalenceClasses(), after.EquivalenceClasses()) {
			a := before.Trace(src, rep).Outcome()
			b := after.Trace(src, rep).Outcome()
			if a != b {
				want = append(want, Diff{Src: src, Dst: rep, Before: a, After: b})
			}
		}
	}
	got := Queries{Workers: 4}.Differential(before, after)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel differential diverges from sequential reference:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestBatchAllPairsMatchesTraceSemantics: the memoized matrix must agree
// with per-flow Trace evaluation.
func TestBatchAllPairsMatchesTraceSemantics(t *testing.T) {
	topo, afts := lineNet()
	n := mustNet(t, topo, afts)
	m := Queries{Workers: 3}.AllPairs(n)
	for _, src := range m.Sources {
		for _, dst := range m.Dsts {
			if got, want := m.Reach[src][dst], n.Trace(src, dst).Delivered(); got != want {
				t.Errorf("Reach[%s][%v] = %v, Trace says %v", src, dst, got, want)
			}
		}
	}
}

// TestMemoMetrics: repeated differentials against the same snapshot must
// hit the per-class memo, and the query/flow counters must advance.
func TestMemoMetrics(t *testing.T) {
	topo, aftsA := lineNet()
	_, aftsB := lineNet()
	aftsB["r2"] = buildAFT(aftSpec{device: "r2", routes: map[string]string{"1.1.1.2/32": "recv"}})
	before := mustNet(t, topo, aftsA)
	after := mustNet(t, topo, aftsB)
	o := obs.New()
	before.SetObserver(o)
	after.SetObserver(o)

	first := Differential(before, after)
	misses := o.Counter("verify_memo_misses_total").Value()
	if misses == 0 {
		t.Fatal("first differential recorded no memo misses")
	}
	if v := o.Counter("verify_queries_total").Value(); v != 1 {
		t.Errorf("verify_queries_total = %d, want 1", v)
	}
	if v := o.Counter("verify_flows_total").Value(); v == 0 {
		t.Error("verify_flows_total = 0")
	}

	second := Differential(before, after)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoized rerun changed the result")
	}
	if v := o.Counter("verify_memo_misses_total").Value(); v != misses {
		t.Errorf("rerun recomputed outcomes: misses %d -> %d", misses, v)
	}
	if v := o.Counter("verify_memo_hits_total").Value(); v == 0 {
		t.Error("rerun recorded no memo hits")
	}
	if h := o.Histogram("verify_wall_ns", "query", "differential"); h.Count() != 2 {
		t.Errorf("differential wall histogram count = %d, want 2", h.Count())
	}
}

// TestQueriesWorkerDefaults: the zero value must select GOMAXPROCS and
// negative settings must not wedge the pool.
func TestQueriesWorkerDefaults(t *testing.T) {
	if got := (Queries{}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero-value workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Queries{Workers: -4}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative workers = %d, want GOMAXPROCS", got)
	}
	n := &Network{}
	n.SetWorkers(-1)
	if n.workers != 0 {
		t.Errorf("SetWorkers(-1) stored %d, want 0", n.workers)
	}
}

// TestSolverLoopLabelsAreEntryRelative: loop outcomes must name the first
// revisited device exactly as the sequential walk does, for every entry
// point into the cycle — the case naive SCC-level caching gets wrong.
func TestSolverLoopLabelsAreEntryRelative(t *testing.T) {
	// r1 -> r2 -> r1 two-node loop for 9/8; r3 feeds into it.
	topo := &topology.Topology{
		Name: "loop",
		Nodes: []topology.Node{
			{Name: "r1", Vendor: topology.VendorEOS},
			{Name: "r2", Vendor: topology.VendorEOS},
			{Name: "r3", Vendor: topology.VendorEOS},
		},
		Links: []topology.Link{
			{A: topology.Endpoint{Node: "r1", Interface: "Ethernet1"}, Z: topology.Endpoint{Node: "r2", Interface: "Ethernet1"}},
			{A: topology.Endpoint{Node: "r3", Interface: "Ethernet1"}, Z: topology.Endpoint{Node: "r1", Interface: "Ethernet2"}},
		},
	}
	afts := map[string]*aft.AFT{
		"r1": buildAFT(aftSpec{device: "r1", routes: map[string]string{"9.0.0.0/8": "Ethernet1"}}),
		"r2": buildAFT(aftSpec{device: "r2", routes: map[string]string{"9.0.0.0/8": "Ethernet1"}}),
		"r3": buildAFT(aftSpec{device: "r3", routes: map[string]string{"9.0.0.0/8": "Ethernet1"}}),
	}
	n := mustNet(t, topo, afts)
	dst := addr("9.1.1.1")
	oc := n.outcomesFor(dst)
	for _, src := range n.Devices() {
		if got, want := oc.outcome(src), n.Trace(src, dst).Outcome(); got != want {
			t.Errorf("memoized outcome from %s = %q, trace says %q", src, got, want)
		}
	}
}
