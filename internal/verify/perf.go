package verify

import (
	"fmt"
	"net/netip"
	"sort"

	"mfv/internal/topology"
)

// This file implements the performance-verification direction the paper
// sketches in §6: "one can explore workloads on the produced dataplane
// model, such as checking link utilizations for a range of possible demands
// with the given dataplane." Demands are routed over the extracted
// forwarding state (ECMP splits evenly, as hardware hashing approximates)
// and per-link load is accumulated and checked against capacities.

// Demand is one traffic intent.
type Demand struct {
	// Src is the ingress device.
	Src string
	// Dst is the destination address.
	Dst netip.Addr
	// Rate is the offered load in arbitrary bandwidth units.
	Rate float64
}

// LinkLoad is the accumulated load on one directed link.
type LinkLoad struct {
	From topology.Endpoint
	To   topology.Endpoint
	Load float64
}

// UtilizationReport is the result of routing a demand set.
type UtilizationReport struct {
	// Links holds directed per-link loads, sorted descending.
	Links []LinkLoad
	// Undeliverable lists demands that did not fully deliver (loops,
	// drops, no route), with the fraction lost.
	Undeliverable []UndeliveredDemand
}

// UndeliveredDemand is a demand with a non-delivering fraction.
type UndeliveredDemand struct {
	Demand       Demand
	LostFraction float64
}

// MaxLoad returns the highest directed-link load.
func (r *UtilizationReport) MaxLoad() float64 {
	if len(r.Links) == 0 {
		return 0
	}
	return r.Links[0].Load
}

// OverCapacity returns the links whose load exceeds capacity(link); the
// capacity function receives the egress endpoint.
func (r *UtilizationReport) OverCapacity(capacity func(topology.Endpoint) float64) []LinkLoad {
	var out []LinkLoad
	for _, l := range r.Links {
		if l.Load > capacity(l.From) {
			out = append(out, l)
		}
	}
	return out
}

// Utilization routes every demand over the network's forwarding state and
// accumulates per-link load. At each ECMP split the remaining rate divides
// evenly across branches.
func (n *Network) Utilization(demands []Demand) *UtilizationReport {
	loads := map[topology.Endpoint]float64{}
	report := &UtilizationReport{}
	for _, d := range demands {
		lost := n.routeDemand(d.Src, d.Dst, d.Rate, loads, map[string]bool{}, 0)
		if lost > 1e-9 {
			report.Undeliverable = append(report.Undeliverable, UndeliveredDemand{
				Demand: d, LostFraction: lost / d.Rate,
			})
		}
	}
	for ep, load := range loads {
		report.Links = append(report.Links, LinkLoad{From: ep, To: n.peerOf[ep], Load: load})
	}
	sort.Slice(report.Links, func(i, j int) bool {
		if report.Links[i].Load != report.Links[j].Load {
			return report.Links[i].Load > report.Links[j].Load
		}
		return report.Links[i].From.String() < report.Links[j].From.String()
	})
	return report
}

// routeDemand pushes rate units from device src toward dst, splitting at
// ECMP groups, and returns the amount that failed to deliver.
func (n *Network) routeDemand(src string, dst netip.Addr, rate float64, loads map[topology.Endpoint]float64, visited map[string]bool, depth int) float64 {
	if rate <= 0 {
		return 0
	}
	if depth > maxPathHops || visited[src] {
		return rate // loop: traffic circles until TTL death — counts as lost
	}
	d, ok := n.devices[src]
	if !ok {
		return rate
	}
	_, entry, found := d.fib.Lookup(dst)
	if !found {
		return rate
	}
	visited[src] = true
	defer delete(visited, src)

	share := rate / float64(len(entry.hops))
	lost := 0.0
	for _, h := range entry.hops {
		switch {
		case h.Receive:
			// Delivered here.
		case h.Drop:
			lost += share
		default:
			ep := topology.Endpoint{Node: src, Interface: h.Interface}
			peer, wired := n.peerOf[ep]
			if !wired {
				// Exits the network: counts as delivered to the edge.
				loads[ep] += share
				continue
			}
			loads[ep] += share
			lost += n.routeDemand(peer.Node, dst, share, loads, visited, depth+1)
		}
	}
	return lost
}

// String renders the top rows of the report.
func (r *UtilizationReport) String() string {
	s := ""
	for i, l := range r.Links {
		if i == 10 {
			s += fmt.Sprintf("… and %d more links\n", len(r.Links)-10)
			break
		}
		s += fmt.Sprintf("%-28s -> %-28s %8.2f\n", l.From, l.To, l.Load)
	}
	for _, u := range r.Undeliverable {
		s += fmt.Sprintf("UNDELIVERED %.0f%% of %s -> %v (%g units)\n",
			u.LostFraction*100, u.Demand.Src, u.Demand.Dst, u.Demand.Rate)
	}
	return s
}
