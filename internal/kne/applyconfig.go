package kne

import (
	"fmt"
	"time"

	"mfv/internal/kube"
	"mfv/internal/vrouter"
)

// warmApplyDelay models the control-plane restart on an already-running
// container when new configuration is pushed — single-digit seconds, versus
// the minutes-long cold boot. The paper highlights exactly this asymmetry:
// "applying new configuration to already-up routers converges much more
// quickly".
const warmApplyDelay = 5 * time.Second

// ApplyConfig replaces a running router's configuration in place: the new
// config is parsed (a bad config leaves the running router untouched), the
// old protocol state is torn down, and a fresh virtual router rejoins the
// network after a short warm-apply delay. The caller then re-runs
// RunUntilConverged to obtain the post-change dataplane.
func (e *Emulator) ApplyConfig(nodeName, config string) error {
	if !e.started {
		return fmt.Errorf("kne: ApplyConfig before Start")
	}
	old, ok := e.routers[nodeName]
	if !ok {
		return fmt.Errorf("kne: no router %q", nodeName)
	}
	node, _ := e.topo.Node(nodeName)
	if pod, ok := e.cluster.Pod(nodeName); !ok || pod.Phase != kube.PodRunning {
		return fmt.Errorf("kne: router %q is not Running", nodeName)
	}

	// Parse first so a rejected config cannot take the node down — the
	// same fail-safe a real config push provides.
	tmp := *node
	tmp.Config = config
	dev, err := parseConfig(&tmp)
	if err != nil {
		return fmt.Errorf("kne: new config for %s rejected: %w", nodeName, err)
	}
	fresh, err := vrouter.New(nodeName, dev, vrouter.ProfileFor(string(node.Vendor)), e.sim)
	if err != nil {
		return err
	}

	// Address bookkeeping: release the old router's addresses, claim the
	// new ones, rejecting clashes with other routers.
	for _, a := range old.LocalAddrs() {
		if e.addrOwner[a] == nodeName {
			delete(e.addrOwner, a)
		}
	}
	for _, a := range fresh.LocalAddrs() {
		if owner, dup := e.addrOwner[a]; dup && owner != nodeName {
			for _, oa := range old.LocalAddrs() {
				e.addrOwner[oa] = nodeName
			}
			return fmt.Errorf("kne: address %v already owned by %s", a, owner)
		}
	}
	for _, a := range fresh.LocalAddrs() {
		e.addrOwner[a] = nodeName
	}

	// Tear the old instance down; its neighbors see adjacency/session loss
	// immediately, as with a real control-plane restart.
	old.Stop()
	for _, l := range e.topo.NodeLinks(nodeName) {
		ep := l.A
		if ep.Node != nodeName {
			ep = l.Z
		}
		old.DetachLink(ep.Interface)
	}
	node.Config = config
	e.wireRouter(fresh)
	e.routers[nodeName] = fresh
	e.lastActivity = e.sim.Now()

	e.sim.After(warmApplyDelay, func() {
		fresh.Start()
		e.lastActivity = e.sim.Now()
		for _, l := range e.topo.NodeLinks(nodeName) {
			other := l.A
			if other.Node == nodeName {
				other = l.Z
			}
			peerPod, ok := e.cluster.Pod(other.Node)
			if !ok || peerPod.Phase != kube.PodRunning || e.linkDown[linkKey(l.A, l.Z)] {
				continue
			}
			e.attachLink(l.A, l.Z)
		}
	})
	return nil
}
