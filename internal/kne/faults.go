package kne

import (
	"fmt"
	"sort"

	"mfv/internal/kube"
	"mfv/internal/obs"
	"mfv/internal/vrouter"
)

// Fault-injection hooks for the chaos engine (internal/chaos). Each hook
// mutates the substrate the way the corresponding production failure would,
// then lets the protocol machinery react on the virtual clock: neighbors
// notice via hold/holding-timer expiry or the reachability prober, withdraw
// routes, and re-establish sessions when the fault clears.

// CrashRouter kills a router's pod. The router object is shut down (all
// timers canceled, dataplane gated off, AFT empty), the pod is deleted, and
// a replacement is scheduled — queued if the cluster is momentarily full.
// When the replacement reaches Running, podReady rebuilds the router from
// its config, exactly as Kubernetes restarts a container from its image.
func (e *Emulator) CrashRouter(name string) error {
	if !e.started {
		return fmt.Errorf("kne: CrashRouter before Start")
	}
	r, ok := e.routers[name]
	if !ok {
		return fmt.Errorf("kne: no router %q", name)
	}
	if e.routerDown[name] {
		return fmt.Errorf("kne: router %q already down", name)
	}
	e.routerDown[name] = true
	e.ready[name] = false
	r.Shutdown()
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvPodCrash, Device: name})
	}
	if _, exists := e.cluster.Pod(name); exists {
		if err := e.cluster.Delete(name); err != nil {
			return err
		}
	}
	spec := kube.AristaCEOSRequest(name, r.Profile.BootTime)
	if _, err := e.cluster.ScheduleOrQueue(spec); err != nil {
		return err
	}
	e.lastActivity = e.sim.Now()
	return nil
}

// QuarantineRouter contains a router whose control plane received hostile
// input (corrupted config, an undecodable AFT, a PDU that panicked a
// handler). The router is shut down exactly like a crashed pod — neighbors
// see the session drop via hold-timer expiry, its AFT goes empty, and the
// epoch is bumped so incremental verification treats the next snapshot as a
// new incarnation — but, unlike CrashRouter, the pod is NOT rescheduled:
// rebooting it would replay the same hostile input. The run completes with a
// degraded verdict naming the quarantined routers.
func (e *Emulator) QuarantineRouter(name, reason string) error {
	if !e.started {
		return fmt.Errorf("kne: QuarantineRouter before Start")
	}
	r, ok := e.routers[name]
	if !ok {
		return fmt.Errorf("kne: no router %q", name)
	}
	if _, done := e.quarantined[name]; done {
		return nil // already contained
	}
	e.quarantined[name] = reason
	e.ready[name] = false
	e.epoch[name]++
	// Quarantine (not Shutdown) so the router-level counter and trace event
	// fire exactly once; it is a no-op if the router already quarantined
	// itself via its panic guard and this call is only the orchestrator-side
	// bookkeeping.
	r.Quarantine(reason)
	e.lastActivity = e.sim.Now()
	return nil
}

// CorruptConfig models a corrupted configuration reaching a running router
// — flash corruption, a truncated push — past the parse-first fail-safe
// that ApplyConfig provides. The corrupted text becomes the node's stored
// config. If the vendor parser rejects it, the device's config subsystem
// would crash-loop on every reload, so the router is quarantined: shut
// down, never rescheduled, reported in the run's degraded verdict. Text
// that still parses is applied like any ordinary config change.
func (e *Emulator) CorruptConfig(name, config string) error {
	if !e.started {
		return fmt.Errorf("kne: CorruptConfig before Start")
	}
	node, ok := e.topo.Node(name)
	if !ok {
		return fmt.Errorf("kne: no node %q", name)
	}
	tmp := *node
	tmp.Config = config
	if _, err := parseConfig(&tmp); err != nil {
		node.Config = config
		return e.QuarantineRouter(name, err.Error())
	}
	return e.ApplyConfig(name, config)
}

// QuarantinedRouters returns the names of quarantined routers, sorted.
func (e *Emulator) QuarantinedRouters() []string {
	out := make([]string, 0, len(e.quarantined))
	for name := range e.quarantined {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// QuarantineReason returns why a router was quarantined.
func (e *Emulator) QuarantineReason(name string) (string, bool) {
	reason, ok := e.quarantined[name]
	return reason, ok
}

// FailKubeNode fails a worker machine: every resident router goes through
// the crash path above, then the cluster evicts the pods and reschedules
// them (or queues them as Pending) on the surviving nodes. It returns the
// evicted pod names in sorted order.
func (e *Emulator) FailKubeNode(nodeName string) ([]string, error) {
	if !e.started {
		return nil, fmt.Errorf("kne: FailKubeNode before Start")
	}
	evicted, err := e.cluster.FailNode(nodeName)
	if err != nil {
		return nil, err
	}
	// No virtual time passes between the eviction and this loop, so the
	// rescheduled replacements cannot boot before their routers are marked
	// down for rebuild.
	for _, name := range evicted {
		r, ok := e.routers[name]
		if !ok || e.routerDown[name] {
			continue
		}
		e.routerDown[name] = true
		e.ready[name] = false
		r.Shutdown()
		if e.obs.Enabled() {
			e.obs.Emit(obs.Event{Type: obs.EvPodCrash, Device: name, Detail: nodeName})
		}
	}
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvNodeDown, Device: nodeName, Value: int64(len(evicted))})
	}
	e.lastActivity = e.sim.Now()
	return evicted, nil
}

// RecoverKubeNode brings a failed worker back; queued Pending pods get a
// placement retry immediately.
func (e *Emulator) RecoverKubeNode(nodeName string) error {
	if err := e.cluster.RecoverNode(nodeName); err != nil {
		return err
	}
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvNodeUp, Device: nodeName})
	}
	e.lastActivity = e.sim.Now()
	return nil
}

// ResetBGP drops every BGP session on the named router (the emulated
// "clear ip bgp *"): both session endpoints go to Idle with withdrawal
// semantics, and the reachability prober re-establishes them on its next
// tick.
func (e *Emulator) ResetBGP(name string) error {
	r, ok := e.routers[name]
	if !ok {
		return fmt.Errorf("kne: no router %q", name)
	}
	if r.BGP == nil {
		return fmt.Errorf("kne: router %q runs no BGP", name)
	}
	e.tearDownSessions(r)
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvBGPReset, Device: name})
	}
	e.lastActivity = e.sim.Now()
	return nil
}

// tearDownSessions drops every BGP session on r. A TCP reset kills both
// ends, so the remote half — router or external injector — is torn down too;
// it must not linger Established against an Idle peer.
func (e *Emulator) tearDownSessions(r *vrouter.Router) {
	for _, p := range r.BGP.Peers() {
		cfg := p.Config()
		p.TransportDown()
		if owner, ok := e.addrOwner[cfg.Addr]; ok {
			if remote := e.routers[owner]; remote != nil && remote.BGP != nil {
				if rp, ok := remote.BGP.Peer(cfg.LocalAddr); ok {
					rp.TransportDown()
				}
			}
		} else if inj, ok := e.injectors[cfg.Addr]; ok {
			for _, ip := range inj.spk.Peers() {
				ip.TransportDown()
			}
		}
	}
}

// HoldBGP administratively holds down every BGP session on the named router
// (the emulated "neighbor shutdown" on all peers): both session ends drop to
// Idle with withdrawal semantics, and the reachability prober refuses to
// re-establish any session touching the router until ReleaseBGP. Where
// ResetBGP models a blip whose sessions return on the next probe tick,
// HoldBGP models a persistent BGP service outage — the sweep engine's
// per-router BGP failure element.
func (e *Emulator) HoldBGP(name string) error {
	r, ok := e.routers[name]
	if !ok {
		return fmt.Errorf("kne: no router %q", name)
	}
	if r.BGP == nil {
		return fmt.Errorf("kne: router %q runs no BGP", name)
	}
	if e.bgpHeld[name] {
		return fmt.Errorf("kne: BGP already held on %q", name)
	}
	e.bgpHeld[name] = true
	e.tearDownSessions(r)
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvBGPReset, Device: name, Detail: "hold"})
	}
	e.lastActivity = e.sim.Now()
	return nil
}

// ReleaseBGP lifts a HoldBGP; the prober re-establishes the sessions on its
// next tick.
func (e *Emulator) ReleaseBGP(name string) error {
	if !e.bgpHeld[name] {
		return fmt.Errorf("kne: BGP not held on %q", name)
	}
	delete(e.bgpHeld, name)
	e.lastActivity = e.sim.Now()
	return nil
}

// BGPHeld reports whether HoldBGP is active on the named router.
func (e *Emulator) BGPHeld(name string) bool { return e.bgpHeld[name] }

// FailRouter takes a router out of service indefinitely: the router object
// shuts down and its pod is deleted, but — unlike CrashRouter — no
// replacement is scheduled, so the outage persists until RestoreRouter. This
// is the sweep engine's node-failure element: the candidate loop needs the
// network to settle into the degraded state, not race a rebooting pod.
func (e *Emulator) FailRouter(name string) error {
	if !e.started {
		return fmt.Errorf("kne: FailRouter before Start")
	}
	r, ok := e.routers[name]
	if !ok {
		return fmt.Errorf("kne: no router %q", name)
	}
	if e.routerDown[name] {
		return fmt.Errorf("kne: router %q already down", name)
	}
	if _, contained := e.quarantined[name]; contained {
		return fmt.Errorf("kne: router %q is quarantined", name)
	}
	e.routerDown[name] = true
	e.ready[name] = false
	r.Shutdown()
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvPodCrash, Device: name, Detail: "fail"})
	}
	if _, exists := e.cluster.Pod(name); exists {
		if err := e.cluster.Delete(name); err != nil {
			return err
		}
	}
	e.lastActivity = e.sim.Now()
	return nil
}

// RestoreRouter schedules a replacement pod for a router taken down by
// FailRouter. When the pod reaches Running, podReady rebuilds the router
// from its config with a bumped epoch, exactly like a crashed pod's
// replacement; use AwaitRunning + Settle to wait out the reboot.
func (e *Emulator) RestoreRouter(name string) error {
	if !e.started {
		return fmt.Errorf("kne: RestoreRouter before Start")
	}
	r, ok := e.routers[name]
	if !ok {
		return fmt.Errorf("kne: no router %q", name)
	}
	if !e.routerDown[name] {
		return fmt.Errorf("kne: router %q is not down", name)
	}
	spec := kube.AristaCEOSRequest(name, r.Profile.BootTime)
	if _, err := e.cluster.ScheduleOrQueue(spec); err != nil {
		return err
	}
	e.lastActivity = e.sim.Now()
	return nil
}

// RouterDown reports whether the named router's pod is currently crashed
// and awaiting reboot.
func (e *Emulator) RouterDown(name string) bool { return e.routerDown[name] }
