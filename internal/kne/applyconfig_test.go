package kne

import (
	"strings"
	"testing"
	"time"
)

func TestApplyConfigWarmReconvergence(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(3)})
	if err != nil {
		t.Fatal(err)
	}
	coldConverged := converge(t, e)
	r1, _ := e.Router("r1")
	if _, ok := r1.RIB().Lookup(addr("1.1.1.3")); !ok {
		t.Fatal("not converged")
	}

	// Push a new config to r2 that raises the IS-IS metric on its r3-facing
	// interface.
	node, _ := e.topo.Node("r2")
	newCfg := strings.Replace(node.Config,
		"interface Ethernet2\n   no switchport\n   ip address 10.0.2.0/31\n   isis enable default\n",
		"interface Ethernet2\n   no switchport\n   ip address 10.0.2.0/31\n   isis enable default\n   isis metric 50\n", 1)
	if newCfg == node.Config {
		t.Fatalf("fixture drift: substring not found in\n%s", node.Config)
	}
	applyAt := e.Sim().Now()
	if err := e.ApplyConfig("r2", newCfg); err != nil {
		t.Fatal(err)
	}
	warmConverged, err := e.RunUntilConverged(30*time.Second, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// The change must take effect: r1's route to r3 now costs 10+50.
	rt, ok := r1.RIB().Lookup(addr("1.1.1.3"))
	if !ok {
		t.Fatal("r1 lost the route after reapply")
	}
	if rt.Metric != 60 {
		t.Errorf("metric = %d, want 60 (new config applied)", rt.Metric)
	}
	// Warm reapply must be far faster than the cold bring-up (which took
	// ~12 minutes of infra + boot).
	warmTime := warmConverged - applyAt
	if warmTime > 2*time.Minute {
		t.Errorf("warm reconvergence took %v, want well under the cold startup", warmTime)
	}
	if coldConverged < 12*time.Minute {
		t.Errorf("cold convergence = %v, expected infra-dominated", coldConverged)
	}
}

func TestApplyConfigRejectsBadConfig(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(2)})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	r1, _ := e.Router("r1")
	if err := e.ApplyConfig("r1", "florble gork\n"); err == nil {
		t.Fatal("bad config accepted")
	}
	// The running router must be untouched.
	r1Again, _ := e.Router("r1")
	if r1 != r1Again {
		t.Error("router replaced despite rejected config")
	}
	if _, ok := r1.RIB().Lookup(addr("1.1.1.2")); !ok {
		t.Error("old state lost after rejected config")
	}
}

func TestApplyConfigErrors(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyConfig("r1", "hostname r1\n"); err == nil ||
		!strings.Contains(err.Error(), "before Start") {
		t.Errorf("err = %v", err)
	}
	converge(t, e)
	if err := e.ApplyConfig("ghost", "hostname g\n"); err == nil {
		t.Error("unknown router accepted")
	}
	// Address clash with another router.
	clash := "interface Loopback0\n   ip address 1.1.1.2/32\n"
	if err := e.ApplyConfig("r1", clash); err == nil ||
		!strings.Contains(err.Error(), "already owned") {
		t.Errorf("err = %v", err)
	}
	// After the failed clash apply, r1's original addresses must still be
	// owned by r1 (rollback worked) and the network still converges.
	if owner := e.addrOwner[addr("1.1.1.1")]; owner != "r1" {
		t.Errorf("rollback lost 1.1.1.1 ownership: %q", owner)
	}
}

func TestApplyConfigSessionReset(t *testing.T) {
	// Reapplying the SAME config to an eBGP router must flap and then
	// re-establish its session.
	e, err := New(Config{Topology: twoASTopo()})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	node, _ := e.topo.Node("r1")
	if err := e.ApplyConfig("r1", node.Config); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	r1, _ := e.Router("r1")
	p, _ := r1.BGP.Peer(addr("100.64.0.1"))
	if p.State().String() != "Established" {
		t.Errorf("session after reapply = %v", p.State())
	}
	if _, ok := r1.RIB().Lookup(addr("1.1.1.2")); !ok {
		t.Error("routes not relearned after reapply")
	}
}
