package kne

import (
	"testing"
	"time"

	"mfv/internal/kube"
	"mfv/internal/sim"
	"mfv/internal/testnet"
)

// On a quiescent network, repeated AFT extraction must be pure cache hits:
// identical generation stamps and pointer-identical tables, even across
// soft-state refreshes (prober probes, MPLS path refreshes) that change no
// forwarding behavior.
func TestAFTsPointerStableWhileQuiescent(t *testing.T) {
	e, err := New(Config{Topology: testnet.Fig2(), Sim: sim.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)

	afts1 := e.AFTs()
	stamps1 := e.FIBGenerations()
	e.Sim().RunFor(2 * time.Minute) // soft-state refreshes only
	afts2 := e.AFTs()
	stamps2 := e.FIBGenerations()
	for name, s := range stamps1 {
		if stamps2[name] != s {
			t.Errorf("%s: stamp moved on a quiescent network: %+v -> %+v", name, s, stamps2[name])
		}
		if afts1[name] != afts2[name] {
			t.Errorf("%s: quiescent re-extraction re-rendered the AFT", name)
		}
	}
}

// A fault must move exactly the affected routers' stamps, and their next
// extraction must be a fresh table while clean routers keep serving the
// cached pointer.
func TestAFTsDirtyOnlyAfterFault(t *testing.T) {
	e, err := New(Config{Topology: testnet.Fig2(), Sim: sim.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)

	afts1 := e.AFTs()
	stamps1 := e.FIBGenerations()
	if err := e.ResetBGP("r2"); err != nil {
		t.Fatal(err)
	}
	stamps2 := e.FIBGenerations()
	afts2 := e.AFTs()
	dirty := 0
	for name, s := range stamps2 {
		if s != stamps1[name] {
			dirty++
			if afts2[name] == afts1[name] {
				t.Errorf("%s: stamp moved but extraction returned the stale table", name)
			}
		} else if afts2[name] != afts1[name] {
			t.Errorf("%s: clean router re-rendered", name)
		}
	}
	if dirty == 0 {
		t.Fatal("BGP reset dirtied no router")
	}
	if dirty == len(stamps2) {
		t.Error("BGP reset dirtied every router — generation tracking too coarse")
	}
}

// Crash/recover is the incarnation hazard: the crashed router's snapshot
// entry must go empty immediately (no stale pre-crash AFT), and the rebuilt
// router must come back under a bumped epoch so delta verification sees it
// as dirty even though its fresh generation counter may coincide with the
// old one.
func TestCrashRecoverEpochAndStaleAFT(t *testing.T) {
	e, err := New(Config{Topology: testnet.Fig2(), Sim: sim.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)

	before := e.FIBGenerations()
	if len(e.AFTs()["r3"].IPv4Entries) == 0 {
		t.Fatal("r3 empty before crash")
	}
	if err := e.CrashRouter("r3"); err != nil {
		t.Fatal(err)
	}
	// The dead router's forwarding plane is gone: the very next snapshot
	// must not leak the cached pre-crash table.
	if got := e.AFTs()["r3"]; len(got.IPv4Entries) != 0 {
		t.Fatalf("crashed r3 still exports %d stale entries", len(got.IPv4Entries))
	}

	clk := e.Sim()
	deadline := clk.Now() + time.Hour
	for clk.Now() < deadline {
		if p, ok := e.Cluster().Pod("r3"); ok && p.Phase == kube.PodRunning {
			break
		}
		clk.RunFor(time.Second)
	}
	e.Settle(30*time.Second, time.Hour)

	after := e.FIBGenerations()
	if after["r3"].Epoch <= before["r3"].Epoch {
		t.Errorf("rebuilt r3 epoch %d not past pre-crash epoch %d",
			after["r3"].Epoch, before["r3"].Epoch)
	}
	if len(e.AFTs()["r3"].IPv4Entries) == 0 {
		t.Error("rebuilt r3 exports an empty AFT after reconvergence")
	}
}
