package kne

import (
	"strings"
	"testing"
	"time"

	"mfv/internal/routing"
	"mfv/internal/topology"
)

// teTopo builds a 3-node IS-IS line where r1 signals an RSVP-TE tunnel to
// r3's loopback.
func teTopo() *topology.Topology {
	topo := isisLineTopo(3)
	// All nodes run MPLS (transit/tail need the RSVP process); only r1
	// signals a tunnel.
	for i := range topo.Nodes {
		topo.Nodes[i].Config += "mpls ip\n"
	}
	topo.Nodes[0].Config += `router traffic-engineering
   tunnel TO-R3
      destination 1.1.1.3
      priority 6 6
`
	return topo
}

// convergeTE uses a hold longer than the RSVP refresh period: tunnel
// signaling retries on 30 s refresh ticks, so a 30 s hold races with it.
func convergeTE(t *testing.T, e *Emulator) {
	t.Helper()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilConverged(90*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
}

func TestTETunnelThroughEmulation(t *testing.T) {
	e, err := New(Config{Topology: teTopo()})
	if err != nil {
		t.Fatal(err)
	}
	convergeTE(t, e)
	r1, _ := e.Router("r1")
	if r1.MPLS == nil {
		t.Fatal("MPLS engine not built")
	}
	lsp, ok := r1.MPLS.LSP("TO-R3@r1")
	if !ok || !lsp.Up {
		t.Fatalf("tunnel = %+v, %v", lsp, ok)
	}
	// The TE route must win the RIB for r3's loopback (distance 2 < 115).
	rt, ok := r1.RIB().Get(pfx("1.1.1.3/32"))
	if !ok || rt.Protocol != routing.ProtoTE {
		t.Fatalf("route = %v, %v; want TE", rt, ok)
	}
	if len(rt.NextHops) != 1 || len(rt.NextHops[0].LabelStack) != 1 {
		t.Errorf("TE route next hops = %v, want one labeled hop", rt.NextHops)
	}
	// The label must appear in the exported AFT entry.
	a := r1.ExportAFT()
	found := false
	for _, entry := range a.IPv4Entries {
		if entry.Prefix == "1.1.1.3/32" {
			hops := a.GroupHops(entry.NextHopGroup)
			if len(hops) == 1 && len(hops[0].PushedLabels) == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("labeled AFT entry missing")
	}
	// Transit r2 must hold an ILM entry.
	r2, _ := e.Router("r2")
	if r2.MPLS == nil || len(r2.MPLS.CrossConnects()) == 0 {
		t.Error("transit has no cross connects")
	}

	// Operator inspection renders the tunnel and the labeled route.
	show := r1.ShowMPLSTunnels()
	if !strings.Contains(show, "TO-R3@r1") || !strings.Contains(show, "up") {
		t.Errorf("ShowMPLSTunnels:\n%s", show)
	}
	if !strings.Contains(r1.ShowIPRoute(), "label") {
		t.Errorf("ShowIPRoute missing label:\n%s", r1.ShowIPRoute())
	}
	if !strings.Contains(r2.ShowMPLSTunnels(), "ILM") {
		t.Errorf("transit ShowMPLSTunnels:\n%s", r2.ShowMPLSTunnels())
	}
}

func TestTETunnelDownAfterPathLoss(t *testing.T) {
	e, err := New(Config{Topology: teTopo()})
	if err != nil {
		t.Fatal(err)
	}
	convergeTE(t, e)
	r1, _ := e.Router("r1")
	if rt, ok := r1.RIB().Get(pfx("1.1.1.3/32")); !ok || rt.Protocol != routing.ProtoTE {
		t.Fatal("precondition: TE route absent")
	}
	// Cut the only path; RSVP soft state must eventually expire and the TE
	// route be withdrawn (leaving nothing, since IS-IS also lost the path).
	if err := e.SetLinkDown(topology.Endpoint{Node: "r2", Interface: "Ethernet2"}); err != nil {
		t.Fatal(err)
	}
	// Soft-state expiry takes up to two lifetimes plus hold detection.
	e.Sim().RunFor(15 * time.Minute)
	if rt, ok := r1.RIB().Get(pfx("1.1.1.3/32")); ok && rt.Protocol == routing.ProtoTE {
		t.Errorf("TE route survived path loss: %v", rt)
	}
	lsp, _ := r1.MPLS.LSP("TO-R3@r1")
	if lsp.Up {
		t.Error("tunnel still up after path loss")
	}
}
