package kne

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"mfv/internal/bgp"
	"mfv/internal/policy"
	"mfv/internal/topology"
)

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// isisLineTopo builds an n-node line where every router runs IS-IS, with
// loopbacks 1.1.1.N/32 and /31 transfer nets 10.0.<i>.0/31.
func isisLineTopo(n int) *topology.Topology {
	topo := topology.Line(n, topology.VendorEOS)
	for i := 1; i <= n; i++ {
		var b strings.Builder
		fmt.Fprintf(&b, "hostname r%d\n", i)
		fmt.Fprintf(&b, "router isis default\n   net 49.0001.0000.0000.%04x.00\n   address-family ipv4 unicast\n", i)
		fmt.Fprintf(&b, "interface Loopback0\n   ip address 1.1.1.%d/32\n   isis enable default\n", i)
		if i > 1 {
			fmt.Fprintf(&b, "interface Ethernet%d\n   no switchport\n   ip address 10.0.%d.1/31\n   isis enable default\n",
				boolIdx(i > 1 && i < n, 1, 1), i-1)
		}
		if i < n {
			eth := 1
			if i > 1 {
				eth = 2
			}
			fmt.Fprintf(&b, "interface Ethernet%d\n   no switchport\n   ip address 10.0.%d.0/31\n   isis enable default\n",
				eth, i)
		}
		node, _ := topo.Node(fmt.Sprintf("r%d", i))
		node.Config = b.String()
	}
	return topo
}

func boolIdx(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}

func converge(t *testing.T, e *Emulator) time.Duration {
	t.Helper()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	at, err := e.RunUntilConverged(30*time.Second, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return at
}

func TestISISLineConvergence(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(3)})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)

	// r1 must have an IS-IS route to r3's loopback.
	r1, _ := e.Router("r1")
	rt, ok := r1.RIB().Lookup(addr("1.1.1.3"))
	if !ok {
		t.Fatalf("r1 has no route to 1.1.1.3; RIB:\n%v", r1.RIB().Routes())
	}
	if rt.Prefix != pfx("1.1.1.3/32") || rt.Metric != 20 {
		t.Errorf("route = %v", rt)
	}
	// All AFTs must validate and contain the remote loopbacks.
	for name, a := range e.AFTs() {
		if err := a.Validate(); err != nil {
			t.Errorf("AFT %s invalid: %v", name, err)
		}
	}
	// Startup must land in the paper's 12–17 minute window.
	startup := e.StartupDone()
	if startup < 12*time.Minute || startup > 17*time.Minute {
		t.Errorf("startup = %v, want 12–17 min", startup)
	}
}

func TestLinkFailureReconvergence(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(3)})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	r1, _ := e.Router("r1")
	if _, ok := r1.RIB().Lookup(addr("1.1.1.3")); !ok {
		t.Fatal("not converged")
	}
	// Cut r2—r3.
	if err := e.SetLinkDown(topology.Endpoint{Node: "r2", Interface: "Ethernet2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.RIB().Lookup(addr("1.1.1.3")); ok {
		t.Error("r1 still routes to r3 after cut")
	}
	// Restore.
	if err := e.SetLinkUp(topology.Endpoint{Node: "r2", Interface: "Ethernet2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.RIB().Lookup(addr("1.1.1.3")); !ok {
		t.Error("r1 did not recover after link restore")
	}
}

// twoASTopo: r1 (AS 65001) --- r2 (AS 65002) eBGP over 100.64.0.0/31, each
// originating its loopback.
func twoASTopo() *topology.Topology {
	topo := topology.Line(2, topology.VendorEOS)
	topo.Nodes[0].Config = `hostname r1
interface Loopback0
   ip address 1.1.1.1/32
interface Ethernet1
   no switchport
   ip address 100.64.0.0/31
router bgp 65001
   router-id 1.1.1.1
   neighbor 100.64.0.1 remote-as 65002
   network 1.1.1.1/32
`
	topo.Nodes[1].Config = `hostname r2
interface Loopback0
   ip address 1.1.1.2/32
interface Ethernet1
   no switchport
   ip address 100.64.0.1/31
router bgp 65002
   router-id 1.1.1.2
   neighbor 100.64.0.0 remote-as 65001
   network 1.1.1.2/32
`
	return topo
}

func TestEBGPSessionAndRoutes(t *testing.T) {
	e, err := New(Config{Topology: twoASTopo()})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	r1, _ := e.Router("r1")
	r2, _ := e.Router("r2")
	p, _ := r1.BGP.Peer(addr("100.64.0.1"))
	if p.State() != bgp.StateEstablished {
		t.Fatalf("session state = %v", p.State())
	}
	rt, ok := r1.RIB().Lookup(addr("1.1.1.2"))
	if !ok || rt.Protocol.String() != "ebgp" {
		t.Errorf("r1 route to r2 loopback = %v, %v", rt, ok)
	}
	rt, ok = r2.RIB().Lookup(addr("1.1.1.1"))
	if !ok || len(rt.NextHops) != 1 || rt.NextHops[0].IP != addr("100.64.0.0") {
		t.Errorf("r2 route = %v, %v", rt, ok)
	}
}

// ibgpOverISISTopo: 3-node line in one AS; r1 and r3 peer iBGP between
// loopbacks (update-source Loopback0) and r2 is a pure IS-IS transit. r1
// originates an external-looking prefix.
func ibgpOverISISTopo() *topology.Topology {
	topo := isisLineTopo(3)
	topo.Nodes[0].Config += `router bgp 65100
   router-id 1.1.1.1
   neighbor 1.1.1.3 remote-as 65100
   neighbor 1.1.1.3 update-source Loopback0
   neighbor 1.1.1.3 next-hop-self
   network 203.0.113.0/24
ip route 203.0.113.0/24 Null0
`
	topo.Nodes[2].Config += `router bgp 65100
   router-id 1.1.1.3
   neighbor 1.1.1.1 remote-as 65100
   neighbor 1.1.1.1 update-source Loopback0
`
	return topo
}

func TestIBGPOverLoopbacksRequiresIGP(t *testing.T) {
	e, err := New(Config{Topology: ibgpOverISISTopo()})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	r3, _ := e.Router("r3")
	p, _ := r3.BGP.Peer(addr("1.1.1.1"))
	if p.State() != bgp.StateEstablished {
		t.Fatalf("iBGP session = %v, want Established (IGP-gated)", p.State())
	}
	rt, ok := r3.RIB().Lookup(addr("203.0.113.9"))
	if !ok {
		t.Fatalf("r3 missing BGP route; RIB:\n%v", r3.RIB().Routes())
	}
	if rt.Protocol.String() != "ibgp" {
		t.Errorf("route protocol = %v", rt.Protocol)
	}
	// The BGP next hop (r1 loopback, via next-hop-self) must recursively
	// resolve through IS-IS: the AFT entry egresses Ethernet1 toward r2.
	aft3 := e.AFTs()["r3"]
	for _, entry := range aft3.IPv4Entries {
		if entry.Prefix == "203.0.113.0/24" {
			hops := aft3.GroupHops(entry.NextHopGroup)
			if len(hops) != 1 || hops[0].Interface != "Ethernet1" {
				t.Errorf("AFT hops = %+v", hops)
			}
			return
		}
	}
	t.Error("203.0.113.0/24 not in r3 AFT")
}

func TestIBGPSessionDropsWhenIGPPathLost(t *testing.T) {
	e, err := New(Config{Topology: ibgpOverISISTopo()})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	r3, _ := e.Router("r3")
	if err := e.SetLinkDown(topology.Endpoint{Node: "r2", Interface: "Ethernet2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	p, _ := r3.BGP.Peer(addr("1.1.1.1"))
	if p.State() == bgp.StateEstablished {
		t.Error("iBGP session survived loss of the IGP path")
	}
	if _, ok := r3.RIB().Lookup(addr("203.0.113.9")); ok {
		t.Error("BGP route survived session loss")
	}
}

func TestInjectorFeedsRoutes(t *testing.T) {
	topo := twoASTopo()
	// r1 gets an extra neighbor on a stub subnet for the injector.
	topo.Nodes[0].Config += `interface Ethernet9
   no switchport
   ip address 192.0.2.0/31
router bgp 65001
   neighbor 192.0.2.1 remote-as 64999
`
	e, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := e.AddInjector("r1", addr("192.0.2.1"), 64999)
	if err != nil {
		t.Fatal(err)
	}
	var feed []netip.Prefix
	for i := 0; i < 500; i++ {
		feed = append(feed, netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 0}), 24))
	}
	inj.Announce(feed, bgp.PathAttrs{Origin: bgp.OriginIGP})
	converge(t, e)

	if inj.SessionState() != bgp.StateEstablished {
		t.Fatalf("injector session = %v", inj.SessionState())
	}
	r1, _ := e.Router("r1")
	rt, ok := r1.RIB().Lookup(addr("20.0.99.5"))
	if !ok || rt.Protocol.String() != "ebgp" {
		t.Errorf("injected route = %v, %v", rt, ok)
	}
	// r2 must learn them over the eBGP session too.
	r2, _ := e.Router("r2")
	if _, ok := r2.RIB().Lookup(addr("20.0.99.5")); !ok {
		t.Error("injected route did not propagate to r2")
	}
	// Withdraw and verify removal.
	inj.Withdraw(feed[:100])
	if _, err := e.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.RIB().Lookup(addr("20.0.0.5")); ok {
		t.Error("withdrawn route still present")
	}
}

func TestInjectorErrors(t *testing.T) {
	e, err := New(Config{Topology: twoASTopo()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddInjector("ghost", addr("192.0.2.1"), 1); err == nil {
		t.Error("unknown router accepted")
	}
	if _, err := e.AddInjector("r1", addr("9.9.9.9"), 1); err == nil {
		t.Error("unconfigured neighbor accepted")
	}
	if _, err := e.AddInjector("r1", addr("100.64.0.1"), 1); err == nil {
		t.Error("address owned by another router accepted")
	}
}

// TestVendorCrashInterplay reproduces the outage class from §2: one vendor
// emits an unusual-but-valid UPDATE (here, a very long community list) that
// crashes the other vendor's routing process.
func TestVendorCrashInterplay(t *testing.T) {
	topo := twoASTopo()
	topo.Nodes[1].Vendor = topology.VendorJunosLike
	topo.Nodes[1].Config = `system { host-name r2; }
interfaces {
    lo0 { unit 0 { family inet { address 1.1.1.2/32; } } }
    Ethernet1 { unit 0 { family inet { address 100.64.0.1/31; } } }
}
routing-options { autonomous-system 65002; router-id 1.1.1.2; }
protocols { bgp { group ebgp { neighbor 100.64.0.0 { peer-as 65001; } } } }
`
	// r1 sends communities.
	topo.Nodes[0].Config += "router bgp 65001\n   neighbor 100.64.0.1 send-community\n"
	e, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	r1, _ := e.Router("r1")
	r2, _ := e.Router("r2")
	if p, _ := r2.BGP.Peer(addr("100.64.0.0")); p.State() != bgp.StateEstablished {
		t.Fatalf("multi-vendor session did not establish: %v", p.State())
	}
	// r1 originates a route carrying 100 communities — valid BGP, but past
	// the junoslike parser limit (64).
	var comms []policy.Community
	for i := 0; i < 100; i++ {
		comms = append(comms, policy.Community(uint32(65001)<<16|uint32(i)))
	}
	r1.BGP.Originate(pfx("66.0.0.0/8"), bgp.PathAttrs{Communities: comms})
	// A crash loop never converges (the killer route is re-sent after every
	// restart), so advance time directly instead of waiting for stability.
	e.Sim().RunFor(5 * time.Minute)
	if r2.CrashCount < 2 {
		t.Errorf("CrashCount = %d, want a crash loop (≥2)", r2.CrashCount)
	}
}

func TestMultiVendorISIS(t *testing.T) {
	topo := topology.Line(2, topology.VendorEOS)
	topo.Nodes[1].Vendor = topology.VendorJunosLike
	topo.Nodes[0].Config = `hostname r1
router isis default
   net 49.0001.0000.0000.0001.00
   address-family ipv4 unicast
interface Loopback0
   ip address 1.1.1.1/32
   isis enable default
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   isis enable default
`
	topo.Nodes[1].Config = `system { host-name r2; }
interfaces {
    lo0 { unit 0 { family inet { address 1.1.1.2/32; } } }
    Ethernet1 { unit 0 { family inet { address 10.0.0.1/31; } } }
}
protocols {
    isis {
        net 49.0001.0000.0000.0002.00;
        interface Ethernet1.0;
        interface lo0.0 { passive; }
    }
}
`
	e, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	r1, _ := e.Router("r1")
	if _, ok := r1.RIB().Lookup(addr("1.1.1.2")); !ok {
		t.Errorf("EOS router did not learn junoslike loopback; RIB:\n%v", r1.RIB().Routes())
	}
	r2, _ := e.Router("r2")
	if _, ok := r2.RIB().Lookup(addr("1.1.1.1")); !ok {
		t.Error("junoslike router did not learn EOS loopback")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
	topo := topology.Line(2, topology.VendorEOS)
	topo.Nodes[0].Config = "florble\n"
	if _, err := New(Config{Topology: topo}); err == nil {
		t.Error("bad config accepted")
	}
	// Duplicate address across routers.
	topo2 := topology.Line(2, topology.VendorEOS)
	topo2.Nodes[0].Config = "interface Loopback0\n   ip address 9.9.9.9/32\n"
	topo2.Nodes[1].Config = "interface Loopback0\n   ip address 9.9.9.9/32\n"
	if _, err := New(Config{Topology: topo2}); err == nil ||
		!strings.Contains(err.Error(), "configured on both") {
		t.Errorf("err = %v", err)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Error("double Start accepted")
	}
	if _, err := New(Config{Topology: isisLineTopo(2)}); err != nil {
		t.Fatal(err)
	}
	e2, _ := New(Config{Topology: isisLineTopo(2)})
	if _, err := e2.RunUntilConverged(time.Second, time.Minute); err == nil {
		t.Error("RunUntilConverged before Start accepted")
	}
}
