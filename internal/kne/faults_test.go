package kne

import (
	"context"
	"errors"
	"testing"
	"time"

	"mfv/internal/bgp"
	"mfv/internal/sim"
	"mfv/internal/testnet"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// TestLinkDownTearsDownSessionsAndWithdraws is the silent-failure teardown
// path: cutting the r2-r3 inter-AS link does NOT remove the connected route
// (the interface stays configured), so the prober keeps believing the peer
// is reachable. The session must still die — via hold-timer expiry — within
// HoldTime plus a few probe intervals, and the routes learned over it must
// vanish from the border routers' AFTs.
func TestLinkDownTearsDownSessionsAndWithdraws(t *testing.T) {
	clk := sim.New(1)
	e, err := New(Config{Topology: testnet.Fig2(), Sim: clk})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)

	r2, _ := e.Router("r2")
	p, ok := r2.BGP.Peer(addr("100.64.23.1"))
	if !ok || p.State() != bgp.StateEstablished {
		t.Fatalf("r2-r3 eBGP session not Established before cut")
	}
	hasPrefix := func(router, prefix string) bool {
		for _, en := range e.AFTs()[router].IPv4Entries {
			if en.Prefix == prefix {
				return true
			}
		}
		return false
	}
	if !hasPrefix("r2", "2.2.2.3/32") {
		t.Fatal("r2 missing r3 loopback before cut")
	}

	if err := e.SetLinkDown(topology.Endpoint{Node: "r2", Interface: "Ethernet2"}); err != nil {
		t.Fatal(err)
	}

	// The session may outlive the cut only until the hold timer fires: bound
	// the wait by HoldTime (90s) plus three probe intervals of slack.
	const bound = 90*time.Second + 3*5*time.Second
	var toreDownAfter time.Duration
	for toreDownAfter = 0; toreDownAfter <= bound; toreDownAfter += 5 * time.Second {
		if p.State() != bgp.StateEstablished {
			break
		}
		clk.RunFor(5 * time.Second)
	}
	if p.State() == bgp.StateEstablished {
		t.Fatalf("session still Established %v after link cut", bound)
	}
	t.Logf("session left Established %v after cut", toreDownAfter)

	// Withdrawals propagate: AS65003 loopbacks leave r2's AFT (and the iBGP
	// re-advertisement leaves r1's), symmetrically for r3.
	if _, err := e.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ router, prefix string }{
		{"r2", "2.2.2.3/32"}, {"r2", "2.2.2.4/32"},
		{"r1", "2.2.2.3/32"},
		{"r3", "2.2.2.2/32"}, {"r3", "2.2.2.1/32"},
	} {
		if hasPrefix(c.router, c.prefix) {
			t.Errorf("%s still has %s after session teardown", c.router, c.prefix)
		}
	}
}

func TestFaultAPIErrors(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CrashRouter("r1"); err == nil {
		t.Error("CrashRouter before Start accepted")
	}
	converge(t, e)
	if err := e.CrashRouter("ghost"); err == nil {
		t.Error("CrashRouter of unknown router accepted")
	}
	if err := e.ResetBGP("ghost"); err == nil {
		t.Error("ResetBGP of unknown router accepted")
	}
	if _, err := e.FailKubeNode("no-such-node"); err == nil {
		t.Error("FailKubeNode of unknown node accepted")
	}
	if err := e.RecoverKubeNode("no-such-node"); err == nil {
		t.Error("RecoverKubeNode of unknown node accepted")
	}
	if err := e.SetLinkImpairment(topology.Endpoint{Node: "r1", Interface: "NoIntf"}, Impairment{LossPct: 10}); err == nil {
		t.Error("impairment on unknown link accepted")
	}
}

// TestFailRestoreRouter: FailRouter is the sweep engine's node-failure
// element — the outage must persist (no replacement pod is scheduled, unlike
// CrashRouter) until RestoreRouter brings the router back, after which the
// network must return to its exact pre-failure forwarding state.
func TestFailRestoreRouter(t *testing.T) {
	clk := sim.New(1)
	e, err := New(Config{Topology: testnet.Fig2(), Sim: clk})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	baseNet, err := verify.NewNetwork(testnet.Fig2(), e.AFTs())
	if err != nil {
		t.Fatal(err)
	}
	hasPrefix := func(router, prefix string) bool {
		for _, en := range e.AFTs()[router].IPv4Entries {
			if en.Prefix == prefix {
				return true
			}
		}
		return false
	}
	if !hasPrefix("r2", "2.2.2.3/32") {
		t.Fatal("r2 missing r3 loopback before failure")
	}

	if err := e.FailRouter("r3"); err != nil {
		t.Fatal(err)
	}
	if err := e.FailRouter("r3"); err == nil {
		t.Error("double FailRouter accepted")
	}
	if !e.RouterDown("r3") {
		t.Error("RouterDown(r3) false after FailRouter")
	}
	// Unlike CrashRouter there is no reboot racing the settle: even after a
	// generous window the pod must still be gone and the withdrawal durable.
	e.Settle(2*time.Minute, 30*time.Minute)
	clk.RunFor(5 * time.Minute)
	if _, ok := e.Cluster().Pod("r3"); ok {
		t.Fatal("failed router's pod came back without RestoreRouter")
	}
	if hasPrefix("r2", "2.2.2.3/32") {
		t.Error("r2 still has r3 loopback while r3 is failed")
	}

	if err := e.RestoreRouter("r3"); err != nil {
		t.Fatal(err)
	}
	if err := e.AwaitRunning("r3", 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	e.Settle(2*time.Minute, 30*time.Minute)
	if err := e.RestoreRouter("r3"); err == nil {
		t.Error("RestoreRouter of a running router accepted")
	}
	// Restored state is forwarding-equivalent, not byte-identical: the
	// rebuilt router re-signals its TE LSPs, which may draw fresh labels.
	// What must hold is that every flow is delivered exactly as before.
	afterNet, err := verify.NewNetwork(testnet.Fig2(), e.AFTs())
	if err != nil {
		t.Fatal(err)
	}
	if diffs := verify.Differential(baseNet, afterNet); len(diffs) != 0 {
		t.Errorf("post-restore reachability differs from baseline: %v", diffs)
	}
}

// TestHoldReleaseBGP: HoldBGP must keep every session on the router down
// across probe ticks (where ResetBGP's sessions come back on the next one),
// and ReleaseBGP must restore the exact pre-hold forwarding state.
func TestHoldReleaseBGP(t *testing.T) {
	clk := sim.New(1)
	e, err := New(Config{Topology: testnet.Fig2(), Sim: clk})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	baseline := map[string]string{}
	for name, a := range e.AFTs() {
		baseline[name] = a.Fingerprint()
	}
	hasPrefix := func(router, prefix string) bool {
		for _, en := range e.AFTs()[router].IPv4Entries {
			if en.Prefix == prefix {
				return true
			}
		}
		return false
	}
	if !hasPrefix("r2", "2.2.2.3/32") {
		t.Fatal("r2 missing r3 loopback before hold")
	}

	if err := e.HoldBGP("r2"); err != nil {
		t.Fatal(err)
	}
	if err := e.HoldBGP("r2"); err == nil {
		t.Error("double HoldBGP accepted")
	}
	if !e.BGPHeld("r2") {
		t.Error("BGPHeld(r2) false after HoldBGP")
	}
	r2, _ := e.Router("r2")
	// Many probe intervals pass; the prober must not resurrect a held
	// session from either end.
	clk.RunFor(3 * time.Minute)
	for _, p := range r2.BGP.Peers() {
		if p.State() == bgp.StateEstablished {
			t.Fatalf("session to %v re-established while held", p.Config().Addr)
		}
	}
	e.Settle(2*time.Minute, 30*time.Minute)
	if hasPrefix("r2", "2.2.2.3/32") {
		t.Error("r2 still has eBGP-learned loopback while held")
	}

	if err := e.ReleaseBGP("r2"); err != nil {
		t.Fatal(err)
	}
	if err := e.ReleaseBGP("r2"); err == nil {
		t.Error("double ReleaseBGP accepted")
	}
	e.Settle(2*time.Minute, 30*time.Minute)
	for name, a := range e.AFTs() {
		if a.Fingerprint() != baseline[name] {
			t.Errorf("%s: post-release AFT differs from baseline", name)
		}
	}
	if err := e.HoldBGP("ghost"); err == nil {
		t.Error("HoldBGP of unknown router accepted")
	}
}

// TestConvergeInterrupted: an expired Config.Ctx must stop the convergence
// loops from advancing virtual time — the degrading APIs return partial
// state, the strict one a wrapped context error — instead of grinding
// through the full virtual timeout.
func TestConvergeInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := New(Config{Topology: isisLineTopo(2), Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	before := e.Sim().Now()
	if _, err := e.RunUntilConverged(30*time.Second, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("RunUntilConverged = %v, want wrapped context.Canceled", err)
	}
	c := e.Settle(30*time.Second, time.Hour)
	if !c.Degraded {
		t.Error("Settle under canceled context not Degraded")
	}
	if err := e.AwaitRunning("r1", time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("AwaitRunning = %v, want wrapped context.Canceled", err)
	}
	if moved := e.Sim().Now() - before; moved > time.Minute {
		t.Errorf("canceled context still advanced virtual time by %v", moved)
	}
}
