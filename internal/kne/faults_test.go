package kne

import (
	"testing"
	"time"

	"mfv/internal/bgp"
	"mfv/internal/sim"
	"mfv/internal/testnet"
	"mfv/internal/topology"
)

// TestLinkDownTearsDownSessionsAndWithdraws is the silent-failure teardown
// path: cutting the r2-r3 inter-AS link does NOT remove the connected route
// (the interface stays configured), so the prober keeps believing the peer
// is reachable. The session must still die — via hold-timer expiry — within
// HoldTime plus a few probe intervals, and the routes learned over it must
// vanish from the border routers' AFTs.
func TestLinkDownTearsDownSessionsAndWithdraws(t *testing.T) {
	clk := sim.New(1)
	e, err := New(Config{Topology: testnet.Fig2(), Sim: clk})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)

	r2, _ := e.Router("r2")
	p, ok := r2.BGP.Peer(addr("100.64.23.1"))
	if !ok || p.State() != bgp.StateEstablished {
		t.Fatalf("r2-r3 eBGP session not Established before cut")
	}
	hasPrefix := func(router, prefix string) bool {
		for _, en := range e.AFTs()[router].IPv4Entries {
			if en.Prefix == prefix {
				return true
			}
		}
		return false
	}
	if !hasPrefix("r2", "2.2.2.3/32") {
		t.Fatal("r2 missing r3 loopback before cut")
	}

	if err := e.SetLinkDown(topology.Endpoint{Node: "r2", Interface: "Ethernet2"}); err != nil {
		t.Fatal(err)
	}

	// The session may outlive the cut only until the hold timer fires: bound
	// the wait by HoldTime (90s) plus three probe intervals of slack.
	const bound = 90*time.Second + 3*5*time.Second
	var toreDownAfter time.Duration
	for toreDownAfter = 0; toreDownAfter <= bound; toreDownAfter += 5 * time.Second {
		if p.State() != bgp.StateEstablished {
			break
		}
		clk.RunFor(5 * time.Second)
	}
	if p.State() == bgp.StateEstablished {
		t.Fatalf("session still Established %v after link cut", bound)
	}
	t.Logf("session left Established %v after cut", toreDownAfter)

	// Withdrawals propagate: AS65003 loopbacks leave r2's AFT (and the iBGP
	// re-advertisement leaves r1's), symmetrically for r3.
	if _, err := e.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ router, prefix string }{
		{"r2", "2.2.2.3/32"}, {"r2", "2.2.2.4/32"},
		{"r1", "2.2.2.3/32"},
		{"r3", "2.2.2.2/32"}, {"r3", "2.2.2.1/32"},
	} {
		if hasPrefix(c.router, c.prefix) {
			t.Errorf("%s still has %s after session teardown", c.router, c.prefix)
		}
	}
}

func TestFaultAPIErrors(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CrashRouter("r1"); err == nil {
		t.Error("CrashRouter before Start accepted")
	}
	converge(t, e)
	if err := e.CrashRouter("ghost"); err == nil {
		t.Error("CrashRouter of unknown router accepted")
	}
	if err := e.ResetBGP("ghost"); err == nil {
		t.Error("ResetBGP of unknown router accepted")
	}
	if _, err := e.FailKubeNode("no-such-node"); err == nil {
		t.Error("FailKubeNode of unknown node accepted")
	}
	if err := e.RecoverKubeNode("no-such-node"); err == nil {
		t.Error("RecoverKubeNode of unknown node accepted")
	}
	if err := e.SetLinkImpairment(topology.Endpoint{Node: "r1", Interface: "NoIntf"}, Impairment{LossPct: 10}); err == nil {
		t.Error("impairment on unknown link accepted")
	}
}
