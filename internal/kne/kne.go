// Package kne is the emulation orchestrator, playing the role Kubernetes
// Network Emulator plays in the paper's prototype: it takes a topology plus
// per-device vendor configurations, schedules one pod per router on the
// cluster substrate, boots virtual routers, wires their interfaces with
// virtual links, provides routed (hop-by-hop) delivery for BGP sessions and
// RSVP signaling, injects external BGP feeds, and detects convergence by
// watching the dataplane stabilize at all routers.
package kne

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mfv/internal/aft"
	"mfv/internal/bgp"
	"mfv/internal/config/eos"
	"mfv/internal/config/ir"
	"mfv/internal/config/junoslike"
	"mfv/internal/diag"
	"mfv/internal/kube"
	"mfv/internal/obs"
	"mfv/internal/sim"
	"mfv/internal/topology"
	"mfv/internal/vrouter"
)

// Routed-payload protocol tags.
const (
	protoBGP  = 1
	protoRSVP = 2
)

// maxTTL bounds hop-by-hop delivery (IP TTL analogue).
const maxTTL = 64

// Config configures an Emulator.
type Config struct {
	Topology *topology.Topology
	// Sim supplies the virtual clock; a fresh seeded simulator is created
	// when nil.
	Sim *sim.Simulator
	// Cluster hosts router pods. When nil, a cluster with enough
	// e2-standard-32 nodes for the topology is created automatically.
	Cluster *kube.Cluster
	// LinkDelay is the per-hop propagation delay (default 1 ms).
	LinkDelay time.Duration
	// ProbeInterval is the BGP session reachability probe period (default
	// 5 s).
	ProbeInterval time.Duration
	// InfraInit is the one-time infrastructure initialization before any
	// pod can boot (cluster bring-up, image pulls). Defaults to the
	// paper-calibrated model: 11 minutes plus 3 s per router capped at
	// 4 minutes, which lands total startup (init + container boot) in the
	// paper's observed 12–17 minute window across topology sizes.
	InfraInit time.Duration
	// SpareNodes adds empty worker machines to the auto-created cluster,
	// leaving headroom for chaos scenarios that fail a node and need its
	// evicted pods rescheduled elsewhere. Ignored when Cluster is set.
	SpareNodes int
	// Obs receives trace events and metrics from the emulator and every
	// router it builds. Nil disables observability at near-zero cost.
	Obs *obs.Observer
	// Ctx, when non-nil, bounds long virtual-time waits by wall-clock
	// cancellation: convergence and settle loops stop advancing the clock
	// once it expires, returning partial (degraded) state where the API
	// allows it and a wrapped context error where it does not.
	Ctx context.Context
}

type linkEnd struct {
	router *vrouter.Router
	intf   string
}

// Emulator orchestrates one emulated network.
type Emulator struct {
	cfg     Config
	sim     *sim.Simulator
	cluster *kube.Cluster
	topo    *topology.Topology

	routers map[string]*vrouter.Router
	// peer maps each endpoint to the opposite endpoint.
	peer map[topology.Endpoint]topology.Endpoint
	// linkDown marks administratively failed links by canonical key.
	linkDown map[string]bool
	// impair holds per-link probabilistic loss / extra delay by canonical
	// link key.
	impair map[string]Impairment
	// ready tracks which routers' pods are currently Running.
	ready map[string]bool
	// routerDown marks routers whose pod crashed; the router object is an
	// inert husk until the replacement pod boots and podReady rebuilds it.
	routerDown map[string]bool
	// quarantined marks routers whose control plane was contained after
	// hostile input: shut down like a crash, but never rescheduled —
	// rebooting would just replay the hostile input. Keyed by router name,
	// valued with the quarantine reason.
	quarantined map[string]string
	// epoch counts router rebuilds by name. A rebooted pod gets a freshly
	// built Router whose FIB generation restarts from zero; bumping the
	// epoch keeps GenStamp comparisons sound across incarnations.
	epoch map[string]uint64
	// addrOwner maps interface addresses to router names.
	addrOwner map[netip.Addr]string
	// bgpHeld marks routers whose BGP sessions are administratively held
	// down (HoldBGP): the reachability prober refuses to re-establish any
	// session either end of which is held, until ReleaseBGP.
	bgpHeld map[string]bool

	injectors map[netip.Addr]*Injector
	// injectorOrder remembers attach order: replaying feeds in the original
	// order keeps a replica's event sequence deterministic.
	injectorOrder []netip.Addr

	// lastActivity is the virtual time of the last dataplane-relevant
	// change anywhere.
	lastActivity time.Duration
	// lastChange is the per-router virtual time of the last RIB change,
	// feeding the convergence timeline and straggler diagnostics.
	lastChange map[string]time.Duration
	// startupDone is the virtual time all pods first reached Running.
	startupDone time.Duration
	started     bool
	// bootRecorded guards the one-time "boot" phase record across repeated
	// convergence calls.
	bootRecorded bool

	obs   *obs.Observer
	probe *sim.Ticker
	// stuck counts consecutive probes a BGP session spent parked in an
	// in-between FSM state (OpenSent/OpenConfirm). An OPEN lost on a dead
	// or lossy link would otherwise deadlock the session forever; after a
	// few probes the transport is reset and retried — the ConnectRetry
	// analogue.
	stuck map[*bgp.Peer]int
}

// New builds an emulator: parses every device config in its vendor dialect
// and constructs the virtual routers. Nothing runs until Start.
func New(cfg Config) (*Emulator, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("kne: no topology")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sim == nil {
		cfg.Sim = sim.New(42)
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 5 * time.Second
	}
	if cfg.InfraInit == 0 {
		perNode := time.Duration(len(cfg.Topology.Nodes)) * 3 * time.Second
		if perNode > 4*time.Minute {
			perNode = 4 * time.Minute
		}
		cfg.InfraInit = 11*time.Minute + perNode
	}
	e := &Emulator{
		cfg:         cfg,
		sim:         cfg.Sim,
		topo:        cfg.Topology,
		routers:     map[string]*vrouter.Router{},
		peer:        map[topology.Endpoint]topology.Endpoint{},
		linkDown:    map[string]bool{},
		impair:      map[string]Impairment{},
		ready:       map[string]bool{},
		routerDown:  map[string]bool{},
		quarantined: map[string]string{},
		epoch:       map[string]uint64{},
		addrOwner:   map[netip.Addr]string{},
		bgpHeld:     map[string]bool{},
		injectors:   map[netip.Addr]*Injector{},
		lastChange:  map[string]time.Duration{},
		stuck:       map[*bgp.Peer]int{},
		obs:         cfg.Obs,
	}
	e.obs.SetClock(e.sim)
	if cfg.Cluster == nil {
		per := kube.Capacity([]kube.NodeSpec{kube.E2Standard32("n")}, kube.AristaCEOSRequest("r", 0))
		nodes := (len(cfg.Topology.Nodes)+per-1)/per + cfg.SpareNodes
		if nodes < 1 {
			nodes = 1
		}
		specs := make([]kube.NodeSpec, nodes)
		for i := range specs {
			specs[i] = kube.E2Standard32(fmt.Sprintf("node%d", i+1))
		}
		e.cluster = kube.NewCluster(e.sim, specs...)
	} else {
		e.cluster = cfg.Cluster
	}

	for _, l := range e.topo.Links {
		e.peer[l.A] = l.Z
		e.peer[l.Z] = l.A
	}
	for i := range e.topo.Nodes {
		n := &e.topo.Nodes[i]
		r, err := e.buildRouter(n)
		if err != nil {
			return nil, err
		}
		e.routers[n.Name] = r
		for _, a := range r.LocalAddrs() {
			if owner, dup := e.addrOwner[a]; dup && owner != n.Name {
				return nil, fmt.Errorf("kne: address %v configured on both %s and %s", a, owner, n.Name)
			}
			e.addrOwner[a] = n.Name
		}
	}
	return e, nil
}

// buildRouter parses a node's current config and constructs a fully wired
// router — the single construction path shared by startup, ApplyConfig, and
// crashed-pod reboot (a rebooted container re-parses its config from
// scratch, exactly like a Kubernetes restart from the image).
func (e *Emulator) buildRouter(n *topology.Node) (*vrouter.Router, error) {
	dev, err := parseConfig(n)
	if err != nil {
		return nil, fmt.Errorf("kne: node %s: %w", n.Name, err)
	}
	r, err := vrouter.New(n.Name, dev, vrouter.ProfileFor(string(n.Vendor)), e.sim)
	if err != nil {
		return nil, err
	}
	e.wireRouter(r)
	return r, nil
}

// wireRouter hooks a router into routed delivery, observability, and
// convergence tracking.
func (e *Emulator) wireRouter(r *vrouter.Router) {
	r.SendToAddr = func(dst netip.Addr, payload []byte) {
		e.sendRouted(r, dst, protoRSVP, netip.Addr{}, payload, maxTTL)
	}
	r.SetObserver(e.obs)
	name := r.Name
	r.OnQuarantine = func(reason string) {
		// Self-quarantine (escaped handler panic): record the containment so
		// convergence reports the run degraded and the pod is not rebuilt.
		if e.started {
			_ = e.QuarantineRouter(name, reason)
		}
	}
	r.OnStateChange(func() {
		e.lastActivity = e.sim.Now()
		e.lastChange[name] = e.sim.Now()
		if e.obs.Enabled() {
			e.obs.Emit(obs.Event{Type: obs.EvRouteChurn, Device: name, Value: int64(r.RIB().Version())})
		}
	})
}

func parseConfig(n *topology.Node) (*ir.Device, error) {
	var (
		dev *ir.Device
		err error
	)
	switch n.Vendor {
	case topology.VendorEOS:
		dev, _, err = eos.Parse(n.Config)
	case topology.VendorJunosLike:
		dev, err = junoslike.Parse(n.Config)
	default:
		err = fmt.Errorf("unknown vendor %q", n.Vendor)
	}
	if err != nil {
		// A config a device's own front end rejects makes the device
		// unbootable: fatal for this router, attributed to it.
		return nil, diag.Wrap(err, diag.SevFatal, "config", n.Name).WithPath("node/" + n.Name + "/config")
	}
	return dev, nil
}

// Sim returns the emulator's simulator, for advancing virtual time.
func (e *Emulator) Sim() *sim.Simulator { return e.sim }

// Router returns the named virtual router.
func (e *Emulator) Router(name string) (*vrouter.Router, bool) {
	r, ok := e.routers[name]
	return r, ok
}

// Routers returns all routers sorted by name.
func (e *Emulator) Routers() []*vrouter.Router {
	names := make([]string, 0, len(e.routers))
	for name := range e.routers {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*vrouter.Router, 0, len(names))
	for _, name := range names {
		out = append(out, e.routers[name])
	}
	return out
}

// Cluster exposes the scheduling substrate.
func (e *Emulator) Cluster() *kube.Cluster { return e.cluster }

// Start schedules the infrastructure initialization and pod boots. Pods
// boot after Config.InfraInit plus their per-vendor boot time; each router
// starts its protocols when its pod is Ready, and links come up when both
// ends are Ready.
func (e *Emulator) Start() error {
	if e.started {
		return fmt.Errorf("kne: already started")
	}
	e.started = true
	e.cluster.OnPodReady(e.podReady)
	e.sim.After(e.cfg.InfraInit, func() {
		for _, n := range e.topo.Nodes {
			r := e.routers[n.Name]
			spec := kube.AristaCEOSRequest(n.Name, r.Profile.BootTime)
			// Queue rather than reject when the cluster is momentarily
			// full: a Pending pod keeps AllRunning false, so convergence
			// (or its degraded variant) reports the shortfall instead of
			// silently shrinking the topology.
			if _, err := e.cluster.ScheduleOrQueue(spec); err != nil {
				continue
			}
		}
	})
	// The prober ticks on the global probe grid (aligned), so replayed
	// replicas probe in lockstep with the primary regardless of boot skew.
	e.probe = e.sim.NewAlignedTicker(e.cfg.ProbeInterval, e.probeSessions)
	return nil
}

// podReady is the cluster's pod-Running callback: it (re)starts the
// resident router and brings up links whose both ends are ready. A pod
// rescheduled after CrashRouter/FailKubeNode gets a freshly built router —
// config re-parsed, protocol state empty — so sessions and adjacencies
// re-establish from scratch while neighbors have already withdrawn its
// routes.
func (e *Emulator) podReady(p *kube.Pod) {
	name := p.Spec.Name
	r := e.routers[name]
	if r == nil {
		return
	}
	if _, contained := e.quarantined[name]; contained {
		// A quarantined router stays down even if its pod comes around again
		// (e.g. rescheduled by a node failure): restarting the control plane
		// would replay the hostile input that got it contained.
		return
	}
	if e.routerDown[name] {
		node, ok := e.topo.Node(name)
		if !ok {
			return
		}
		fresh, err := e.buildRouter(node)
		if err != nil {
			// The config parsed when the router was first built; a reboot
			// cannot invalidate it. Leave the inert husk in place.
			return
		}
		delete(e.routerDown, name)
		e.epoch[name]++
		e.routers[name] = fresh
		r = fresh
	}
	e.ready[name] = true
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvPodReady, Device: name, Detail: p.Node})
	}
	r.Start()
	e.lastActivity = e.sim.Now()
	// Bring up links whose both ends are ready.
	for _, l := range e.topo.NodeLinks(name) {
		a, z := l.A, l.Z
		if e.ready[a.Node] && e.ready[z.Node] && !e.linkDown[linkKey(a, z)] {
			e.attachLink(a, z)
		}
	}
	if e.startupDone == 0 && e.cluster.AllRunning() {
		e.startupDone = e.sim.Now()
		if e.obs.Enabled() {
			e.obs.Emit(obs.Event{Type: obs.EvStartupDone, Value: int64(len(e.routers))})
		}
	}
}

func linkKey(a, z topology.Endpoint) string {
	ka, kz := a.String(), z.String()
	if kz < ka {
		ka, kz = kz, ka
	}
	return ka + "~" + kz
}

// linkDelay returns the per-frame propagation delay: the configured base
// plus up to 25% of seeded jitter. The jitter is what makes ordering
// exploration (core.ExploreOrderings) meaningful — different seeds perturb
// message interleavings without touching protocol logic.
func (e *Emulator) linkDelay() time.Duration {
	jitter := time.Duration(e.sim.Rand().Int63n(int64(e.cfg.LinkDelay)/4 + 1))
	return e.cfg.LinkDelay + jitter
}

// attachLink wires both directions of a link.
func (e *Emulator) attachLink(a, z topology.Endpoint) {
	ra, rz := e.routers[a.Node], e.routers[z.Node]
	key := linkKey(a, z)
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvLinkUp, Detail: key})
	}
	ra.AttachLink(a.Interface, func(data []byte) {
		delay, deliver := e.impairedDelay(key)
		if !deliver {
			return
		}
		d := append([]byte{}, data...)
		e.sim.After(delay, func() {
			if !e.linkDown[key] {
				rz.HandleLinkFrame(z.Interface, d)
			}
		})
	})
	rz.AttachLink(z.Interface, func(data []byte) {
		delay, deliver := e.impairedDelay(key)
		if !deliver {
			return
		}
		d := append([]byte{}, data...)
		e.sim.After(delay, func() {
			if !e.linkDown[key] {
				ra.HandleLinkFrame(a.Interface, d)
			}
		})
	})
}

// Impairment degrades a link without cutting it: each frame is dropped
// with LossPct percent probability (drawn from the seeded sim RNG, so runs
// stay reproducible) and surviving frames carry ExtraDelay on top of the
// normal propagation delay.
type Impairment struct {
	LossPct    int
	ExtraDelay time.Duration
}

// SetLinkImpairment installs loss/delay impairment on the link containing
// endpoint ep; both directions are affected.
func (e *Emulator) SetLinkImpairment(ep topology.Endpoint, imp Impairment) error {
	other, ok := e.peer[ep]
	if !ok {
		return fmt.Errorf("kne: endpoint %v not in any link", ep)
	}
	e.impair[linkKey(ep, other)] = imp
	e.lastActivity = e.sim.Now()
	return nil
}

// ClearLinkImpairment restores the link to its configured behaviour.
func (e *Emulator) ClearLinkImpairment(ep topology.Endpoint) error {
	other, ok := e.peer[ep]
	if !ok {
		return fmt.Errorf("kne: endpoint %v not in any link", ep)
	}
	delete(e.impair, linkKey(ep, other))
	e.lastActivity = e.sim.Now()
	return nil
}

// impairedDelay draws one frame's fate on a link: dropped (false), or
// delivered after the jittered link delay plus any impairment extra delay.
func (e *Emulator) impairedDelay(key string) (time.Duration, bool) {
	d := e.linkDelay()
	imp, found := e.impair[key]
	if !found {
		return d, true
	}
	if imp.LossPct > 0 && e.sim.Rand().Intn(100) < imp.LossPct {
		return 0, false
	}
	return d + imp.ExtraDelay, true
}

// SetLinkDown administratively fails the link containing endpoint ep.
func (e *Emulator) SetLinkDown(ep topology.Endpoint) error {
	other, ok := e.peer[ep]
	if !ok {
		return fmt.Errorf("kne: endpoint %v not in any link", ep)
	}
	e.linkDown[linkKey(ep, other)] = true
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{Type: obs.EvLinkDown, Detail: linkKey(ep, other)})
	}
	e.routers[ep.Node].DetachLink(ep.Interface)
	e.routers[other.Node].DetachLink(other.Interface)
	e.lastActivity = e.sim.Now()
	return nil
}

// SetLinkUp restores a failed link.
func (e *Emulator) SetLinkUp(ep topology.Endpoint) error {
	other, ok := e.peer[ep]
	if !ok {
		return fmt.Errorf("kne: endpoint %v not in any link", ep)
	}
	delete(e.linkDown, linkKey(ep, other))
	e.attachLink(ep, other)
	e.lastActivity = e.sim.Now()
	return nil
}

// IsLinkDown reports whether the link containing ep is administratively
// down. Unknown endpoints report false.
func (e *Emulator) IsLinkDown(ep topology.Endpoint) bool {
	other, ok := e.peer[ep]
	return ok && e.linkDown[linkKey(ep, other)]
}

// sendRouted forwards payload hop-by-hop toward dst, starting at from. Each
// hop consults the live FIB of the current router, so packets follow the
// dataplane as it exists in flight.
func (e *Emulator) sendRouted(from *vrouter.Router, dst netip.Addr, tag uint8, srcAddr netip.Addr, payload []byte, ttl int) {
	if ttl <= 0 {
		return // looped packet dies
	}
	if from.OwnsAddr(dst) {
		e.deliverLocal(from, tag, srcAddr, payload)
		return
	}
	// Injector addresses terminate outside the emulated routers.
	if inj, ok := e.injectors[dst]; ok {
		data := append([]byte{}, payload...)
		e.sim.After(e.cfg.LinkDelay, func() { inj.receive(srcAddr, data) })
		return
	}
	intf, _, ok := from.ForwardingInterface(dst)
	if !ok {
		return // unroutable: packet dropped
	}
	ep := topology.Endpoint{Node: from.Name, Interface: intf}
	other, ok := e.peer[ep]
	if !ok || e.linkDown[linkKey(ep, other)] {
		return
	}
	next := e.routers[other.Node]
	delay, deliver := e.impairedDelay(linkKey(ep, other))
	if !deliver {
		return // impaired link dropped the packet
	}
	data := append([]byte{}, payload...)
	e.sim.After(delay, func() {
		e.sendRouted(next, dst, tag, srcAddr, data, ttl-1)
	})
}

func (e *Emulator) deliverLocal(r *vrouter.Router, tag uint8, srcAddr netip.Addr, payload []byte) {
	switch tag {
	case protoBGP:
		r.DeliverBGP(srcAddr, payload)
	case protoRSVP:
		r.DeliverRSVP(payload)
	}
}

// probeSessions emulates TCP connectivity management for BGP sessions:
// sessions whose endpoints can reach each other come up; sessions that lose
// reachability are torn down.
func (e *Emulator) probeSessions() {
	for _, r := range e.Routers() {
		if r.BGP == nil || r.Crashed() {
			continue
		}
		for _, p := range r.BGP.Peers() {
			cfg := p.Config()
			if owner, ok := e.addrOwner[cfg.Addr]; ok {
				e.probeRouterSession(r, p, e.routers[owner])
			} else if inj, ok := e.injectors[cfg.Addr]; ok {
				// External feeds start only after the whole network is up,
				// matching the paper's procedure (configure, then inject
				// recorded routes); this also makes the measured
				// convergence-after-startup time reflect route processing.
				if e.startupDone > 0 {
					inj.probe(r, p)
				}
			}
		}
	}
}

// stuckProbeLimit is how many consecutive probes a session may sit in
// OpenSent/OpenConfirm before its transport is reset and retried.
const stuckProbeLimit = 3

func (e *Emulator) probeRouterSession(r *vrouter.Router, p *bgp.Peer, remote *vrouter.Router) {
	cfg := p.Config()
	up := !e.bgpHeld[r.Name] && !e.bgpHeld[remote.Name] &&
		r.CanReach(cfg.Addr) && remote.CanReach(cfg.LocalAddr) && !remote.Crashed()
	st := p.State()
	switch {
	case up && st == bgp.StateIdle:
		delete(e.stuck, p)
		local, src := r, cfg.LocalAddr
		p.TransportUp(func(msg []byte) {
			e.sendRouted(local, cfg.Addr, protoBGP, src, msg, maxTTL)
		})
	case !up && st != bgp.StateIdle:
		delete(e.stuck, p)
		p.TransportDown()
	case up && (st == bgp.StateOpenSent || st == bgp.StateOpenConfirm):
		// Reachable but the handshake is parked: the OPEN (or its reply)
		// was lost in flight — e.g. sent while the link was down. Reset
		// the transport; the next probe re-attempts establishment.
		if e.stuck[p]++; e.stuck[p] >= stuckProbeLimit {
			delete(e.stuck, p)
			p.TransportDown()
		}
	default:
		delete(e.stuck, p)
	}
}

// StartupDone returns the virtual time at which all pods reached Running
// (zero until then).
func (e *Emulator) StartupDone() time.Duration { return e.startupDone }

// activityMark returns a cheap monotonic digest of dataplane-relevant
// state: the sum of all RIB versions plus the last activity timestamp.
func (e *Emulator) activityMark() uint64 {
	var total uint64
	for _, r := range e.routers {
		total += r.RIB().Version()
	}
	return total
}

// Convergence is the outcome of a convergence or settle wait.
type Convergence struct {
	// ConvergedAt is the virtual time of the last dataplane change before
	// the network went quiet (the convergence point).
	ConvergedAt time.Duration
	// Degraded is set when the wait timed out and partial results were
	// accepted instead of failing the run, or when any router was
	// quarantined: its forwarding state is absent, so the verdict covers
	// only the surviving routers.
	Degraded bool
	// Stragglers lists (sorted) the routers that never settled: pod not
	// Running, or RIB still churning inside the hold window.
	Stragglers []string
	// Quarantined lists (sorted) the routers contained after hostile input.
	Quarantined []string
}

// RunUntilConverged advances virtual time until the dataplane has been
// stable at every router for hold, or timeout elapses. It returns the
// virtual time at which the network last changed (the convergence point).
// On timeout the error names the stragglers — the routers whose RIBs
// changed most recently — with their last-activity marks.
func (e *Emulator) RunUntilConverged(hold, timeout time.Duration) (time.Duration, error) {
	c, err := e.converge(hold, timeout, true, false)
	return c.ConvergedAt, err
}

// RunUntilConvergedDegraded is the graceful-degradation variant: on timeout
// it returns the partial state reached so far with Degraded set and the
// stragglers marked, instead of an error. Extraction can then proceed on
// the routers that did settle.
func (e *Emulator) RunUntilConvergedDegraded(hold, timeout time.Duration) (Convergence, error) {
	return e.converge(hold, timeout, true, true)
}

// Settle waits for post-fault quiescence without requiring every pod to be
// Running — the chaos engine measures fault impact while a crashed pod is
// still rebooting. It never fails on timeout; unsettled routers come back
// as stragglers.
func (e *Emulator) Settle(hold, timeout time.Duration) Convergence {
	c, _ := e.converge(hold, timeout, false, true)
	return c
}

func (e *Emulator) converge(hold, timeout time.Duration, needAllRunning, degradeOK bool) (Convergence, error) {
	if !e.started {
		return Convergence{}, fmt.Errorf("kne: not started")
	}
	wallStart := time.Now()
	var bootWall time.Duration
	deadline := e.sim.Now() + timeout
	poll := hold / 4
	if poll <= 0 {
		poll = time.Second
	}
	lastMark := e.activityMark()
	stableSince := e.sim.Now()
	lastChange := e.sim.Now()
	for e.sim.Now() < deadline {
		if e.interrupted() {
			break
		}
		e.sim.RunFor(poll)
		// All pods must exist and be Running before quiet counts as
		// convergence — before infra init completes the network is silent
		// but certainly not converged. A quarantined router's pod may have
		// been deliberately left dead; it must not block convergence.
		booted := e.startupDone > 0 && (e.cluster.AllRunning() || e.allRunningExceptQuarantined())
		if booted && !e.bootRecorded {
			e.bootRecorded = true
			bootWall = time.Since(wallStart)
			e.obs.RecordPhase("boot", 0, e.startupDone, bootWall)
		}
		mark := e.activityMark()
		if mark != lastMark {
			lastMark = mark
			stableSince = e.sim.Now()
			lastChange = e.sim.Now()
			continue
		}
		if !needAllRunning && e.startupDone == 0 {
			continue // nothing ever booted: quiet is not convergence
		}
		if (booted || !needAllRunning) && e.sim.Now()-stableSince >= hold {
			e.recordSimMetrics()
			if needAllRunning {
				e.obs.RecordPhase("converge", e.startupDone, lastChange, time.Since(wallStart)-bootWall)
			}
			if e.obs.Enabled() {
				e.obs.Emit(obs.Event{At: lastChange, Type: obs.EvConverged, Value: int64(len(e.routers))})
			}
			c := Convergence{ConvergedAt: lastChange, Quarantined: e.QuarantinedRouters()}
			if len(c.Quarantined) > 0 {
				// The network settled, but quarantined routers contribute no
				// forwarding state: the verdict is degraded, same as a
				// timeout with stragglers.
				c.Degraded = true
				if e.obs.Enabled() {
					e.obs.Emit(obs.Event{Type: obs.EvDegraded, Detail: strings.Join(c.Quarantined, ","), Value: int64(len(c.Quarantined))})
				}
			}
			return c, nil
		}
	}
	e.recordSimMetrics()
	if degradeOK {
		c := Convergence{ConvergedAt: lastChange, Degraded: true, Stragglers: e.stragglers(hold), Quarantined: e.QuarantinedRouters()}
		if e.obs.Enabled() {
			e.obs.Emit(obs.Event{Type: obs.EvDegraded, Detail: strings.Join(c.Stragglers, ","), Value: int64(len(c.Stragglers))})
		}
		return c, nil
	}
	if e.interrupted() {
		return Convergence{}, fmt.Errorf("kne: convergence wait interrupted at %v: %w", e.sim.Now(), e.cfg.Ctx.Err())
	}
	return Convergence{}, fmt.Errorf("kne: no convergence within %v%s", timeout, e.stragglerSummary())
}

// interrupted reports whether the config context has expired.
func (e *Emulator) interrupted() bool {
	return e.cfg.Ctx != nil && e.cfg.Ctx.Err() != nil
}

// AwaitRunning advances virtual time until the named pod reaches Running,
// bounded by timeout and by Config.Ctx cancellation.
func (e *Emulator) AwaitRunning(name string, timeout time.Duration) error {
	deadline := e.sim.Now() + timeout
	for e.sim.Now() < deadline {
		if e.interrupted() {
			return fmt.Errorf("kne: wait for pod %s interrupted: %w", name, e.cfg.Ctx.Err())
		}
		if p, ok := e.cluster.Pod(name); ok && p.Phase == kube.PodRunning {
			return nil
		}
		e.sim.RunFor(time.Second)
	}
	return fmt.Errorf("kne: pod %s not Running within %v", name, timeout)
}

// stragglers lists the routers that have not settled: pod missing or not
// Running, or RIB changed within the trailing hold window.
func (e *Emulator) stragglers(hold time.Duration) []string {
	now := e.sim.Now()
	var out []string
	for _, r := range e.Routers() {
		if _, contained := e.quarantined[r.Name]; contained {
			continue // reported separately via Convergence.Quarantined
		}
		pod, ok := e.cluster.Pod(r.Name)
		if !ok || pod.Phase != kube.PodRunning {
			out = append(out, r.Name)
			continue
		}
		if lc, ok := e.lastChange[r.Name]; ok && now-lc < hold {
			out = append(out, r.Name)
		}
	}
	return out
}

// allRunningExceptQuarantined reports whether every non-quarantined router's
// pod is Running — the boot criterion once containment has taken a router
// permanently out of service.
func (e *Emulator) allRunningExceptQuarantined() bool {
	if len(e.quarantined) == 0 {
		return false
	}
	for name := range e.routers {
		if _, contained := e.quarantined[name]; contained {
			continue
		}
		pod, ok := e.cluster.Pod(name)
		if !ok || pod.Phase != kube.PodRunning {
			return false
		}
	}
	return true
}

// recordSimMetrics publishes simulation-effort and table-size gauges.
func (e *Emulator) recordSimMetrics() {
	if e.obs == nil {
		return
	}
	m := e.obs.Metrics()
	m.Gauge("sim_events_total").Set(int64(e.sim.Executed()))
	m.Gauge("sim_queue_peak").Set(int64(e.sim.MaxPending()))
	m.Gauge("sim_canceled_total").Set(int64(e.sim.CanceledCount()))
	var running int64
	for _, p := range e.cluster.Pods() {
		if p.Phase == kube.PodRunning {
			running++
		}
	}
	m.Gauge("pods_running").Set(running)
	// Per-router gauges are informative at demo scale and poisonous at 10k:
	// every label value is a distinct metric series, so a scale run would
	// mint tens of thousands of them on each convergence poll. Above the cap
	// only the aggregate series is published.
	const perRouterGaugeCap = 256
	perRouter := len(e.routers) <= perRouterGaugeCap
	var total int64
	for _, r := range e.Routers() {
		n := int64(r.RIB().Len())
		total += n
		if perRouter {
			m.Gauge("rib_routes", "router", r.Name).Set(n)
		}
	}
	m.Gauge("rib_routes_total").Set(total)
}

// TimelineEntry describes one router's convergence state: when its RIB last
// changed (virtual time; zero if it never did) and how many routes it holds.
type TimelineEntry struct {
	Router     string
	LastChange time.Duration
	Routes     int
}

// ConvergenceTimeline returns one entry per router sorted by name. It is
// meaningful both after successful convergence (per-router settle times) and
// after a timeout (which routers were still churning).
func (e *Emulator) ConvergenceTimeline() []TimelineEntry {
	out := make([]TimelineEntry, 0, len(e.routers))
	for _, r := range e.Routers() {
		out = append(out, TimelineEntry{
			Router:     r.Name,
			LastChange: e.lastChange[r.Name],
			Routes:     r.RIB().Len(),
		})
	}
	return out
}

// stragglerSummary renders the most recently churning routers for timeout
// diagnostics.
func (e *Emulator) stragglerSummary() string {
	tl := e.ConvergenceTimeline()
	if len(tl) == 0 {
		return ""
	}
	sort.SliceStable(tl, func(i, j int) bool { return tl[i].LastChange > tl[j].LastChange })
	const show = 5
	n := len(tl)
	if n > show {
		n = show
	}
	parts := make([]string, 0, n)
	for _, t := range tl[:n] {
		parts = append(parts, fmt.Sprintf("%s(last change %v, %d routes)", t.Router, t.LastChange, t.Routes))
	}
	s := "; stragglers: " + strings.Join(parts, ", ")
	if len(tl) > show {
		s += fmt.Sprintf(", and %d more", len(tl)-show)
	}
	return s
}

// GenStamp identifies one router incarnation's forwarding state: Epoch
// counts rebuilds of the named router (a crashed pod's replacement is a
// fresh Router whose counters restart from zero) and Gen is that
// incarnation's FIB generation. Two equal stamps imply an identical
// exported AFT, which is what the chaos engine's delta verification keys
// its dirty-device sets on.
type GenStamp struct {
	Epoch uint64
	Gen   uint64
}

// FIBGenerations returns the current stamp for every router.
func (e *Emulator) FIBGenerations() map[string]GenStamp {
	out := make(map[string]GenStamp, len(e.routers))
	for name, r := range e.routers {
		out[name] = GenStamp{Epoch: e.epoch[name], Gen: r.FIBGeneration()}
	}
	return out
}

// AFTs extracts every router's abstract forwarding table directly (the
// in-process path; the gNMI service in internal/gnmi provides the same data
// over the management interface). Only dirty routers — those whose FIB
// generation moved since their last export — are re-rendered, in parallel
// across a worker pool; clean routers return their cached table. Trace
// events are emitted afterward in sorted router order, so the event stream
// is identical to the sequential export's.
func (e *Emulator) AFTs() map[string]*aft.AFT {
	out := make(map[string]*aft.AFT, len(e.routers))
	e.StreamAFTs(func(name string, a *aft.AFT) { out[name] = a })
	return out
}

// StreamAFTs renders every router's AFT exactly like AFTs but delivers each
// table through fn, in sorted router order, instead of accumulating a map.
// The region-sharded pipeline (internal/core) uses it to fold tables into
// the growing verification snapshot without materializing a second copy of
// the full device set. fn must not retain the emulator; the table itself is
// the router's cached export and remains valid after Stop.
func (e *Emulator) StreamAFTs(fn func(name string, a *aft.AFT)) {
	routers := e.Routers()
	var dirty []*vrouter.Router
	for _, r := range routers {
		if !r.AFTCacheValid() {
			dirty = append(dirty, r)
		}
	}
	if w := runtime.GOMAXPROCS(0); len(dirty) > 1 && w > 1 {
		if w > len(dirty) {
			w = len(dirty)
		}
		// Each worker owns disjoint routers; rendering is a pure read of the
		// quiescent RIB/MPLS state plus atomic metric updates, so the only
		// shared writes are each router's own cache fields.
		idx := make(chan int, len(dirty))
		for i := range dirty {
			idx <- i
		}
		close(idx)
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					dirty[i].ExportAFT()
				}
			}()
		}
		wg.Wait()
	}
	for _, r := range routers {
		a := r.ExportAFT()
		fn(r.Name, a)
		if e.obs.Enabled() {
			e.obs.Emit(obs.Event{Type: obs.EvAFTExport, Device: r.Name, Value: int64(len(a.IPv4Entries))})
		}
	}
}

// Stop halts all protocol timers and the session prober.
func (e *Emulator) Stop() {
	if e.probe != nil {
		e.probe.Stop()
	}
	for _, r := range e.routers {
		r.Stop()
	}
}
