package kne

import (
	"fmt"
	"net/netip"

	"mfv/internal/bgp"
	"mfv/internal/vrouter"
)

// Injector is an external BGP peer that feeds routes into the emulated
// network — the paper's "production-recorded route injection" (§5) with
// synthetic feeds from internal/routegen. It is a full BGP speaker: the
// session with the target router runs the real codec and FSM.
type Injector struct {
	em     *Emulator
	addr   netip.Addr // the injector's address on the shared subnet
	target string     // router name it peers with
	asn    uint32
	spk    *bgp.Speaker
	// log records announcements and withdrawals in call order, so a replica
	// emulator can replay the feed deterministically (see Emulator.Replica).
	log []feedOp
}

// feedOp is one recorded Announce or Withdraw call.
type feedOp struct {
	withdraw bool
	prefixes []netip.Prefix
	attrs    bgp.PathAttrs
}

// AddInjector attaches an external peer at addr to the named router. The
// router's configuration must already contain a neighbor statement for
// addr; asn is the injector's AS. Routes are announced with Announce.
func (e *Emulator) AddInjector(routerName string, addr netip.Addr, asn uint32) (*Injector, error) {
	r, ok := e.routers[routerName]
	if !ok {
		return nil, fmt.Errorf("kne: no router %q", routerName)
	}
	if r.BGP == nil {
		return nil, fmt.Errorf("kne: router %q runs no BGP", routerName)
	}
	peer, ok := r.BGP.Peer(addr)
	if !ok {
		return nil, fmt.Errorf("kne: router %q has no neighbor %v configured", routerName, addr)
	}
	if _, dup := e.injectors[addr]; dup {
		return nil, fmt.Errorf("kne: injector %v already attached", addr)
	}
	if owner, taken := e.addrOwner[addr]; taken {
		return nil, fmt.Errorf("kne: address %v belongs to router %s", addr, owner)
	}
	inj := &Injector{em: e, addr: addr, target: routerName, asn: asn}
	inj.spk = bgp.NewSpeaker(bgp.Config{
		Hostname: "injector-" + addr.String(),
		ASN:      asn,
		RouterID: addr,
		Clock:    e.sim,
		Resolver: bgp.ResolverFunc(func(netip.Addr) (uint32, bool) { return 0, true }),
	})
	inj.spk.AddPeer(bgp.PeerConfig{
		Addr:      peer.Config().LocalAddr,
		LocalAddr: addr,
		RemoteAS:  r.BGP.ASN(),
	})
	inj.spk.SetObserver(e.obs)
	e.injectors[addr] = inj
	e.injectorOrder = append(e.injectorOrder, addr)
	return inj, nil
}

// Announce originates prefixes from the injector with the given attribute
// template (next hop is rewritten per eBGP export rules automatically).
func (inj *Injector) Announce(prefixes []netip.Prefix, attrs bgp.PathAttrs) {
	inj.log = append(inj.log, feedOp{prefixes: prefixes, attrs: attrs})
	for _, p := range prefixes {
		inj.spk.Originate(p, attrs)
	}
}

// Withdraw retracts previously announced prefixes.
func (inj *Injector) Withdraw(prefixes []netip.Prefix) {
	inj.log = append(inj.log, feedOp{withdraw: true, prefixes: prefixes})
	for _, p := range prefixes {
		inj.spk.WithdrawLocal(p)
	}
}

// replayInto re-issues this injector's recorded feed operations against a
// replica's injector.
func (inj *Injector) replayInto(dst *Injector) {
	for _, op := range inj.log {
		if op.withdraw {
			dst.Withdraw(op.prefixes)
		} else {
			dst.Announce(op.prefixes, op.attrs)
		}
	}
}

// Sessions returns the injector's single peer state, for tests.
func (inj *Injector) SessionState() bgp.State {
	peers := inj.spk.Peers()
	if len(peers) == 0 {
		return bgp.StateIdle
	}
	return peers[0].State()
}

// receive handles a payload routed to the injector's address.
func (inj *Injector) receive(srcAddr netip.Addr, payload []byte) {
	inj.spk.HandleMessage(srcAddr, payload)
}

// probe manages the session between the target router's peer object and the
// injector's speaker, mirroring probeRouterSession.
func (inj *Injector) probe(r *vrouter.Router, p *bgp.Peer) {
	cfg := p.Config()
	up := r.CanReach(cfg.Addr) && !r.Crashed() && !inj.em.bgpHeld[r.Name]
	injPeers := inj.spk.Peers()
	if len(injPeers) == 0 {
		return
	}
	injPeer := injPeers[0]
	e := inj.em
	switch {
	case up && p.State() == bgp.StateIdle:
		// Bring the injector's side up first so the router's OPEN (which
		// can arrive one link-delay later) never hits an Idle FSM.
		if injPeer.State() == bgp.StateIdle {
			injPeer.TransportUp(func(msg []byte) {
				data := append([]byte{}, msg...)
				e.sim.After(e.cfg.LinkDelay, func() {
					r.DeliverBGP(inj.addr, data)
				})
			})
		}
		local, src := r, cfg.LocalAddr
		p.TransportUp(func(msg []byte) {
			e.sendRouted(local, cfg.Addr, protoBGP, src, msg, maxTTL)
		})
	case !up && p.State() != bgp.StateIdle:
		p.TransportDown()
		injPeer.TransportDown()
	}
}
