package kne

import (
	"strings"
	"testing"
	"time"

	"mfv/internal/obs"
)

// TestObservedConvergence checks the emulator's event stream, phase records,
// and metrics over a full IS-IS convergence.
func TestObservedConvergence(t *testing.T) {
	o := obs.New()
	e, err := New(Config{Topology: isisLineTopo(3), Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)

	counts := map[string]int{}
	for _, ev := range o.Events() {
		counts[ev.Type]++
		if ev.At < 0 {
			t.Errorf("event %+v has negative virtual time", ev)
		}
	}
	if counts[obs.EvPodReady] != 3 {
		t.Errorf("pod_ready events = %d, want 3", counts[obs.EvPodReady])
	}
	if counts[obs.EvStartupDone] != 1 {
		t.Errorf("startup_done events = %d, want 1", counts[obs.EvStartupDone])
	}
	if counts[obs.EvLinkUp] != 2 {
		t.Errorf("link_up events = %d, want 2", counts[obs.EvLinkUp])
	}
	if counts[obs.EvISISAdjacency] == 0 || counts[obs.EvRouteChurn] == 0 {
		t.Errorf("missing protocol events: %v", counts)
	}
	if counts[obs.EvConverged] != 1 {
		t.Errorf("converged events = %d, want 1", counts[obs.EvConverged])
	}

	// Boot and converge phases recorded with a sane virtual split.
	var names []string
	for _, p := range o.Phases() {
		names = append(names, p.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "boot") || !strings.Contains(joined, "converge") {
		t.Errorf("phases = %v", names)
	}
	for _, p := range o.Phases() {
		if p.Name == "boot" && (p.VEnd != e.StartupDone() || p.VDur() <= 0) {
			t.Errorf("boot phase = %+v, startup = %v", p, e.StartupDone())
		}
	}

	if v := o.Gauge("sim_events_total").Value(); v <= 0 {
		t.Errorf("sim_events_total = %d", v)
	}
	if v := o.Counter("spf_runs_total").Value(); v == 0 {
		t.Error("spf_runs_total = 0")
	}
	if v := o.Gauge("rib_routes", "router", "r1").Value(); v <= 0 {
		t.Errorf(`rib_routes{router="r1"} = %d`, v)
	}

	// AFT extraction emits one sorted event per device.
	e.AFTs()
	var aftDevs []string
	for _, ev := range o.Events() {
		if ev.Type == obs.EvAFTExport {
			aftDevs = append(aftDevs, ev.Device)
		}
	}
	if len(aftDevs) != 3 || aftDevs[0] != "r1" || aftDevs[2] != "r3" {
		t.Errorf("aft_export devices = %v", aftDevs)
	}
}

// TestConvergenceTimeline checks per-router settle marks after convergence.
func TestConvergenceTimeline(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(3)})
	if err != nil {
		t.Fatal(err)
	}
	converge(t, e)
	tl := e.ConvergenceTimeline()
	if len(tl) != 3 {
		t.Fatalf("timeline = %+v", tl)
	}
	for i, entry := range tl {
		if entry.Router != []string{"r1", "r2", "r3"}[i] {
			t.Errorf("timeline order: %+v", tl)
		}
		if entry.LastChange <= 0 {
			t.Errorf("%s never changed", entry.Router)
		}
		if entry.Routes <= 0 {
			t.Errorf("%s has no routes", entry.Router)
		}
	}
}

// TestTimeoutNamesStragglers checks the enriched convergence-timeout error:
// it must identify which routers were still churning.
func TestTimeoutNamesStragglers(t *testing.T) {
	e, err := New(Config{Topology: isisLineTopo(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Far too short for the ~13-minute infra init: guaranteed timeout.
	_, err = e.RunUntilConverged(30*time.Second, time.Minute)
	if err == nil {
		t.Fatal("expected timeout")
	}
	msg := err.Error()
	if !strings.Contains(msg, "stragglers:") {
		t.Errorf("timeout error lacks stragglers: %q", msg)
	}
	for _, r := range []string{"r1", "r2", "r3"} {
		if !strings.Contains(msg, r) {
			t.Errorf("timeout error omits %s: %q", r, msg)
		}
	}
	if !strings.Contains(msg, "routes") {
		t.Errorf("timeout error lacks route counts: %q", msg)
	}
}
