package kne

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"mfv/internal/sim"
	"mfv/internal/topology"
)

// AlignClock advances virtual time to the next multiple of quantum, firing
// everything due on the way; a clock already on the grid stays put. Every
// periodic protocol timer in the stack ticks on a globally aligned grid
// (BGP keepalives, ISIS hellos, RSVP refresh, the session prober), so after
// AlignClock the phase of each of those timers relative to now is a pure
// function of its period. The sweep engine aligns before injecting each
// candidate, which makes the candidate's settle timeline independent of what
// was evaluated before it — the property that lets replica pools partition
// candidates arbitrarily and still report byte-identical timelines.
func (e *Emulator) AlignClock(quantum time.Duration) {
	if quantum <= 0 {
		return
	}
	if rem := e.sim.Now() % quantum; rem != 0 {
		e.sim.RunFor(quantum - rem)
	}
}

// Replica builds an independent emulator that deterministically replays this
// emulator's boot: same topology and configs, same seed, same knobs, feeds
// replayed in their original order, boot-time link-downs reapplied — then
// starts it and waits for convergence with the given hold/timeout. The
// replica runs without an observer (the observer binds one virtual clock)
// and always provisions its own cluster. Callers gate on StateFingerprint
// equality before trusting the replica as a stand-in for the primary.
//
// Replication refuses when the emulator carries live fault state (downed or
// quarantined routers, held BGP, link impairments beyond boot-time downs):
// replaying the boot alone cannot reproduce a faulted history.
func (e *Emulator) Replica(hold, timeout time.Duration) (*Emulator, error) {
	if !e.started {
		return nil, fmt.Errorf("kne: replica of an emulator that never started")
	}
	if n := len(e.routerDown) + len(e.quarantined) + len(e.bgpHeld) + len(e.impair); n > 0 {
		return nil, fmt.Errorf("kne: cannot replicate a faulted emulation (%d live faults)", n)
	}
	cfg := e.cfg
	cfg.Sim = sim.New(e.sim.Seed())
	cfg.Obs = nil
	cfg.Cluster = nil // replicas provision their own substrate
	rep, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("kne: building replica: %w", err)
	}
	for _, addr := range e.injectorOrder {
		src := e.injectors[addr]
		inj, err := rep.AddInjector(src.target, addr, src.asn)
		if err != nil {
			return nil, fmt.Errorf("kne: replaying injector %v: %w", addr, err)
		}
		src.replayInto(inj)
	}
	if err := rep.Start(); err != nil {
		return nil, err
	}
	for _, key := range sortedKeys(e.linkDown) {
		if !e.linkDown[key] {
			continue
		}
		ep, err := topology.ParseEndpoint(strings.SplitN(key, "~", 2)[0])
		if err != nil {
			return nil, fmt.Errorf("kne: replaying link-down %s: %w", key, err)
		}
		if err := rep.SetLinkDown(ep); err != nil {
			return nil, err
		}
	}
	if _, err := rep.RunUntilConverged(hold, timeout); err != nil {
		return nil, fmt.Errorf("kne: replica did not converge: %w", err)
	}
	return rep, nil
}

// StateFingerprint digests the emulator's current dataplane content plus its
// fault surface: every exported AFT fingerprint in name order, then the
// downed links and downed/quarantined/BGP-held router sets. Two emulators
// with equal fingerprints present identical forwarding state to
// verification; the sweep replica pool uses this as its replay-identity gate
// and falls back to the sequential path on any mismatch.
func (e *Emulator) StateFingerprint() string {
	h := sha256.New()
	afts := e.AFTs()
	names := make([]string, 0, len(afts))
	for name := range afts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "%s=%s;", name, afts[name].Fingerprint())
	}
	fmt.Fprintf(h, "links=%s;", strings.Join(sortedKeys(e.linkDown), ","))
	fmt.Fprintf(h, "down=%s;", strings.Join(sortedKeys(e.routerDown), ","))
	fmt.Fprintf(h, "held=%s;", strings.Join(sortedKeys(e.bgpHeld), ","))
	quar := make([]string, 0, len(e.quarantined))
	for name := range e.quarantined {
		quar = append(quar, name)
	}
	sort.Strings(quar)
	fmt.Fprintf(h, "quarantined=%s;", strings.Join(quar, ","))
	return hex.EncodeToString(h.Sum(nil))
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
