package routegen

import (
	"testing"
)

func TestPrefixesUniqueAndDeterministic(t *testing.T) {
	a := New(7).Prefixes(5000)
	b := New(7).Prefixes(5000)
	if len(a) != 5000 {
		t.Fatalf("len = %d", len(a))
	}
	seen := map[string]bool{}
	for i, p := range a {
		if seen[p.String()] {
			t.Fatalf("duplicate prefix %v", p)
		}
		seen[p.String()] = true
		if p != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, p, b[i])
		}
		if p.Masked() != p {
			t.Errorf("unmasked prefix %v", p)
		}
	}
	if c := New(8).Prefixes(100); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Error("different seeds produced the same sequence")
	}
}

func TestPrefixesAvoidReservedSpace(t *testing.T) {
	for _, p := range New(3).Prefixes(5000) {
		b := p.Addr().As4()
		switch b[0] {
		case 0, 10, 100, 127, 192, 198, 203:
			t.Fatalf("prefix in reserved/infra space: %v", p)
		}
		if b[0] >= 224 {
			t.Fatalf("multicast prefix: %v", p)
		}
	}
}

func TestLengthDistribution(t *testing.T) {
	counts := map[int]int{}
	for _, p := range New(11).Prefixes(10000) {
		counts[p.Bits()]++
	}
	if counts[24] < 4000 {
		t.Errorf("/24 share = %d/10000, want realistic majority", counts[24])
	}
	if counts[12] > 500 {
		t.Errorf("/12 share = %d, want rare", counts[12])
	}
	for bits := range counts {
		if bits < 12 || bits > 24 {
			t.Errorf("unexpected length /%d", bits)
		}
	}
}

func TestFullTable(t *testing.T) {
	feeds := New(5).FullTable(64700, 10000)
	if Total(feeds) != 10000 {
		t.Fatalf("Total = %d", Total(feeds))
	}
	if len(feeds) != 32 {
		t.Errorf("groups = %d, want 32", len(feeds))
	}
	for _, f := range feeds {
		if len(f.Prefixes) == 0 {
			t.Error("empty feed group")
		}
		if len(f.Attrs.ASPath) == 0 || len(f.Attrs.ASPath) > 5 {
			t.Errorf("AS path = %v", f.Attrs.ASPath)
		}
		for _, as := range f.Attrs.ASPath {
			if as == 64700 {
				t.Error("peer AS embedded in announced path (double prepend)")
			}
		}
	}
}

func TestFullTableSmall(t *testing.T) {
	feeds := New(5).FullTable(64700, 3)
	if Total(feeds) != 3 || len(feeds) != 3 {
		t.Errorf("small table = %d groups %d prefixes", len(feeds), Total(feeds))
	}
	if New(5).FullTable(1, 0) != nil {
		t.Error("zero-size table not nil")
	}
}
