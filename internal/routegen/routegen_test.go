package routegen

import (
	"net/netip"
	"testing"
)

func TestPrefixesUniqueAndDeterministic(t *testing.T) {
	a := New(7).Prefixes(5000)
	b := New(7).Prefixes(5000)
	if len(a) != 5000 {
		t.Fatalf("len = %d", len(a))
	}
	seen := map[string]bool{}
	for i, p := range a {
		if seen[p.String()] {
			t.Fatalf("duplicate prefix %v", p)
		}
		seen[p.String()] = true
		if p != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, p, b[i])
		}
		if p.Masked() != p {
			t.Errorf("unmasked prefix %v", p)
		}
	}
	if c := New(8).Prefixes(100); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Error("different seeds produced the same sequence")
	}
}

func TestPrefixesAvoidReservedSpace(t *testing.T) {
	for _, p := range New(3).Prefixes(5000) {
		b := p.Addr().As4()
		switch b[0] {
		case 0, 10, 100, 127, 192, 198, 203:
			t.Fatalf("prefix in reserved/infra space: %v", p)
		}
		if b[0] >= 224 {
			t.Fatalf("multicast prefix: %v", p)
		}
	}
}

func TestLengthDistribution(t *testing.T) {
	counts := map[int]int{}
	for _, p := range New(11).Prefixes(10000) {
		counts[p.Bits()]++
	}
	if counts[24] < 4000 {
		t.Errorf("/24 share = %d/10000, want realistic majority", counts[24])
	}
	if counts[12] > 500 {
		t.Errorf("/12 share = %d, want rare", counts[12])
	}
	for bits := range counts {
		if bits < 12 || bits > 24 {
			t.Errorf("unexpected length /%d", bits)
		}
	}
}

func TestFullTable(t *testing.T) {
	feeds := New(5).FullTable(64700, 10000)
	if Total(feeds) != 10000 {
		t.Fatalf("Total = %d", Total(feeds))
	}
	if len(feeds) != 32 {
		t.Errorf("groups = %d, want 32", len(feeds))
	}
	for _, f := range feeds {
		if len(f.Prefixes) == 0 {
			t.Error("empty feed group")
		}
		if len(f.Attrs.ASPath) == 0 || len(f.Attrs.ASPath) > 5 {
			t.Errorf("AS path = %v", f.Attrs.ASPath)
		}
		for _, as := range f.Attrs.ASPath {
			if as == 64700 {
				t.Error("peer AS embedded in announced path (double prepend)")
			}
		}
	}
}

func TestFullTableSmall(t *testing.T) {
	feeds := New(5).FullTable(64700, 3)
	if Total(feeds) != 3 || len(feeds) != 3 {
		t.Errorf("small table = %d groups %d prefixes", len(feeds), Total(feeds))
	}
	if New(5).FullTable(1, 0) != nil {
		t.Error("zero-size table not nil")
	}
}

// The 100k+ tests below exercise full-table scale (a realistic public table
// is ~1M prefixes; 150k catches the failure modes — dedup-map collisions and
// distribution drift — at a tractable runtime). They run in the nightly full
// sweep and skip under -short.

func TestFullTableScaleDedupAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("100k+ table: run without -short")
	}
	const n = 150000
	a := New(42).FullTable(64512, n)
	b := New(42).FullTable(64512, n)
	if Total(a) != n || Total(b) != n {
		t.Fatalf("Total = %d / %d, want %d", Total(a), Total(b), n)
	}
	if len(a) != 32 {
		t.Fatalf("groups = %d, want 32", len(a))
	}
	seen := make(map[netip.Prefix]bool, n)
	for i, f := range a {
		for j, p := range f.Prefixes {
			if seen[p] {
				t.Fatalf("duplicate prefix %v across the full table", p)
			}
			seen[p] = true
			if p != b[i].Prefixes[j] {
				t.Fatalf("same seed diverged: group %d entry %d: %v vs %v", i, j, p, b[i].Prefixes[j])
			}
		}
		if f.Attrs.Origin != b[i].Attrs.Origin || len(f.Attrs.ASPath) != len(b[i].Attrs.ASPath) {
			t.Fatalf("same seed diverged on group %d attributes", i)
		}
	}
}

func TestPrefixDistributionStableAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("100k+ table: run without -short")
	}
	// The length distribution must hold its shape at 100k draws for any
	// seed: the scale tier's feed realism rests on it, and a skew (e.g. a
	// dedup retry loop eating the short-prefix tail) would silently change
	// what the convergence experiment measures.
	for _, seed := range []int64{1, 99, 12345} {
		counts := map[int]int{}
		for _, p := range New(seed).Prefixes(100000) {
			counts[p.Bits()]++
		}
		total := 0
		for bits, c := range counts {
			if bits < 12 || bits > 24 {
				t.Fatalf("seed %d: unexpected length /%d", seed, bits)
			}
			total += c
		}
		if total != 100000 {
			t.Fatalf("seed %d: %d prefixes", seed, total)
		}
		// Expected shares from lengthDist, with generous tolerance: /24 at
		// 55% +-3, /23 at 15% +-2, /12 at 1% +-0.5.
		if c := counts[24]; c < 52000 || c > 58000 {
			t.Errorf("seed %d: /24 share = %d, want ~55000", seed, c)
		}
		if c := counts[23]; c < 13000 || c > 17000 {
			t.Errorf("seed %d: /23 share = %d, want ~15000", seed, c)
		}
		if c := counts[12]; c < 500 || c > 1500 {
			t.Errorf("seed %d: /12 share = %d, want ~1000", seed, c)
		}
	}
}
