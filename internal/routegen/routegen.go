// Package routegen synthesizes BGP route feeds standing in for the
// production-recorded advertisements the paper injects during its
// convergence experiment: deterministic, seeded prefix sets with a
// realistic length distribution and varied path attributes.
package routegen

import (
	"math/rand"
	"net/netip"

	"mfv/internal/bgp"
	"mfv/internal/policy"
)

// Feed is one external peer's announcement set.
type Feed struct {
	Prefixes []netip.Prefix
	Attrs    bgp.PathAttrs
}

// Generator produces deterministic synthetic feeds.
type Generator struct {
	rng *rand.Rand
}

// New returns a generator; the seed fixes the whole sequence.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// lengthDist approximates the public-table prefix-length distribution:
// mostly /24, then /22–/23, some /16–/21, few short prefixes.
func (g *Generator) length() int {
	switch v := g.rng.Intn(100); {
	case v < 55:
		return 24
	case v < 70:
		return 23
	case v < 80:
		return 22
	case v < 88:
		return 21
	case v < 94:
		return 20
	case v < 97:
		return 19
	case v < 99:
		return 16
	default:
		return 12
	}
}

// Prefixes generates n unique prefixes. Addresses are drawn from the
// globally-routable-looking space (avoiding 0/8, 10/8, 127/8, 224/4 and the
// test nets this repository uses for infrastructure).
func (g *Generator) Prefixes(n int) []netip.Prefix {
	seen := make(map[netip.Prefix]bool, n)
	out := make([]netip.Prefix, 0, n)
	for len(out) < n {
		var b [4]byte
		b[0] = byte(20 + g.rng.Intn(180)) // 20..199
		switch b[0] {
		case 100, 127, 192, 198, 203:
			continue // reserved/test/infra ranges
		}
		b[1] = byte(g.rng.Intn(256))
		b[2] = byte(g.rng.Intn(256))
		p := netip.PrefixFrom(netip.AddrFrom4(b), g.length()).Masked()
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// ASPath generates a plausible upstream AS path of 1–5 hops starting at
// originAS.
func (g *Generator) ASPath(originAS uint32) []uint32 {
	n := 1 + g.rng.Intn(5)
	path := make([]uint32, 0, n)
	path = append(path, originAS)
	for i := 1; i < n; i++ {
		path = append(path, 1000+uint32(g.rng.Intn(64000)))
	}
	return path
}

// FullTable generates a feed of n prefixes as announced by peerAS,
// partitioned into groups sharing attribute bundles (as real tables do).
func (g *Generator) FullTable(peerAS uint32, n int) []Feed {
	prefixes := g.Prefixes(n)
	// ~32 attribute bundles.
	groups := 32
	if n < groups {
		groups = n
	}
	if groups == 0 {
		return nil
	}
	feeds := make([]Feed, groups)
	for i := range feeds {
		// The path is as seen AT the peer (its own ASN is prepended by the
		// injector's eBGP export, so it must not appear here).
		attrs := bgp.PathAttrs{
			Origin: uint8(g.rng.Intn(3)),
			ASPath: g.ASPath(1000 + uint32(g.rng.Intn(64000))),
		}
		if g.rng.Intn(2) == 0 {
			attrs.MED = uint32(g.rng.Intn(1000))
			attrs.HasMED = true
		}
		for c := 0; c < g.rng.Intn(4); c++ {
			attrs.Communities = append(attrs.Communities,
				policy.Community(peerAS<<16|uint32(g.rng.Intn(1000))))
		}
		feeds[i] = Feed{Attrs: attrs}
	}
	for i, p := range prefixes {
		f := &feeds[i%groups]
		f.Prefixes = append(f.Prefixes, p)
	}
	return feeds
}

// Total counts the prefixes across feeds.
func Total(feeds []Feed) int {
	n := 0
	for _, f := range feeds {
		n += len(f.Prefixes)
	}
	return n
}
