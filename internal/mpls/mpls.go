// Package mpls implements a lightweight RSVP-TE-style tunnel signaling
// engine: PATH messages travel hop-by-hop toward the tunnel tail along the
// IGP shortest path, RESV messages return allocating labels, and each hop
// installs an incoming-label map entry. The head end learns the outgoing
// label and next hop for the tunnel.
//
// Soft state is refreshed periodically; state that is not refreshed for a
// vendor-specific multiple of the refresh interval is cleaned up. The
// per-vendor timer profiles reproduce the interplay pathology the paper
// describes (two vendors with mismatched RSVP-TE timers reconverging very
// slowly after a link cut).
package mpls

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"mfv/internal/diag"

	"mfv/internal/sim"
)

// Message types.
const (
	msgPath = 1
	msgResv = 2
)

// Timers is a vendor RSVP-TE timer profile.
type Timers struct {
	// Refresh is the soft-state refresh interval.
	Refresh time.Duration
	// CleanupMultiplier: state expires after Refresh × CleanupMultiplier
	// without a refresh.
	CleanupMultiplier int
}

// DefaultTimers follows the RFC 2205 defaults (30 s refresh, lifetime 3×).
func DefaultTimers() Timers { return Timers{Refresh: 30 * time.Second, CleanupMultiplier: 3} }

// SlowTimers models a vendor with long refresh and a generous lifetime —
// the profile that interacts badly with a fast-timer vendor after failures.
func SlowTimers() Timers { return Timers{Refresh: 3 * time.Minute, CleanupMultiplier: 4} }

// LSPState is the head-end view of one signaled tunnel.
type LSPState struct {
	Name     string
	To       netip.Addr
	Up       bool
	OutLabel uint32
	NextHop  netip.Addr
	// Hops is the recorded route (router IDs) from head to tail.
	Hops []netip.Addr
}

// CrossConnect is one ILM (incoming label map) entry on a transit/tail node.
type CrossConnect struct {
	InLabel  uint32
	OutLabel uint32 // 0 = pop (we are the tail)
	NextHop  netip.Addr
	LSPName  string
}

// Hop resolution: the engine asks the router for the next hop toward a
// destination (backed by the RIB/IGP).
type HopResolver interface {
	NextHopToward(dst netip.Addr) (netip.Addr, bool)
}

// HopResolverFunc adapts a function.
type HopResolverFunc func(netip.Addr) (netip.Addr, bool)

// NextHopToward implements HopResolver.
func (f HopResolverFunc) NextHopToward(dst netip.Addr) (netip.Addr, bool) { return f(dst) }

// Config configures an Engine.
type Config struct {
	// RouterID is this node's loopback/stable address.
	RouterID netip.Addr
	Clock    *sim.Simulator
	Resolver HopResolver
	Timers   Timers
	// Forward delivers an encoded message to the engine owning addr (the
	// emulation substrate wires this to hop-by-hop delivery).
	Forward func(addr netip.Addr, data []byte)
	// OnLSPChange fires when a head-end tunnel changes state.
	OnLSPChange func(LSPState)
}

type pathState struct {
	name     string
	from, to netip.Addr
	prevHop  netip.Addr // where PATH came from (upstream)
	nextHop  netip.Addr // where PATH went (downstream); invalid at tail
	inLabel  uint32     // label we allocated toward upstream
	outLabel uint32     // label downstream allocated for us
	// lastPath is refreshed by PATH arrivals from upstream (transit/tail);
	// lastResv is refreshed by RESV arrivals from downstream. Keeping them
	// separate is what produces the vendor timer-interplay pathology: a
	// transit node keeps confirming reservations from stored RESV state
	// until its own lifetime expires that state.
	lastPath time.Duration
	lastResv time.Duration
	resvSent bool
}

// Engine is one router's RSVP-TE process.
type Engine struct {
	cfg       Config
	nextLabel uint32
	// labelByName pins each LSP session to the label it was first allocated,
	// for the life of the engine. RSVP soft state expires and re-signals:
	// without stickiness a re-signaled LSP would draw a fresh label from the
	// monotonic allocator, so a fail-and-heal cycle would leave the ILM table
	// content-drifted even though forwarding is equivalent. Sticky labels
	// make heal byte-identical to the pre-fault state, which the sweep
	// engine's fingerprint sharing and replica equivalence both rely on.
	labelByName map[string]uint32
	// sessions keyed by LSP name (names are globally unique per head end by
	// convention name@head).
	sessions map[string]*pathState
	// headLSPs tracks tunnels this node originated.
	headLSPs map[string]*LSPState
	sweep    *sim.Ticker
	refresh  *sim.Ticker
	// version counts CrossConnects-visible mutations (label allocation,
	// out-label or next-hop change, reserved-session expiry). Pure soft-state
	// refreshes do not bump it, so an idle engine reports a stable version.
	version uint64
}

// StateVersion returns a monotonic counter that increments whenever the
// CrossConnects output could have changed. Equal versions imply an identical
// ILM table, which is what lets the FIB-generation layer skip re-rendering
// AFTs for routers whose label state is quiescent.
func (e *Engine) StateVersion() uint64 { return e.version }

// New builds an engine. Start begins the refresh/cleanup timers.
func New(cfg Config) *Engine {
	if cfg.Clock == nil {
		panic("mpls: engine needs a clock")
	}
	if cfg.Timers.Refresh == 0 {
		cfg.Timers = DefaultTimers()
	}
	return &Engine{
		cfg:         cfg,
		nextLabel:   16, // labels below 16 are reserved
		labelByName: map[string]uint32{},
		sessions:    map[string]*pathState{},
		headLSPs:    map[string]*LSPState{},
	}
}

// Start arms the soft-state timers. Refresh and cleanup tick on the global
// refresh grid (aligned), so an engine rebuilt after a fault refreshes on the
// same schedule as the one it replaced.
func (e *Engine) Start() {
	e.refresh = e.cfg.Clock.NewAlignedTicker(e.cfg.Timers.Refresh, e.refreshAll)
	e.sweep = e.cfg.Clock.NewAlignedTicker(e.cfg.Timers.Refresh, e.cleanup)
}

// Stop cancels timers.
func (e *Engine) Stop() {
	if e.refresh != nil {
		e.refresh.Stop()
	}
	if e.sweep != nil {
		e.sweep.Stop()
	}
}

// Signal initiates (or re-initiates) a tunnel from this head end to tail.
func (e *Engine) Signal(name string, to netip.Addr) {
	lsp := &LSPState{Name: name, To: to}
	e.headLSPs[name] = lsp
	e.sendPath(name, to)
}

func (e *Engine) sendPath(name string, to netip.Addr) {
	nh, ok := e.cfg.Resolver.NextHopToward(to)
	if !ok {
		return // no route toward tail yet; the refresh timer retries
	}
	msg, err := encodeMsg(msgPath, name, e.cfg.RouterID, to, 0, []netip.Addr{e.cfg.RouterID})
	if err != nil {
		return // unencodable LSP (e.g. hostile name); config lint flags these
	}
	st, ok := e.sessions[name]
	if !ok {
		// lastResv tracks confirmations: a head end that stops hearing
		// RESVs must notice, so refreshing PATH does not touch it.
		st = &pathState{name: name, from: e.cfg.RouterID, to: to, lastResv: e.cfg.Clock.Now()}
		e.sessions[name] = st
	}
	if st.inLabel != 0 && st.nextHop != nh {
		e.version++
	}
	st.nextHop = nh
	e.cfg.Forward(nh, msg)
}

// HandleMessage processes a received RSVP message.
func (e *Engine) HandleMessage(data []byte) {
	typ, name, from, to, label, hops, err := decodeMsg(data)
	if err != nil {
		return
	}
	switch typ {
	case msgPath:
		e.handlePath(name, from, to, hops)
	case msgResv:
		e.handleResv(name, from, to, label, hops)
	}
}

func (e *Engine) handlePath(name string, from, to netip.Addr, hops []netip.Addr) {
	st, ok := e.sessions[name]
	if !ok {
		st = &pathState{name: name, from: from, to: to}
		e.sessions[name] = st
	}
	now := e.cfg.Clock.Now()
	st.lastPath = now
	if len(hops) > 0 {
		st.prevHop = hops[len(hops)-1]
	}
	recorded := append(append([]netip.Addr{}, hops...), e.cfg.RouterID)

	if to == e.cfg.RouterID {
		// Tail: allocate a label toward upstream and send RESV back. The
		// tail is the RESV origin, so its reservation is always fresh.
		if st.inLabel == 0 {
			st.inLabel = e.allocLabel(name)
			e.version++
		}
		st.resvSent = true
		st.lastResv = now
		if m, err := encodeMsg(msgResv, name, from, to, st.inLabel, recorded); err == nil {
			e.cfg.Forward(st.prevHop, m)
		}
		return
	}
	// Soft-state confirmation: while our stored reservation is within OUR
	// lifetime, re-confirm upstream even if downstream has gone quiet or
	// unreachable. This is the behaviour that makes mismatched vendor
	// timers interact badly: a slow-timer transit node keeps validating a
	// reservation that is already dead downstream.
	lifetime := e.cfg.Timers.Refresh * time.Duration(e.cfg.Timers.CleanupMultiplier)
	if st.resvSent && now-st.lastResv <= lifetime {
		if m, err := encodeMsg(msgResv, name, from, to, st.inLabel, recorded); err == nil {
			e.cfg.Forward(st.prevHop, m)
		}
	}
	nh, ok := e.cfg.Resolver.NextHopToward(to)
	if !ok {
		return // dead ends age out via cleanup
	}
	if st.inLabel != 0 && st.nextHop != nh {
		e.version++
	}
	st.nextHop = nh
	if m, err := encodeMsg(msgPath, name, from, to, 0, recorded); err == nil {
		e.cfg.Forward(nh, m)
	}
}

func (e *Engine) handleResv(name string, from, to netip.Addr, label uint32, hops []netip.Addr) {
	if head, ok := e.headLSPs[name]; ok && from == e.cfg.RouterID {
		// We are the head end: tunnel is up.
		st := e.sessions[name]
		if st == nil {
			return
		}
		st.outLabel = label
		st.lastResv = e.cfg.Clock.Now()
		changed := !head.Up || head.OutLabel != label || head.NextHop != st.nextHop
		head.Up = true
		head.OutLabel = label
		head.NextHop = st.nextHop
		head.Hops = hops
		if changed && e.cfg.OnLSPChange != nil {
			e.cfg.OnLSPChange(*head)
		}
		return
	}
	st, ok := e.sessions[name]
	if !ok {
		return
	}
	st.lastResv = e.cfg.Clock.Now()
	if st.outLabel != label && st.inLabel != 0 {
		e.version++
	}
	st.outLabel = label
	if st.inLabel == 0 {
		st.inLabel = e.allocLabel(name)
		e.version++
	}
	st.resvSent = true
	if m, err := encodeMsg(msgResv, name, from, to, st.inLabel, hops); err == nil {
		e.cfg.Forward(st.prevHop, m)
	}
}

func (e *Engine) allocLabel(name string) uint32 {
	if l, ok := e.labelByName[name]; ok {
		return l
	}
	l := e.nextLabel
	e.nextLabel++
	e.labelByName[name] = l
	return l
}

// refreshAll re-sends PATH for sessions we originated or transit.
func (e *Engine) refreshAll() {
	names := make([]string, 0, len(e.headLSPs))
	for name := range e.headLSPs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.sendPath(name, e.headLSPs[name].To)
	}
}

// cleanup expires soft state that has not been refreshed.
func (e *Engine) cleanup() {
	lifetime := e.cfg.Timers.Refresh * time.Duration(e.cfg.Timers.CleanupMultiplier)
	now := e.cfg.Clock.Now()
	for name, st := range e.sessions {
		if _, isHead := e.headLSPs[name]; isHead {
			continue // head state is re-signaled, not expired
		}
		if now-st.lastPath > lifetime {
			if st.inLabel != 0 {
				e.version++
			}
			delete(e.sessions, name)
		}
	}
	// Head LSPs whose session stopped being confirmed go down. Sorted so
	// the down-notifications (which feed the trace) fire deterministically.
	names := make([]string, 0, len(e.headLSPs))
	for name := range e.headLSPs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		head := e.headLSPs[name]
		st := e.sessions[name]
		if st == nil {
			continue
		}
		if head.Up && now-st.lastResv > lifetime {
			head.Up = false
			if e.cfg.OnLSPChange != nil {
				e.cfg.OnLSPChange(*head)
			}
		}
	}
}

// CrossConnects returns this node's ILM entries for transit/tail sessions.
func (e *Engine) CrossConnects() []CrossConnect {
	var out []CrossConnect
	names := make([]string, 0, len(e.sessions))
	for name := range e.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := e.sessions[name]
		if st.inLabel == 0 {
			continue // head end or not yet reserved
		}
		out = append(out, CrossConnect{
			InLabel:  st.inLabel,
			OutLabel: st.outLabel, // 0 at tail = pop
			NextHop:  st.nextHop,
			LSPName:  name,
		})
	}
	return out
}

// LSP returns the head-end state for a tunnel.
func (e *Engine) LSP(name string) (LSPState, bool) {
	l, ok := e.headLSPs[name]
	if !ok {
		return LSPState{}, false
	}
	return *l, true
}

// LSPs returns all head-end tunnels sorted by name.
func (e *Engine) LSPs() []LSPState {
	names := make([]string, 0, len(e.headLSPs))
	for name := range e.headLSPs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]LSPState, 0, len(names))
	for _, name := range names {
		out = append(out, *e.headLSPs[name])
	}
	return out
}

// wire4 renders an address as 4 wire bytes; invalid or non-IPv4 addresses
// (possible on hostile input paths) become 0.0.0.0 instead of panicking.
func wire4(a netip.Addr) [4]byte {
	if !a.Is4() && !a.Is4In6() {
		return [4]byte{}
	}
	return a.As4()
}

// Message layout: type(1) nameLen(1) name from(4) to(4) label(4) nHops(1)
// hops(4 each). Both the name length and the hop count ride in single bytes,
// so oversized fields — a hostile LSP name, or a recorded route grown past
// 255 hops by a forwarding loop — are reported as errors rather than
// panicking or silently truncating on the wire.
func encodeMsg(typ uint8, name string, from, to netip.Addr, label uint32, hops []netip.Addr) ([]byte, error) {
	if len(name) > 255 {
		return nil, fmt.Errorf("mpls: LSP name is %d bytes, max 255", len(name))
	}
	if len(hops) > 255 {
		return nil, fmt.Errorf("mpls: recorded route has %d hops, max 255", len(hops))
	}
	buf := make([]byte, 0, 16+len(name)+4*len(hops))
	buf = append(buf, typ, byte(len(name)))
	buf = append(buf, name...)
	f, t := wire4(from), wire4(to)
	buf = append(buf, f[:]...)
	buf = append(buf, t[:]...)
	buf = binary.BigEndian.AppendUint32(buf, label)
	buf = append(buf, byte(len(hops)))
	for _, h := range hops {
		a := wire4(h)
		buf = append(buf, a[:]...)
	}
	return buf, nil
}

// decodeMsg parses an RSVP message; errors are *diag.Error (source "mpls")
// carrying the byte offset where decoding failed.
func decodeMsg(b []byte) (typ uint8, name string, from, to netip.Addr, label uint32, hops []netip.Addr, err error) {
	if len(b) < 2 {
		err = diag.Decodef("mpls", 0, "short message (%d bytes)", len(b))
		return
	}
	typ = b[0]
	nameLen := int(b[1])
	b = b[2:]
	if len(b) < nameLen+13 {
		err = diag.Decodef("mpls", 2, "truncated message: %d bytes after header, need %d", len(b), nameLen+13)
		return
	}
	name = string(b[:nameLen])
	b = b[nameLen:]
	var f, t [4]byte
	copy(f[:], b[0:4])
	copy(t[:], b[4:8])
	from, to = netip.AddrFrom4(f), netip.AddrFrom4(t)
	label = binary.BigEndian.Uint32(b[8:12])
	n := int(b[12])
	b = b[13:]
	if len(b) != 4*n {
		err = diag.Decodef("mpls", 15+nameLen, "hop list length %d does not match count %d", len(b), n)
		return
	}
	for i := 0; i < n; i++ {
		var h [4]byte
		copy(h[:], b[4*i:])
		hops = append(hops, netip.AddrFrom4(h))
	}
	return
}
