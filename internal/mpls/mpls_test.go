package mpls

import (
	"net/netip"
	"testing"
	"time"

	"mfv/internal/sim"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// fabric wires engines together by router ID with static next-hop tables.
type fabric struct {
	s       *sim.Simulator
	engines map[netip.Addr]*Engine
	// nexthop[src][dst] = next hop router ID.
	nexthop map[netip.Addr]map[netip.Addr]netip.Addr
	// down marks unreachable (src -> nh) pairs to simulate link cuts.
	down map[[2]netip.Addr]bool
	lsps map[string]LSPState
}

func newFabric() *fabric {
	return &fabric{
		s:       sim.New(1),
		engines: map[netip.Addr]*Engine{},
		nexthop: map[netip.Addr]map[netip.Addr]netip.Addr{},
		down:    map[[2]netip.Addr]bool{},
		lsps:    map[string]LSPState{},
	}
}

func (f *fabric) add(id string, timers Timers) *Engine {
	rid := addr(id)
	f.nexthop[rid] = map[netip.Addr]netip.Addr{}
	e := New(Config{
		RouterID: rid,
		Clock:    f.s,
		Timers:   timers,
		Resolver: HopResolverFunc(func(dst netip.Addr) (netip.Addr, bool) {
			nh, ok := f.nexthop[rid][dst]
			if !ok || f.down[[2]netip.Addr{rid, nh}] {
				return netip.Addr{}, false
			}
			return nh, true
		}),
		Forward: func(to netip.Addr, data []byte) {
			if f.down[[2]netip.Addr{rid, to}] {
				return
			}
			d := append([]byte{}, data...)
			f.s.After(time.Millisecond, func() {
				if peer, ok := f.engines[to]; ok {
					peer.HandleMessage(d)
				}
			})
		},
		OnLSPChange: func(l LSPState) { f.lsps[l.Name] = l },
	})
	f.engines[rid] = e
	e.Start()
	return e
}

// line3 builds r1 -> r2 -> r3 forwarding in both directions.
func line3(t1, t2, t3 Timers) (*fabric, *Engine, *Engine, *Engine) {
	f := newFabric()
	e1 := f.add("1.1.1.1", t1)
	e2 := f.add("2.2.2.2", t2)
	e3 := f.add("3.3.3.3", t3)
	f.nexthop[addr("1.1.1.1")][addr("3.3.3.3")] = addr("2.2.2.2")
	f.nexthop[addr("1.1.1.1")][addr("2.2.2.2")] = addr("2.2.2.2")
	f.nexthop[addr("2.2.2.2")][addr("3.3.3.3")] = addr("3.3.3.3")
	f.nexthop[addr("2.2.2.2")][addr("1.1.1.1")] = addr("1.1.1.1")
	f.nexthop[addr("3.3.3.3")][addr("1.1.1.1")] = addr("2.2.2.2")
	f.nexthop[addr("3.3.3.3")][addr("2.2.2.2")] = addr("2.2.2.2")
	return f, e1, e2, e3
}

func TestLSPSignaling(t *testing.T) {
	f, e1, e2, _ := line3(DefaultTimers(), DefaultTimers(), DefaultTimers())
	e1.Signal("T1", addr("3.3.3.3"))
	f.s.RunFor(time.Second)

	lsp, ok := e1.LSP("T1")
	if !ok || !lsp.Up {
		t.Fatalf("LSP = %+v, want up", lsp)
	}
	if lsp.NextHop != addr("2.2.2.2") {
		t.Errorf("next hop = %v", lsp.NextHop)
	}
	if lsp.OutLabel < 16 {
		t.Errorf("out label = %d, want >= 16", lsp.OutLabel)
	}
	if len(lsp.Hops) != 3 || lsp.Hops[0] != addr("1.1.1.1") || lsp.Hops[2] != addr("3.3.3.3") {
		t.Errorf("recorded route = %v", lsp.Hops)
	}
	// Transit node r2 must have a cross-connect swapping to the tail label.
	xcs := e2.CrossConnects()
	if len(xcs) != 1 {
		t.Fatalf("r2 cross connects = %+v", xcs)
	}
	if xcs[0].InLabel != lsp.OutLabel {
		t.Errorf("head out-label %d != transit in-label %d", lsp.OutLabel, xcs[0].InLabel)
	}
	if xcs[0].NextHop != addr("3.3.3.3") {
		t.Errorf("transit next hop = %v", xcs[0].NextHop)
	}
	// OnLSPChange fired.
	if got := f.lsps["T1"]; !got.Up {
		t.Error("OnLSPChange did not deliver up state")
	}
}

func TestTailCrossConnectPops(t *testing.T) {
	f, e1, _, e3 := line3(DefaultTimers(), DefaultTimers(), DefaultTimers())
	e1.Signal("T1", addr("3.3.3.3"))
	f.s.RunFor(time.Second)
	xcs := e3.CrossConnects()
	if len(xcs) != 1 || xcs[0].OutLabel != 0 {
		t.Errorf("tail cross connects = %+v, want pop entry", xcs)
	}
}

func TestSignalingWaitsForRoute(t *testing.T) {
	f := newFabric()
	e1 := f.add("1.1.1.1", DefaultTimers())
	f.add("2.2.2.2", DefaultTimers())
	// No route toward the tail yet.
	e1.Signal("T1", addr("2.2.2.2"))
	f.s.RunFor(time.Second)
	if lsp, _ := e1.LSP("T1"); lsp.Up {
		t.Fatal("LSP came up without a route")
	}
	// Route appears; the refresh cycle must establish the tunnel.
	f.nexthop[addr("1.1.1.1")][addr("2.2.2.2")] = addr("2.2.2.2")
	f.nexthop[addr("2.2.2.2")][addr("1.1.1.1")] = addr("1.1.1.1")
	f.s.RunFor(2 * DefaultTimers().Refresh)
	if lsp, _ := e1.LSP("T1"); !lsp.Up {
		t.Error("LSP did not come up after route appeared")
	}
}

func TestLSPDownAfterCut(t *testing.T) {
	f, e1, _, _ := line3(DefaultTimers(), DefaultTimers(), DefaultTimers())
	e1.Signal("T1", addr("3.3.3.3"))
	f.s.RunFor(time.Second)
	// Cut r2 -> r3 both ways.
	f.down[[2]netip.Addr{addr("2.2.2.2"), addr("3.3.3.3")}] = true
	f.down[[2]netip.Addr{addr("3.3.3.3"), addr("2.2.2.2")}] = true
	// Detection takes up to two lifetimes: the transit node keeps
	// confirming from stored state for one lifetime, then the head end
	// times out after another.
	lifetime := DefaultTimers().Refresh * time.Duration(DefaultTimers().CleanupMultiplier)
	f.s.RunFor(2*lifetime + 4*DefaultTimers().Refresh)
	lsp, _ := e1.LSP("T1")
	if lsp.Up {
		t.Error("LSP still up after the path was cut past its lifetime")
	}
}

// TestTimerInterplay reproduces the paper's observation: when one vendor
// runs slow RSVP timers, reconvergence after a cut takes several times
// longer than in a homogeneous fast-timer deployment.
func TestTimerInterplay(t *testing.T) {
	detectDown := func(transitTimers Timers) time.Duration {
		f, e1, _, _ := line3(DefaultTimers(), transitTimers, DefaultTimers())
		e1.Signal("T1", addr("3.3.3.3"))
		f.s.RunFor(time.Second)
		if lsp, _ := e1.LSP("T1"); !lsp.Up {
			t.Fatal("LSP not up")
		}
		cutAt := f.s.Now()
		f.down[[2]netip.Addr{addr("2.2.2.2"), addr("3.3.3.3")}] = true
		f.down[[2]netip.Addr{addr("3.3.3.3"), addr("2.2.2.2")}] = true
		// Head-end down detection: poll until the LSP reports down.
		for f.s.Now() < cutAt+2*time.Hour {
			f.s.RunFor(10 * time.Second)
			if lsp, _ := e1.LSP("T1"); !lsp.Up {
				return f.s.Now() - cutAt
			}
		}
		t.Fatal("LSP never went down")
		return 0
	}
	fast := detectDown(DefaultTimers())
	slow := detectDown(SlowTimers())
	if slow < 3*fast {
		t.Errorf("slow-timer interplay detected in %v, fast in %v; want ≥3× gap", slow, fast)
	}
}

func TestCodecErrors(t *testing.T) {
	e := New(Config{RouterID: addr("1.1.1.1"), Clock: sim.New(1),
		Resolver: HopResolverFunc(func(netip.Addr) (netip.Addr, bool) { return netip.Addr{}, false }),
		Forward:  func(netip.Addr, []byte) {},
	})
	// Malformed messages must be ignored, not panic.
	e.HandleMessage(nil)
	e.HandleMessage([]byte{1})
	e.HandleMessage([]byte{msgPath, 200, 'x'})
	msg, err := encodeMsg(msgResv, "GHOST", addr("9.9.9.9"), addr("8.8.8.8"), 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.HandleMessage(msg) // RESV for unknown session

	// Oversized fields are encode errors, not panics.
	longName := make([]byte, 300)
	for i := range longName {
		longName[i] = 'a'
	}
	if _, err := encodeMsg(msgPath, string(longName), addr("1.1.1.1"), addr("2.2.2.2"), 0, nil); err == nil {
		t.Error("300-byte LSP name: want error, got nil")
	}
	manyHops := make([]netip.Addr, 300)
	for i := range manyHops {
		manyHops[i] = addr("10.0.0.1")
	}
	if _, err := encodeMsg(msgPath, "T1", addr("1.1.1.1"), addr("2.2.2.2"), 0, manyHops); err == nil {
		t.Error("300-hop recorded route: want error, got nil")
	}
	// Invalid addresses encode as 0.0.0.0 rather than panicking.
	if _, err := encodeMsg(msgPath, "T1", netip.Addr{}, netip.MustParseAddr("2001:db8::1"), 0, nil); err != nil {
		t.Errorf("invalid addrs: %v", err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	hops := []netip.Addr{addr("1.1.1.1"), addr("2.2.2.2")}
	msg, err := encodeMsg(msgPath, "TUN-A", addr("1.1.1.1"), addr("3.3.3.3"), 77, hops)
	if err != nil {
		t.Fatal(err)
	}
	typ, name, from, to, label, gotHops, err := decodeMsg(msg)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgPath || name != "TUN-A" || from != addr("1.1.1.1") ||
		to != addr("3.3.3.3") || label != 77 || len(gotHops) != 2 || gotHops[1] != addr("2.2.2.2") {
		t.Errorf("round trip = %v %q %v %v %d %v", typ, name, from, to, label, gotHops)
	}
}
