package mpls

import (
	"net/netip"
	"testing"
	"time"
)

func TestLSPFollowsIGPRerouting(t *testing.T) {
	// Start with r1 -> r2 -> r3; then change r1's routing so the next hop
	// toward r3 becomes r3 directly (as after an IGP reroute). Refresh must
	// re-signal along the new path.
	f, e1, _, _ := line3(DefaultTimers(), DefaultTimers(), DefaultTimers())
	e1.Signal("T1", addr("3.3.3.3"))
	f.s.RunFor(time.Second)
	lsp, _ := e1.LSP("T1")
	if !lsp.Up || lsp.NextHop != addr("2.2.2.2") {
		t.Fatalf("initial LSP = %+v", lsp)
	}
	// IGP reroute: r1 now reaches r3 directly (new link appears).
	f.nexthop[addr("1.1.1.1")][addr("3.3.3.3")] = addr("3.3.3.3")
	f.s.RunFor(2 * DefaultTimers().Refresh)
	lsp, _ = e1.LSP("T1")
	if !lsp.Up {
		t.Fatal("LSP lost after reroute")
	}
	if lsp.NextHop != addr("3.3.3.3") {
		t.Errorf("next hop = %v, want direct path after reroute", lsp.NextHop)
	}
	if len(lsp.Hops) != 2 {
		t.Errorf("recorded route = %v, want 2 hops", lsp.Hops)
	}
}

func TestMultipleLSPsDistinctLabels(t *testing.T) {
	f, e1, e2, e3 := line3(DefaultTimers(), DefaultTimers(), DefaultTimers())
	e1.Signal("A", addr("3.3.3.3"))
	e1.Signal("B", addr("3.3.3.3"))
	e3.Signal("C", addr("1.1.1.1"))
	f.s.RunFor(2 * time.Second)
	lsps := e1.LSPs()
	if len(lsps) != 2 || !lsps[0].Up || !lsps[1].Up {
		t.Fatalf("e1 LSPs = %+v", lsps)
	}
	if lsps[0].OutLabel == lsps[1].OutLabel {
		t.Error("two LSPs share an out-label at the same downstream")
	}
	// Transit r2 must hold three cross-connects with unique in-labels.
	xcs := e2.CrossConnects()
	if len(xcs) != 3 {
		t.Fatalf("r2 cross connects = %+v", xcs)
	}
	seen := map[uint32]bool{}
	for _, xc := range xcs {
		if seen[xc.InLabel] {
			t.Errorf("duplicate in-label %d", xc.InLabel)
		}
		seen[xc.InLabel] = true
	}
	if c, _ := e3.LSP("C"); !c.Up {
		t.Error("reverse-direction LSP not up")
	}
}

func TestStopHaltsRefresh(t *testing.T) {
	f, e1, _, _ := line3(DefaultTimers(), DefaultTimers(), DefaultTimers())
	e1.Signal("T1", addr("3.3.3.3"))
	f.s.RunFor(time.Second)
	e1.Stop()
	// With refreshes stopped, downstream state ages out.
	lifetime := DefaultTimers().Refresh * time.Duration(DefaultTimers().CleanupMultiplier)
	f.s.RunFor(2*lifetime + 2*DefaultTimers().Refresh)
	// The head no longer runs cleanup either, but transit state must have
	// expired at r2 (its PATH state went stale).
	if f.engines[addr("2.2.2.2")].sessions["T1"] != nil {
		t.Error("transit soft state survived without refreshes")
	}
}

func TestLSPLookupMisses(t *testing.T) {
	e := New(Config{RouterID: addr("1.1.1.1"), Clock: newFabric().s,
		Resolver: HopResolverFunc(func(netip.Addr) (netip.Addr, bool) { return netip.Addr{}, false }),
		Forward:  func(netip.Addr, []byte) {},
	})
	if _, ok := e.LSP("nope"); ok {
		t.Error("unknown LSP found")
	}
	if len(e.LSPs()) != 0 || len(e.CrossConnects()) != 0 {
		t.Error("fresh engine has state")
	}
}
