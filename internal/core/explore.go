package core

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"mfv/internal/topology"
	"mfv/internal/verify"
)

// This file implements the exhaustive context exploration the paper
// discusses in §6: checking that the network maintains properties "in the
// face of any single link cut" by running emulation once per context and
// differencing the resulting dataplanes. (The paper notes k-link cuts grow
// exponentially; the explorer takes an arbitrary context list so callers
// choose the budget.)

// FailureFinding is the result of one what-if context.
type FailureFinding struct {
	// Cut identifies the failed link by one endpoint.
	Cut topology.Endpoint
	// Diffs are the outcome changes relative to the baseline. Empty means
	// the network absorbed the failure (paths may differ, outcomes do not).
	Diffs []verify.Diff
	// LostFlows counts diffs where a previously delivered flow no longer
	// delivers — the paper's headline invariant.
	LostFlows int
}

// ExploreSingleLinkFailures runs the emulation pipeline once per single-link
// cut of the snapshot's topology and reports, per context, the differential
// against the intact baseline. Contexts run sequentially on the virtual
// clock; the paper runs them in parallel on real clusters, which changes
// wall time but not results.
func ExploreSingleLinkFailures(snap Snapshot, opts Options) ([]FailureFinding, error) {
	if snap.Topology == nil {
		return nil, fmt.Errorf("core: snapshot has no topology")
	}
	baseline, err := Run(snap, opts)
	if err != nil {
		return nil, fmt.Errorf("core: baseline: %w", err)
	}
	var out []FailureFinding
	for _, l := range snap.Topology.Links {
		cut := l.A
		ctx := snap
		ctx.DownLinks = append(append([]topology.Endpoint{}, snap.DownLinks...), cut)
		res, err := Run(ctx, opts)
		if err != nil {
			return nil, fmt.Errorf("core: context %v: %w", cut, err)
		}
		diffs := Differential(baseline, res)
		finding := FailureFinding{Cut: cut, Diffs: diffs}
		for _, d := range diffs {
			if deliveredIn(d.Before) && !deliveredIn(d.After) {
				finding.LostFlows++
			}
		}
		out = append(out, finding)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cut.String() < out[j].Cut.String() })
	return out, nil
}

func deliveredIn(outcome string) bool { return strings.Contains(outcome, "Delivered") }

// SurvivesAnySingleLinkCut reports whether every single-link-cut context
// keeps all previously delivered flows delivered, with the list of
// violating cuts.
func SurvivesAnySingleLinkCut(findings []FailureFinding) (bool, []topology.Endpoint) {
	var violations []topology.Endpoint
	for _, f := range findings {
		if f.LostFlows > 0 {
			violations = append(violations, f.Cut)
		}
	}
	return len(violations) == 0, violations
}

// OrderingReport is the result of re-running a snapshot under different
// event orderings.
type OrderingReport struct {
	Seeds int
	// Agree reports whether every run produced an identical forwarding
	// state on every device.
	Agree bool
	// DivergentDevices lists devices whose AFT differed across runs.
	DivergentDevices []string
	// ConvergedAt collects per-seed convergence times (they may differ even
	// when the final dataplane agrees).
	ConvergedAt []time.Duration
}

// ExploreOrderings addresses the paper's §6 non-determinism concern: one
// emulation run yields one converged state, so for higher confidence the
// same snapshot is emulated under several event orderings (seeds) and the
// resulting dataplanes are compared. Protocol tie-breaks that depend on
// message timing surface here as divergent devices.
func ExploreOrderings(snap Snapshot, opts Options, seeds []int64) (*OrderingReport, error) {
	if len(seeds) < 2 {
		return nil, fmt.Errorf("core: ordering exploration needs at least 2 seeds")
	}
	report := &OrderingReport{Seeds: len(seeds), Agree: true}
	var first map[string]string // device -> fingerprint
	divergent := map[string]bool{}
	for _, seed := range seeds {
		o := opts
		o.Seed = seed
		res, err := Run(snap, o)
		if err != nil {
			return nil, fmt.Errorf("core: seed %d: %w", seed, err)
		}
		report.ConvergedAt = append(report.ConvergedAt, res.ConvergedAt)
		fps := map[string]string{}
		for name, a := range res.AFTs {
			fps[name] = a.Fingerprint()
		}
		if first == nil {
			first = fps
			continue
		}
		for name, fp := range fps {
			if first[name] != fp {
				divergent[name] = true
				report.Agree = false
			}
		}
	}
	for name := range divergent {
		report.DivergentDevices = append(report.DivergentDevices, name)
	}
	sort.Strings(report.DivergentDevices)
	return report, nil
}

// Reachability invariant helpers used by explorers and the CLI.

// Invariant is a named predicate over a verification network.
type Invariant struct {
	Name  string
	Check func(*verify.Network) error
}

// AllLoopbacksReachable builds an invariant requiring every device to reach
// every address in dsts.
func AllLoopbacksReachable(dsts []netip.Addr) Invariant {
	return Invariant{
		Name: "all-loopbacks-reachable",
		Check: func(n *verify.Network) error {
			for _, src := range n.Devices() {
				for _, dst := range dsts {
					if !n.Reachable(src, dst) {
						return fmt.Errorf("%s cannot reach %v", src, dst)
					}
				}
			}
			return nil
		},
	}
}

// NoForwardingLoops is the invariant that no packet class loops.
func NoForwardingLoops() Invariant {
	return Invariant{
		Name: "no-forwarding-loops",
		Check: func(n *verify.Network) error {
			if loops := n.DetectLoops(); len(loops) > 0 {
				return fmt.Errorf("%d forwarding loops (first: dst %v from %s)",
					len(loops), loops[0].Dst, loops[0].Src)
			}
			return nil
		},
	}
}

// CheckInvariants evaluates invariants over a result, returning one error
// per violated invariant.
func CheckInvariants(res *Result, invs []Invariant) map[string]error {
	out := map[string]error{}
	for _, inv := range invs {
		if err := inv.Check(res.Network); err != nil {
			out[inv.Name] = err
		}
	}
	return out
}
