package core

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"mfv/internal/aft"
	"mfv/internal/chaos"
	"mfv/internal/config/eos"
	"mfv/internal/diag"
	"mfv/internal/routegen"
	"mfv/internal/testnet"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func runEmu(t *testing.T, snap Snapshot) *Result {
	t.Helper()
	res, err := Run(snap, Options{Backend: BackendEmulation})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestE1Fig2FullMesh: the healthy Fig. 2 network must have full loopback
// reachability across all three ASes.
func TestE1Fig2FullMesh(t *testing.T) {
	res := runEmu(t, Snapshot{Topology: testnet.Fig2()})
	for i := 1; i <= 6; i++ {
		src := fmt.Sprintf("r%d", i)
		for j := 1; j <= 6; j++ {
			dst := testnet.Fig2Loopback(fmt.Sprintf("r%d", j))
			if !res.Network.Reachable(src, dst) {
				t.Errorf("%s cannot reach %v", src, dst)
			}
		}
	}
	if res.StartupAt < 12*time.Minute || res.StartupAt > 17*time.Minute {
		t.Errorf("startup = %v, want paper's 12–17 min window", res.StartupAt)
	}
}

// TestE1DifferentialFindsASLoss reproduces the paper's E1: removing the
// r2–r3 eBGP session and running differential reachability must surface the
// loss of connectivity from AS3 routers to AS2 routers.
func TestE1DifferentialFindsASLoss(t *testing.T) {
	good := runEmu(t, Snapshot{Topology: testnet.Fig2()})
	bad := runEmu(t, Snapshot{Topology: testnet.Fig2Buggy()})
	diffs := Differential(good, bad)
	if len(diffs) == 0 {
		t.Fatal("differential reachability found nothing")
	}
	// AS3 (r3, r4) must lose the AS2 loopbacks (2.2.2.1, 2.2.2.2).
	lost := map[string]bool{}
	for _, d := range diffs {
		if strings.Contains(d.Before, "Delivered") && !strings.Contains(d.After, "Delivered") {
			for j := 1; j <= 6; j++ {
				lo := testnet.Fig2Loopback(fmt.Sprintf("r%d", j))
				if d.Dst == lo {
					lost[d.Src+"->"+fmt.Sprintf("r%d", j)] = true
				}
			}
		}
	}
	for _, want := range []string{"r3->r1", "r3->r2", "r4->r1", "r4->r2"} {
		if !lost[want] {
			t.Errorf("expected lost flow %s not reported; lost = %v", want, lost)
		}
	}
	// AS3 internal connectivity must NOT be reported lost.
	if lost["r3->r4"] || lost["r4->r3"] {
		t.Error("intra-AS3 connectivity wrongly reported lost")
	}
}

// TestE2CoverageGap reproduces the paper's parsing statistics: each Fig. 2
// config is 62–82 lines, the vendor front end accepts all of them, and the
// reference model fails to recognize 38–42.
func TestE2CoverageGap(t *testing.T) {
	topo := testnet.Fig2()
	modelRes, err := Run(Snapshot{Topology: topo}, Options{Backend: BackendModel})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range topo.Nodes {
		total := eos.CountConfigLines(node.Config)
		if total < 62 || total > 82 {
			t.Errorf("%s: config is %d lines, want 62–82", node.Name, total)
		}
		// Vendor parser accepts everything.
		if _, diags, err := eos.Parse(node.Config); err != nil || len(diags.Unknown) != 0 {
			t.Errorf("%s: vendor parser rejected lines: %v %v", node.Name, err, diags)
		}
		cov := modelRes.Coverage[node.Name]
		if cov.TotalLines != total {
			t.Errorf("%s: model counted %d lines, vendor %d", node.Name, cov.TotalLines, total)
		}
		un := cov.UnrecognizedCount()
		if un < 38 || un > 42 {
			for _, w := range cov.Unrecognized {
				t.Logf("%s unrecognized: %q (%s)", node.Name, w.Text, w.Why)
			}
			t.Errorf("%s: model failed %d of %d lines, want 38–42", node.Name, un, total)
		}
	}
}

// TestE3ModelGap reproduces the Fig. 3 experiment: identical configurations
// produce full pairwise reachability under emulation but a broken dataplane
// under the model, and differential reachability across backends surfaces
// the divergence.
func TestE3ModelGap(t *testing.T) {
	topo := testnet.Fig3()
	emu := runEmu(t, Snapshot{Topology: topo})
	mdl, err := Run(Snapshot{Topology: topo}, Options{Backend: BackendModel})
	if err != nil {
		t.Fatal(err)
	}
	// Emulation: full pairwise loopback reachability.
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			src := fmt.Sprintf("r%d", i)
			dst := addr(fmt.Sprintf("2.2.2.%d", j))
			if !emu.Network.Reachable(src, dst) {
				t.Errorf("emulation: %s cannot reach %v", src, dst)
			}
		}
	}
	// Model: r2 must NOT reach r1's loopback (the paper's reported hole).
	if mdl.Network.Reachable("r2", addr("2.2.2.1")) {
		t.Error("model backend unexpectedly has r2 -> r1 reachability")
	}
	// Cross-backend differential must be non-empty and include that flow.
	diffs := Differential(mdl, emu)
	if len(diffs) == 0 {
		t.Fatal("cross-backend differential found no divergence")
	}
	found := false
	for _, d := range diffs {
		if d.Src == "r2" && d.Dst == addr("2.2.2.1") {
			found = true
			if strings.Contains(d.Before, "Delivered") || !strings.Contains(d.After, "Delivered") {
				t.Errorf("diff direction wrong: %v", d)
			}
		}
	}
	if !found {
		t.Errorf("r2 -> 2.2.2.1 divergence not reported; diffs: %v", diffs)
	}
	// The model's coverage must show the Fig. 3 issues on every router.
	for name, cov := range mdl.Coverage {
		if cov.UnrecognizedCount() == 0 {
			t.Errorf("%s: no unrecognized lines (isis enable should be rejected)", name)
		}
	}
}

func TestGNMIExtractionMatchesInProcess(t *testing.T) {
	topo := testnet.Fig3()
	direct := runEmu(t, Snapshot{Topology: topo})
	viaGNMI, err := Run(Snapshot{Topology: topo}, Options{Backend: BackendEmulation, UseGNMI: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range direct.AFTs {
		b, ok := viaGNMI.AFTs[name]
		if !ok {
			t.Fatalf("gNMI extraction missing %s", name)
		}
		if !a.Equal(b) {
			t.Errorf("%s: gNMI-extracted AFT differs from in-process", name)
		}
	}
	if diffs := Differential(direct, viaGNMI); len(diffs) != 0 {
		t.Errorf("extraction paths disagree: %v", diffs)
	}
}

func TestInjectedFeedsThroughPipeline(t *testing.T) {
	topo := testnet.WAN(6, false)
	gen := routegen.New(7)
	feeds := gen.FullTable(64700, 2000)
	res := runEmu(t, Snapshot{
		Topology: topo,
		Feeds: []InjectedFeed{{
			Router: topo.Nodes[0].Name, PeerAddr: addr("198.51.100.1"), PeerAS: 64700, Feeds: feeds,
		}},
	})
	counts := res.RouteCount()
	if counts["ebgp"] < 2000 {
		t.Errorf("route counts = %v, want ≥2000 eBGP routes on the edge", counts)
	}
	// The injected routes must appear in the edge router's AFT and be
	// classified ExitsNetwork when traced (they exit via the injector).
	somePrefix := feeds[0].Prefixes[0]
	tr := res.Network.Trace(topo.Nodes[0].Name, somePrefix.Addr())
	if len(tr.Paths) == 0 || tr.Paths[0].Disposition != verify.ExitsNetwork {
		t.Errorf("trace of injected prefix = %+v", tr.Paths)
	}
}

func TestDownLinksContext(t *testing.T) {
	topo := testnet.Fig3()
	baseline := runEmu(t, Snapshot{Topology: topo})
	cut := runEmu(t, Snapshot{
		Topology:  testnet.Fig3(),
		DownLinks: []topology.Endpoint{{Node: "r2", Interface: "Ethernet2"}},
	})
	if !baseline.Network.Reachable("r1", addr("2.2.2.3")) {
		t.Fatal("baseline broken")
	}
	if cut.Network.Reachable("r1", addr("2.2.2.3")) {
		t.Error("link-down context ignored")
	}
	diffs := Differential(baseline, cut)
	if len(diffs) == 0 {
		t.Error("differential across link-cut contexts empty")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Snapshot{}, Options{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Run(Snapshot{Topology: testnet.Fig3()}, Options{Backend: Backend(9)}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := Run(Snapshot{
		Topology: testnet.Fig3(),
		Feeds:    []InjectedFeed{{Router: "r1"}},
	}, Options{Backend: BackendModel}); err == nil {
		t.Error("model backend accepted feeds")
	}
}

func TestBackendString(t *testing.T) {
	if BackendEmulation.String() != "emulation" || BackendModel.String() != "model" {
		t.Error("Backend.String wrong")
	}
}

// TestChaosThroughPipeline runs a builtin scenario end to end through
// core.Run: the report must land on the Result and the scenario seed must
// override the default emulation seed.
func TestChaosThroughPipeline(t *testing.T) {
	sc, ok := chaos.Builtin("session-reset")
	if !ok {
		t.Fatal("no session-reset builtin")
	}
	res, err := Run(Snapshot{Topology: testnet.Fig2()}, Options{
		Backend: BackendEmulation,
		Chaos:   sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil {
		t.Fatal("no chaos report on result")
	}
	if res.Chaos.Seed != sc.Seed {
		t.Errorf("report seed = %d, want scenario seed %d", res.Chaos.Seed, sc.Seed)
	}
	if len(res.Chaos.Verdicts) != len(sc.Faults) {
		t.Errorf("verdicts = %d, faults = %d", len(res.Chaos.Verdicts), len(sc.Faults))
	}
	if !res.Chaos.Recovered {
		t.Errorf("session reset not recovered: %s", res.Chaos)
	}
	// The post-chaos network is what gets verified: still fully meshed.
	if !res.Network.Reachable("r1", testnet.Fig2Loopback("r4")) {
		t.Error("post-chaos network lost reachability")
	}
}

// TestQuarantineThroughPipeline runs the corrupt-config builtin end to end:
// the quarantined router must land on both the chaos verdict and the
// Result, and the run must complete with the rest of the network verified
// around the contained device's empty table.
func TestQuarantineThroughPipeline(t *testing.T) {
	sc, ok := chaos.Builtin("corrupt-config")
	if !ok {
		t.Fatal("no corrupt-config builtin")
	}
	res, err := Run(Snapshot{Topology: testnet.Fig2()}, Options{
		Backend: BackendEmulation,
		Chaos:   sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QuarantinedRouters) != 1 || res.QuarantinedRouters[0] != "r4" {
		t.Fatalf("QuarantinedRouters = %v, want [r4]", res.QuarantinedRouters)
	}
	v := res.Chaos.Verdicts[0]
	if len(v.Quarantined) != 1 || v.Quarantined[0] != "r4" {
		t.Errorf("verdict quarantined = %v", v.Quarantined)
	}
	// The contained router contributes an empty table; everyone else still
	// forwards among themselves.
	if a := res.AFTs["r4"]; a == nil || len(a.IPv4Entries) != 0 {
		t.Errorf("quarantined r4 AFT not empty: %v", a)
	}
	if !res.Network.Reachable("r1", testnet.Fig2Loopback("r2")) {
		t.Error("healthy routers lost reachability after quarantine")
	}
	if res.Network.Reachable("r1", testnet.Fig2Loopback("r4")) {
		t.Error("quarantined router still reachable")
	}
}

// TestPullAFTsQuarantinesHostilePayload exercises the extraction containment
// boundary directly: a device whose AFT payload fails to decode (a
// *diag.Error) is quarantined and replaced by an empty table, while a
// transport error still aborts the extraction.
func TestPullAFTsQuarantinesHostilePayload(t *testing.T) {
	res := runEmu(t, Snapshot{Topology: testnet.Fig3()})
	em := res.Emulator

	hostile := func(name string) (*aft.AFT, error) {
		if name == "r2" {
			return nil, diag.Wrap(fmt.Errorf("invalid character 'x'"), diag.SevFatal, "gnmi", name)
		}
		return &aft.AFT{Device: name}, nil
	}
	afts, err := pullAFTs(em, hostile)
	if err != nil {
		t.Fatalf("hostile payload aborted extraction: %v", err)
	}
	if got := em.QuarantinedRouters(); len(got) != 1 || got[0] != "r2" {
		t.Fatalf("QuarantinedRouters = %v, want [r2]", got)
	}
	if a := afts["r2"]; a == nil || len(a.IPv4Entries) != 0 {
		t.Errorf("hostile device's AFT not replaced by empty table: %v", afts["r2"])
	}
	if reason, ok := em.QuarantineReason("r2"); !ok || !strings.Contains(reason, "gnmi") {
		t.Errorf("quarantine reason = %q, %v", reason, ok)
	}

	transport := func(name string) (*aft.AFT, error) {
		return nil, fmt.Errorf("gnmi: recv: connection reset")
	}
	if _, err := pullAFTs(em, transport); err == nil {
		t.Error("transport error did not abort extraction")
	}
}

func TestChaosRejectedByModelBackend(t *testing.T) {
	sc, _ := chaos.Builtin("session-reset")
	if _, err := Run(Snapshot{Topology: testnet.Fig2()}, Options{
		Backend: BackendModel,
		Chaos:   sc,
	}); err == nil {
		t.Error("model backend accepted a chaos scenario")
	}
}

// TestDegradedRun forces a timeout shorter than Fig2's convergence: strict
// mode fails, degraded mode returns partial AFTs with stragglers named.
func TestDegradedRun(t *testing.T) {
	snap := Snapshot{Topology: testnet.Fig2()}
	short := Options{Backend: BackendEmulation, ConvergenceHold: 30 * time.Second, Timeout: 100 * time.Second}
	if _, err := Run(snap, short); err == nil {
		t.Fatal("strict run converged within 100s — timeout no longer forces degradation")
	}
	short.Degraded = true
	res, err := Run(snap, short)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if len(res.DegradedRouters) == 0 {
		t.Error("degraded run named no stragglers")
	}
	if len(res.AFTs) != 6 {
		t.Errorf("partial extraction returned %d AFTs", len(res.AFTs))
	}
}
