package core

import (
	"net/netip"
	"testing"

	"mfv/internal/testnet"
	"mfv/internal/topology"
)

func TestExploreSingleLinkFailuresOnRing(t *testing.T) {
	// A ring survives every single cut: no finding may lose flows.
	topo := isisFabric(topology.Ring(4, topology.VendorEOS))
	findings, err := ExploreSingleLinkFailures(Snapshot{Topology: topo}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != len(topo.Links) {
		t.Fatalf("findings = %d, want one per link (%d)", len(findings), len(topo.Links))
	}
	ok, violations := SurvivesAnySingleLinkCut(findings)
	if !ok {
		t.Errorf("ring reported as not cut-tolerant: %v", violations)
	}
}

func TestExploreSingleLinkFailuresOnLine(t *testing.T) {
	// A line survives NO cut: every finding must lose flows.
	topo := isisFabric(topology.Line(3, topology.VendorEOS))
	findings, err := ExploreSingleLinkFailures(Snapshot{Topology: topo}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, violations := SurvivesAnySingleLinkCut(findings)
	if ok {
		t.Fatal("line topology reported cut-tolerant")
	}
	if len(violations) != len(topo.Links) {
		t.Errorf("violating cuts = %d, want %d (every line link is critical)",
			len(violations), len(topo.Links))
	}
	for _, f := range findings {
		if f.LostFlows == 0 {
			t.Errorf("cut %v lost no flows on a line", f.Cut)
		}
	}
}

func TestExploreOrderingsAgreeOnDeterministicNetwork(t *testing.T) {
	// The Fig. 2 network's decision process is fully determined by the
	// config (no timing-dependent tie-breaks), so different event orderings
	// must converge to identical dataplanes.
	rep, err := ExploreOrderings(Snapshot{Topology: testnet.Fig2()}, Options{}, []int64{1, 7, 99})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Agree {
		t.Errorf("orderings diverged on: %v", rep.DivergentDevices)
	}
	if rep.Seeds != 3 || len(rep.ConvergedAt) != 3 {
		t.Errorf("report = %+v", rep)
	}
}

func TestExploreOrderingsValidation(t *testing.T) {
	if _, err := ExploreOrderings(Snapshot{Topology: testnet.Fig3()}, Options{}, []int64{1}); err == nil {
		t.Error("single seed accepted")
	}
	if _, err := ExploreSingleLinkFailures(Snapshot{}, Options{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestInvariants(t *testing.T) {
	res := runEmu(t, Snapshot{Topology: testnet.Fig3()})
	var loopbacks []netip.Addr
	for i := 1; i <= 3; i++ {
		loopbacks = append(loopbacks, netip.AddrFrom4([4]byte{2, 2, 2, byte(i)}))
	}
	violations := CheckInvariants(res, []Invariant{
		AllLoopbacksReachable(loopbacks),
		NoForwardingLoops(),
	})
	if len(violations) != 0 {
		t.Errorf("healthy network violated: %v", violations)
	}
	// Cut the line: the reachability invariant must fire, the loop one not.
	cut := runEmu(t, Snapshot{
		Topology:  testnet.Fig3(),
		DownLinks: []topology.Endpoint{{Node: "r1", Interface: "Ethernet1"}},
	})
	violations = CheckInvariants(cut, []Invariant{
		AllLoopbacksReachable(loopbacks),
		NoForwardingLoops(),
	})
	if _, ok := violations["all-loopbacks-reachable"]; !ok {
		t.Error("reachability invariant did not fire after cut")
	}
	if _, ok := violations["no-forwarding-loops"]; ok {
		t.Error("loop invariant fired spuriously")
	}
}

func TestSeedChangesAreIsolated(t *testing.T) {
	// Different seeds shift event timing; convergence times may differ but
	// both runs must satisfy the startup window.
	for _, seed := range []int64{1, 2} {
		res, err := Run(Snapshot{Topology: testnet.Fig3()}, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.StartupAt == 0 {
			t.Errorf("seed %d: startup not recorded", seed)
		}
	}
}
