package core

import (
	"fmt"
	"strings"
	"testing"

	"mfv/internal/chaos"
	"mfv/internal/topology"
)

// multiRegionFabric is a 3x4 multi-region IS-IS fabric (the scale shape at
// test size). Regenerated per call because isisFabric mutates node configs.
func multiRegionFabric() *topology.Topology {
	return isisFabric(topology.MultiRegion(3, 4, topology.VendorEOS))
}

// TestShardedMatchesUnsharded: the region-sharded pipeline must produce the
// identical dataplane and verification outcomes as the single-emulator run.
func TestShardedMatchesUnsharded(t *testing.T) {
	whole := runEmu(t, Snapshot{Topology: multiRegionFabric()})
	sharded, err := Run(Snapshot{Topology: multiRegionFabric()},
		Options{Backend: BackendEmulation, ShardRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Emulator != nil {
		t.Error("sharded run must not retain an emulator")
	}
	if len(sharded.AFTs) != len(whole.AFTs) {
		t.Fatalf("sharded extracted %d AFTs, whole run %d", len(sharded.AFTs), len(whole.AFTs))
	}
	for name, a := range whole.AFTs {
		b, ok := sharded.AFTs[name]
		if !ok {
			t.Fatalf("sharded run missing AFT for %s", name)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("AFT fingerprint mismatch for %s", name)
		}
	}
	if diffs := Differential(whole, sharded); len(diffs) != 0 {
		t.Errorf("sharded outcomes diverge on %d flows: %v", len(diffs), diffs)
	}
	// RouteCount must work off AFT origins when Emulator is nil.
	counts := sharded.RouteCount()
	if counts["isis"] == 0 || counts["connected"] == 0 {
		t.Errorf("route counts = %v", counts)
	}
}

// TestShardedRegionIsolation: reachability holds within a region and never
// across regions (no link crosses the cut).
func TestShardedRegionIsolation(t *testing.T) {
	topo := multiRegionFabric()
	res, err := Run(Snapshot{Topology: topo}, Options{Backend: BackendEmulation, ShardRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	regions := topo.Regions()
	loopback := map[string]int{} // node name -> index into topo.Nodes
	for i, n := range topo.Nodes {
		loopback[n.Name] = i
	}
	for ri, region := range regions {
		for _, src := range region {
			for rj, other := range regions {
				for _, dstName := range other {
					dst := loopbackOf(loopback[dstName])
					got := res.Network.Reachable(src, dst)
					if want := ri == rj; got != want {
						t.Errorf("Reachable(%s, %v [%s]) = %v, want %v", src, dst, dstName, got, want)
					}
				}
			}
		}
	}
}

// TestShardedDownLinksRouteToRegion: a what-if link failure inside one
// region must converge around it without touching the others.
func TestShardedDownLinksRouteToRegion(t *testing.T) {
	res, err := Run(Snapshot{
		Topology:  multiRegionFabric(),
		DownLinks: []topology.Endpoint{{Node: "g2n1", Interface: "Ethernet1"}},
	}, Options{Backend: BackendEmulation, ShardRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	// A 4-ring absorbs a single cut: everything stays reachable.
	whole := runEmu(t, Snapshot{Topology: multiRegionFabric()})
	if diffs := Differential(whole, res); len(diffs) != 0 {
		t.Errorf("single in-region cut changed outcomes: %v", diffs)
	}
}

// TestShardedRejectsIncompatibleModes: chaos and gNMI need one emulator
// spanning the network.
func TestShardedRejectsIncompatibleModes(t *testing.T) {
	snap := Snapshot{Topology: multiRegionFabric()}
	if _, err := Run(snap, Options{Backend: BackendEmulation, ShardRegions: true,
		Chaos: &chaos.Scenario{}}); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("chaos + sharding not rejected: %v", err)
	}
	if _, err := Run(snap, Options{Backend: BackendEmulation, ShardRegions: true,
		UseGNMI: true}); err == nil || !strings.Contains(err.Error(), "gNMI") {
		t.Errorf("gNMI + sharding not rejected: %v", err)
	}
}

// TestShardedSingleRegionFallsBack: a connected topology with ShardRegions
// set runs the ordinary single-emulator path.
func TestShardedSingleRegionFallsBack(t *testing.T) {
	topo := isisFabric(topology.Ring(4, topology.VendorEOS))
	res, err := Run(Snapshot{Topology: topo}, Options{Backend: BackendEmulation, ShardRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Emulator == nil {
		t.Error("single-region fallback should retain the emulator")
	}
	requireLoopbackMesh(t, res, topo)
}

// TestShardedDeterministic: same snapshot, same fingerprints — scheduling
// order of the region workers must not leak into the dataplane.
func TestShardedDeterministic(t *testing.T) {
	fingerprint := func() string {
		res, err := Run(Snapshot{Topology: multiRegionFabric()},
			Options{Backend: BackendEmulation, ShardRegions: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, name := range res.Network.Devices() {
			fmt.Fprintf(&b, "%s=%s;", name, res.AFTs[name].Fingerprint())
		}
		fmt.Fprintf(&b, "conv=%v;up=%v", res.ConvergedAt, res.StartupAt)
		return b.String()
	}
	if fingerprint() != fingerprint() {
		t.Error("identical sharded snapshots produced different dataplanes or timing")
	}
}
