package core

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"mfv/internal/confgen"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// isisFabric generates IS-IS configs for every node of an arbitrary
// topology (loopback 1.1.<i>/32 + per-link /31s).
func isisFabric(topo *topology.Topology) *topology.Topology {
	addrs := map[topology.Endpoint]netip.Prefix{}
	for idx, l := range topo.Links {
		base := netip.AddrFrom4([4]byte{10, byte(idx >> 8), byte(idx & 0xff), 0})
		addrs[l.A] = netip.PrefixFrom(base, 31)
		addrs[l.Z] = netip.PrefixFrom(base.Next(), 31)
	}
	for i := range topo.Nodes {
		node := &topo.Nodes[i]
		num := i + 1
		spec := confgen.Spec{
			Hostname: node.Name,
			NET:      fmt.Sprintf("49.0001.0000.0000.%04d.00", num),
			Interfaces: []confgen.Iface{{
				Name: "Loopback0",
				Addr: netip.PrefixFrom(netip.AddrFrom4([4]byte{1, 1, byte(num / 250), byte(num % 250)}), 32),
				ISIS: true,
			}},
		}
		for _, l := range topo.NodeLinks(node.Name) {
			ep := l.A
			if ep.Node != node.Name {
				ep = l.Z
			}
			spec.Interfaces = append(spec.Interfaces, confgen.Iface{
				Name: ep.Interface, Addr: addrs[ep], ISIS: true,
			})
		}
		node.Config = confgen.EOS(spec)
	}
	return topo
}

func loopbackOf(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{1, 1, byte((i + 1) / 250), byte((i + 1) % 250)})
}

// requireLoopbackMesh asserts every node reaches every loopback.
func requireLoopbackMesh(t *testing.T, res *Result, topo *topology.Topology) {
	t.Helper()
	for _, src := range topo.NodeNames() {
		for i := range topo.Nodes {
			dst := loopbackOf(i)
			if !res.Network.Reachable(src, dst) {
				t.Errorf("%s cannot reach %v (%s)", src, dst, topo.Nodes[i].Name)
			}
		}
	}
}

func TestPipelineOverRing(t *testing.T) {
	topo := isisFabric(topology.Ring(5, topology.VendorEOS))
	res := runEmu(t, Snapshot{Topology: topo})
	requireLoopbackMesh(t, res, topo)
	// A ring survives any single link cut: verify with a what-if snapshot.
	cut := runEmu(t, Snapshot{
		Topology:  isisFabric(topology.Ring(5, topology.VendorEOS)),
		DownLinks: []topology.Endpoint{{Node: "r1", Interface: "Ethernet1"}},
	})
	requireLoopbackMesh(t, cut, topo)
	// Differential reachability compares OUTCOMES, and a ring absorbs a
	// single cut — so the differential must be empty even though paths
	// changed. The path change itself shows up in traces.
	if diffs := Differential(res, cut); len(diffs) != 0 {
		t.Errorf("ring cut changed outcomes: %v", diffs)
	}
	dst := loopbackOf(1) // r2's loopback
	before := res.Network.Trace("r1", dst).Paths[0]
	after := cut.Network.Trace("r1", dst).Paths[0]
	if len(before.Hops) == len(after.Hops) {
		t.Errorf("expected the cut to lengthen r1->r2: before %v, after %v", before, after)
	}
}

func TestPipelineOverClos(t *testing.T) {
	topo := isisFabric(topology.Clos(2, 4, topology.VendorEOS))
	res := runEmu(t, Snapshot{Topology: topo})
	requireLoopbackMesh(t, res, topo)
	// Leaf-to-leaf traffic must ECMP across both spines.
	leafIdx := -1
	var dstLeafLoopback netip.Addr
	for i, n := range topo.Nodes {
		if n.Name == "leaf1" {
			leafIdx = i
		}
		if n.Name == "leaf4" {
			dstLeafLoopback = loopbackOf(i)
		}
	}
	if leafIdx < 0 {
		t.Fatal("fixture drift")
	}
	tr := res.Network.Trace("leaf1", dstLeafLoopback)
	if len(tr.Paths) != 2 {
		t.Errorf("leaf1->leaf4 paths = %d, want 2-way ECMP across spines:\n%v", len(tr.Paths), tr.Paths)
	}
	for _, p := range tr.Paths {
		if p.Disposition != verify.Delivered {
			t.Errorf("ECMP branch not delivered: %v", p)
		}
		if len(p.Hops) != 3 { // leaf -> spine -> leaf
			t.Errorf("path length = %d hops, want 3: %v", len(p.Hops), p)
		}
	}
}

func TestPipelineNoLoopsNoBlackHolesOnHealthyFabric(t *testing.T) {
	topo := isisFabric(topology.Clos(2, 3, topology.VendorEOS))
	res := runEmu(t, Snapshot{Topology: topo})
	if loops := res.Network.DetectLoops(); len(loops) != 0 {
		t.Errorf("loops on healthy fabric: %+v", loops)
	}
	// Black holes exist only for unrouted space (NoRoute), never Dropped.
	for _, h := range res.Network.DetectBlackHoles() {
		if h.Disposition == verify.Dropped {
			t.Errorf("explicit drop on healthy fabric: %+v", h)
		}
	}
}

func TestConvergenceHoldTooShortStillCorrectEventually(t *testing.T) {
	// A 2-second hold may declare convergence during a quiet spell; the
	// pipeline must still produce a consistent (validated) dataplane, and a
	// longer hold must produce the same final answer.
	topo := isisFabric(topology.Line(4, topology.VendorEOS))
	short, err := Run(Snapshot{Topology: topo}, Options{ConvergenceHold: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	long := runEmu(t, Snapshot{Topology: isisFabric(topology.Line(4, topology.VendorEOS))})
	for name, a := range short.AFTs {
		if err := a.Validate(); err != nil {
			t.Errorf("short-hold AFT %s invalid: %v", name, err)
		}
	}
	// With this IGP-only fabric even a short hold lands on the same final
	// dataplane (adjacency bring-up is bursty, not trickling).
	if diffs := Differential(short, long); len(diffs) != 0 {
		t.Logf("short hold diverged on %d flows (acceptable for tiny holds): %v", len(diffs), diffs)
	}
}

func TestWarmApplyThroughPipeline(t *testing.T) {
	topo := isisFabric(topology.Line(3, topology.VendorEOS))
	res := runEmu(t, Snapshot{Topology: topo})
	requireLoopbackMesh(t, res, topo)
	// Shut r3's loopback via a config push and watch it disappear network-wide.
	node, _ := res.Emulator.Router("r3")
	newCfg := strings.Replace(node.Device().Hostname, "r3", "r3", 1) // placate linters
	_ = newCfg
	topoNode, _ := topo.Node("r3")
	updated := strings.Replace(topoNode.Config,
		"interface Loopback0\n   ip address 1.1.0.3/32\n   isis enable default\n   isis passive-interface default\n",
		"", 1)
	if updated == topoNode.Config {
		t.Fatalf("fixture drift:\n%s", topoNode.Config)
	}
	if err := res.Emulator.ApplyConfig("r3", updated); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Emulator.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	r1, _ := res.Emulator.Router("r1")
	if _, ok := r1.RIB().Lookup(netip.MustParseAddr("1.1.0.3")); ok {
		t.Error("removed loopback still routed network-wide")
	}
	// r2's transfer nets still reachable.
	if _, ok := r1.RIB().Lookup(netip.MustParseAddr("1.1.0.2")); !ok {
		t.Error("unrelated routes lost after config push")
	}
}

func TestGNMIRouteSummaryThroughPipeline(t *testing.T) {
	res, err := Run(Snapshot{Topology: isisFabric(topology.Line(3, topology.VendorEOS))},
		Options{UseGNMI: true})
	if err != nil {
		t.Fatal(err)
	}
	// AFT origins must reflect the protocol mix.
	counts := res.RouteCount()
	if counts["isis"] == 0 || counts["connected"] == 0 || counts["local"] == 0 {
		t.Errorf("route counts = %v", counts)
	}
}

func TestDeterministicRuns(t *testing.T) {
	fingerprint := func() string {
		res := runEmu(t, Snapshot{Topology: isisFabric(topology.Ring(4, topology.VendorEOS))})
		var b strings.Builder
		for _, name := range res.Network.Devices() {
			fmt.Fprintf(&b, "%s=%s;", name, res.AFTs[name].Fingerprint())
		}
		fmt.Fprintf(&b, "conv=%v", res.ConvergedAt)
		return b.String()
	}
	if fingerprint() != fingerprint() {
		t.Error("identical snapshots produced different dataplanes or timing")
	}
}
