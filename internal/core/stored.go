package core

import (
	"fmt"

	"mfv/internal/store"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// CaptureSnapshot packages a completed emulation run into a durable
// store.Snapshot: the topology (configs embedded), every device's AFT, the
// per-router FIB generation stamps, the emulation seed, and the virtual
// timings. The snapshot is self-contained — RunFromSnapshot rebuilds the
// verification network from it with no emulation and no topology file.
func CaptureSnapshot(topo *topology.Topology, res *Result) (*store.Snapshot, error) {
	if res == nil || res.Backend != BackendEmulation {
		return nil, fmt.Errorf("core: snapshots capture emulation runs only (got backend %v)", res.Backend)
	}
	if topo == nil {
		return nil, fmt.Errorf("core: snapshot capture needs the topology")
	}
	topoJSON, err := topo.Marshal()
	if err != nil {
		return nil, fmt.Errorf("core: marshaling topology for snapshot: %w", err)
	}
	var seed int64
	var stamps map[string]store.Stamp
	if em := res.Emulator; em != nil {
		seed = em.Sim().Seed()
		gens := em.FIBGenerations()
		stamps = make(map[string]store.Stamp, len(gens))
		for name, g := range gens {
			stamps[name] = store.Stamp{Epoch: g.Epoch, Gen: g.Gen}
		}
	}
	// Sharded runs keep no emulator; seed 0 and nil stamps record that the
	// capture has no single-emulation provenance.
	return store.New(topoJSON, res.AFTs, stamps, seed, res.StartupAt, res.ConvergedAt)
}

// RunFromSnapshot rebuilds a verification-ready Result from a stored
// snapshot, skipping emulation and convergence entirely. The restored Result
// has no live Emulator, so it answers reachability/differential queries and
// seeds sweeps (which re-converge their own baseline and gate it on the
// snapshot's dataplane hash) but cannot host chaos injection or gNMI
// extraction — those options are rejected up front.
func RunFromSnapshot(s *store.Snapshot, opts Options) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if opts.Chaos != nil {
		return nil, fmt.Errorf("core: chaos scenarios need a live emulation, not a restored snapshot")
	}
	if opts.UseGNMI {
		return nil, fmt.Errorf("core: gNMI extraction needs a live emulation, not a restored snapshot")
	}
	if opts.ShardRegions {
		return nil, fmt.Errorf("core: -sharded does not apply to a restored snapshot")
	}
	topo, err := s.Topology()
	if err != nil {
		return nil, err
	}
	afts, err := s.AFTs()
	if err != nil {
		return nil, err
	}
	sp := opts.Obs.StartPhase("restore")
	network, err := verify.NewNetwork(topo, afts)
	sp.End()
	if err != nil {
		return nil, err
	}
	network.SetObserver(opts.Obs)
	network.SetWorkers(opts.Workers)
	return &Result{
		Backend:     BackendSnapshot,
		AFTs:        afts,
		Network:     network,
		StartupAt:   s.StartupAt,
		ConvergedAt: s.ConvergedAt,
	}, nil
}
