// Package core implements the paper's primary contribution: the model-free
// verification pipeline. A Snapshot (configs + topology + external route
// context) is run through either backend —
//
//   - BackendEmulation: full control-plane emulation under the KNE-like
//     orchestrator until the dataplane stabilizes, then AFT extraction
//     (in-process or over the gNMI service), or
//   - BackendModel: the partial-parser + reference-model baseline
//     (internal/model), standing in for Batfish's native IBDP path —
//
// and the resulting dataplanes feed the verification engine
// (internal/verify). Because both backends emit the same AFT format, the
// differential-reachability question runs unchanged across backends, which
// is how the paper surfaces model bugs (experiment E3).
package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"time"

	"mfv/internal/aft"
	"mfv/internal/chaos"
	"mfv/internal/diag"
	"mfv/internal/gnmi"
	"mfv/internal/kne"
	"mfv/internal/model"
	"mfv/internal/obs"
	"mfv/internal/routegen"
	"mfv/internal/sim"
	"mfv/internal/topology"
	"mfv/internal/verify"
	"mfv/internal/vrouter"
)

// Backend selects how the dataplane is produced.
type Backend int

// Backends.
const (
	// BackendEmulation is the model-free path: real protocol engines under
	// emulation.
	BackendEmulation Backend = iota
	// BackendModel is the reference-model baseline (Batfish-analogue).
	BackendModel
	// BackendSnapshot restores a previously captured converged dataplane
	// from a durable store.Snapshot — no control-plane emulation, no
	// convergence wait, just the stored AFTs rebuilt into a verification
	// network (RunFromSnapshot).
	BackendSnapshot
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendModel:
		return "model"
	case BackendSnapshot:
		return "snapshot"
	default:
		return "emulation"
	}
}

// InjectedFeed attaches an external BGP peer feeding routes into the
// snapshot (the paper's production-route injection).
type InjectedFeed struct {
	// Router is the device that has the peer configured.
	Router string
	// PeerAddr is the external peer's address (must match a neighbor
	// statement on Router).
	PeerAddr netip.Addr
	// PeerAS is the external AS.
	PeerAS uint32
	// Feeds are the announcements.
	Feeds []routegen.Feed
}

// Snapshot is one verification input: the paper's "configs + topology +
// context".
type Snapshot struct {
	Topology *topology.Topology
	Feeds    []InjectedFeed
	// DownLinks fails the named links before convergence (what-if context).
	DownLinks []topology.Endpoint
}

// Options tunes a pipeline run.
type Options struct {
	Backend Backend
	// ConvergenceHold is how long the dataplane must stay unchanged to be
	// considered converged (default 30 s of virtual time).
	ConvergenceHold time.Duration
	// Timeout bounds the virtual-time wait for convergence (default 2 h).
	Timeout time.Duration
	// Seed fixes the emulation's randomness.
	Seed int64
	// UseGNMI extracts AFTs over the TCP gNMI service instead of reading
	// them in-process, exercising the full management-plane boundary.
	UseGNMI bool
	// Retry governs gNMI extraction retries; the zero value uses
	// gnmi.DefaultRetry. Only consulted when UseGNMI is set.
	Retry gnmi.RetryPolicy
	// Obs collects trace events, metrics, and phase timings from the whole
	// pipeline. Nil disables observability.
	Obs *obs.Observer
	// Chaos, when set, executes the fault scenario after initial
	// convergence and verifies reachability across every fault (emulation
	// backend only). A non-zero scenario Seed overrides Seed.
	Chaos *chaos.Scenario
	// Degraded converges in graceful-degradation mode: if the timeout
	// expires, the run proceeds with partial AFTs and the straggler
	// devices recorded in Result.DegradedRouters instead of failing.
	Degraded bool
	// Workers sizes the worker pool the batch verification queries
	// (differential, all-pairs, loop and black-hole sweeps) shard flows
	// across. Zero selects runtime.GOMAXPROCS; one forces sequential
	// evaluation. Output is byte-identical at any setting.
	Workers int
	// Ctx, when non-nil, bounds the run in wall-clock time: convergence
	// waits stop advancing virtual time once it expires, and a chaos
	// scenario returns a partial, Interrupted report.
	Ctx context.Context
	// ShardRegions runs the emulation backend region-by-region: each
	// connected component of the topology (topology.Regions) gets its own
	// emulator with a deterministically derived seed, the regions converge
	// in parallel, and each finished region's AFTs stream into the
	// accumulating verification snapshot. Because no link crosses a region,
	// the per-region fixed points are identical to the whole-network run's.
	// Incompatible with Chaos and UseGNMI (both need one emulator spanning
	// the network); Result.Emulator is nil on sharded runs.
	ShardRegions bool
}

func (o *Options) fill() {
	if o.ConvergenceHold == 0 {
		o.ConvergenceHold = 30 * time.Second
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Hour
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Chaos != nil && o.Chaos.Seed != 0 {
		o.Seed = o.Chaos.Seed
	}
}

// Result is a completed pipeline run.
type Result struct {
	Backend Backend
	// AFTs is the extracted dataplane, per device.
	AFTs map[string]*aft.AFT
	// Network is the verification view over the AFTs.
	Network *verify.Network
	// StartupAt is the virtual time when all pods were Running (emulation
	// backend only).
	StartupAt time.Duration
	// ConvergedAt is the virtual time of the last dataplane change
	// (emulation backend only).
	ConvergedAt time.Duration
	// Coverage is the parsing coverage report (model backend only — the
	// emulation backend's vendor parsers accept the full dialect).
	Coverage map[string]model.Coverage
	// Emulator stays alive for poking at routers (emulation backend only).
	Emulator *kne.Emulator
	// Chaos is the fault-injection report when Options.Chaos was set.
	Chaos *chaos.Report
	// DegradedRouters lists devices that had not settled when a degraded
	// run's timeout expired; their AFTs may be mid-churn.
	DegradedRouters []string
	// QuarantinedRouters lists devices contained after hostile input — a
	// corrupted config, an undecodable AFT, or a handler panic caught by the
	// per-router recover boundary. A quarantined router contributes an empty
	// AFT; the rest of the network is verified around it.
	QuarantinedRouters []string
}

// Run executes the pipeline on a snapshot.
func Run(snap Snapshot, opts Options) (*Result, error) {
	opts.fill()
	if snap.Topology == nil {
		return nil, fmt.Errorf("core: snapshot has no topology")
	}
	switch opts.Backend {
	case BackendModel:
		return runModel(snap, opts)
	case BackendEmulation:
		return runEmulation(snap, opts)
	default:
		return nil, fmt.Errorf("core: unknown backend %d", opts.Backend)
	}
}

func runModel(snap Snapshot, opts Options) (*Result, error) {
	if opts.Chaos != nil {
		// Fault injection needs live protocol engines to react; the static
		// model computes one fixed point and has nothing to perturb.
		return nil, fmt.Errorf("core: the model backend does not support chaos scenarios")
	}
	if len(snap.Feeds) > 0 {
		// The reference model has no route-injection path in this
		// reproduction — one more coverage limitation of the baseline.
		return nil, fmt.Errorf("core: the model backend does not support injected feeds")
	}
	sp := opts.Obs.StartPhase("parse")
	res, err := model.Run(snap.Topology)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = opts.Obs.StartPhase("verify")
	network, err := verify.NewNetwork(snap.Topology, res.AFTs)
	sp.End()
	if err != nil {
		return nil, err
	}
	network.SetObserver(opts.Obs)
	network.SetWorkers(opts.Workers)
	return &Result{
		Backend:  BackendModel,
		AFTs:     res.AFTs,
		Network:  network,
		Coverage: res.Coverage,
	}, nil
}

func runEmulation(snap Snapshot, opts Options) (*Result, error) {
	if opts.ShardRegions {
		return runEmulationSharded(snap, opts)
	}
	spare := 0
	if opts.Chaos != nil {
		spare = opts.Chaos.SpareNodes
	}
	sp := opts.Obs.StartPhase("parse")
	em, err := kne.New(kne.Config{Topology: snap.Topology, Sim: sim.New(opts.Seed), Obs: opts.Obs, SpareNodes: spare, Ctx: opts.Ctx})
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = opts.Obs.StartPhase("schedule")
	for _, f := range snap.Feeds {
		inj, err := em.AddInjector(f.Router, f.PeerAddr, f.PeerAS)
		if err != nil {
			return nil, err
		}
		for _, feed := range f.Feeds {
			inj.Announce(feed.Prefixes, feed.Attrs)
		}
	}
	if err := em.Start(); err != nil {
		return nil, err
	}
	for _, ep := range snap.DownLinks {
		if err := em.SetLinkDown(ep); err != nil {
			return nil, err
		}
	}
	sp.End()
	// Boot and converge phases are recorded inside RunUntilConverged, where
	// the startup/churn boundary is actually observed.
	var convergedAt time.Duration
	var stragglers []string
	if opts.Degraded {
		conv, cerr := em.RunUntilConvergedDegraded(opts.ConvergenceHold, opts.Timeout)
		if cerr != nil {
			return nil, cerr
		}
		convergedAt = conv.ConvergedAt
		stragglers = conv.Stragglers
	} else {
		convergedAt, err = em.RunUntilConverged(opts.ConvergenceHold, opts.Timeout)
		if err != nil {
			return nil, err
		}
	}
	var chaosRep *chaos.Report
	if opts.Chaos != nil {
		sp = opts.Obs.StartPhase("chaos")
		chaosRep, err = chaos.NewEngine(em, snap.Topology, opts.Obs).WithWorkers(opts.Workers).WithContext(opts.Ctx).Execute(opts.Chaos)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	sp = opts.Obs.StartPhase("extract")
	var afts map[string]*aft.AFT
	if opts.UseGNMI {
		afts, err = extractViaGNMI(em, opts.Retry, opts.Obs)
	} else {
		afts = em.AFTs()
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = opts.Obs.StartPhase("verify")
	network, err := verify.NewNetwork(snap.Topology, afts)
	sp.End()
	if err != nil {
		return nil, err
	}
	network.SetObserver(opts.Obs)
	network.SetWorkers(opts.Workers)
	if opts.Obs != nil {
		// Populate ec_count (and the traces counter baseline) eagerly so a
		// metrics dump right after Run already shows the EC population.
		network.EquivalenceClasses()
	}
	return &Result{
		Backend:            BackendEmulation,
		AFTs:               afts,
		Network:            network,
		StartupAt:          em.StartupDone(),
		ConvergedAt:        convergedAt,
		Emulator:           em,
		Chaos:              chaosRep,
		DegradedRouters:    stragglers,
		QuarantinedRouters: em.QuarantinedRouters(),
	}, nil
}

// runEmulationSharded is the 10k-router path: one emulator per topology
// region (connected component), converged in parallel across a worker pool,
// with each finished region's AFTs streamed into a growing verify.Network
// via UpdateFrom. Exactness: no link crosses a region, so no adjacency, RIB
// route, or forwarding walk in the whole-network run could cross one either
// — every region computes the same fixed point it would inside the single
// emulator, and the merge below reassembles the same Result surface.
// Region emulators run without the observer (it binds a single virtual
// clock; hundreds of concurrent region clocks would interleave nonsense);
// the sharded run records aggregate phases on opts.Obs instead, and each
// emulator is stopped and released as soon as its tables are folded, so
// peak memory is one region's control plane plus the shared AFTs.
func runEmulationSharded(snap Snapshot, opts Options) (*Result, error) {
	if opts.Chaos != nil {
		return nil, fmt.Errorf("core: sharded runs do not support chaos scenarios (faults need one emulator spanning the network)")
	}
	if opts.UseGNMI {
		return nil, fmt.Errorf("core: sharded runs extract in-process; gNMI extraction needs one management plane")
	}
	regions := snap.Topology.Regions()
	if len(regions) <= 1 {
		o := opts
		o.ShardRegions = false
		return runEmulation(snap, o)
	}
	// Route injected feeds and what-if link failures to their owning region.
	nodeRegion := make(map[string]int, len(snap.Topology.Nodes))
	for i, names := range regions {
		for _, name := range names {
			nodeRegion[name] = i
		}
	}
	feeds := make([][]InjectedFeed, len(regions))
	for _, f := range snap.Feeds {
		i, ok := nodeRegion[f.Router]
		if !ok {
			return nil, fmt.Errorf("core: feed router %q not in topology", f.Router)
		}
		feeds[i] = append(feeds[i], f)
	}
	downs := make([][]topology.Endpoint, len(regions))
	for _, ep := range snap.DownLinks {
		i, ok := nodeRegion[ep.Node]
		if !ok {
			return nil, fmt.Errorf("core: down-link endpoint node %q not in topology", ep.Node)
		}
		downs[i] = append(downs[i], ep)
	}

	type regionOut struct {
		startup     time.Duration
		converged   time.Duration
		stragglers  []string
		quarantined []string
	}
	network, err := verify.NewNetwork(snap.Topology, nil)
	if err != nil {
		return nil, err
	}
	var (
		outs    = make([]regionOut, len(regions))
		allAFTs = map[string]*aft.AFT{}
		foldMu  sync.Mutex // guards allAFTs and network
	)
	runRegion := func(i int) error {
		names := regions[i]
		em, err := kne.New(kne.Config{
			Topology: snap.Topology.Subtopology(names),
			// Seeds are derived, not shared: every region must draw its own
			// deterministic stream regardless of scheduling order.
			Sim: sim.New(opts.Seed + int64(i)),
			Ctx: opts.Ctx,
		})
		if err != nil {
			return err
		}
		defer em.Stop()
		for _, f := range feeds[i] {
			inj, err := em.AddInjector(f.Router, f.PeerAddr, f.PeerAS)
			if err != nil {
				return err
			}
			for _, feed := range f.Feeds {
				inj.Announce(feed.Prefixes, feed.Attrs)
			}
		}
		if err := em.Start(); err != nil {
			return err
		}
		for _, ep := range downs[i] {
			if err := em.SetLinkDown(ep); err != nil {
				return err
			}
		}
		out := &outs[i]
		if opts.Degraded {
			conv, err := em.RunUntilConvergedDegraded(opts.ConvergenceHold, opts.Timeout)
			if err != nil {
				return err
			}
			out.converged = conv.ConvergedAt
			out.stragglers = conv.Stragglers
		} else {
			out.converged, err = em.RunUntilConverged(opts.ConvergenceHold, opts.Timeout)
			if err != nil {
				return fmt.Errorf("core: region %s: %w", names[0], err)
			}
		}
		out.startup = em.StartupDone()
		out.quarantined = em.QuarantinedRouters()
		regionAFTs := make(map[string]*aft.AFT, len(names))
		em.StreamAFTs(func(name string, a *aft.AFT) { regionAFTs[name] = a })
		// Fold this region into the accumulating snapshot. UpdateFrom reuses
		// every already-built device, so the fold costs one region's AFT
		// indexing plus a map copy, not a rebuild of the whole network.
		foldMu.Lock()
		defer foldMu.Unlock()
		for name, a := range regionAFTs {
			allAFTs[name] = a
		}
		next, err := network.UpdateFrom(allAFTs, names)
		if err != nil {
			return err
		}
		network = next
		return nil
	}

	wallStart := time.Now()
	if err := bootPool(len(regions), runRegion); err != nil {
		return nil, err
	}

	var startupAt, convergedAt time.Duration
	var stragglers, quarantined []string
	for _, o := range outs {
		if o.startup > startupAt {
			startupAt = o.startup
		}
		if o.converged > convergedAt {
			convergedAt = o.converged
		}
		stragglers = append(stragglers, o.stragglers...)
		quarantined = append(quarantined, o.quarantined...)
	}
	sort.Strings(stragglers)
	sort.Strings(quarantined)
	opts.Obs.RecordPhase("converge", 0, convergedAt, time.Since(wallStart))

	sp := opts.Obs.StartPhase("verify")
	network.SetObserver(opts.Obs)
	network.SetWorkers(opts.Workers)
	if opts.Obs != nil {
		network.EquivalenceClasses()
	}
	sp.End()
	return &Result{
		Backend:            BackendEmulation,
		AFTs:               allAFTs,
		Network:            network,
		StartupAt:          startupAt,
		ConvergedAt:        convergedAt,
		DegradedRouters:    stragglers,
		QuarantinedRouters: quarantined,
	}, nil
}

// bootPool runs worker(i) for i in [0, n) across a GOMAXPROCS-bounded pool,
// stopping new work at the first error. It is the shared boot machinery of
// the sharded-region path and the sweep replica pool: emulator construction
// and convergence dominate both, and each index owns disjoint state.
func bootPool(n int, worker func(i int) error) error {
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	var (
		errMu  sync.Mutex
		runErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return runErr != nil
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed() {
					continue
				}
				if err := worker(i); err != nil {
					fail(err)
				}
			}
		}()
	}
	wg.Wait()
	return runErr
}

// BuildReplicas boots n deterministic replicas of a converged emulation in
// parallel on the sharded-boot worker pool. Each replica replays the
// primary's boot (kne.Emulator.Replica) and is gated on StateFingerprint
// equality with wantFP — a replay that converges to different content fails
// the whole build rather than silently skewing downstream verdicts. An empty
// wantFP gates against the primary's current state; lane supervision passes
// the fingerprint captured while the baseline was known healthy, so a
// rebuild mid-sweep cannot inherit drift from a since-perturbed primary.
// The sweep engine uses this as its replica pool factory.
func BuildReplicas(primary *kne.Emulator, n int, wantFP string, hold, timeout time.Duration) ([]*kne.Emulator, error) {
	if n <= 0 {
		return nil, nil
	}
	want := wantFP
	if want == "" {
		want = primary.StateFingerprint()
	}
	reps := make([]*kne.Emulator, n)
	err := bootPool(n, func(i int) error {
		rep, err := primary.Replica(hold, timeout)
		if err != nil {
			return err
		}
		if got := rep.StateFingerprint(); got != want {
			rep.Stop()
			return fmt.Errorf("core: replica %d replay diverged from the primary (state fingerprint mismatch)", i)
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		for _, r := range reps {
			if r != nil {
				r.Stop()
			}
		}
		return nil, err
	}
	return reps, nil
}

// routerTarget adapts a virtual router to the gNMI Target interface.
type routerTarget struct{ r *vrouter.Router }

func (t routerTarget) Hostname() string { return t.r.Name }
func (t routerTarget) AFT() *aft.AFT    { return t.r.ExportAFT() }
func (t routerTarget) RouteSummary() map[string]int {
	out := map[string]int{}
	for _, rt := range t.r.RIB().Routes() {
		out[rt.Protocol.String()]++
	}
	return out
}

// extractViaGNMI spins up the management service on loopback TCP, connects
// a client, and pulls every device's AFT through it — the full extraction
// boundary from the paper's Fig. 1. Pulls run under the retry policy so a
// transiently unresponsive target costs backoff, not the run.
func extractViaGNMI(em *kne.Emulator, retry gnmi.RetryPolicy, o *obs.Observer) (map[string]*aft.AFT, error) {
	srv := gnmi.NewServer()
	srv.SetObserver(o)
	for _, r := range em.Routers() {
		srv.AddTarget(routerTarget{r})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: gnmi listen: %w", err)
	}
	srv.Serve(ln)
	defer srv.Close()

	client, err := gnmi.Dial(ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer client.Close()
	if retry.Attempts == 0 {
		retry = gnmi.DefaultRetry
	}
	return pullAFTs(em, func(name string) (*aft.AFT, error) {
		return retry.GetAFT(client, name)
	})
}

// pullAFTs drains every router's table through pull. A payload that arrives
// but fails to decode or validate (a *diag.Error) is hostile output from
// one device, not a broken extraction path: the device is quarantined and
// contributes an empty AFT so the rest of the network still gets verified.
// Transport errors abort the extraction as before.
func pullAFTs(em *kne.Emulator, pull func(name string) (*aft.AFT, error)) (map[string]*aft.AFT, error) {
	out := map[string]*aft.AFT{}
	for _, r := range em.Routers() {
		a, err := pull(r.Name)
		if err != nil {
			var de *diag.Error
			if errors.As(err, &de) {
				_ = em.QuarantineRouter(r.Name, de.Error())
				out[r.Name] = &aft.AFT{Device: r.Name}
				continue
			}
			return nil, fmt.Errorf("core: pulling AFT for %s: %w", r.Name, err)
		}
		out[r.Name] = a
	}
	return out, nil
}

// Differential runs differential reachability between two completed runs —
// between two emulated snapshots (E1) or across backends on the same
// snapshot (E3).
func Differential(before, after *Result) []verify.Diff {
	return verify.Differential(before.Network, after.Network)
}

// RouteCount sums installed RIB routes per protocol across the emulated
// network, for reporting.
func (r *Result) RouteCount() map[string]int {
	out := map[string]int{}
	if r.Emulator == nil {
		for _, a := range r.AFTs {
			for _, e := range a.IPv4Entries {
				out[e.Origin]++
			}
		}
		return out
	}
	for _, rt := range r.Emulator.Routers() {
		for _, route := range rt.RIB().Routes() {
			out[route.Protocol.String()]++
		}
	}
	return out
}
