package diag

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorRendering(t *testing.T) {
	e := Newf(SevError, "bgp", "r1", "truncated NLRI at %d bytes", 12)
	want := "error bgp r1: truncated NLRI at 12 bytes"
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
	withLoc := e.WithPath("node/r1/config").WithOffset(7)
	want = "error bgp r1 node/r1/config:7: truncated NLRI at 12 bytes"
	if withLoc.Error() != want {
		t.Errorf("Error() = %q, want %q", withLoc.Error(), want)
	}
	// The original is unchanged (With* return copies).
	if e.Path != "" || e.Offset != -1 {
		t.Errorf("With* mutated the receiver: %+v", e)
	}
}

func TestWrapPreservesInnerContext(t *testing.T) {
	inner := Decodef("isis", 9, "bad prefix length 40")
	wrapped := Wrap(fmt.Errorf("handling PDU: %w", inner), SevFatal, "vrouter", "r2")
	if wrapped.Source != "isis" {
		t.Errorf("Source = %q, want inner source preserved", wrapped.Source)
	}
	if wrapped.Device != "r2" {
		t.Errorf("Device = %q, want filled from wrapper", wrapped.Device)
	}
	if wrapped.Sev != SevFatal {
		t.Errorf("Sev = %v, want escalated to fatal", wrapped.Sev)
	}
	if wrapped.Offset != 9 {
		t.Errorf("Offset = %d, want inner offset preserved", wrapped.Offset)
	}
}

func TestWrapNilAndPlain(t *testing.T) {
	if Wrap(nil, SevError, "aft", "r1") != nil {
		t.Error("Wrap(nil) != nil")
	}
	plain := errors.New("unexpected EOF")
	w := Wrap(plain, SevFatal, "gnmi", "r3")
	if !errors.Is(w, plain) {
		t.Error("wrapped chain lost the cause")
	}
	if !IsFatal(w) {
		t.Error("IsFatal(fatal wrap) = false")
	}
	if SeverityOf(plain) != SevError {
		t.Errorf("SeverityOf(plain) = %v, want default SevError", SeverityOf(plain))
	}
}

func TestListSortAndMax(t *testing.T) {
	l := List{
		New(SevWarning, "lint", "r2", "b"),
		New(SevFatal, "config", "r9", "x"),
		New(SevWarning, "lint", "r1", "a"),
		New(SevError, "lint", "r1", "c"),
	}
	l.Sort()
	if l[0].Sev != SevFatal {
		t.Errorf("first after sort = %v, want fatal", l[0])
	}
	if l[1].Sev != SevError || l[1].Device != "r1" {
		t.Errorf("second after sort = %v", l[1])
	}
	if l[2].Device != "r1" || l[3].Device != "r2" {
		t.Errorf("warnings not ordered by device: %v, %v", l[2], l[3])
	}
	if l.Max() != SevFatal {
		t.Errorf("Max = %v, want fatal", l.Max())
	}
	if (List{}).Max() != SevInfo {
		t.Errorf("empty Max = %v, want info", (List{}).Max())
	}
}

func TestSeverityString(t *testing.T) {
	for sev, want := range map[Severity]string{
		SevInfo: "info", SevWarning: "warning", SevError: "error", SevFatal: "fatal",
	} {
		if sev.String() != want {
			t.Errorf("%d.String() = %q, want %q", sev, sev.String(), want)
		}
	}
}
