// Package diag provides the typed, structured error the hostile-input
// hardening layer standardizes on. Every decode path that used to panic on
// malformed input — wire codecs, config parsers, AFT/gNMI ingestion — now
// returns a *diag.Error carrying enough context to act on per device:
// severity (does this kill one router or just warrant a warning?), the
// subsystem that rejected the input, the device it belongs to, the source
// path (config section, file, or gNMI path), and the offset into the input
// (byte offset for wire messages, line number for text sources).
//
// Internal invariant violations (programmer errors: nil clocks, simulator
// misuse) keep panicking; only input-driven failures flow through diag.
package diag

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Severity classifies how a diagnostic degrades the pipeline.
type Severity uint8

// Severities, ordered: comparisons like sev >= SevError are meaningful.
const (
	// SevInfo is advisory only.
	SevInfo Severity = iota
	// SevWarning flags input that is accepted but suspicious (e.g. a BGP
	// neighbor address no emulated device owns).
	SevWarning
	// SevError marks input that is rejected, degrading the result for the
	// device it belongs to without ending the run.
	SevError
	// SevFatal marks input that makes the owning device unusable — the
	// quarantine trigger (corrupted config, undecodable AFT).
	SevFatal
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	case SevFatal:
		return "fatal"
	default:
		return fmt.Sprintf("severity(%d)", uint8(s))
	}
}

// Error is one structured diagnostic. It implements error and wraps an
// optional cause, so errors.Is/As traverse it.
type Error struct {
	// Sev is the diagnostic's severity.
	Sev Severity
	// Source is the subsystem that produced it ("bgp", "isis", "mpls",
	// "config", "aft", "gnmi", "routing", "topology", "lint").
	Source string
	// Device is the router the offending input belongs to; empty when the
	// input is not attributable to one device.
	Device string
	// Path locates the input source: a config section, file name, or gNMI
	// path. Empty when the input is a raw wire message.
	Path string
	// Offset is the byte offset into a wire message or the line number of a
	// text source; -1 when unknown.
	Offset int
	// Msg describes the defect.
	Msg string
	// Err is the wrapped cause, when the diagnostic annotates a lower-level
	// error.
	Err error
}

// Error renders "severity source device path:offset: msg: cause", omitting
// empty fields.
func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString(e.Sev.String())
	b.WriteByte(' ')
	b.WriteString(e.Source)
	if e.Device != "" {
		b.WriteByte(' ')
		b.WriteString(e.Device)
	}
	if e.Path != "" {
		b.WriteByte(' ')
		b.WriteString(e.Path)
	}
	if e.Offset >= 0 {
		fmt.Fprintf(&b, ":%d", e.Offset)
	}
	if e.Msg != "" {
		b.WriteString(": ")
		b.WriteString(e.Msg)
	}
	if e.Err != nil {
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
	}
	return b.String()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// New builds a diagnostic with no offset.
func New(sev Severity, source, device, msg string) *Error {
	return &Error{Sev: sev, Source: source, Device: device, Offset: -1, Msg: msg}
}

// Newf is New with formatting.
func Newf(sev Severity, source, device, format string, args ...any) *Error {
	return New(sev, source, device, fmt.Sprintf(format, args...))
}

// Wrap annotates a cause with diag context. A nil cause yields nil. If the
// cause is already a *Error, its fields win where set — wrapping at a higher
// layer must not erase the precise location recorded where the input was
// rejected.
func Wrap(err error, sev Severity, source, device string) *Error {
	if err == nil {
		return nil
	}
	var d *Error
	if errors.As(err, &d) {
		out := *d
		if out.Device == "" {
			out.Device = device
		}
		if out.Sev < sev {
			out.Sev = sev
		}
		return &out
	}
	return &Error{Sev: sev, Source: source, Device: device, Offset: -1, Err: err}
}

// Decodef builds a SevError decode diagnostic at a byte offset into a wire
// message.
func Decodef(source string, offset int, format string, args ...any) *Error {
	return &Error{Sev: SevError, Source: source, Offset: offset, Msg: fmt.Sprintf(format, args...)}
}

// WithPath returns a copy locating the diagnostic at a source path.
func (e *Error) WithPath(p string) *Error {
	out := *e
	out.Path = p
	return &out
}

// WithOffset returns a copy carrying an input offset (byte or line).
func (e *Error) WithOffset(off int) *Error {
	out := *e
	out.Offset = off
	return &out
}

// WithDevice returns a copy attributed to a device.
func (e *Error) WithDevice(d string) *Error {
	out := *e
	out.Device = d
	return &out
}

// SeverityOf extracts the severity from an error chain; non-diag errors
// default to SevError.
func SeverityOf(err error) Severity {
	var d *Error
	if errors.As(err, &d) {
		return d.Sev
	}
	return SevError
}

// IsFatal reports whether the error chain carries a SevFatal diagnostic.
func IsFatal(err error) bool { return SeverityOf(err) == SevFatal }

// List is a collection of diagnostics (a lint report). It implements error.
type List []*Error

// Error joins the diagnostics, one per line.
func (l List) Error() string {
	parts := make([]string, len(l))
	for i, d := range l {
		parts[i] = d.Error()
	}
	return strings.Join(parts, "\n")
}

// Max returns the highest severity present (SevInfo when empty).
func (l List) Max() Severity {
	var max Severity
	for _, d := range l {
		if d.Sev > max {
			max = d.Sev
		}
	}
	return max
}

// Sort orders the list deterministically: severity descending, then device,
// source, path, offset, message.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return a.Msg < b.Msg
	})
}
