package kube

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mfv/internal/sim"
)

func TestCapacityPaperArithmetic(t *testing.T) {
	// The paper: 0.5 vCPU + 1 GB per Arista container, e2-standard-32 with
	// 32 vCPU / 128 GB → about 60 routers per machine (CPU-bound: 64 by
	// CPU, the paper observed 60 with system overhead).
	pod := AristaCEOSRequest("r", time.Minute)
	got := Capacity([]NodeSpec{E2Standard32("n1")}, pod)
	if got != 64 {
		t.Errorf("Capacity = %d, want 64 (raw CPU bound)", got)
	}
}

func TestScheduleAndBoot(t *testing.T) {
	s := sim.New(1)
	c := NewCluster(s, E2Standard32("n1"))
	var ready []string
	c.OnPodReady(func(p *Pod) { ready = append(ready, p.Spec.Name) })
	pod, err := c.Schedule(AristaCEOSRequest("r1", 90*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if pod.Phase != PodScheduled || pod.Node != "n1" {
		t.Errorf("pod = %+v", pod)
	}
	s.RunFor(89 * time.Second)
	if pod.Phase == PodRunning {
		t.Error("pod ready before boot time")
	}
	s.RunFor(2 * time.Second)
	if pod.Phase != PodRunning || len(ready) != 1 {
		t.Errorf("pod = %+v, ready = %v", pod, ready)
	}
	if pod.ReadyAt != 90*time.Second {
		t.Errorf("ReadyAt = %v", pod.ReadyAt)
	}
	if !c.AllRunning() {
		t.Error("AllRunning false with all pods running")
	}
}

func TestScheduleRejectsWhenFull(t *testing.T) {
	s := sim.New(1)
	c := NewCluster(s, NodeSpec{Name: "tiny", CPU: 1000, Memory: 2048})
	if _, err := c.Schedule(PodSpec{Name: "a", CPU: 600, Mem: 512}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schedule(PodSpec{Name: "b", CPU: 600, Mem: 512}); err == nil {
		t.Error("overcommit accepted")
	}
	// Memory bound too.
	if _, err := c.Schedule(PodSpec{Name: "c", CPU: 100, Mem: 4096}); err == nil {
		t.Error("memory overcommit accepted")
	}
}

func TestScheduleDuplicateName(t *testing.T) {
	s := sim.New(1)
	c := NewCluster(s, E2Standard32("n1"))
	c.Schedule(PodSpec{Name: "a", CPU: 100, Mem: 100})
	if _, err := c.Schedule(PodSpec{Name: "a", CPU: 100, Mem: 100}); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Errorf("err = %v", err)
	}
}

func TestDeleteReleasesResources(t *testing.T) {
	s := sim.New(1)
	c := NewCluster(s, NodeSpec{Name: "n1", CPU: 1000, Memory: 1024})
	c.Schedule(PodSpec{Name: "a", CPU: 1000, Mem: 1024})
	if _, err := c.Schedule(PodSpec{Name: "b", CPU: 1000, Mem: 1024}); err == nil {
		t.Fatal("full node accepted second pod")
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schedule(PodSpec{Name: "b", CPU: 1000, Mem: 1024}); err != nil {
		t.Errorf("free capacity not reusable: %v", err)
	}
	if err := c.Delete("ghost"); err == nil {
		t.Error("deleting unknown pod succeeded")
	}
}

func TestBinPackingDensity(t *testing.T) {
	// Best-fit should fill node A completely before spilling to B.
	s := sim.New(1)
	c := NewCluster(s,
		NodeSpec{Name: "a", CPU: 2000, Memory: 8192},
		NodeSpec{Name: "b", CPU: 2000, Memory: 8192})
	for i := 0; i < 4; i++ {
		if _, err := c.Schedule(PodSpec{Name: fmt.Sprintf("p%d", i), CPU: 500, Mem: 512}); err != nil {
			t.Fatal(err)
		}
	}
	util := c.Utilization()
	if util[0].PodCount != 4 || util[1].PodCount != 0 {
		t.Errorf("packing spread pods: %+v", util)
	}
}

func TestSixtyRoutersOnOneNode(t *testing.T) {
	// The paper's single-machine experiment: 60 routers on one
	// e2-standard-32.
	s := sim.New(1)
	c := NewCluster(s, E2Standard32("n1"))
	for i := 0; i < 60; i++ {
		if _, err := c.Schedule(AristaCEOSRequest(fmt.Sprintf("r%d", i), time.Minute)); err != nil {
			t.Fatalf("router %d did not fit: %v", i, err)
		}
	}
	util := c.Utilization()[0]
	if util.CPUUsed != 30000 {
		t.Errorf("CPU used = %dm, want 30000m", util.CPUUsed)
	}
	if util.MemUsed != 60*1024 {
		t.Errorf("Mem used = %d MiB, want %d", util.MemUsed, 60*1024)
	}
	s.Run()
	if !c.AllRunning() {
		t.Error("pods did not all boot")
	}
}

func TestThousandPodsOnSeventeenNodes(t *testing.T) {
	// The paper's cluster experiment: 1,000 devices on a 17-node cluster.
	s := sim.New(1)
	specs := make([]NodeSpec, 17)
	for i := range specs {
		specs[i] = E2Standard32(fmt.Sprintf("n%d", i))
	}
	c := NewCluster(s, specs...)
	for i := 0; i < 1000; i++ {
		if _, err := c.Schedule(AristaCEOSRequest(fmt.Sprintf("r%d", i), time.Minute)); err != nil {
			t.Fatalf("router %d did not fit: %v", i, err)
		}
	}
	if got := len(c.Pods()); got != 1000 {
		t.Errorf("pods = %d", got)
	}
	s.Run()
	if !c.AllRunning() {
		t.Error("cluster did not boot all pods")
	}
}

func TestPhaseString(t *testing.T) {
	if PodPending.String() != "Pending" || PodRunning.String() != "Running" ||
		PodScheduled.String() != "Scheduled" || Phase(9).String() != "Phase(9)" {
		t.Error("Phase.String wrong")
	}
}

func TestPodsSortedAndLookup(t *testing.T) {
	s := sim.New(1)
	c := NewCluster(s, E2Standard32("n1"))
	c.Schedule(PodSpec{Name: "z", CPU: 1, Mem: 1})
	c.Schedule(PodSpec{Name: "a", CPU: 1, Mem: 1})
	pods := c.Pods()
	if pods[0].Spec.Name != "a" || pods[1].Spec.Name != "z" {
		t.Error("Pods not sorted")
	}
	if _, ok := c.Pod("a"); !ok {
		t.Error("Pod lookup failed")
	}
	if _, ok := c.Pod("nope"); ok {
		t.Error("ghost pod found")
	}
	if len(c.Nodes()) != 1 || c.Nodes()[0] != "n1" {
		t.Errorf("Nodes = %v", c.Nodes())
	}
}

func TestDeleteCancelsBoot(t *testing.T) {
	// Regression: Delete used to leave the boot event armed, so a deleted
	// pod's callback could fire later — and on a full cluster the stale
	// reservation (or resurrected Running phase) broke reschedule loops.
	s := sim.New(1)
	c := NewCluster(s, NodeSpec{Name: "n1", CPU: 500, Memory: 1024})
	var ready []string
	c.OnPodReady(func(p *Pod) { ready = append(ready, p.Spec.Name) })

	old, err := c.Schedule(PodSpec{Name: "r1", CPU: 500, Mem: 1024, BootTime: 90 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second)
	if err := c.Delete("r1"); err != nil {
		t.Fatal(err)
	}
	// Reschedule the same pod to the now-free (previously full) node.
	repl, err := c.Schedule(PodSpec{Name: "r1", CPU: 500, Mem: 1024, BootTime: 90 * time.Second})
	if err != nil {
		t.Fatalf("reschedule to freed capacity failed: %v", err)
	}
	// The OLD boot (armed for t=90s) must not fire; the replacement,
	// rescheduled at t=10s, boots at t=100s.
	s.RunFor(95 * time.Second)
	if old.Phase == PodRunning {
		t.Error("deleted pod transitioned to Running")
	}
	if repl.Phase != PodRunning {
		t.Errorf("replacement phase = %v, want Running", repl.Phase)
	}
	if len(ready) != 1 || ready[0] != "r1" {
		t.Errorf("ready callbacks = %v, want exactly one for the replacement", ready)
	}
	if repl.ReadyAt != 100*time.Second {
		t.Errorf("replacement ReadyAt = %v, want 100s", repl.ReadyAt)
	}
}

func TestScheduleOrQueuePendingThenPlaced(t *testing.T) {
	s := sim.New(1)
	c := NewCluster(s, NodeSpec{Name: "n1", CPU: 1000, Memory: 2048})
	if _, err := c.ScheduleOrQueue(PodSpec{Name: "a", CPU: 800, Mem: 512, BootTime: time.Second}); err != nil {
		t.Fatal(err)
	}
	b, err := c.ScheduleOrQueue(PodSpec{Name: "b", CPU: 800, Mem: 512, BootTime: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if b.Phase != PodPending || b.Node != "" {
		t.Errorf("overflow pod = %+v, want Pending/unassigned", b)
	}
	if c.AllRunning() {
		t.Error("AllRunning true with a pending pod")
	}
	// Freeing capacity must place the queued pod.
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	b2, _ := c.Pod("b")
	if b2.Phase != PodScheduled || b2.Node != "n1" {
		t.Errorf("queued pod after capacity freed = %+v", b2)
	}
	s.RunFor(2 * time.Second)
	if b2.Phase != PodRunning {
		t.Error("queued pod never booted after placement")
	}
}

func TestFailNodeEvictsAndReschedules(t *testing.T) {
	s := sim.New(1)
	c := NewCluster(s,
		NodeSpec{Name: "n1", CPU: 1000, Memory: 2048},
		NodeSpec{Name: "n2", CPU: 1000, Memory: 2048})
	// Two pods packed on n1 (best-fit density).
	for _, name := range []string{"a", "b"} {
		if _, err := c.Schedule(PodSpec{Name: name, CPU: 400, Mem: 512, BootTime: time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(2 * time.Second)
	evicted, err := c.FailNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Errorf("evicted = %v", evicted)
	}
	for _, name := range evicted {
		p, ok := c.Pod(name)
		if !ok {
			t.Fatalf("pod %s vanished after eviction", name)
		}
		if p.Node != "n2" || p.Phase != PodScheduled {
			t.Errorf("pod %s = %+v, want rescheduled to n2", name, p)
		}
	}
	// The failed node holds no reservations and refuses placements.
	for _, u := range c.Utilization() {
		if u.Name == "n1" && (u.CPUUsed != 0 || u.PodCount != 0) {
			t.Errorf("failed node still holds resources: %+v", u)
		}
	}
	if _, err := c.FailNode("n1"); err == nil {
		t.Error("double FailNode succeeded")
	}
	if _, err := c.FailNode("ghost"); err == nil {
		t.Error("failing unknown node succeeded")
	}
	s.RunFor(2 * time.Second)
	if !c.AllRunning() {
		t.Error("rescheduled pods did not reboot")
	}
}

func TestFailNodeQueuesWhenNoCapacityThenRecover(t *testing.T) {
	s := sim.New(1)
	c := NewCluster(s, NodeSpec{Name: "n1", CPU: 500, Memory: 1024})
	if _, err := c.Schedule(PodSpec{Name: "a", CPU: 500, Mem: 1024, BootTime: time.Second}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * time.Second)
	if _, err := c.FailNode("n1"); err != nil {
		t.Fatal(err)
	}
	a, _ := c.Pod("a")
	if a.Phase != PodPending {
		t.Errorf("pod on sole failed node = %v, want Pending", a.Phase)
	}
	if err := c.RecoverNode("ghost"); err == nil {
		t.Error("recovering unknown node succeeded")
	}
	if err := c.RecoverNode("n1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverNode("n1"); err == nil {
		t.Error("recovering an up node succeeded")
	}
	a, _ = c.Pod("a")
	if a.Phase != PodScheduled || a.Node != "n1" {
		t.Errorf("pod after node recovery = %+v", a)
	}
	s.RunFor(2 * time.Second)
	a, _ = c.Pod("a")
	if a.Phase != PodRunning {
		t.Error("pod did not boot after node recovery")
	}
}
