// Package kube models the Kubernetes substrate the paper's prototype runs
// on: a cluster of worker nodes with vCPU/memory capacity, pods with
// resource requests, a bin-packing scheduler, and pod lifecycle with boot
// times on a simulated clock. It exists to reproduce the paper's scaling
// arithmetic — 60 half-vCPU routers on one 32-vCPU machine, 1,000 devices
// on a 17-node cluster — and the 12–17 minute infrastructure startup.
package kube

import (
	"fmt"
	"sort"
	"time"

	"mfv/internal/sim"
)

// MilliCPU expresses CPU in thousandths of a core (Kubernetes convention).
type MilliCPU int64

// MiB expresses memory in mebibytes.
type MiB int64

// NodeSpec describes a worker machine shape.
type NodeSpec struct {
	Name   string
	CPU    MilliCPU
	Memory MiB
}

// E2Standard32 is the paper's evaluation machine: 32 vCPU, 128 GB.
func E2Standard32(name string) NodeSpec {
	return NodeSpec{Name: name, CPU: 32000, Memory: 128 * 1024}
}

// PodSpec describes one pod's resource request and boot behaviour.
type PodSpec struct {
	Name string
	CPU  MilliCPU
	Mem  MiB
	// BootTime is how long the pod takes from scheduling to Ready.
	BootTime time.Duration
}

// AristaCEOSRequest is the per-router request the paper reports for cEOS:
// 0.5 vCPU and 1 GB of RAM.
func AristaCEOSRequest(name string, boot time.Duration) PodSpec {
	return PodSpec{Name: name, CPU: 500, Mem: 1024, BootTime: boot}
}

// Phase is a pod lifecycle phase.
type Phase uint8

// Pod phases.
const (
	PodPending Phase = iota
	PodScheduled
	PodRunning
)

// String renders the phase.
func (p Phase) String() string {
	switch p {
	case PodPending:
		return "Pending"
	case PodScheduled:
		return "Scheduled"
	case PodRunning:
		return "Running"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Pod is a scheduled workload instance.
type Pod struct {
	Spec  PodSpec
	Node  string
	Phase Phase
	// ReadyAt is the virtual time the pod became Running.
	ReadyAt time.Duration
	// boot is the pending boot-completion event; canceled on Delete so a
	// deleted pod can never transition to Running afterwards.
	boot *sim.Event
}

type node struct {
	spec    NodeSpec
	cpuUsed MilliCPU
	memUsed MiB
	pods    int
	// down marks a failed node: unschedulable until RecoverNode.
	down bool
}

// Cluster is the scheduling domain.
type Cluster struct {
	clock *sim.Simulator
	nodes []*node
	pods  map[string]*Pod
	// pending holds pod names queued by ScheduleOrQueue, FIFO; retried
	// whenever capacity frees up (Delete, RecoverNode).
	pending []string
	// onReady fires when a pod transitions to Running.
	onReady func(*Pod)
}

// NewCluster builds a cluster from node specs.
func NewCluster(clock *sim.Simulator, specs ...NodeSpec) *Cluster {
	c := &Cluster{clock: clock, pods: map[string]*Pod{}}
	for _, s := range specs {
		c.nodes = append(c.nodes, &node{spec: s})
	}
	return c
}

// OnPodReady registers the ready callback.
func (c *Cluster) OnPodReady(fn func(*Pod)) { c.onReady = fn }

// Nodes returns the node names.
func (c *Cluster) Nodes() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.spec.Name
	}
	return out
}

// Schedule places a pod using best-fit-decreasing on CPU: the feasible node
// with the least remaining CPU after placement wins (dense packing, like the
// default scheduler's MostAllocated strategy for batch emulation jobs). It
// returns an error when no node fits.
func (c *Cluster) Schedule(spec PodSpec) (*Pod, error) {
	if _, exists := c.pods[spec.Name]; exists {
		return nil, fmt.Errorf("kube: pod %q already exists", spec.Name)
	}
	pod, ok := c.place(spec)
	if !ok {
		return nil, fmt.Errorf("kube: no node can fit pod %q (%dm CPU, %d MiB)", spec.Name, spec.CPU, spec.Mem)
	}
	c.pods[spec.Name] = pod
	return pod, nil
}

// ScheduleOrQueue places a pod like Schedule, but a pod that fits nowhere is
// registered as Pending and queued instead of rejected; it is retried in
// FIFO order whenever capacity frees up (Delete, RecoverNode). This is the
// reschedule path for crash/eviction loops, where "unschedulable right now"
// must not mean "gone".
func (c *Cluster) ScheduleOrQueue(spec PodSpec) (*Pod, error) {
	if _, exists := c.pods[spec.Name]; exists {
		return nil, fmt.Errorf("kube: pod %q already exists", spec.Name)
	}
	pod, ok := c.place(spec)
	if !ok {
		pod = &Pod{Spec: spec, Phase: PodPending}
		c.pending = append(c.pending, spec.Name)
	}
	c.pods[spec.Name] = pod
	return pod, nil
}

// place finds a node via best-fit-decreasing and arms the boot timer. It
// does not register the pod in the cluster map.
func (c *Cluster) place(spec PodSpec) (*Pod, bool) {
	var best *node
	for _, n := range c.nodes {
		if n.down || n.cpuUsed+spec.CPU > n.spec.CPU || n.memUsed+spec.Mem > n.spec.Memory {
			continue
		}
		if best == nil {
			best = n
			continue
		}
		remBest := best.spec.CPU - best.cpuUsed - spec.CPU
		remN := n.spec.CPU - n.cpuUsed - spec.CPU
		if remN < remBest || (remN == remBest && n.spec.Name < best.spec.Name) {
			best = n
		}
	}
	if best == nil {
		return nil, false
	}
	best.cpuUsed += spec.CPU
	best.memUsed += spec.Mem
	best.pods++
	pod := &Pod{Spec: spec, Node: best.spec.Name, Phase: PodScheduled}
	pod.boot = c.clock.After(spec.BootTime, func() {
		pod.Phase = PodRunning
		pod.ReadyAt = c.clock.Now()
		if c.onReady != nil {
			c.onReady(pod)
		}
	})
	return pod, true
}

// Delete removes a pod, releases its node's reserved CPU/memory, and cancels
// its pending boot event, so crash/reschedule loops neither leak capacity
// nor resurrect deleted pods as Running. Freed capacity is offered to the
// pending queue.
func (c *Cluster) Delete(name string) error {
	pod, ok := c.pods[name]
	if !ok {
		return fmt.Errorf("kube: no pod %q", name)
	}
	c.release(pod)
	delete(c.pods, name)
	c.dropPending(name)
	c.retryPending()
	return nil
}

// release returns a pod's reservation to its node and cancels its boot.
func (c *Cluster) release(pod *Pod) {
	if pod.boot != nil {
		c.clock.Cancel(pod.boot)
		pod.boot = nil
	}
	for _, n := range c.nodes {
		if n.spec.Name == pod.Node {
			n.cpuUsed -= pod.Spec.CPU
			n.memUsed -= pod.Spec.Mem
			n.pods--
		}
	}
}

func (c *Cluster) dropPending(name string) {
	for i, p := range c.pending {
		if p == name {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// retryPending attempts to place queued pods in FIFO order.
func (c *Cluster) retryPending() {
	var still []string
	for _, name := range c.pending {
		pod, ok := c.pods[name]
		if !ok {
			continue
		}
		placed, fit := c.place(pod.Spec)
		if !fit {
			still = append(still, name)
			continue
		}
		c.pods[name] = placed
	}
	c.pending = still
}

// FailNode models a worker machine dying: the node becomes unschedulable and
// every resident pod is evicted (boot canceled, resources released) and
// immediately rescheduled onto the surviving nodes — queuing as Pending when
// nothing fits. It returns the evicted pod names in sorted order.
func (c *Cluster) FailNode(name string) ([]string, error) {
	var target *node
	for _, n := range c.nodes {
		if n.spec.Name == name {
			target = n
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("kube: no node %q", name)
	}
	if target.down {
		return nil, fmt.Errorf("kube: node %q already down", name)
	}
	target.down = true
	var evicted []string
	for podName, pod := range c.pods {
		if pod.Node == name && pod.Phase != PodPending {
			evicted = append(evicted, podName)
		}
	}
	sort.Strings(evicted)
	specs := make([]PodSpec, 0, len(evicted))
	for _, podName := range evicted {
		pod := c.pods[podName]
		specs = append(specs, pod.Spec)
		c.release(pod)
		delete(c.pods, podName)
	}
	for _, spec := range specs {
		// Cannot collide: the names were just removed above.
		_, _ = c.ScheduleOrQueue(spec)
	}
	return evicted, nil
}

// RecoverNode brings a failed node back as schedulable capacity and offers
// it to the pending queue. Pods evicted by FailNode stay wherever they were
// rescheduled; nothing migrates back.
func (c *Cluster) RecoverNode(name string) error {
	for _, n := range c.nodes {
		if n.spec.Name == name {
			if !n.down {
				return fmt.Errorf("kube: node %q is not down", name)
			}
			n.down = false
			c.retryPending()
			return nil
		}
	}
	return fmt.Errorf("kube: no node %q", name)
}

// Pod returns the named pod.
func (c *Cluster) Pod(name string) (*Pod, bool) {
	p, ok := c.pods[name]
	return p, ok
}

// Pods returns all pods sorted by name.
func (c *Cluster) Pods() []*Pod {
	out := make([]*Pod, 0, len(c.pods))
	for _, p := range c.pods {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// AllRunning reports whether every pod has reached Running.
func (c *Cluster) AllRunning() bool {
	for _, p := range c.pods {
		if p.Phase != PodRunning {
			return false
		}
	}
	return true
}

// NodeUtilization reports a node's used/total CPU and memory.
type NodeUtilization struct {
	Name     string
	CPUUsed  MilliCPU
	CPUTotal MilliCPU
	MemUsed  MiB
	MemTotal MiB
	PodCount int
}

// Utilization returns per-node utilization sorted by node name.
func (c *Cluster) Utilization() []NodeUtilization {
	out := make([]NodeUtilization, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, NodeUtilization{
			Name:     n.spec.Name,
			CPUUsed:  n.cpuUsed,
			CPUTotal: n.spec.CPU,
			MemUsed:  n.memUsed,
			MemTotal: n.spec.Memory,
			PodCount: n.pods,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Capacity returns how many pods of the given spec fit on an empty cluster
// of these nodes — the paper's static scaling arithmetic.
func Capacity(specs []NodeSpec, pod PodSpec) int {
	total := 0
	for _, n := range specs {
		byCPU := int(n.CPU / pod.CPU)
		byMem := int(n.Memory / pod.Mem)
		if byMem < byCPU {
			byCPU = byMem
		}
		total += byCPU
	}
	return total
}
