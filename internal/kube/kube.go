// Package kube models the Kubernetes substrate the paper's prototype runs
// on: a cluster of worker nodes with vCPU/memory capacity, pods with
// resource requests, a bin-packing scheduler, and pod lifecycle with boot
// times on a simulated clock. It exists to reproduce the paper's scaling
// arithmetic — 60 half-vCPU routers on one 32-vCPU machine, 1,000 devices
// on a 17-node cluster — and the 12–17 minute infrastructure startup.
package kube

import (
	"fmt"
	"sort"
	"time"

	"mfv/internal/sim"
)

// MilliCPU expresses CPU in thousandths of a core (Kubernetes convention).
type MilliCPU int64

// MiB expresses memory in mebibytes.
type MiB int64

// NodeSpec describes a worker machine shape.
type NodeSpec struct {
	Name   string
	CPU    MilliCPU
	Memory MiB
}

// E2Standard32 is the paper's evaluation machine: 32 vCPU, 128 GB.
func E2Standard32(name string) NodeSpec {
	return NodeSpec{Name: name, CPU: 32000, Memory: 128 * 1024}
}

// PodSpec describes one pod's resource request and boot behaviour.
type PodSpec struct {
	Name string
	CPU  MilliCPU
	Mem  MiB
	// BootTime is how long the pod takes from scheduling to Ready.
	BootTime time.Duration
}

// AristaCEOSRequest is the per-router request the paper reports for cEOS:
// 0.5 vCPU and 1 GB of RAM.
func AristaCEOSRequest(name string, boot time.Duration) PodSpec {
	return PodSpec{Name: name, CPU: 500, Mem: 1024, BootTime: boot}
}

// Phase is a pod lifecycle phase.
type Phase uint8

// Pod phases.
const (
	PodPending Phase = iota
	PodScheduled
	PodRunning
)

// String renders the phase.
func (p Phase) String() string {
	switch p {
	case PodPending:
		return "Pending"
	case PodScheduled:
		return "Scheduled"
	case PodRunning:
		return "Running"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Pod is a scheduled workload instance.
type Pod struct {
	Spec  PodSpec
	Node  string
	Phase Phase
	// ReadyAt is the virtual time the pod became Running.
	ReadyAt time.Duration
}

type node struct {
	spec    NodeSpec
	cpuUsed MilliCPU
	memUsed MiB
	pods    int
}

// Cluster is the scheduling domain.
type Cluster struct {
	clock *sim.Simulator
	nodes []*node
	pods  map[string]*Pod
	// onReady fires when a pod transitions to Running.
	onReady func(*Pod)
}

// NewCluster builds a cluster from node specs.
func NewCluster(clock *sim.Simulator, specs ...NodeSpec) *Cluster {
	c := &Cluster{clock: clock, pods: map[string]*Pod{}}
	for _, s := range specs {
		c.nodes = append(c.nodes, &node{spec: s})
	}
	return c
}

// OnPodReady registers the ready callback.
func (c *Cluster) OnPodReady(fn func(*Pod)) { c.onReady = fn }

// Nodes returns the node names.
func (c *Cluster) Nodes() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.spec.Name
	}
	return out
}

// Schedule places a pod using best-fit-decreasing on CPU: the feasible node
// with the least remaining CPU after placement wins (dense packing, like the
// default scheduler's MostAllocated strategy for batch emulation jobs). It
// returns an error when no node fits.
func (c *Cluster) Schedule(spec PodSpec) (*Pod, error) {
	if _, exists := c.pods[spec.Name]; exists {
		return nil, fmt.Errorf("kube: pod %q already exists", spec.Name)
	}
	var best *node
	for _, n := range c.nodes {
		if n.cpuUsed+spec.CPU > n.spec.CPU || n.memUsed+spec.Mem > n.spec.Memory {
			continue
		}
		if best == nil {
			best = n
			continue
		}
		remBest := best.spec.CPU - best.cpuUsed - spec.CPU
		remN := n.spec.CPU - n.cpuUsed - spec.CPU
		if remN < remBest || (remN == remBest && n.spec.Name < best.spec.Name) {
			best = n
		}
	}
	if best == nil {
		return nil, fmt.Errorf("kube: no node can fit pod %q (%dm CPU, %d MiB)", spec.Name, spec.CPU, spec.Mem)
	}
	best.cpuUsed += spec.CPU
	best.memUsed += spec.Mem
	best.pods++
	pod := &Pod{Spec: spec, Node: best.spec.Name, Phase: PodScheduled}
	c.pods[spec.Name] = pod
	c.clock.After(spec.BootTime, func() {
		pod.Phase = PodRunning
		pod.ReadyAt = c.clock.Now()
		if c.onReady != nil {
			c.onReady(pod)
		}
	})
	return pod, nil
}

// Delete removes a pod and releases its resources.
func (c *Cluster) Delete(name string) error {
	pod, ok := c.pods[name]
	if !ok {
		return fmt.Errorf("kube: no pod %q", name)
	}
	for _, n := range c.nodes {
		if n.spec.Name == pod.Node {
			n.cpuUsed -= pod.Spec.CPU
			n.memUsed -= pod.Spec.Mem
			n.pods--
		}
	}
	delete(c.pods, name)
	return nil
}

// Pod returns the named pod.
func (c *Cluster) Pod(name string) (*Pod, bool) {
	p, ok := c.pods[name]
	return p, ok
}

// Pods returns all pods sorted by name.
func (c *Cluster) Pods() []*Pod {
	out := make([]*Pod, 0, len(c.pods))
	for _, p := range c.pods {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// AllRunning reports whether every pod has reached Running.
func (c *Cluster) AllRunning() bool {
	for _, p := range c.pods {
		if p.Phase != PodRunning {
			return false
		}
	}
	return true
}

// NodeUtilization reports a node's used/total CPU and memory.
type NodeUtilization struct {
	Name     string
	CPUUsed  MilliCPU
	CPUTotal MilliCPU
	MemUsed  MiB
	MemTotal MiB
	PodCount int
}

// Utilization returns per-node utilization sorted by node name.
func (c *Cluster) Utilization() []NodeUtilization {
	out := make([]NodeUtilization, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, NodeUtilization{
			Name:     n.spec.Name,
			CPUUsed:  n.cpuUsed,
			CPUTotal: n.spec.CPU,
			MemUsed:  n.memUsed,
			MemTotal: n.spec.Memory,
			PodCount: n.pods,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Capacity returns how many pods of the given spec fit on an empty cluster
// of these nodes — the paper's static scaling arithmetic.
func Capacity(specs []NodeSpec, pod PodSpec) int {
	total := 0
	for _, n := range specs {
		byCPU := int(n.CPU / pod.CPU)
		byMem := int(n.Memory / pod.Mem)
		if byMem < byCPU {
			byCPU = byMem
		}
		total += byCPU
	}
	return total
}
