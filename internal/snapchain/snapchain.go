// Package snapchain chains incremental dataplane snapshots off a running
// emulation. Each Snapshot call extracts the current AFTs and builds a
// verification network, reusing the previous snapshot's per-device tries and
// equivalence-class contributions for every router whose FIB generation
// stamp did not move (verify.Network.UpdateFrom). The chain is the shared
// substrate of the chaos engine's fault loop and the sweep engine's
// candidate loop: both apply a perturbation, settle, snapshot, and score the
// blast radius with a delta differential whose cost tracks the dirty set,
// not the network size.
package snapchain

import (
	"sort"

	"mfv/internal/aft"
	"mfv/internal/kne"
	"mfv/internal/obs"
	"mfv/internal/topology"
	"mfv/internal/verify"
)

// Snap is one dataplane snapshot: the reachability network, the extracted
// forwarding tables it was built from, the total forwarding-entry count, and
// the per-router generation stamps dirty-set computations key on.
type Snap struct {
	Net    *verify.Network
	AFTs   map[string]*aft.AFT
	Routes int
	Stamps map[string]kne.GenStamp
}

// Chain builds successive snapshots from an emulator. The zero Chain is not
// usable; construct with New.
type Chain struct {
	em      *kne.Emulator
	topo    *topology.Topology
	obs     *obs.Observer
	workers int

	// incremental (default on) chains snapshots through
	// verify.Network.UpdateFrom and scores differentials with the delta
	// query, so per-perturbation cost tracks blast radius instead of
	// network size. Results are byte-identical either way.
	incremental bool
	// last is the most recent snapshot, the base the next incremental
	// snapshot updates from.
	last *Snap
}

// New builds a chain over an emulator. The observer may be nil.
func New(em *kne.Emulator, topo *topology.Topology, o *obs.Observer) *Chain {
	return &Chain{em: em, topo: topo, obs: o, incremental: true}
}

// SetWorkers sizes the worker pool differential queries on chained networks
// run on (0 = GOMAXPROCS).
func (c *Chain) SetWorkers(w int) { c.workers = w }

// Fork returns a fresh chain over a replica emulator, inheriting this
// chain's worker-pool size and incremental mode but none of its snapshot
// history: FIB generation stamps are per-emulator counters, so snaps from
// different emulators must never be diffed through the same chain. The fork
// carries no observer — replica chains run concurrently, and the observer
// binds a single virtual clock.
func (c *Chain) Fork(em *kne.Emulator) *Chain {
	return &Chain{em: em, topo: c.topo, workers: c.workers, incremental: c.incremental}
}

// SetIncremental toggles the incremental snapshot + delta-differential path
// (on by default). Disabling forces a full network rebuild and a full
// differential per snapshot — the reference the equivalence tests run
// against.
func (c *Chain) SetIncremental(on bool) { c.incremental = on }

// Incremental reports whether the delta path is active.
func (c *Chain) Incremental() bool { return c.incremental }

// Last returns the most recent snapshot (nil before the first Snapshot).
func (c *Chain) Last() *Snap { return c.last }

// Snapshot extracts the current dataplane and appends it to the chain.
func (c *Chain) Snapshot() (Snap, error) {
	afts := c.em.AFTs()
	stamps := c.em.FIBGenerations()
	var n *verify.Network
	var err error
	if c.incremental && c.last != nil {
		// Routers whose stamp moved since the previous snapshot are the
		// only ones whose AFT can differ; every other device's trie and
		// equivalence-interval cache carries over.
		n, err = c.last.Net.UpdateFrom(afts, DiffStamps(c.last.Stamps, stamps))
	} else {
		n, err = verify.NewNetwork(c.topo, afts)
	}
	if err != nil {
		return Snap{}, err
	}
	n.SetObserver(c.obs)
	n.SetWorkers(c.workers)
	total := 0
	for _, a := range afts {
		total += len(a.IPv4Entries)
	}
	s := Snap{Net: n, AFTs: afts, Routes: total, Stamps: stamps}
	c.last = &s
	return s, nil
}

// Differential compares two snapshots, delta-driven when incremental mode is
// on and the blast radius is small enough. Past half the network the
// per-class prune bookkeeping stops paying for itself, so wide perturbations
// fall back to the full recompute.
func (c *Chain) Differential(before, after Snap) []verify.Diff {
	if c.incremental {
		dirty := DiffStamps(before.Stamps, after.Stamps)
		if len(dirty)*2 <= len(before.Stamps) {
			return verify.DeltaDifferential(before.Net, after.Net, dirty)
		}
	}
	return verify.Differential(before.Net, after.Net)
}

// DiffStamps returns the routers whose generation stamp differs between two
// snapshots (or that exist in only one), sorted.
func DiffStamps(a, b map[string]kne.GenStamp) []string {
	var out []string
	for name, sa := range a {
		if sb, ok := b[name]; !ok || sb != sa {
			out = append(out, name)
		}
	}
	for name := range b {
		if _, ok := a[name]; !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// LostFlows keys the (source, class) flows that were delivered before a
// perturbation but not after it.
func LostFlows(diffs []verify.Diff) map[string]bool {
	out := map[string]bool{}
	for _, d := range diffs {
		if verify.OutcomeDelivered(d.Before) && !verify.OutcomeDelivered(d.After) {
			out[d.Src+">"+d.Dst.String()] = true
		}
	}
	return out
}
