package snapchain

import (
	"testing"

	"mfv/internal/kne"
)

// TestDiffStamps covers the dirty-set derivation directly: changed
// generations, changed epochs (rebuilt router), and one-sided devices all
// count as dirty; identical stamps do not.
func TestDiffStamps(t *testing.T) {
	a := map[string]kne.GenStamp{
		"r1": {Epoch: 0, Gen: 5},
		"r2": {Epoch: 0, Gen: 7},
		"r3": {Epoch: 1, Gen: 2},
		"r5": {Epoch: 0, Gen: 1},
	}
	b := map[string]kne.GenStamp{
		"r1": {Epoch: 0, Gen: 5}, // clean
		"r2": {Epoch: 0, Gen: 8}, // generation moved
		"r3": {Epoch: 2, Gen: 2}, // rebuilt: epoch moved, gen reset
		"r4": {Epoch: 0, Gen: 1}, // new
	}
	got := DiffStamps(a, b)
	want := []string{"r2", "r3", "r4", "r5"}
	if len(got) != len(want) {
		t.Fatalf("DiffStamps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DiffStamps = %v, want %v", got, want)
		}
	}
	if d := DiffStamps(a, a); len(d) != 0 {
		t.Errorf("DiffStamps(x, x) = %v", d)
	}
}
