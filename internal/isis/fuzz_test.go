package isis

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"

	"mfv/internal/diag"
)

// FuzzDecode throws arbitrary bytes at the IS-IS PDU decoder. Properties:
// decoding never panics, every rejection is a typed *diag.Error, and any
// PDU the decoder accepts re-encodes to a byte-identical fixed point.
func FuzzDecode(f *testing.F) {
	mustID := func(s string) SystemID {
		id, err := ParseSystemID(s)
		if err != nil {
			f.Fatal(err)
		}
		return id
	}
	r1, r2 := mustID("1010.1040.1010"), mustID("1010.1040.1020")
	f.Add(EncodeHello(Hello{
		Source:      r1,
		SourceIP:    netip.MustParseAddr("10.0.0.1"),
		HoldingTime: 30,
		Seen:        []SystemID{r2},
	}))
	f.Add(EncodeLSP(LSP{
		Origin: r1,
		Seq:    7,
		Neighbors: []Neighbor{
			{ID: r2, Metric: 10},
		},
		Prefixes: []PrefixReach{
			{Prefix: netip.MustParsePrefix("2.2.2.1/32"), Metric: 0},
			{Prefix: netip.MustParsePrefix("10.0.0.0/31"), Metric: 10},
		},
		Hostname: "r1",
	}))
	f.Add([]byte{protoDiscriminator, pduLSP}) // truncated
	f.Add([]byte{protoDiscriminator, 0x7f})   // unknown PDU type

	reencode := func(t *testing.T, v any) []byte {
		switch m := v.(type) {
		case Hello:
			return EncodeHello(m)
		case LSP:
			return EncodeLSP(m)
		default:
			t.Fatalf("decoder returned unexpected type %T", v)
			return nil
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			var de *diag.Error
			if !errors.As(err, &de) {
				t.Fatalf("decode error is not a *diag.Error: %v", err)
			}
			return
		}
		enc := reencode(t, v)
		v2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decoding encoded PDU: %v", err)
		}
		if enc2 := reencode(t, v2); !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical PDU encoding is not a fixed point:\n% x\n% x", enc, enc2)
		}
	})
}
