package isis

import (
	"net/netip"
	"sort"
	"time"

	"mfv/internal/obs"
	"mfv/internal/sim"
)

// Default protocol timers and metrics.
const (
	DefaultMetric     = 10
	defaultHello      = 10 * time.Second
	defaultHolding    = 30 * time.Second
	defaultSPFDelay   = 50 * time.Millisecond
	defaultLSPRefresh = 15 * time.Minute
)

// adjState is the P2P three-way handshake state.
type adjState uint8

const (
	adjDown adjState = iota
	adjInit          // heard the neighbor, it has not heard us
	adjUp
)

// String names the adjacency state for trace events.
func (s adjState) String() string {
	switch s {
	case adjInit:
		return "init"
	case adjUp:
		return "up"
	default:
		return "down"
	}
}

// Route is one SPF result installed toward the RIB.
type Route struct {
	Prefix   netip.Prefix
	Metric   uint32
	NextHops []NextHop
}

// NextHop is one ECMP leg of an IS-IS route.
type NextHop struct {
	IP        netip.Addr
	Interface string
}

// InterfaceConfig configures one IS-IS-enabled circuit.
type InterfaceConfig struct {
	Name string
	// Addr is the interface address used as the hello source (and thus the
	// neighbor's next hop).
	Addr netip.Addr
	// Prefixes advertised as IP reachability from this interface.
	Prefixes []netip.Prefix
	// Metric defaults to 10.
	Metric uint32
	// Passive advertises the prefixes without forming adjacencies
	// (loopbacks and edge links).
	Passive bool
}

// Config configures an IS-IS engine.
type Config struct {
	SystemID SystemID
	Hostname string
	Clock    *sim.Simulator
	// OnRoutes delivers the complete post-SPF route set; the receiver
	// replaces all previous IS-IS routes with it.
	OnRoutes func([]Route)
	// HelloInterval, HoldingTime, SPFDelay override protocol defaults when
	// nonzero (tests use short values).
	HelloInterval time.Duration
	HoldingTime   time.Duration
	SPFDelay      time.Duration
}

type circuit struct {
	cfg   InterfaceConfig
	send  func([]byte) // nil while link down
	state adjState
	nbr   SystemID
	nbrIP netip.Addr
	hold  *sim.Event
	hello *sim.Ticker
}

// Engine is one router's IS-IS process.
type Engine struct {
	cfg      Config
	circuits map[string]*circuit
	// lsdb maps origin system ID to its most recent LSP.
	lsdb map[SystemID]*LSP
	seq  uint32

	spfScheduled *sim.Event
	// delivered is the last route set handed to OnRoutes; SPF results equal
	// to it are suppressed (see RunSPF).
	delivered    []Route
	hasDelivered bool
	refresh      *sim.Ticker

	// Statistics.
	SPFRuns     uint64
	LSPsFlooded uint64

	// Observability (nil handles are no-ops).
	obs       *obs.Observer
	cSPFRuns  *obs.Counter
	cLSPFlood *obs.Counter
	hSPFNanos *obs.Histogram
}

// New builds an IS-IS engine. Start must be called after interfaces are
// added.
func New(cfg Config) *Engine {
	if cfg.Clock == nil {
		panic("isis: engine needs a clock")
	}
	if cfg.HelloInterval == 0 {
		cfg.HelloInterval = defaultHello
	}
	if cfg.HoldingTime == 0 {
		cfg.HoldingTime = defaultHolding
	}
	if cfg.SPFDelay == 0 {
		cfg.SPFDelay = defaultSPFDelay
	}
	return &Engine{
		cfg:      cfg,
		circuits: map[string]*circuit{},
		lsdb:     map[SystemID]*LSP{},
	}
}

// SystemID returns the engine's system ID.
func (e *Engine) SystemID() SystemID { return e.cfg.SystemID }

// SetObserver wires the engine into the observability layer: adjacency
// transitions become trace events, SPF runs and LSP floods become counters,
// and SPF compute time feeds a wall-clock histogram.
func (e *Engine) SetObserver(o *obs.Observer) {
	e.obs = o
	e.cSPFRuns = o.Counter("spf_runs_total")
	e.cLSPFlood = o.Counter("lsps_flooded_total")
	e.hSPFNanos = o.Histogram("spf_ns")
}

// emitAdjacency traces one circuit's adjacency transition.
func (e *Engine) emitAdjacency(c *circuit, st adjState) {
	if e.obs.Enabled() {
		e.obs.Emit(obs.Event{
			Type:   obs.EvISISAdjacency,
			Device: e.cfg.Hostname,
			Detail: c.cfg.Name + ":" + st.String(),
		})
	}
}

// AddInterface registers a circuit before Start.
func (e *Engine) AddInterface(cfg InterfaceConfig) {
	if cfg.Metric == 0 {
		cfg.Metric = DefaultMetric
	}
	e.circuits[cfg.Name] = &circuit{cfg: cfg}
}

// Start originates the initial LSP and begins hello transmission on all
// circuits whose transport is already attached.
func (e *Engine) Start() {
	e.originate()
	// Sorted iteration: hello timers must be armed in a deterministic order
	// so same-seed runs interleave identically.
	names := make([]string, 0, len(e.circuits))
	for name := range e.circuits {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.startHellos(e.circuits[name])
	}
	e.refresh = e.cfg.Clock.NewTicker(defaultLSPRefresh, func() { e.originate() })
}

// Stop cancels all timers.
func (e *Engine) Stop() {
	for _, c := range e.circuits {
		if c.hello != nil {
			c.hello.Stop()
		}
		if c.hold != nil {
			e.cfg.Clock.Cancel(c.hold)
		}
	}
	if e.refresh != nil {
		e.refresh.Stop()
	}
	if e.spfScheduled != nil {
		e.cfg.Clock.Cancel(e.spfScheduled)
	}
}

// AttachTransport provides the transmit function for a circuit (link up).
func (e *Engine) AttachTransport(name string, send func([]byte)) {
	c, ok := e.circuits[name]
	if !ok {
		return
	}
	c.send = send
	e.startHellos(c)
}

// DetachTransport signals link down: the adjacency drops immediately.
func (e *Engine) DetachTransport(name string) {
	c, ok := e.circuits[name]
	if !ok {
		return
	}
	c.send = nil
	if c.hello != nil {
		c.hello.Stop()
		c.hello = nil
	}
	e.adjacencyDown(c)
}

func (e *Engine) startHellos(c *circuit) {
	if c.send == nil || c.cfg.Passive || c.hello != nil {
		return
	}
	sendHello := func() {
		var seen []SystemID
		if c.state != adjDown {
			seen = []SystemID{c.nbr}
		}
		c.send(EncodeHello(Hello{
			Source:      e.cfg.SystemID,
			SourceIP:    c.cfg.Addr,
			HoldingTime: uint16(e.cfg.HoldingTime / time.Second),
			Seen:        seen,
		}))
	}
	sendHello()
	// Hellos tick on the global interval grid (aligned): a router rebuilt
	// after a crash advertises on the same schedule as its previous
	// incarnation, so neighbor hold-expiry times do not depend on when the
	// rebuild happened.
	c.hello = e.cfg.Clock.NewAlignedTicker(e.cfg.HelloInterval, sendHello)
}

// HandlePDU processes one received PDU on the named circuit.
func (e *Engine) HandlePDU(intf string, data []byte) {
	c, ok := e.circuits[intf]
	if !ok || c.cfg.Passive || c.send == nil {
		// Unknown circuit, passive circuit, or a PDU that was in flight
		// when the link went down: drop it.
		return
	}
	decoded, err := Decode(data)
	if err != nil {
		return // malformed PDUs are dropped, as on real circuits
	}
	switch pdu := decoded.(type) {
	case Hello:
		e.handleHello(c, pdu)
	case LSP:
		e.handleLSP(c, pdu)
	}
}

func (e *Engine) handleHello(c *circuit, h Hello) {
	prev := c.state
	c.nbr = h.Source
	c.nbrIP = h.SourceIP
	// Three-way: we are Up once the neighbor lists us as seen.
	c.state = adjInit
	for _, s := range h.Seen {
		if s == e.cfg.SystemID {
			c.state = adjUp
			break
		}
	}
	// (Re)arm the holding timer.
	if c.hold != nil {
		e.cfg.Clock.Cancel(c.hold)
	}
	hold := time.Duration(h.HoldingTime) * time.Second
	if hold <= 0 {
		hold = e.cfg.HoldingTime
	}
	c.hold = e.cfg.Clock.After(hold, func() { e.adjacencyDown(c) })

	if prev != c.state {
		e.emitAdjacency(c, c.state)
	}
	if prev != c.state && c.send != nil {
		// State changed: answer immediately so the three-way handshake
		// completes in milliseconds instead of waiting for hello ticks.
		c.send(EncodeHello(Hello{
			Source:      e.cfg.SystemID,
			SourceIP:    c.cfg.Addr,
			HoldingTime: uint16(e.cfg.HoldingTime / time.Second),
			Seen:        []SystemID{c.nbr},
		}))
	}
	if prev != adjUp && c.state == adjUp {
		// Adjacency came up: regenerate our LSP and sync the database.
		e.originate()
		for _, lsp := range e.lsdbSorted() {
			c.send(EncodeLSP(*lsp))
			e.LSPsFlooded++
			e.cLSPFlood.Inc()
		}
		e.scheduleSPF()
	} else if prev == adjUp && c.state != adjUp {
		e.originate()
		e.scheduleSPF()
	}
}

func (e *Engine) adjacencyDown(c *circuit) {
	if c.hold != nil {
		e.cfg.Clock.Cancel(c.hold)
		c.hold = nil
	}
	if c.state == adjDown {
		return
	}
	c.state = adjDown
	e.emitAdjacency(c, adjDown)
	e.originate()
	e.scheduleSPF()
}

func (e *Engine) handleLSP(c *circuit, lsp LSP) {
	have, ok := e.lsdb[lsp.Origin]
	if lsp.Origin == e.cfg.SystemID {
		// Someone flooded our own LSP back; if it is newer than ours (e.g.
		// stale copy after restart), bump our sequence past it.
		if ok && lsp.Seq >= have.Seq {
			e.seq = lsp.Seq
			e.originate()
		}
		return
	}
	if ok && have.Seq >= lsp.Seq {
		return // old news
	}
	cp := lsp
	e.lsdb[lsp.Origin] = &cp
	e.floodExcept(&cp, c)
	if ok && lspContentEqual(have, &cp) {
		// Pure sequence-number refresh: the topology the LSP describes did
		// not change, so recomputing SPF would be wasted work — and a
		// periodic refresh wave must not read as routing activity to
		// convergence detection.
		return
	}
	e.scheduleSPF()
}

// lspContentEqual reports whether two LSPs describe the same topology —
// everything but the sequence number.
func lspContentEqual(a, b *LSP) bool {
	if a.Origin != b.Origin || a.Hostname != b.Hostname ||
		len(a.Neighbors) != len(b.Neighbors) || len(a.Prefixes) != len(b.Prefixes) {
		return false
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			return false
		}
	}
	for i := range a.Prefixes {
		if a.Prefixes[i] != b.Prefixes[i] {
			return false
		}
	}
	return true
}

// originate regenerates our own LSP and floods it.
func (e *Engine) originate() {
	e.seq++
	lsp := LSP{
		Origin:   e.cfg.SystemID,
		Seq:      e.seq,
		Hostname: e.cfg.Hostname,
	}
	names := make([]string, 0, len(e.circuits))
	for name := range e.circuits {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := e.circuits[name]
		if c.state == adjUp {
			lsp.Neighbors = append(lsp.Neighbors, Neighbor{ID: c.nbr, Metric: c.cfg.Metric})
		}
		for _, p := range c.cfg.Prefixes {
			lsp.Prefixes = append(lsp.Prefixes, PrefixReach{Prefix: p.Masked(), Metric: 0})
		}
	}
	e.lsdb[e.cfg.SystemID] = &lsp
	e.floodExcept(&lsp, nil)
	e.scheduleSPF()
}

func (e *Engine) floodExcept(lsp *LSP, skip *circuit) {
	data := EncodeLSP(*lsp)
	names := make([]string, 0, len(e.circuits))
	for name := range e.circuits {
		names = append(names, name)
	}
	sort.Strings(names)
	flooded := 0
	for _, name := range names {
		c := e.circuits[name]
		if c == skip || c.send == nil || c.cfg.Passive || c.state != adjUp {
			continue
		}
		c.send(data)
		e.LSPsFlooded++
		flooded++
	}
	if flooded > 0 {
		e.cLSPFlood.Add(uint64(flooded))
		if e.obs.Enabled() {
			e.obs.Emit(obs.Event{Type: obs.EvLSPFlood, Device: e.cfg.Hostname, Value: int64(flooded)})
		}
	}
}

func (e *Engine) lsdbSorted() []*LSP {
	out := make([]*LSP, 0, len(e.lsdb))
	for _, lsp := range e.lsdb {
		out = append(out, lsp)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i].Origin[:]) < string(out[j].Origin[:])
	})
	return out
}

// LSDB returns a snapshot of the database for CLI-style inspection.
func (e *Engine) LSDB() []LSP {
	out := make([]LSP, 0, len(e.lsdb))
	for _, lsp := range e.lsdbSorted() {
		out = append(out, *lsp)
	}
	return out
}

// Adjacencies returns the circuits with their adjacency state, sorted by
// interface name, for CLI-style inspection.
type Adjacency struct {
	Interface string
	Neighbor  SystemID
	Up        bool
}

// Adjacencies lists non-passive circuits and their state.
func (e *Engine) Adjacencies() []Adjacency {
	var out []Adjacency
	names := make([]string, 0, len(e.circuits))
	for name := range e.circuits {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := e.circuits[name]
		if c.cfg.Passive {
			continue
		}
		out = append(out, Adjacency{Interface: name, Neighbor: c.nbr, Up: c.state == adjUp})
	}
	return out
}

func (e *Engine) scheduleSPF() {
	if e.spfScheduled != nil {
		return
	}
	e.spfScheduled = e.cfg.Clock.After(e.cfg.SPFDelay, func() {
		e.spfScheduled = nil
		e.RunSPF()
	})
}

// RunSPF computes shortest paths over the LSDB and delivers routes. It is
// exported for tests and for forced recomputation.
func (e *Engine) RunSPF() {
	e.SPFRuns++
	e.cSPFRuns.Inc()
	var spfStart time.Time
	if e.obs != nil {
		spfStart = time.Now()
		defer func() { e.hSPFNanos.Observe(time.Since(spfStart).Nanoseconds()) }()
	}
	self := e.cfg.SystemID

	// Build the adjacency-verified graph: an edge A->B counts only if B
	// also reports A (two-way connectivity check).
	reports := func(from, to SystemID) (uint32, bool) {
		lsp, ok := e.lsdb[from]
		if !ok {
			return 0, false
		}
		for _, n := range lsp.Neighbors {
			if n.ID == to {
				return n.Metric, true
			}
		}
		return 0, false
	}

	type nodeDist struct {
		id   SystemID
		dist uint32
	}
	dist := map[SystemID]uint32{self: 0}
	// firstHops maps a node to the set of local next hops reaching it.
	firstHops := map[SystemID][]NextHop{}
	visited := map[SystemID]bool{}

	// Local adjacencies seed the frontier.
	localHop := map[SystemID][]NextHop{}
	names := make([]string, 0, len(e.circuits))
	for name := range e.circuits {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := e.circuits[name]
		if c.state == adjUp {
			localHop[c.nbr] = append(localHop[c.nbr], NextHop{IP: c.nbrIP, Interface: name})
		}
	}

	for {
		// Extract-min over unvisited nodes (the LSDB is small enough that a
		// linear scan keeps the code simple; scale tests confirm this is
		// not the bottleneck).
		var cur nodeDist
		found := false
		for id, d := range dist {
			if visited[id] {
				continue
			}
			if !found || d < cur.dist || (d == cur.dist && string(id[:]) < string(cur.id[:])) {
				cur = nodeDist{id, d}
				found = true
			}
		}
		if !found {
			break
		}
		visited[cur.id] = true

		lsp, ok := e.lsdb[cur.id]
		if !ok {
			continue
		}
		for _, n := range lsp.Neighbors {
			// Two-way check.
			if _, ok := reports(n.ID, cur.id); !ok {
				continue
			}
			nd := cur.dist + n.Metric
			old, seen := dist[n.ID]
			if !seen || nd < old {
				dist[n.ID] = nd
				if cur.id == self {
					firstHops[n.ID] = append([]NextHop{}, localHop[n.ID]...)
				} else {
					firstHops[n.ID] = append([]NextHop{}, firstHops[cur.id]...)
				}
			} else if seen && nd == old {
				// Equal cost: merge first hops.
				var add []NextHop
				if cur.id == self {
					add = localHop[n.ID]
				} else {
					add = firstHops[cur.id]
				}
				firstHops[n.ID] = mergeHops(firstHops[n.ID], add)
			}
		}
	}

	// Collect prefix routes.
	bestByPrefix := map[netip.Prefix]*Route{}
	for id, lsp := range e.lsdb {
		if id == self {
			continue
		}
		d, reachable := dist[id]
		if !reachable {
			continue
		}
		hops := firstHops[id]
		if len(hops) == 0 {
			continue
		}
		for _, pr := range lsp.Prefixes {
			total := d + pr.Metric
			have, ok := bestByPrefix[pr.Prefix]
			switch {
			case !ok || total < have.Metric:
				bestByPrefix[pr.Prefix] = &Route{
					Prefix:   pr.Prefix,
					Metric:   total,
					NextHops: append([]NextHop{}, hops...),
				}
			case total == have.Metric:
				have.NextHops = mergeHops(have.NextHops, hops)
			}
		}
	}
	// Drop prefixes we also advertise locally (connected beats IGP anyway,
	// and real IS-IS does not install routes to its own prefixes).
	for _, c := range e.circuits {
		for _, p := range c.cfg.Prefixes {
			delete(bestByPrefix, p.Masked())
		}
	}

	routes := make([]Route, 0, len(bestByPrefix))
	for _, r := range bestByPrefix {
		sort.Slice(r.NextHops, func(i, j int) bool {
			if r.NextHops[i].IP != r.NextHops[j].IP {
				return r.NextHops[i].IP.Less(r.NextHops[j].IP)
			}
			return r.NextHops[i].Interface < r.NextHops[j].Interface
		})
		routes = append(routes, *r)
	}
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].Prefix.Addr() != routes[j].Prefix.Addr() {
			return routes[i].Prefix.Addr().Less(routes[j].Prefix.Addr())
		}
		return routes[i].Prefix.Bits() < routes[j].Prefix.Bits()
	})
	if e.cfg.OnRoutes != nil && !(e.hasDelivered && routesEqual(e.delivered, routes)) {
		// Deliver only on change: an SPF whose result matches the last
		// delivery (LSP refresh waves, redundant floods) must not rewrite
		// the RIB — a rewrite bumps the FIB generation and reads as routing
		// activity to convergence detection.
		e.delivered = routes
		e.hasDelivered = true
		e.cfg.OnRoutes(routes)
	}
}

// routesEqual compares two canonically sorted SPF results.
func routesEqual(a, b []Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Prefix != b[i].Prefix || a[i].Metric != b[i].Metric ||
			len(a[i].NextHops) != len(b[i].NextHops) {
			return false
		}
		for j := range a[i].NextHops {
			if a[i].NextHops[j] != b[i].NextHops[j] {
				return false
			}
		}
	}
	return true
}

func mergeHops(a, b []NextHop) []NextHop {
	out := append([]NextHop{}, a...)
	for _, h := range b {
		dup := false
		for _, have := range out {
			if have == h {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, h)
		}
	}
	return out
}
