package isis

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"mfv/internal/sim"
)

func sysID(i int) SystemID {
	id, err := ParseSystemID(fmt.Sprintf("0000.0000.%04x", i))
	if err != nil {
		panic(err)
	}
	return id
}

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

// net is a test network of IS-IS engines joined by simulated links.
type net struct {
	s       *sim.Simulator
	engines map[string]*Engine
	routes  map[string][]Route
}

func newNet() *net {
	return &net{s: sim.New(1), engines: map[string]*Engine{}, routes: map[string][]Route{}}
}

func (n *net) add(name string, id int) *Engine {
	e := New(Config{
		SystemID: sysID(id),
		Hostname: name,
		Clock:    n.s,
		OnRoutes: func(rs []Route) { n.routes[name] = rs },
	})
	n.engines[name] = e
	return e
}

// link joins engineA.intfA <-> engineB.intfB with 1 ms latency.
func (n *net) link(a *Engine, intfA string, b *Engine, intfB string) {
	a.AttachTransport(intfA, func(data []byte) {
		d := append([]byte{}, data...)
		n.s.After(time.Millisecond, func() { b.HandlePDU(intfB, d) })
	})
	b.AttachTransport(intfB, func(data []byte) {
		d := append([]byte{}, data...)
		n.s.After(time.Millisecond, func() { a.HandlePDU(intfA, d) })
	})
}

// lineThree builds r1 -- r2 -- r3 with loopbacks 1.1.1.N/32.
func lineThree() (*net, [3]*Engine) {
	n := newNet()
	var e [3]*Engine
	for i := 0; i < 3; i++ {
		e[i] = n.add(fmt.Sprintf("r%d", i+1), i+1)
		e[i].AddInterface(InterfaceConfig{
			Name: "Loopback0", Passive: true,
			Prefixes: []netip.Prefix{pfx(fmt.Sprintf("1.1.1.%d/32", i+1))},
		})
	}
	e[0].AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.12.1"), Prefixes: []netip.Prefix{pfx("10.0.12.0/31")}})
	e[1].AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.12.0"), Prefixes: []netip.Prefix{pfx("10.0.12.0/31")}})
	e[1].AddInterface(InterfaceConfig{Name: "Ethernet2", Addr: addr("10.0.23.1"), Prefixes: []netip.Prefix{pfx("10.0.23.0/31")}})
	e[2].AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.23.0"), Prefixes: []netip.Prefix{pfx("10.0.23.0/31")}})
	n.link(e[0], "Ethernet1", e[1], "Ethernet1")
	n.link(e[1], "Ethernet2", e[2], "Ethernet1")
	for i := range e {
		e[i].Start()
	}
	return n, e
}

func findRoute(rs []Route, p netip.Prefix) (Route, bool) {
	for _, r := range rs {
		if r.Prefix == p {
			return r, true
		}
	}
	return Route{}, false
}

func TestSystemIDParse(t *testing.T) {
	id, err := ParseSystemID("1010.1040.1030")
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != "1010.1040.1030" {
		t.Errorf("String = %q", id.String())
	}
	for _, bad := range []string{"", "1010.1040", "zzzz.1040.1030", "10.1040.1030"} {
		if _, err := ParseSystemID(bad); err == nil {
			t.Errorf("ParseSystemID(%q) succeeded", bad)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	h := Hello{
		Source:      sysID(7),
		SourceIP:    addr("10.0.0.1"),
		HoldingTime: 30,
		Seen:        []SystemID{sysID(1), sysID(2)},
	}
	got, err := Decode(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	gh := got.(Hello)
	if gh.Source != h.Source || gh.SourceIP != h.SourceIP || len(gh.Seen) != 2 || gh.Seen[1] != sysID(2) {
		t.Errorf("hello round trip = %+v", gh)
	}

	l := LSP{
		Origin: sysID(3),
		Seq:    42,
		Neighbors: []Neighbor{
			{ID: sysID(1), Metric: 10}, {ID: sysID(2), Metric: 25},
		},
		Prefixes: []PrefixReach{
			{Prefix: pfx("10.0.0.0/31"), Metric: 0},
			{Prefix: pfx("1.1.1.3/32"), Metric: 5},
		},
		Hostname: "r3",
	}
	got, err = Decode(EncodeLSP(l))
	if err != nil {
		t.Fatal(err)
	}
	gl := got.(LSP)
	if gl.Origin != l.Origin || gl.Seq != 42 || len(gl.Neighbors) != 2 ||
		gl.Neighbors[1].Metric != 25 || len(gl.Prefixes) != 2 ||
		gl.Prefixes[0].Prefix != pfx("10.0.0.0/31") || gl.Hostname != "r3" {
		t.Errorf("LSP round trip = %+v", gl)
	}
}

func TestCodecErrors(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		{0x83},
		{0x00, pduHello},
		{0x83, 99},
		{0x83, pduHello, 1, 2, 3},
		{0x83, pduLSP, 1, 2, 3},
	} {
		if _, err := Decode(bad); err == nil {
			t.Errorf("Decode(%v) succeeded", bad)
		}
	}
	// Truncated neighbor list.
	h := EncodeHello(Hello{Source: sysID(1), SourceIP: addr("1.1.1.1"), HoldingTime: 30, Seen: []SystemID{sysID(2)}})
	if _, err := Decode(h[:len(h)-3]); err == nil {
		t.Error("truncated hello accepted")
	}
}

func TestAdjacencyAndConvergence(t *testing.T) {
	n, e := lineThree()
	n.s.RunFor(time.Minute)

	for i, eng := range e {
		adjs := eng.Adjacencies()
		for _, a := range adjs {
			if !a.Up {
				t.Errorf("r%d %s adjacency down: %+v", i+1, a.Interface, a)
			}
		}
	}
	// r1 must reach r3's loopback via r2 with metric 20 (two hops × 10).
	r, ok := findRoute(n.routes["r1"], pfx("1.1.1.3/32"))
	if !ok {
		t.Fatalf("r1 routes = %+v; missing 1.1.1.3/32", n.routes["r1"])
	}
	if r.Metric != 20 {
		t.Errorf("metric = %d, want 20", r.Metric)
	}
	if len(r.NextHops) != 1 || r.NextHops[0].IP != addr("10.0.12.0") || r.NextHops[0].Interface != "Ethernet1" {
		t.Errorf("next hops = %+v", r.NextHops)
	}
	// r1 must also have the remote transfer net 10.0.23.0/31 but NOT its own
	// connected 10.0.12.0/31.
	if _, ok := findRoute(n.routes["r1"], pfx("10.0.23.0/31")); !ok {
		t.Error("r1 missing remote transfer network")
	}
	if _, ok := findRoute(n.routes["r1"], pfx("10.0.12.0/31")); ok {
		t.Error("r1 installed an IS-IS route to its own connected prefix")
	}
	// LSDBs must all contain 3 LSPs.
	for i, eng := range e {
		if got := len(eng.LSDB()); got != 3 {
			t.Errorf("r%d LSDB size = %d, want 3", i+1, got)
		}
	}
}

func TestLinkFailureReconvergence(t *testing.T) {
	n, e := lineThree()
	n.s.RunFor(time.Minute)
	if _, ok := findRoute(n.routes["r1"], pfx("1.1.1.3/32")); !ok {
		t.Fatal("not converged before failure")
	}
	// Cut the r2—r3 link (both directions).
	e[1].DetachTransport("Ethernet2")
	e[2].DetachTransport("Ethernet1")
	n.s.RunFor(time.Minute)
	if _, ok := findRoute(n.routes["r1"], pfx("1.1.1.3/32")); ok {
		t.Error("r1 still has a route to r3 after the only path was cut")
	}
	// r1 must still reach r2.
	if _, ok := findRoute(n.routes["r1"], pfx("1.1.1.2/32")); !ok {
		t.Error("r1 lost the route to r2 too")
	}
}

func TestHoldingTimeExpiry(t *testing.T) {
	n, e := lineThree()
	n.s.RunFor(time.Minute)
	// Silently kill r3's transmissions (simulates one-way loss): r2's
	// holding timer must expire and routes through r3 vanish.
	e[2].Stop()
	n.s.RunFor(2 * time.Minute)
	if _, ok := findRoute(n.routes["r1"], pfx("1.1.1.3/32")); ok {
		t.Error("stale adjacency survived holding-time expiry")
	}
}

func TestECMP(t *testing.T) {
	// Diamond: r1 -> {r2, r3} -> r4, equal metrics everywhere.
	n := newNet()
	e1, e2, e3, e4 := n.add("r1", 1), n.add("r2", 2), n.add("r3", 3), n.add("r4", 4)
	for i, e := range []*Engine{e1, e2, e3, e4} {
		e.AddInterface(InterfaceConfig{
			Name: "Loopback0", Passive: true,
			Prefixes: []netip.Prefix{pfx(fmt.Sprintf("1.1.1.%d/32", i+1))},
		})
	}
	// r1 Ethernet1 <-> r2 Ethernet1 ; r1 Ethernet2 <-> r3 Ethernet1
	// r2 Ethernet2 <-> r4 Ethernet1 ; r3 Ethernet2 <-> r4 Ethernet2
	e1.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.12.1")})
	e2.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.12.2")})
	e1.AddInterface(InterfaceConfig{Name: "Ethernet2", Addr: addr("10.0.13.1")})
	e3.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.13.3")})
	e2.AddInterface(InterfaceConfig{Name: "Ethernet2", Addr: addr("10.0.24.2")})
	e4.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.24.4")})
	e3.AddInterface(InterfaceConfig{Name: "Ethernet2", Addr: addr("10.0.34.3")})
	e4.AddInterface(InterfaceConfig{Name: "Ethernet2", Addr: addr("10.0.34.4")})
	n.link(e1, "Ethernet1", e2, "Ethernet1")
	n.link(e1, "Ethernet2", e3, "Ethernet1")
	n.link(e2, "Ethernet2", e4, "Ethernet1")
	n.link(e3, "Ethernet2", e4, "Ethernet2")
	for _, e := range []*Engine{e1, e2, e3, e4} {
		e.Start()
	}
	n.s.RunFor(time.Minute)
	r, ok := findRoute(n.routes["r1"], pfx("1.1.1.4/32"))
	if !ok {
		t.Fatal("r1 missing route to r4")
	}
	if len(r.NextHops) != 2 {
		t.Errorf("next hops = %+v, want 2-way ECMP", r.NextHops)
	}
	if r.Metric != 20 {
		t.Errorf("metric = %d, want 20", r.Metric)
	}
}

func TestMetricInfluencesPath(t *testing.T) {
	// Triangle r1-r2-r3 with an expensive direct r1-r3 link: traffic must
	// prefer the two-hop cheap path.
	n := newNet()
	e1, e2, e3 := n.add("r1", 1), n.add("r2", 2), n.add("r3", 3)
	for i, e := range []*Engine{e1, e2, e3} {
		e.AddInterface(InterfaceConfig{
			Name: "Loopback0", Passive: true,
			Prefixes: []netip.Prefix{pfx(fmt.Sprintf("1.1.1.%d/32", i+1))},
		})
	}
	e1.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.12.1")})
	e2.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.12.2")})
	e2.AddInterface(InterfaceConfig{Name: "Ethernet2", Addr: addr("10.0.23.2")})
	e3.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.23.3")})
	e1.AddInterface(InterfaceConfig{Name: "Ethernet2", Addr: addr("10.0.13.1"), Metric: 100})
	e3.AddInterface(InterfaceConfig{Name: "Ethernet2", Addr: addr("10.0.13.3"), Metric: 100})
	n.link(e1, "Ethernet1", e2, "Ethernet1")
	n.link(e2, "Ethernet2", e3, "Ethernet1")
	n.link(e1, "Ethernet2", e3, "Ethernet2")
	for _, e := range []*Engine{e1, e2, e3} {
		e.Start()
	}
	n.s.RunFor(time.Minute)
	r, ok := findRoute(n.routes["r1"], pfx("1.1.1.3/32"))
	if !ok {
		t.Fatal("r1 missing route to r3")
	}
	if r.Metric != 20 {
		t.Errorf("metric = %d, want 20 (via r2)", r.Metric)
	}
	if len(r.NextHops) != 1 || r.NextHops[0].Interface != "Ethernet1" {
		t.Errorf("next hops = %+v, want via Ethernet1 only", r.NextHops)
	}
	// Now cut the cheap path: the expensive link must take over.
	e1.DetachTransport("Ethernet1")
	e2.DetachTransport("Ethernet1")
	n.s.RunFor(time.Minute)
	r, ok = findRoute(n.routes["r1"], pfx("1.1.1.3/32"))
	if !ok {
		t.Fatal("no fallback to expensive link")
	}
	if r.Metric != 100 || r.NextHops[0].Interface != "Ethernet2" {
		t.Errorf("fallback route = %+v, want metric 100 via Ethernet2", r)
	}
}

func TestPassiveInterfaceFormsNoAdjacency(t *testing.T) {
	n := newNet()
	e1, e2 := n.add("r1", 1), n.add("r2", 2)
	e1.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.0.1"), Passive: true, Prefixes: []netip.Prefix{pfx("10.0.0.0/31")}})
	e2.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.0.0")})
	n.link(e1, "Ethernet1", e2, "Ethernet1")
	e1.Start()
	e2.Start()
	n.s.RunFor(time.Minute)
	for _, a := range e2.Adjacencies() {
		if a.Up {
			t.Errorf("adjacency formed with a passive interface: %+v", a)
		}
	}
}

func TestLSPSequenceSupersession(t *testing.T) {
	n, e := lineThree()
	n.s.RunFor(time.Minute)
	before := e[0].LSDB()
	var r3Seq uint32
	for _, lsp := range before {
		if lsp.Origin == sysID(3) {
			r3Seq = lsp.Seq
		}
	}
	// Force r3 to re-originate; its higher-seq LSP must replace the old one
	// at r1.
	e[2].RunSPF() // no-op for DB, just exercising
	n.s.RunFor(time.Second)
	e[2].HandlePDU("Ethernet1", EncodeLSP(LSP{Origin: sysID(3), Seq: r3Seq + 10}))
	n.s.RunFor(time.Minute)
	for _, lsp := range e[0].LSDB() {
		if lsp.Origin == sysID(3) && lsp.Seq <= r3Seq {
			t.Errorf("r1 kept stale LSP seq %d (own-LSP bump not flooded)", lsp.Seq)
		}
	}
}

func TestStaleOwnLSPBumpsSequence(t *testing.T) {
	n, e := lineThree()
	n.s.RunFor(time.Minute)
	// Inject a fake "our own" LSP with a huge sequence at r1: r1 must jump
	// past it.
	fake := LSP{Origin: sysID(1), Seq: 1000}
	e[0].HandlePDU("Ethernet1", EncodeLSP(fake))
	n.s.RunFor(time.Minute)
	own := e[0].LSDB()
	for _, lsp := range own {
		if lsp.Origin == sysID(1) && lsp.Seq <= 1000 {
			t.Errorf("own LSP seq = %d, want > 1000", lsp.Seq)
		}
	}
}

func TestDetachBeforeStartIsSafe(t *testing.T) {
	n := newNet()
	e := n.add("r1", 1)
	e.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.0.1")})
	e.DetachTransport("Ethernet1") // no transport attached yet
	e.DetachTransport("Ethernet9") // unknown interface
	e.HandlePDU("Ethernet9", nil)  // unknown interface
	e.Start()
	n.s.RunFor(time.Second)
}

func BenchmarkSPFGrid(b *testing.B) {
	// 10x10 grid LSDB built synthetically, SPF from one corner.
	n := newNet()
	e := n.add("r0", 1)
	e.AddInterface(InterfaceConfig{Name: "Ethernet1", Addr: addr("10.0.0.1")})
	id := func(r, c int) SystemID { return sysID(r*10 + c + 1) }
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			lsp := LSP{Origin: id(r, c), Seq: 1}
			if r > 0 {
				lsp.Neighbors = append(lsp.Neighbors, Neighbor{ID: id(r-1, c), Metric: 10})
			}
			if r < 9 {
				lsp.Neighbors = append(lsp.Neighbors, Neighbor{ID: id(r+1, c), Metric: 10})
			}
			if c > 0 {
				lsp.Neighbors = append(lsp.Neighbors, Neighbor{ID: id(r, c-1), Metric: 10})
			}
			if c < 9 {
				lsp.Neighbors = append(lsp.Neighbors, Neighbor{ID: id(r, c+1), Metric: 10})
			}
			lsp.Prefixes = []PrefixReach{{Prefix: pfx(fmt.Sprintf("10.%d.%d.0/24", r, c))}}
			e.lsdb[lsp.Origin] = &lsp
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunSPF()
	}
}
