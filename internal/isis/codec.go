// Package isis implements a link-state IGP modeled on IS-IS level-2: hello
// adjacencies with a three-way handshake, LSP generation and flooding with
// sequence numbers, and an ECMP-capable Dijkstra SPF feeding routes to the
// RIB. PDUs are binary-encoded and travel encoded over emulated links, as
// with the BGP engine.
package isis

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"

	"mfv/internal/diag"
)

// SystemID is the 6-byte IS-IS system identifier.
type SystemID [6]byte

// ParseSystemID parses the dotted form "1010.1040.1030".
func ParseSystemID(s string) (SystemID, error) {
	var id SystemID
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return id, fmt.Errorf("isis: bad system ID %q", s)
	}
	for i, part := range parts {
		if len(part) != 4 {
			return id, fmt.Errorf("isis: bad system ID %q", s)
		}
		var v uint16
		if _, err := fmt.Sscanf(part, "%04x", &v); err != nil {
			return id, fmt.Errorf("isis: bad system ID %q", s)
		}
		binary.BigEndian.PutUint16(id[2*i:], v)
	}
	return id, nil
}

// String renders the dotted hex form.
func (id SystemID) String() string {
	return fmt.Sprintf("%02x%02x.%02x%02x.%02x%02x", id[0], id[1], id[2], id[3], id[4], id[5])
}

// PDU type codes (within this implementation's framing).
const (
	pduHello = 1
	pduLSP   = 2
)

const protoDiscriminator = 0x83 // ISO 10589 NLPID

// Hello is a point-to-point IIH.
type Hello struct {
	Source SystemID
	// SourceIP is the sender's interface address on this link, used as the
	// next hop by the receiver's SPF.
	SourceIP netip.Addr
	// HoldingTime is the adjacency expiry in seconds.
	HoldingTime uint16
	// Seen lists system IDs the sender has heard on this interface; seeing
	// our own ID completes the three-way handshake.
	Seen []SystemID
}

// Neighbor is one IS-reachability entry of an LSP.
type Neighbor struct {
	ID     SystemID
	Metric uint32
}

// PrefixReach is one IP-reachability entry of an LSP.
type PrefixReach struct {
	Prefix netip.Prefix
	Metric uint32
}

// LSP is a link-state PDU.
type LSP struct {
	Origin    SystemID
	Seq       uint32
	Neighbors []Neighbor
	Prefixes  []PrefixReach
	Hostname  string
}

// addr4 renders an address as 4 wire bytes; invalid or non-IPv4 addresses
// (hostile or unset input) become 0.0.0.0 instead of panicking in As4.
func addr4(a netip.Addr) [4]byte {
	if !a.Is4() && !a.Is4In6() {
		return [4]byte{}
	}
	return a.As4()
}

// EncodeHello marshals a hello PDU. The seen-neighbor count travels in one
// byte, so a list longer than 255 (only reachable with hostile input) is
// truncated deterministically rather than letting the count wrap and desync
// the wire layout.
func EncodeHello(h Hello) []byte {
	seen := h.Seen
	if len(seen) > 255 {
		seen = seen[:255]
	}
	buf := make([]byte, 0, 16+6*len(seen))
	buf = append(buf, protoDiscriminator, pduHello)
	buf = append(buf, h.Source[:]...)
	ip := addr4(h.SourceIP)
	buf = append(buf, ip[:]...)
	buf = binary.BigEndian.AppendUint16(buf, h.HoldingTime)
	buf = append(buf, byte(len(seen)))
	for _, s := range seen {
		buf = append(buf, s[:]...)
	}
	return buf
}

// EncodeLSP marshals an LSP. Counts travel as uint16 (neighbors, prefixes)
// and uint8 (hostname length); oversized lists are truncated rather than
// wrapped, and non-IPv4 prefixes — unencodable in this PDU format — are
// dropped.
func EncodeLSP(l LSP) []byte {
	neighbors := l.Neighbors
	if len(neighbors) > 65535 {
		neighbors = neighbors[:65535]
	}
	prefixes := make([]PrefixReach, 0, len(l.Prefixes))
	for _, p := range l.Prefixes {
		if p.Prefix.IsValid() && p.Prefix.Addr().Is4() && len(prefixes) < 65535 {
			prefixes = append(prefixes, p)
		}
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, protoDiscriminator, pduLSP)
	buf = append(buf, l.Origin[:]...)
	buf = binary.BigEndian.AppendUint32(buf, l.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(neighbors)))
	for _, n := range neighbors {
		buf = append(buf, n.ID[:]...)
		buf = binary.BigEndian.AppendUint32(buf, n.Metric)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(prefixes)))
	for _, p := range prefixes {
		a := p.Prefix.Addr().As4()
		buf = append(buf, a[:]...)
		buf = append(buf, byte(p.Prefix.Bits()))
		buf = binary.BigEndian.AppendUint32(buf, p.Metric)
	}
	if len(l.Hostname) > 255 {
		l.Hostname = l.Hostname[:255]
	}
	buf = append(buf, byte(len(l.Hostname)))
	buf = append(buf, l.Hostname...)
	return buf
}

// Decode parses a PDU, returning Hello or LSP. Errors are *diag.Error
// (source "isis") carrying the byte offset where decoding failed.
func Decode(b []byte) (any, error) {
	if len(b) < 2 || b[0] != protoDiscriminator {
		return nil, diag.Decodef("isis", 0, "bad PDU header")
	}
	switch b[1] {
	case pduHello:
		v, err := decodeHello(b[2:])
		if err != nil {
			return nil, diag.Wrap(err, diag.SevError, "isis", "")
		}
		return v, nil
	case pduLSP:
		v, err := decodeLSP(b[2:])
		if err != nil {
			return nil, diag.Wrap(err, diag.SevError, "isis", "")
		}
		return v, nil
	default:
		return nil, diag.Decodef("isis", 1, "unknown PDU type %d", b[1])
	}
}

func decodeHello(b []byte) (Hello, error) {
	var h Hello
	if len(b) < 13 {
		return h, fmt.Errorf("isis: truncated hello")
	}
	copy(h.Source[:], b[0:6])
	var ip [4]byte
	copy(ip[:], b[6:10])
	h.SourceIP = netip.AddrFrom4(ip)
	h.HoldingTime = binary.BigEndian.Uint16(b[10:12])
	n := int(b[12])
	b = b[13:]
	if len(b) != 6*n {
		return h, fmt.Errorf("isis: hello neighbor list length mismatch")
	}
	for i := 0; i < n; i++ {
		var s SystemID
		copy(s[:], b[6*i:])
		h.Seen = append(h.Seen, s)
	}
	return h, nil
}

func decodeLSP(b []byte) (LSP, error) {
	var l LSP
	if len(b) < 12 {
		return l, fmt.Errorf("isis: truncated LSP")
	}
	copy(l.Origin[:], b[0:6])
	l.Seq = binary.BigEndian.Uint32(b[6:10])
	nn := int(binary.BigEndian.Uint16(b[10:12]))
	b = b[12:]
	if len(b) < 10*nn+2 {
		return l, fmt.Errorf("isis: truncated LSP neighbors")
	}
	for i := 0; i < nn; i++ {
		var n Neighbor
		copy(n.ID[:], b[10*i:])
		n.Metric = binary.BigEndian.Uint32(b[10*i+6:])
		l.Neighbors = append(l.Neighbors, n)
	}
	b = b[10*nn:]
	np := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	if len(b) < 9*np+1 {
		return l, fmt.Errorf("isis: truncated LSP prefixes")
	}
	for i := 0; i < np; i++ {
		var ip [4]byte
		copy(ip[:], b[9*i:])
		bits := int(b[9*i+4])
		if bits > 32 {
			return l, fmt.Errorf("isis: bad prefix length %d", bits)
		}
		l.Prefixes = append(l.Prefixes, PrefixReach{
			Prefix: netip.PrefixFrom(netip.AddrFrom4(ip), bits).Masked(),
			Metric: binary.BigEndian.Uint32(b[9*i+5:]),
		})
	}
	b = b[9*np:]
	hl := int(b[0])
	if len(b) != 1+hl {
		return l, fmt.Errorf("isis: bad hostname length")
	}
	l.Hostname = string(b[1:])
	return l, nil
}
