package lint

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"mfv/internal/aft"
	"mfv/internal/diag"
	"mfv/internal/kne"
	"mfv/internal/sim"
	"mfv/internal/testnet"
	"mfv/internal/topology"
)

// cfgA/cfgB are a minimal healthy two-router snapshot: a /31 between them,
// loopbacks, and an eBGP session across the wire.
const cfgA = `hostname a
interface Loopback0
   ip address 2.2.2.1/32
interface Ethernet1
   ip address 10.0.0.0/31
   no switchport
!
router bgp 65001
   router-id 2.2.2.1
   neighbor 10.0.0.1 remote-as 65002
!
`

const cfgB = `hostname b
interface Loopback0
   ip address 2.2.2.2/32
interface Ethernet1
   ip address 10.0.0.1/31
   no switchport
!
router bgp 65002
   router-id 2.2.2.2
   neighbor 10.0.0.0 remote-as 65001
!
`

func pair(cfgA, cfgB string) *topology.Topology {
	return &topology.Topology{
		Name: "pair",
		Nodes: []topology.Node{
			{Name: "a", Vendor: topology.VendorEOS, Config: cfgA},
			{Name: "b", Vendor: topology.VendorEOS, Config: cfgB},
		},
		Links: []topology.Link{{
			A: topology.Endpoint{Node: "a", Interface: "Ethernet1"},
			Z: topology.Endpoint{Node: "b", Interface: "Ethernet1"},
		}},
	}
}

// errorsOnly filters findings at SevError and above.
func errorsOnly(l diag.List) diag.List {
	var out diag.List
	for _, d := range l {
		if d.Sev >= diag.SevError {
			out = append(out, d)
		}
	}
	return out
}

func TestHealthySnapshotsClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo *topology.Topology
	}{
		{"pair", pair(cfgA, cfgB)},
		{"fig2", testnet.Fig2()},
		{"fig3", testnet.Fig3()},
	} {
		if findings := ValidateSnapshot(tc.topo); len(findings) != 0 {
			t.Errorf("%s: healthy snapshot has findings:\n%s", tc.name, findings.Error())
		}
	}
}

func TestNilTopologyFatal(t *testing.T) {
	findings := ValidateSnapshot(nil)
	if len(findings) != 1 || findings[0].Sev != diag.SevFatal {
		t.Fatalf("findings = %v", findings)
	}
}

func TestBrokenTopologyFatal(t *testing.T) {
	topo := pair(cfgA, cfgB)
	topo.Links[0].Z.Node = "ghost"
	findings := ValidateSnapshot(topo)
	if len(findings) != 1 || findings[0].Sev != diag.SevFatal || findings[0].Source != "topology" {
		t.Fatalf("findings = %v", findings)
	}
}

func TestUnparseableConfigFatalAndContained(t *testing.T) {
	findings := ValidateSnapshot(pair(cfgA, "florble gork\n"))
	// The broken config is fatal for b; a still gets linted (its neighbor
	// 10.0.0.1 now resolves to no device — a warning, not a casualty of b's
	// parse failure).
	var fatal, warn bool
	for _, d := range findings {
		if d.Sev == diag.SevFatal && d.Device == "b" {
			fatal = true
		}
		if d.Sev == diag.SevWarning && d.Device == "a" {
			warn = true
		}
	}
	if !fatal || !warn {
		t.Fatalf("findings = \n%s", findings.Error())
	}
}

func TestDuplicateRouterID(t *testing.T) {
	dup := strings.Replace(cfgB, "router-id 2.2.2.2", "router-id 2.2.2.1", 1)
	findings := errorsOnly(ValidateSnapshot(pair(cfgA, dup)))
	if len(findings) != 1 || !strings.Contains(findings[0].Msg, "router-id") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestDuplicateAddress(t *testing.T) {
	clash := strings.Replace(cfgB, "2.2.2.2/32", "2.2.2.1/32", 1)
	findings := errorsOnly(ValidateSnapshot(pair(cfgA, clash)))
	found := false
	for _, d := range findings {
		if strings.Contains(d.Msg, "already owned by") {
			found = true
		}
	}
	if !found {
		t.Fatalf("address clash not reported:\n%s", findings.Error())
	}
}

func TestUnresolvableStaticNextHop(t *testing.T) {
	cfg := cfgA + "ip route 9.9.9.0/24 172.16.0.1\n"
	findings := errorsOnly(ValidateSnapshot(pair(cfg, cfgB)))
	if len(findings) != 1 || !strings.Contains(findings[0].Msg, "no connected subnet") {
		t.Fatalf("findings = %v", findings)
	}
	// A resolvable next hop (on the /31) is clean.
	ok := cfgA + "ip route 9.9.9.0/24 10.0.0.1\n"
	if findings := ValidateSnapshot(pair(ok, cfgB)); len(findings) != 0 {
		t.Errorf("resolvable static flagged:\n%s", findings.Error())
	}
}

func TestLinkNamesUndefinedInterface(t *testing.T) {
	topo := pair(cfgA, cfgB)
	topo.Links[0].A.Interface = "Ethernet9"
	findings := ValidateSnapshot(topo)
	found := false
	for _, d := range findings {
		if d.Sev == diag.SevWarning && strings.Contains(d.Msg, "never defines") {
			found = true
		}
	}
	if !found {
		t.Fatalf("undefined link interface not reported:\n%s", findings.Error())
	}
}

func TestMPLSLSPChecks(t *testing.T) {
	long := strings.Repeat("x", 300)
	cfg := cfgA + `router traffic-engineering
   tunnel T1
      destination 2.2.2.2
   tunnel T1
      destination 2.2.2.2
   tunnel ` + long + `
      destination 2.2.2.2
   tunnel T2
      destination 192.0.2.77
!
`
	findings := ValidateSnapshot(pair(cfg, cfgB))
	var dup, toolong, orphanTail bool
	for _, d := range findings {
		switch {
		case strings.Contains(d.Msg, "duplicate LSP"):
			dup = true
		case strings.Contains(d.Msg, "caps names"):
			toolong = true
		case strings.Contains(d.Msg, "owned by no device"):
			orphanTail = true
		}
	}
	if !dup || !toolong || !orphanTail {
		t.Fatalf("dup=%v long=%v orphan=%v:\n%s", dup, toolong, orphanTail, findings.Error())
	}
}

func TestExternalNeighborWarning(t *testing.T) {
	cfg := strings.Replace(cfgA, "neighbor 10.0.0.1 remote-as 65002",
		"neighbor 10.0.0.1 remote-as 65002\n   neighbor 192.0.2.99 remote-as 64999", 1)
	findings := ValidateSnapshot(pair(cfg, cfgB))
	if len(findings) != 1 || findings[0].Sev != diag.SevWarning ||
		!strings.Contains(findings[0].Msg, "external feed") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestValidateAFTsLabelConsistency(t *testing.T) {
	topo := pair(cfgA, cfgB)
	build := func(device string, push []uint32, inLabel uint32) *aft.AFT {
		b := aft.NewBuilder(device)
		nh := b.AddNextHop(aft.NextHop{IPAddress: "10.0.0.1", Interface: "Ethernet1", PushedLabels: push})
		b.AddIPv4(netip.MustParsePrefix("2.2.2.2/32"), b.AddGroup([]uint64{nh}), "te", 0)
		if inLabel != 0 {
			pop := b.AddNextHop(aft.NextHop{Receive: true})
			b.AddLabel(inLabel, b.AddGroup([]uint64{pop}), true)
		}
		return b.Build()
	}
	// a pushes label 500 toward b (10.0.0.1), but b has no entry for 500.
	afts := map[string]*aft.AFT{
		"a": build("a", []uint32{500}, 0),
		"b": build("b", nil, 0),
	}
	findings := errorsOnly(ValidateAFTs(topo, afts))
	if len(findings) != 1 || !strings.Contains(findings[0].Msg, "pushes label 500") {
		t.Fatalf("findings = %v", findings)
	}
	// With the matching incoming entry on b, the snapshot is clean.
	afts["b"] = build("b", nil, 500)
	if findings := ValidateAFTs(topo, afts); len(findings) != 0 {
		t.Errorf("consistent labels flagged:\n%s", findings.Error())
	}
}

func TestValidateAFTsIntegrity(t *testing.T) {
	topo := pair(cfgA, cfgB)
	bad := &aft.AFT{Device: "a", IPv4Entries: []aft.IPv4Entry{{Prefix: "2.2.2.2/32", NextHopGroup: 7}}}
	findings := ValidateAFTs(topo, map[string]*aft.AFT{"a": bad, "ghost": nil})
	var integrity, nilAFT, undeclared bool
	for _, d := range findings {
		switch {
		case d.Device == "a" && strings.Contains(d.Msg, "missing group"):
			integrity = true
		case d.Device == "ghost" && d.Msg == "nil AFT":
			nilAFT = true
		case d.Device == "ghost" && strings.Contains(d.Msg, "does not declare"):
			undeclared = true
		}
	}
	if !integrity || !nilAFT {
		t.Fatalf("integrity=%v nil=%v undeclared=%v:\n%s", integrity, nilAFT, undeclared, findings.Error())
	}
}

// TestValidateLiveFig2 boots the Fig. 2 network to convergence and expects
// the AFT/RIB cross-check to come back clean — and to stay quiet about a
// quarantined router's deliberately empty table.
func TestValidateLiveFig2(t *testing.T) {
	em, err := kne.New(kne.Config{Topology: testnet.Fig2(), Sim: sim.New(42)})
	if err != nil {
		t.Fatal(err)
	}
	if err := em.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(30*time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	if findings := ValidateLive(em); len(findings) != 0 {
		t.Errorf("converged network has findings:\n%s", findings.Error())
	}
	if err := em.QuarantineRouter("r4", "test"); err != nil {
		t.Fatal(err)
	}
	em.Settle(2*time.Minute, 30*time.Minute)
	if findings := ValidateLive(em); len(findings) != 0 {
		t.Errorf("quarantined router produced findings:\n%s", findings.Error())
	}
	if findings := ValidateLive(nil); len(findings) != 1 || findings[0].Sev != diag.SevFatal {
		t.Error("nil emulator not fatal")
	}
}
