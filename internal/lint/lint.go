// Package lint is the preflight snapshot validator behind `mfv lint`. It
// parses every device configuration and cross-checks the snapshot before
// the expensive emulation boots: topology referential integrity, duplicate
// router IDs, addresses claimed by two devices, unresolvable static next
// hops, and MPLS LSP consistency. A second pass (ValidateAFTs) audits
// extracted forwarding state: per-device AFT integrity plus cross-device
// label-table consistency — a label pushed toward a neighbor must have a
// matching incoming label entry there.
//
// Findings are diag.List entries, never errors that abort the walk: lint's
// job is to report everything wrong at once, attributed per device, so a
// hostile or sloppy snapshot is diagnosed in one pass instead of one crash
// at a time.
package lint

import (
	"fmt"
	"net/netip"

	"mfv/internal/aft"
	"mfv/internal/config/eos"
	"mfv/internal/config/ir"
	"mfv/internal/config/junoslike"
	"mfv/internal/diag"
	"mfv/internal/topology"
)

// maxLSPNameLen is the wire codec's cap: RSVP-TE messages carry the session
// name in a single length byte.
const maxLSPNameLen = 255

// ValidateSnapshot lints a snapshot's static inputs. The returned list is
// sorted (severity descending, then device); an empty list means clean.
func ValidateSnapshot(topo *topology.Topology) diag.List {
	var out diag.List
	if topo == nil {
		return diag.List{diag.New(diag.SevFatal, "lint", "", "no topology")}
	}
	if err := topo.Validate(); err != nil {
		// Structural breakage (duplicate nodes, dangling link endpoints)
		// makes per-device attribution unreliable; report and stop.
		out = append(out, diag.Wrap(err, diag.SevFatal, "topology", ""))
		out.Sort()
		return out
	}

	devs := map[string]*ir.Device{}
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		dev, err := parseNode(n)
		if err != nil {
			out = append(out, diag.Wrap(err, diag.SevFatal, "config", n.Name).
				WithPath("node/"+n.Name+"/config"))
			continue
		}
		if err := dev.Validate(); err != nil {
			out = append(out, diag.Wrap(err, diag.SevError, "config", n.Name))
		}
		devs[n.Name] = dev
	}

	out = append(out, checkLinks(topo, devs)...)
	out = append(out, checkRouterIDs(topo, devs)...)
	out = append(out, checkAddresses(topo, devs)...)
	out = append(out, checkStatics(topo, devs)...)
	out = append(out, checkMPLS(topo, devs)...)
	out = append(out, checkNeighbors(topo, devs)...)
	out.Sort()
	return out
}

// parseNode dispatches to the node's vendor dialect parser.
func parseNode(n *topology.Node) (*ir.Device, error) {
	switch n.Vendor {
	case topology.VendorEOS:
		dev, _, err := eos.Parse(n.Config)
		return dev, err
	case topology.VendorJunosLike:
		return junoslike.Parse(n.Config)
	default:
		return nil, fmt.Errorf("unknown vendor %q", n.Vendor)
	}
}

// checkLinks verifies every link endpoint names an interface the device
// actually configures — a wired-but-unconfigured port carries no adjacency
// and is almost always a typo in the topology file.
func checkLinks(topo *topology.Topology, devs map[string]*ir.Device) diag.List {
	var out diag.List
	for _, l := range topo.Links {
		for _, ep := range []topology.Endpoint{l.A, l.Z} {
			dev, ok := devs[ep.Node]
			if !ok {
				continue // config already failed to parse; reported there
			}
			if !hasInterface(dev, ep.Interface) {
				out = append(out, diag.Newf(diag.SevWarning, "lint", ep.Node,
					"link endpoint %s:%s names an interface the config never defines",
					ep.Node, ep.Interface))
			}
		}
	}
	return out
}

func hasInterface(dev *ir.Device, name string) bool {
	for _, intf := range dev.Interfaces {
		if intf.Name == name {
			return true
		}
	}
	return false
}

// checkRouterIDs flags BGP router IDs claimed by more than one device:
// duplicate IDs wedge session establishment in ways that look like
// convergence failures.
func checkRouterIDs(topo *topology.Topology, devs map[string]*ir.Device) diag.List {
	var out diag.List
	owner := map[netip.Addr]string{}
	for _, n := range topo.Nodes {
		dev, ok := devs[n.Name]
		if !ok || dev.BGP == nil || !dev.BGP.RouterID.IsValid() {
			continue
		}
		id := dev.BGP.RouterID
		if first, dup := owner[id]; dup {
			out = append(out, diag.Newf(diag.SevError, "lint", n.Name,
				"router-id %v already used by %s", id, first))
			continue
		}
		owner[id] = n.Name
	}
	return out
}

// checkAddresses flags interface addresses configured on two devices — an
// address clash the emulator would also reject, caught here before boot.
func checkAddresses(topo *topology.Topology, devs map[string]*ir.Device) diag.List {
	var out diag.List
	owner := map[netip.Addr]string{}
	for _, n := range topo.Nodes {
		dev, ok := devs[n.Name]
		if !ok {
			continue
		}
		for _, intf := range dev.Interfaces {
			for _, p := range intf.Addresses {
				a := p.Addr()
				if first, dup := owner[a]; dup && first != n.Name {
					out = append(out, diag.Newf(diag.SevError, "lint", n.Name,
						"interface %s address %v already owned by %s", intf.Name, a, first))
					continue
				}
				owner[a] = n.Name
			}
		}
	}
	return out
}

// checkStatics flags static routes whose next hop no connected subnet of the
// device covers: the route can never resolve and silently blackholes.
func checkStatics(topo *topology.Topology, devs map[string]*ir.Device) diag.List {
	var out diag.List
	for _, n := range topo.Nodes {
		dev, ok := devs[n.Name]
		if !ok {
			continue
		}
		connected := dev.ConnectedPrefixes()
		for _, s := range dev.Statics {
			if s.Drop || s.Interface != "" || !s.NextHop.IsValid() {
				continue
			}
			resolved := false
			for _, c := range connected {
				if c.Contains(s.NextHop) {
					resolved = true
					break
				}
			}
			if !resolved {
				out = append(out, diag.Newf(diag.SevError, "lint", n.Name,
					"static route %v: next hop %v is on no connected subnet",
					s.Prefix, s.NextHop))
			}
		}
	}
	return out
}

// checkMPLS lints LSP intent: names must fit the wire codec's single length
// byte, be unique per device, and point at an address some device owns.
func checkMPLS(topo *topology.Topology, devs map[string]*ir.Device) diag.List {
	var out diag.List
	owner := addrOwners(topo, devs)
	for _, n := range topo.Nodes {
		dev, ok := devs[n.Name]
		if !ok || dev.MPLS == nil {
			continue
		}
		seen := map[string]bool{}
		for _, lsp := range dev.MPLS.LSPs {
			if len(lsp.Name) > maxLSPNameLen {
				out = append(out, diag.Newf(diag.SevError, "lint", n.Name,
					"LSP name %q is %d bytes; the RSVP codec caps names at %d",
					lsp.Name[:16]+"…", len(lsp.Name), maxLSPNameLen))
			}
			if seen[lsp.Name] {
				out = append(out, diag.Newf(diag.SevError, "lint", n.Name,
					"duplicate LSP name %q", lsp.Name))
			}
			seen[lsp.Name] = true
			if lsp.To.IsValid() {
				if _, ok := owner[lsp.To]; !ok {
					out = append(out, diag.Newf(diag.SevWarning, "lint", n.Name,
						"LSP %q tail %v is owned by no device", lsp.Name, lsp.To))
				}
			}
		}
	}
	return out
}

// checkNeighbors flags BGP neighbor addresses no device in the snapshot
// owns. A warning, not an error: external injectors legitimately peer from
// addresses outside the topology.
func checkNeighbors(topo *topology.Topology, devs map[string]*ir.Device) diag.List {
	var out diag.List
	owner := addrOwners(topo, devs)
	for _, n := range topo.Nodes {
		dev, ok := devs[n.Name]
		if !ok || dev.BGP == nil {
			continue
		}
		for _, nb := range dev.BGP.Neighbors {
			if nb.Shutdown || !nb.Addr.IsValid() {
				continue
			}
			if _, ok := owner[nb.Addr]; !ok {
				out = append(out, diag.Newf(diag.SevWarning, "lint", n.Name,
					"bgp neighbor %v is owned by no device (external feed?)", nb.Addr))
			}
		}
	}
	return out
}

// addrOwners maps every configured interface address to its device.
func addrOwners(topo *topology.Topology, devs map[string]*ir.Device) map[netip.Addr]string {
	owner := map[netip.Addr]string{}
	if topo == nil {
		return owner
	}
	for _, n := range topo.Nodes {
		dev, ok := devs[n.Name]
		if !ok {
			continue
		}
		for _, intf := range dev.Interfaces {
			for _, p := range intf.Addresses {
				owner[p.Addr()] = n.Name
			}
		}
	}
	return owner
}

// ValidateAFTs audits extracted forwarding state: per-device AFT integrity
// (aft.Validate), devices that appear in the AFT set but not the topology,
// and cross-device MPLS label-table consistency — every label a device
// pushes toward a neighbor must have a matching incoming label entry on
// that neighbor, or labeled traffic dies mid-LSP.
func ValidateAFTs(topo *topology.Topology, afts map[string]*aft.AFT) diag.List {
	var out diag.List
	devs := map[string]*ir.Device{}
	if topo != nil {
		for i := range topo.Nodes {
			if dev, err := parseNode(&topo.Nodes[i]); err == nil {
				devs[topo.Nodes[i].Name] = dev
			}
		}
	}
	owner := addrOwners(topo, devs)

	for name, a := range afts {
		if a == nil {
			out = append(out, diag.Newf(diag.SevError, "lint", name, "nil AFT"))
			continue
		}
		if topo != nil {
			if _, ok := topo.Node(name); !ok {
				out = append(out, diag.Newf(diag.SevWarning, "lint", name,
					"AFT for a device the topology does not declare"))
			}
		}
		if err := a.Validate(); err != nil {
			out = append(out, diag.Wrap(err, diag.SevError, "aft", name))
			continue
		}
		out = append(out, checkLabelConsistency(name, a, afts, owner)...)
	}
	out.Sort()
	return out
}

// checkLabelConsistency verifies the labels a device pushes resolve on the
// neighbor that will receive them.
func checkLabelConsistency(name string, a *aft.AFT, afts map[string]*aft.AFT, owner map[netip.Addr]string) diag.List {
	var out diag.List
	for _, nh := range a.NextHops {
		if len(nh.PushedLabels) == 0 || nh.IPAddress == "" {
			continue
		}
		ip, err := netip.ParseAddr(nh.IPAddress)
		if err != nil {
			continue // aft.Validate already flagged it
		}
		peer, ok := owner[ip.Unmap()]
		if !ok {
			continue // next hop outside the snapshot; nothing to check
		}
		peerAFT, ok := afts[peer]
		if !ok || peerAFT == nil {
			continue
		}
		outermost := nh.PushedLabels[0]
		if !hasLabelEntry(peerAFT, outermost) {
			out = append(out, diag.Newf(diag.SevError, "lint", name,
				"pushes label %d toward %s (%s), which has no matching label entry",
				outermost, peer, nh.IPAddress))
		}
	}
	return out
}

func hasLabelEntry(a *aft.AFT, label uint32) bool {
	for _, e := range a.LabelEntries {
		if e.Label == label {
			return true
		}
	}
	return false
}
