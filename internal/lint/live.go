package lint

import (
	"mfv/internal/diag"
	"mfv/internal/kne"
)

// ValidateLive cross-checks each running router's exported AFT against its
// RIB — the forwarding table is derived state, so disagreement means either
// a stale export or an elected route the dataplane cannot resolve:
//
//   - an AFT entry with no elected RIB route is an error (forwarding state
//     that nothing elected — a stale or corrupted export);
//   - an elected RIB route missing from the AFT is a warning (the exporter
//     drops routes whose next hop does not resolve, which is exactly the
//     silent blackhole an operator wants surfaced).
//
// Crashed or quarantined routers are skipped: their empty table is the
// containment contract, not an inconsistency.
func ValidateLive(em *kne.Emulator) diag.List {
	var out diag.List
	if em == nil {
		return diag.List{diag.New(diag.SevFatal, "lint", "", "no emulator")}
	}
	for _, r := range em.Routers() {
		if r.Crashed() {
			continue
		}
		a := r.ExportAFT()
		elected := map[string]bool{}
		for _, rt := range r.RIB().Routes() {
			elected[rt.Prefix.String()] = true
		}
		exported := map[string]bool{}
		for _, e := range a.IPv4Entries {
			exported[e.Prefix] = true
			if !elected[e.Prefix] {
				out = append(out, diag.Newf(diag.SevError, "lint", r.Name,
					"forwarding entry %s has no elected RIB route", e.Prefix))
			}
		}
		for p := range elected {
			if !exported[p] {
				out = append(out, diag.Newf(diag.SevWarning, "lint", r.Name,
					"elected route %s missing from the forwarding table (unresolvable next hop?)", p))
			}
		}
	}
	out.Sort()
	return out
}
