// Package policy implements routing policy primitives shared by the config
// IR and the BGP engine: prefix lists, community lists, and route maps with
// match/set clauses. Semantics follow the common EOS/IOS behaviour: route
// maps are evaluated sequence by sequence, the first sequence whose matches
// all pass decides permit/deny, and an unmatched route is denied.
package policy

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Action is a permit/deny disposition.
type Action bool

// Dispositions.
const (
	Permit Action = true
	Deny   Action = false
)

// String renders the action as CLI keywords.
func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// PrefixListEntry is one seq of an ip prefix-list.
type PrefixListEntry struct {
	Seq    int
	Action Action
	Prefix netip.Prefix
	// Ge/Le extend matching to more-specific prefixes: a candidate matches
	// when it is contained in Prefix and its length is within [ge, le]
	// (zero means unset; unset ge defaults to the prefix's own length, and
	// with neither set only the exact prefix matches).
	Ge, Le int
}

// PrefixList is an ordered ip prefix-list.
type PrefixList struct {
	Name    string
	Entries []PrefixListEntry
}

// Add appends an entry keeping entries sorted by Seq.
func (pl *PrefixList) Add(e PrefixListEntry) {
	pl.Entries = append(pl.Entries, e)
	sort.SliceStable(pl.Entries, func(i, j int) bool { return pl.Entries[i].Seq < pl.Entries[j].Seq })
}

// Match evaluates p against the list. Like real devices, the first matching
// entry decides; an empty or exhausted list denies.
func (pl *PrefixList) Match(p netip.Prefix) Action {
	for _, e := range pl.Entries {
		if entryMatches(e, p) {
			return e.Action
		}
	}
	return Deny
}

func entryMatches(e PrefixListEntry, p netip.Prefix) bool {
	// The candidate must be at least as long as, and contained in, the
	// entry's prefix.
	if p.Bits() < e.Prefix.Bits() || !e.Prefix.Masked().Contains(p.Addr()) {
		return false
	}
	ge, le := e.Ge, e.Le
	switch {
	case ge == 0 && le == 0:
		return p.Bits() == e.Prefix.Bits()
	case ge == 0:
		ge = e.Prefix.Bits()
	}
	if le == 0 {
		le = 32
	}
	return p.Bits() >= ge && p.Bits() <= le
}

// Community is a 32-bit BGP community, conventionally written AS:value.
type Community uint32

// ParseCommunity parses "AS:value" or a bare decimal.
func ParseCommunity(s string) (Community, error) {
	if hi, lo, ok := strings.Cut(s, ":"); ok {
		var h, l uint32
		if _, err := fmt.Sscanf(hi, "%d", &h); err != nil || h > 0xffff {
			return 0, fmt.Errorf("policy: bad community %q", s)
		}
		if _, err := fmt.Sscanf(lo, "%d", &l); err != nil || l > 0xffff {
			return 0, fmt.Errorf("policy: bad community %q", s)
		}
		return Community(h<<16 | l), nil
	}
	var v uint32
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, fmt.Errorf("policy: bad community %q", s)
	}
	return Community(v), nil
}

// String renders the community as AS:value.
func (c Community) String() string { return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xffff) }

// Subject is the mutable view of a BGP route that a route map evaluates and
// transforms. The BGP engine converts its path representation to a Subject,
// applies policy, and converts back.
type Subject struct {
	Prefix      netip.Prefix
	NextHop     netip.Addr
	LocalPref   uint32
	MED         uint32
	Communities []Community
	ASPath      []uint32
}

// HasCommunity reports whether c is attached.
func (s *Subject) HasCommunity(c Community) bool {
	for _, have := range s.Communities {
		if have == c {
			return true
		}
	}
	return false
}

// AddCommunity attaches c if not already present, keeping the set sorted.
func (s *Subject) AddCommunity(c Community) {
	if s.HasCommunity(c) {
		return
	}
	s.Communities = append(s.Communities, c)
	sort.Slice(s.Communities, func(i, j int) bool { return s.Communities[i] < s.Communities[j] })
}

// MapClause is one sequence of a route map.
type MapClause struct {
	Seq    int
	Action Action

	// Match conditions; all configured conditions must hold (AND).
	MatchPrefixList  string      // name of a prefix list, empty = no condition
	MatchCommunities []Community // route must carry all of these
	MatchASInPath    uint32      // nonzero: AS must appear in the AS path

	// Set actions applied when the clause permits.
	SetLocalPref   uint32 // nonzero = set
	SetMED         uint32
	SetMEDSet      bool // distinguishes "set med 0"
	SetCommunities []Community
	SetNextHop     netip.Addr
	PrependAS      []uint32
}

// RouteMap is an ordered list of clauses.
type RouteMap struct {
	Name    string
	Clauses []MapClause
}

// Add appends a clause keeping Seq order.
func (rm *RouteMap) Add(c MapClause) {
	rm.Clauses = append(rm.Clauses, c)
	sort.SliceStable(rm.Clauses, func(i, j int) bool { return rm.Clauses[i].Seq < rm.Clauses[j].Seq })
}

// Env resolves names referenced by route maps.
type Env interface {
	PrefixList(name string) (*PrefixList, bool)
}

// MapEnv is a map-backed Env.
type MapEnv map[string]*PrefixList

// PrefixList implements Env.
func (m MapEnv) PrefixList(name string) (*PrefixList, bool) {
	pl, ok := m[name]
	return pl, ok
}

// Apply evaluates the route map against subj, mutating it with set clauses
// when permitted. It returns the final disposition. Per device convention an
// unmatched route is denied; a nil route map permits everything unchanged.
func (rm *RouteMap) Apply(subj *Subject, env Env) Action {
	if rm == nil {
		return Permit
	}
	for _, cl := range rm.Clauses {
		if !clauseMatches(cl, subj, env) {
			continue
		}
		if cl.Action == Deny {
			return Deny
		}
		applySets(cl, subj)
		return Permit
	}
	return Deny
}

func clauseMatches(cl MapClause, subj *Subject, env Env) bool {
	if cl.MatchPrefixList != "" {
		var pl *PrefixList
		if env != nil {
			pl, _ = env.PrefixList(cl.MatchPrefixList)
		}
		// Referencing a missing prefix list matches nothing, the safe
		// behaviour most NOSes implement.
		if pl == nil || pl.Match(subj.Prefix) != Permit {
			return false
		}
	}
	for _, c := range cl.MatchCommunities {
		if !subj.HasCommunity(c) {
			return false
		}
	}
	if cl.MatchASInPath != 0 {
		found := false
		for _, as := range subj.ASPath {
			if as == cl.MatchASInPath {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func applySets(cl MapClause, subj *Subject) {
	if cl.SetLocalPref != 0 {
		subj.LocalPref = cl.SetLocalPref
	}
	if cl.SetMEDSet {
		subj.MED = cl.SetMED
	}
	for _, c := range cl.SetCommunities {
		subj.AddCommunity(c)
	}
	if cl.SetNextHop.IsValid() {
		subj.NextHop = cl.SetNextHop
	}
	if len(cl.PrependAS) > 0 {
		subj.ASPath = append(append([]uint32{}, cl.PrependAS...), subj.ASPath...)
	}
}
