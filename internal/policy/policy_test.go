package policy

import (
	"net/netip"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestPrefixListExactMatch(t *testing.T) {
	pl := &PrefixList{Name: "PL"}
	pl.Add(PrefixListEntry{Seq: 10, Action: Permit, Prefix: pfx("10.0.0.0/8")})
	if pl.Match(pfx("10.0.0.0/8")) != Permit {
		t.Error("exact prefix not permitted")
	}
	if pl.Match(pfx("10.1.0.0/16")) != Deny {
		t.Error("more-specific permitted without ge/le")
	}
	if pl.Match(pfx("11.0.0.0/8")) != Deny {
		t.Error("outside prefix permitted")
	}
}

func TestPrefixListGeLe(t *testing.T) {
	pl := &PrefixList{Name: "PL"}
	pl.Add(PrefixListEntry{Seq: 10, Action: Permit, Prefix: pfx("10.0.0.0/8"), Ge: 16, Le: 24})
	tests := []struct {
		p    string
		want Action
	}{
		{"10.0.0.0/8", Deny},      // shorter than ge
		{"10.1.0.0/16", Permit},   // == ge
		{"10.1.2.0/24", Permit},   // == le
		{"10.1.2.0/25", Deny},     // longer than le
		{"172.16.0.0/16", Deny},   // outside
		{"10.255.0.0/20", Permit}, // inside range
	}
	for _, tc := range tests {
		if got := pl.Match(pfx(tc.p)); got != tc.want {
			t.Errorf("Match(%s) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPrefixListLeOnly(t *testing.T) {
	// le alone: ge defaults to the entry length.
	pl := &PrefixList{Name: "PL"}
	pl.Add(PrefixListEntry{Seq: 10, Action: Permit, Prefix: pfx("10.0.0.0/8"), Le: 32})
	if pl.Match(pfx("10.0.0.0/8")) != Permit || pl.Match(pfx("10.1.2.3/32")) != Permit {
		t.Error("le-only list should permit the prefix and all more-specifics")
	}
}

func TestPrefixListFirstMatchWinsAndDefaultDeny(t *testing.T) {
	pl := &PrefixList{Name: "PL"}
	pl.Add(PrefixListEntry{Seq: 20, Action: Permit, Prefix: pfx("10.0.0.0/8"), Le: 32})
	pl.Add(PrefixListEntry{Seq: 10, Action: Deny, Prefix: pfx("10.13.0.0/16"), Le: 32})
	if pl.Match(pfx("10.13.1.0/24")) != Deny {
		t.Error("seq 10 deny should win over seq 20 permit")
	}
	if pl.Match(pfx("10.14.0.0/16")) != Permit {
		t.Error("non-denied inside /8 should permit")
	}
	empty := &PrefixList{Name: "E"}
	if empty.Match(pfx("10.0.0.0/8")) != Deny {
		t.Error("empty prefix-list should deny")
	}
}

func TestParseCommunity(t *testing.T) {
	c, err := ParseCommunity("65001:100")
	if err != nil || c != Community(65001<<16|100) {
		t.Errorf("ParseCommunity = %v, %v", c, err)
	}
	if c.String() != "65001:100" {
		t.Errorf("String = %q", c.String())
	}
	if _, err := ParseCommunity("70000:1"); err == nil {
		t.Error("accepted AS > 65535")
	}
	if _, err := ParseCommunity("1:99999"); err == nil {
		t.Error("accepted value > 65535")
	}
	if _, err := ParseCommunity("abc"); err == nil {
		t.Error("accepted garbage")
	}
	bare, err := ParseCommunity("4259840100")
	if err != nil || bare != Community(4259840100) {
		t.Errorf("bare decimal = %v, %v", bare, err)
	}
}

func TestRouteMapNilPermitsUnchanged(t *testing.T) {
	var rm *RouteMap
	subj := &Subject{Prefix: pfx("10.0.0.0/8"), LocalPref: 100}
	if rm.Apply(subj, nil) != Permit {
		t.Error("nil route map denied")
	}
	if subj.LocalPref != 100 {
		t.Error("nil route map mutated subject")
	}
}

func TestRouteMapFirstClauseDecides(t *testing.T) {
	env := MapEnv{
		"TEN": {Name: "TEN", Entries: []PrefixListEntry{
			{Seq: 10, Action: Permit, Prefix: pfx("10.0.0.0/8"), Le: 32},
		}},
	}
	rm := &RouteMap{Name: "RM"}
	rm.Add(MapClause{Seq: 20, Action: Permit}) // match-all
	rm.Add(MapClause{Seq: 10, Action: Deny, MatchPrefixList: "TEN"})
	if rm.Apply(&Subject{Prefix: pfx("10.1.0.0/16")}, env) != Deny {
		t.Error("seq 10 deny did not win")
	}
	if rm.Apply(&Subject{Prefix: pfx("192.168.0.0/16")}, env) != Permit {
		t.Error("match-all seq 20 did not permit")
	}
}

func TestRouteMapImplicitDeny(t *testing.T) {
	env := MapEnv{"NONE": {Name: "NONE"}}
	rm := &RouteMap{Name: "RM"}
	rm.Add(MapClause{Seq: 10, Action: Permit, MatchPrefixList: "NONE"})
	if rm.Apply(&Subject{Prefix: pfx("10.0.0.0/8")}, env) != Deny {
		t.Error("unmatched route not denied")
	}
}

func TestRouteMapMissingPrefixListMatchesNothing(t *testing.T) {
	rm := &RouteMap{Name: "RM"}
	rm.Add(MapClause{Seq: 10, Action: Permit, MatchPrefixList: "GHOST"})
	rm.Add(MapClause{Seq: 20, Action: Permit})
	subj := &Subject{Prefix: pfx("10.0.0.0/8")}
	if rm.Apply(subj, MapEnv{}) != Permit {
		t.Error("route should fall through to seq 20")
	}
}

func TestRouteMapSets(t *testing.T) {
	c1, _ := ParseCommunity("65000:1")
	c2, _ := ParseCommunity("65000:2")
	rm := &RouteMap{Name: "RM"}
	rm.Add(MapClause{
		Seq: 10, Action: Permit,
		SetLocalPref:   200,
		SetMED:         5,
		SetMEDSet:      true,
		SetCommunities: []Community{c2, c1},
		SetNextHop:     addr("192.0.2.99"),
		PrependAS:      []uint32{65000, 65000},
	})
	subj := &Subject{Prefix: pfx("10.0.0.0/8"), LocalPref: 100, MED: 50, ASPath: []uint32{65010}}
	if rm.Apply(subj, nil) != Permit {
		t.Fatal("permit clause denied")
	}
	if subj.LocalPref != 200 || subj.MED != 5 {
		t.Errorf("sets not applied: %+v", subj)
	}
	if subj.NextHop != addr("192.0.2.99") {
		t.Errorf("next hop not set: %v", subj.NextHop)
	}
	if len(subj.ASPath) != 3 || subj.ASPath[0] != 65000 || subj.ASPath[2] != 65010 {
		t.Errorf("prepend wrong: %v", subj.ASPath)
	}
	if len(subj.Communities) != 2 || subj.Communities[0] != c1 {
		t.Errorf("communities not sorted/added: %v", subj.Communities)
	}
}

func TestRouteMapMatchCommunityAndASPath(t *testing.T) {
	c, _ := ParseCommunity("65000:666")
	rm := &RouteMap{Name: "RM"}
	rm.Add(MapClause{Seq: 10, Action: Deny, MatchCommunities: []Community{c}})
	rm.Add(MapClause{Seq: 20, Action: Deny, MatchASInPath: 64512})
	rm.Add(MapClause{Seq: 30, Action: Permit})

	tagged := &Subject{Prefix: pfx("10.0.0.0/8"), Communities: []Community{c}}
	if rm.Apply(tagged, nil) != Deny {
		t.Error("community-tagged route not denied")
	}
	badAS := &Subject{Prefix: pfx("10.0.0.0/8"), ASPath: []uint32{65001, 64512}}
	if rm.Apply(badAS, nil) != Deny {
		t.Error("AS-path match not denied")
	}
	clean := &Subject{Prefix: pfx("10.0.0.0/8"), ASPath: []uint32{65001}}
	if rm.Apply(clean, nil) != Permit {
		t.Error("clean route denied")
	}
}

func TestSubjectAddCommunityIdempotent(t *testing.T) {
	s := &Subject{}
	c, _ := ParseCommunity("1:1")
	s.AddCommunity(c)
	s.AddCommunity(c)
	if len(s.Communities) != 1 {
		t.Errorf("duplicate community added: %v", s.Communities)
	}
}

func TestActionString(t *testing.T) {
	if Permit.String() != "permit" || Deny.String() != "deny" {
		t.Error("Action.String wrong")
	}
}
