package model

import (
	"net/netip"
	"strings"
	"testing"

	"mfv/internal/topology"
	"mfv/internal/verify"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// fig3Router builds the Fig. 3-style config for router i of a 3-node line:
// loopback 2.2.2.i/32, IS-IS everywhere, and crucially "ip address" BEFORE
// "no switchport" on Ethernet interfaces.
func fig3Router(i int, left, right bool) string {
	var b strings.Builder
	b.WriteString("router isis default\n")
	b.WriteString("   net 49.0001.1010.1040.10" + string(rune('2'+i)) + "0.00\n")
	b.WriteString("   address-family ipv4 unicast\n")
	b.WriteString("interface Loopback0\n")
	b.WriteString("   ip address 2.2.2." + string(rune('0'+i)) + "/32\n")
	b.WriteString("   isis enable default\n")
	b.WriteString("   isis passive-interface default\n")
	if left {
		b.WriteString("interface Ethernet1\n")
		b.WriteString("   ip address 100.64." + string(rune('0'+i-1)) + ".1/31\n")
		b.WriteString("   no switchport\n")
		b.WriteString("   isis enable default\n")
	}
	if right {
		eth := "Ethernet2"
		if !left {
			eth = "Ethernet1"
		}
		b.WriteString("interface " + eth + "\n")
		b.WriteString("   ip address 100.64." + string(rune('0'+i)) + ".0/31\n")
		b.WriteString("   no switchport\n")
		b.WriteString("   isis enable default\n")
	}
	return b.String()
}

func fig3Topology() *topology.Topology {
	topo := topology.Line(3, topology.VendorEOS)
	topo.Nodes[0].Config = fig3Router(1, false, true)
	topo.Nodes[1].Config = fig3Router(2, true, true)
	topo.Nodes[2].Config = fig3Router(3, true, false)
	return topo
}

func TestParserOrderingAssumption(t *testing.T) {
	cfg := "interface Ethernet2\n   ip address 100.64.0.1/31\n   no switchport\n"
	dev, cov := parseDevice("r1", cfg)
	intf := dev.interfaces["Ethernet2"]
	if intf == nil {
		t.Fatal("interface not parsed")
	}
	if len(intf.addrs) != 0 {
		t.Errorf("address survived despite ordering assumption: %v", intf.addrs)
	}
	if len(cov.Ignored) != 1 || !strings.Contains(cov.Ignored[0].Why, "ordering assumption") {
		t.Errorf("Ignored = %+v", cov.Ignored)
	}
	// Correct order parses fine.
	dev2, cov2 := parseDevice("r1", "interface Ethernet2\n   no switchport\n   ip address 100.64.0.1/31\n")
	if len(dev2.interfaces["Ethernet2"].addrs) != 1 || len(cov2.Ignored) != 0 {
		t.Errorf("correctly ordered config mangled: %+v", dev2.interfaces["Ethernet2"])
	}
}

func TestParserLoopbackRoutedByDefault(t *testing.T) {
	dev, cov := parseDevice("r1", "interface Loopback0\n   ip address 2.2.2.1/32\n")
	if len(dev.interfaces["Loopback0"].addrs) != 1 {
		t.Errorf("loopback address dropped: %+v; cov %+v", dev.interfaces["Loopback0"], cov)
	}
}

func TestParserRejectsISISEnable(t *testing.T) {
	_, cov := parseDevice("r1", "interface Loopback0\n   isis enable default\n")
	if len(cov.Unrecognized) != 1 || !strings.Contains(cov.Unrecognized[0].Why, "invalid syntax") {
		t.Errorf("Unrecognized = %+v", cov.Unrecognized)
	}
}

func TestParserCountsManagementLines(t *testing.T) {
	cfg := `daemon PowerManager
   exec /usr/bin/powermanager
daemon LedPolicy
   exec /usr/bin/led
management api gnmi
   transport grpc default
mpls ip
ntp server 192.0.2.1
service routing protocols model multi-agent
hostname r1
ip routing
`
	_, cov := parseDevice("r1", cfg)
	if cov.TotalLines != 11 {
		t.Errorf("TotalLines = %d, want 11", cov.TotalLines)
	}
	// Everything except hostname and ip routing is outside the model:
	// daemon×2(+bodies×2), management(+body), mpls, ntp, service = 9.
	if got := cov.UnrecognizedCount(); got != 9 {
		for _, w := range cov.Unrecognized {
			t.Logf("unrecognized: %q (%s)", w.Text, w.Why)
		}
		t.Errorf("UnrecognizedCount = %d, want 9", got)
	}
}

func TestRunFig3ReproducesModelGap(t *testing.T) {
	topo := fig3Topology()
	res, err := Run(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Every router should report the isis-enable rejections and address
	// ordering drops.
	for _, name := range []string{"r1", "r2", "r3"} {
		cov := res.Coverage[name]
		if cov.UnrecognizedCount() == 0 {
			t.Errorf("%s: no unrecognized lines, want isis syntax rejections", name)
		}
		if len(cov.Ignored) == 0 {
			t.Errorf("%s: no ignored lines, want ordering-assumption drops", name)
		}
	}
	net, err := verify.NewNetwork(topo, res.AFTs)
	if err != nil {
		t.Fatal(err)
	}
	// The model's dataplane must NOT have reachability from r2 to r1's
	// loopback — the Ethernet addresses were dropped, so the model's IGP
	// graph has no circuits at all.
	if net.Reachable("r2", addr("2.2.2.1")) {
		t.Error("model-based dataplane unexpectedly reaches r1 (ordering assumption not applied?)")
	}
	// Loopbacks still self-deliver.
	if !net.Reachable("r1", addr("2.2.2.1")) {
		t.Error("r1 cannot deliver its own loopback")
	}
}

func TestRunCorrectlyOrderedConfigWorks(t *testing.T) {
	// With "no switchport" first, the model's IGP works and r1 reaches r3.
	topo := topology.Line(3, topology.VendorEOS)
	mk := func(i int, left, right bool) string {
		var b strings.Builder
		b.WriteString("router isis default\n   net 49.0001.0000.0000.000" + string(rune('0'+i)) + ".00\n")
		b.WriteString("interface Loopback0\n   ip address 2.2.2." + string(rune('0'+i)) + "/32\n")
		if left {
			b.WriteString("interface Ethernet1\n   no switchport\n   ip address 100.64." + string(rune('0'+i-1)) + ".1/31\n")
		}
		if right {
			eth := "Ethernet2"
			if !left {
				eth = "Ethernet1"
			}
			b.WriteString("interface " + eth + "\n   no switchport\n   ip address 100.64." + string(rune('0'+i)) + ".0/31\n")
		}
		return b.String()
	}
	topo.Nodes[0].Config = mk(1, false, true)
	topo.Nodes[1].Config = mk(2, true, true)
	topo.Nodes[2].Config = mk(3, true, false)
	res, err := Run(topo)
	if err != nil {
		t.Fatal(err)
	}
	net, err := verify.NewNetwork(topo, res.AFTs)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Reachable("r1", addr("2.2.2.3")) {
		t.Errorf("model IGP broken on well-ordered config; r1 AFT: %+v", res.AFTs["r1"].IPv4Entries)
	}
	if !net.Reachable("r3", addr("2.2.2.1")) {
		t.Error("reverse path broken")
	}
}

func TestRunModelBGP(t *testing.T) {
	topo := topology.Line(2, topology.VendorEOS)
	topo.Nodes[0].Config = `interface Loopback0
   ip address 1.1.1.1/32
interface Ethernet1
   no switchport
   ip address 100.64.0.0/31
router bgp 65001
   router-id 1.1.1.1
   neighbor 100.64.0.1 remote-as 65002
   network 1.1.1.1/32
`
	topo.Nodes[1].Config = `interface Loopback0
   ip address 1.1.1.2/32
interface Ethernet1
   no switchport
   ip address 100.64.0.1/31
router bgp 65002
   router-id 1.1.1.2
   neighbor 100.64.0.0 remote-as 65001
   network 1.1.1.2/32
`
	res, err := Run(topo)
	if err != nil {
		t.Fatal(err)
	}
	net, err := verify.NewNetwork(topo, res.AFTs)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Reachable("r1", addr("1.1.1.2")) {
		t.Errorf("model BGP did not propagate; r1 AFT: %+v", res.AFTs["r1"].IPv4Entries)
	}
	if !net.Reachable("r2", addr("1.1.1.1")) {
		t.Error("reverse direction broken")
	}
}

func TestRunUnknownVendorFailsParsing(t *testing.T) {
	topo := topology.Line(2, topology.VendorEOS)
	topo.Nodes[1].Vendor = topology.VendorJunosLike
	topo.Nodes[0].Config = "hostname r1\n"
	topo.Nodes[1].Config = "system { host-name r2; }\nprotocols { isis { net 49.0001.0000.0000.0002.00; } }\n"
	res, err := Run(topo)
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage["r2"]
	if cov.TotalLines == 0 || cov.UnrecognizedCount() != cov.TotalLines {
		t.Errorf("junoslike coverage = %d/%d, want total parse failure",
			cov.UnrecognizedCount(), cov.TotalLines)
	}
	if len(res.AFTs["r2"].IPv4Entries) != 0 {
		t.Error("unparseable device produced forwarding state")
	}
}

func TestRunStaticAndDropRoutes(t *testing.T) {
	topo := topology.Line(1, topology.VendorEOS)
	topo.Nodes[0].Config = `interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
ip route 0.0.0.0/0 10.0.0.1
ip route 203.0.113.0/24 Null0
`
	res, err := Run(topo)
	if err != nil {
		t.Fatal(err)
	}
	a := res.AFTs["r1"]
	var sawDefault, sawDrop bool
	for _, e := range a.IPv4Entries {
		if e.Prefix == "0.0.0.0/0" {
			sawDefault = true
			hops := a.GroupHops(e.NextHopGroup)
			if len(hops) != 1 || hops[0].Interface != "Ethernet1" {
				t.Errorf("default route hops = %+v", hops)
			}
		}
		if e.Prefix == "203.0.113.0/24" {
			sawDrop = true
			if !a.GroupHops(e.NextHopGroup)[0].Drop {
				t.Error("Null0 route not a drop")
			}
		}
	}
	if !sawDefault || !sawDrop {
		t.Errorf("AFT = %+v", a.IPv4Entries)
	}
}

func TestCoverageSummary(t *testing.T) {
	topo := fig3Topology()
	res, _ := Run(topo)
	s := res.CoverageSummary()
	if !strings.Contains(s, "r1") || !strings.Contains(s, "unrecognized=") {
		t.Errorf("summary = %q", s)
	}
}
